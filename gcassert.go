package gcassert

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/fleet"
	"gcassert/internal/flight"
	"gcassert/internal/heap"
	"gcassert/internal/rt"
	"gcassert/internal/telemetry"
	"gcassert/internal/version"
)

// Re-exported data types. These are aliases: values flow between the public
// API and the internal packages without conversion.
type (
	// Ref is a managed heap reference; the zero Ref is nil.
	Ref = heap.Addr
	// TypeID identifies a registered object type.
	TypeID = heap.TypeID
	// Field declares one object field (name + whether it is a reference).
	Field = heap.Field
	// Violation describes a triggered assertion, including the full heap
	// path from a root to the offending object.
	Violation = core.Violation
	// PathStep is one hop of a violation's heap path.
	PathStep = core.PathStep
	// Kind is an assertion kind.
	Kind = core.Kind
	// Reaction selects what happens when an assertion triggers.
	Reaction = core.Reaction
	// Policy maps assertion kinds to reactions.
	Policy = core.Policy
	// Reporter receives violations.
	Reporter = core.Reporter
	// CollectingReporter records violations in memory.
	CollectingReporter = core.CollectingReporter
	// HaltError is the panic payload of the ReactHalt reaction.
	HaltError = core.HaltError
	// Thread is a mutator context whose frames are GC roots.
	Thread = rt.Thread
	// Frame is a shadow-stack frame of local reference slots.
	Frame = rt.Frame
	// GCStats summarizes collector activity.
	GCStats = collector.Stats
	// Collection records one collection cycle.
	Collection = collector.Collection
	// GCReason labels why a collection ran.
	GCReason = collector.Reason
	// AssertStats counts assertion-engine activity.
	AssertStats = core.Stats
	// HeapStats summarizes allocation activity.
	HeapStats = heap.Stats
	// Telemetry is the observability layer: GC event trace, metrics
	// registry with pause histogram, violation log, and HTTP surface.
	// Obtain it with Runtime.Telemetry() on a telemetry-enabled runtime.
	Telemetry = telemetry.Tracer
	// WorkerStats is one parallel mark worker's activity in a Collection.
	WorkerStats = collector.WorkerStats
	// GCEvent is one structured GC trace record.
	GCEvent = telemetry.Event
	// WorkerMark is per-worker mark activity within a GCEvent.
	WorkerMark = telemetry.WorkerMark
	// PhaseSpan is one timed phase within a GCEvent.
	PhaseSpan = telemetry.PhaseSpan
	// KindCount is per-assertion-kind activity within a GCEvent.
	KindCount = telemetry.KindCount
	// Histogram is a log-bucketed duration histogram (pause times).
	Histogram = telemetry.Histogram
	// MetricsRegistry holds telemetry counters/gauges/histograms and
	// renders Prometheus text format.
	MetricsRegistry = telemetry.Registry
	// SiteID identifies a registered allocation site (0 = unknown). Obtain
	// one with Runtime.RegisterAllocSite and pass it to Thread.NewAt /
	// NewArrayAt.
	SiteID = heap.SiteID
	// FlightRecorder is the GC flight recorder: a bounded ring of recent
	// collection cycles plus recent violations, dumpable as a forensic
	// bundle. Obtain it with Runtime.Flight() on a flight-enabled runtime.
	FlightRecorder = flight.Recorder
	// FlightBundle is a captured forensic bundle.
	FlightBundle = flight.Bundle
	// FlightCycle is one recorded collection cycle in a bundle.
	FlightCycle = flight.Cycle
	// ViolationRecord is one violation as retained by the flight recorder.
	ViolationRecord = flight.ViolationRecord
	// SiteSample is one (allocation site, type) group of a bundle's heap
	// profile.
	SiteSample = flight.SiteSample
	// AssertCost is one assertion kind's attributed GC-time cost (check
	// count plus slow-path nanoseconds) on a Collection, a GCEvent, or a
	// flight-recorder cycle. Populated with Options.CostAttribution.
	AssertCost = collector.AssertCost
	// GCTrigger explains why a collection ran: the human-readable reason,
	// heap occupancy and allocation-rate EWMA at the trigger, and the
	// dominant allocating thread/site. Stamped on every Collection when
	// Options.CostAttribution is set.
	GCTrigger = collector.Trigger
	// PressureStats is the mutator-side heap-pressure snapshot returned by
	// Runtime.Pressure: allocation-rate EWMA, the heap-occupancy timeline,
	// and per-thread allocation totals.
	PressureStats = rt.PressureStats
	// ThreadAllocStats is one thread's allocation totals in PressureStats.
	ThreadAllocStats = rt.ThreadAllocStats
	// OccupancySample is one point of PressureStats' occupancy timeline.
	OccupancySample = rt.OccupancySample
	// ThreadAlloc is per-thread allocation activity within a GCEvent.
	ThreadAlloc = telemetry.ThreadAlloc
)

// Collection reasons recorded by the runtime.
const (
	// ReasonAllocFailure labels collections triggered by heap exhaustion.
	ReasonAllocFailure = collector.ReasonAllocFailure
	// ReasonForced labels explicit Collect calls.
	ReasonForced = collector.ReasonForced
)

// Nil is the null reference.
const Nil = heap.Nil

// Assertion kinds.
const (
	KindDead              = core.KindDead
	KindInstances         = core.KindInstances
	KindUnshared          = core.KindUnshared
	KindOwnedBy           = core.KindOwnedBy
	KindImproperOwnership = core.KindImproperOwnership
)

// Reactions.
const (
	// ReactLog logs the violation and continues (the default).
	ReactLog = core.ReactLog
	// ReactHalt panics with *HaltError on the first violation.
	ReactHalt = core.ReactHalt
	// ReactForce forces the assertion true where possible: for lifetime
	// assertions the collector severs every incoming reference so the
	// object is reclaimed in the same cycle.
	ReactForce = core.ReactForce
)

// Builtin array types.
const (
	// TRefArray is the builtin reference-array type.
	TRefArray = heap.TRefArray
	// TWordArray is the builtin scalar-array type.
	TWordArray = heap.TWordArray
)

// NewWriterReporter returns a Reporter that prints each violation to w in
// the paper's Figure 1 format.
func NewWriterReporter(w io.Writer) Reporter { return core.NewWriterReporter(w) }

// Options configures a Runtime.
type Options struct {
	// HeapBytes sizes the managed heap (default 64 MiB). The collector runs
	// when allocation fails.
	HeapBytes int
	// Infrastructure enables the GC-assertions infrastructure. Without it
	// the collector runs the unmodified base trace and assertion calls
	// panic — this is the paper's Base configuration, used for overhead
	// measurements.
	Infrastructure bool
	// Reporter receives violations; nil discards them (stats still count).
	Reporter Reporter
	// LogWriter, if non-nil, additionally prints violations to this writer.
	LogWriter io.Writer
	// Policy selects per-kind reactions (zero value: log everything).
	Policy Policy
	// OnViolation, if non-nil, chooses the reaction per violation at
	// detection time, overriding Policy — the paper's programmatic-
	// reaction interface (§2.6 future work). It runs inside the
	// stop-the-world collection and must not allocate on the managed heap
	// or register assertions.
	OnViolation func(*Violation) Reaction
	// Generational enables the sticky-mark-bit generational mode, in which
	// assertions are checked only at full-heap collections (§2.2).
	Generational bool
	// Workers selects the number of mark-phase workers. 0 or 1 (the
	// default) uses the sequential reference marker; n > 1 traces full
	// collections on the work-stealing parallel mark engine, with assertion
	// checks sharded per worker and violation paths reconstructed from
	// parent breadcrumbs. Generational minor collections always mark
	// sequentially. Runtimes with an OnViolation decider fall back to the
	// sequential marker (the decider's reaction must apply at edge time).
	Workers int
	// MinorRatio is the number of minor collections between forced full
	// collections in generational mode (default 4).
	MinorRatio int
	// Telemetry enables the observability layer (structured GC event
	// trace, Prometheus metrics with a pause histogram, violation log,
	// HTTP surface) — see Runtime.Telemetry. It works in every mode,
	// including Base. Disabled (the default), the collector pays one
	// nil-check per phase and the mark hot path gains zero allocations.
	Telemetry bool
	// TelemetryRingSize bounds the retained GC event trace (default 1024
	// events; older events are evicted but cumulative metrics keep
	// counting).
	TelemetryRingSize int
	// Provenance selects allocation-site provenance: "" or "off" disables
	// it (the default); "exhaustive" records every sited allocation;
	// "sampled" records one in ProvenanceSample. With provenance on,
	// violations report the offending object's allocation site, census and
	// leak-suspect rankings break down by (type, site), and flight-recorder
	// bundles carry a site-resolved pprof heap profile. Allocation sites
	// are registered with Runtime.RegisterAllocSite and recorded by
	// Thread.NewAt / NewArrayAt; plain New/NewArray allocations group under
	// the unknown site. Disabled, the plain allocation path is untouched
	// and sited entry points cost one comparison.
	Provenance string
	// ProvenanceSample is the sampling rate for Provenance "sampled": one
	// in N sited allocations is recorded (default 64).
	ProvenanceSample int
	// FlightRecorder enables the GC flight recorder: an always-on bounded
	// ring of recent collection cycles (phase timings, per-worker mark
	// stats, per-kind assertion activity, census deltas) and recent
	// violations, dumpable on demand — Runtime.WriteFlightBundle, or
	// /debug/gcassert/fr with Telemetry — or automatically on violation,
	// as a self-contained JSON bundle embedding a pprof-format heap
	// profile. See Runtime.Flight.
	FlightRecorder bool
	// FlightCycles bounds the flight recorder's cycle ring (default 64).
	FlightCycles int
	// CostAttribution enables the GC cost-attribution and heap-pressure
	// layer: every full collection's assertion work is attributed per kind
	// (check counts exact, slow-path time measured), each Collection is
	// stamped with a trigger explanation (why the GC ran, heap occupancy,
	// allocation-rate EWMA, dominant allocating thread and site), and
	// Runtime.Pressure exposes per-thread allocation totals plus the
	// occupancy timeline. Works in every mode; with Telemetry the costs and
	// trigger ride on the event stream, the /metrics surface
	// (gcassert_gc_assert_cost_seconds{kind}), and the /debug/gcassert/live
	// SSE feed that cmd/gctop renders. Disabled (the default), the mark hot
	// path pays one nil-check per phase and gains zero allocations.
	CostAttribution bool
	// InstanceID names this runtime instance in exported artifacts: flight
	// bundles, census documents, and fleet envelopes. Empty generates a
	// host-pid-random ID — the right default for fleets of identical
	// replicas, where the content hash (not the name) is the identity that
	// matters.
	InstanceID string
	// Tenant, when non-empty, names this runtime as one tenant of a
	// multi-runtime host (gcassertd): exported artifacts carry the composed
	// instance ID "InstanceID/Tenant", so tenants sharing the host's
	// InstanceID remain distinct instances at the fleet collector instead
	// of colliding. Cross-tenant leak diffing in gcfleet depends on this.
	Tenant string
	// FleetURL enables the fleet exporter when non-empty: every FleetEvery
	// full collections the census snapshot is sealed into a
	// content-addressed envelope and shipped to the gcfleet collector at
	// this base URL; on an assertion violation a flight-recorder bundle
	// ships too. Sends happen on a background goroutine with a bounded
	// queue, so a slow or absent collector never blocks a collection. Pair
	// with Introspection (census) and FlightRecorder (forensics); with
	// Telemetry, /debug/gcassert/fleet reports exporter status and POST
	// ?export=now ships a census on demand. With FleetURL empty (the
	// default), the exporter does not exist and collections pay nothing.
	FleetURL string
	// FleetEvery is the census export interval in full collections
	// (default 1: every collection — the collector dedupes identical
	// content, so steady-state replicas are nearly free to report).
	FleetEvery int
	// Introspection enables the heap-introspection layer: a per-type live
	// census piggybacked on every full collection's mark phase, snapshot
	// diffing with Cork-style leak-suspect ranking, and on-demand dominator
	// / retained-size analysis — see Runtime.CensusSnapshots, LeakSuspects
	// and Dominators. Works in every mode, including Base. Disabled (the
	// default), the mark hot path pays one nil-check per marked object and
	// allocates nothing.
	Introspection bool
	// CensusRingSize bounds the retained census snapshots (default 64).
	CensusRingSize int
}

// Runtime is a managed runtime with GC assertions. All methods of the
// embedded runtime (thread and global management, Collect, Define,
// assertion registration) are part of the public API.
type Runtime struct {
	*rt.Runtime
}

// provenanceSample maps the Options provenance mode to the runtime's
// sampling rate (0 = off, 1 = exhaustive, N = one in N).
func provenanceSample(opts Options) int {
	switch opts.Provenance {
	case "", "off":
		return 0
	case "exhaustive":
		return 1
	case "sampled":
		if opts.ProvenanceSample > 1 {
			return opts.ProvenanceSample
		}
		return 64
	default:
		panic(fmt.Sprintf("gcassert: unknown Provenance mode %q (want off, sampled or exhaustive)", opts.Provenance))
	}
}

// New creates a runtime.
func New(opts Options) *Runtime {
	r := &Runtime{rt.New(rt.Config{
		HeapBytes:         opts.HeapBytes,
		Infrastructure:    opts.Infrastructure,
		Reporter:          opts.Reporter,
		LogWriter:         opts.LogWriter,
		Policy:            opts.Policy,
		Generational:      opts.Generational,
		MinorRatio:        opts.MinorRatio,
		Workers:           opts.Workers,
		Telemetry:         opts.Telemetry,
		TelemetryRingSize: opts.TelemetryRingSize,
		CostAttribution:   opts.CostAttribution,
		Introspection:     opts.Introspection,
		CensusRingSize:    opts.CensusRingSize,
		ProvenanceSample:  provenanceSample(opts),
		FlightRecorder:    opts.FlightRecorder,
		FlightCycles:      opts.FlightCycles,
		InstanceID:        opts.InstanceID,
		Tenant:            opts.Tenant,
		FleetURL:          opts.FleetURL,
		FleetEvery:        opts.FleetEvery,
	})}
	if opts.OnViolation != nil && r.Engine() != nil {
		r.Engine().SetDecider(opts.OnViolation)
	}
	if tel := r.Telemetry(); tel != nil {
		tel.SetHeapProfile(func(w io.Writer) error { return r.WriteHeapProfile(w, 0) })
		if census := r.Census(); census != nil {
			tel.SetCensusSource(census.WriteJSON)
			tel.SetLeakSource(census.WriteSuspectsJSON)
		}
		if fr := r.Flight(); fr != nil {
			tel.SetFlightSource(func(w io.Writer) error { return fr.WriteBundle(w, "http") })
		}
		if fx := r.FleetExporter(); fx != nil {
			tel.SetFleetSource(func(w io.Writer, export bool) error {
				doc := struct {
					Instance version.Identity  `json:"instance"`
					Stats    fleet.ExportStats `json:"stats"`
					Exported string            `json:"exported_hash,omitempty"`
					Error    string            `json:"export_error,omitempty"`
				}{Instance: fx.Identity(), Stats: fx.Stats()}
				if export {
					hash, err := fx.ExportLatest()
					if err != nil {
						doc.Error = err.Error()
					} else {
						doc.Exported = hash
					}
					doc.Stats = fx.Stats()
				}
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(&doc)
			})
		}
	}
	return r
}

// WriteFlightBundle dumps a flight-recorder forensic bundle to w: the
// retained cycle timeline, the retained violations, and a pprof-format
// heap profile of the live heap grouped by (allocation site, type). The
// bundle's heap profile walks the managed heap, so call it while the
// runtime is quiescent. trigger labels what prompted the dump (shows up in
// the bundle header; "manual" is a fine default). It panics when the
// runtime was created without Options.FlightRecorder.
func (r *Runtime) WriteFlightBundle(w io.Writer, trigger string) error {
	fr := r.Flight()
	if fr == nil {
		panic("gcassert: WriteFlightBundle requires Options.FlightRecorder")
	}
	return fr.WriteBundle(w, trigger)
}

// ReadFlightBundle parses a bundle written by WriteFlightBundle (or the
// /debug/gcassert/fr endpoint, or a violation-triggered dump).
func ReadFlightBundle(rd io.Reader) (FlightBundle, error) { return flight.ReadBundle(rd) }

// ParseHeapProfile decodes a bundle's embedded pprof heap profile.
func ParseHeapProfile(data []byte) (*flight.Profile, error) { return flight.ParseProfile(data) }

// TelemetryHandler returns the telemetry HTTP surface (/metrics,
// /debug/gcassert/trace, /debug/gcassert/violations,
// /debug/gcassert/heap). It panics when the runtime was created without
// the Telemetry option. All endpoints except the heap profile are safe to
// scrape while the workload runs; see telemetry.Tracer.Handler.
func (r *Runtime) TelemetryHandler() http.Handler {
	tel := r.Telemetry()
	if tel == nil {
		panic("gcassert: TelemetryHandler requires Options.Telemetry")
	}
	return tel.Handler()
}

// GetRef loads the reference field at slot of the object at a.
func (r *Runtime) GetRef(a Ref, slot int) Ref { return r.Space().GetRef(a, slot) }

// SetRef stores v into the reference field at slot of the object at a.
func (r *Runtime) SetRef(a Ref, slot int, v Ref) { r.Space().SetRef(a, slot, v) }

// GetScalar loads the scalar field at slot of the object at a.
func (r *Runtime) GetScalar(a Ref, slot int) uint64 { return r.Space().GetScalar(a, slot) }

// SetScalar stores v into the scalar field at slot of the object at a.
func (r *Runtime) SetScalar(a Ref, slot int, v uint64) { r.Space().SetScalar(a, slot, v) }

// RefAt loads element i of the reference array at a.
func (r *Runtime) RefAt(a Ref, i int) Ref { return r.Space().RefAt(a, i) }

// SetRefAt stores v into element i of the reference array at a.
func (r *Runtime) SetRefAt(a Ref, i int, v Ref) { r.Space().SetRefAt(a, i, v) }

// WordAt loads element i of the scalar array at a.
func (r *Runtime) WordAt(a Ref, i int) uint64 { return r.Space().WordAt(a, i) }

// SetWordAt stores v into element i of the scalar array at a.
func (r *Runtime) SetWordAt(a Ref, i int, v uint64) { r.Space().SetWordAt(a, i, v) }

// TypeName returns the type name of the object at a.
func (r *Runtime) TypeName(a Ref) string { return r.Space().TypeName(a) }

// ArrayLen returns the length of the array at a.
func (r *Runtime) ArrayLen(a Ref) int { return r.Space().ArrayLen(a) }

// FieldIndex resolves a field name of type t to its slot index.
func (r *Runtime) FieldIndex(t TypeID, name string) int {
	return r.Registry().Info(t).FieldIndex(name)
}

// GCStats returns cumulative collector statistics.
func (r *Runtime) GCStats() GCStats { return r.Collector().Stats() }

// AssertionStats returns the assertion engine's counters (zero value when
// infrastructure mode is off).
func (r *Runtime) AssertionStats() AssertStats {
	if r.Engine() == nil {
		return AssertStats{}
	}
	return r.Engine().Stats()
}

// HeapStats returns allocation statistics.
func (r *Runtime) HeapStats() HeapStats { return r.Space().Stats() }

// LiveInstances returns the live-instance count of t observed at the most
// recent collection (only for types under AssertInstances tracking).
func (r *Runtime) LiveInstances(t TypeID) (int64, bool) {
	if r.Engine() == nil {
		return 0, false
	}
	return r.Engine().LiveInstances(t)
}
