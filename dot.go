package gcassert

import (
	"fmt"
	"io"
	"sort"

	"gcassert/internal/collector"
)

// WriteDOT renders the reachable object graph in Graphviz DOT format, for
// visual leak hunting alongside the textual path reports. Nodes are labeled
// with their type; roots are drawn as boxes; edges are labeled with field
// names. maxObjects bounds the output (0 = 4096); when the graph is larger,
// a trailing comment records how many objects were omitted.
func (r *Runtime) WriteDOT(w io.Writer, maxObjects int) error {
	if maxObjects <= 0 {
		maxObjects = 4096
	}
	space := r.Space()
	reg := r.Registry()

	if _, err := fmt.Fprintln(w, "digraph heap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=ellipse, fontsize=10];")

	// BFS from the roots, bounded by maxObjects.
	type edge struct {
		src, dst Ref
		label    string
	}
	visited := map[Ref]bool{}
	var queue []Ref
	var edges []edge
	rootID := 0
	r.RootScanner().Roots(func(root collector.Root) {
		a := *root.Slot
		if a == Nil {
			return
		}
		name := fmt.Sprintf("root%d", rootID)
		rootID++
		fmt.Fprintf(w, "  %s [shape=box, label=%q];\n", name, root.Desc)
		fmt.Fprintf(w, "  %s -> o%d;\n", name, uint32(a))
		if !visited[a] && len(visited) < maxObjects {
			visited[a] = true
			queue = append(queue, a)
		}
	})
	truncated := 0
	for i := 0; i < len(queue); i++ {
		a := queue[i]
		space.ForEachRef(a, func(slot int, t Ref) {
			label := reg.Info(space.TypeOf(a)).FieldName(slot)
			edges = append(edges, edge{src: a, dst: t, label: label})
			if !visited[t] {
				if len(visited) >= maxObjects {
					truncated++
					return
				}
				visited[t] = true
				queue = append(queue, t)
			}
		})
	}
	// Emit nodes in address order for deterministic output.
	nodes := make([]Ref, 0, len(visited))
	for a := range visited {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, a := range nodes {
		fmt.Fprintf(w, "  o%d [label=%q];\n", uint32(a), space.TypeName(a))
	}
	for _, e := range edges {
		if !visited[e.dst] {
			continue
		}
		fmt.Fprintf(w, "  o%d -> o%d [label=%q];\n", uint32(e.src), uint32(e.dst), e.label)
	}
	if truncated > 0 {
		fmt.Fprintf(w, "  // truncated: %d additional objects not shown\n", truncated)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDominatorDOT renders the dominator tree of the current heap in DOT
// format: each edge points from an object to the objects it immediately
// dominates, and labels carry retained sizes, so the picture shows *what is
// holding the bytes* rather than every pointer. Output is bounded to the
// maxObjects largest subtrees by retained size (0 = 256); dominated nodes
// whose retainer was cut are omitted and counted in a trailing comment.
func (r *Runtime) WriteDominatorDOT(w io.Writer, maxObjects int) error {
	if maxObjects <= 0 {
		maxObjects = 256
	}
	dom := r.Dominators()
	g := dom.Graph()
	space := r.Space()

	// Keep the maxObjects nodes with the largest retained sizes; the
	// super-root is always kept so the forest stays connected at the top.
	type cand struct {
		node     int32
		retained uint64
	}
	cands := make([]cand, 0, g.NumNodes())
	for v := int32(1); v < int32(g.NumNodes()); v++ {
		if dom.Idom[v] >= 0 {
			cands = append(cands, cand{v, dom.Retained[v]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].retained > cands[j].retained })
	keep := map[int32]bool{0: true}
	for i, c := range cands {
		if i >= maxObjects {
			break
		}
		keep[c.node] = true
	}

	if _, err := fmt.Fprintln(w, "digraph dominators {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=ellipse, fontsize=10];")
	fmt.Fprintf(w, "  n0 [shape=box, label=\"roots\\nretained %d words\"];\n", dom.Retained[0])
	// Emit in node order for deterministic output.
	for v := int32(1); v < int32(g.NumNodes()); v++ {
		if !keep[v] {
			continue
		}
		label := fmt.Sprintf("%s\\nretained %d words", space.TypeName(g.Addrs[v]), dom.Retained[v])
		if desc, ok := g.RootDesc[v]; ok {
			label += "\\n(" + desc + ")"
		}
		fmt.Fprintf(w, "  n%d [label=%q];\n", v, label)
	}
	omitted := 0
	for v := int32(1); v < int32(g.NumNodes()); v++ {
		if dom.Idom[v] < 0 {
			continue
		}
		if !keep[v] {
			omitted++
			continue
		}
		// Walk up to the nearest kept dominator so cut chains stay attached.
		p := dom.Idom[v]
		for p > 0 && !keep[p] {
			p = dom.Idom[p]
		}
		fmt.Fprintf(w, "  n%d -> n%d;\n", p, v)
	}
	if omitted > 0 {
		fmt.Fprintf(w, "  // omitted: %d objects with smaller retained sizes\n", omitted)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
