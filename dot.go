package gcassert

import (
	"fmt"
	"io"
	"sort"

	"gcassert/internal/collector"
)

// WriteDOT renders the reachable object graph in Graphviz DOT format, for
// visual leak hunting alongside the textual path reports. Nodes are labeled
// with their type; roots are drawn as boxes; edges are labeled with field
// names. maxObjects bounds the output (0 = 4096); when the graph is larger,
// a trailing comment records how many objects were omitted.
func (r *Runtime) WriteDOT(w io.Writer, maxObjects int) error {
	if maxObjects <= 0 {
		maxObjects = 4096
	}
	space := r.Space()
	reg := r.Registry()

	if _, err := fmt.Fprintln(w, "digraph heap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=ellipse, fontsize=10];")

	// BFS from the roots, bounded by maxObjects.
	type edge struct {
		src, dst Ref
		label    string
	}
	visited := map[Ref]bool{}
	var queue []Ref
	var edges []edge
	rootID := 0
	r.RootScanner().Roots(func(root collector.Root) {
		a := *root.Slot
		if a == Nil {
			return
		}
		name := fmt.Sprintf("root%d", rootID)
		rootID++
		fmt.Fprintf(w, "  %s [shape=box, label=%q];\n", name, root.Desc)
		fmt.Fprintf(w, "  %s -> o%d;\n", name, uint32(a))
		if !visited[a] && len(visited) < maxObjects {
			visited[a] = true
			queue = append(queue, a)
		}
	})
	truncated := 0
	for i := 0; i < len(queue); i++ {
		a := queue[i]
		space.ForEachRef(a, func(slot int, t Ref) {
			label := reg.Info(space.TypeOf(a)).FieldName(slot)
			edges = append(edges, edge{src: a, dst: t, label: label})
			if !visited[t] {
				if len(visited) >= maxObjects {
					truncated++
					return
				}
				visited[t] = true
				queue = append(queue, t)
			}
		})
	}
	// Emit nodes in address order for deterministic output.
	nodes := make([]Ref, 0, len(visited))
	for a := range visited {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, a := range nodes {
		fmt.Fprintf(w, "  o%d [label=%q];\n", uint32(a), space.TypeName(a))
	}
	for _, e := range edges {
		if !visited[e.dst] {
			continue
		}
		fmt.Fprintf(w, "  o%d -> o%d [label=%q];\n", uint32(e.src), uint32(e.dst), e.label)
	}
	if truncated > 0 {
		fmt.Fprintf(w, "  // truncated: %d additional objects not shown\n", truncated)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
