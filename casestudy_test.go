package gcassert_test

// Case-study tests: the qualitative results of the paper's §3.2, each
// reproduced as a checkable test. See DESIGN.md's experiment index.

import (
	"strings"
	"testing"

	"gcassert"
	"gcassert/internal/bench/db"
	"gcassert/internal/bench/jbb"
	"gcassert/internal/bench/workloads"
)

// runJBB executes the mini pseudojbb under the given config for a few
// iterations and returns the collected violations.
func runJBB(t *testing.T, mutate func(*jbb.Config)) (*gcassert.CollectingReporter, *jbb.JBB, *gcassert.Runtime) {
	t.Helper()
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      6 << 20,
		Infrastructure: true,
		Reporter:       rep,
	})
	cfg := jbb.DefaultConfig()
	cfg.Asserts = true
	cfg.Transactions = 20000
	mutate(&cfg)
	j := jbb.New(vm, cfg)
	for i := 0; i < 3; i++ {
		j.RunIteration(i)
	}
	vm.Collect()
	return rep, j, vm
}

// TestJBBCaseStudyLastOrderLeak reproduces §3.2.1 finding 1: destroyed
// Orders stay reachable through Customer.lastOrder, and the reported path
// names the Customer.
func TestJBBCaseStudyLastOrderLeak(t *testing.T) {
	rep, _, _ := runJBB(t, func(c *jbb.Config) { c.LeakLastOrder = true })
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) == 0 {
		t.Fatal("no assert-dead violations for the lastOrder leak")
	}
	foundCustomerPath := false
	for _, v := range vs {
		if v.TypeName != "spec/jbb/Order" {
			continue
		}
		for _, s := range v.Path {
			if s.TypeName == "spec/jbb/Customer" && s.Field == "lastOrder" {
				foundCustomerPath = true
			}
		}
	}
	if !foundCustomerPath {
		t.Error("no violation path runs through Customer.lastOrder")
	}
}

// TestJBBCaseStudyOldCompanyDrag reproduces finding 2: the dragged
// oldCompany triggers assert-dead on the Company and an instance-limit
// violation (two Companies live).
func TestJBBCaseStudyOldCompanyDrag(t *testing.T) {
	rep, j, _ := runJBB(t, func(c *jbb.Config) { c.DragOldCompany = true })
	deadCompany := 0
	for _, v := range rep.ByKind(gcassert.KindDead) {
		if v.TypeName == "spec/jbb/Company" {
			deadCompany++
		}
	}
	if deadCompany == 0 {
		t.Error("dragged Company not reported by assert-dead")
	}
	if len(rep.ByKind(gcassert.KindInstances)) == 0 {
		t.Error("assert-instances(Company,1) did not fire during the drag")
	}
	_ = j
}

// TestJBBCaseStudyOrderTableLeak reproduces finding 3 (the Jump & McKinley
// SPECjbb leak) and Figure 1: the path runs Company → Warehouse → District →
// longBTree → longBTreeNode → Order.
func TestJBBCaseStudyOrderTableLeak(t *testing.T) {
	rep, _, _ := runJBB(t, func(c *jbb.Config) {
		c.LeakOrderTable = true
		c.DisableOwnedBy = true
		c.Transactions = 8000 // bounded: the leak grows the heap
	})
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) == 0 {
		t.Fatal("orderTable leak not detected")
	}
	for _, v := range vs {
		if v.TypeName != "spec/jbb/Order" {
			continue
		}
		var names []string
		for _, s := range v.Path {
			names = append(names, s.TypeName)
		}
		path := strings.Join(names, " -> ")
		if strings.Contains(path, "spec/jbb/Company") &&
			strings.Contains(path, "spec/jbb/Warehouse") &&
			strings.Contains(path, "spec/jbb/District") &&
			strings.Contains(path, "longBTree") &&
			strings.Contains(path, "longBTreeNode") &&
			strings.HasSuffix(path, "spec/jbb/Order") {
			return // Figure 1 reproduced
		}
	}
	t.Error("no violation carries the Figure 1 path")
}

// TestFigure1PathReport checks the textual form of the Figure 1 report.
func TestFigure1PathReport(t *testing.T) {
	rep, _, _ := runJBB(t, func(c *jbb.Config) {
		c.LeakOrderTable = true
		c.DisableOwnedBy = true
		c.Transactions = 8000
	})
	for _, v := range rep.ByKind(gcassert.KindDead) {
		text := v.String()
		if strings.Contains(text, "asserted dead is reachable") &&
			strings.Contains(text, "Type: spec/jbb/Order") &&
			strings.Contains(text, "Path to object:") &&
			strings.Contains(text, "longBTreeNode") {
			return
		}
	}
	t.Error("no report matches the Figure 1 format")
}

// TestJBBRepairedIsClean: with all bugs fixed, thousands of assertions pass.
func TestJBBRepairedIsClean(t *testing.T) {
	rep, _, vm := runJBB(t, func(c *jbb.Config) {})
	if rep.Len() != 0 {
		vs := rep.Violations()
		t.Fatalf("repaired jbb violated %d times; first: %v", len(vs), vs[0].String())
	}
	st := vm.AssertionStats()
	if st.DeadAsserted == 0 || st.OwnedPairsAsserted == 0 || st.DeadVerified == 0 {
		t.Errorf("expected assertion traffic: %+v", st)
	}
}

// TestLusearchCaseStudy reproduces §3.2.2: 32 IndexSearcher instances live
// against a limit of 1.
func TestLusearchCaseStudy(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true, Reporter: rep})
	run, searcher := workloads.NewLusearch(vm, true)
	run(0)
	vm.Collect()
	if n, ok := vm.LiveInstances(searcher); !ok || n != 32 {
		t.Errorf("live IndexSearchers = %d, want 32", n)
	}
	vs := rep.ByKind(gcassert.KindInstances)
	if len(vs) == 0 {
		t.Fatal("assert-instances did not fire")
	}
	if !strings.Contains(vs[0].Message, "32 instances live, limit 1") {
		t.Errorf("message = %q", vs[0].Message)
	}
}

// TestSwapLeakCaseStudy reproduces §3.2.3: the hidden inner-class reference
// keeps swapped SObjects alive; the path shows SObject -> Rep -> SObject.
func TestSwapLeakCaseStudy(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 8 << 20, Infrastructure: true, Reporter: rep})
	sobject := vm.Define("SObject", gcassert.Field{Name: "rep", Ref: true})
	srep := vm.Define("SObject$Rep", gcassert.Field{Name: "outer", Ref: true})
	fRep := vm.FieldIndex(sobject, "rep")
	fOuter := vm.FieldIndex(srep, "outer")
	th := vm.NewThread("main")
	fr := th.Push(2)
	newS := func() gcassert.Ref {
		o := th.New(sobject)
		fr.Set(1, o)
		r := th.New(srep)
		vm.SetRef(o, fRep, r)
		vm.SetRef(r, fOuter, o)
		fr.Set(1, gcassert.Nil)
		return o
	}
	const n = 16
	arr := th.NewArray(gcassert.TRefArray, n)
	fr.Set(0, arr)
	for i := 0; i < n; i++ {
		vm.SetRefAt(arr, i, newS())
	}
	for i := 0; i < n; i++ {
		fresh := newS()
		fr.Set(1, fresh)
		old := vm.RefAt(arr, i)
		or, frsh := vm.GetRef(old, fRep), vm.GetRef(fresh, fRep)
		vm.SetRef(old, fRep, frsh)
		vm.SetRef(fresh, fRep, or)
		fr.Set(1, gcassert.Nil)
		vm.AssertDead(fresh)
	}
	vm.Collect()
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) != n {
		t.Fatalf("violations = %d, want %d (every swapped SObject leaks)", len(vs), n)
	}
	// The paper's path: SArray -> SObject -> SObject$Rep -> SObject.
	v := vs[0]
	var names []string
	for _, s := range v.Path {
		names = append(names, s.TypeName)
	}
	path := strings.Join(names, " -> ")
	if !strings.Contains(path, "SObject -> SObject$Rep -> SObject") {
		t.Errorf("path = %s", path)
	}
	// And the Rep hop is through the hidden outer reference.
	found := false
	for _, s := range v.Path {
		if s.TypeName == "SObject$Rep" && s.Field == "outer" {
			found = true
		}
	}
	if !found {
		t.Error("path does not expose the hidden outer reference")
	}
}

// TestDBCaseStudyLeakRemoved: the seeded _209_db "recently deleted" cache
// keeps removed entries alive; assert-dead reports them with a path through
// the Database cache.
func TestDBCaseStudyLeakRemoved(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true, Reporter: rep})
	cfg := db.DefaultConfig()
	cfg.Entries = 2000
	cfg.Ops = 12000
	cfg.Asserts = true
	cfg.LeakRemoved = true
	d := db.New(vm, cfg)
	d.RunIteration(0)
	vm.Collect()
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) == 0 {
		t.Fatal("cache leak not detected")
	}
	foundCachePath := false
	for _, v := range vs {
		for _, s := range v.Path {
			if s.Field == "cache" {
				foundCachePath = true
			}
		}
	}
	if !foundCachePath {
		t.Error("no path runs through Database.cache")
	}
}

// TestDBRepairedIsClean: without the seeded leak, db's ~tens of thousands
// of assertions all pass.
func TestDBRepairedIsClean(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true, Reporter: rep})
	cfg := db.DefaultConfig()
	cfg.Entries = 2000
	cfg.Ops = 12000
	cfg.Asserts = true
	d := db.New(vm, cfg)
	d.RunIteration(0)
	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("repaired db violated: %v", rep.Violations()[0].String())
	}
	st := vm.AssertionStats()
	if st.OwnedPairsAsserted == 0 || st.OwneesChecked == 0 {
		t.Errorf("expected ownership traffic: %+v", st)
	}
}
