package gcassert

import (
	"fmt"
	"io"
	"sort"

	"gcassert/internal/heap"
)

// TypeProfile is the live-heap footprint of one type.
type TypeProfile struct {
	// Type and TypeName identify the type.
	Type     TypeID
	TypeName string
	// Objects is the number of live instances; Words their total payload
	// size in heap words (headers included).
	Objects int
	Words   int
}

// HeapProfile walks the heap and returns the live-object histogram by type,
// largest footprint first — the introspection view a leak hunter starts
// from before placing assertions.
//
// It must be called from mutator context (never from a Reporter).
func (r *Runtime) HeapProfile() []TypeProfile {
	space := r.Space()
	reg := r.Registry()
	byType := map[TypeID]*TypeProfile{}
	space.ForEachObject(func(a Ref) bool {
		t := space.TypeOf(a)
		p := byType[t]
		if p == nil {
			p = &TypeProfile{Type: t, TypeName: reg.Name(t)}
			byType[t] = p
		}
		p.Objects++
		p.Words += reg.Info(t).SizeWords(space.ArrayLen(a))
		return true
	})
	out := make([]TypeProfile, 0, len(byType))
	for _, p := range byType {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Words != out[j].Words {
			return out[i].Words > out[j].Words
		}
		return out[i].TypeName < out[j].TypeName
	})
	return out
}

// WriteHeapProfile formats the profile as a table. top limits the number of
// rows (0 = all).
func (r *Runtime) WriteHeapProfile(w io.Writer, top int) error {
	profile := r.HeapProfile()
	totalObjs, totalWords := 0, 0
	for _, p := range profile {
		totalObjs += p.Objects
		totalWords += p.Words
	}
	if top > 0 && len(profile) > top {
		profile = profile[:top]
	}
	if _, err := fmt.Fprintf(w, "%-44s %10s %12s %8s\n", "type", "objects", "bytes", "%"); err != nil {
		return err
	}
	for _, p := range profile {
		pct := 0.0
		if totalWords > 0 {
			pct = 100 * float64(p.Words) / float64(totalWords)
		}
		if _, err := fmt.Fprintf(w, "%-44s %10d %12d %7.1f%%\n",
			p.TypeName, p.Objects, p.Words*heap.WordBytes, pct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-44s %10d %12d\n", "total", totalObjs, totalWords*heap.WordBytes)
	return err
}
