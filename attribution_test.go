package gcassert_test

// Tests for the cost-attribution and heap-pressure layer: the differential
// property that parallel cost shards merge to the sequential totals, the
// trigger explainer's wording across collection reasons, the mutator-side
// pressure stats, and the live SSE stream under concurrent collections.

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcassert"
)

// runCostRounds drives one VM through a deterministic randomized workload
// (same shape as the parallel-mark differential) with cost attribution on,
// returning each round's per-kind check counts. Every VM given the same
// seed performs the identical operation sequence, so the cost rows are
// comparable round-for-round across mark widths.
func runCostRounds(t *testing.T, seed int64, workers int) []map[string]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vm := gcassert.New(gcassert.Options{
		HeapBytes:       4 << 20,
		Infrastructure:  true,
		Reporter:        &gcassert.CollectingReporter{},
		Workers:         workers,
		CostAttribution: true,
	})
	node := vm.Define("Node",
		gcassert.Field{Name: "a", Ref: true},
		gcassert.Field{Name: "b", Ref: true},
		gcassert.Field{Name: "v"})
	vm.AssertInstances(node, 150)
	th := vm.NewThread("main")
	fr := th.Push(24)

	var rounds []map[string]uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			a := th.New(node)
			fr.Set(rng.Intn(24), a)
			for j := 0; j < 24; j++ {
				src := fr.Get(j)
				if src != gcassert.Nil && rng.Intn(8) == 0 && vm.Space().TypeOf(src) == node {
					vm.SetRef(src, rng.Intn(2), a)
				}
			}
		}
		for j := 0; j < 24; j++ {
			a := fr.Get(j)
			if a == gcassert.Nil {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				vm.AssertDead(a)
				if rng.Intn(2) == 0 {
					fr.Set(j, gcassert.Nil)
				}
			case 1:
				vm.AssertUnshared(a)
			case 2:
				if o := fr.Get(rng.Intn(24)); o != gcassert.Nil && o != a {
					vm.AssertOwnedBy(o, a)
				}
			}
		}
		for j := 0; j < 24; j++ {
			if rng.Intn(3) == 0 {
				fr.Set(j, gcassert.Nil)
			}
		}
		col := vm.Collect()
		if workers > 1 && col.Workers != workers {
			t.Fatalf("seed %d round %d: ran with %d workers, want %d", seed, round, col.Workers, workers)
		}
		if col.Trigger.Why == "" {
			t.Fatalf("seed %d round %d: collection has no trigger explanation", seed, round)
		}
		if len(col.AssertCost) == 0 {
			t.Fatalf("seed %d round %d: collection carries no cost rows", seed, round)
		}
		checks := make(map[string]uint64, len(col.AssertCost))
		for _, c := range col.AssertCost {
			if c.Ns < 0 {
				t.Fatalf("seed %d round %d: kind %s has negative attributed time %d",
					seed, round, c.Kind, c.Ns)
			}
			checks[c.Kind] = c.Checks
		}
		rounds = append(rounds, checks)
	}
	return rounds
}

// TestAttributionDifferentialWorkers is the attribution layer's core
// property: the per-worker cost shards of the parallel mark engine, merged,
// must attribute exactly the same per-kind check counts as the sequential
// reference marker on the identical workload — work counts are exact, only
// the times are measurements. Three seeds, widths 2/4/8 against 1.
func TestAttributionDifferentialWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		want := runCostRounds(t, seed, 1)
		for _, workers := range []int{2, 4, 8} {
			got := runCostRounds(t, seed, workers)
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d rounds, sequential %d", seed, workers, len(got), len(want))
			}
			for round := range want {
				for kind, n := range want[round] {
					if got[round][kind] != n {
						t.Errorf("seed %d workers %d round %d: %s checks = %d, sequential %d",
							seed, workers, round, kind, got[round][kind], n)
					}
				}
			}
		}
	}
}

// TestTriggerExplainerForced pins the explicit-Collect wording and the
// occupancy/rate fields stamped on a forced collection.
func TestTriggerExplainerForced(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20, Infrastructure: true, CostAttribution: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	buildList(vm, th, fr, node, 1_000)
	col := vm.Collect()
	if !strings.Contains(col.Trigger.Why, "explicit Collect") {
		t.Fatalf("forced trigger = %q, want explicit-Collect wording", col.Trigger.Why)
	}
	if col.Trigger.OccupancyPct <= 0 || col.Trigger.OccupancyPct > 100 {
		t.Fatalf("occupancy %.1f%%, want in (0, 100]", col.Trigger.OccupancyPct)
	}
	if col.Trigger.ByThread != "main" {
		t.Fatalf("dominant thread %q, want main", col.Trigger.ByThread)
	}
}

// TestTriggerExplainerExhaustion drives the heap to alloc-failure and
// checks the exhaustion wording, the near-full occupancy, and the dominant
// allocating thread.
func TestTriggerExplainerExhaustion(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 1 << 20, Infrastructure: true,
		Telemetry: true, CostAttribution: true,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	th.Push(1)
	for vm.GCStats().Collections == 0 {
		th.New(node) // unrooted garbage: exhaust, collect, continue
	}
	var hit bool
	for _, ev := range vm.Telemetry().Events() {
		if ev.Reason != string(gcassert.ReasonAllocFailure) {
			continue
		}
		hit = true
		if !strings.Contains(ev.Trigger, "heap exhausted") {
			t.Fatalf("exhaustion trigger = %q, want heap-exhausted wording", ev.Trigger)
		}
		if ev.OccupancyPct < 50 {
			t.Fatalf("occupancy at exhaustion = %.1f%%, want near full", ev.OccupancyPct)
		}
		if ev.TriggerThread != "main" {
			t.Fatalf("dominant thread %q, want main", ev.TriggerThread)
		}
	}
	if !hit {
		t.Fatal("no alloc-failure event recorded")
	}
}

// TestTriggerExplainerGenerational checks that minor collections explain
// themselves as minors and that forced full collections in generational
// mode say so.
func TestTriggerExplainerGenerational(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 1 << 20, Infrastructure: true, Generational: true,
		MinorRatio: 2, Telemetry: true, CostAttribution: true,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	th.Push(1)
	for vm.MinorGCStats().Collections < 4 {
		th.New(node)
	}
	var minors, fulls int
	for _, ev := range vm.Telemetry().Events() {
		if ev.Trigger == "" {
			t.Fatalf("generational event %d has no trigger explanation (%s)", ev.Seq, ev.Reason)
		}
		switch {
		case strings.Contains(ev.Trigger, "minor (sticky-mark)"):
			minors++
		case strings.Contains(ev.Trigger, "rollover"),
			strings.Contains(ev.Trigger, "escalated"),
			strings.Contains(ev.Trigger, "full"):
			fulls++
		}
	}
	if minors == 0 {
		t.Fatal("no minor-collection trigger explanations recorded")
	}
	if fulls == 0 {
		t.Fatal("no full-collection trigger explanations recorded")
	}
}

// TestPressureStats checks the mutator-side snapshot: per-thread totals,
// the occupancy timeline, and the allocation-rate EWMA.
func TestPressureStats(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20, Infrastructure: true, CostAttribution: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	buildList(vm, th, fr, node, 500)
	vm.Collect()
	buildList(vm, th, fr, node, 500)
	vm.Collect()

	pr, ok := vm.Pressure()
	if !ok {
		t.Fatal("Pressure() not available on an attribution-enabled runtime")
	}
	if len(pr.Occupancy) < 2 {
		t.Fatalf("%d occupancy samples, want >= 2 (one per collection)", len(pr.Occupancy))
	}
	for _, s := range pr.Occupancy {
		if s.Pct < 0 || s.Pct > 100 || s.UnixNs == 0 {
			t.Fatalf("bad occupancy sample %+v", s)
		}
	}
	if pr.AllocRateWps < 0 {
		t.Fatalf("negative alloc-rate EWMA %f", pr.AllocRateWps)
	}
	var main *gcassert.ThreadAllocStats
	for i := range pr.Threads {
		if pr.Threads[i].Name == "main" {
			main = &pr.Threads[i]
		}
	}
	if main == nil || main.Objects < 1000 || main.Words == 0 {
		t.Fatalf("per-thread stats %+v, want main with >= 1000 objects", pr.Threads)
	}
}

// TestLiveStreamUnderCollections exercises the SSE endpoint against a
// runtime collecting concurrently with the stream reader (run under -race
// in CI): every collection must arrive as a well-formed frame carrying the
// trigger explanation and the cost rows.
func TestLiveStreamUnderCollections(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 16 << 20, Infrastructure: true,
		Telemetry: true, CostAttribution: true,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	head := buildList(vm, th, fr, node, 10_000)
	vm.AssertUnshared(head)

	srv := httptest.NewServer(vm.TelemetryHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/gcassert/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	frames := make(chan gcassert.GCEvent, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev gcassert.GCEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				frames <- ev
			}
		}
		close(frames)
	}()

	const n = 10
	for i := 0; i < n; i++ {
		vm.Collect()
	}
	var lastSeq uint64
	for i := 0; i < n; i++ {
		select {
		case ev, open := <-frames:
			if !open {
				t.Fatalf("stream closed after %d of %d frames", i, n)
			}
			if i > 0 && ev.Seq <= lastSeq {
				t.Fatalf("frame %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Trigger == "" {
				t.Fatalf("frame %d has no trigger explanation", i)
			}
			if len(ev.Costs) == 0 {
				t.Fatalf("frame %d has no cost rows", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for frame %d of %d", i, n)
		}
	}
}
