package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/assertd"
	"gcassert/internal/bench"
)

// leakerMJ trips assert-dead once per request; steadyMJ never does.
const (
	leakerMJ = `
class Node { Node next; }
class Main {
  void main() {
    Node n = new Node();
    assertDead(n);
    gc();
  }
}`
	steadyMJ = `
class Node { Node next; }
class Main {
  void main() {
    Node g = null;
    int j = 0;
    while (j < 8) { Node t = new Node(); t.next = g; g = t; j = j + 1; }
    g = null;
    gc();
  }
}`
)

func writeMJ(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func startAssertd(t *testing.T) (*assertd.Server, *httptest.Server) {
	t.Helper()
	s := assertd.NewServer(assertd.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestServerModeUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"server with workload", []string{"-server", "http://x", "-workload", "_209_db"}},
		{"server without program", []string{"-server", "http://x"}},
		{"server with two programs", []string{"-server", "http://x", "a.mj", "b.mj"}},
		{"zero tenants", []string{"-server", "http://x", "-tenants", "0", "prog.mj"}},
		{"zero rps", []string{"-server", "http://x", "-rps", "0", "prog.mj"}},
		{"slo without server", []string{"-slo", "spec.json", "prog.mj"}},
		{"bench-out without server", []string{"-bench-out", "out.json", "prog.mj"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != 2 {
				t.Errorf("run(%v) = %d, want 2\nstderr: %s", tc.args, got, stderr.String())
			}
		})
	}
}

func TestServerModeDataErrors(t *testing.T) {
	prog := writeMJ(t, "ok.mj", steadyMJ)
	// Missing program file, then an unreachable server.
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-server", "http://x", "no-such.mj"}, &stdout, &stderr); got != 1 {
		t.Errorf("missing program = %d, want 1", got)
	}
	stderr.Reset()
	args := []string{"-server", "http://127.0.0.1:1", "-tenants", "1", "-rps", "100", "-n", "1", prog}
	if got := run(args, &stdout, &stderr); got != 1 {
		t.Errorf("unreachable server = %d, want 1\nstderr: %s", got, stderr.String())
	}
}

// TestServerModeLeakerReport drives a real assertd service and checks the
// text report: per-tenant rows, the violation rate, and cleanup (tenants
// deleted without -keep).
func TestServerModeLeakerReport(t *testing.T) {
	s, ts := startAssertd(t)
	prog := writeMJ(t, "leaker.mj", leakerMJ)
	var stdout, stderr bytes.Buffer
	args := []string{"-server", ts.URL, "-tenants", "3", "-prefix", "lk",
		"-rps", "300", "-n", "5", "-heap", "2", prog}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"3 tenant sessions",
		"violations: 15 (1000000.0 per million requests)", // every request violates
		"lk-0", "lk-1", "lk-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if n := len(s.List()); n != 0 {
		t.Errorf("%d tenants left behind without -keep", n)
	}
}

// TestServerModeKeepAndJSON checks -keep (tenants survive, metrics carry
// their series) and the JSON report shape.
func TestServerModeKeepAndJSON(t *testing.T) {
	s, ts := startAssertd(t)
	prog := writeMJ(t, "steady.mj", steadyMJ)
	var stdout, stderr bytes.Buffer
	args := []string{"-server", ts.URL, "-tenants", "2", "-prefix", "st", "-keep",
		"-rps", "300", "-n", "4", "-heap", "2", "-json", prog}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	var sum serverSummaryJSON
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, stdout.String())
	}
	if sum.Tenants != 2 || sum.Requests != 8 || sum.Violations != 0 ||
		sum.ViolationsPerMillion != 0 || len(sum.PerTenant) != 2 {
		t.Errorf("summary: %+v", sum)
	}
	if sum.Latency.P99Ns <= 0 {
		t.Errorf("no latency tail in summary: %+v", sum.Latency)
	}
	if n := len(s.List()); n != 2 {
		t.Errorf("-keep left %d tenants, want 2", n)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), `gcassertd_requests_total{tenant="st-0"} 4`) {
		t.Errorf("metrics missing kept tenant series:\n%s", body.String())
	}
}

// TestServerModeSLOAndBenchOut declares an SLO for every provisioned
// tenant, lets the leaker torch the budget, and checks both report paths:
// the -json summary carries per-tenant compliance and -bench-out archives a
// valid BENCH_run service document.
func TestServerModeSLOAndBenchOut(t *testing.T) {
	_, ts := startAssertd(t)
	prog := writeMJ(t, "leaker.mj", leakerMJ)
	specPath := filepath.Join(t.TempDir(), "slo.json")
	spec := `{"objectives":[{"kind":"violation_rate","max_per_million":1000}]}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join(t.TempDir(), "BENCH_run.json")

	var stdout, stderr bytes.Buffer
	args := []string{"-server", ts.URL, "-tenants", "2", "-prefix", "slo",
		"-rps", "300", "-n", "5", "-heap", "2", "-json",
		"-slo", specPath, "-bench-out", benchPath, prog}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}

	var sum serverSummaryJSON
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, stdout.String())
	}
	if len(sum.SLO) != 2 {
		t.Fatalf("summary has %d SLO rows, want 2: %+v", len(sum.SLO), sum.SLO)
	}
	for _, row := range sum.SLO {
		if row.Compliant || row.MinBudgetRemaining != 0 || row.WorstBurn <= 0 {
			t.Errorf("leaker tenant %s should have torched its budget: %+v", row.Tenant, row)
		}
	}

	doc, err := bench.ReadRunDoc(benchPath)
	if err != nil {
		t.Fatalf("bench doc: %v", err)
	}
	if len(doc.Service) != 1 {
		t.Fatalf("bench doc has %d service runs, want 1", len(doc.Service))
	}
	svc := doc.Service[0]
	if svc.Tenants != 2 || svc.Requests != 10 || svc.Violations != 10 ||
		svc.SLOTenants != 2 || svc.SLOTenantsCompliant != 0 || svc.SLOWorstBurn <= 0 {
		t.Errorf("service run record wrong: %+v", svc)
	}
	if svc.LatencyP99Ns <= 0 {
		t.Errorf("service run missing latency tail: %+v", svc)
	}
}

// TestServerModeSLOTextReport covers the text rendering of the compliance
// section and the steady (compliant) path.
func TestServerModeSLOTextReport(t *testing.T) {
	_, ts := startAssertd(t)
	prog := writeMJ(t, "steady.mj", steadyMJ)
	specPath := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(specPath,
		[]byte(`{"objectives":[{"kind":"violation_rate","max_per_million":1000}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	args := []string{"-server", ts.URL, "-tenants", "2", "-prefix", "ok",
		"-rps", "300", "-n", "4", "-heap", "2", "-slo", specPath, prog}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"slo: 2/2 tenants compliant", "ok-0", "budget left 100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestServerModeHundredTenants is the scale acceptance run: ≥100 concurrent
// tenant sessions through a live service, each with its own runtime, with a
// complete per-tenant latency/violation report at the end.
func TestServerModeHundredTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("100-tenant run in -short mode")
	}
	_, ts := startAssertd(t)
	prog := writeMJ(t, "leaker.mj", leakerMJ)
	var stdout, stderr bytes.Buffer
	args := []string{"-server", ts.URL, "-tenants", "100", "-prefix", "scale",
		"-rps", "50", "-n", "3", "-heap", "2", "-json", prog}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	var sum serverSummaryJSON
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Tenants != 100 || len(sum.PerTenant) != 100 {
		t.Fatalf("tenants = %d (%d rows), want 100", sum.Tenants, len(sum.PerTenant))
	}
	if sum.Requests != 300 || sum.TransportErrors != 0 {
		t.Errorf("requests = %d, transport errors = %d: %+v", sum.Requests, sum.TransportErrors, sum)
	}
	if sum.Violations != 300 {
		t.Errorf("violations = %d, want 300 (one per request)", sum.Violations)
	}
	for _, row := range sum.PerTenant {
		if row.Requests != 3 || row.Violations != 3 || row.Latency.P99Ns <= 0 {
			t.Errorf("tenant %s row: %+v", row.Tenant, row)
		}
	}
}
