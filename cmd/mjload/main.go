// Command mjload is the latency lab's load driver: it fires requests at an
// in-process gcassert runtime on a fixed open-loop schedule and reports the
// latency distribution with per-request GC-pause attribution.
//
// A request is either one run of an MJ program's Main.main (positional
// program.mj argument) or one iteration of a registered benchmark workload
// (-workload name, see internal/bench/workloads). Arrivals follow the target
// rate unconditionally — request i arrives at start + i/RPS whether or not
// the previous request has finished — so a GC pause that stalls the service
// loop shows up as queueing delay on every request that arrived behind it,
// the tail the paper's overhead tables cannot see and a closed-loop driver
// would silently absorb (coordinated omission).
//
// Usage:
//
//	mjload [-rps R] [-n N] [-heap MiB] [-workers N] [-slowest K] [-json]
//	       program.mj
//	mjload -workload _209_db [flags]
//	mjload -server URL [-tenants N] [-prefix NAME] [-keep] [flags] program.mj
//
// With -server, mjload is the client of a running gcassertd instead of an
// in-process lab: it provisions -tenants tenants on the service, submits
// the program to each, and drives every tenant as its own concurrent
// open-loop session at -rps (aggregate arrival rate = tenants × rps). The
// report shows aggregate and per-tenant latency tails plus the violation
// rate per million requests; -keep leaves the tenants (and their /metrics
// series) on the server for inspection afterwards. -slo attaches an SLO
// spec (JSON, see internal/slo.Spec) to every provisioned tenant and adds
// each tenant's post-run compliance judgment — budget remaining, worst
// burn rate, alert state — to the report; -bench-out archives the run as a
// BENCH_run service document (schema v2) for the trajectory pipeline.
//
// The report decomposes each latency component and blames GC stop-the-world
// time per trigger reason and per assertion kind (via the runtime's cost
// attribution):
//
//	requests: 400 @ 500 rps target, 498.7 rps achieved
//	latency:  p50 180µs     p99 7.48ms    p999 14.1ms    max 14.1ms
//	...
//	GC:       12 pauses, 18.2ms stop-the-world inside the run; ...
//	  by trigger: alloc-failure    11.2ms over 9 pause(s)
//	  by kind:    assert-ownedby    8.9ms
//	slowest requests:
//	  #312   14.1ms latency (13.9ms service + 150µs queued), GC overlap 11.2ms service + ...
//	          gc 7 (alloc-failure): 11.2ms pause, 11.2ms in-service, 0s queued, dominated by assert-ownedby (79%)
//
// Exit status: 0 on success, 1 when an input is missing or the guest program
// fails, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gcassert"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/loadlab"
	"gcassert/internal/minivm"
	"gcassert/internal/slo"
	"gcassert/internal/stats"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: 0 on success, 1 when the invocation
// was fine but an input could not be read or the guest failed, 2 on usage
// errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mjload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rps := fs.Float64("rps", 200, "target arrival rate, requests per second (open loop)")
	n := fs.Int("n", 1000, "number of requests to fire")
	heapMB := fs.Int("heap", 0, "managed heap size in MiB (0 = 16 for programs, the workload's own size with -workload)")
	workers := fs.Int("workers", 1, "mark-phase workers (1 = sequential marker)")
	slowest := fs.Int("slowest", 3, "slowest requests to decompose pause-by-pause (0 = none)")
	workload := fs.String("workload", "", "drive a bench workload iteration instead of an MJ program")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	server := fs.String("server", "", "drive a remote gcassertd at this base URL instead of an in-process runtime")
	tenants := fs.Int("tenants", 8, "concurrent tenant sessions to provision and drive (-server mode)")
	prefix := fs.String("prefix", "load", "tenant name prefix (-server mode)")
	keep := fs.Bool("keep", false, "leave the provisioned tenants on the server after the run (-server mode)")
	sloFile := fs.String("slo", "", "SLO spec JSON to attach to every provisioned tenant; the report adds per-tenant compliance (-server mode)")
	benchOut := fs.String("bench-out", "", "write the run as a BENCH_run service document (schema v2) to this file (-server mode)")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "mjload")
		return 0
	}

	usage := func(msg string) int {
		fmt.Fprintln(stderr, "mjload: usage: "+msg)
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "mjload:", err)
		return 1
	}

	if *server != "" {
		if *workload != "" {
			return usage("-server drives MJ programs only (no -workload)")
		}
		if fs.NArg() != 1 {
			return usage("mjload -server URL [flags] program.mj")
		}
		if *rps <= 0 || *n <= 0 || *tenants <= 0 {
			return usage("-rps, -n and -tenants must be positive")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		var sloSpec *slo.Spec
		if *sloFile != "" {
			raw, err := os.ReadFile(*sloFile)
			if err != nil {
				return dataErr(err)
			}
			var spec slo.Spec
			if err := json.Unmarshal(raw, &spec); err != nil {
				return dataErr(fmt.Errorf("%s: %w", *sloFile, err))
			}
			if err := spec.Validate(); err != nil {
				return dataErr(fmt.Errorf("%s: %w", *sloFile, err))
			}
			sloSpec = &spec
		}
		heapMiB := *heapMB
		if heapMiB == 0 {
			heapMiB = 16
		}
		return runServer(serverRun{
			url:      strings.TrimRight(*server, "/"),
			tenants:  *tenants,
			prefix:   *prefix,
			keep:     *keep,
			rps:      *rps,
			n:        *n,
			heapMiB:  heapMiB,
			workers:  *workers,
			jsonOut:  *jsonOut,
			src:      string(src),
			slo:      sloSpec,
			benchOut: *benchOut,
		}, stdout, stderr)
	}
	if *sloFile != "" || *benchOut != "" {
		return usage("-slo and -bench-out require -server")
	}
	if (*workload == "") == (fs.NArg() != 1) {
		return usage("mjload [flags] program.mj  |  mjload -workload name [flags]")
	}
	if *rps <= 0 || *n <= 0 {
		return usage("-rps and -n must be positive")
	}

	// Build the runtime and the request op. Telemetry and cost attribution
	// are always on: they are what the lab exists to observe, and their
	// overhead is part of the configuration being measured.
	heap := *heapMB << 20
	var vm *gcassert.Runtime
	var op func(seq int)
	var guestErr error
	if *workload != "" {
		w, err := workloads.ByName(*workload)
		if err != nil {
			return dataErr(err)
		}
		if heap == 0 {
			heap = w.Heap
		}
		vm = newRuntime(heap, *workers, stderr)
		op = w.New(vm, w.HasAsserts)
	} else {
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		unit, err := minivm.Compile(string(src))
		if err != nil {
			return dataErr(err)
		}
		if heap == 0 {
			heap = 16 << 20
		}
		vm = newRuntime(heap, *workers, stderr)
		// Guest prints go nowhere: at hundreds of requests per second they
		// would drown the report and distort the service time being measured.
		im, err := minivm.Load(vm, unit, io.Discard)
		if err != nil {
			return dataErr(err)
		}
		op = func(int) {
			if err := im.Run(); err != nil && guestErr == nil {
				guestErr = err
			}
		}
	}

	// Lossless event tap: the telemetry ring is bounded, a long run is not.
	log := loadlab.NewEventLog(vm.Telemetry())
	rep, err := loadlab.Run(loadlab.Options{RPS: *rps, Requests: *n, Capture: true}, op)
	vm.Telemetry().OnRecord(nil)
	if err != nil {
		return dataErr(err)
	}
	if guestErr != nil {
		return dataErr(fmt.Errorf("guest program: %w", guestErr))
	}
	at := loadlab.Attribute(rep, log.Events(), *slowest)

	if *jsonOut {
		if err := json.NewEncoder(stdout).Encode(summarize(rep, at)); err != nil {
			return dataErr(err)
		}
		return 0
	}
	loadlab.WriteReport(stdout, rep, at)
	return 0
}

func newRuntime(heapBytes, workers int, stderr io.Writer) *gcassert.Runtime {
	return gcassert.New(gcassert.Options{
		HeapBytes:       heapBytes,
		Infrastructure:  true,
		Workers:         workers,
		Reporter:        gcassert.NewWriterReporter(stderr),
		Telemetry:       true,
		CostAttribution: true,
	})
}

// tailJSON is one histogram's SLO quantiles in nanoseconds.
type tailJSON struct {
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`
}

func tails(h *stats.LogHist) tailJSON {
	p50, p99, p999, max := h.Tail()
	return tailJSON{
		P50Ns: p50.Nanoseconds(), P99Ns: p99.Nanoseconds(),
		P999Ns: p999.Nanoseconds(), MaxNs: max.Nanoseconds(),
	}
}

// summaryJSON is the -json report: pacing, per-component quantiles, and the
// full attribution.
type summaryJSON struct {
	TargetRPS   float64              `json:"target_rps"`
	AchievedRPS float64              `json:"achieved_rps"`
	Requests    int                  `json:"requests"`
	Latency     tailJSON             `json:"latency"`
	Service     tailJSON             `json:"service"`
	Queue       tailJSON             `json:"queue"`
	Attribution *loadlab.Attribution `json:"attribution"`
}

func summarize(rep *loadlab.Report, at *loadlab.Attribution) summaryJSON {
	return summaryJSON{
		TargetRPS:   rep.RPS,
		AchievedRPS: rep.AchievedRPS(),
		Requests:    rep.Requests,
		Latency:     tails(&rep.Latency),
		Service:     tails(&rep.Service),
		Queue:       tails(&rep.Queue),
		Attribution: at,
	}
}
