package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	badMJ := filepath.Join(t.TempDir(), "bad.mj")
	if err := os.WriteFile(badMJ, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"program and workload together", []string{"-workload", "_209_db", "prog.mj"}, 2},
		{"two programs", []string{"a.mj", "b.mj"}, 2},
		{"zero rps", []string{"-rps", "0", "prog.mj"}, 2},
		{"zero requests", []string{"-n", "0", "prog.mj"}, 2},
		{"missing program", []string{"no-such-program.mj"}, 1},
		{"compile error", []string{badMJ}, 1},
		{"unknown workload", []string{"-workload", "no-such-workload"}, 1},
		{"version", []string{"-version"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunVersionPrintsIdentity(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-version"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-version) = %d, stderr: %s", got, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "mjload ") {
		t.Errorf("version output %q should start with the tool name", stdout.String())
	}
}

// TestRunFleetsteady is the tentpole acceptance path: drive the example MJ
// program at a fixed rate and get SLO quantiles with pause attribution. The
// program forces collections itself, so the attribution tables are never
// empty.
func TestRunFleetsteady(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-rps", "500", "-n", "30", "-slowest", "2", "../../examples/mj/fleetsteady.mj"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"requests: 30 @ 500 rps target",
		"p50", "p99", "p999",
		"GC:", "by trigger:", "slowest requests:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunWorkloadJSON drives a bench workload and checks the machine-readable
// report: quantiles populated, attribution attached.
func TestRunWorkloadJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-workload", "_209_db", "-n", "5", "-rps", "200", "-json"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	var sum summaryJSON
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if sum.Requests != 5 || sum.TargetRPS != 200 {
		t.Errorf("summary pacing = %d req @ %g rps, want 5 @ 200", sum.Requests, sum.TargetRPS)
	}
	if sum.Latency.MaxNs <= 0 || sum.Latency.P50Ns <= 0 {
		t.Errorf("latency quantiles unpopulated: %+v", sum.Latency)
	}
	if sum.Attribution == nil {
		t.Error("attribution missing from JSON summary")
	}
}
