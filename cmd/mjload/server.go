package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gcassert/internal/bench"
	"gcassert/internal/loadlab"
	"gcassert/internal/slo"
)

// serverRun is the -server client mode: slam a remote gcassertd with many
// concurrent tenant sessions. Each tenant is its own open-loop session at
// the target per-tenant rate (aggregate arrival rate = tenants × rps), so a
// tenant stalled behind its service loop accumulates queue delay exactly as
// the in-process lab does — but over HTTP, against a real multi-tenant
// server.
type serverRun struct {
	url      string
	tenants  int
	prefix   string
	keep     bool
	rps      float64
	n        int
	heapMiB  int
	workers  int
	jsonOut  bool
	src      string
	slo      *slo.Spec // attached to every tenant at creation when non-nil
	benchOut string    // write a BENCH_run service document here when non-empty
}

// tenantName returns session i's tenant ID.
func (sr *serverRun) tenantName(i int) string {
	return fmt.Sprintf("%s-%d", sr.prefix, i)
}

// runServer provisions the tenants, drives them, reports, and (without
// -keep) deletes them. Exit codes follow the run() contract.
func runServer(sr serverRun, stdout, stderr io.Writer) int {
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "mjload:", err)
		return 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Provision: create each tenant, then submit the program to it.
	created := 0
	cleanup := func() {
		if sr.keep {
			return
		}
		for i := 0; i < created; i++ {
			req, err := http.NewRequest("DELETE", sr.url+"/tenants/"+sr.tenantName(i), nil)
			if err != nil {
				continue
			}
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
	defer cleanup()
	for i := 0; i < sr.tenants; i++ {
		if err := createServerTenant(client, sr, i); err != nil {
			return dataErr(err)
		}
		created++
	}

	// Drive all sessions concurrently; transport errors are recorded per
	// session, not fatal (a struggling server is the interesting case).
	drive := loadlab.NewHTTPDrive(client, sr.tenants, func(i int) string {
		return sr.url + "/tenants/" + sr.tenantName(i) + "/drive"
	})
	m, err := loadlab.RunSessions(loadlab.Options{RPS: sr.rps, Requests: sr.n, Capture: true},
		sr.tenants, drive.Op)
	if err != nil {
		return dataErr(err)
	}

	// With -slo, judge every tenant before cleanup tears it down: the
	// post-run compliance read is the whole point of declaring the SLO.
	var sloRows []tenantSLOJSON
	if sr.slo != nil {
		if sloRows, err = fetchTenantSLOs(client, sr); err != nil {
			return dataErr(err)
		}
	}

	if sr.benchOut != "" {
		if err := writeBenchDoc(sr, m, drive, sloRows); err != nil {
			return dataErr(err)
		}
	}

	if sr.jsonOut {
		if err := json.NewEncoder(stdout).Encode(serverSummary(sr, m, drive, sloRows)); err != nil {
			return dataErr(err)
		}
		return 0
	}
	writeServerReport(stdout, sr, m, drive, sloRows)
	return 0
}

// tenantSLOJSON is one tenant's post-run SLO judgment in the report.
type tenantSLOJSON struct {
	Tenant    string  `json:"tenant"`
	Compliant bool    `json:"compliant"`
	WorstBurn float64 `json:"worst_burn"`
	// MinBudgetRemaining is the closest-to-exhausted objective's remaining
	// error budget, 0..1.
	MinBudgetRemaining float64 `json:"min_budget_remaining"`
	Alerting           bool    `json:"alerting"` // any rule pending or firing
}

// fetchTenantSLOs reads each tenant's SLO status document after the run.
func fetchTenantSLOs(client *http.Client, sr serverRun) ([]tenantSLOJSON, error) {
	rows := make([]tenantSLOJSON, 0, sr.tenants)
	for i := 0; i < sr.tenants; i++ {
		id := sr.tenantName(i)
		resp, err := client.Get(sr.url + "/tenants/" + id + "/slo")
		if err != nil {
			return nil, err
		}
		var st slo.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("reading SLO status of %s: %w", id, err)
		}
		row := tenantSLOJSON{
			Tenant: id, Compliant: st.Compliant, WorstBurn: st.WorstBurn,
			MinBudgetRemaining: 1,
		}
		for _, o := range st.Objectives {
			if o.BudgetRemainingRatio < row.MinBudgetRemaining {
				row.MinBudgetRemaining = o.BudgetRemainingRatio
			}
			for _, a := range o.Alerts {
				if a.State != "ok" {
					row.Alerting = true
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// writeBenchDoc archives the run as a BENCH_run service document.
func writeBenchDoc(sr serverRun, m *loadlab.MultiReport, d *loadlab.HTTPDrive, sloRows []tenantSLOJSON) error {
	tot := d.Totals()
	p50, p99, p999, max := m.Latency.Tail()
	svc := bench.ServiceRun{
		Name:                 sr.prefix,
		Server:               sr.url,
		Tenants:              sr.tenants,
		TargetRPSPerTenant:   sr.rps,
		AchievedRPSAggregate: m.AchievedRPS(),
		Requests:             tot.Requests,
		Failures:             tot.Failures,
		Violations:           tot.Violations,
		ViolationsPerMillion: violationsPerMillion(tot.Violations, tot.Requests),
		LatencyP50Ns:         p50.Nanoseconds(),
		LatencyP99Ns:         p99.Nanoseconds(),
		LatencyP999Ns:        p999.Nanoseconds(),
		LatencyMaxNs:         max.Nanoseconds(),
	}
	for _, row := range sloRows {
		svc.SLOTenants++
		if row.Compliant {
			svc.SLOTenantsCompliant++
		}
		if row.WorstBurn > svc.SLOWorstBurn {
			svc.SLOWorstBurn, svc.SLOWorstTenant = row.WorstBurn, row.Tenant
		}
	}
	doc := bench.RunDoc{
		SchemaVersion: bench.RunSchemaVersion,
		GeneratedUnix: time.Now().Unix(),
		Runner:        bench.CurrentRunner(),
		Service:       []bench.ServiceRun{svc},
	}
	f, err := os.Create(sr.benchOut)
	if err != nil {
		return err
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// createServerTenant creates tenant i and submits the program to it.
func createServerTenant(client *http.Client, sr serverRun, i int) error {
	id := sr.tenantName(i)
	options := map[string]any{
		"heap_mib": sr.heapMiB,
		"workers":  sr.workers,
	}
	if sr.slo != nil {
		options["slo"] = sr.slo
	}
	body, err := json.Marshal(map[string]any{
		"id":      id,
		"options": options,
	})
	if err != nil {
		return err
	}
	if err := post(client, sr.url+"/tenants", "application/json", body, http.StatusCreated); err != nil {
		return fmt.Errorf("creating tenant %s: %w", id, err)
	}
	if err := post(client, sr.url+"/tenants/"+id+"/program", "text/plain", []byte(sr.src), http.StatusOK); err != nil {
		return fmt.Errorf("submitting program to %s: %w", id, err)
	}
	return nil
}

// post performs one POST and demands the expected status.
func post(client *http.Client, url, contentType string, body []byte, want int) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// violationsPerMillion scales the violation count to the report's
// per-million-requests figure (0 when nothing ran).
func violationsPerMillion(violations, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(violations) / float64(requests) * 1e6
}

// tenantReportJSON is one tenant's row in the -json report.
type tenantReportJSON struct {
	Tenant string `json:"tenant"`
	loadlab.HTTPDriveStats
	Latency tailJSON `json:"latency"`
}

// serverSummaryJSON is the -json report of a -server run.
type serverSummaryJSON struct {
	Server               string             `json:"server"`
	Tenants              int                `json:"tenants"`
	TargetRPSPerTenant   float64            `json:"target_rps_per_tenant"`
	AchievedRPSAggregate float64            `json:"achieved_rps_aggregate"`
	Requests             uint64             `json:"requests"`
	Failures             uint64             `json:"failures"`
	Violations           uint64             `json:"violations"`
	ViolationsPerMillion float64            `json:"violations_per_million_requests"`
	TransportErrors      uint64             `json:"transport_errors"`
	Latency              tailJSON           `json:"latency"`
	Service              tailJSON           `json:"service"`
	Queue                tailJSON           `json:"queue"`
	PerTenant            []tenantReportJSON `json:"per_tenant"`
	SLO                  []tenantSLOJSON    `json:"slo,omitempty"`
}

func serverSummary(sr serverRun, m *loadlab.MultiReport, d *loadlab.HTTPDrive, sloRows []tenantSLOJSON) serverSummaryJSON {
	tot := d.Totals()
	out := serverSummaryJSON{
		Server:               sr.url,
		Tenants:              sr.tenants,
		TargetRPSPerTenant:   sr.rps,
		AchievedRPSAggregate: m.AchievedRPS(),
		Requests:             tot.Requests,
		Failures:             tot.Failures,
		Violations:           tot.Violations,
		ViolationsPerMillion: violationsPerMillion(tot.Violations, tot.Requests),
		TransportErrors:      tot.Errors,
		Latency:              tails(&m.Latency),
		Service:              tails(&m.Service),
		Queue:                tails(&m.Queue),
	}
	for i := 0; i < sr.tenants; i++ {
		out.PerTenant = append(out.PerTenant, tenantReportJSON{
			Tenant:         sr.tenantName(i),
			HTTPDriveStats: d.Stats(i),
			Latency:        tails(&m.Sessions[i].Latency),
		})
	}
	out.SLO = sloRows
	return out
}

// writeServerReport renders the text report: aggregate pacing and tails,
// the violation rate, then one row per tenant.
func writeServerReport(w io.Writer, sr serverRun, m *loadlab.MultiReport, d *loadlab.HTTPDrive, sloRows []tenantSLOJSON) {
	tot := d.Totals()
	fmt.Fprintf(w, "server:   %s, %d tenant sessions (prefix %q)\n", sr.url, sr.tenants, sr.prefix)
	fmt.Fprintf(w, "requests: %d total @ %g rps/tenant target, %.1f rps aggregate achieved\n",
		tot.Requests, sr.rps, m.AchievedRPS())
	lp50, lp99, lp999, lmax := m.Latency.Tail()
	sp50, sp99, _, _ := m.Service.Tail()
	qp50, qp99, _, _ := m.Queue.Tail()
	fmt.Fprintf(w, "latency:  p50 %-9v p99 %-9v p999 %-9v max %v\n", lp50, lp99, lp999, lmax)
	fmt.Fprintf(w, "service:  p50 %-9v p99 %v\n", sp50, sp99)
	fmt.Fprintf(w, "queue:    p50 %-9v p99 %v\n", qp50, qp99)
	fmt.Fprintf(w, "violations: %d (%.1f per million requests)\n",
		tot.Violations, violationsPerMillion(tot.Violations, tot.Requests))
	if tot.Failures > 0 {
		fmt.Fprintf(w, "guest failures: %d\n", tot.Failures)
	}
	if tot.Errors > 0 {
		fmt.Fprintf(w, "transport errors: %d (last: %s)\n", tot.Errors, tot.LastErr)
	}
	fmt.Fprintln(w, "per tenant:")
	for i := 0; i < sr.tenants; i++ {
		st := d.Stats(i)
		p50, p99, _, _ := m.Sessions[i].Latency.Tail()
		row := fmt.Sprintf("  %-12s requests=%-6d failures=%-4d violations=%-6d p50 %-9v p99 %v",
			sr.tenantName(i), st.Requests, st.Failures, st.Violations, p50, p99)
		if st.Errors > 0 {
			row += fmt.Sprintf("  transport-errors=%d", st.Errors)
		}
		fmt.Fprintln(w, strings.TrimRight(row, " "))
	}
	if len(sloRows) > 0 {
		compliant := 0
		for _, r := range sloRows {
			if r.Compliant {
				compliant++
			}
		}
		fmt.Fprintf(w, "slo: %d/%d tenants compliant\n", compliant, len(sloRows))
		for _, r := range sloRows {
			verdict := "compliant"
			if !r.Compliant {
				verdict = "NONCOMPLIANT"
			}
			if r.Alerting {
				verdict += " (alerting)"
			}
			fmt.Fprintf(w, "  %-12s %-24s worst burn %5.1fx  budget left %3.0f%%\n",
				r.Tenant, verdict, r.WorstBurn, 100*r.MinBudgetRemaining)
		}
	}
	if sr.keep {
		fmt.Fprintf(w, "tenants kept: inspect %s/tenants and %s/metrics\n", sr.url, sr.url)
	}
}
