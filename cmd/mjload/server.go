package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gcassert/internal/loadlab"
)

// serverRun is the -server client mode: slam a remote gcassertd with many
// concurrent tenant sessions. Each tenant is its own open-loop session at
// the target per-tenant rate (aggregate arrival rate = tenants × rps), so a
// tenant stalled behind its service loop accumulates queue delay exactly as
// the in-process lab does — but over HTTP, against a real multi-tenant
// server.
type serverRun struct {
	url     string
	tenants int
	prefix  string
	keep    bool
	rps     float64
	n       int
	heapMiB int
	workers int
	jsonOut bool
	src     string
}

// tenantName returns session i's tenant ID.
func (sr *serverRun) tenantName(i int) string {
	return fmt.Sprintf("%s-%d", sr.prefix, i)
}

// runServer provisions the tenants, drives them, reports, and (without
// -keep) deletes them. Exit codes follow the run() contract.
func runServer(sr serverRun, stdout, stderr io.Writer) int {
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "mjload:", err)
		return 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Provision: create each tenant, then submit the program to it.
	created := 0
	cleanup := func() {
		if sr.keep {
			return
		}
		for i := 0; i < created; i++ {
			req, err := http.NewRequest("DELETE", sr.url+"/tenants/"+sr.tenantName(i), nil)
			if err != nil {
				continue
			}
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
	defer cleanup()
	for i := 0; i < sr.tenants; i++ {
		if err := createServerTenant(client, sr, i); err != nil {
			return dataErr(err)
		}
		created++
	}

	// Drive all sessions concurrently; transport errors are recorded per
	// session, not fatal (a struggling server is the interesting case).
	drive := loadlab.NewHTTPDrive(client, sr.tenants, func(i int) string {
		return sr.url + "/tenants/" + sr.tenantName(i) + "/drive"
	})
	m, err := loadlab.RunSessions(loadlab.Options{RPS: sr.rps, Requests: sr.n, Capture: true},
		sr.tenants, drive.Op)
	if err != nil {
		return dataErr(err)
	}

	if sr.jsonOut {
		if err := json.NewEncoder(stdout).Encode(serverSummary(sr, m, drive)); err != nil {
			return dataErr(err)
		}
		return 0
	}
	writeServerReport(stdout, sr, m, drive)
	return 0
}

// createServerTenant creates tenant i and submits the program to it.
func createServerTenant(client *http.Client, sr serverRun, i int) error {
	id := sr.tenantName(i)
	body, err := json.Marshal(map[string]any{
		"id": id,
		"options": map[string]any{
			"heap_mib": sr.heapMiB,
			"workers":  sr.workers,
		},
	})
	if err != nil {
		return err
	}
	if err := post(client, sr.url+"/tenants", "application/json", body, http.StatusCreated); err != nil {
		return fmt.Errorf("creating tenant %s: %w", id, err)
	}
	if err := post(client, sr.url+"/tenants/"+id+"/program", "text/plain", []byte(sr.src), http.StatusOK); err != nil {
		return fmt.Errorf("submitting program to %s: %w", id, err)
	}
	return nil
}

// post performs one POST and demands the expected status.
func post(client *http.Client, url, contentType string, body []byte, want int) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// violationsPerMillion scales the violation count to the report's
// per-million-requests figure (0 when nothing ran).
func violationsPerMillion(violations, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(violations) / float64(requests) * 1e6
}

// tenantReportJSON is one tenant's row in the -json report.
type tenantReportJSON struct {
	Tenant string `json:"tenant"`
	loadlab.HTTPDriveStats
	Latency tailJSON `json:"latency"`
}

// serverSummaryJSON is the -json report of a -server run.
type serverSummaryJSON struct {
	Server               string             `json:"server"`
	Tenants              int                `json:"tenants"`
	TargetRPSPerTenant   float64            `json:"target_rps_per_tenant"`
	AchievedRPSAggregate float64            `json:"achieved_rps_aggregate"`
	Requests             uint64             `json:"requests"`
	Failures             uint64             `json:"failures"`
	Violations           uint64             `json:"violations"`
	ViolationsPerMillion float64            `json:"violations_per_million_requests"`
	TransportErrors      uint64             `json:"transport_errors"`
	Latency              tailJSON           `json:"latency"`
	Service              tailJSON           `json:"service"`
	Queue                tailJSON           `json:"queue"`
	PerTenant            []tenantReportJSON `json:"per_tenant"`
}

func serverSummary(sr serverRun, m *loadlab.MultiReport, d *loadlab.HTTPDrive) serverSummaryJSON {
	tot := d.Totals()
	out := serverSummaryJSON{
		Server:               sr.url,
		Tenants:              sr.tenants,
		TargetRPSPerTenant:   sr.rps,
		AchievedRPSAggregate: m.AchievedRPS(),
		Requests:             tot.Requests,
		Failures:             tot.Failures,
		Violations:           tot.Violations,
		ViolationsPerMillion: violationsPerMillion(tot.Violations, tot.Requests),
		TransportErrors:      tot.Errors,
		Latency:              tails(&m.Latency),
		Service:              tails(&m.Service),
		Queue:                tails(&m.Queue),
	}
	for i := 0; i < sr.tenants; i++ {
		out.PerTenant = append(out.PerTenant, tenantReportJSON{
			Tenant:         sr.tenantName(i),
			HTTPDriveStats: d.Stats(i),
			Latency:        tails(&m.Sessions[i].Latency),
		})
	}
	return out
}

// writeServerReport renders the text report: aggregate pacing and tails,
// the violation rate, then one row per tenant.
func writeServerReport(w io.Writer, sr serverRun, m *loadlab.MultiReport, d *loadlab.HTTPDrive) {
	tot := d.Totals()
	fmt.Fprintf(w, "server:   %s, %d tenant sessions (prefix %q)\n", sr.url, sr.tenants, sr.prefix)
	fmt.Fprintf(w, "requests: %d total @ %g rps/tenant target, %.1f rps aggregate achieved\n",
		tot.Requests, sr.rps, m.AchievedRPS())
	lp50, lp99, lp999, lmax := m.Latency.Tail()
	sp50, sp99, _, _ := m.Service.Tail()
	qp50, qp99, _, _ := m.Queue.Tail()
	fmt.Fprintf(w, "latency:  p50 %-9v p99 %-9v p999 %-9v max %v\n", lp50, lp99, lp999, lmax)
	fmt.Fprintf(w, "service:  p50 %-9v p99 %v\n", sp50, sp99)
	fmt.Fprintf(w, "queue:    p50 %-9v p99 %v\n", qp50, qp99)
	fmt.Fprintf(w, "violations: %d (%.1f per million requests)\n",
		tot.Violations, violationsPerMillion(tot.Violations, tot.Requests))
	if tot.Failures > 0 {
		fmt.Fprintf(w, "guest failures: %d\n", tot.Failures)
	}
	if tot.Errors > 0 {
		fmt.Fprintf(w, "transport errors: %d (last: %s)\n", tot.Errors, tot.LastErr)
	}
	fmt.Fprintln(w, "per tenant:")
	for i := 0; i < sr.tenants; i++ {
		st := d.Stats(i)
		p50, p99, _, _ := m.Sessions[i].Latency.Tail()
		row := fmt.Sprintf("  %-12s requests=%-6d failures=%-4d violations=%-6d p50 %-9v p99 %v",
			sr.tenantName(i), st.Requests, st.Failures, st.Violations, p50, p99)
		if st.Errors > 0 {
			row += fmt.Sprintf("  transport-errors=%d", st.Errors)
		}
		fmt.Fprintln(w, strings.TrimRight(row, " "))
	}
	if sr.keep {
		fmt.Fprintf(w, "tenants kept: inspect %s/tenants and %s/metrics\n", sr.url, sr.url)
	}
}
