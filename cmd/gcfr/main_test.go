package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/flight"
)

// writeBundleFile drops a minimal valid flight bundle on disk.
func writeBundleFile(t *testing.T, dir, name string) string {
	t.Helper()
	r := flight.New(flight.Config{})
	var buf bytes.Buffer
	if err := r.WriteBundle(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunExitCodes pins the CLI contract: 0 on success, 1 for missing or
// malformed input, 2 for usage errors — with usage text on stderr, never
// stdout.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := writeBundleFile(t, dir, "good.json")
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	badSchema := filepath.Join(dir, "schema99.json")
	if err := os.WriteFile(badSchema, []byte(`{"schema_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "no-such-file.json")

	cases := []struct {
		name         string
		args         []string
		wantCode     int
		wantInStderr string
		wantInStdout string
	}{
		{"print-good", []string{good}, 0, "", "flight bundle"},
		{"version", []string{"-version"}, 0, "", "gcfr "},
		{"diff-good", []string{"-diff", good, good}, 0, "", "cycles:"},
		{"no-args", nil, 2, "usage:", ""},
		{"too-many-args", []string{good, good}, 2, "usage:", ""},
		{"bad-flag", []string{"-nope"}, 2, "flag provided but not defined", ""},
		{"diff-wrong-arity", []string{"-diff", good}, 2, "usage: gcfr -diff", ""},
		{"pprof-wrong-arity", []string{"-pprof", "out.pb.gz"}, 2, "usage: gcfr -pprof", ""},
		{"missing-file", []string{missing}, 1, "no such file", ""},
		{"malformed-json", []string{garbage}, 1, garbage, ""},
		{"unknown-schema", []string{badSchema}, 1, "schema version 99 not supported", ""},
		{"diff-missing-second", []string{"-diff", good, missing}, 1, "no such file", ""},
		{"pprof-no-profile", []string{"-pprof", filepath.Join(dir, "out.pb.gz"), good}, 1, "no heap profile", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if tc.wantInStderr != "" && !strings.Contains(stderr.String(), tc.wantInStderr) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantInStderr, stderr.String())
			}
			if tc.wantInStdout != "" && !strings.Contains(stdout.String(), tc.wantInStdout) {
				t.Errorf("stdout does not contain %q:\n%s", tc.wantInStdout, stdout.String())
			}
			// Diagnostics and usage never leak onto the report stream.
			if tc.wantCode != 0 && stdout.Len() > 0 {
				t.Errorf("failed invocation wrote to stdout:\n%s", stdout.String())
			}
		})
	}
}
