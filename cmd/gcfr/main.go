// Command gcfr inspects GC flight-recorder bundles: the forensic dumps the
// runtime writes on an assertion violation, a SIGQUIT request (mjrun), or a
// /debug/gcassert/fr scrape.
//
// Usage:
//
//	gcfr bundle.json                 pretty-print one bundle
//	gcfr -diff old.json new.json     diff two bundles' heap profiles
//	gcfr -pprof out.pb.gz bundle.json  extract the embedded heap profile
//
//	-cycles 10   recent cycles shown (0 = all)
//	-top 15      heap-profile rows shown (0 = all)
//
// The extracted profile is a gzipped pprof protobuf; `go tool pprof
// -sample_index=1 out.pb.gz` shows live bytes per allocation site.
//
// Exit status: 0 on success, 1 when an input file is missing or malformed
// (including unsupported bundle schema versions), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"gcassert/internal/flight"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: flags from args, report to stdout,
// diagnostics to stderr, exit code returned. 2 means the invocation was
// wrong (bad flags, wrong arity); 1 means the invocation was fine but an
// input could not be read.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	diff := fs.Bool("diff", false, "diff two bundles (old new): heap growth by site, activity deltas")
	pprofOut := fs.String("pprof", "", "write the bundle's embedded heap profile to this file and exit")
	cycles := fs.Int("cycles", 10, "recent cycles to show (0 = all)")
	top := fs.Int("top", 15, "heap profile rows to show (0 = all)")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the problem + usage to stderr
	}
	if *showVersion {
		version.Print(stdout, "gcfr")
		return 0
	}

	usage := func(msg string) int {
		fmt.Fprintln(stderr, "gcfr: usage: "+msg)
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "gcfr:", err)
		return 1
	}

	switch {
	case *diff:
		if fs.NArg() != 2 {
			return usage("gcfr -diff old.json new.json")
		}
		old, err := readBundle(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		new_, err := readBundle(fs.Arg(1))
		if err != nil {
			return dataErr(err)
		}
		if err := diffBundles(stdout, old, new_); err != nil {
			return dataErr(err)
		}
	case *pprofOut != "":
		if fs.NArg() != 1 {
			return usage("gcfr -pprof out.pb.gz bundle.json")
		}
		b, err := readBundle(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		if len(b.HeapProfile) == 0 {
			return dataErr(fmt.Errorf("%s: bundle carries no heap profile (was provenance enabled?)", fs.Arg(0)))
		}
		if err := os.WriteFile(*pprofOut, b.HeapProfile, 0o644); err != nil {
			return dataErr(err)
		}
		fmt.Fprintf(stdout, "wrote %d bytes to %s (try: go tool pprof -top -sample_index=1 %s)\n",
			len(b.HeapProfile), *pprofOut, *pprofOut)
	default:
		if fs.NArg() != 1 {
			return usage("gcfr [-cycles N] [-top N] bundle.json (or -diff, -pprof; see -h)")
		}
		b, err := readBundle(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		if err := printBundle(stdout, b, *cycles, *top); err != nil {
			return dataErr(err)
		}
	}
	return 0
}

func readBundle(path string) (flight.Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return flight.Bundle{}, err
	}
	defer f.Close()
	b, err := flight.ReadBundle(f)
	if err != nil {
		return flight.Bundle{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func printBundle(w io.Writer, b flight.Bundle, maxCycles, top int) error {
	fmt.Fprintf(w, "flight bundle  trigger=%s  captured=%s\n",
		b.Trigger, time.Unix(0, b.CapturedUnixNs).UTC().Format(time.RFC3339))
	if b.Instance != nil {
		fmt.Fprintf(w, "instance: %s on %s (pid %d, %s)\n",
			b.Instance.InstanceID, b.Instance.Host, b.Instance.PID, b.Instance.Build.Version)
	}
	fmt.Fprintf(w, "recorded: %d cycles total (%d retained), %d violations total (%d retained)\n\n",
		b.TotalCycles, len(b.Cycles), b.TotalViolations, len(b.Violations))

	cys := b.Cycles
	if maxCycles > 0 && len(cys) > maxCycles {
		fmt.Fprintf(w, "cycles (last %d of %d retained):\n", maxCycles, len(cys))
		cys = cys[len(cys)-maxCycles:]
	} else {
		fmt.Fprintln(w, "cycles:")
	}
	fmt.Fprintf(w, "  %4s %-14s %10s %8s %8s %8s %3s %s\n",
		"gc", "reason", "total", "marked", "freed", "live", "wrk", "notes")
	for i := range cys {
		cy := &cys[i]
		notes := cy.Fallback
		if notes != "" {
			notes = "fallback:" + notes
		}
		if n := violationsIn(b, cy.GC); n > 0 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("%d violation(s)", n)
		}
		fmt.Fprintf(w, "  %4d %-14s %10s %8d %8d %8d %3d %s\n",
			cy.GC, cy.Reason, time.Duration(cy.TotalNs), cy.ObjectsMarked,
			cy.ObjectsFreed, cy.ObjectsLive, cy.Workers, notes)
		for _, d := range cy.CensusDelta {
			fmt.Fprintf(w, "       %+d %s (%+d words)\n", d.Objects, d.TypeName, d.Words)
		}
	}

	if len(b.Violations) > 0 {
		fmt.Fprintln(w, "\nviolations:")
		for i := range b.Violations {
			v := &b.Violations[i]
			fmt.Fprintf(w, "  gc %d  %s  %s", v.GC, v.Kind, v.TypeName)
			if v.Site != "" {
				fmt.Fprintf(w, "  allocated at %s", v.Site)
			}
			fmt.Fprintln(w)
			if len(v.Path) > 0 {
				fmt.Fprintf(w, "        path: %s -> %s\n", v.Root, strings.Join(v.Path, " -> "))
			}
		}
	}

	if len(b.HeapProfile) > 0 {
		prof, err := flight.ParseProfile(b.HeapProfile)
		if err != nil {
			return fmt.Errorf("embedded heap profile: %w", err)
		}
		fmt.Fprintf(w, "\nheap profile (%d sites):\n", len(prof.Samples))
		fmt.Fprintf(w, "  %9s %12s  %-20s %s\n", "objects", "bytes", "type", "site")
		for i, s := range prof.Samples {
			if top > 0 && i == top {
				fmt.Fprintf(w, "  ... %d more\n", len(prof.Samples)-top)
				break
			}
			fmt.Fprintf(w, "  %9d %12d  %-20s %s\n", s.Values[0], s.Values[1], s.Labels["type"], s.Sites[0])
		}
	}
	return nil
}

func violationsIn(b flight.Bundle, gc uint64) int {
	n := 0
	for i := range b.Violations {
		if b.Violations[i].GC == gc {
			n++
		}
	}
	return n
}

// diffBundles reports what changed between two dumps: per-(site, type) heap
// growth — the leak-hunting view — plus cycle and violation counters.
func diffBundles(w io.Writer, old, new_ flight.Bundle) error {
	fmt.Fprintf(w, "cycles:     %d -> %d (+%d)\n", old.TotalCycles, new_.TotalCycles,
		int64(new_.TotalCycles)-int64(old.TotalCycles))
	fmt.Fprintf(w, "violations: %d -> %d (+%d)\n", old.TotalViolations, new_.TotalViolations,
		int64(new_.TotalViolations)-int64(old.TotalViolations))

	type key struct{ site, typ string }
	type row struct {
		key
		objects, bytes int64
	}
	acc := map[key]*row{}
	load := func(b flight.Bundle, sign int64) error {
		if len(b.HeapProfile) == 0 {
			return nil
		}
		prof, err := flight.ParseProfile(b.HeapProfile)
		if err != nil {
			return fmt.Errorf("heap profile: %w", err)
		}
		for _, s := range prof.Samples {
			k := key{site: s.Sites[0], typ: s.Labels["type"]}
			r := acc[k]
			if r == nil {
				r = &row{key: k}
				acc[k] = r
			}
			r.objects += sign * s.Values[0]
			r.bytes += sign * s.Values[1]
		}
		return nil
	}
	if err := load(old, -1); err != nil {
		return err
	}
	if err := load(new_, +1); err != nil {
		return err
	}
	var rows []*row
	for _, r := range acc {
		if r.objects != 0 || r.bytes != 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := abs(rows[i].bytes), abs(rows[j].bytes)
		if ai != aj {
			return ai > aj
		}
		return rows[i].site < rows[j].site
	})
	if len(rows) == 0 {
		fmt.Fprintln(w, "heap: no per-site change")
		return nil
	}
	fmt.Fprintln(w, "heap delta by allocation site (new - old):")
	fmt.Fprintf(w, "  %+9s %+12s  %-20s %s\n", "objects", "bytes", "type", "site")
	for _, r := range rows {
		fmt.Fprintf(w, "  %+9d %+12d  %-20s %s\n", r.objects, r.bytes, r.typ, r.site)
	}
	return nil
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
