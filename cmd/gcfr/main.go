// Command gcfr inspects GC flight-recorder bundles: the forensic dumps the
// runtime writes on an assertion violation, a SIGQUIT request (mjrun), or a
// /debug/gcassert/fr scrape.
//
// Usage:
//
//	gcfr bundle.json                 pretty-print one bundle
//	gcfr -diff old.json new.json     diff two bundles' heap profiles
//	gcfr -pprof out.pb.gz bundle.json  extract the embedded heap profile
//
//	-cycles 10   recent cycles shown (0 = all)
//	-top 15      heap-profile rows shown (0 = all)
//
// The extracted profile is a gzipped pprof protobuf; `go tool pprof
// -sample_index=1 out.pb.gz` shows live bytes per allocation site.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gcassert/internal/flight"
)

func main() {
	diff := flag.Bool("diff", false, "diff two bundles (old new): heap growth by site, activity deltas")
	pprofOut := flag.String("pprof", "", "write the bundle's embedded heap profile to this file and exit")
	cycles := flag.Int("cycles", 10, "recent cycles to show (0 = all)")
	top := flag.Int("top", 15, "heap profile rows to show (0 = all)")
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fatal("usage: gcfr -diff old.json new.json")
		}
		diffBundles(readBundle(flag.Arg(0)), readBundle(flag.Arg(1)))
	case *pprofOut != "":
		if flag.NArg() != 1 {
			fatal("usage: gcfr -pprof out.pb.gz bundle.json")
		}
		b := readBundle(flag.Arg(0))
		if len(b.HeapProfile) == 0 {
			fatal("bundle carries no heap profile (was provenance enabled?)")
		}
		if err := os.WriteFile(*pprofOut, b.HeapProfile, 0o644); err != nil {
			fatal(err.Error())
		}
		fmt.Printf("wrote %d bytes to %s (try: go tool pprof -top -sample_index=1 %s)\n",
			len(b.HeapProfile), *pprofOut, *pprofOut)
	default:
		if flag.NArg() != 1 {
			fatal("usage: gcfr [-cycles N] [-top N] bundle.json (or -diff, -pprof; see -h)")
		}
		printBundle(readBundle(flag.Arg(0)), *cycles, *top)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "gcfr: "+msg)
	os.Exit(1)
}

func readBundle(path string) flight.Bundle {
	f, err := os.Open(path)
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	b, err := flight.ReadBundle(f)
	if err != nil {
		fatal(fmt.Sprintf("%s: %v", path, err))
	}
	return b
}

func printBundle(b flight.Bundle, maxCycles, top int) {
	fmt.Printf("flight bundle  trigger=%s  captured=%s\n",
		b.Trigger, time.Unix(0, b.CapturedUnixNs).UTC().Format(time.RFC3339))
	fmt.Printf("recorded: %d cycles total (%d retained), %d violations total (%d retained)\n\n",
		b.TotalCycles, len(b.Cycles), b.TotalViolations, len(b.Violations))

	cys := b.Cycles
	if maxCycles > 0 && len(cys) > maxCycles {
		fmt.Printf("cycles (last %d of %d retained):\n", maxCycles, len(cys))
		cys = cys[len(cys)-maxCycles:]
	} else {
		fmt.Println("cycles:")
	}
	fmt.Printf("  %4s %-14s %10s %8s %8s %8s %3s %s\n",
		"gc", "reason", "total", "marked", "freed", "live", "wrk", "notes")
	for i := range cys {
		cy := &cys[i]
		notes := cy.Fallback
		if notes != "" {
			notes = "fallback:" + notes
		}
		if n := violationsIn(b, cy.GC); n > 0 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("%d violation(s)", n)
		}
		fmt.Printf("  %4d %-14s %10s %8d %8d %8d %3d %s\n",
			cy.GC, cy.Reason, time.Duration(cy.TotalNs), cy.ObjectsMarked,
			cy.ObjectsFreed, cy.ObjectsLive, cy.Workers, notes)
		for _, d := range cy.CensusDelta {
			fmt.Printf("       %+d %s (%+d words)\n", d.Objects, d.TypeName, d.Words)
		}
	}

	if len(b.Violations) > 0 {
		fmt.Println("\nviolations:")
		for i := range b.Violations {
			v := &b.Violations[i]
			fmt.Printf("  gc %d  %s  %s", v.GC, v.Kind, v.TypeName)
			if v.Site != "" {
				fmt.Printf("  allocated at %s", v.Site)
			}
			fmt.Println()
			if len(v.Path) > 0 {
				fmt.Printf("        path: %s -> %s\n", v.Root, strings.Join(v.Path, " -> "))
			}
		}
	}

	if len(b.HeapProfile) > 0 {
		prof, err := flight.ParseProfile(b.HeapProfile)
		if err != nil {
			fatal(fmt.Sprintf("embedded heap profile: %v", err))
		}
		fmt.Printf("\nheap profile (%d sites):\n", len(prof.Samples))
		fmt.Printf("  %9s %12s  %-20s %s\n", "objects", "bytes", "type", "site")
		for i, s := range prof.Samples {
			if top > 0 && i == top {
				fmt.Printf("  ... %d more\n", len(prof.Samples)-top)
				break
			}
			fmt.Printf("  %9d %12d  %-20s %s\n", s.Values[0], s.Values[1], s.Labels["type"], s.Sites[0])
		}
	}
}

func violationsIn(b flight.Bundle, gc uint64) int {
	n := 0
	for i := range b.Violations {
		if b.Violations[i].GC == gc {
			n++
		}
	}
	return n
}

// diffBundles reports what changed between two dumps: per-(site, type) heap
// growth — the leak-hunting view — plus cycle and violation counters.
func diffBundles(old, new_ flight.Bundle) {
	fmt.Printf("cycles:     %d -> %d (+%d)\n", old.TotalCycles, new_.TotalCycles,
		int64(new_.TotalCycles)-int64(old.TotalCycles))
	fmt.Printf("violations: %d -> %d (+%d)\n", old.TotalViolations, new_.TotalViolations,
		int64(new_.TotalViolations)-int64(old.TotalViolations))

	type key struct{ site, typ string }
	type row struct {
		key
		objects, bytes int64
	}
	load := func(b flight.Bundle, sign int64, acc map[key]*row) {
		if len(b.HeapProfile) == 0 {
			return
		}
		prof, err := flight.ParseProfile(b.HeapProfile)
		if err != nil {
			fatal(fmt.Sprintf("heap profile: %v", err))
		}
		for _, s := range prof.Samples {
			k := key{site: s.Sites[0], typ: s.Labels["type"]}
			r := acc[k]
			if r == nil {
				r = &row{key: k}
				acc[k] = r
			}
			r.objects += sign * s.Values[0]
			r.bytes += sign * s.Values[1]
		}
	}
	acc := map[key]*row{}
	load(old, -1, acc)
	load(new_, +1, acc)
	var rows []*row
	for _, r := range acc {
		if r.objects != 0 || r.bytes != 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := abs(rows[i].bytes), abs(rows[j].bytes)
		if ai != aj {
			return ai > aj
		}
		return rows[i].site < rows[j].site
	})
	if len(rows) == 0 {
		fmt.Println("heap: no per-site change")
		return
	}
	fmt.Println("heap delta by allocation site (new - old):")
	fmt.Printf("  %+9s %+12s  %-20s %s\n", "objects", "bytes", "type", "site")
	for _, r := range rows {
		fmt.Printf("  %+9d %+12d  %-20s %s\n", r.objects, r.bytes, r.typ, r.site)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
