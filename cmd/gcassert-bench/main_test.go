package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/bench"
)

// writeRun dumps a synthetic run document for the compare-path tests: base
// trials in ns plus per-trial census overheads, on the named host.
func writeRun(t *testing.T, path, host string, base []int64, overheadPct []float64) {
	t.Helper()
	doc := &bench.RunDoc{
		SchemaVersion: bench.RunSchemaVersion, Trials: len(base), Iterations: 3,
		Runner: bench.RunnerMeta{Host: host, CPUs: 4, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.22"},
	}
	w := bench.WorkloadRun{Name: "_209_db"}
	for i := range base {
		w.BaseTrialsNs = append(w.BaseTrialsNs, base[i])
		w.CensusTrialsNs = append(w.CensusTrialsNs, int64(float64(base[i])*(1+overheadPct[i]/100)))
		w.OverheadTrialsPct = append(w.OverheadTrialsPct, overheadPct[i])
	}
	w.BaseMedianNs = base[len(base)/2]
	w.CensusMedianNs = w.CensusTrialsNs[len(base)/2]
	w.CensusOverheadPct = overheadPct[len(base)/2]
	doc.Workloads = append(doc.Workloads, w)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := doc.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	quiet := filepath.Join(dir, "quiet.json")
	slow := filepath.Join(dir, "slow.json")
	stale := filepath.Join(dir, "stale.json")
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	writeRun(t, quiet, "ci", base, []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9})
	writeRun(t, slow, "ci", base, []float64{31.5, 33.0, 30.2, 32.1, 34.0, 31.0})
	if err := os.WriteFile(stale, []byte(`{"schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"version", []string{"-version"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown figure", []string{"-figure", "7"}, 2},
		{"stray positional", []string{"stray.json"}, 2},
		{"gate without compare", []string{"-gate"}, 2},
		{"compare arity", []string{"-compare", quiet}, 2},
		{"compare missing file", []string{"-compare", quiet, filepath.Join(dir, "nope.json")}, 1},
		{"compare stale schema", []string{"-compare", stale, quiet}, 1},
		{"unknown workload", []string{"-bench", "no-such-workload"}, 1},
		{"compare A/A", []string{"-compare", quiet, quiet}, 0},
		{"compare regression ungated", []string{"-compare", quiet, slow}, 0},
		{"compare regression gated", []string{"-compare", "-gate", quiet, slow}, 3},
		{"compare improvement gated", []string{"-compare", "-gate", slow, quiet}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
}

func TestCompareOutputAAQuiet(t *testing.T) {
	dir := t.TempDir()
	quiet := filepath.Join(dir, "a.json")
	writeRun(t, quiet, "ci",
		[]int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000},
		[]float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-compare", "-gate", quiet, quiet}, &stdout, &stderr); got != 0 {
		t.Fatalf("A/A gated compare = %d\n%s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no confident regression") {
		t.Errorf("A/A compare should be quiet:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("A/A compare shows a regression verdict:\n%s", stdout.String())
	}
}

func TestCompareOutputFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	quiet := filepath.Join(dir, "a.json")
	slow := filepath.Join(dir, "b.json")
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	writeRun(t, quiet, "ci", base, []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9})
	writeRun(t, slow, "ci", base, []float64{31.5, 33.0, 30.2, 32.1, 34.0, 31.0})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-compare", quiet, slow}, &stdout, &stderr); got != 0 {
		t.Fatalf("ungated compare = %d\n%s", got, stderr.String())
	}
	for _, want := range []string{"census overhead", "REGRESSED", "CONFIDENT REGRESSION"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("compare output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestBaselineSmoke runs the real probe once, small, and checks the document
// it writes validates and carries the paired trial arrays.
func TestBaselineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measures a real workload")
	}
	path := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-baseline", path, "-bench", "_209_db", "-trials", "2", "-iters", "1"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	doc, err := bench.ReadRunDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	w := doc.Workload("_209_db")
	if w == nil || len(w.BaseTrialsNs) != 2 || len(w.OverheadTrialsPct) != 2 {
		t.Fatalf("baseline doc malformed: %+v", doc)
	}
	if doc.Runner.Fingerprint() != bench.CurrentRunner().Fingerprint() {
		t.Error("baseline not stamped with the current runner")
	}
}
