// Command gcassert-bench regenerates the paper's evaluation figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	gcassert-bench [-figure N] [-bench name] [-trials T] [-iters I] [-paper]
//	               [-workers N] [-baseline file]
//
//	-figure 0      run everything (default): Figures 2, 3, 4 and 5
//	-figure 2|3    infrastructure overhead across the full suite
//	-figure 4|5    assertion overhead on _209_db and pseudojbb
//	-bench name    restrict to one workload
//	-paper         use the paper's full methodology (20 trials, 4 iterations)
//	-workers N     mark-phase workers for every measured runtime (default 1,
//	               the sequential reference marker)
//	-baseline file instead of figures, run the baseline probe (ns/op, pause
//	               percentiles, census overhead, parallel-mark speedup sweep)
//	               on the assertion-bearing workloads and write
//	               machine-readable JSON to file ("-" for stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/bench/wutil"
)

func main() {
	figure := flag.Int("figure", 0, "figure to regenerate (2, 3, 4, 5; 0 = all)")
	name := flag.String("bench", "", "run only the named workload")
	trials := flag.Int("trials", 0, "override number of trials")
	iters := flag.Int("iters", 0, "override iterations per trial")
	paper := flag.Bool("paper", false, "use the paper's full methodology (20 trials x 4 iterations)")
	workers := flag.Int("workers", 1, "mark-phase workers for every measured runtime (1 = sequential)")
	baseline := flag.String("baseline", "", "write a machine-readable baseline JSON to this file and exit")
	flag.Parse()

	opt := bench.DefaultOptions()
	if *paper {
		opt = bench.PaperOptions()
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *iters > 0 {
		opt.Iterations = *iters
	}
	opt.Workers = *workers

	suite := workloads.All()
	if *name != "" {
		w, err := workloads.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		suite = []bench.Workload{w}
	}

	if *baseline != "" {
		if err := writeBaseline(*baseline, suite, opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	wantInfraFigs := *figure == 0 || *figure == 2 || *figure == 3
	wantAssertFigs := *figure == 0 || *figure == 4 || *figure == 5

	var infraComps, assertComps []*bench.Comparison
	if wantInfraFigs {
		for _, w := range suite {
			fmt.Fprintf(os.Stderr, "measuring %-12s (Base, Infrastructure; %d trials x %d iters)\n",
				w.Name, opt.Trials, opt.Iterations)
			infraComps = append(infraComps, bench.Compare(w, []bench.Mode{bench.Base, bench.Infra}, opt))
		}
	}
	if wantAssertFigs {
		for _, w := range suite {
			if !w.HasAsserts {
				continue
			}
			fmt.Fprintf(os.Stderr, "measuring %-12s (Base, Infrastructure, WithAssertions)\n", w.Name)
			assertComps = append(assertComps,
				bench.Compare(w, []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions}, opt))
		}
	}

	switch *figure {
	case 0:
		bench.PrintFigure2(os.Stdout, infraComps)
		bench.PrintFigure3(os.Stdout, infraComps)
		bench.PrintFigure4(os.Stdout, assertComps)
		bench.PrintFigure5(os.Stdout, assertComps)
	case 2:
		bench.PrintFigure2(os.Stdout, infraComps)
	case 3:
		bench.PrintFigure3(os.Stdout, infraComps)
	case 4:
		bench.PrintFigure4(os.Stdout, assertComps)
	case 5:
		bench.PrintFigure5(os.Stdout, assertComps)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (want 2, 3, 4, 5 or 0)\n", *figure)
		os.Exit(1)
	}
}

// baselineDoc is the machine-readable baseline: one record per workload,
// suitable for regression-diffing in CI or archiving next to figure output.
type baselineDoc struct {
	GeneratedUnix int64              `json:"generated_unix"`
	Trials        int                `json:"trials"`
	Iterations    int                `json:"iterations"`
	CPUs          int                `json:"cpus"`
	Workloads     []workloadBaseline `json:"workloads"`
	// MarkSpeedup is the parallel-mark worker sweep: the same live heap
	// re-marked at several widths. Speedups are relative to the sequential
	// marker on the machine that generated the file — on a single-CPU host
	// they hover around 1.0 (see the cpus field).
	MarkSpeedup []markSpeedupBaseline `json:"mark_speedup"`
	// AssertCost is the cost-attribution profile of each assertion-bearing
	// workload: cumulative per-kind check counts and attributed slow-path
	// time over a full assertion-enabled run.
	AssertCost []assertCostBaseline `json:"assert_cost"`
	// AllocRate is the mutator-pressure profile of the same runs: the
	// allocation-rate EWMA at the final collection and the occupancy
	// timeline coverage.
	AllocRate []allocRateBaseline `json:"alloc_rate"`
}

type assertCostBaseline struct {
	Name    string          `json:"name"`
	TotalGC int64           `json:"total_gc_ns"`
	Kinds   []costKindPoint `json:"kinds"`
}

type costKindPoint struct {
	Kind   string  `json:"kind"`
	Checks uint64  `json:"checks"`
	Ns     int64   `json:"ns"`
	PctGC  float64 `json:"pct_of_gc"`
}

type allocRateBaseline struct {
	Name              string  `json:"name"`
	AllocRateWps      float64 `json:"alloc_rate_wps"`
	OccupancySamples  int     `json:"occupancy_samples"`
	FinalOccupancyPct float64 `json:"final_occupancy_pct"`
	Threads           int     `json:"threads"`
}

type markSpeedupBaseline struct {
	Name   string           `json:"name"`
	Widths []markWidthPoint `json:"widths"`
}

type markWidthPoint struct {
	Workers  int     `json:"workers"`
	MarkNs   int64   `json:"mark_ns"`
	Speedup  float64 `json:"speedup"`
	Marked   int     `json:"objects_marked"`
	StealsMu float64 `json:"steals_mean"`
}

type workloadBaseline struct {
	Name string `json:"name"`
	// BaseNsPerOp and CensusNsPerOp are mean measured-iteration times with
	// introspection off and on; CensusOverheadPct is their relative delta.
	BaseNsPerOp       int64   `json:"base_ns_per_op"`
	CensusNsPerOp     int64   `json:"census_ns_per_op"`
	CensusOverheadPct float64 `json:"census_overhead_pct"`
	// Pause percentiles come from a telemetry-enabled census run.
	PauseP50Ns  int64  `json:"pause_p50_ns"`
	PauseP99Ns  int64  `json:"pause_p99_ns"`
	PauseMaxNs  int64  `json:"pause_max_ns"`
	Collections uint64 `json:"collections"`
	// CensusLiveWords is the final census total, which must equal the
	// collector's live-words accounting (recorded so a drift is visible in
	// the archived file, not only in tests).
	CensusLiveWords uint64 `json:"census_live_words"`
	LiveWordsMatch  bool   `json:"live_words_match"`
}

// measureIters runs the workload on a fresh runtime and returns the mean
// measured-iteration time, averaged over trials (warmup iterations excluded),
// plus the final runtime for stats inspection.
func measureIters(w bench.Workload, opt bench.Options, mkOpts func() gcassert.Options) (time.Duration, *gcassert.Runtime) {
	var sum time.Duration
	var vm *gcassert.Runtime
	for trial := 0; trial < opt.Trials; trial++ {
		vm = gcassert.New(mkOpts())
		run := w.New(vm, false)
		for i := 0; i < opt.Iterations-1; i++ {
			run(i)
		}
		start := time.Now()
		run(opt.Iterations - 1)
		sum += time.Since(start)
	}
	return sum / time.Duration(opt.Trials), vm
}

// measureMarkSpeedup builds one live heap from the workload and re-marks it
// at several worker widths, timing only the mark phase. The heap does not
// change between collections, so every width traces the identical object
// graph — the cleanest apples-to-apples mark comparison the harness can get.
func measureMarkSpeedup(w bench.Workload, opt bench.Options) markSpeedupBaseline {
	const reps = 5
	vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap})
	run := w.New(vm, false)
	for i := 0; i < opt.Iterations; i++ {
		run(i)
	}
	out := markSpeedupBaseline{Name: w.Name}
	var seqNs int64
	for _, width := range []int{1, 2, 4, 8} {
		vm.SetMarkWorkers(width)
		vm.Collect() // warm: builds the engine and settles the live set
		var markNs int64
		var steals, marked int
		for r := 0; r < reps; r++ {
			col := vm.Collect()
			markNs += col.MarkTime.Nanoseconds()
			marked = col.ObjectsMarked
			for _, ws := range col.PerWorker {
				steals += ws.Steals
			}
		}
		mean := markNs / reps
		p := markWidthPoint{Workers: width, MarkNs: mean, Marked: marked, StealsMu: float64(steals) / reps}
		if width == 1 {
			seqNs = mean
		}
		if mean > 0 {
			p.Speedup = float64(seqNs) / float64(mean)
		}
		out.Widths = append(out.Widths, p)
	}
	return out
}

// measureAttribution runs one workload with its assertions armed and cost
// attribution on, folding the run's telemetry events into cumulative
// per-kind cost rows and the closing pressure snapshot.
func measureAttribution(w bench.Workload, opt bench.Options) (assertCostBaseline, allocRateBaseline) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: w.Heap, Infrastructure: true,
		Telemetry: true, CostAttribution: true,
	})
	run := w.New(vm, true)
	for i := 0; i < opt.Iterations; i++ {
		run(i)
	}
	vm.Collect()

	cost := assertCostBaseline{Name: w.Name}
	checks := map[string]uint64{}
	ns := map[string]int64{}
	var order []string
	for _, ev := range vm.Telemetry().Events() {
		cost.TotalGC += ev.TotalNs
		for _, c := range ev.Costs {
			if _, seen := checks[c.Kind]; !seen {
				order = append(order, c.Kind)
			}
			checks[c.Kind] += c.Checks
			ns[c.Kind] += c.Ns
		}
	}
	for _, kind := range order {
		p := costKindPoint{Kind: kind, Checks: checks[kind], Ns: ns[kind]}
		if cost.TotalGC > 0 {
			p.PctGC = 100 * float64(p.Ns) / float64(cost.TotalGC)
		}
		cost.Kinds = append(cost.Kinds, p)
	}

	rate := allocRateBaseline{Name: w.Name}
	if pr, ok := vm.Pressure(); ok {
		rate.AllocRateWps = pr.AllocRateWps
		rate.OccupancySamples = len(pr.Occupancy)
		if n := len(pr.Occupancy); n > 0 {
			rate.FinalOccupancyPct = pr.Occupancy[n-1].Pct
		}
		rate.Threads = len(pr.Threads)
	}
	return cost, rate
}

// writeBaseline measures the assertion-bearing workloads (the paper's
// featured pair unless -bench narrowed the suite) and writes the JSON
// baseline.
func writeBaseline(path string, suite []bench.Workload, opt bench.Options) error {
	doc := baselineDoc{
		GeneratedUnix: time.Now().Unix(),
		Trials:        opt.Trials,
		Iterations:    opt.Iterations,
		CPUs:          runtime.NumCPU(),
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue // baseline tracks the paper's featured workloads
		}
		fmt.Fprintf(os.Stderr, "baseline %-12s (%d trials x %d iters, base + census)\n",
			w.Name, opt.Trials, opt.Iterations)
		base, _ := measureIters(w, opt, func() gcassert.Options {
			return gcassert.Options{HeapBytes: w.Heap}
		})
		census, vm := measureIters(w, opt, func() gcassert.Options {
			return gcassert.Options{HeapBytes: w.Heap, Telemetry: true, Introspection: true}
		})
		wb := workloadBaseline{
			Name:              w.Name,
			BaseNsPerOp:       base.Nanoseconds(),
			CensusNsPerOp:     census.Nanoseconds(),
			CensusOverheadPct: 100 * (float64(census)/float64(base) - 1),
			Collections:       vm.GCStats().Collections,
		}
		h := vm.Telemetry().PauseHistogram()
		wb.PauseP50Ns = h.Quantile(0.5).Nanoseconds()
		wb.PauseP99Ns = h.Quantile(0.99).Nanoseconds()
		wb.PauseMaxNs = h.Max().Nanoseconds()
		// Force one final collection so the census and the heap accounting
		// describe the same instant, then cross-check them.
		vm.Collect()
		if snap, ok := vm.LatestCensus(); ok {
			wb.CensusLiveWords = snap.TotalCellWords
			wb.LiveWordsMatch = snap.TotalCellWords == vm.HeapStats().LiveWords
		}
		wutil.WriteGCSummary(os.Stderr, vm, census*time.Duration(opt.Trials))
		doc.Workloads = append(doc.Workloads, wb)
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue
		}
		fmt.Fprintf(os.Stderr, "mark speedup %-12s (widths 1,2,4,8 on %d CPUs)\n", w.Name, doc.CPUs)
		doc.MarkSpeedup = append(doc.MarkSpeedup, measureMarkSpeedup(w, opt))
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue
		}
		fmt.Fprintf(os.Stderr, "attribution %-12s (assertions + cost accounting)\n", w.Name)
		cost, rate := measureAttribution(w, opt)
		doc.AssertCost = append(doc.AssertCost, cost)
		doc.AllocRate = append(doc.AllocRate, rate)
	}

	dst := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
