// Command gcassert-bench regenerates the paper's evaluation figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	gcassert-bench [-figure N] [-bench name] [-trials T] [-iters I] [-paper]
//
//	-figure 0      run everything (default): Figures 2, 3, 4 and 5
//	-figure 2|3    infrastructure overhead across the full suite
//	-figure 4|5    assertion overhead on _209_db and pseudojbb
//	-bench name    restrict to one workload
//	-paper         use the paper's full methodology (20 trials, 4 iterations)
package main

import (
	"flag"
	"fmt"
	"os"

	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
)

func main() {
	figure := flag.Int("figure", 0, "figure to regenerate (2, 3, 4, 5; 0 = all)")
	name := flag.String("bench", "", "run only the named workload")
	trials := flag.Int("trials", 0, "override number of trials")
	iters := flag.Int("iters", 0, "override iterations per trial")
	paper := flag.Bool("paper", false, "use the paper's full methodology (20 trials x 4 iterations)")
	flag.Parse()

	opt := bench.DefaultOptions()
	if *paper {
		opt = bench.PaperOptions()
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *iters > 0 {
		opt.Iterations = *iters
	}

	suite := workloads.All()
	if *name != "" {
		w, err := workloads.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		suite = []bench.Workload{w}
	}

	wantInfraFigs := *figure == 0 || *figure == 2 || *figure == 3
	wantAssertFigs := *figure == 0 || *figure == 4 || *figure == 5

	var infraComps, assertComps []*bench.Comparison
	if wantInfraFigs {
		for _, w := range suite {
			fmt.Fprintf(os.Stderr, "measuring %-12s (Base, Infrastructure; %d trials x %d iters)\n",
				w.Name, opt.Trials, opt.Iterations)
			infraComps = append(infraComps, bench.Compare(w, []bench.Mode{bench.Base, bench.Infra}, opt))
		}
	}
	if wantAssertFigs {
		for _, w := range suite {
			if !w.HasAsserts {
				continue
			}
			fmt.Fprintf(os.Stderr, "measuring %-12s (Base, Infrastructure, WithAssertions)\n", w.Name)
			assertComps = append(assertComps,
				bench.Compare(w, []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions}, opt))
		}
	}

	switch *figure {
	case 0:
		bench.PrintFigure2(os.Stdout, infraComps)
		bench.PrintFigure3(os.Stdout, infraComps)
		bench.PrintFigure4(os.Stdout, assertComps)
		bench.PrintFigure5(os.Stdout, assertComps)
	case 2:
		bench.PrintFigure2(os.Stdout, infraComps)
	case 3:
		bench.PrintFigure3(os.Stdout, infraComps)
	case 4:
		bench.PrintFigure4(os.Stdout, assertComps)
	case 5:
		bench.PrintFigure5(os.Stdout, assertComps)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (want 2, 3, 4, 5 or 0)\n", *figure)
		os.Exit(1)
	}
}
