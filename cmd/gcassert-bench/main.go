// Command gcassert-bench regenerates the paper's evaluation figures on the
// synthetic benchmark suite and maintains the machine-readable benchmark
// trajectory.
//
// Usage:
//
//	gcassert-bench [-figure N] [-bench name] [-trials T] [-iters I] [-paper]
//	               [-workers N]
//	gcassert-bench -baseline run.json [flags]
//	gcassert-bench -compare [-gate] old.json new.json
//
//	-figure 0      run everything (default): Figures 2, 3, 4 and 5
//	-figure 2|3    infrastructure overhead across the full suite
//	-figure 4|5    assertion overhead on _209_db and pseudojbb
//	-bench name    restrict to one workload
//	-paper         use the paper's full methodology (20 trials, 4 iterations)
//	-workers N     mark-phase workers for every measured runtime (default 1,
//	               the sequential reference marker)
//
// -baseline runs the baseline probe (per-trial base/census times, pause
// percentiles, census overhead, parallel-mark speedup sweep) on the
// assertion-bearing workloads and writes a versioned BENCH_run JSON document
// to the file ("-" for stdout). Base and census trials are interleaved
// A/B/A/B so machine drift cannot masquerade as configuration overhead, and
// the document carries per-trial arrays plus a runner stamp so later
// comparisons can test significance and know whether absolute times are
// comparable.
//
// -compare diffs two run documents: Mann–Whitney significance per metric,
// confident verdicts on machine-independent overhead ratios always and on
// absolute times only when the runner fingerprints match. With -gate a
// confident regression exits 3 — the CI tripwire.
//
// Exit status: 0 on success, 1 when an input is missing or malformed, 2 on
// usage errors, 3 when -gate found a confident regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: 0 on success, 1 on data errors, 2 on
// usage errors, 3 when -gate trips on a confident regression.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcassert-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figure := fs.Int("figure", 0, "figure to regenerate (2, 3, 4, 5; 0 = all)")
	name := fs.String("bench", "", "run only the named workload")
	trials := fs.Int("trials", 0, "override number of trials")
	iters := fs.Int("iters", 0, "override iterations per trial")
	paper := fs.Bool("paper", false, "use the paper's full methodology (20 trials x 4 iterations)")
	workers := fs.Int("workers", 1, "mark-phase workers for every measured runtime (1 = sequential)")
	baseline := fs.String("baseline", "", "write a versioned BENCH_run JSON to this file and exit (\"-\" = stdout)")
	compare := fs.Bool("compare", false, "compare two run documents (old.json new.json) and print the delta table")
	gate := fs.Bool("gate", false, "with -compare: exit 3 when a confident regression is found")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "gcassert-bench")
		return 0
	}

	usage := func(msg string) int {
		fmt.Fprintln(stderr, "gcassert-bench: usage: "+msg)
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "gcassert-bench:", err)
		return 1
	}

	if *compare {
		if fs.NArg() != 2 {
			return usage("gcassert-bench -compare [-gate] old.json new.json")
		}
		oldDoc, err := bench.ReadRunDoc(fs.Arg(0))
		if err != nil {
			return dataErr(err)
		}
		newDoc, err := bench.ReadRunDoc(fs.Arg(1))
		if err != nil {
			return dataErr(err)
		}
		res := bench.CompareRuns(oldDoc, newDoc)
		bench.PrintCompare(stdout, oldDoc, newDoc, res)
		if *gate && res.HasRegression() {
			return 3
		}
		return 0
	}
	if *gate {
		return usage("-gate only applies to -compare")
	}
	if fs.NArg() != 0 {
		return usage("positional arguments only with -compare")
	}
	switch *figure {
	case 0, 2, 3, 4, 5:
	default:
		return usage(fmt.Sprintf("unknown figure %d (want 2, 3, 4, 5 or 0)", *figure))
	}

	opt := bench.DefaultOptions()
	if *paper {
		opt = bench.PaperOptions()
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *iters > 0 {
		opt.Iterations = *iters
	}
	opt.Workers = *workers

	suite := workloads.All()
	if *name != "" {
		w, err := workloads.ByName(*name)
		if err != nil {
			return dataErr(err)
		}
		suite = []bench.Workload{w}
	}

	if *baseline != "" {
		doc := bench.MeasureBaseline(suite, opt, stderr)
		if len(doc.Workloads) == 0 {
			return dataErr(fmt.Errorf("no assertion-bearing workloads in the selection — the baseline tracks the paper's featured pair"))
		}
		dst := stdout
		if *baseline != "-" {
			f, err := os.Create(*baseline)
			if err != nil {
				return dataErr(err)
			}
			defer f.Close()
			dst = f
		}
		if err := doc.WriteJSON(dst); err != nil {
			return dataErr(err)
		}
		return 0
	}

	wantInfraFigs := *figure == 0 || *figure == 2 || *figure == 3
	wantAssertFigs := *figure == 0 || *figure == 4 || *figure == 5

	var infraComps, assertComps []*bench.Comparison
	if wantInfraFigs {
		for _, w := range suite {
			fmt.Fprintf(stderr, "measuring %-12s (Base, Infrastructure; %d trials x %d iters)\n",
				w.Name, opt.Trials, opt.Iterations)
			infraComps = append(infraComps, bench.Compare(w, []bench.Mode{bench.Base, bench.Infra}, opt))
		}
	}
	if wantAssertFigs {
		for _, w := range suite {
			if !w.HasAsserts {
				continue
			}
			fmt.Fprintf(stderr, "measuring %-12s (Base, Infrastructure, WithAssertions)\n", w.Name)
			assertComps = append(assertComps,
				bench.Compare(w, []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions}, opt))
		}
	}

	switch *figure {
	case 0:
		bench.PrintFigure2(stdout, infraComps)
		bench.PrintFigure3(stdout, infraComps)
		bench.PrintFigure4(stdout, assertComps)
		bench.PrintFigure5(stdout, assertComps)
	case 2:
		bench.PrintFigure2(stdout, infraComps)
	case 3:
		bench.PrintFigure3(stdout, infraComps)
	case 4:
		bench.PrintFigure4(stdout, assertComps)
	case 5:
		bench.PrintFigure5(stdout, assertComps)
	}
	return 0
}
