// Command gcheap runs a registered workload with heap introspection enabled
// and reports what the heap did: the per-GC census trend, ranked leak
// suspects with root-to-object paths, and dominator-tree top retainers.
//
// Usage:
//
//	gcheap [-workload name] [-iters N] [-heap bytes] [-leak]
//	       [-window N] [-top N] [-retainers N] [-trend N]
//	       [-json] [-dot file] [-http addr] [-list]
//
//	-workload pseudojbb  workload to run (see -list)
//	-iters 3             workload iterations
//	-leak                seed the pseudojbb orderTable leak (the paper's
//	                     §3.2.1 bug) so the diagnostics have something to find;
//	                     pseudojbb only
//	-window 0            snapshots to diff for leak ranking (0 = all retained)
//	-top 5               leak suspects to report
//	-retainers 10        dominator top retainers to report (0 disables)
//	-trend 8             census snapshots shown in the trend table
//	-json                emit census + leak JSON documents instead of text
//	-dot file            also write the dominator tree in Graphviz DOT format
//	-http addr           serve /metrics and /debug/gcassert/* (census, leaks,
//	                     trace, violations) on addr; stays up after the run
//
// The run always ends with a forced collection followed by a census/GCStats
// cross-check: the census total must equal the collector's live-words
// accounting exactly — they are two independent walks of the same marked
// heap, so any deviation is a bug.
//
// Exit status: 0 on success, 1 when output cannot be written or the census
// cross-check fails, 2 on usage errors (unknown flags or workloads, stray
// arguments, -leak outside pseudojbb).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/jbb"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/bench/wutil"
	"gcassert/internal/heap"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: flags from args, report to stdout,
// diagnostics to stderr, exit code returned. 2 means the invocation was
// wrong; 1 means the run itself failed (unwritable output, cross-check
// mismatch).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcheap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "pseudojbb", "workload to run")
	list := fs.Bool("list", false, "list workloads and exit")
	iters := fs.Int("iters", 3, "workload iterations")
	heapBytes := fs.Int("heap", 0, "override the workload's heap size (bytes)")
	leak := fs.Bool("leak", false, "seed the pseudojbb orderTable leak (pseudojbb only)")
	window := fs.Int("window", 0, "snapshots to diff for leak ranking (0 = all)")
	top := fs.Int("top", 5, "leak suspects to report")
	retainers := fs.Int("retainers", 10, "dominator top retainers to report (0 = skip)")
	trend := fs.Int("trend", 8, "census snapshots shown in the trend table")
	jsonOut := fs.Bool("json", false, "emit census and leak JSON instead of text")
	dotFile := fs.String("dot", "", "write the dominator tree as DOT to this file")
	ring := fs.Int("ring", 256, "census snapshot ring capacity")
	httpAddr := fs.String("http", "", "serve telemetry + census endpoints on this address")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the problem + usage to stderr
	}
	if *showVersion {
		version.Print(stdout, "gcheap")
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcheap: unexpected argument %q (gcheap takes flags only; see -h)\n", fs.Arg(0))
		return 2
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "%-12s heap=%d\n", w.Name, w.Heap)
		}
		return 0
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(stderr, "gcheap:", err)
		return 2
	}
	if *leak {
		if w.Name != "pseudojbb" {
			fmt.Fprintln(stderr, "gcheap: -leak is only meaningful with -workload pseudojbb")
			return 2
		}
		w = leakyPseudojbb(w.Heap)
	}
	if *heapBytes > 0 {
		w.Heap = *heapBytes
	}

	vm := gcassert.New(gcassert.Options{
		HeapBytes:      w.Heap,
		Telemetry:      true,
		Introspection:  true,
		CensusRingSize: *ring,
	})

	if *httpAddr != "" {
		go func() {
			fmt.Fprintf(stderr, "serving on http://%s/debug/gcassert/census\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, vm.TelemetryHandler()); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	runFn := w.New(vm, false)
	start := time.Now()
	runAll(stderr, vm, runFn, *iters)
	elapsed := time.Since(start)
	// A final forced collection pins the census to the instant the report
	// describes; everything below reads that snapshot.
	vm.Collect()

	if *jsonOut {
		if err := vm.WriteCensusJSON(stdout, *trend); err != nil {
			fmt.Fprintln(stderr, "gcheap:", err)
			return 1
		}
		if err := vm.WriteLeaksJSON(stdout, *window, *top); err != nil {
			fmt.Fprintln(stderr, "gcheap:", err)
			return 1
		}
	} else {
		printTrend(stdout, vm, *trend)
		printSuspects(stdout, vm, *window, *top)
		if *retainers > 0 {
			printRetainers(stdout, vm, *retainers)
		}
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintln(stderr, "gcheap:", err)
			return 1
		}
		if err := vm.WriteDominatorDOT(f, 0); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "gcheap:", err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stderr, "dominator tree written to %s\n", *dotFile)
	}

	if !crossCheck(stderr, vm) {
		return 1
	}
	wutil.WriteGCSummary(stderr, vm, elapsed)

	if *httpAddr != "" {
		fmt.Fprintln(stderr, "run complete; server still up (interrupt to exit)")
		select {}
	}
	return 0
}

// leakyPseudojbb is pseudojbb with the §3.2.1 orderTable bug seeded:
// DeliveryTransaction never removes delivered Orders from the B-tree, so
// Order (and the B-tree nodes holding them) grow without bound — the ground
// truth the leak ranking is expected to find.
func leakyPseudojbb(heapBytes int) bench.Workload {
	return bench.Workload{Name: "pseudojbb-leaky", Heap: heapBytes,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			cfg := jbb.DefaultConfig()
			cfg.LeakOrderTable = true
			j := jbb.New(vm, cfg)
			return j.RunIteration
		}}
}

// runAll executes the iterations, surviving heap exhaustion: a seeded leak
// eventually OOMs a tight heap, and the census collected up to that point is
// exactly what the diagnostics need.
func runAll(stderr io.Writer, vm *gcassert.Runtime, run func(int), iters int) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && strings.Contains(err.Error(), "out of memory") {
				fmt.Fprintf(stderr, "(heap exhausted mid-run: %v)\n", err)
				return
			}
			panic(r)
		}
	}()
	for i := 0; i < iters; i++ {
		run(i)
	}
}

func kb(words uint64) float64 { return float64(words*heap.WordBytes) / 1024 }

// printTrend renders the last n census snapshots as a table.
func printTrend(w io.Writer, vm *gcassert.Runtime, n int) {
	snaps := vm.CensusSnapshots()
	total := len(snaps)
	if n > 0 && total > n {
		snaps = snaps[total-n:]
	}
	fmt.Fprintf(w, "census trend (last %d of %d snapshots):\n", len(snaps), total)
	fmt.Fprintf(w, "  %6s  %-20s %10s %12s  %s\n", "gc", "reason", "objects", "KiB", "top type")
	for i := range snaps {
		s := &snaps[i]
		topType := "-"
		if len(s.Types) > 0 {
			topType = fmt.Sprintf("%s (%.1f KiB)", s.Types[0].TypeName, kb(s.Types[0].Words))
		}
		fmt.Fprintf(w, "  %6d  %-20s %10d %12.1f  %s\n",
			s.GC, s.Reason, s.TotalObjects, kb(s.TotalWords), topType)
	}
	fmt.Fprintln(w)
}

// printSuspects renders the ranked leak suspects with sampled root paths.
func printSuspects(w io.Writer, vm *gcassert.Runtime, window, top int) {
	reports := vm.LeakSuspects(window, top)
	if len(reports) == 0 {
		fmt.Fprintln(w, "leak suspects: none (no type shows consistent growth)")
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "leak suspects (over GCs %d..%d):\n", reports[0].FirstGC, reports[0].LastGC)
	for i, rep := range reports {
		fmt.Fprintf(w, "  #%d %-20s %+9.1f KiB/GC  growth %3.0f%%  (%.1f -> %.1f KiB, %d -> %d objects)\n",
			i+1, rep.TypeName, kb(1)*rep.SlopeWordsPerGC, 100*rep.Growth,
			kb(rep.StartWords), kb(rep.EndWords), rep.StartObjects, rep.EndObjects)
		if len(rep.Path) > 0 {
			fmt.Fprintf(w, "     kept alive via root %s:\n", rep.Root)
			fmt.Fprintf(w, "       %s\n", formatPath(rep.Path))
		}
	}
	fmt.Fprintln(w)
}

// formatPath renders a root path in the violation-report style, one line.
func formatPath(path []gcassert.PathStep) string {
	var b strings.Builder
	for i, s := range path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(s.TypeName)
		if s.Field != "" {
			b.WriteString(" ." + s.Field)
		}
	}
	return b.String()
}

// printRetainers renders the dominator analysis.
func printRetainers(w io.Writer, vm *gcassert.Runtime, n int) {
	dom := vm.Dominators()
	fmt.Fprintf(w, "top retainers (dominator analysis over %d objects):\n", dom.Graph().NumObjects())
	for _, r := range dom.TopRetainers(n) {
		root := ""
		if r.Root != "" {
			root = "  [" + r.Root + "]"
		}
		fmt.Fprintf(w, "  %-20s retains %10.1f KiB (%6d objects, shallow %.1f KiB)%s\n",
			r.TypeName, kb(r.RetainedWords), r.Dominated, kb(r.ShallowWords), root)
	}
	fmt.Fprintln(w, "retained by type (subtree heads only):")
	for _, t := range dom.TypeRetainers(n) {
		fmt.Fprintf(w, "  %-20s %10.1f KiB across %d heads\n", t.TypeName, kb(t.RetainedWords), t.Objects)
	}
	fmt.Fprintln(w)
}

// crossCheck verifies the census against the collector's own accounting.
func crossCheck(stderr io.Writer, vm *gcassert.Runtime) bool {
	snap, ok := vm.LatestCensus()
	if !ok {
		fmt.Fprintln(stderr, "census cross-check: no snapshots (no collection ran)")
		return true
	}
	live := vm.HeapStats().LiveWords
	if snap.TotalCellWords == live {
		fmt.Fprintf(stderr, "census cross-check: %d live words == GCStats %d  OK\n",
			snap.TotalCellWords, live)
		return true
	}
	fmt.Fprintf(stderr, "census cross-check: FAILED — census %d words, GCStats %d\n",
		snap.TotalCellWords, live)
	return false
}
