// Command gcheap runs a registered workload with heap introspection enabled
// and reports what the heap did: the per-GC census trend, ranked leak
// suspects with root-to-object paths, and dominator-tree top retainers.
//
// Usage:
//
//	gcheap [-workload name] [-iters N] [-heap bytes] [-leak]
//	       [-window N] [-top N] [-retainers N] [-trend N]
//	       [-json] [-dot file] [-http addr] [-list]
//
//	-workload pseudojbb  workload to run (see -list)
//	-iters 3             workload iterations
//	-leak                seed the pseudojbb orderTable leak (the paper's
//	                     §3.2.1 bug) so the diagnostics have something to find;
//	                     pseudojbb only
//	-window 0            snapshots to diff for leak ranking (0 = all retained)
//	-top 5               leak suspects to report
//	-retainers 10        dominator top retainers to report (0 disables)
//	-trend 8             census snapshots shown in the trend table
//	-json                emit census + leak JSON documents instead of text
//	-dot file            also write the dominator tree in Graphviz DOT format
//	-http addr           serve /metrics and /debug/gcassert/* (census, leaks,
//	                     trace, violations) on addr; stays up after the run
//
// The run always ends with a forced collection followed by a census/GCStats
// cross-check: the census total must equal the collector's live-words
// accounting exactly — they are two independent walks of the same marked
// heap, so any deviation is a bug.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/jbb"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/bench/wutil"
	"gcassert/internal/heap"
)

func main() {
	workload := flag.String("workload", "pseudojbb", "workload to run")
	list := flag.Bool("list", false, "list workloads and exit")
	iters := flag.Int("iters", 3, "workload iterations")
	heapBytes := flag.Int("heap", 0, "override the workload's heap size (bytes)")
	leak := flag.Bool("leak", false, "seed the pseudojbb orderTable leak (pseudojbb only)")
	window := flag.Int("window", 0, "snapshots to diff for leak ranking (0 = all)")
	top := flag.Int("top", 5, "leak suspects to report")
	retainers := flag.Int("retainers", 10, "dominator top retainers to report (0 = skip)")
	trend := flag.Int("trend", 8, "census snapshots shown in the trend table")
	jsonOut := flag.Bool("json", false, "emit census and leak JSON instead of text")
	dotFile := flag.String("dot", "", "write the dominator tree as DOT to this file")
	ring := flag.Int("ring", 256, "census snapshot ring capacity")
	httpAddr := flag.String("http", "", "serve telemetry + census endpoints on this address")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-12s heap=%d\n", w.Name, w.Heap)
		}
		return
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *leak {
		if w.Name != "pseudojbb" {
			fmt.Fprintln(os.Stderr, "-leak is only meaningful with -workload pseudojbb")
			os.Exit(1)
		}
		w = leakyPseudojbb(w.Heap)
	}
	if *heapBytes > 0 {
		w.Heap = *heapBytes
	}

	vm := gcassert.New(gcassert.Options{
		HeapBytes:      w.Heap,
		Telemetry:      true,
		Introspection:  true,
		CensusRingSize: *ring,
	})

	if *httpAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "serving on http://%s/debug/gcassert/census\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, vm.TelemetryHandler()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	run := w.New(vm, false)
	start := time.Now()
	runAll(vm, run, *iters)
	elapsed := time.Since(start)
	// A final forced collection pins the census to the instant the report
	// describes; everything below reads that snapshot.
	vm.Collect()

	if *jsonOut {
		if err := vm.WriteCensusJSON(os.Stdout, *trend); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := vm.WriteLeaksJSON(os.Stdout, *window, *top); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		printTrend(vm, *trend)
		printSuspects(vm, *window, *top)
		if *retainers > 0 {
			printRetainers(vm, *retainers)
		}
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := vm.WriteDominatorDOT(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "dominator tree written to %s\n", *dotFile)
	}

	crossCheck(vm)
	wutil.WriteGCSummary(os.Stderr, vm, elapsed)

	if *httpAddr != "" {
		fmt.Fprintln(os.Stderr, "run complete; server still up (interrupt to exit)")
		select {}
	}
}

// leakyPseudojbb is pseudojbb with the §3.2.1 orderTable bug seeded:
// DeliveryTransaction never removes delivered Orders from the B-tree, so
// Order (and the B-tree nodes holding them) grow without bound — the ground
// truth the leak ranking is expected to find.
func leakyPseudojbb(heapBytes int) bench.Workload {
	return bench.Workload{Name: "pseudojbb-leaky", Heap: heapBytes,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			cfg := jbb.DefaultConfig()
			cfg.LeakOrderTable = true
			j := jbb.New(vm, cfg)
			return j.RunIteration
		}}
}

// runAll executes the iterations, surviving heap exhaustion: a seeded leak
// eventually OOMs a tight heap, and the census collected up to that point is
// exactly what the diagnostics need.
func runAll(vm *gcassert.Runtime, run func(int), iters int) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && strings.Contains(err.Error(), "out of memory") {
				fmt.Fprintf(os.Stderr, "(heap exhausted mid-run: %v)\n", err)
				return
			}
			panic(r)
		}
	}()
	for i := 0; i < iters; i++ {
		run(i)
	}
}

func kb(words uint64) float64 { return float64(words*heap.WordBytes) / 1024 }

// printTrend renders the last n census snapshots as a table.
func printTrend(vm *gcassert.Runtime, n int) {
	snaps := vm.CensusSnapshots()
	total := len(snaps)
	if n > 0 && total > n {
		snaps = snaps[total-n:]
	}
	fmt.Printf("census trend (last %d of %d snapshots):\n", len(snaps), total)
	fmt.Printf("  %6s  %-20s %10s %12s  %s\n", "gc", "reason", "objects", "KiB", "top type")
	for i := range snaps {
		s := &snaps[i]
		topType := "-"
		if len(s.Types) > 0 {
			topType = fmt.Sprintf("%s (%.1f KiB)", s.Types[0].TypeName, kb(s.Types[0].Words))
		}
		fmt.Printf("  %6d  %-20s %10d %12.1f  %s\n",
			s.GC, s.Reason, s.TotalObjects, kb(s.TotalWords), topType)
	}
	fmt.Println()
}

// printSuspects renders the ranked leak suspects with sampled root paths.
func printSuspects(vm *gcassert.Runtime, window, top int) {
	reports := vm.LeakSuspects(window, top)
	if len(reports) == 0 {
		fmt.Println("leak suspects: none (no type shows consistent growth)")
		fmt.Println()
		return
	}
	fmt.Printf("leak suspects (over GCs %d..%d):\n", reports[0].FirstGC, reports[0].LastGC)
	for i, rep := range reports {
		fmt.Printf("  #%d %-20s %+9.1f KiB/GC  growth %3.0f%%  (%.1f -> %.1f KiB, %d -> %d objects)\n",
			i+1, rep.TypeName, kb(1)*rep.SlopeWordsPerGC, 100*rep.Growth,
			kb(rep.StartWords), kb(rep.EndWords), rep.StartObjects, rep.EndObjects)
		if len(rep.Path) > 0 {
			fmt.Printf("     kept alive via root %s:\n", rep.Root)
			fmt.Printf("       %s\n", formatPath(rep.Path))
		}
	}
	fmt.Println()
}

// formatPath renders a root path in the violation-report style, one line.
func formatPath(path []gcassert.PathStep) string {
	var b strings.Builder
	for i, s := range path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(s.TypeName)
		if s.Field != "" {
			b.WriteString(" ." + s.Field)
		}
	}
	return b.String()
}

// printRetainers renders the dominator analysis.
func printRetainers(vm *gcassert.Runtime, n int) {
	dom := vm.Dominators()
	fmt.Printf("top retainers (dominator analysis over %d objects):\n", dom.Graph().NumObjects())
	for _, r := range dom.TopRetainers(n) {
		root := ""
		if r.Root != "" {
			root = "  [" + r.Root + "]"
		}
		fmt.Printf("  %-20s retains %10.1f KiB (%6d objects, shallow %.1f KiB)%s\n",
			r.TypeName, kb(r.RetainedWords), r.Dominated, kb(r.ShallowWords), root)
	}
	fmt.Println("retained by type (subtree heads only):")
	for _, t := range dom.TypeRetainers(n) {
		fmt.Printf("  %-20s %10.1f KiB across %d heads\n", t.TypeName, kb(t.RetainedWords), t.Objects)
	}
	fmt.Println()
}

// crossCheck verifies the census against the collector's own accounting.
func crossCheck(vm *gcassert.Runtime) {
	snap, ok := vm.LatestCensus()
	if !ok {
		fmt.Fprintln(os.Stderr, "census cross-check: no snapshots (no collection ran)")
		return
	}
	live := vm.HeapStats().LiveWords
	if snap.TotalCellWords == live {
		fmt.Fprintf(os.Stderr, "census cross-check: %d live words == GCStats %d  OK\n",
			snap.TotalCellWords, live)
		return
	}
	fmt.Fprintf(os.Stderr, "census cross-check: FAILED — census %d words, GCStats %d\n",
		snap.TotalCellWords, live)
	os.Exit(1)
}
