package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI contract: 2 for invocation mistakes with the
// diagnostic on stderr, 0 for -list. Cases that would run a full workload are
// exercised by the heavier integration paths, not here.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name         string
		args         []string
		wantCode     int
		wantInStderr string
		wantInStdout string
	}{
		{"list", []string{"-list"}, 0, "", "pseudojbb"},
		{"version", []string{"-version"}, 0, "", "gcheap "},
		{"bad-flag", []string{"-nope"}, 2, "flag provided but not defined", ""},
		{"stray-arg", []string{"bundle.json"}, 2, "unexpected argument", ""},
		{"unknown-workload", []string{"-workload", "no-such-workload"}, 2, "no-such-workload", ""},
		{"leak-wrong-workload", []string{"-leak", "-workload", "compress"}, 2, "-leak is only meaningful", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if tc.wantInStderr != "" && !strings.Contains(stderr.String(), tc.wantInStderr) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantInStderr, stderr.String())
			}
			if tc.wantInStdout != "" && !strings.Contains(stdout.String(), tc.wantInStdout) {
				t.Errorf("stdout does not contain %q:\n%s", tc.wantInStdout, stdout.String())
			}
			if tc.wantCode != 0 && stdout.Len() > 0 {
				t.Errorf("failed invocation wrote to stdout:\n%s", stdout.String())
			}
		})
	}
}

// TestRunTinyWorkload exercises the success path end to end on the smallest
// registered workload: exit 0, a census trend on stdout, the cross-check OK
// line on stderr.
func TestRunTinyWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "compress", "-iters", "1", "-retainers", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "census trend") {
		t.Errorf("stdout missing census trend:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "census cross-check") ||
		!strings.Contains(stderr.String(), "OK") {
		t.Errorf("stderr missing cross-check OK:\n%s", stderr.String())
	}
}
