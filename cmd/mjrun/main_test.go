package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mj")
	if err := os.WriteFile(bad, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"two programs", []string{"a.mj", "b.mj"}, 2},
		{"missing program", []string{filepath.Join(dir, "nope.mj")}, 1},
		{"compile error", []string{bad}, 1},
		{"version", []string{"-version"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunExecutesProgram(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-heap", "4", "../../examples/mj/fleetsteady.mj"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "8") {
		t.Errorf("guest output missing:\n%s", stdout.String())
	}
}

func TestRunVersionPrintsIdentity(t *testing.T) {
	var stdout bytes.Buffer
	if got := run([]string{"-version"}, &stdout, &bytes.Buffer{}); got != 0 {
		t.Fatal("version exit code")
	}
	if !strings.HasPrefix(stdout.String(), "mjrun ") {
		t.Errorf("version output %q should start with the tool name", stdout.String())
	}
}
