// Command mjrun compiles and runs an MJ program (see internal/minivm) on
// the gcassert managed runtime, printing assertion violations in the
// paper's Figure 1 format as the collector finds them.
//
// Usage:
//
//	mjrun [-heap MiB] [-gen] [-stats] [-disasm] [-O] [-workers N] program.mj
package main

import (
	"flag"
	"fmt"
	"os"

	"gcassert"
	"gcassert/internal/minivm"
)

func main() {
	heapMB := flag.Int("heap", 16, "managed heap size in MiB")
	gen := flag.Bool("gen", false, "use the generational collector (assertions checked at full GCs only)")
	stats := flag.Bool("stats", false, "print GC and assertion statistics at exit")
	disasm := flag.Bool("disasm", false, "print the compiled bytecode and exit")
	optimize := flag.Bool("O", false, "run the peephole bytecode optimizer")
	workers := flag.Int("workers", 1, "mark-phase workers (1 = sequential marker)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjrun [-heap MiB] [-gen] [-stats] [-disasm] [-O] [-workers N] program.mj")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *disasm {
		unit, cerr := minivm.Compile(string(src))
		if cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			os.Exit(1)
		}
		if *optimize {
			minivm.Optimize(unit)
		}
		fmt.Print(minivm.DisassembleUnit(unit))
		return
	}

	res, err := minivm.CompileAndRun(string(src), minivm.RunOptions{
		HeapBytes:    *heapMB << 20,
		Out:          os.Stdout,
		Reporter:     gcassert.NewWriterReporter(os.Stderr),
		Generational: *gen,
		Optimize:     *optimize,
		Workers:      *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		vm := res.VM
		fmt.Fprintf(os.Stderr, "GC:        %s\n", vm.GCStats())
		st := vm.AssertionStats()
		fmt.Fprintf(os.Stderr, "asserted:  %d dead (%d verified), %d unshared, %d owned pairs\n",
			st.DeadAsserted, st.DeadVerified, st.UnsharedAsserted, st.OwnedPairsAsserted)
		fmt.Fprintf(os.Stderr, "violations: %d\n", st.Violations)
	}
}
