// Command mjrun compiles and runs an MJ program (see internal/minivm) on
// the gcassert managed runtime, printing assertion violations in the
// paper's Figure 1 format as the collector finds them.
//
// Usage:
//
//	mjrun [-heap MiB] [-gen] [-stats] [-disasm] [-O] [-workers N]
//	      [-provenance] [-fr] [-fr-dump file] [-explain] [-top]
//	      [-serve addr] [-fleet url] [-fleet-every N] [-instance id]
//	      program.mj
//
// With -fr the GC flight recorder is armed: the first assertion violation
// of each collection dumps a forensic bundle to the -fr-dump file, and
// SIGQUIT requests an on-demand dump at the next collection (the bundle
// needs a consistent heap, so the dump rides on the collector's
// stop-the-world pause). Inspect bundles with `gcfr`, or feed the heap
// profile inside to `go tool pprof`.
//
// -explain prints the trigger explainer for every collection (why the GC
// ran, heap occupancy, allocation rate, dominant allocating thread/site) to
// stderr. -top attaches an in-process gctop dashboard, redrawn on every
// collection. -serve mounts the telemetry HTTP surface (e.g. -serve :6060),
// so an external `gctop -url http://localhost:6060/debug/gcassert/live`
// can watch the run. All three enable telemetry, cost attribution, and
// site provenance (the interpreter's per-pc site cache makes the sited
// allocations cheap).
//
// -fleet enables the fleet exporter: every -fleet-every full collections
// the census snapshot is sealed into a content-addressed envelope and
// shipped to the gcfleet collector at the given base URL (and, on an
// assertion violation, a flight bundle too when -fr is armed). -instance
// names this process in the fleet; empty generates a host-pid-random ID.
// -fleet implies heap introspection and site provenance, so the shipped
// census breaks down by (type, allocation site).
//
// Exit status: 0 on success, 1 when the program is missing, fails to
// compile, or fails at runtime, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gcassert"
	"gcassert/internal/minivm"
	"gcassert/internal/topview"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: flags from args, guest output to
// stdout, diagnostics to stderr, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mjrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	heapMB := fs.Int("heap", 16, "managed heap size in MiB")
	gen := fs.Bool("gen", false, "use the generational collector (assertions checked at full GCs only)")
	stats := fs.Bool("stats", false, "print GC and assertion statistics at exit")
	disasm := fs.Bool("disasm", false, "print the compiled bytecode and exit")
	optimize := fs.Bool("O", false, "run the peephole bytecode optimizer")
	workers := fs.Int("workers", 1, "mark-phase workers (1 = sequential marker)")
	provenance := fs.Bool("provenance", false, "record every guest allocation's site (method:line) for violation reports and profiles")
	fr := fs.Bool("fr", false, "arm the GC flight recorder (implies -provenance; dump with SIGQUIT or on violation)")
	frDump := fs.String("fr-dump", "gcassert-fr.json", "file the flight recorder dumps bundles to (latest dump wins)")
	explain := fs.Bool("explain", false, "print the trigger explainer for every collection")
	top := fs.Bool("top", false, "attach an in-process gctop dashboard (redrawn per collection)")
	serve := fs.String("serve", "", "listen address for the telemetry HTTP surface (e.g. :6060; feeds external gctop via /debug/gcassert/live)")
	fleetURL := fs.String("fleet", "", "gcfleet collector base URL; enables the fleet exporter (implies introspection + provenance)")
	fleetEvery := fs.Int("fleet-every", 1, "census export interval in full collections (with -fleet)")
	instance := fs.String("instance", "", "instance ID stamped on exported artifacts (with -fleet; empty = host-pid-random)")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "mjrun")
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mjrun [-heap MiB] [-gen] [-stats] [-disasm] [-O] [-workers N] [-provenance] [-fr] [-fr-dump file] [-explain] [-top] [-serve addr] [-fleet url] [-fleet-every N] [-instance id] program.mj")
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, err)
		return 1
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return dataErr(err)
	}

	unit, cerr := minivm.Compile(string(src))
	if cerr != nil {
		return dataErr(cerr)
	}
	if *optimize {
		minivm.Optimize(unit)
	}
	if *disasm {
		fmt.Fprint(stdout, minivm.DisassembleUnit(unit))
		return 0
	}

	observing := *explain || *top || *serve != ""
	prov := ""
	if *provenance || *fr || observing || *fleetURL != "" {
		prov = "exhaustive"
	}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:       *heapMB << 20,
		Infrastructure:  true,
		Reporter:        gcassert.NewWriterReporter(stderr),
		Generational:    *gen,
		Workers:         *workers,
		Provenance:      prov,
		FlightRecorder:  *fr,
		Telemetry:       observing,
		CostAttribution: observing,
		Introspection:   *fleetURL != "",
		InstanceID:      *instance,
		FleetURL:        *fleetURL,
		FleetEvery:      *fleetEvery,
	})
	var drainLive func()
	if *explain || *top {
		drainLive = watchLive(vm, *explain, *top, stderr)
	}
	if *serve != "" {
		go func() {
			if err := http.ListenAndServe(*serve, vm.TelemetryHandler()); err != nil {
				fmt.Fprintln(stderr, "mjrun: telemetry server:", err)
			}
		}()
	}
	if *fr {
		rec := vm.Flight()
		rec.SetDumpSink(func() (io.WriteCloser, error) { return os.Create(*frDump) })
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				// Dumping needs a consistent heap; latch the request and let
				// the collector deliver at its next stop-the-world pause.
				rec.RequestDump()
				fmt.Fprintf(stderr, "mjrun: flight dump to %s requested (written at next GC)\n", *frDump)
			}
		}()
	}
	im, lerr := minivm.Load(vm, unit, stdout)
	if lerr != nil {
		return dataErr(lerr)
	}
	if err := im.Run(); err != nil {
		return dataErr(err)
	}
	vm.Collect()
	if drainLive != nil {
		drainLive()
	}
	// Flush the fleet exporter: ships anything still queued (including the
	// final collection's census) before the process exits.
	vm.CloseFleet()

	if *stats {
		fmt.Fprintf(stderr, "GC:        %s\n", vm.GCStats())
		if pr, ok := vm.Pressure(); ok {
			fmt.Fprintf(stderr, "pressure:  alloc EWMA %.0f words/s, %d occupancy samples\n",
				pr.AllocRateWps, len(pr.Occupancy))
		}
		st := vm.AssertionStats()
		fmt.Fprintf(stderr, "asserted:  %d dead (%d verified), %d unshared, %d owned pairs\n",
			st.DeadAsserted, st.DeadVerified, st.UnsharedAsserted, st.OwnedPairsAsserted)
		fmt.Fprintf(stderr, "violations: %d\n", st.Violations)
		if *fleetURL != "" {
			fx := vm.FleetExporter()
			xst := fx.Stats()
			fmt.Fprintf(stderr, "fleet:     instance %s: %d enqueued, %d sent, %d dropped, %d errors",
				fx.Identity().InstanceID, xst.Enqueued, xst.Sent, xst.Dropped, xst.Errors)
			if xst.LastErr != "" {
				fmt.Fprintf(stderr, " (last: %s)", xst.LastErr)
			}
			fmt.Fprintln(stderr)
		}
		if *fr {
			fst := vm.Flight().Stats()
			fmt.Fprintf(stderr, "flight:    %d cycles, %d violations recorded, %d dumps",
				fst.CyclesRecorded, fst.ViolationsRecorded, fst.Dumps)
			if fst.LastDumpErr != nil {
				fmt.Fprintf(stderr, " (last dump error: %v)", fst.LastDumpErr)
			}
			fmt.Fprintln(stderr)
		}
	}
	return 0
}

// watchLive subscribes to the runtime's live event feed and consumes it on a
// background goroutine: -explain prints one trigger line per collection,
// -top redraws the in-process dashboard. The returned drain function stops
// the subscription and waits for buffered frames, so the last collection's
// output lands before exit-time stats.
func watchLive(vm *gcassert.Runtime, explain, top bool, errw io.Writer) func() {
	ch, cancel := vm.Telemetry().SubscribeLive(256)
	done := make(chan struct{})
	model := topview.New()
	go func() {
		defer close(done)
		for frame := range ch {
			if explain {
				var ev gcassert.GCEvent
				if json.Unmarshal(frame, &ev) == nil && ev.Trigger != "" {
					line := fmt.Sprintf("gc %d: %s", ev.Seq+1, ev.Trigger)
					if ev.TriggerThread != "" {
						line += fmt.Sprintf(" [top allocator: %s]", ev.TriggerThread)
					}
					fmt.Fprintln(errw, line)
				}
			}
			if top {
				if model.FeedJSON(frame) == nil {
					fmt.Fprint(errw, "\x1b[2J\x1b[H")
					model.Render(errw)
				}
			}
		}
	}()
	return func() { cancel(); <-done }
}
