// Command gctrace runs a registered workload with telemetry enabled and
// exports the structured GC trace.
//
// Usage:
//
//	gctrace [-workload name] [-mode base|infra|assert] [-iters N]
//	        [-format gctrace|jsonl|chrome|metrics] [-o file]
//	        [-heap bytes] [-ring N] [-http addr] [-list]
//	gctrace -trace FILE|URL [-format tree|chrome] [-o file]
//
//	-workload pseudojbb   workload to run (see -list)
//	-mode infra           collector configuration (assert implies infra)
//	-iters 2              workload iterations
//	-format gctrace       export format:
//	                        gctrace  one line per GC, like GODEBUG=gctrace=1
//	                        jsonl    one JSON event per line
//	                        chrome   trace_event JSON — open the file in
//	                                 chrome://tracing or ui.perfetto.dev
//	                        metrics  Prometheus text exposition
//	-o file               write the export there (default stdout)
//	-http addr            also serve /metrics and /debug/gcassert/* on addr
//	                      (kept alive after the run until interrupted)
//
// The second form is the distributed-trace drill-down: -trace loads a
// stored request-to-GC trace document — a file, a gcassertd URL
// (/tenants/{id}/traces/{traceID}), or a gcfleet bundle URL
// (/fleet/bundle?hash=..., the envelope is unwrapped) — and renders the
// span tree with per-request GC overlap, trigger reasons, per-kind
// assertion cost and violation provenance (-format tree, the default), or
// re-exports it as chrome trace_event JSON (-format chrome).
//
// After the export, a summary on stderr cross-checks the event stream
// against the collector's cumulative stats: per-phase sums over the trace
// must match GCStats totals (they are the same measurements), and pause
// percentiles come from the telemetry histogram.
//
// Exit status: 0 on success, 1 when the workload or an output file is
// unavailable, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/bench/wutil"
	"gcassert/internal/trace"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: flags from args, export to stdout
// (or -o), diagnostics to stderr, exit code returned. With -http the
// function blocks after the export to keep the telemetry server up.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gctrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "pseudojbb", "workload to run")
	list := fs.Bool("list", false, "list workloads and exit")
	mode := fs.String("mode", "infra", "base, infra, or assert")
	iters := fs.Int("iters", 2, "workload iterations")
	format := fs.String("format", "gctrace", "gctrace, jsonl, chrome, or metrics")
	out := fs.String("o", "", "output file (default stdout)")
	heapBytes := fs.Int("heap", 0, "override the workload's heap size (bytes)")
	ring := fs.Int("ring", 1<<16, "GC event ring capacity")
	httpAddr := fs.String("http", "", "serve telemetry endpoints on this address")
	traceSrc := fs.String("trace", "", "drill into a stored trace document (file or URL) instead of running a workload")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "gctrace")
		return 0
	}

	usage := func(msg string) int {
		fmt.Fprintln(stderr, "gctrace: usage: "+msg)
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "gctrace:", err)
		return 1
	}

	if fs.NArg() != 0 {
		return usage("gctrace takes no positional arguments")
	}
	if *traceSrc != "" {
		return runTraceDrill(*traceSrc, *format, *out, stdout, stderr)
	}
	switch *format {
	case "gctrace", "jsonl", "chrome", "metrics":
	default:
		return usage(fmt.Sprintf("unknown format %q (want gctrace, jsonl, chrome or metrics)", *format))
	}
	switch *mode {
	case "base", "infra", "assert":
	default:
		return usage(fmt.Sprintf("unknown mode %q (want base, infra or assert)", *mode))
	}

	if *list {
		for _, w := range workloads.All() {
			asserts := ""
			if w.HasAsserts {
				asserts = " (has assertions)"
			}
			fmt.Fprintf(stdout, "%-12s heap=%d%s\n", w.Name, w.Heap, asserts)
		}
		return 0
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		return dataErr(err)
	}
	if *heapBytes > 0 {
		w.Heap = *heapBytes
	}
	var m bench.Mode
	switch *mode {
	case "base":
		m = bench.Base
	case "infra":
		m = bench.Infra
	case "assert":
		if !w.HasAsserts {
			return dataErr(fmt.Errorf("workload %s defines no assertions", w.Name))
		}
		m = bench.WithAssertions
	}

	vm := gcassert.New(gcassert.Options{
		HeapBytes:         w.Heap,
		Infrastructure:    m != bench.Base,
		Telemetry:         true,
		TelemetryRingSize: *ring,
	})
	tel := vm.Telemetry()

	if *httpAddr != "" {
		go func() {
			fmt.Fprintf(stderr, "serving telemetry on http://%s/metrics\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, tel.Handler()); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	runIter := w.New(vm, m == bench.WithAssertions)
	start := time.Now()
	for i := 0; i < *iters; i++ {
		runIter(i)
	}
	elapsed := time.Since(start)

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return dataErr(err)
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "gctrace":
		err = tel.WriteGoTrace(dst)
	case "jsonl":
		err = tel.WriteJSONL(dst)
	case "chrome":
		err = tel.WriteChromeTrace(dst)
	case "metrics":
		err = tel.WriteMetrics(dst)
	}
	if err != nil {
		return dataErr(err)
	}

	wutil.WriteGCSummary(stderr, vm, elapsed)

	if *httpAddr != "" {
		fmt.Fprintln(stderr, "run complete; telemetry server still up (interrupt to exit)")
		select {}
	}
	return 0
}

// runTraceDrill renders one stored request-to-GC trace document: the
// span-tree drill-down (-format tree, also the default "gctrace") or a
// chrome trace_event re-export. src is a file path or an http(s) URL; a
// fleet envelope wrapping the document is unwrapped transparently.
func runTraceDrill(src, format, out string, stdout, stderr io.Writer) int {
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "gctrace: usage: "+msg)
		return 2
	}
	dataErr := func(err error) int {
		fmt.Fprintln(stderr, "gctrace:", err)
		return 1
	}
	switch format {
	case "tree", "gctrace", "chrome":
	default:
		return usage(fmt.Sprintf("unknown trace format %q (want tree or chrome)", format))
	}

	var data []byte
	var err error
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, herr := http.Get(src)
		if herr != nil {
			return dataErr(herr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return dataErr(fmt.Errorf("%s: %s: %s", src, resp.Status, strings.TrimSpace(string(body))))
		}
		if data, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20)); err != nil {
			return dataErr(err)
		}
	} else if data, err = os.ReadFile(src); err != nil {
		return dataErr(err)
	}

	var doc trace.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return dataErr(fmt.Errorf("%s: %v", src, err))
	}
	if doc.TraceID == "" {
		// Maybe a fleet envelope (or a stored record) wrapping the document.
		var env struct {
			Payload  json.RawMessage `json:"payload"`
			Envelope *struct {
				Payload json.RawMessage `json:"payload"`
			} `json:"envelope"`
		}
		if json.Unmarshal(data, &env) == nil {
			payload := env.Payload
			if payload == nil && env.Envelope != nil {
				payload = env.Envelope.Payload
			}
			if payload != nil {
				_ = json.Unmarshal(payload, &doc)
			}
		}
	}
	if doc.TraceID == "" || len(doc.Spans) == 0 {
		return dataErr(fmt.Errorf("%s: not a trace document (no trace_id/spans)", src))
	}

	dst := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return dataErr(err)
		}
		defer f.Close()
		dst = f
	}
	if format == "chrome" {
		err = trace.WriteChrome(dst, &doc)
	} else {
		err = trace.WriteTree(dst, &doc)
	}
	if err != nil {
		return dataErr(err)
	}
	return 0
}
