// Command gctrace runs a registered workload with telemetry enabled and
// exports the structured GC trace.
//
// Usage:
//
//	gctrace [-workload name] [-mode base|infra|assert] [-iters N]
//	        [-format gctrace|jsonl|chrome|metrics] [-o file]
//	        [-heap bytes] [-ring N] [-http addr] [-list]
//
//	-workload pseudojbb   workload to run (see -list)
//	-mode infra           collector configuration (assert implies infra)
//	-iters 2              workload iterations
//	-format gctrace       export format:
//	                        gctrace  one line per GC, like GODEBUG=gctrace=1
//	                        jsonl    one JSON event per line
//	                        chrome   trace_event JSON — open the file in
//	                                 chrome://tracing or ui.perfetto.dev
//	                        metrics  Prometheus text exposition
//	-o file               write the export there (default stdout)
//	-http addr            also serve /metrics and /debug/gcassert/* on addr
//	                      (kept alive after the run until interrupted)
//
// After the export, a summary on stderr cross-checks the event stream
// against the collector's cumulative stats: per-phase sums over the trace
// must match GCStats totals (they are the same measurements), and pause
// percentiles come from the telemetry histogram.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/bench/wutil"
)

func main() {
	workload := flag.String("workload", "pseudojbb", "workload to run")
	list := flag.Bool("list", false, "list workloads and exit")
	mode := flag.String("mode", "infra", "base, infra, or assert")
	iters := flag.Int("iters", 2, "workload iterations")
	format := flag.String("format", "gctrace", "gctrace, jsonl, chrome, or metrics")
	out := flag.String("o", "", "output file (default stdout)")
	heapBytes := flag.Int("heap", 0, "override the workload's heap size (bytes)")
	ring := flag.Int("ring", 1<<16, "GC event ring capacity")
	httpAddr := flag.String("http", "", "serve telemetry endpoints on this address")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			asserts := ""
			if w.HasAsserts {
				asserts = " (has assertions)"
			}
			fmt.Printf("%-12s heap=%d%s\n", w.Name, w.Heap, asserts)
		}
		return
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *heapBytes > 0 {
		w.Heap = *heapBytes
	}
	var m bench.Mode
	switch *mode {
	case "base":
		m = bench.Base
	case "infra":
		m = bench.Infra
	case "assert":
		if !w.HasAsserts {
			fmt.Fprintf(os.Stderr, "workload %s defines no assertions\n", w.Name)
			os.Exit(1)
		}
		m = bench.WithAssertions
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want base, infra or assert)\n", *mode)
		os.Exit(1)
	}

	vm := gcassert.New(gcassert.Options{
		HeapBytes:         w.Heap,
		Infrastructure:    m != bench.Base,
		Telemetry:         true,
		TelemetryRingSize: *ring,
	})
	tel := vm.Telemetry()

	if *httpAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "serving telemetry on http://%s/metrics\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, tel.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	run := w.New(vm, m == bench.WithAssertions)
	start := time.Now()
	for i := 0; i < *iters; i++ {
		run(i)
	}
	elapsed := time.Since(start)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "gctrace":
		err = tel.WriteGoTrace(dst)
	case "jsonl":
		err = tel.WriteJSONL(dst)
	case "chrome":
		err = tel.WriteChromeTrace(dst)
	case "metrics":
		err = tel.WriteMetrics(dst)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want gctrace, jsonl, chrome or metrics)\n", *format)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	wutil.WriteGCSummary(os.Stderr, vm, elapsed)

	if *httpAddr != "" {
		fmt.Fprintln(os.Stderr, "run complete; telemetry server still up (interrupt to exit)")
		select {}
	}
}
