package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"stray positional", []string{"stray"}, 2},
		{"unknown format", []string{"-format", "xml"}, 2},
		{"unknown mode", []string{"-mode", "turbo"}, 2},
		{"unknown workload", []string{"-workload", "no-such-workload"}, 1},
		{"assert mode without assertions", []string{"-workload", "compress", "-mode", "assert"}, 1},
		{"version", []string{"-version"}, 0},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunListAndVersionOutputs(t *testing.T) {
	var stdout bytes.Buffer
	run([]string{"-list"}, &stdout, &bytes.Buffer{})
	if !strings.Contains(stdout.String(), "_209_db") || !strings.Contains(stdout.String(), "pseudojbb") {
		t.Errorf("-list missing workloads:\n%s", stdout.String())
	}
	stdout.Reset()
	run([]string{"-version"}, &stdout, &bytes.Buffer{})
	if !strings.HasPrefix(stdout.String(), "gctrace ") {
		t.Errorf("version output %q should start with the tool name", stdout.String())
	}
}

func TestRunExportsJSONL(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-workload", "_209_db", "-iters", "1", "-format", "jsonl"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"seq"`) {
		t.Errorf("jsonl export carries no events:\n%.400s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "pause") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

// drillDoc is a minimal stored trace document for the -trace drill-down:
// root -> request -> gc with one violation event.
const drillDoc = `{
  "schema_version": 1,
  "trace_id": "0123456789abcdef0123456789abcdef",
  "tenant": "acme",
  "root_span_id": "0000000000000001",
  "start_unix_ns": 1000,
  "end_unix_ns": 9000,
  "sampled_reason": "violation",
  "requests": 1,
  "gcs": 1,
  "violations": 1,
  "gc_pause_ns": 500,
  "spans": [
    {"trace_id": "0123456789abcdef0123456789abcdef", "span_id": "0000000000000001",
     "name": "drive", "start_unix_ns": 1000, "end_unix_ns": 9000},
    {"trace_id": "0123456789abcdef0123456789abcdef", "span_id": "0000000000000002",
     "parent_id": "0000000000000001", "name": "request",
     "start_unix_ns": 2000, "end_unix_ns": 8000},
    {"trace_id": "0123456789abcdef0123456789abcdef", "span_id": "0000000000000003",
     "parent_id": "0000000000000002", "name": "gc",
     "start_unix_ns": 3000, "end_unix_ns": 3500,
     "attrs": {"reason": "allocation-failure", "total_ns": 500},
     "events": [{"name": "violation:assert-dead", "unix_ns": 3200,
                 "attrs": {"kind": "assert-dead", "type": "Node", "allocated_at": "Main.main:4"}}]}
  ]
}`

func TestTraceDrillDown(t *testing.T) {
	doc := writeTemp(t, drillDoc)

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-trace", doc}, &stdout, &stderr); got != 0 {
		t.Fatalf("drill-down = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"0123456789abcdef0123456789abcdef", "drive", "request", "gc",
		"violation:assert-dead", "Allocated at: Main.main:4", "reason=violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree view missing %q:\n%s", want, out)
		}
	}

	// Chrome re-export is valid trace_event JSON carrying the same spans.
	stdout.Reset()
	if got := run([]string{"-trace", doc, "-format", "chrome"}, &stdout, &stderr); got != 0 {
		t.Fatalf("chrome drill-down = %d\nstderr: %s", got, stderr.String())
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"drive", "request", "gc", "violation:assert-dead"} {
		if !names[want] {
			t.Errorf("chrome export missing event %q", want)
		}
	}

	// A fleet envelope wrapping the document is unwrapped transparently.
	wrapped := writeTemp(t, `{"kind":"trace","payload":`+drillDoc+`}`)
	stdout.Reset()
	if got := run([]string{"-trace", wrapped, "-format", "tree"}, &stdout, &stderr); got != 0 {
		t.Fatalf("enveloped drill-down = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "violation:assert-dead") {
		t.Errorf("enveloped tree missing the violation:\n%s", stdout.String())
	}

	// Contract: bad format is usage (2); unreadable/garbage sources are data
	// errors (1).
	if got := run([]string{"-trace", doc, "-format", "xml"}, &stdout, &stderr); got != 2 {
		t.Errorf("bad trace format = %d, want 2", got)
	}
	if got := run([]string{"-trace", doc + ".nope"}, &stdout, &stderr); got != 1 {
		t.Errorf("missing trace file = %d, want 1", got)
	}
	if got := run([]string{"-trace", writeTemp(t, `{"not":"a trace"}`)}, &stdout, &stderr); got != 1 {
		t.Errorf("non-trace JSON = %d, want 1", got)
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}
