package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"stray positional", []string{"stray"}, 2},
		{"unknown format", []string{"-format", "xml"}, 2},
		{"unknown mode", []string{"-mode", "turbo"}, 2},
		{"unknown workload", []string{"-workload", "no-such-workload"}, 1},
		{"assert mode without assertions", []string{"-workload", "compress", "-mode", "assert"}, 1},
		{"version", []string{"-version"}, 0},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunListAndVersionOutputs(t *testing.T) {
	var stdout bytes.Buffer
	run([]string{"-list"}, &stdout, &bytes.Buffer{})
	if !strings.Contains(stdout.String(), "_209_db") || !strings.Contains(stdout.String(), "pseudojbb") {
		t.Errorf("-list missing workloads:\n%s", stdout.String())
	}
	stdout.Reset()
	run([]string{"-version"}, &stdout, &bytes.Buffer{})
	if !strings.HasPrefix(stdout.String(), "gctrace ") {
		t.Errorf("version output %q should start with the tool name", stdout.String())
	}
}

func TestRunExportsJSONL(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-workload", "_209_db", "-iters", "1", "-format", "jsonl"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, got, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"seq"`) {
		t.Errorf("jsonl export carries no events:\n%.400s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "pause") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}
