package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	var b backoff
	want := []time.Duration{
		1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for i, w := range want {
		if got := b.peek(); got != w {
			t.Errorf("step %d: peek = %v, want %v", i, got, w)
		}
		if got := b.delay(); got != w {
			t.Errorf("step %d: delay = %v, want %v", i, got, w)
		}
	}
	b.reset()
	if got := b.delay(); got != time.Second {
		t.Errorf("after reset: delay = %v, want 1s", got)
	}
	// peek must not advance the ladder.
	var c backoff
	c.peek()
	c.peek()
	if got := c.delay(); got != time.Second {
		t.Errorf("peek advanced the ladder: first delay = %v", got)
	}
}

// sse builds a fake SSE response carrying the given events.
func sse(events ...string) *http.Response {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "data: %s\n\n", ev)
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"text/event-stream"}},
		Body:       io.NopCloser(strings.NewReader(b.String())),
	}
}

func notSSE() *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"text/html"}},
		Body:       io.NopCloser(strings.NewReader("<html>")),
	}
}

// scriptedWatcher drives the watch loop with a canned connection sequence
// and records every sleep. Each script entry is one connection attempt.
func scriptedWatcher(t *testing.T, once bool, script []func() (*http.Response, error)) (*watcher, *bytes.Buffer, *[]time.Duration) {
	t.Helper()
	var out bytes.Buffer
	var sleeps []time.Duration
	attempt := 0
	w := newWatcher(&out, io.Discard, once)
	w.get = func(string) (*http.Response, error) {
		if attempt >= len(script) {
			t.Fatalf("unexpected connection attempt %d (script has %d)", attempt+1, len(script))
		}
		r, err := script[attempt]()
		attempt++
		return r, err
	}
	w.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	return w, &out, &sleeps
}

// TestWatchBackoffGrowsAndResetsOnEvent is the reconnect loop's contract:
// consecutive failures climb the 1s→2s→4s ladder, a connection that delivers
// an event resets it, and a permanent error (non-SSE endpoint) exits the
// loop with the underlying error.
func TestWatchBackoffGrowsAndResetsOnEvent(t *testing.T) {
	dial := errors.New("dial tcp 127.0.0.1:6060: connect: connection refused")
	w, out, sleeps := scriptedWatcher(t, false, []func() (*http.Response, error){
		func() (*http.Response, error) { return nil, dial },
		func() (*http.Response, error) { return nil, dial },
		func() (*http.Response, error) { return nil, dial },
		func() (*http.Response, error) { return sse(`{"seq":7}`), nil }, // event, then clean EOF
		func() (*http.Response, error) { return notSSE(), nil },
	})
	err := w.watch("http://fake/live")
	if err == nil || !strings.Contains(err.Error(), "not an SSE endpoint") {
		t.Fatalf("watch should exit on the permanent error, got %v", err)
	}
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second, 1 * time.Second}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v (event on attempt 4 must reset the ladder)",
				i, (*sleeps)[i], want[i])
		}
	}
	for _, state := range []string{
		"disconnected: connection refused — retrying in 1s",
		"reconnecting (attempt 4)",
		"connected",
		"stream closed — retrying in 1s",
	} {
		if !strings.Contains(out.String(), state) {
			t.Errorf("header never showed state %q", state)
		}
	}
}

func TestWatchOnceFailsFastOnConnectionError(t *testing.T) {
	dial := errors.New("dial tcp: connection refused")
	w, _, sleeps := scriptedWatcher(t, true, []func() (*http.Response, error){
		func() (*http.Response, error) { return nil, dial },
	})
	if err := w.watch("http://fake/live"); !errors.Is(err, dial) {
		t.Fatalf("once-mode should surface the dial error, got %v", err)
	}
	if len(*sleeps) != 0 {
		t.Errorf("once-mode slept %v; single-shot captures must not retry", *sleeps)
	}
}

func TestWatchOnceRendersOneFrameAndExits(t *testing.T) {
	w, out, sleeps := scriptedWatcher(t, true, []func() (*http.Response, error){
		func() (*http.Response, error) { return sse(`{"seq":3}`, `{"seq":4}`), nil },
	})
	if err := w.watch("http://fake/live"); err != nil {
		t.Fatalf("watch = %v", err)
	}
	if len(*sleeps) != 0 {
		t.Errorf("once-mode slept %v", *sleeps)
	}
	if got := w.model.Events(); got != 1 {
		t.Errorf("once-mode consumed %d events, want exactly 1", got)
	}
	if !strings.Contains(out.String(), "gctop — gc #4") {
		t.Errorf("frame not rendered:\n%s", out.String())
	}
}

// signalEOF wraps a reader and closes ch the first time the reader hits
// EOF — i.e. after every SSE frame in it has been scanned and fed.
type signalEOF struct {
	r    io.Reader
	ch   chan struct{}
	once sync.Once
}

func (s *signalEOF) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err == io.EOF {
		s.once.Do(func() { close(s.ch) })
	}
	return n, err
}

// TestAlertsOverlay runs the -alerts goroutine against a canned transition
// stream: both transitions land in the model, the pane renders, and the
// overlay shuts down with the main loop.
func TestAlertsOverlay(t *testing.T) {
	fed := make(chan struct{})
	alertFrames := "data: " +
		`{"tenant":"leaky","objective":"violation_rate","severity":"fast","state":"pending","prev":"ok","burn_short":12,"threshold":10}` +
		"\n\ndata: " +
		`{"tenant":"leaky","objective":"violation_rate","severity":"fast","state":"firing","prev":"pending","burn_short":66,"threshold":10}` +
		"\n\n"
	var out bytes.Buffer
	w := newWatcher(&out, io.Discard, false)
	w.alertsURL = "http://fake/alerts"
	w.sleep = func(time.Duration) {}
	dial := errors.New("dial tcp: connection refused")
	w.get = func(url string) (*http.Response, error) {
		if strings.HasSuffix(url, "/alerts") {
			select {
			case <-fed: // overlay reconnects after its one stream just fail
				return nil, dial
			default:
			}
			return &http.Response{
				StatusCode: http.StatusOK,
				Header:     http.Header{"Content-Type": []string{"text/event-stream"}},
				Body:       io.NopCloser(&signalEOF{r: strings.NewReader(alertFrames), ch: fed}),
			}, nil
		}
		// The event stream connects only after the overlay has fed both
		// transitions, then ends the watch with a permanent error.
		<-fed
		return notSSE(), nil
	}
	err := w.watch("http://fake/live")
	if err == nil || !strings.Contains(err.Error(), "not an SSE endpoint") {
		t.Fatalf("watch = %v, want the scripted permanent error", err)
	}
	if got := w.model.Alerts(); got != 2 {
		t.Fatalf("model saw %d alert transitions, want 2", got)
	}
	s := out.String()
	for _, want := range []string{"slo alerts", "firing", "leaky", "violation_rate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("overlay never rendered %q:\n%s", want, s)
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"stray positional", []string{"stray"}, 2},
		{"version", []string{"-version"}, 0},
		// The bogus scheme fails inside the HTTP client without touching
		// the network; -once makes the failure fatal.
		{"unreachable once", []string{"-once", "-url", "bogus://nowhere/live"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
		})
	}
	var stdout bytes.Buffer
	run([]string{"-version"}, &stdout, io.Discard)
	if !strings.HasPrefix(stdout.String(), "gctop ") {
		t.Errorf("version output %q should start with the tool name", stdout.String())
	}
}
