// Command gctop is a live terminal dashboard for a gcassert runtime: it
// attaches to the /debug/gcassert/live SSE stream of a telemetry-enabled
// process and renders heap occupancy, the pause sparkline, per-assertion-kind
// GC cost, and per-thread allocation rates, redrawing on every collection.
//
//	gctop -url http://localhost:6060/debug/gcassert/live -replay 32
//
// Point it at any process serving the telemetry handler (for example
// `mjrun -serve :6060`, or a program mounting Runtime.TelemetryHandler).
// -replay backfills the dashboard with the last N retained events before
// going live. -once renders a single frame after the first event and exits
// (useful in scripts and smoke tests).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"gcassert/internal/topview"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:6060/debug/gcassert/live",
		"SSE endpoint of a telemetry-enabled gcassert process")
	replay := flag.Int("replay", 16, "backfill with the last N retained events")
	once := flag.Bool("once", false, "render one frame after the first event and exit")
	flag.Parse()

	if err := run(*url, *replay, *once); err != nil {
		fmt.Fprintln(os.Stderr, "gctop:", err)
		os.Exit(1)
	}
}

func run(url string, replay int, once bool) error {
	if replay > 0 {
		sep := "?"
		if strings.Contains(url, "?") {
			sep = "&"
		}
		url = fmt.Sprintf("%s%sreplay=%d", url, sep, replay)
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("%s is not an SSE endpoint (Content-Type %q); point -url at /debug/gcassert/live", url, ct)
	}

	model := topview.New()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // SSE comments/blank separators
		}
		if err := model.FeedJSON([]byte(strings.TrimPrefix(line, "data: "))); err != nil {
			fmt.Fprintln(os.Stderr, "gctop:", err)
			continue
		}
		if !once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		model.Render(os.Stdout)
		if once {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream ended: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gctop: stream closed after %d events\n", model.Events())
	return nil
}
