// Command gctop is a live terminal dashboard for a gcassert runtime: it
// attaches to the /debug/gcassert/live SSE stream of a telemetry-enabled
// process and renders heap occupancy, the pause sparkline, per-assertion-kind
// GC cost, and per-thread allocation rates, redrawing on every collection.
//
//	gctop -url http://localhost:6060/debug/gcassert/live -replay 32
//	gctop -url http://localhost:8080/tenants/web/events -alerts http://localhost:8080/alerts
//
// Point it at any process serving the telemetry handler (for example
// `mjrun -serve :6060`, or a program mounting Runtime.TelemetryHandler).
// -replay backfills the dashboard with the last N retained events before
// going live. -once renders a single frame after the first event and exits
// (useful in scripts and smoke tests); in this mode connection failures are
// fatal rather than retried, so scripted captures fail fast.
//
// -alerts attaches a second stream — a gcassertd /alerts endpoint — and
// overlays per-tenant SLO burn-rate alerts as their own dashboard pane
// (state, severity, tenant, objective, burn vs threshold, budget left). The
// overlay is best-effort: it reconnects on drops with the same backoff
// ladder, and a missing alerts endpoint never takes the dashboard down.
//
// When the stream drops — the watched process restarted, the network
// hiccuped — gctop reconnects with exponential backoff (1s doubling to 30s,
// reset once events flow again) instead of exiting, and the header line shows
// the connection state the whole time. Misconfiguration (the URL is not an
// SSE endpoint) is still a hard error: retrying would never succeed.
//
// Exit status: 0 on a clean single-shot capture, 1 on connection or stream
// errors, 2 on usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"gcassert/internal/topview"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: flags from args, dashboard to
// stdout, diagnostics to stderr, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gctop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:6060/debug/gcassert/live",
		"SSE endpoint of a telemetry-enabled gcassert process")
	replay := fs.Int("replay", 16, "backfill with the last N retained events")
	once := fs.Bool("once", false, "render one frame after the first event and exit")
	alerts := fs.String("alerts", "", "gcassertd /alerts SSE endpoint to overlay SLO burn-rate alerts")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "gctop")
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "gctop: usage: gctop [-url sse-endpoint] [-replay N] [-once] [-alerts sse-endpoint]")
		return 2
	}
	w := newWatcher(stdout, stderr, *once)
	w.alertsURL = *alerts
	if err := w.watch(streamURL(*url, *replay)); err != nil {
		fmt.Fprintln(stderr, "gctop:", err)
		return 1
	}
	return 0
}

// streamURL appends the replay parameter to the SSE endpoint.
func streamURL(url string, replay int) string {
	if replay <= 0 {
		return url
	}
	sep := "?"
	if strings.Contains(url, "?") {
		sep = "&"
	}
	return fmt.Sprintf("%s%sreplay=%d", url, sep, replay)
}

// permanentError marks failures no amount of retrying fixes (wrong URL,
// wrong endpoint kind): the watch loop exits instead of backing off.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }

const (
	backoffStart = time.Second
	backoffMax   = 30 * time.Second
)

// backoff is the reconnect schedule: delays double from backoffStart to the
// backoffMax cap, and a healthy event resets the ladder so a watched process
// that recovers gets fast reconnects again.
type backoff struct{ cur time.Duration }

// delay returns the wait before the next attempt and advances the ladder.
func (b *backoff) delay() time.Duration {
	if b.cur == 0 {
		b.cur = backoffStart
	}
	d := b.cur
	b.cur *= 2
	if b.cur > backoffMax {
		b.cur = backoffMax
	}
	return d
}

// peek returns the wait delay() would hand out, without advancing.
func (b *backoff) peek() time.Duration {
	if b.cur == 0 {
		return backoffStart
	}
	return b.cur
}

// reset puts the ladder back at the start.
func (b *backoff) reset() { b.cur = 0 }

// watcher is the reconnecting dashboard loop's state. get and sleep default
// to the real transport and clock; tests inject fakes to drive the loop
// without a live server.
type watcher struct {
	model     *topview.Model
	out       io.Writer
	errw      io.Writer
	once      bool
	alertsURL string
	// mu serializes model feeds, header-state updates and repaints: with
	// -alerts the overlay goroutine touches the same model and terminal as
	// the event loop.
	mu    sync.Mutex
	state string // connection state shown in the header
	done  chan struct{}
	bo    backoff
	get   func(url string) (*http.Response, error)
	sleep func(d time.Duration)
}

func newWatcher(out, errw io.Writer, once bool) *watcher {
	return &watcher{
		model: topview.New(), out: out, errw: errw, once: once,
		done: make(chan struct{}),
		get:  http.Get, sleep: time.Sleep,
	}
}

// setState updates the connection-state header line.
func (w *watcher) setState(s string) {
	w.mu.Lock()
	w.state = s
	w.mu.Unlock()
}

// watch runs the reconnect loop until the stream is satisfied (-once) or a
// permanent error surfaces.
func (w *watcher) watch(url string) error {
	defer close(w.done)
	if w.alertsURL != "" {
		go w.watchAlerts(w.alertsURL)
	}
	for attempt := 1; ; attempt++ {
		w.setState("connecting")
		if attempt > 1 {
			w.setState(fmt.Sprintf("reconnecting (attempt %d)", attempt))
		}
		if !w.once {
			// Show the dial in progress; -once stays silent until its frame.
			w.redraw()
		}
		done, err := w.stream(url)
		if done {
			return err
		}
		if w.once {
			// Single-shot captures are for scripts: fail fast instead of
			// retrying against a process that may never come back.
			if err == nil {
				err = fmt.Errorf("%s: stream ended before an event arrived", url)
			}
			var perm permanentError
			if asPermanent(err, &perm) {
				return perm.err
			}
			return err
		}
		if err != nil {
			var perm permanentError
			if ok := asPermanent(err, &perm); ok {
				return perm.err
			}
			w.setState(fmt.Sprintf("disconnected: %v — retrying in %s", trim(err), w.bo.peek()))
		} else {
			w.setState(fmt.Sprintf("stream closed — retrying in %s", w.bo.peek()))
		}
		w.redraw()
		w.sleep(w.bo.delay())
	}
}

func asPermanent(err error, target *permanentError) bool {
	p, ok := err.(permanentError)
	if ok {
		*target = p
	}
	return ok
}

// trim shortens transport errors for the one-line header.
func trim(err error) string {
	s := err.Error()
	if i := strings.LastIndex(s, ": "); i >= 0 {
		s = s[i+2:]
	}
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// stream connects once and renders events until the stream ends. done means
// the loop should exit (single-shot -once satisfied); otherwise err says why
// the connection ended (nil: clean EOF) and the caller reconnects.
func (w *watcher) stream(url string) (done bool, err error) {
	resp, err := w.get(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return false, permanentError{fmt.Errorf(
			"%s is not an SSE endpoint (Content-Type %q); point -url at /debug/gcassert/live", url, ct)}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // SSE comments/blank separators
		}
		w.mu.Lock()
		err := w.model.FeedJSON([]byte(strings.TrimPrefix(line, "data: ")))
		if err == nil {
			// An event arrived: the connection is healthy again, so the next
			// drop retries fast instead of inheriting the old ladder position.
			w.state = "connected"
			w.bo.reset()
		}
		w.mu.Unlock()
		if err != nil {
			fmt.Fprintln(w.errw, "gctop:", err)
			continue
		}
		w.redraw()
		if w.once {
			return true, nil
		}
	}
	return false, sc.Err()
}

// stopping reports whether the main watch loop has exited (so the alerts
// overlay should too).
func (w *watcher) stopping() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// watchAlerts is the overlay's reconnect loop: it attaches to a gcassertd
// /alerts stream and feeds SLO alert transitions into the model's alerts
// pane. Transport drops retry on the same backoff ladder; a non-SSE
// endpoint is reported once and the overlay gives up (the dashboard itself
// keeps running — the overlay is best-effort by design).
func (w *watcher) watchAlerts(url string) {
	var bo backoff
	for {
		err := w.streamAlerts(url)
		if w.stopping() {
			return
		}
		var perm permanentError
		if asPermanent(err, &perm) {
			fmt.Fprintln(w.errw, "gctop: alerts:", perm.err)
			return
		}
		w.sleep(bo.delay())
		if w.stopping() {
			return
		}
	}
}

// streamAlerts connects to the alerts endpoint once and feeds transitions
// until the stream ends.
func (w *watcher) streamAlerts(url string) error {
	resp, err := w.get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return permanentError{fmt.Errorf(
			"%s is not an SSE endpoint (Content-Type %q); point -alerts at a gcassertd /alerts", url, ct)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		w.mu.Lock()
		err := w.model.FeedAlertJSON([]byte(strings.TrimPrefix(line, "data: ")))
		w.mu.Unlock()
		if err != nil {
			fmt.Fprintln(w.errw, "gctop:", err)
			continue
		}
		if !w.once {
			// -once captures stay single-frame; live dashboards repaint so a
			// firing alert shows without waiting for the next GC event.
			w.redraw()
		}
	}
	return sc.Err()
}

// redraw repaints the dashboard: the connection-state header line, then the
// model. -once keeps the plain single-frame output (no clear, no header) so
// scripted captures stay stable.
func (w *watcher) redraw() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.once {
		w.model.Render(w.out)
		return
	}
	fmt.Fprint(w.out, "\x1b[2J\x1b[H") // clear screen, home cursor
	fmt.Fprintf(w.out, "gctop · %s · %d events\n", w.state, w.model.Events())
	w.model.Render(w.out)
}
