// Command gcfleet is the fleet-forensics collector and query CLI: the
// server side of the exporter built into every gcassert runtime
// (Options.FleetURL / mjrun -fleet).
//
// Usage:
//
//	gcfleet serve  [-addr :9464] [-store DIR] [-max N]
//	gcfleet leaks  (-url URL | -store DIR) [-top N] [-min-instances N] [-json]
//	gcfleet slo    (-url URL | -store DIR) [-top N] [-json]
//	gcfleet traces (-url URL | -store DIR) [-top N] [-json]
//	gcfleet ls     (-url URL | -store DIR) [-kind census|flight|slo|trace]
//	gcfleet ingest (-url URL | -store DIR) envelope.json...
//
// serve runs the collector: instances POST content-addressed envelopes to
// /fleet/ingest, the store dedupes them by hash, and /fleet/* + /metrics
// answer queries (see internal/fleet.Server.Handler for the endpoint list).
//
// leaks is the cross-instance diff — which (type, allocation site) is
// growing on how many replicas, since when, kept alive through what — read
// either live from a collector (-url) or straight off its store directory
// (-store). slo is the fleet SLO rollup: the latest burn-rate alert state
// and error-budget position per tenant across every reporting gcassertd,
// worst-burning tenants first. traces lists the tail-sampled
// request-to-GC traces gcassertd instances shipped, newest first, with
// their keep reason and violation/pause rollups. ls lists stored artifacts
// with their reporting instances; -kind narrows it to one artifact kind.
// ingest posts envelope files by hand (re-homing a store, testing).
//
// Exit status: 0 on success, 1 when an input file, store, or collector
// cannot be read, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gcassert/internal/fleet"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const topUsage = `usage: gcfleet <command> [flags]

commands:
  serve    run the collector (ingest + dedupe + query + /metrics)
  leaks    rank cross-instance leak suspects
  slo      roll up per-tenant SLO alert state across the fleet
  traces   list tail-sampled request-to-GC traces across the fleet
  ls       list stored artifacts
  ingest   post envelope files to a collector or store

run "gcfleet <command> -h" for command flags`

// run is main without the process exit: 2 for usage errors, 1 for data
// errors, 0 on success.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, topUsage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return runServe(rest, stdout, stderr)
	case "leaks":
		return runLeaks(rest, stdout, stderr)
	case "slo":
		return runSLO(rest, stdout, stderr)
	case "traces":
		return runTraces(rest, stdout, stderr)
	case "ls":
		return runLs(rest, stdout, stderr)
	case "ingest":
		return runIngest(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, topUsage)
		return 0
	case "-version", "version":
		version.Print(stdout, "gcfleet")
		return 0
	default:
		fmt.Fprintf(stderr, "gcfleet: unknown command %q\n%s\n", cmd, topUsage)
		return 2
	}
}

func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":9464", "listen address")
	dir := fs.String("store", "gcfleet-store", "store directory (created if missing)")
	max := fs.Int("max", 0, "max unique artifacts kept (0 = default bound)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcfleet serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	store, err := fleet.OpenStore(*dir, *max)
	if err != nil {
		fmt.Fprintln(stderr, "gcfleet:", err)
		return 1
	}
	srv := fleet.NewServer(store)
	st := store.Stats()
	fmt.Fprintf(stderr, "gcfleet: serving on %s (store %s: %d artifacts, %d instances)\n",
		*addr, *dir, st.Unique, st.Instances)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(stderr, "gcfleet:", err)
		return 1
	}
	return 0
}

// sourceFlags is the shared -url / -store pair: query a live collector or
// read its store directory straight off disk.
type sourceFlags struct {
	url, dir string
}

func (s *sourceFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&s.url, "url", "", "collector base URL (e.g. http://localhost:9464)")
	fs.StringVar(&s.dir, "store", "", "store directory to read directly")
}

func (s *sourceFlags) validate(stderr io.Writer, name string) bool {
	if (s.url == "") == (s.dir == "") {
		fmt.Fprintf(stderr, "gcfleet %s: exactly one of -url or -store is required\n", name)
		return false
	}
	return true
}

// fetchJSON GETs a collector endpoint and decodes the JSON body into v.
func fetchJSON(baseURL, path string, v interface{}) error {
	resp, err := http.Get(strings.TrimSuffix(baseURL, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s%s: %s: %s", baseURL, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func runLeaks(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet leaks", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var src sourceFlags
	src.register(fs)
	top := fs.Int("top", 10, "suspects to report (0 = all)")
	minInst := fs.Int("min-instances", 1, "drop suspects growing on fewer instances")
	jsonOut := fs.Bool("json", false, "emit the leaks document as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcfleet leaks: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !src.validate(stderr, "leaks") {
		return 2
	}
	if *top < 0 || *minInst < 0 {
		fmt.Fprintln(stderr, "gcfleet leaks: -top and -min-instances must be non-negative")
		return 2
	}

	var doc fleet.LeaksDocument
	if src.url != "" {
		path := fmt.Sprintf("/fleet/leaks?top=%d&min-instances=%d", *top, *minInst)
		if err := fetchJSON(src.url, path, &doc); err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
	} else {
		store, err := fleet.OpenStore(src.dir, 0)
		if err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
		doc = fleet.RankLeaks(store, *top, *minInst)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
		return 0
	}
	printLeaks(stdout, doc)
	return 0
}

// printLeaks renders the fleet diff the way an operator reads it: the
// suspect, how widespread, how fast, since when, and how it is retained.
func printLeaks(w io.Writer, doc fleet.LeaksDocument) {
	fmt.Fprintf(w, "fleet leak suspects (%d census envelopes from %d instances):\n",
		doc.Envelopes, doc.Instances)
	if len(doc.Suspects) == 0 {
		fmt.Fprintln(w, "  none (no (type, site) shows consistent growth on any instance)")
		return
	}
	for i, l := range doc.Suspects {
		name := l.TypeName
		if l.Site != "" {
			name += " @ " + l.Site
		}
		fmt.Fprintf(w, "  #%d %s\n", i+1, name)
		fmt.Fprintf(w, "     %d of %d instances growing  %+.1f words/GC mean slope  growth %3.0f%%  first seen %s\n",
			l.InstancesGrowing, l.InstancesReporting, l.MeanSlopeWordsPerGC, 100*l.MeanGrowth,
			time.Unix(0, l.FirstSeenUnixNs).UTC().Format(time.RFC3339))
		for _, it := range l.PerInstance {
			if !it.Growing {
				continue
			}
			fmt.Fprintf(w, "       %-20s %d -> %d words over %d snapshots (%+.1f/GC)\n",
				it.InstanceID, it.StartWords, it.EndWords, it.Snapshots, it.SlopeWordsPerGC)
		}
		for _, p := range l.SamplePaths {
			fmt.Fprintf(w, "     kept alive via %s\n", p)
		}
	}
}

func runSLO(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var src sourceFlags
	src.register(fs)
	top := fs.Int("top", 20, "tenants to report (0 = all)")
	jsonOut := fs.Bool("json", false, "emit the rollup document as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcfleet slo: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !src.validate(stderr, "slo") {
		return 2
	}
	if *top < 0 {
		fmt.Fprintln(stderr, "gcfleet slo: -top must be non-negative")
		return 2
	}

	var doc fleet.SLORollup
	if src.url != "" {
		if err := fetchJSON(src.url, fmt.Sprintf("/fleet/slo?top=%d", *top), &doc); err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
	} else {
		store, err := fleet.OpenStore(src.dir, 0)
		if err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
		doc = fleet.RollupSLO(store, *top)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
		return 0
	}
	printSLO(stdout, doc)
	return 0
}

// printSLO renders the rollup the way an on-caller triages it: how much of
// the fleet is alight, then the worst-burning tenants first.
func printSLO(w io.Writer, doc fleet.SLORollup) {
	fmt.Fprintf(w, "fleet slo rollup: %d reporting tenants, %d firing, %d pending\n",
		doc.Instances, doc.Firing, doc.Pending)
	if len(doc.Tenants) == 0 {
		fmt.Fprintln(w, "  none (no instance has shipped an SLO report)")
		return
	}
	fmt.Fprintf(w, "  %-8s %-5s %-28s %-18s %8s %7s  %s\n",
		"state", "sev", "instance", "worst objective", "burn", "budget", "as of")
	for _, row := range doc.Tenants {
		compliant := ""
		if !row.Compliant {
			compliant = "  NONCOMPLIANT"
		}
		fmt.Fprintf(w, "  %-8s %-5s %-28s %-18s %7.1fx %6.0f%%  %s%s\n",
			row.State, row.Severity, row.Instance, row.WorstObjective,
			row.WorstBurn, 100*row.MinBudgetRemaining,
			time.Unix(0, row.CapturedUnixNs).UTC().Format(time.RFC3339), compliant)
	}
}

func runTraces(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet traces", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var src sourceFlags
	src.register(fs)
	top := fs.Int("top", 50, "traces to report (0 = all)")
	jsonOut := fs.Bool("json", false, "emit the trace list as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcfleet traces: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !src.validate(stderr, "traces") {
		return 2
	}
	if *top < 0 {
		fmt.Fprintln(stderr, "gcfleet traces: -top must be non-negative")
		return 2
	}

	var doc fleet.TraceList
	if src.url != "" {
		if err := fetchJSON(src.url, fmt.Sprintf("/fleet/traces?top=%d", *top), &doc); err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
	} else {
		store, err := fleet.OpenStore(src.dir, 0)
		if err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
		doc = fleet.ListTraces(store, *top)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
		return 0
	}
	printTraces(stdout, doc)
	return 0
}

// printTraces renders the fleet trace index the way an operator scans it:
// the newest interesting traces, why each was kept, and how to pull it.
func printTraces(w io.Writer, doc fleet.TraceList) {
	fmt.Fprintf(w, "fleet traces: %d stored\n", doc.Total)
	if len(doc.Traces) == 0 {
		fmt.Fprintln(w, "  none (no instance has shipped a sampled trace)")
		return
	}
	fmt.Fprintf(w, "  %-32s %-24s %-11s %4s %4s %5s %10s  %s\n",
		"trace", "instance", "reason", "reqs", "gcs", "viols", "pause", "captured")
	for _, row := range doc.Traces {
		fmt.Fprintf(w, "  %-32s %-24s %-11s %4d %4d %5d %8.2fms  %s\n",
			row.TraceID, row.Instance, row.Reason, row.Requests, row.GCs, row.Violations,
			float64(row.GCPauseNs)/1e6,
			time.Unix(0, row.CapturedUnixNs).UTC().Format(time.RFC3339))
	}
}

// lsKinds are the artifact kinds gcfleet ls -kind accepts.
var lsKinds = map[string]bool{
	fleet.KindCensus: true,
	fleet.KindFlight: true,
	fleet.KindSLO:    true,
	fleet.KindTrace:  true,
}

func runLs(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet ls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var src sourceFlags
	src.register(fs)
	kind := fs.String("kind", "", "only list artifacts of this kind (census, flight, slo, trace)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "gcfleet ls: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !src.validate(stderr, "ls") {
		return 2
	}
	if *kind != "" && !lsKinds[*kind] {
		fmt.Fprintf(stderr, "gcfleet ls: unknown kind %q (want census, flight, slo or trace)\n", *kind)
		return 2
	}

	var metas []fleet.Meta
	if src.url != "" {
		if err := fetchJSON(src.url, "/fleet/bundles", &metas); err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
	} else {
		store, err := fleet.OpenStore(src.dir, 0)
		if err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
		metas = store.List()
	}
	if *kind != "" {
		kept := metas[:0]
		for _, m := range metas {
			if m.Kind == *kind {
				kept = append(kept, m)
			}
		}
		metas = kept
	}

	fmt.Fprintf(stdout, "%-22s %-7s %10s %5s  %s\n", "hash", "kind", "bytes", "seen", "instances")
	for _, m := range metas {
		hash := m.Hash
		if len(hash) > 22 {
			hash = hash[:19] + "..."
		}
		fmt.Fprintf(stdout, "%-22s %-7s %10d %5d  %s\n",
			hash, m.Kind, m.Bytes, m.Seen, strings.Join(m.Instances, ","))
	}
	return 0
}

func runIngest(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcfleet ingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var src sourceFlags
	src.register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "gcfleet ingest: no envelope files given")
		return 2
	}
	if !src.validate(stderr, "ingest") {
		return 2
	}

	var store *fleet.Store
	if src.dir != "" {
		var err error
		if store, err = fleet.OpenStore(src.dir, 0); err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "gcfleet:", err)
			return 1
		}
		var added bool
		var hash string
		if store != nil {
			var env fleet.Envelope
			if err := json.Unmarshal(data, &env); err != nil {
				fmt.Fprintf(stderr, "gcfleet: %s: %v\n", path, err)
				return 1
			}
			if added, err = store.Ingest(env, time.Now().UnixNano()); err != nil {
				fmt.Fprintf(stderr, "gcfleet: %s: %v\n", path, err)
				return 1
			}
			hash = env.Hash
		} else {
			resp, err := http.Post(strings.TrimSuffix(src.url, "/")+"/fleet/ingest",
				"application/json", strings.NewReader(string(data)))
			if err != nil {
				fmt.Fprintln(stderr, "gcfleet:", err)
				return 1
			}
			var ack struct {
				Hash  string `json:"hash"`
				Added bool   `json:"added"`
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				fmt.Fprintf(stderr, "gcfleet: %s: %s: %s\n", path, resp.Status, strings.TrimSpace(string(body)))
				return 1
			}
			err = json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if err != nil {
				fmt.Fprintf(stderr, "gcfleet: %s: %v\n", path, err)
				return 1
			}
			added, hash = ack.Added, ack.Hash
		}
		verdict := "stored"
		if !added {
			verdict = "deduped"
		}
		fmt.Fprintf(stdout, "%s  %s  %s\n", verdict, hash, path)
	}
	return 0
}
