package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/fleet"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// seedStore fills a store directory with a growing census series from one
// instance and a steady one from another, plus a resend, and returns the
// envelope files written alongside (for the ingest subcommand).
func seedStore(t *testing.T, dir string) (envFiles []string) {
	t.Helper()
	store, err := fleet.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkEnv := func(instance string, gc uint64, words uint64) fleet.Envelope {
		snap := heapdump.Snapshot{
			GC: gc, UnixNs: int64(gc) * 1000, TotalObjects: 1, TotalWords: words,
			Types: []heapdump.TypeCensus{{TypeName: "app/Cache", Objects: 1, Words: words}},
		}
		payload, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		env, err := fleet.Seal(fleet.KindCensus, "reg1-test",
			version.Identity{InstanceID: instance, Host: "h", PID: 1}, int64(gc)*1000, payload)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	ingest := func(env fleet.Envelope, at int64) {
		if _, err := store.Ingest(env, at); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 4; i++ {
		ingest(mkEnv("replica-grow", i, 100*i), int64(i))
		ingest(mkEnv("replica-steady", i, 100), int64(i))
	}
	// A resend from the growing replica dedupes against its own history.
	ingest(mkEnv("replica-grow", 2, 200), 99)

	// Envelope files for the ingest subcommand round trip.
	for i, env := range []fleet.Envelope{mkEnv("replica-new", 1, 50), mkEnv("replica-grow", 1, 100)} {
		data, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), fmt.Sprintf("env-%d.json", i))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		envFiles = append(envFiles, p)
	}
	return envFiles
}

// TestRunUsageErrors pins exit code 2 + stderr diagnostics for wrong
// invocations, without touching any store.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name         string
		args         []string
		wantInStderr string
	}{
		{"no-command", nil, "usage: gcfleet"},
		{"unknown-command", []string{"frobnicate"}, `unknown command "frobnicate"`},
		{"leaks-no-source", []string{"leaks"}, "exactly one of -url or -store"},
		{"leaks-both-sources", []string{"leaks", "-url", "http://x", "-store", "y"}, "exactly one of -url or -store"},
		{"leaks-stray-arg", []string{"leaks", "-store", "x", "zzz"}, "unexpected argument"},
		{"leaks-bad-flag", []string{"leaks", "-nope"}, "flag provided but not defined"},
		{"ls-no-source", []string{"ls"}, "exactly one of -url or -store"},
		{"ingest-no-files", []string{"ingest", "-store", "x"}, "no envelope files"},
		{"serve-stray-arg", []string{"serve", "extra"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantInStderr) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantInStderr, stderr.String())
			}
		})
	}
}

// TestRunVersion pins the -version escape hatch: exit 0, build identity on
// stdout, nothing on stderr.
func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "gcfleet ") {
		t.Errorf("stdout does not start with %q:\n%s", "gcfleet ", stdout.String())
	}
	if stderr.Len() > 0 {
		t.Errorf("-version wrote to stderr:\n%s", stderr.String())
	}
}

// TestRunDataErrors pins exit code 1 when the source cannot be read.
func TestRunDataErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"leaks-dead-collector", []string{"leaks", "-url", "http://127.0.0.1:1"}},
		{"ingest-missing-file", []string{"ingest", "-store", dir, missing}},
		{"ingest-garbage-file", []string{"ingest", "-store", dir, writeFile(t, "not json")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 1 {
				t.Errorf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("data error produced no diagnostic")
			}
		})
	}
}

func writeFile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "f.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLeaksFromStoreDir runs the offline diff against a seeded store: the
// growing replica's type must surface, attributed to 1 of 2 instances.
func TestLeaksFromStoreDir(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"leaks", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "app/Cache") {
		t.Errorf("leak report missing the growing type:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 instances growing") {
		t.Errorf("leak report missing the instance attribution:\n%s", out)
	}
	if !strings.Contains(out, "replica-grow") {
		t.Errorf("leak report missing the growing replica:\n%s", out)
	}

	// JSON mode emits the LeaksDocument verbatim.
	stdout.Reset()
	if code := run([]string{"leaks", "-store", dir, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("json exit code = %d\nstderr: %s", code, stderr.String())
	}
	var doc fleet.LeaksDocument
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("leaks -json output is not a LeaksDocument: %v", err)
	}
	if len(doc.Suspects) == 0 || doc.Suspects[0].TypeName != "app/Cache" {
		t.Fatalf("suspects = %+v", doc.Suspects)
	}

	// -min-instances 2 filters the single-replica leak out.
	stdout.Reset()
	if code := run([]string{"leaks", "-store", dir, "-min-instances", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("min-instances exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "none") {
		t.Errorf("-min-instances 2 did not filter the single-replica leak:\n%s", stdout.String())
	}
}

// TestLsAndIngestFromStoreDir covers the remaining offline subcommands.
func TestLsAndIngestFromStoreDir(t *testing.T) {
	dir := t.TempDir()
	envFiles := seedStore(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"ls", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("ls exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "census") || !strings.Contains(stdout.String(), "replica-grow") {
		t.Errorf("ls output incomplete:\n%s", stdout.String())
	}

	// Ingesting one new envelope and one duplicate: stored then deduped.
	stdout.Reset()
	if code := run(append([]string{"ingest", "-store", dir}, envFiles...), &stdout, &stderr); code != 0 {
		t.Fatalf("ingest exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stored") || !strings.Contains(stdout.String(), "deduped") {
		t.Errorf("ingest verdicts wrong (want one stored, one deduped):\n%s", stdout.String())
	}
}
