package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/fleet"
	"gcassert/internal/heapdump"
	"gcassert/internal/trace"
	"gcassert/internal/version"
)

// seedStore fills a store directory with a growing census series from one
// instance and a steady one from another, plus a resend, and returns the
// envelope files written alongside (for the ingest subcommand).
func seedStore(t *testing.T, dir string) (envFiles []string) {
	t.Helper()
	store, err := fleet.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkEnv := func(instance string, gc uint64, words uint64) fleet.Envelope {
		snap := heapdump.Snapshot{
			GC: gc, UnixNs: int64(gc) * 1000, TotalObjects: 1, TotalWords: words,
			Types: []heapdump.TypeCensus{{TypeName: "app/Cache", Objects: 1, Words: words}},
		}
		payload, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		env, err := fleet.Seal(fleet.KindCensus, "reg1-test",
			version.Identity{InstanceID: instance, Host: "h", PID: 1}, int64(gc)*1000, payload)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	ingest := func(env fleet.Envelope, at int64) {
		if _, err := store.Ingest(env, at); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 4; i++ {
		ingest(mkEnv("replica-grow", i, 100*i), int64(i))
		ingest(mkEnv("replica-steady", i, 100), int64(i))
	}
	// A resend from the growing replica dedupes against its own history.
	ingest(mkEnv("replica-grow", 2, 200), 99)

	// Envelope files for the ingest subcommand round trip.
	for i, env := range []fleet.Envelope{mkEnv("replica-new", 1, 50), mkEnv("replica-grow", 1, 100)} {
		data, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), fmt.Sprintf("env-%d.json", i))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		envFiles = append(envFiles, p)
	}
	return envFiles
}

// TestRunUsageErrors pins exit code 2 + stderr diagnostics for wrong
// invocations, without touching any store.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name         string
		args         []string
		wantInStderr string
	}{
		{"no-command", nil, "usage: gcfleet"},
		{"unknown-command", []string{"frobnicate"}, `unknown command "frobnicate"`},
		{"leaks-no-source", []string{"leaks"}, "exactly one of -url or -store"},
		{"leaks-both-sources", []string{"leaks", "-url", "http://x", "-store", "y"}, "exactly one of -url or -store"},
		{"leaks-stray-arg", []string{"leaks", "-store", "x", "zzz"}, "unexpected argument"},
		{"leaks-bad-flag", []string{"leaks", "-nope"}, "flag provided but not defined"},
		{"ls-no-source", []string{"ls"}, "exactly one of -url or -store"},
		{"ingest-no-files", []string{"ingest", "-store", "x"}, "no envelope files"},
		{"serve-stray-arg", []string{"serve", "extra"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantInStderr) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantInStderr, stderr.String())
			}
		})
	}
}

// TestRunVersion pins the -version escape hatch: exit 0, build identity on
// stdout, nothing on stderr.
func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "gcfleet ") {
		t.Errorf("stdout does not start with %q:\n%s", "gcfleet ", stdout.String())
	}
	if stderr.Len() > 0 {
		t.Errorf("-version wrote to stderr:\n%s", stderr.String())
	}
}

// TestRunDataErrors pins exit code 1 when the source cannot be read.
func TestRunDataErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"leaks-dead-collector", []string{"leaks", "-url", "http://127.0.0.1:1"}},
		{"ingest-missing-file", []string{"ingest", "-store", dir, missing}},
		{"ingest-garbage-file", []string{"ingest", "-store", dir, writeFile(t, "not json")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 1 {
				t.Errorf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("data error produced no diagnostic")
			}
		})
	}
}

func writeFile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "f.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLeaksFromStoreDir runs the offline diff against a seeded store: the
// growing replica's type must surface, attributed to 1 of 2 instances.
func TestLeaksFromStoreDir(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"leaks", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "app/Cache") {
		t.Errorf("leak report missing the growing type:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 instances growing") {
		t.Errorf("leak report missing the instance attribution:\n%s", out)
	}
	if !strings.Contains(out, "replica-grow") {
		t.Errorf("leak report missing the growing replica:\n%s", out)
	}

	// JSON mode emits the LeaksDocument verbatim.
	stdout.Reset()
	if code := run([]string{"leaks", "-store", dir, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("json exit code = %d\nstderr: %s", code, stderr.String())
	}
	var doc fleet.LeaksDocument
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("leaks -json output is not a LeaksDocument: %v", err)
	}
	if len(doc.Suspects) == 0 || doc.Suspects[0].TypeName != "app/Cache" {
		t.Fatalf("suspects = %+v", doc.Suspects)
	}

	// -min-instances 2 filters the single-replica leak out.
	stdout.Reset()
	if code := run([]string{"leaks", "-store", dir, "-min-instances", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("min-instances exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "none") {
		t.Errorf("-min-instances 2 did not filter the single-replica leak:\n%s", stdout.String())
	}
}

// TestLsAndIngestFromStoreDir covers the remaining offline subcommands.
func TestLsAndIngestFromStoreDir(t *testing.T) {
	dir := t.TempDir()
	envFiles := seedStore(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"ls", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("ls exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "census") || !strings.Contains(stdout.String(), "replica-grow") {
		t.Errorf("ls output incomplete:\n%s", stdout.String())
	}

	// Ingesting one new envelope and one duplicate: stored then deduped.
	stdout.Reset()
	if code := run(append([]string{"ingest", "-store", dir}, envFiles...), &stdout, &stderr); code != 0 {
		t.Fatalf("ingest exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stored") || !strings.Contains(stdout.String(), "deduped") {
		t.Errorf("ingest verdicts wrong (want one stored, one deduped):\n%s", stdout.String())
	}
}

// seedTrace ingests one sealed trace envelope from a gcassertd instance so
// the traces subcommand and ls -kind have something cross-kind to chew on.
func seedTrace(t *testing.T, dir, instance, traceID string) {
	t.Helper()
	store, err := fleet.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := trace.Document{
		SchemaVersion: trace.DocumentSchemaVersion,
		TraceID:       traceID,
		Tenant:        "acme",
		Instance:      instance,
		StartUnixNs:   1000,
		EndUnixNs:     5000,
		SampledReason: trace.KeepViolation,
		Requests:      3,
		GCs:           2,
		Violations:    1,
		GCPauseNs:     250,
	}
	payload, err := json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	env, err := fleet.Seal(fleet.KindTrace, fleet.TraceRegistryRef,
		version.Identity{InstanceID: instance + "/acme", Host: "h", PID: 1}, 5000, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(env, 5000); err != nil {
		t.Fatal(err)
	}
}

// TestLsKindFilter pins the -kind contract: a valid kind narrows the
// listing to that kind (exit 0), an unknown kind is a usage error (exit 2,
// diagnostic on stderr, nothing listed).
func TestLsKindFilter(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	seedTrace(t, dir, "replica-grow", "0123456789abcdef0123456789abcdef")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"ls", "-store", dir, "-kind", "trace"}, &stdout, &stderr); code != 0 {
		t.Fatalf("ls -kind trace exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "trace") {
		t.Errorf("ls -kind trace listed no trace artifact:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "census") {
		t.Errorf("ls -kind trace leaked census rows:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"ls", "-store", dir, "-kind", "census"}, &stdout, &stderr); code != 0 {
		t.Fatalf("ls -kind census exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "census") || strings.Contains(stdout.String(), "trace") {
		t.Errorf("ls -kind census filtered wrong:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"ls", "-store", dir, "-kind", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("ls -kind bogus exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), `unknown kind "bogus"`) {
		t.Errorf("stderr missing the unknown-kind diagnostic:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("usage error still listed artifacts:\n%s", stdout.String())
	}
}

// TestTracesFromStoreDir covers the traces subcommand offline: the seeded
// trace surfaces with its keep reason and rollups, -json emits the
// TraceList, and an empty store says so at exit 0.
func TestTracesFromStoreDir(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	seedTrace(t, dir, "replica-grow", "0123456789abcdef0123456789abcdef")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"traces", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("traces exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"0123456789abcdef0123456789abcdef", "replica-grow", "violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("traces output missing %q:\n%s", want, out)
		}
	}

	stdout.Reset()
	if code := run([]string{"traces", "-store", dir, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("traces -json exit code = %d\nstderr: %s", code, stderr.String())
	}
	var list fleet.TraceList
	if err := json.Unmarshal(stdout.Bytes(), &list); err != nil {
		t.Fatalf("traces -json output is not a TraceList: %v", err)
	}
	if list.Total != 1 || len(list.Traces) != 1 {
		t.Fatalf("trace list = %+v", list)
	}
	row := list.Traces[0]
	if row.TraceID != "0123456789abcdef0123456789abcdef" || row.Reason != "violation" ||
		row.Violations != 1 || row.GCPauseNs != 250 {
		t.Errorf("trace row = %+v", row)
	}

	// No traces stored (census-only store): friendly empty listing, exit 0.
	emptyDir := t.TempDir()
	seedStore(t, emptyDir)
	stdout.Reset()
	if code := run([]string{"traces", "-store", emptyDir}, &stdout, &stderr); code != 0 {
		t.Fatalf("empty traces exit code = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "none") {
		t.Errorf("empty store listing not announced:\n%s", stdout.String())
	}

	// Usage contract matches the other subcommands.
	stderr.Reset()
	if code := run([]string{"traces"}, &stdout, &stderr); code != 2 {
		t.Fatalf("traces with no source = %d, want 2", code)
	}
}
