package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional arg", []string{"stray"}},
		{"zero max-tenants", []string{"-max-tenants", "0"}},
		{"negative max-heap", []string{"-max-heap", "-1"}},
		{"zero default-heap", []string{"-default-heap", "0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("run(%v) = %d, want 2; stderr: %s", tc.args, code, errb.String())
			}
			if errb.Len() == 0 {
				t.Errorf("usage error produced no diagnostics")
			}
		})
	}
}

func TestRunVersion(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("run(-version) = %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "gcassertd") {
		t.Errorf("version output %q does not name the tool", out.String())
	}
}

func TestRunListenFailure(t *testing.T) {
	// Occupy a port so the server's own listen fails: a data error (1).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", ln.Addr().String()}, &out, &errb); code != 1 {
		t.Fatalf("run on occupied port = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "address already in use") &&
		!strings.Contains(errb.String(), "bind") {
		t.Errorf("unexpected listen diagnostics: %s", errb.String())
	}
}
