// Command gcassertd runs the multi-tenant GC-assertion service: many
// isolated gcassert runtimes — each with its own heap, collector
// configuration, assertion policy, and telemetry — driven over HTTP/JSON.
//
// Usage:
//
//	gcassertd [-addr :9470] [-instance ID] [-fleet URL]
//	          [-max-tenants N] [-max-heap MiB] [-default-heap MiB]
//
// API (see internal/assertd for the full contract):
//
//	POST   /tenants                  {"id": "t1", "options": {"heap_mib": 16, "react": {"dead": "log"}, "slo": {...}}}
//	POST   /tenants/t1/program       MJ source body
//	POST   /tenants/t1/drive         {"requests": 100, "collect": true}
//	GET    /tenants/t1               per-tenant stats (also /tenants for all)
//	GET    /tenants/t1/violations    SSE violation stream
//	GET    /tenants/t1/events        SSE GC event stream (?replay=N)
//	PUT    /tenants/t1/slo           SLO spec JSON (internal/slo.Spec); GET reads the
//	                                 judgment document, DELETE clears the SLO
//	GET    /alerts                   SSE stream of SLO burn-rate alert transitions,
//	                                 all tenants, with bounded replay on attach
//	GET    /tenants/t1/traces        tail-sampled request-to-GC traces, newest first
//	GET    /tenants/t1/traces/{id}   one stored trace document (span tree)
//	DELETE /tenants/t1
//	GET    /metrics                  Prometheus text, tenant label on per-tenant series
//	                                 (incl. gcassertd_slo_* gauges; request-latency
//	                                 buckets carry kept-trace exemplars)
//
// Every handler honors an incoming W3C traceparent header; a drive on a
// tenant with "trace" in its options continues the caller's trace (the
// response traceparent carries the new root span) and records each GC
// collection as a child span of the request it paused. Tail sampling
// always keeps violating, SLO-bad, and slow-pause batches; `gctrace
// -trace` renders stored documents as a span tree.
//
// With -fleet, every tenant exports census envelopes to the gcfleet
// collector under the composed instance ID "<instance>/<tenant>", so
// cross-instance leak diffing sees each tenant as its own instance — and
// every SLO alert transition ships a sealed report envelope the collector
// rolls up on /fleet/slo (`gcfleet slo`), while every kept trace ships a
// sealed trace envelope listed by /fleet/traces (`gcfleet traces`).
//
// Exit status: 0 on success (clean shutdown), 1 when the listener cannot be
// opened or serving fails, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"gcassert/internal/assertd"
	"gcassert/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit: 0 on success, 1 for listen/serve
// failures, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcassertd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":9470", "listen address")
	instance := fs.String("instance", "", "host instance ID; tenants export as ID/tenant (empty = generated per tenant)")
	fleetURL := fs.String("fleet", "", "gcfleet collector base URL for per-tenant census export")
	maxTenants := fs.Int("max-tenants", 256, "maximum concurrent tenants")
	maxHeap := fs.Int("max-heap", 256, "per-tenant heap cap, MiB")
	defaultHeap := fs.Int("default-heap", 16, "heap for tenants that don't choose, MiB")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		version.Print(stdout, "gcassertd")
		return 0
	}

	usage := func(msg string) int {
		fmt.Fprintln(stderr, "gcassertd: usage: "+msg)
		return 2
	}
	if fs.NArg() != 0 {
		return usage("gcassertd takes no positional arguments")
	}
	if *maxTenants <= 0 || *maxHeap <= 0 || *defaultHeap <= 0 {
		return usage("-max-tenants, -max-heap and -default-heap must be positive")
	}

	s := assertd.NewServer(assertd.Config{
		InstanceID:     *instance,
		FleetURL:       *fleetURL,
		MaxTenants:     *maxTenants,
		MaxHeapMiB:     *maxHeap,
		DefaultHeapMiB: *defaultHeap,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "gcassertd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "gcassertd: listening on %s (max %d tenants, %d MiB heap cap)\n",
		ln.Addr(), *maxTenants, *maxHeap)
	if err := (&http.Server{Handler: s.Handler()}).Serve(ln); err != nil &&
		err != http.ErrServerClosed {
		fmt.Fprintln(stderr, "gcassertd:", err)
		return 1
	}
	return 0
}
