package gcassert_test

import (
	"strings"
	"testing"

	"gcassert"
)

func TestLogWriterPrintsFigure1Reports(t *testing.T) {
	var log strings.Builder
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		LogWriter:      &log,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	fr.Set(0, a)
	vm.AssertDead(a)
	vm.Collect()
	out := log.String()
	if !strings.Contains(out, "Warning: an object that was asserted dead is reachable.") ||
		!strings.Contains(out, "Type: Node") {
		t.Errorf("log output:\n%s", out)
	}
}

func TestLogWriterAndReporterBothFire(t *testing.T) {
	var log strings.Builder
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		Reporter:       rep,
		LogWriter:      &log,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	fr.Set(0, a)
	vm.AssertDead(a)
	vm.Collect()
	if rep.Len() != 1 || !strings.Contains(log.String(), "Warning") {
		t.Errorf("reporter len=%d, log=%q", rep.Len(), log.String())
	}
}

func TestHaltPolicyViaFacade(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		Policy:         gcassert.Policy{}.With(gcassert.KindInstances, gcassert.ReactHalt),
	})
	cfgType := vm.Define("Config")
	th := vm.NewThread("main")
	fr := th.Push(2)
	fr.Set(0, th.New(cfgType))
	fr.Set(1, th.New(cfgType))
	vm.AssertInstances(cfgType, 1)
	defer func() {
		he, ok := recover().(*gcassert.HaltError)
		if !ok {
			t.Fatal("expected *HaltError")
		}
		if he.Violation.Kind != gcassert.KindInstances {
			t.Errorf("halted on %v", he.Violation.Kind)
		}
	}()
	vm.Collect()
	t.Fatal("expected halt")
}

// TestOnViolationDecider: the programmatic reaction interface — force-
// reclaim leaked Orders but only log leaked Customers.
func TestOnViolationDecider(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		Reporter:       rep,
		OnViolation: func(v *gcassert.Violation) gcassert.Reaction {
			if v.Kind == gcassert.KindDead && v.TypeName == "Order" {
				return gcassert.ReactForce
			}
			return gcassert.ReactLog
		},
	})
	order := vm.Define("Order")
	cust := vm.Define("Customer")
	th := vm.NewThread("main")
	fr := th.Push(2)
	o := th.New(order)
	c := th.New(cust)
	fr.Set(0, o)
	fr.Set(1, c)
	vm.AssertDead(o)
	vm.AssertDead(c)
	vm.Collect()
	if rep.Len() != 2 {
		t.Fatalf("violations = %d", rep.Len())
	}
	// The Order was force-reclaimed (its root severed); the Customer only
	// logged and survives.
	if fr.Get(0) != gcassert.Nil {
		t.Error("order root not severed by ReactForce")
	}
	if fr.Get(1) != c || !vm.Space().Contains(c) {
		t.Error("customer should have survived (ReactLog)")
	}
	if st := vm.AssertionStats(); st.DeadVerified != 1 {
		t.Errorf("DeadVerified = %d", st.DeadVerified)
	}
}

func TestGenerationalViaFacade(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      2 << 20,
		Infrastructure: true,
		Reporter:       rep,
		Generational:   true,
		MinorRatio:     4,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	leak := th.New(node)
	fr.Set(0, leak)
	vm.AssertDead(leak)
	// Churn until both minor and full collections have run.
	for {
		minors, fulls, ok := vm.GenStats()
		if !ok {
			t.Fatal("GenStats not available")
		}
		if minors > 0 && fulls > 0 {
			break
		}
		cfr := th.Push(1)
		for i := 0; i < 5000; i++ {
			n := th.New(node)
			cfr.Set(0, n)
		}
		th.Pop()
	}
	if rep.Len() == 0 {
		t.Error("full collection did not check the assertion")
	}
	if !vm.Space().Contains(leak) {
		t.Error("live object freed in generational mode")
	}
}

func TestAssertionStatsZeroWithoutInfra(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20})
	if st := vm.AssertionStats(); st != (gcassert.AssertStats{}) {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := vm.LiveInstances(gcassert.TRefArray); ok {
		t.Error("LiveInstances without infra")
	}
}

func TestHeapStatsViaFacade(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	th.New(node)
	if st := vm.HeapStats(); st.ObjectsAllocated != 1 {
		t.Errorf("HeapStats = %+v", st)
	}
	if vm.TypeName(gcassert.Nil) == "" { // Nil has a diagnostic name via header 0
		t.Log("nil type name empty (fine)")
	}
}

func TestScalarAndArrayFacadeAccessors(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20})
	node := vm.Define("Node",
		gcassert.Field{Name: "next", Ref: true},
		gcassert.Field{Name: "v", Ref: false})
	th := vm.NewThread("main")
	fr := th.Push(2)
	a := th.New(node)
	fr.Set(0, a)
	vm.SetScalar(a, 1, 99)
	if vm.GetScalar(a, 1) != 99 {
		t.Error("scalar roundtrip")
	}
	arr := th.NewArray(gcassert.TWordArray, 4)
	fr.Set(1, arr)
	vm.SetWordAt(arr, 2, 7)
	if vm.WordAt(arr, 2) != 7 || vm.ArrayLen(arr) != 4 {
		t.Error("word array roundtrip")
	}
	if vm.TypeName(a) != "Node" {
		t.Error("TypeName")
	}
	if vm.FieldIndex(node, "v") != 1 {
		t.Error("FieldIndex")
	}
}

// TestUnsharedPathPointsAtSecondParent checks the facade-visible unshared
// report names the second discovered path, per §2.7.
func TestUnsharedPathSecondPath(t *testing.T) {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20, Infrastructure: true, Reporter: rep})
	node := vm.Define("Node",
		gcassert.Field{Name: "a", Ref: true},
		gcassert.Field{Name: "b", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(2)
	p1 := th.New(node)
	p2 := th.New(node)
	shared := th.New(node)
	vm.SetRef(p1, 0, shared)
	vm.SetRef(p2, 0, shared)
	fr.Set(0, p1)
	fr.Set(1, p2)
	vm.AssertUnshared(shared)
	vm.Collect()
	vs := rep.ByKind(gcassert.KindUnshared)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", rep.Violations())
	}
	// The reported path must come through one of the two parents.
	if len(vs[0].Path) != 2 {
		t.Fatalf("path = %+v", vs[0].Path)
	}
	if first := vs[0].Path[0].Addr; first != p1 && first != p2 {
		t.Errorf("path start = %v", first)
	}
}
