// regions demonstrates start-region / assert-alldead (§2.3.2): a server
// loop brackets its per-connection code with a region and asserts that all
// memory allocated while servicing the connection is released afterwards —
// the Apache-style region discipline, checked rather than enforced.
//
// A session cache that retains a response object violates the region
// assertion; the report shows the path through the cache.
//
// Run with:
//
//	go run ./examples/regions
package main

import (
	"fmt"

	"gcassert"
)

func main() {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      8 << 20,
		Infrastructure: true,
		Reporter:       rep,
	})

	request := vm.Define("Request",
		gcassert.Field{Name: "body", Ref: true},
	)
	response := vm.Define("Response",
		gcassert.Field{Name: "payload", Ref: true},
	)
	fBody := vm.FieldIndex(request, "body")
	fPayload := vm.FieldIndex(response, "payload")

	th := vm.NewThread("server")
	fr := th.Push(1)

	// The buggy session cache: a global that retains the last response.
	cacheG := vm.NewGlobal("sessionCache")
	cache := th.NewArray(gcassert.TRefArray, 8)
	vm.SetGlobal(cacheG, cache)

	serve := func(conn int, leakToCache bool) {
		th.StartRegion()
		cfr := th.Push(2)

		req := th.New(request)
		cfr.Set(0, req)
		vm.SetRef(req, fBody, th.NewArray(gcassert.TWordArray, 64))

		resp := th.New(response)
		cfr.Set(1, resp)
		vm.SetRef(resp, fPayload, th.NewArray(gcassert.TWordArray, 128))

		if leakToCache {
			// The bug: the response escapes into the session cache.
			vm.SetRefAt(vm.GetGlobal(cacheG), conn%8, resp)
		}

		th.Pop() // connection state goes out of scope...
		n := th.AssertAllDead()
		fmt.Printf("connection %d: region closed, %d objects asserted dead\n", conn, n)
	}

	fmt.Println("--- clean connections ---")
	for conn := 0; conn < 3; conn++ {
		serve(conn, false)
	}
	vm.Collect()
	fmt.Printf("violations so far: %d (all region allocations died)\n\n", rep.Len())

	fmt.Println("--- a connection that leaks its response into a session cache ---")
	serve(3, true)
	vm.Collect()

	for _, v := range rep.ByKind(gcassert.KindDead) {
		fmt.Println(v.String())
	}
	st := vm.AssertionStats()
	fmt.Printf("regions: %d started, %d allocations tracked, %d verified dead, %d violations\n",
		st.RegionsStarted, st.RegionAllocs, st.DeadVerified, st.Violations)
	_ = fr
}
