// Quickstart: the smallest useful GC-assertions program.
//
// We build a two-node list, assert that the tail must die after unlinking
// it, and let the collector check the claim. The first collection reports a
// violation (a stale reference still reaches the tail) with the full path
// through the heap; after the fix, the assertion passes silently.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"gcassert"
)

func main() {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      8 << 20,
		Infrastructure: true,      // enable the assertion machinery
		LogWriter:      os.Stdout, // print violations in Figure 1 style
	})

	// Define a managed type: class Node { Node next; long value; }
	node := vm.Define("Node",
		gcassert.Field{Name: "next", Ref: true},
		gcassert.Field{Name: "value", Ref: false},
	)
	next := vm.FieldIndex(node, "next")

	th := vm.NewThread("main")
	fr := th.Push(2)

	// head -> tail, plus a second, forgotten reference to tail in a local.
	head := th.New(node)
	fr.Set(0, head)
	tail := th.New(node)
	vm.SetRef(head, next, tail)
	fr.Set(1, tail) // the "forgotten" local reference

	// Unlink the tail and declare that it must now be garbage.
	vm.SetRef(head, next, gcassert.Nil)
	vm.AssertDead(tail)

	fmt.Println("--- collecting with a stale reference still in place ---")
	vm.Collect() // reports: tail is reachable, path = the local root

	// The fix: clear the stale local, re-assert, and collect again.
	tail2 := th.New(node)
	vm.SetRef(head, next, tail2)
	vm.SetRef(head, next, gcassert.Nil)
	vm.AssertDead(tail2)
	fr.Set(1, gcassert.Nil)

	fmt.Println("--- collecting after the fix (silence means the object died) ---")
	vm.Collect()

	st := vm.AssertionStats()
	fmt.Printf("asserted dead: %d, verified reclaimed: %d, violations: %d\n",
		st.DeadAsserted, st.DeadVerified, st.Violations)
}
