// lusearch reproduces the paper's Lucene case study (§3.2.2): the Lucene
// documentation recommends opening a single IndexSearcher and sharing it
// across threads, but the DaCapo lusearch harness opens one per thread.
// assert-instances(IndexSearcher, 1) reveals 32 live instances.
//
// Run with:
//
//	go run ./examples/lusearch
package main

import (
	"fmt"

	"gcassert"
	"gcassert/internal/bench/workloads"
)

func main() {
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      16 << 20,
		Infrastructure: true,
		Reporter:       rep,
	})

	// Build the workload with its assertion: at most one IndexSearcher.
	run, searcherType := workloads.NewLusearch(vm, true)
	run(0)
	vm.Collect()

	live, _ := vm.LiveInstances(searcherType)
	fmt.Printf("IndexSearcher instances live at GC: %d (Lucene docs recommend 1)\n\n", live)

	for _, v := range rep.ByKind(gcassert.KindInstances) {
		fmt.Println(v.String())
		break
	}
	fmt.Println("fix: share one IndexSearcher across all threads — the library")
	fmt.Println("could itself ship this assert-instances to warn its users.")
}
