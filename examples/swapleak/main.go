// swapleak reproduces the paper's SwapLeak case study (§3.2.3): a program
// from a Sun Developer Network post that runs out of memory because of the
// hidden outer-instance reference held by a non-static inner class.
//
// SObject has an inner class Rep; in Java, every Rep instance carries a
// hidden reference to the SObject that created it ("this$0" — modeled here
// as an explicit "outer" field). The program swaps the Rep fields of array
// elements with freshly allocated SObjects and expects the fresh SObjects to
// be reclaimed — but each swapped-in Rep still pins the SObject that created
// it. assert-dead shows exactly that path:
//
//	SArray -> [LSObject -> SObject -> SObject$Rep -> SObject
//
// Run with:
//
//	go run ./examples/swapleak
package main

import (
	"fmt"

	"gcassert"
)

func main() {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      8 << 20,
		Infrastructure: true,
	})
	rep := &gcassert.CollectingReporter{}
	vm.Engine().SetReporter(rep)

	sobject := vm.Define("SObject",
		gcassert.Field{Name: "rep", Ref: true},
	)
	srep := vm.Define("SObject$Rep",
		gcassert.Field{Name: "outer", Ref: true}, // the hidden this$0
		gcassert.Field{Name: "data", Ref: true},
	)
	fRep := vm.FieldIndex(sobject, "rep")
	fOuter := vm.FieldIndex(srep, "outer")

	th := vm.NewThread("main")
	fr := th.Push(2)

	// newSObject models `new SObject()`: the constructor allocates a Rep
	// whose hidden outer reference points back at the new SObject.
	newSObject := func() gcassert.Ref {
		o := th.New(sobject)
		fr.Set(1, o)
		r := th.New(srep)
		vm.SetRef(o, fRep, r)
		vm.SetRef(r, fOuter, o)
		fr.Set(1, gcassert.Nil)
		return o
	}

	// The main loop: an array of SObjects...
	const n = 64
	arr := th.NewArray(gcassert.TRefArray, n)
	fr.Set(0, arr)
	for i := 0; i < n; i++ {
		vm.SetRefAt(arr, i, newSObject())
	}

	// ...then for each element, allocate a fresh SObject, swap Rep fields,
	// and expect the fresh SObject to be collectable afterwards.
	for i := 0; i < n; i++ {
		fresh := newSObject()
		fr.Set(1, fresh)
		old := vm.RefAt(arr, i)
		or, frsh := vm.GetRef(old, fRep), vm.GetRef(fresh, fRep)
		vm.SetRef(old, fRep, frsh)
		vm.SetRef(fresh, fRep, or)
		fr.Set(1, gcassert.Nil)
		// The user's expectation: fresh is garbage now.
		vm.AssertDead(fresh)
	}

	vm.Collect()

	vs := rep.ByKind(gcassert.KindDead)
	fmt.Printf("swapped %d fresh SObjects; %d are still reachable\n\n", n, len(vs))
	if len(vs) > 0 {
		fmt.Println("the paper's warning, reproduced:")
		fmt.Println(vs[0].String())
		fmt.Println("the hidden Rep.outer reference explains the leak: the Rep")
		fmt.Println("swapped into the array still pins the SObject that created it.")
	}
}
