// minivm runs a guest MJ program — a small order-processing system with the
// paper's Customer.lastOrder bug — on the managed runtime, showing that GC
// assertions work for programs written in a guest language, the way the
// paper instruments Java programs. The assertion intrinsics compile to
// bytecodes that register with the collector.
//
// Run with:
//
//	go run ./examples/minivm
//
// (The same program can be put in a .mj file and run with cmd/mjrun.)
package main

import (
	"fmt"
	"os"
	"strings"

	"gcassert"
	"gcassert/internal/minivm"
)

// program is a miniature order-processing system: orders are stored in a
// table and destroyed after processing, but Customer.lastOrder is not
// cleared — the SPECjbb bug, in 40 lines of MJ.
const program = `
class Customer {
  Order lastOrder;
  int id;
}

class Order {
  Customer customer;
  int id;
}

class Table {
  Order[] slots;
  int n;
  void init(int cap) { slots = new Order[cap]; }
  void add(Order o)  { slots[n] = o; n = n + 1; }
  Order removeLast() {
    n = n - 1;
    Order o = slots[n];
    slots[n] = null;
    return o;
  }
}

class Main {
  void main() {
    Customer cust = new Customer();
    Table table = new Table();
    table.init(16);

    int round = 0;
    while (round < 5) {
      // Place an order.
      Order o = new Order();
      o.id = round;
      o.customer = cust;
      table.add(o);
      cust.lastOrder = o;        // the reference nobody clears...
      assertOwnedBy(table, o);

      // Process and destroy it.
      Order done = table.removeLast();
      done.id = 0 - done.id;
      // BUG: done.customer.lastOrder is not cleared here.
      assertDead(done);          // ...so this fails at the next GC
      o = null;
      done = null;
      gc();
      round = round + 1;
    }
    print(round);
  }
}
`

func main() {
	fmt.Println("running guest MJ program with seeded Customer.lastOrder bug...")
	res, err := minivm.CompileAndRun(program, minivm.RunOptions{
		HeapBytes: 8 << 20,
		Out:       os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	vs := res.Violations.ByKind(gcassert.KindDead)
	fmt.Printf("\nassert-dead violations: %d (one per destroyed order)\n", len(vs))
	if len(vs) > 0 {
		fmt.Println("\nfirst report — the path pinpoints Customer.lastOrder:")
		fmt.Println(vs[0].String())
	}

	fmt.Println("fix: clear customer.lastOrder when destroying the order —")
	fmt.Println("rerunning with the repair applied...")

	repaired := strings.Replace(program,
		"// BUG: done.customer.lastOrder is not cleared here.",
		"done.customer.lastOrder = null;", 1)
	res2, err := minivm.CompileAndRun(repaired, minivm.RunOptions{HeapBytes: 8 << 20, Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("violations after repair: %d\n", res2.Violations.Len())
}
