// jbbleak reproduces the paper's SPECjbb2000 case study (§3.2.1) on the
// mini pseudojbb workload, demonstrating all three findings:
//
//  1. assert-dead on destroyed Orders reveals that Customer.lastOrder keeps
//     them reachable (the path runs through a Customer);
//  2. assert-dead on the destroyed Company reveals the oldCompany drag;
//  3. the known orderTable leak (orders never removed from the B-tree)
//     produces the paper's Figure 1 path: Company -> Warehouse -> District
//     -> longBTree -> longBTreeNode -> Order.
//
// After each finding the corresponding repair is applied and the assertions
// go quiet.
//
// Run with:
//
//	go run ./examples/jbbleak
package main

import (
	"fmt"
	"strings"

	"gcassert"
	"gcassert/internal/bench/jbb"
	"gcassert/internal/rt"
)

// runScenario executes the workload with the given bugs seeded and reports
// what the assertions found.
func runScenario(title string, mutate func(*jbb.Config)) *gcassert.CollectingReporter {
	fmt.Printf("=== %s ===\n", title)
	rep := &gcassert.CollectingReporter{}
	// The heap is sized tightly (like the paper's 2x-minimum methodology) so
	// collections — and therefore assertion checks — happen while the
	// transaction loop is running.
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      6 << 20,
		Infrastructure: true,
		Reporter:       rep,
	})
	cfg := jbb.DefaultConfig()
	cfg.Asserts = true
	cfg.Transactions = 20000
	mutate(&cfg)
	j := jbb.New(vm, cfg)
	// A real leak eventually exhausts the heap; the assertions will have
	// reported it long before that, so survive the OOM and show what the
	// collector found.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if oom, ok := r.(*rt.OOMError); ok {
					fmt.Printf("(heap exhausted by the leak, as expected: %v)\n", oom)
					return
				}
				panic(r)
			}
		}()
		for i := 0; i < 3; i++ {
			j.RunIteration(i)
		}
		vm.Collect()
	}()

	byKind := map[gcassert.Kind]int{}
	for _, v := range rep.Violations() {
		byKind[v.Kind]++
	}
	if len(byKind) == 0 {
		fmt.Println("no violations: the program is clean")
	}
	for k, n := range byKind {
		fmt.Printf("%-18s %d violations\n", k, n)
	}
	// Show one representative full-path report, like the paper's Figure 1.
	for _, v := range rep.Violations() {
		if len(v.Path) >= 2 {
			fmt.Println("\nexample report:")
			fmt.Println(indent(v.String()))
			break
		}
	}
	fmt.Println()
	return rep
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

func main() {
	// Finding 1: destroyed Orders still reachable from Customer.lastOrder.
	runScenario("bug: Customer.lastOrder not cleared on Order.destroy()",
		func(c *jbb.Config) { c.LeakLastOrder = true })

	// Finding 2: the oldCompany local drags the previous Company.
	runScenario("bug: oldCompany local not nulled after Company.destroy()",
		func(c *jbb.Config) { c.DragOldCompany = true })

	// Finding 3: the known SPECjbb leak — orders never leave the orderTable.
	// The violation paths run Company -> ... -> longBTree -> longBTreeNode
	// -> Order, the paper's Figure 1.
	// Instrumented exactly as the paper did for Figure 1: assert-dead only,
	// so the violation path starts at the Company root.
	rep := runScenario("bug: DeliveryTransaction never removes Orders from the orderTable",
		func(c *jbb.Config) { c.LeakOrderTable = true; c.DisableOwnedBy = true })
	for _, v := range rep.ByKind(gcassert.KindDead) {
		var types []string
		for _, s := range v.Path {
			types = append(types, s.TypeName)
		}
		path := strings.Join(types, " -> ")
		if strings.Contains(path, "longBTreeNode") {
			fmt.Println("Figure 1 path reproduced:")
			fmt.Println(indent(path))
			break
		}
	}
	fmt.Println()

	// The repaired program: everything passes.
	runScenario("repaired program", func(c *jbb.Config) {})
}
