// Package gcassert is a Go implementation of GC assertions — the system
// interface of Aftandilian & Guyer, "GC Assertions: Using the Garbage
// Collector to Check Heap Properties" (PLDI 2009) — together with the
// managed runtime it needs: a typed heap, a stop-the-world mark-sweep
// collector with path-reconstructing tracing, mutator threads, and an
// optional sticky-mark-bit generational mode.
//
// Programmers allocate objects on the managed heap and register assertions
// about them; the garbage collector checks every registered assertion during
// its normal tracing pass, at very low cost, and reports each violation with
// the complete path through the heap from a root to the offending object.
//
// The five assertion forms of the paper are provided:
//
//   - Runtime.AssertDead(p): p must be unreachable at the next collection.
//   - Thread.StartRegion / Thread.AssertAllDead: everything allocated in the
//     bracket must be dead at the next collection (region memory-stability).
//   - Runtime.AssertInstances(T, n): at most n instances of T are live at
//     each collection.
//   - Runtime.AssertUnshared(p): p has at most one incoming pointer.
//   - Runtime.AssertOwnedBy(owner, p): p must not outlive reachability
//     through owner.
//
// A minimal session:
//
//	vm := gcassert.New(gcassert.Options{Infrastructure: true})
//	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
//	th := vm.NewThread("main")
//	fr := th.Push(1)
//	a := th.New(node)
//	fr.Set(0, a)
//	vm.AssertDead(a) // but it is still referenced by fr...
//	vm.Collect()     // ...so the collector reports the retaining path.
//
// See the examples directory for complete programs, and DESIGN.md /
// EXPERIMENTS.md for how the paper's evaluation is reproduced.
package gcassert
