package gcassert_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"gcassert"
)

// TestConcurrentRuntimesShareNothing is the instance-scoping audit as a
// test: two runtimes running concurrently (each on its own goroutine, per
// the single-goroutine discipline) must never observe each other's GC
// events, violations, metrics, or heap state. internal/telemetry and
// internal/rt deliberately hold no package-level mutable state — every
// tracer, registry, ring, and histogram hangs off its runtime — and this
// test, run under -race in CI, is what keeps that true as the packages
// grow: any future global (a shared ring, a default registry, a process-
// wide counter) either trips the race detector or crosses one of the
// assertions below.
func TestConcurrentRuntimesShareNothing(t *testing.T) {
	const cycles = 25

	type world struct {
		vm    *gcassert.Runtime
		viols *gcassert.CollectingReporter
	}
	mk := func() *world {
		w := &world{viols: &gcassert.CollectingReporter{}}
		w.vm = gcassert.New(gcassert.Options{
			HeapBytes:       1 << 20,
			Infrastructure:  true,
			Reporter:        w.viols,
			Telemetry:       true,
			CostAttribution: true,
		})
		return w
	}
	noisy, quiet := mk(), mk()

	var wg sync.WaitGroup
	run := func(w *world, violate bool) {
		defer wg.Done()
		node := w.vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
		th := w.vm.NewThread("churn")
		for i := 0; i < cycles; i++ {
			fr := th.Push(2)
			head := th.New(node)
			fr.Set(0, head)
			for j := 0; j < 64; j++ {
				n := th.New(node)
				w.vm.SetRef(n, 0, head)
				head = n
				fr.Set(0, head)
			}
			if violate {
				// head stays rooted by the frame: assert-dead must trip.
				w.vm.AssertDead(head)
			}
			w.vm.Collect()
			th.Pop()
		}
	}
	wg.Add(2)
	go run(noisy, true)
	go run(quiet, false)
	wg.Wait()

	// Violations stay with the runtime that caused them.
	if got := len(noisy.viols.Violations()); got != cycles {
		t.Errorf("noisy runtime reported %d violations, want %d", got, cycles)
	}
	if got := len(quiet.viols.Violations()); got != 0 {
		t.Errorf("quiet runtime observed %d violations from its neighbor", got)
	}
	if _, total := quiet.vm.Telemetry().Violations(); total != 0 {
		t.Errorf("quiet runtime's telemetry logged %d violations", total)
	}
	if _, total := noisy.vm.Telemetry().Violations(); total == 0 {
		t.Errorf("noisy runtime's telemetry logged nothing")
	}

	// Each tracer's event trace covers exactly its own collections.
	for name, w := range map[string]*world{"noisy": noisy, "quiet": quiet} {
		evs := w.vm.Telemetry().Events()
		if got, want := len(evs), int(w.vm.GCStats().Collections); got != want {
			t.Errorf("%s: %d traced events, %d collections", name, got, want)
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i) {
				t.Errorf("%s: event %d has seq %d — foreign events interleaved", name, i, ev.Seq)
			}
		}
	}

	// Metrics registries are per-runtime: the quiet runtime's /metrics must
	// carry zero violations while the noisy one counts all of its own.
	var noisyM, quietM strings.Builder
	noisy.vm.Telemetry().WriteMetrics(&noisyM)
	quiet.vm.Telemetry().WriteMetrics(&quietM)
	if want := fmt.Sprintf("gcassert_violations_logged_total %d", cycles); !strings.Contains(noisyM.String(), want) {
		t.Errorf("noisy metrics missing %q", want)
	}
	if !strings.Contains(quietM.String(), "gcassert_violations_logged_total 0") {
		t.Errorf("quiet metrics counted foreign violations:\n%s", quietM.String())
	}
}
