package gcassert_test

import (
	"fmt"
	"os"

	"gcassert"
)

// The smallest complete use of assert-dead: unlink an object, assert its
// death, and let the collector verify — then watch a stale reference get
// reported with the full retaining path.
func ExampleRuntime_AssertDead() {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		LogWriter:      os.Stdout,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(2)

	head := th.New(node)
	fr.Set(0, head)
	tail := th.New(node)
	vm.SetRef(head, 0, tail)

	vm.SetRef(head, 0, gcassert.Nil) // unlink...
	fr.Set(1, tail)                  // ...but a stale local remains
	vm.AssertDead(tail)
	vm.Collect()

	// Output:
	// Warning: an object that was asserted dead is reachable.
	// Type: Node
	// Path to object:
	//   root main.locals
	//   Node
}

// assert-instances as a singleton check (the paper's §2.4.1).
func ExampleRuntime_AssertInstances() {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		LogWriter:      os.Stdout,
	})
	cfg := vm.Define("Config")
	th := vm.NewThread("main")
	fr := th.Push(2)

	vm.AssertInstances(cfg, 1)
	fr.Set(0, th.New(cfg))
	vm.Collect() // one instance: silent

	fr.Set(1, th.New(cfg)) // a second "singleton"
	vm.Collect()

	n, _ := vm.LiveInstances(cfg)
	fmt.Println("live:", n)

	// Output:
	// Warning: instance limit exceeded.
	// Type: Config
	// Detail: 2 instances live, limit 1
	//
	// live: 2
}

// Region assertions bracket a block of code and check that everything it
// allocated is dead afterwards (the paper's §2.3.2).
func ExampleThread_StartRegion() {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
	})
	req := vm.Define("Request", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("server")

	th.StartRegion()
	for i := 0; i < 10; i++ {
		th.New(req) // per-request garbage, nothing escapes
	}
	n := th.AssertAllDead()
	fmt.Println("asserted dead:", n)
	vm.Collect()
	fmt.Println("verified reclaimed:", vm.AssertionStats().DeadVerified)

	// Output:
	// asserted dead: 10
	// verified reclaimed: 10
}

// Heap probes answer reachability questions immediately, without waiting
// for a collection (the QVM-style interface of the paper's §4.1).
func ExampleRuntime_PathTo() {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20, Infrastructure: true})
	order := vm.Define("Order")
	cust := vm.Define("Customer", gcassert.Field{Name: "lastOrder", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)

	c := th.New(cust)
	fr.Set(0, c)
	o := th.New(order)
	vm.SetRef(c, 0, o)

	path, root, _ := vm.PathTo(o)
	fmt.Println("root:", root)
	for _, step := range path {
		if step.Field != "" {
			fmt.Println(step.TypeName, "."+step.Field)
		} else {
			fmt.Println(step.TypeName)
		}
	}
	fmt.Println("in-degree:", vm.RetainedBy(o))

	// Output:
	// root: main.locals
	// Customer .lastOrder
	// Order
	// in-degree: 1
}

// The heap profile is the leak hunter's first view: live objects by type.
func ExampleRuntime_WriteHeapProfile() {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20})
	order := vm.Define("Order", gcassert.Field{Name: "lines", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(0)
	for i := 0; i < 100; i++ {
		fr.Add(th.New(order))
	}
	for _, p := range vm.HeapProfile() {
		fmt.Println(p.TypeName, p.Objects)
	}
	// Output:
	// Order 100
}
