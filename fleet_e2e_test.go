package gcassert_test

// Fleet forensics end to end: three in-process gcassert instances export
// census envelopes to one collector; two replicas run the identical steady
// workload (their snapshots must dedupe by content hash), the third leaks.
// The cross-instance diff must rank the leaked type first and attribute it
// to exactly the leaking replica.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcassert"
	"gcassert/internal/fleet"
)

// runFleetReplica runs one instance of the guest workload against the
// collector at url. Every replica defines the same types (so registry refs
// match) and holds a small steady cache; the leaky replica also grows the
// cache every iteration and ends by tripping an assertion, which ships a
// flight bundle with the violation's root path.
func runFleetReplica(t *testing.T, url, id string, leak bool) {
	t.Helper()
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      8 << 20,
		Infrastructure: true,
		Introspection:  true,
		FlightRecorder: true,
		InstanceID:     id,
		FleetURL:       url,
	})
	cache := vm.Define("app/Cache", gcassert.Field{Name: "next", Ref: true})
	node := vm.Define("app/Node", gcassert.Field{Name: "next", Ref: true})
	cacheNext := vm.FieldIndex(cache, "next")
	nodeNext := vm.FieldIndex(node, "next")

	th := vm.NewThread("main")
	fr := th.Push(2)
	head := gcassert.Nil
	grow := func(n int) {
		for i := 0; i < n; i++ {
			c := th.New(cache)
			vm.SetRef(c, cacheNext, head)
			head = c
		}
		fr.Set(0, head)
	}
	grow(8) // the steady retained cache, identical on every replica

	for iter := 0; iter < 6; iter++ {
		if leak {
			grow(16)
		}
		// Transient churn, identical on every replica: allocated, linked,
		// dropped before the collection.
		g := gcassert.Nil
		for i := 0; i < 32; i++ {
			n := th.New(node)
			vm.SetRef(n, nodeNext, g)
			g = n
			fr.Set(1, g)
		}
		fr.Set(1, gcassert.Nil)
		vm.Collect()
	}
	if leak {
		// The leaky replica trips an assertion: head is plainly reachable,
		// so this violation ships a flight bundle whose root path the fleet
		// diff surfaces as the suspect's sample path.
		vm.AssertDead(head)
		vm.Collect()
	}
	vm.CloseFleet() // final drain: everything queued is on the collector now
}

func TestFleetRoundTrip(t *testing.T) {
	store, err := fleet.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fleet.NewServer(store).Handler())
	defer ts.Close()

	runFleetReplica(t, ts.URL, "replica-a", false)
	runFleetReplica(t, ts.URL, "replica-b", false)
	runFleetReplica(t, ts.URL, "replica-c", true)

	// The two steady replicas ran byte-identical workloads: their census
	// snapshots must have deduplicated against each other.
	var stats struct {
		fleet.StoreStats
		DedupeRatio float64 `json:"dedupe_ratio"`
	}
	fetchFleetJSON(t, ts.URL+"/fleet/stats", &stats)
	if stats.Ingested == 0 || stats.Unique == 0 {
		t.Fatalf("collector saw nothing: %+v", stats)
	}
	if stats.DedupeRatio <= 0 {
		t.Errorf("identical steady replicas did not dedupe: %+v", stats)
	}
	if stats.Instances != 3 {
		t.Errorf("store instances = %d, want 3", stats.Instances)
	}

	var doc fleet.LeaksDocument
	fetchFleetJSON(t, ts.URL+"/fleet/leaks?top=5", &doc)
	if doc.Instances != 3 {
		t.Errorf("leaks document instances = %d, want 3", doc.Instances)
	}
	if len(doc.Suspects) == 0 {
		t.Fatal("fleet diff found no suspects")
	}
	top := doc.Suspects[0]
	if top.TypeName != "app/Cache" {
		t.Fatalf("top suspect = %q, want app/Cache (all: %s)", top.TypeName, suspectNames(doc))
	}
	if top.InstancesReporting != 3 {
		t.Errorf("suspect reported by %d instances, want 3", top.InstancesReporting)
	}
	if top.InstancesGrowing != 1 {
		t.Errorf("suspect growing on %d instances, want 1", top.InstancesGrowing)
	}
	growing := ""
	for _, it := range top.PerInstance {
		if it.Growing {
			growing = it.InstanceID
		}
	}
	if growing != "replica-c" {
		t.Errorf("growing instance = %q, want replica-c", growing)
	}
	if len(top.SamplePaths) == 0 {
		t.Error("suspect carries no sample root path (violation flight bundle not ingested?)")
	}

	// The transient churn type must not outrank the leak (it may appear with
	// score 0 filtered out, or not at all).
	for _, s := range doc.Suspects[1:] {
		if s.TypeName == "app/Node" && s.Score >= top.Score {
			t.Errorf("churn type app/Node outranks the leak: %+v", s)
		}
	}
}

func fetchFleetJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

func suspectNames(doc fleet.LeaksDocument) string {
	var names []string
	for _, s := range doc.Suspects {
		names = append(names, fmt.Sprintf("%s(%.1f)", s.TypeName, s.Score))
	}
	return strings.Join(names, ", ")
}
