package gcassert

import (
	"io"

	"gcassert/internal/collector"
	"gcassert/internal/heapdump"
)

// Heap introspection: the observability counterpart to assertions. Where an
// assertion checks a property the programmer already suspects, introspection
// answers the open-ended question "what is my heap doing?" — a per-type
// census taken during every full collection's mark phase, snapshot diffing
// that ranks leak suspects Cork-style by per-type growth across collections,
// and on-demand dominator/retained-size analysis. Enable it with
// Options.Introspection; the census is then one extra callback per marked
// object, riding the same trace the paper piggybacks assertions on.

// Re-exported introspection types (aliases, no conversion needed).
type (
	// CensusSnapshot is the per-type census of one collection.
	CensusSnapshot = heapdump.Snapshot
	// TypeCensus is one type's row within a CensusSnapshot.
	TypeCensus = heapdump.TypeCensus
	// LeakSuspect is one type ranked by its live-volume growth across
	// recent collections.
	LeakSuspect = heapdump.Suspect
	// DominatorTree is the dominator tree of a heap graph capture, with
	// per-object retained sizes.
	DominatorTree = heapdump.DomTree
	// Retainer is one entry of DominatorTree.TopRetainers.
	Retainer = heapdump.Retainer
	// TypeRetained is one entry of DominatorTree.TypeRetainers.
	TypeRetained = heapdump.TypeRetained
	// HeapGraph is an on-demand capture of the reachable object graph.
	HeapGraph = collector.Graph
)

// mustCensus returns the census or panics with a helpful message.
func (r *Runtime) mustCensus(op string) *heapdump.Census {
	c := r.Census()
	if c == nil {
		panic("gcassert: " + op + " requires Options.Introspection")
	}
	return c
}

// CensusSnapshots returns the retained per-GC census snapshots, oldest
// first. Safe to call from other goroutines while the workload runs.
func (r *Runtime) CensusSnapshots() []CensusSnapshot {
	return r.mustCensus("CensusSnapshots").Snapshots()
}

// LatestCensus returns the most recent census snapshot, if any collection
// has happened yet.
func (r *Runtime) LatestCensus() (CensusSnapshot, bool) {
	return r.mustCensus("LatestCensus").Latest()
}

// WriteCensusJSON writes the last n census snapshots (n <= 0: all retained)
// as JSON — the same document /debug/gcassert/census serves.
func (r *Runtime) WriteCensusJSON(w io.Writer, n int) error {
	return r.mustCensus("WriteCensusJSON").WriteJSON(w, n)
}

// WriteLeaksJSON ranks leak suspects over the last `window` snapshots
// (0 = all retained) and writes the top `top` as JSON — the same document
// /debug/gcassert/leaks serves.
func (r *Runtime) WriteLeaksJSON(w io.Writer, window, top int) error {
	return r.mustCensus("WriteLeaksJSON").WriteSuspectsJSON(w, window, top)
}

// LeakReport is a LeakSuspect augmented with a sampled instance and the
// root-to-object path keeping it alive — the paper's violation-report form
// applied to a leak candidate, so the report names not just *what* grows but
// *why it is still reachable*.
type LeakReport struct {
	LeakSuspect
	// Sample is a currently-live instance of the suspect type (Nil when no
	// reachable instance was found, e.g. the type died out after ranking).
	Sample Ref `json:"sample"`
	// Root and Path locate Sample from the root set, like Violation.Path.
	Root string     `json:"root,omitempty"`
	Path []PathStep `json:"path,omitempty"`
}

// LeakSuspects diffs the last `window` census snapshots (0 = all retained),
// ranks the top growing types, and augments each with a sampled reachable
// instance and its root path. The path sampling walks the heap (a probe), so
// unlike the raw census reads this must run while the runtime is quiescent.
func (r *Runtime) LeakSuspects(window, top int) []LeakReport {
	suspects := r.mustCensus("LeakSuspects").Suspects(window, top)
	reports := make([]LeakReport, 0, len(suspects))
	for _, s := range suspects {
		rep := LeakReport{LeakSuspect: s}
		rep.Sample, rep.Path, rep.Root = r.samplePath(s.Type)
		reports = append(reports, rep)
	}
	return reports
}

// samplePath finds a reachable instance of t and its root path. It tries a
// bounded number of instances: objects allocated since the last collection
// may be unreachable already, and one dead sample must not lose the report.
func (r *Runtime) samplePath(t TypeID) (sample Ref, path []PathStep, root string) {
	const maxTries = 16
	space := r.Space()
	tries := 0
	space.ForEachObject(func(a Ref) bool {
		if space.TypeOf(a) != t {
			return true
		}
		tries++
		if p, rd, ok := r.PathTo(a); ok {
			sample, path, root = a, p, rd
			return false
		}
		return tries < maxTries
	})
	return sample, path, root
}

// CaptureGraph snapshots the reachable object graph right now (a full heap
// walk; quiescent callers only). The capture feeds Dominators and can be
// reused across several analyses of the same moment.
func (r *Runtime) CaptureGraph() *HeapGraph {
	return r.Collector().CaptureGraph()
}

// Dominators captures the reachable graph and computes its dominator tree
// with retained sizes. Cost is a full heap walk plus a few linear passes —
// the deliberate on-demand counterpart to the per-GC census.
func (r *Runtime) Dominators() *DominatorTree {
	g := r.CaptureGraph()
	return heapdump.Dominators(g, r.Space())
}
