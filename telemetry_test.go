package gcassert_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gcassert"
)

// churnWithLeak runs a list-building workload on vm with one asserted-dead
// object kept live, forcing several alloc-failure collections plus a final
// forced one.
func churnWithLeak(t *testing.T, vm *gcassert.Runtime) {
	t.Helper()
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(2)
	leak := th.New(node)
	fr.Set(0, leak)
	vm.AssertDead(leak)
	for round := 0; round < 6; round++ {
		head := gcassert.Nil
		for i := 0; i < 20_000; i++ {
			n := th.New(node)
			vm.SetRef(n, 0, head)
			head = n
			fr.Set(1, head)
		}
		fr.Set(1, gcassert.Nil)
	}
	vm.Collect()
	if st := vm.GCStats(); st.Collections < 2 {
		t.Fatalf("workload drove only %d collections; need ≥2", st.Collections)
	}
}

// TestTelemetryEndToEnd drives a real workload and checks the acceptance
// criterion from the issue: per-phase sums over the event stream must agree
// with GCStats within 1%.
func TestTelemetryEndToEnd(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Infrastructure: true,
		Telemetry:      true,
	})
	churnWithLeak(t, vm)

	tel := vm.Telemetry()
	if tel == nil {
		t.Fatal("Telemetry() returned nil with Options.Telemetry set")
	}
	events := tel.Events()
	st := vm.GCStats()
	if uint64(len(events)) != st.Collections {
		t.Fatalf("%d events, %d collections", len(events), st.Collections)
	}

	var own, mark, sweep, total int64
	for i := range events {
		e := &events[i]
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Errorf("non-monotonic Seq at %d", i)
		}
		own += e.PhaseNs("ownership")
		mark += e.PhaseNs("mark")
		sweep += e.PhaseNs("sweep")
		total += e.TotalNs
	}
	within1pct := func(name string, evNs int64, stat int64) {
		if stat == 0 && evNs == 0 {
			return
		}
		if dev := math.Abs(float64(evNs)/float64(stat) - 1); dev > 0.01 {
			t.Errorf("%s: event stream %dns vs GCStats %dns (%.2f%% off)", name, evNs, stat, 100*dev)
		}
	}
	within1pct("ownership", own, int64(st.OwnershipTime))
	within1pct("mark", mark, int64(st.MarkTime))
	within1pct("sweep", sweep, int64(st.SweepTime))
	within1pct("total", total, int64(st.TotalGCTime))

	if h := tel.PauseHistogram(); h.Count() != uint64(st.Collections) {
		t.Errorf("pause histogram count = %d, want %d", h.Count(), st.Collections)
	}

	// The forced Collect and the alloc-failure collections are both labeled.
	var sawForced, sawAlloc bool
	for i := range events {
		switch gcassert.GCReason(events[i].Reason) {
		case gcassert.ReasonForced:
			sawForced = true
		case gcassert.ReasonAllocFailure:
			sawAlloc = true
		}
	}
	if !sawForced || !sawAlloc {
		t.Errorf("reasons: forced=%v alloc-failure=%v", sawForced, sawAlloc)
	}

	// Assertion activity reached the per-kind counters and the violation log.
	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		"gcassert_gc_collections_total{reason=\"forced\"} 1",
		"gcassert_gc_pause_seconds_bucket",
		"gcassert_assert_checks_total{kind=\"assert-dead\"}",
		"gcassert_assert_violations_total{kind=\"assert-dead\"}",
		"gcassert_alloc_objects_total",
		"gcassert_heap_live_objects",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	reports, totalViols := tel.Violations()
	if totalViols == 0 || len(reports) == 0 {
		t.Errorf("violation log empty: %d logged, %d retained", totalViols, len(reports))
	} else if !strings.Contains(reports[0], "asserted dead") {
		t.Errorf("violation report = %q", reports[0])
	}
}

// TestTelemetryJSONLMatchesEvents re-parses the JSONL export and compares
// it field-by-field against the in-memory events.
func TestTelemetryJSONLMatchesEvents(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 1 << 20, Telemetry: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	for i := 0; i < 30_000; i++ {
		fr.Set(0, th.New(node))
	}
	vm.Collect()

	tel := vm.Telemetry()
	events := tel.Events()
	var sb strings.Builder
	if err := tel.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var n int
	for sc.Scan() {
		var e gcassert.GCEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if n >= len(events) {
			t.Fatalf("more JSONL lines than events (%d)", len(events))
		}
		if e.Seq != events[n].Seq || e.TotalNs != events[n].TotalNs || e.Reason != events[n].Reason {
			t.Errorf("line %d: %+v != %+v", n+1, e, events[n])
		}
		n++
	}
	if n != len(events) {
		t.Errorf("%d JSONL lines, %d events", n, len(events))
	}
}

// TestTelemetryHandler exercises every endpoint of the HTTP surface.
func TestTelemetryHandler(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Infrastructure: true,
		Telemetry:      true,
	})
	churnWithLeak(t, vm)
	srv := httptest.NewServer(vm.TelemetryHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "gcassert_gc_pause_seconds_count") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/debug/gcassert/trace"); code != 200 || !strings.Contains(body, `"seq":0`) {
		t.Errorf("/debug/gcassert/trace: %d\n%s", code, body)
	}
	if code, body := get("/debug/gcassert/trace?format=gctrace"); code != 200 || !strings.HasPrefix(body, "gc 1 @") {
		t.Errorf("gctrace format: %d\n%s", code, body)
	}
	code, body := get("/debug/gcassert/trace?format=chrome")
	if code != 200 {
		t.Fatalf("chrome format: %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil || len(tr.TraceEvents) == 0 {
		t.Errorf("chrome trace invalid (err=%v, %d events)", err, len(tr.TraceEvents))
	}
	if code, _ := get("/debug/gcassert/trace?format=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", code)
	}
	if code, body := get("/debug/gcassert/violations"); code != 200 ||
		!strings.Contains(body, "violations logged") || !strings.Contains(body, "asserted dead") {
		t.Errorf("/debug/gcassert/violations: %d\n%s", code, body)
	}
	// The runtime is quiescent here (workload done), so the heap profile is
	// safe to scrape.
	if code, body := get("/debug/gcassert/heap"); code != 200 || !strings.Contains(body, "Node") {
		t.Errorf("/debug/gcassert/heap: %d\n%s", code, body)
	}
}

// TestTelemetryConcurrentDrain is the issue's race test: a reader goroutine
// drains the event ring and renders metrics while the workload GCs. Run
// under -race this proves the read paths are safe mid-collection.
func TestTelemetryConcurrentDrain(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Infrastructure: true,
		Telemetry:      true,
	})
	tel := vm.Telemetry()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			events := tel.Events()
			for i := 1; i < len(events); i++ {
				if events[i].Seq <= events[i-1].Seq {
					t.Error("non-monotonic snapshot while GCing")
					return
				}
			}
			if err := tel.WriteMetrics(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if err := tel.WriteJSONL(io.Discard); err != nil {
				t.Error(err)
				return
			}
			_ = tel.PauseHistogram().Quantile(0.99)
			_, _ = tel.Violations()
		}
	}()

	churnWithLeak(t, vm)
	close(stop)
	wg.Wait()

	if tel.Ring().Total() == 0 {
		t.Error("no events recorded")
	}
}

// TestChromeTraceWorkerSpansConcurrent: collections marked in parallel must
// surface one Chrome-trace span per mark worker, and scraping the trace
// while collections run must be safe (exercised under -race in CI).
func TestChromeTraceWorkerSpansConcurrent(t *testing.T) {
	const workers = 4
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Infrastructure: true,
		Telemetry:      true,
		Workers:        workers,
	})
	tel := vm.Telemetry()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tel.WriteChromeTrace(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	churnWithLeak(t, vm)
	close(stop)
	wg.Wait()

	var parallelGCs int
	for _, e := range tel.Events() {
		if len(e.PerWorker) > 0 {
			parallelGCs++
			if len(e.PerWorker) != workers {
				t.Errorf("GC %d: %d worker spans, want %d", e.Seq, len(e.PerWorker), workers)
			}
		}
	}
	if parallelGCs == 0 {
		t.Fatal("no collection recorded per-worker mark stats")
	}

	var buf strings.Builder
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, sp := range tr.TraceEvents {
		if sp["cat"] == "gc-mark-worker" {
			seen[sp["name"].(string)] = true
		}
	}
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("mark worker %d", i)
		if !seen[name] {
			t.Errorf("chrome trace has no %q span (saw %v)", name, seen)
		}
	}
}

// TestTelemetryDisabled: without the option there is no tracer and the
// handler refuses to build.
func TestTelemetryDisabled(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 1 << 20})
	if vm.Telemetry() != nil {
		t.Error("Telemetry() non-nil without Options.Telemetry")
	}
	defer func() {
		if recover() == nil {
			t.Error("TelemetryHandler did not panic without telemetry")
		}
	}()
	vm.TelemetryHandler()
}
