package gcassert_test

import (
	"strings"
	"testing"

	"gcassert"
)

func TestHeapProfile(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 8 << 20})
	small := vm.Define("Small", gcassert.Field{Name: "x", Ref: false})
	big := vm.Define("Big",
		gcassert.Field{Name: "a", Ref: true}, gcassert.Field{Name: "b", Ref: true},
		gcassert.Field{Name: "c", Ref: false}, gcassert.Field{Name: "d", Ref: false})
	th := vm.NewThread("main")
	fr := th.Push(0)
	for i := 0; i < 10; i++ {
		fr.Add(th.New(small))
	}
	for i := 0; i < 5; i++ {
		fr.Add(th.New(big))
	}
	fr.Add(th.NewArray(gcassert.TWordArray, 1000))

	prof := vm.HeapProfile()
	got := map[string]gcassert.TypeProfile{}
	for _, p := range prof {
		got[p.TypeName] = p
	}
	if p := got["Small"]; p.Objects != 10 || p.Words != 10*2 {
		t.Errorf("Small profile = %+v", p)
	}
	if p := got["Big"]; p.Objects != 5 || p.Words != 5*5 {
		t.Errorf("Big profile = %+v", p)
	}
	if p := got["[word"]; p.Objects != 1 || p.Words != 1001 {
		t.Errorf("word-array profile = %+v", p)
	}
	// Sorted by words, descending: the big array first.
	if prof[0].TypeName != "[word" {
		t.Errorf("profile[0] = %+v", prof[0])
	}

	var b strings.Builder
	if err := vm.WriteHeapProfile(&b, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[word") || !strings.Contains(out, "total") {
		t.Errorf("profile table:\n%s", out)
	}
	// top=2 limits the rows: Small must be cut.
	if strings.Contains(out, "Small") {
		t.Errorf("top limit ignored:\n%s", out)
	}
}
