package gcassert_test

// Tenant identity composition end to end: two runtimes hosted in one
// process share the host's configured InstanceID but carry distinct Tenant
// names (the gcassertd arrangement). Their fleet exports must reach the
// collector as two distinct instances — "host/tenant" composed IDs, not a
// collision — while identical workload content still dedupes by hash,
// because the instance stamp travels alongside the content hash, never
// inside it.

import (
	"net/http/httptest"
	"slices"
	"testing"

	"gcassert"
	"gcassert/internal/fleet"
)

// runTenantReplica runs one steady workload on a runtime configured as a
// named tenant of the shared host instance ID.
func runTenantReplica(t *testing.T, url, host, tenant string) {
	t.Helper()
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      8 << 20,
		Infrastructure: true,
		Introspection:  true,
		InstanceID:     host,
		Tenant:         tenant,
		FleetURL:       url,
	})
	if got, want := vm.Identity().InstanceID, host+"/"+tenant; got != want {
		t.Fatalf("composed instance ID = %q, want %q", got, want)
	}
	cache := vm.Define("app/Cache", gcassert.Field{Name: "next", Ref: true})
	next := vm.FieldIndex(cache, "next")
	th := vm.NewThread("main")
	fr := th.Push(1)
	head := gcassert.Nil
	for i := 0; i < 8; i++ {
		c := th.New(cache)
		vm.SetRef(c, next, head)
		head = c
		fr.Set(0, head)
	}
	for iter := 0; iter < 3; iter++ {
		vm.Collect()
	}
	vm.CloseFleet()
}

func TestTenantInstanceIDsComposeThroughFleetDedupe(t *testing.T) {
	store, err := fleet.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fleet.NewServer(store).Handler())
	defer ts.Close()

	// Both tenants configure the same InstanceID — before Tenant existed
	// these would have collided into one fleet instance.
	runTenantReplica(t, ts.URL, "host-1", "tenant-a")
	runTenantReplica(t, ts.URL, "host-1", "tenant-b")

	var ids []string
	fetchFleetJSON(t, ts.URL+"/fleet/instances", &ids)
	for _, want := range []string{"host-1/tenant-a", "host-1/tenant-b"} {
		if !slices.Contains(ids, want) {
			t.Errorf("collector instances = %v, missing %q", ids, want)
		}
	}
	if len(ids) != 2 {
		t.Errorf("collector saw %d instances (%v), want 2", len(ids), ids)
	}

	// Identical content from distinct tenants must still dedupe: the tenant
	// suffix lives in the identity stamp, which the canonical hash strips.
	var stats struct {
		fleet.StoreStats
		DedupeRatio float64 `json:"dedupe_ratio"`
	}
	fetchFleetJSON(t, ts.URL+"/fleet/stats", &stats)
	if stats.Ingested == 0 {
		t.Fatalf("collector saw nothing: %+v", stats)
	}
	if stats.DedupeRatio <= 0 {
		t.Errorf("identical tenant workloads did not dedupe: %+v", stats)
	}

	// And the per-artifact metadata must attribute the shared artifact to
	// both composed IDs, so cross-tenant leak diffing can tell them apart.
	sawBoth := false
	for _, m := range store.List() {
		if slices.Contains(m.Instances, "host-1/tenant-a") &&
			slices.Contains(m.Instances, "host-1/tenant-b") {
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Error("no deduped artifact lists both composed tenant IDs as sources")
	}
}
