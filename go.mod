module gcassert

go 1.22
