package gcassert_test

// Benchmark harness regenerating the paper's evaluation (one benchmark per
// figure, plus the ablations listed in DESIGN.md). These are testing.B
// views of the same measurements `cmd/gcassert-bench` prints as tables:
//
//	BenchmarkFigure2RunTime       — total & mutator time, Base vs Infrastructure
//	BenchmarkFigure3GCTime        — GC time, Base vs Infrastructure
//	BenchmarkFigure4AssertRunTime — total time with assertions (db, pseudojbb)
//	BenchmarkFigure5AssertGCTime  — GC time with assertions (db, pseudojbb)
//	BenchmarkAblation*            — path tracking, ownee scaling, generational
//
// Every sub-benchmark reports gc-ms/op and mutator-ms/op metrics so the
// figures' ratios can be read directly from `go test -bench`.

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/workloads"
	"gcassert/internal/fleet"
)

// runWorkloadBench measures one workload in one mode under testing.B.
func runWorkloadBench(b *testing.B, w bench.Workload, mode bench.Mode) {
	b.Helper()
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      w.Heap,
		Infrastructure: mode != bench.Base,
	})
	run := w.New(vm, mode == bench.WithAssertions)
	run(0) // warmup iteration, as in the paper's methodology
	gc0 := vm.GCStats().TotalGCTime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(i + 1)
	}
	b.StopTimer()
	gcTime := vm.GCStats().TotalGCTime - gc0
	gcMS := float64(gcTime.Milliseconds()) / float64(b.N)
	b.ReportMetric(gcMS, "gc-ms/op")
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N)-gcMS, "mutator-ms/op")
}

// BenchmarkFigure2RunTime regenerates Figure 2: run-time overhead of the
// assertion infrastructure across the full suite (compare Base vs
// Infrastructure ns/op and mutator-ms/op).
func BenchmarkFigure2RunTime(b *testing.B) {
	for _, w := range workloads.All() {
		for _, mode := range []bench.Mode{bench.Base, bench.Infra} {
			w, mode := w, mode
			b.Run(w.Name+"/"+mode.String(), func(b *testing.B) {
				runWorkloadBench(b, w, mode)
			})
		}
	}
}

// BenchmarkFigure3GCTime regenerates Figure 3: GC-time overhead of the
// infrastructure (compare gc-ms/op between modes). It measures a GC-heavy
// subset so the GC signal dominates.
func BenchmarkFigure3GCTime(b *testing.B) {
	for _, name := range []string{"bloat", "fop", "hsqldb", "xalan", "pmd", "pseudojbb"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []bench.Mode{bench.Base, bench.Infra} {
			w, mode := w, mode
			b.Run(w.Name+"/"+mode.String(), func(b *testing.B) {
				runWorkloadBench(b, w, mode)
			})
		}
	}
}

// BenchmarkFigure4AssertRunTime regenerates Figure 4: total run time of
// _209_db and pseudojbb with their paper instrumentation, vs Base and
// Infrastructure.
func BenchmarkFigure4AssertRunTime(b *testing.B) {
	for _, w := range workloads.Asserting() {
		for _, mode := range []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions} {
			w, mode := w, mode
			b.Run(w.Name+"/"+mode.String(), func(b *testing.B) {
				runWorkloadBench(b, w, mode)
			})
		}
	}
}

// BenchmarkFigure5AssertGCTime regenerates Figure 5: the GC-time view of the
// same runs (read the gc-ms/op metric).
func BenchmarkFigure5AssertGCTime(b *testing.B) {
	for _, w := range workloads.Asserting() {
		for _, mode := range []bench.Mode{bench.Base, bench.WithAssertions} {
			w, mode := w, mode
			b.Run(w.Name+"/"+mode.String(), func(b *testing.B) {
				runWorkloadBench(b, w, mode)
			})
		}
	}
}

// buildList allocates a linked list of n nodes rooted in fr slot 0 and
// returns its head.
func buildList(vm *gcassert.Runtime, th *gcassert.Thread, fr *gcassert.Frame, node gcassert.TypeID, n int) gcassert.Ref {
	var head gcassert.Ref
	for i := 0; i < n; i++ {
		nd := th.New(node)
		vm.SetRef(nd, 0, head)
		head = nd
		fr.Set(0, head)
	}
	return head
}

// BenchmarkAblationPathTracking isolates the infrastructure's main cost: a
// full-heap trace of a fixed 200k-object list, with and without the
// path-tracking worklist discipline (Ablation B in DESIGN.md).
func BenchmarkAblationPathTracking(b *testing.B) {
	for _, infra := range []bool{false, true} {
		name := "Base"
		if infra {
			name = "Infrastructure"
		}
		infra := infra
		b.Run(name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 32 << 20, Infrastructure: infra})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			buildList(vm, th, fr, node, 200_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Collect()
			}
			b.StopTimer()
			st := vm.GCStats()
			b.ReportMetric(float64(st.MarkTime.Nanoseconds())/float64(st.Collections)/1e6, "mark-ms/gc")
		})
	}
}

// BenchmarkAblationOwneeScaling measures the per-GC ownership-phase cost as
// the registered ownee count grows (Ablation C: the paper's n log n
// membership checking).
func BenchmarkAblationOwneeScaling(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 50_000} {
		n := n
		b.Run(fmt.Sprintf("ownees-%d", n), func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20, Infrastructure: true})
			owner := vm.Define("Owner", gcassert.Field{Name: "elems", Ref: true})
			elem := vm.Define("Elem", gcassert.Field{Name: "data", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			o := th.New(owner)
			fr.Set(0, o)
			vm.SetRef(o, 0, th.NewArray(gcassert.TRefArray, n))
			arr := vm.GetRef(o, 0)
			for i := 0; i < n; i++ {
				e := th.New(elem)
				vm.SetRefAt(arr, i, e)
				vm.AssertOwnedBy(o, e)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Collect()
			}
			b.StopTimer()
			st := vm.AssertionStats()
			b.ReportMetric(float64(st.OwneesChecked)/float64(vm.GCStats().Collections), "ownees/gc")
		})
	}
}

// BenchmarkAblationGenerational measures assert-dead detection latency (in
// collections) under the full-heap collector vs the sticky-mark generational
// mode, where assertions are only checked at full collections (Ablation A,
// the paper's §2.2 discussion).
func BenchmarkAblationGenerational(b *testing.B) {
	for _, gen := range []bool{false, true} {
		name := "full-heap"
		if gen {
			name = "generational"
		}
		gen := gen
		b.Run(name, func(b *testing.B) {
			totalGCs := 0.0
			for i := 0; i < b.N; i++ {
				rep := &gcassert.CollectingReporter{}
				vm := gcassert.New(gcassert.Options{
					HeapBytes:      2 << 20,
					Infrastructure: true,
					Reporter:       rep,
					Generational:   gen,
					MinorRatio:     8,
				})
				node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
				th := vm.NewThread("main")
				fr := th.Push(2)
				leak := th.New(node)
				fr.Set(0, leak)
				vm.AssertDead(leak) // never dies: the violation to detect
				gcs0 := vm.GCStats().Collections + vm.MinorGCStats().Collections
				// Churn until the violation is reported.
				for rep.Len() == 0 {
					cfr := th.Push(1)
					buildList(vm, th, cfr, node, 10_000)
					th.Pop()
				}
				gcs := vm.GCStats().Collections + vm.MinorGCStats().Collections
				totalGCs += float64(gcs - gcs0)
			}
			b.ReportMetric(totalGCs/float64(b.N), "gcs-until-detect")
		})
	}
}

// BenchmarkTelemetryOff verifies the acceptance criterion for the
// observability layer: with telemetry disabled (the default), a full-heap
// collection of a fixed 200k-object list shows exactly the collector's
// pre-existing allocation baseline (2 allocs/op: the escaping Collection
// record and the root-scan closure) — the nil Observer check adds nothing
// to markBase/markInfra. Compare against BenchmarkTelemetryOn for the
// enabled-mode cost (one Event plus its phase/kind slices per collection).
func BenchmarkTelemetryOff(b *testing.B) {
	for _, infra := range []bool{false, true} {
		name := "Base"
		if infra {
			name = "Infrastructure"
		}
		infra := infra
		b.Run(name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 32 << 20, Infrastructure: infra})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			buildList(vm, th, fr, node, 200_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Collect()
			}
		})
	}
}

// BenchmarkTelemetryOn is the enabled-mode counterpart of
// BenchmarkTelemetryOff: same collection, telemetry recording every cycle.
func BenchmarkTelemetryOn(b *testing.B) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      32 << 20,
		Infrastructure: true,
		Telemetry:      true,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	buildList(vm, th, fr, node, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Collect()
	}
}

// BenchmarkCensusOff verifies the acceptance criterion for the
// introspection layer: with introspection disabled (the default), a
// full-heap collection of a fixed 200k-object list stays at the collector's
// pre-existing allocation baseline (2 allocs/op: the escaping Collection
// record and the root-scan closure) — the nil OnMark check adds zero
// allocations to the mark hot path. The b.N loop asserts this in-line so
// `go test -bench BenchmarkCensusOff` fails loudly on a regression instead
// of requiring a human to read allocs/op.
func BenchmarkCensusOff(b *testing.B) {
	for _, infra := range []bool{false, true} {
		name := "Base"
		if infra {
			name = "Infrastructure"
		}
		infra := infra
		b.Run(name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 32 << 20, Infrastructure: infra})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			buildList(vm, th, fr, node, 200_000)
			vm.Collect() // settle one-time lazy growth before measuring
			b.ReportAllocs()
			allocs := testing.AllocsPerRun(3, func() { vm.Collect() })
			if allocs > 2 {
				b.Fatalf("disabled-introspection collection allocates %.0f times/op, want <= 2 (baseline)", allocs)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Collect()
			}
		})
	}
}

// BenchmarkProvenanceOff verifies the acceptance criterion for
// allocation-site provenance: with provenance disabled (the default), the
// allocation fast path performs zero Go allocations — the site==0 literal in
// New and the nil-provenance check in the sweep cost nothing — and a
// full-heap collection stays at the collector's pre-existing 2-allocs/op
// baseline. Asserted in-line like BenchmarkCensusOff so `go test -bench
// BenchmarkProvenanceOff` fails loudly on a regression.
func BenchmarkProvenanceOff(b *testing.B) {
	for _, infra := range []bool{false, true} {
		name := "Base"
		if infra {
			name = "Infrastructure"
		}
		infra := infra
		b.Run(name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20, Infrastructure: infra})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			fr.Set(0, th.New(node)) // settle lazy size-class growth
			if allocs := testing.AllocsPerRun(1000, func() {
				fr.Set(0, th.New(node))
			}); allocs != 0 {
				b.Fatalf("provenance-off allocation path allocates %.2f times/op, want 0", allocs)
			}
			fr.Set(0, gcassert.Nil)
			buildList(vm, th, fr, node, 200_000)
			vm.Collect()
			b.ReportAllocs()
			if allocs := testing.AllocsPerRun(3, func() { vm.Collect() }); allocs > 2 {
				b.Fatalf("provenance-off collection allocates %.0f times/op, want <= 2 (baseline)", allocs)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fr.Set(0, th.New(node))
			}
		})
	}
}

// BenchmarkProvenanceOn measures the enabled modes for the overhead table in
// EXPERIMENTS.md: every allocation recorded (exhaustive) versus 1-in-64
// sampling on the same allocation loop as BenchmarkProvenanceOff.
func BenchmarkProvenanceOn(b *testing.B) {
	modes := []struct {
		name, prov string
		sample     int
	}{
		{"Exhaustive", "exhaustive", 0},
		{"Sampled64", "sampled", 64},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{
				HeapBytes: 64 << 20, Infrastructure: true,
				Provenance: m.prov, ProvenanceSample: m.sample,
			})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			site := vm.RegisterAllocSite("bench.go:1: new Node")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fr.Set(0, th.NewAt(node, site))
			}
		})
	}
}

// BenchmarkCensusOn is the enabled-mode counterpart: the same collection
// with the census observing every mark. Compare ns/op against
// BenchmarkCensusOff for the census overhead; the snapshot built at GCEnd
// accounts for the extra allocs/op.
func BenchmarkCensusOn(b *testing.B) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 32 << 20, Introspection: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	buildList(vm, th, fr, node, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Collect()
	}
	b.StopTimer()
	snap, ok := vm.LatestCensus()
	if !ok || snap.TotalObjects != 200_000 {
		b.Fatalf("census snapshot missing or wrong: %+v", snap)
	}
}

// BenchmarkMicroAlloc measures the allocation fast path.
func BenchmarkMicroAlloc(b *testing.B) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Set(0, th.New(node))
		if i%10_000 == 0 {
			fr.Set(0, gcassert.Nil)
		}
	}
}

// BenchmarkMicroAssertDead measures the registration cost of assert-dead
// (one header-bit store, per the paper's zero-metadata design).
func BenchmarkMicroAssertDead(b *testing.B) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	o := th.New(node)
	fr.Set(0, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.AssertDead(o)
	}
}

// BenchmarkMicroAssertOwnedBy measures ownership registration (append +
// map insert; sorting is deferred to GC time).
func BenchmarkMicroAssertOwnedBy(b *testing.B) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20, Infrastructure: true})
	owner := vm.Define("Owner", gcassert.Field{Name: "elems", Ref: true})
	elem := vm.Define("Elem", gcassert.Field{Name: "data", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(2)
	o := th.New(owner)
	fr.Set(0, o)
	const pool = 1 << 16
	vm.SetRef(o, 0, th.NewArray(gcassert.TRefArray, pool))
	arr := vm.GetRef(o, 0)
	for i := 0; i < pool; i++ {
		e := th.New(elem)
		vm.SetRefAt(arr, i, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.AssertOwnedBy(o, vm.RefAt(arr, i%pool))
	}
}

// BenchmarkParallelMark is the parallel-mark worker sweep: the featured
// workloads build a live heap once, then every iteration re-marks the same
// graph at the given width. mark-ms/op isolates the traced phase; compare
// widths to read the speedup (≈1.0 on a single-CPU host — the sweep is
// about scaling headroom, and CI runs it at -benchtime 1x as a smoke test).
func BenchmarkParallelMark(b *testing.B) {
	for _, name := range []string{"pseudojbb", "_209_db"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, width := range []int{1, 2, 4, 8} {
			w, width := w, width
			b.Run(fmt.Sprintf("%s/workers=%d", w.Name, width), func(b *testing.B) {
				vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap})
				run := w.New(vm, false)
				run(0) // build the live heap
				vm.SetMarkWorkers(width)
				vm.Collect() // warm: builds the engine and settles the live set
				var markNs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					col := vm.Collect()
					markNs += col.MarkTime.Nanoseconds()
					if col.Workers != width {
						b.Fatalf("collection ran with %d workers, want %d", col.Workers, width)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(markNs)/1e6/float64(b.N), "mark-ms/op")
			})
		}
	}
}

// BenchmarkAttributionOff verifies the acceptance criterion for the
// cost-attribution layer: with CostAttribution disabled (the default), the
// allocation fast path performs zero Go allocations — the per-thread
// counters sit behind one nil-check — and a full-heap collection stays at
// the collector's pre-existing 2-allocs/op baseline (the cost shards, the
// trigger explainer, and the per-kind timers all hide behind one nil-check
// per phase). Asserted in-line like BenchmarkProvenanceOff so `go test
// -bench BenchmarkAttributionOff` fails loudly on a regression.
func BenchmarkAttributionOff(b *testing.B) {
	for _, infra := range []bool{false, true} {
		name := "Base"
		if infra {
			name = "Infrastructure"
		}
		infra := infra
		b.Run(name, func(b *testing.B) {
			vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20, Infrastructure: infra})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("main")
			fr := th.Push(1)
			fr.Set(0, th.New(node)) // settle lazy size-class growth
			if allocs := testing.AllocsPerRun(1000, func() {
				fr.Set(0, th.New(node))
			}); allocs != 0 {
				b.Fatalf("attribution-off allocation path allocates %.2f times/op, want 0", allocs)
			}
			fr.Set(0, gcassert.Nil)
			buildList(vm, th, fr, node, 200_000)
			vm.Collect()
			b.ReportAllocs()
			if allocs := testing.AllocsPerRun(3, func() { vm.Collect() }); allocs > 2 {
				b.Fatalf("attribution-off collection allocates %.0f times/op, want <= 2 (baseline)", allocs)
			}
			if _, ok := vm.Pressure(); ok {
				b.Fatal("Pressure() reports stats on an attribution-off runtime")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Collect()
			}
		})
	}
}

// BenchmarkAttributionOn is the enabled-mode counterpart for the overhead
// table in EXPERIMENTS.md: the same collection with per-kind cost
// accounting, the trigger explainer, and per-thread pressure counters all
// live. It self-checks the enabled-mode acceptance criterion: every
// collection carries per-kind costs and a non-empty trigger explanation.
func BenchmarkAttributionOn(b *testing.B) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:       64 << 20,
		Infrastructure:  true,
		CostAttribution: true,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	head := buildList(vm, th, fr, node, 200_000)
	vm.AssertUnshared(head)
	vm.Collect()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Collect()
	}
	b.StopTimer()
	col := vm.Collect()
	if len(col.AssertCost) == 0 {
		b.Fatal("attribution-on collection carries no per-kind costs")
	}
	if col.Trigger.Why == "" {
		b.Fatal("attribution-on collection carries no trigger explanation")
	}
}

// BenchmarkFleetExportOff verifies the acceptance criterion for the fleet
// exporter: with FleetURL unset (the default), the exporter does not exist
// and adds zero allocations to the allocation path and nothing beyond the
// collection baseline. Asserted in-line like BenchmarkProvenanceOff so
// `go test -bench BenchmarkFleetExportOff` fails loudly on a regression.
func BenchmarkFleetExportOff(b *testing.B) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 64 << 20, Infrastructure: true})
	node := vm.Define("FNode", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	fr.Set(0, th.New(node)) // settle lazy size-class growth
	if allocs := testing.AllocsPerRun(1000, func() {
		fr.Set(0, th.New(node))
	}); allocs != 0 {
		b.Fatalf("fleet-off allocation path allocates %.2f times/op, want 0", allocs)
	}
	if vm.FleetExporter() != nil {
		b.Fatal("FleetExporter() exists on a fleet-off runtime")
	}
	fr.Set(0, gcassert.Nil)
	buildList(vm, th, fr, node, 200_000)
	vm.Collect()
	b.ReportAllocs()
	if allocs := testing.AllocsPerRun(3, func() { vm.Collect() }); allocs > 2 {
		b.Fatalf("fleet-off collection allocates %.0f times/op, want <= 2 (baseline)", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Collect()
	}
}

// BenchmarkFleetExportOn measures what exporting costs the collection when
// it is on: census introspection plus sealing/enqueueing an envelope every
// FleetEvery collections, shipped to a local collector on the exporter's
// background goroutine. The control sub-benchmark runs the identical
// configuration minus the exporter, so the delta is the export itself (the
// 200k-node list matches BenchmarkFleetExportOff).
func BenchmarkFleetExportOn(b *testing.B) {
	store, err := fleet.OpenStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(fleet.NewServer(store).Handler())
	defer ts.Close()

	bench := func(b *testing.B, url string, every int) {
		vm := gcassert.New(gcassert.Options{
			HeapBytes: 64 << 20, Infrastructure: true, Introspection: true,
			FleetURL: url, FleetEvery: every, InstanceID: "bench",
		})
		node := vm.Define("FNode", gcassert.Field{Name: "next", Ref: true})
		th := vm.NewThread("main")
		fr := th.Push(1)
		buildList(vm, th, fr, node, 200_000)
		vm.Collect()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vm.Collect()
		}
		b.StopTimer()
		vm.CloseFleet()
	}
	b.Run("control-introspection-only", func(b *testing.B) { bench(b, "", 0) })
	b.Run("every=1", func(b *testing.B) { bench(b, ts.URL, 1) })
	b.Run("every=8", func(b *testing.B) { bench(b, ts.URL, 8) })
}
