package gcassert_test

import (
	"strings"
	"testing"

	"gcassert"
)

// newVM builds an infrastructure-mode runtime with a collecting reporter.
func newVM(t *testing.T, opts gcassert.Options) (*gcassert.Runtime, *gcassert.CollectingReporter) {
	t.Helper()
	rep := &gcassert.CollectingReporter{}
	opts.Infrastructure = true
	opts.Reporter = rep
	if opts.HeapBytes == 0 {
		opts.HeapBytes = 8 << 20
	}
	return gcassert.New(opts), rep
}

func TestSmokeAssertDeadViolationAndPath(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	next := vm.FieldIndex(node, "next")

	th := vm.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	b := th.New(node)
	vm.SetRef(a, next, b)
	fr.Set(0, a)

	vm.AssertDead(b) // b is reachable via a.next: must be reported
	vm.Collect()

	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) != 1 {
		t.Fatalf("want 1 assert-dead violation, got %d (%v)", len(vs), rep.Violations())
	}
	v := vs[0]
	if v.Object != b || v.TypeName != "Node" {
		t.Errorf("violation object = %v type %q", v.Object, v.TypeName)
	}
	if len(v.Path) != 2 || v.Path[0].Addr != a || v.Path[1].Addr != b {
		t.Fatalf("path = %+v, want a->b", v.Path)
	}
	if v.Path[0].Field != "next" {
		t.Errorf("path[0].Field = %q, want next", v.Path[0].Field)
	}
	if !strings.Contains(v.String(), "asserted dead") {
		t.Errorf("report text: %s", v.String())
	}
}

func TestSmokeAssertDeadVerified(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	fr.Set(0, a)
	vm.AssertDead(a)
	fr.Set(0, gcassert.Nil) // drop the only reference
	vm.Collect()
	if n := rep.Len(); n != 0 {
		t.Fatalf("want no violations, got %d: %v", n, rep.Violations())
	}
	if st := vm.AssertionStats(); st.DeadVerified != 1 {
		t.Errorf("DeadVerified = %d, want 1", st.DeadVerified)
	}
}

func TestSmokeForceTrue(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{
		Policy: gcassert.Policy{}.With(gcassert.KindDead, gcassert.ReactForce),
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	next := vm.FieldIndex(node, "next")
	th := vm.NewThread("main")
	fr := th.Push(2)
	a := th.New(node)
	b := th.New(node)
	c := th.New(node)
	vm.SetRef(a, next, c)
	vm.SetRef(b, next, c) // two references keep c alive
	fr.Set(0, a)
	fr.Set(1, b)

	vm.AssertDead(c)
	vm.Collect()

	if len(rep.ByKind(gcassert.KindDead)) != 1 {
		t.Fatalf("want 1 violation, got %v", rep.Violations())
	}
	// Both incoming references must have been severed and c reclaimed.
	if got := vm.GetRef(a, next); got != gcassert.Nil {
		t.Errorf("a.next = %v, want nil", got)
	}
	if got := vm.GetRef(b, next); got != gcassert.Nil {
		t.Errorf("b.next = %v, want nil", got)
	}
	if st := vm.AssertionStats(); st.DeadVerified != 1 {
		t.Errorf("DeadVerified = %d, want 1 (c reclaimed this cycle)", st.DeadVerified)
	}
}

func TestSmokeAssertUnshared(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	node := vm.Define("Node", gcassert.Field{Name: "left", Ref: true}, gcassert.Field{Name: "right", Ref: true})
	left, right := vm.FieldIndex(node, "left"), vm.FieldIndex(node, "right")
	th := vm.NewThread("main")
	fr := th.Push(1)
	root := th.New(node)
	child := th.New(node)
	fr.Set(0, root)
	vm.SetRef(root, left, child)
	vm.AssertUnshared(child)
	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("single parent: want no violations, got %v", rep.Violations())
	}
	vm.SetRef(root, right, child) // now the "tree" is a DAG
	vm.Collect()
	vs := rep.ByKind(gcassert.KindUnshared)
	if len(vs) != 1 {
		t.Fatalf("want 1 unshared violation, got %v", rep.Violations())
	}
	if vs[0].Object != child {
		t.Errorf("violation object = %v, want child %v", vs[0].Object, child)
	}
}

func TestSmokeAssertInstances(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	searcher := vm.Define("IndexSearcher")
	th := vm.NewThread("main")
	fr := th.Push(0)
	vm.AssertInstances(searcher, 1)
	for i := 0; i < 32; i++ {
		fr.Add(th.New(searcher))
	}
	vm.Collect()
	vs := rep.ByKind(gcassert.KindInstances)
	if len(vs) != 1 {
		t.Fatalf("want 1 instances violation, got %v", rep.Violations())
	}
	if !strings.Contains(vs[0].Message, "32 instances live, limit 1") {
		t.Errorf("message = %q", vs[0].Message)
	}
	if n, ok := vm.LiveInstances(searcher); !ok || n != 32 {
		t.Errorf("LiveInstances = %d,%v want 32,true", n, ok)
	}
}

func TestSmokeAssertOwnedBy(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	table := vm.Define("Table", gcassert.Field{Name: "slots", Ref: true})
	order := vm.Define("Order", gcassert.Field{Name: "customer", Ref: true})
	cust := vm.Define("Customer", gcassert.Field{Name: "lastOrder", Ref: true})
	slots := vm.FieldIndex(table, "slots")
	lastOrder := vm.FieldIndex(cust, "lastOrder")

	th := vm.NewThread("main")
	fr := th.Push(2)
	tbl := th.New(table)
	arr := th.NewArray(gcassert.TRefArray, 4)
	vm.SetRef(tbl, slots, arr)
	cu := th.New(cust)
	fr.Set(0, tbl)
	fr.Set(1, cu)

	o := th.New(order)
	vm.SetRefAt(arr, 0, o)
	vm.SetRef(cu, lastOrder, o) // the stray reference that causes the leak
	vm.AssertOwnedBy(tbl, o)

	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("owned via table: want no violations, got %v", rep.Violations())
	}

	// "Process" the order: remove it from the table. The customer's
	// lastOrder now keeps it alive without its owner — the SPECjbb leak.
	vm.SetRefAt(arr, 0, gcassert.Nil)
	vm.Collect()
	vs := rep.ByKind(gcassert.KindOwnedBy)
	if len(vs) != 1 {
		t.Fatalf("want 1 ownedby violation, got %v", rep.Violations())
	}
	v := vs[0]
	if v.Object != o {
		t.Errorf("violation object = %v, want order %v", v.Object, o)
	}
	// The path must run through the Customer.
	var names []string
	for _, s := range v.Path {
		names = append(names, s.TypeName)
	}
	if want := []string{"Customer", "Order"}; len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("path types = %v, want %v", names, want)
	}
}

func TestSmokeRegions(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{})
	node := vm.Define("Req", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("server")
	fr := th.Push(1)

	th.StartRegion()
	var leak gcassert.Ref
	for i := 0; i < 100; i++ {
		o := th.New(node)
		if i == 42 {
			leak = o
		}
	}
	fr.Set(0, leak) // one request object escapes the region
	n := th.AssertAllDead()
	if n != 100 {
		t.Fatalf("AssertAllDead = %d, want 100", n)
	}
	vm.Collect()
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) != 1 {
		t.Fatalf("want exactly the escaping object reported, got %d", len(vs))
	}
	if vs[0].Object != leak {
		t.Errorf("reported %v, want %v", vs[0].Object, leak)
	}
	if st := vm.AssertionStats(); st.DeadVerified != 99 {
		t.Errorf("DeadVerified = %d, want 99", st.DeadVerified)
	}
}

func TestSmokeChurnAndReuse(t *testing.T) {
	vm, rep := newVM(t, gcassert.Options{HeapBytes: 4 << 20})
	node := vm.Define("N", gcassert.Field{Name: "next", Ref: true}, gcassert.Field{Name: "v", Ref: false})
	next := vm.FieldIndex(node, "next")
	th := vm.NewThread("main")
	fr := th.Push(1)
	// Build and drop linked lists until several GCs have happened.
	for round := 0; round < 400; round++ {
		var head gcassert.Ref
		for i := 0; i < 2000; i++ {
			n := th.New(node)
			vm.SetRef(n, next, head)
			head = n
			fr.Set(0, head)
		}
		fr.Set(0, gcassert.Nil)
	}
	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("no assertions registered; got violations: %v", rep.Violations())
	}
	if gcs := vm.Collector().GCCount(); gcs < 3 {
		t.Errorf("expected several collections, got %d", gcs)
	}
}
