package gcassert

import (
	"gcassert/internal/collector"
	"gcassert/internal/core"
)

// Heap probes: the on-demand variant of the paper's checks. §4.1 contrasts
// GC assertions with QVM's heap probes, which answer reachability questions
// immediately at the program point instead of at the next collection. This
// file provides that interface as a complement: a probe walks the heap right
// now (paying a full traversal, like QVM's forced collections), while
// assertions stay piggybacked on regular GCs.
//
// Probes never touch header bits, so they are safe to run between
// collections; they use a side visited-set instead.

// probeWalk runs a BFS from the roots, short-circuiting when target is
// found (target == Nil walks everything). parent records the BFS tree.
func (r *Runtime) probeWalk(target Ref) (found bool, parent map[Ref]Ref, rootOf map[Ref]string) {
	space := r.Space()
	parent = make(map[Ref]Ref)
	rootOf = make(map[Ref]string)
	var queue []Ref
	var scanner collector.RootScanner = r.RootScanner()
	scanner.Roots(func(root collector.Root) {
		a := *root.Slot
		if a == Nil {
			return
		}
		if _, seen := parent[a]; !seen {
			parent[a] = Nil
			rootOf[a] = root.Desc
			queue = append(queue, a)
		}
	})
	for i := 0; i < len(queue); i++ {
		a := queue[i]
		if a == target {
			return true, parent, rootOf
		}
		space.ForEachRef(a, func(_ int, t Ref) {
			if _, seen := parent[t]; !seen {
				parent[t] = a
				queue = append(queue, t)
			}
		})
	}
	_, ok := parent[target]
	return ok, parent, rootOf
}

// IsReachable reports whether the object is reachable from the roots right
// now, via a full heap walk (a heap probe, not a GC assertion).
func (r *Runtime) IsReachable(a Ref) bool {
	if a == Nil {
		return false
	}
	found, _, _ := r.probeWalk(a)
	return found
}

// PathTo returns one current root-to-object path, in the same form as a
// Violation's Path, plus the description of the root it starts from. ok is
// false when the object is unreachable (it would be reclaimed by the next
// collection).
func (r *Runtime) PathTo(a Ref) (path []PathStep, root string, ok bool) {
	if a == Nil {
		return nil, "", false
	}
	found, parent, rootOf := r.probeWalk(a)
	if !found {
		return nil, "", false
	}
	// Rebuild the chain from the BFS tree: parent == Nil marks the objects
	// that entered the queue directly from a root slot.
	var chain []Ref
	cur := a
	for {
		chain = append(chain, cur)
		p := parent[cur]
		if p == Nil {
			root = rootOf[cur]
			break
		}
		cur = p
	}
	// Reverse into root-first order and annotate with types and fields.
	space := r.Space()
	path = make([]PathStep, len(chain))
	for i := range chain {
		obj := chain[len(chain)-1-i]
		path[i] = PathStep{Addr: obj, TypeName: space.TypeName(obj)}
		if i > 0 {
			// Reuse the violation reporter's field resolution so probe paths
			// and violation paths agree on slot naming.
			path[i-1].Field = core.FieldLeadingTo(space, path[i-1].Addr, obj)
		}
	}
	return path, root, true
}

// RetainedBy returns how many live objects reference a directly (its
// current in-degree), another probe-style query (assert-unshared's
// condition, answered immediately).
func (r *Runtime) RetainedBy(a Ref) int {
	if a == Nil {
		return 0
	}
	_, parent, _ := r.probeWalk(Nil)
	space := r.Space()
	n := 0
	for obj := range parent {
		space.ForEachRef(obj, func(_ int, t Ref) {
			if t == a {
				n++
			}
		})
	}
	return n
}
