package gcassert_test

import (
	"fmt"
	"strings"
	"testing"

	"gcassert"
)

func TestWriteDOT(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	b := th.New(node)
	vm.SetRef(a, 0, b)
	fr.Set(0, a)
	orphan := th.New(node) // unreachable: must not appear
	_ = orphan

	var out strings.Builder
	if err := vm.WriteDOT(&out, 0); err != nil {
		t.Fatal(err)
	}
	dot := out.String()
	for _, want := range []string{
		"digraph heap {",
		`label="main.locals"`,
		`label="Node"`,
		`[label="next"]`,
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Exactly two Node objects (a and b): count node declarations.
	if got := strings.Count(dot, `[label="Node"]`); got != 2 {
		t.Errorf("node count = %d, want 2:\n%s", got, dot)
	}
	if !strings.Contains(dot, fmt.Sprintf("o%d -> o%d", uint32(a), uint32(b))) {
		t.Errorf("edge a->b missing:\n%s", dot)
	}
}

func TestWriteDOTTruncation(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	var head gcassert.Ref
	for i := 0; i < 100; i++ {
		n := th.New(node)
		vm.SetRef(n, 0, head)
		head = n
		fr.Set(0, head)
	}
	var out strings.Builder
	if err := vm.WriteDOT(&out, 10); err != nil {
		t.Fatal(err)
	}
	dot := out.String()
	if !strings.Contains(dot, "truncated:") {
		t.Errorf("expected truncation note:\n%s", dot)
	}
	if got := strings.Count(dot, `[label="Node"]`); got > 10 {
		t.Errorf("emitted %d nodes, cap was 10", got)
	}
}
