package gcassert_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"gcassert"
	"gcassert/internal/heap"
)

// diffResult summarizes one VM's run for differential comparison.
type diffResult struct {
	live       []heap.Addr // sorted post-sweep live addresses per round
	liveWords  []uint64
	marked     []int
	violations []string // sorted violation signatures (kind|type|object|gc)
	raw        []gcassert.Violation
}

// runDiffWorkload drives one VM through a deterministic randomized workload
// of allocation, mutation, assertion registration, and collection. Every VM
// given the same seed performs the identical operation sequence, so results
// are comparable address-for-address.
func runDiffWorkload(t *testing.T, seed int64, workers int) diffResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      4 << 20,
		Infrastructure: true,
		Reporter:       rep,
		Workers:        workers,
	})
	node := vm.Define("Node",
		gcassert.Field{Name: "a", Ref: true},
		gcassert.Field{Name: "b", Ref: true},
		gcassert.Field{Name: "v"})
	vm.AssertInstances(node, 150) // low enough to trip in most rounds
	th := vm.NewThread("main")
	fr := th.Push(24)

	var res diffResult
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			var a gcassert.Ref
			switch rng.Intn(3) {
			case 0:
				a = th.New(node)
			case 1:
				a = th.NewArray(gcassert.TRefArray, rng.Intn(12))
			default:
				a = th.NewArray(gcassert.TWordArray, rng.Intn(32))
			}
			fr.Set(rng.Intn(24), a)
			for j := 0; j < 24; j++ {
				src := fr.Get(j)
				if src == gcassert.Nil || rng.Intn(8) != 0 {
					continue
				}
				switch vm.Space().TypeOf(src) {
				case node:
					vm.SetRef(src, rng.Intn(2), a)
				case gcassert.TRefArray:
					if n := vm.ArrayLen(src); n > 0 {
						vm.SetRefAt(src, rng.Intn(n), a)
					}
				}
			}
		}
		// Register assertions on random rooted objects. Some will hold and
		// some will trip — both outcomes must be identical across widths.
		for j := 0; j < 24; j++ {
			a := fr.Get(j)
			if a == gcassert.Nil {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				vm.AssertDead(a)
				if rng.Intn(2) == 0 {
					fr.Set(j, gcassert.Nil) // honest: may actually die
				}
			case 1:
				vm.AssertUnshared(a)
			case 2:
				if o := fr.Get(rng.Intn(24)); o != gcassert.Nil && o != a {
					vm.AssertOwnedBy(o, a)
				}
			}
		}
		for j := 0; j < 24; j++ {
			if rng.Intn(3) == 0 {
				fr.Set(j, gcassert.Nil)
			}
		}
		col := vm.Collect()
		if workers > 1 && col.Workers != workers {
			t.Fatalf("seed %d round %d: collection ran with %d workers, want %d",
				seed, round, col.Workers, workers)
		}
		res.marked = append(res.marked, col.ObjectsMarked)
		res.liveWords = append(res.liveWords, vm.HeapStats().LiveWords)
		vm.Space().ForEachObject(func(a gcassert.Ref) bool {
			res.live = append(res.live, a)
			return true
		})
		res.live = append(res.live, heap.Nil) // round separator
	}
	res.raw = rep.Violations()
	for i := range res.raw {
		v := &res.raw[i]
		res.violations = append(res.violations,
			fmt.Sprintf("%s|%s|%#x|gc%d", v.Kind, v.TypeName, uint32(v.Object), v.GC))
	}
	sort.Strings(res.violations)
	return res
}

// TestParallelMarkDifferential is the subsystem's core equivalence property:
// for random workloads with assertions armed, parallel marking at any width
// must produce the same live set, the same live words, the same mark counts,
// and the same violation multiset as the sequential reference marker.
// Violation *ordering* may differ (parallel reports are sorted by kind and
// address, sequential reports follow DFS-encounter order), which is why the
// comparison is over sorted signatures.
func TestParallelMarkDifferential(t *testing.T) {
	prop := func(seed int64) bool {
		want := runDiffWorkload(t, seed, 1)
		for _, workers := range []int{2, 4, 8} {
			got := runDiffWorkload(t, seed, workers)
			if len(got.live) != len(want.live) {
				t.Logf("seed %d workers %d: %d live entries, sequential %d",
					seed, workers, len(got.live), len(want.live))
				return false
			}
			for i := range want.live {
				if got.live[i] != want.live[i] {
					t.Logf("seed %d workers %d: live[%d] = %#x, sequential %#x",
						seed, workers, i, uint32(got.live[i]), uint32(want.live[i]))
					return false
				}
			}
			for i := range want.liveWords {
				if got.liveWords[i] != want.liveWords[i] || got.marked[i] != want.marked[i] {
					t.Logf("seed %d workers %d round %d: liveWords/marked %d/%d, sequential %d/%d",
						seed, workers, i, got.liveWords[i], got.marked[i], want.liveWords[i], want.marked[i])
					return false
				}
			}
			if len(got.violations) != len(want.violations) {
				t.Logf("seed %d workers %d: %d violations, sequential %d\npar: %v\nseq: %v",
					seed, workers, len(got.violations), len(want.violations), got.violations, want.violations)
				return false
			}
			for i := range want.violations {
				if got.violations[i] != want.violations[i] {
					t.Logf("seed %d workers %d: violation[%d] = %q, sequential %q",
						seed, workers, i, got.violations[i], want.violations[i])
					return false
				}
			}
			// Parallel reports must carry complete root-to-object paths
			// reconstructed from the breadcrumbs.
			for i := range got.raw {
				v := &got.raw[i]
				if v.Kind == gcassert.KindInstances {
					continue // no path by design, as in the sequential reports
				}
				if v.Root == "" {
					t.Logf("seed %d workers %d: violation %d has no root", seed, workers, i)
					return false
				}
				if len(v.Path) == 0 || v.Path[len(v.Path)-1].Addr != v.Object {
					t.Logf("seed %d workers %d: violation %d path does not reach object", seed, workers, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelForceDeadEquivalence checks the static ReactForce path: under
// parallel marking the engine severs every reference to an asserted-dead
// object before claiming it, so the object is reclaimed in the same cycle —
// exactly as the sequential marker's EdgeClear reaction does.
func TestParallelForceDeadEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep := &gcassert.CollectingReporter{}
		vm := gcassert.New(gcassert.Options{
			HeapBytes:      1 << 20,
			Infrastructure: true,
			Reporter:       rep,
			Policy:         gcassert.Policy{}.With(gcassert.KindDead, gcassert.ReactForce),
			Workers:        workers,
		})
		node := vm.Define("Node",
			gcassert.Field{Name: "a", Ref: true},
			gcassert.Field{Name: "b", Ref: true})
		th := vm.NewThread("main")
		fr := th.Push(4)

		// doomed is referenced from two live parents and a root.
		doomed := th.New(node)
		p1, p2 := th.New(node), th.New(node)
		vm.SetRef(p1, 0, doomed)
		vm.SetRef(p2, 1, doomed)
		fr.Set(0, p1)
		fr.Set(1, p2)
		fr.Set(2, doomed)

		vm.AssertDead(doomed)
		col := vm.Collect()
		if col.Workers != workers {
			t.Fatalf("workers=%d: collection ran with %d workers", workers, col.Workers)
		}
		if vm.GetRef(p1, 0) != gcassert.Nil || vm.GetRef(p2, 1) != gcassert.Nil || fr.Get(2) != gcassert.Nil {
			t.Fatalf("workers=%d: force-dead left a reference standing", workers)
		}
		alive := false
		vm.Space().ForEachObject(func(a gcassert.Ref) bool {
			if a == doomed {
				alive = true
			}
			return true
		})
		if alive {
			t.Fatalf("workers=%d: force-dead object survived the cycle", workers)
		}
		dead := rep.ByKind(gcassert.KindDead)
		if len(dead) != 1 {
			t.Fatalf("workers=%d: %d dead violations, want 1", workers, len(dead))
		}
		if workers > 1 {
			v := &dead[0]
			if v.Root == "" || len(v.Path) == 0 || v.Path[len(v.Path)-1].Addr != doomed {
				t.Fatalf("workers=%d: forced violation lacks a complete path: %+v", workers, v)
			}
		}
	}
}

// TestParallelDeciderFallsBack checks that a programmatic OnViolation decider
// forces the sequential marker even when Workers is set: the decider's
// reaction must apply at edge time, which only the sequential trace can do.
func TestParallelDeciderFallsBack(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Infrastructure: true,
		Workers:        4,
		Telemetry:      true,
		OnViolation:    func(v *gcassert.Violation) gcassert.Reaction { return gcassert.ReactLog },
	})
	node := vm.Define("Node", gcassert.Field{Name: "a", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)
	fr.Set(0, th.New(node))
	col := vm.Collect()
	if col.Workers != 1 {
		t.Fatalf("decider-equipped runtime marked with %d workers, want sequential fallback", col.Workers)
	}
	if col.Fallback != "decider" {
		t.Fatalf("collection Fallback = %q, want decider", col.Fallback)
	}
	if vm.MarkWorkers() != 4 {
		t.Fatalf("fallback changed the configured worker count to %d", vm.MarkWorkers())
	}

	// The fallback reason must reach the observability surface: the event
	// stream and the Prometheus counter.
	tel := vm.Telemetry()
	events := tel.Events()
	if len(events) == 0 || events[len(events)-1].Fallback != "decider" {
		t.Fatalf("telemetry events do not carry the fallback reason: %+v", events)
	}
	var meta strings.Builder
	if err := tel.WriteMetrics(&meta); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(meta.String(), `gcassert_gc_mark_fallback_total{reason="decider"} 1`) {
		t.Fatalf("metrics miss the fallback counter:\n%s", meta.String())
	}
}
