package gcassert_test

import (
	"testing"

	"gcassert"
)

// probeWorld builds: root -> a -> b -> c, plus unrooted orphan.
func probeWorld(t *testing.T) (*gcassert.Runtime, [4]gcassert.Ref) {
	t.Helper()
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20, Infrastructure: true})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(2)
	a := th.New(node)
	b := th.New(node)
	c := th.New(node)
	orphan := th.New(node)
	vm.SetRef(a, 0, b)
	vm.SetRef(b, 0, c)
	fr.Set(0, a)
	_ = orphan
	return vm, [4]gcassert.Ref{a, b, c, orphan}
}

func TestIsReachable(t *testing.T) {
	vm, o := probeWorld(t)
	a, b, c, orphan := o[0], o[1], o[2], o[3]
	for _, r := range []gcassert.Ref{a, b, c} {
		if !vm.IsReachable(r) {
			t.Errorf("%v should be reachable", r)
		}
	}
	if vm.IsReachable(orphan) {
		t.Error("orphan should be unreachable")
	}
	if vm.IsReachable(gcassert.Nil) {
		t.Error("nil reachable")
	}
}

func TestPathTo(t *testing.T) {
	vm, o := probeWorld(t)
	a, c, orphan := o[0], o[2], o[3]
	path, root, ok := vm.PathTo(c)
	if !ok {
		t.Fatal("c unreachable")
	}
	if root != "main.locals" {
		t.Errorf("root = %q", root)
	}
	if len(path) != 3 || path[0].Addr != a || path[2].Addr != c {
		t.Fatalf("path = %+v", path)
	}
	if path[0].Field != "next" || path[1].Field != "next" || path[2].Field != "" {
		t.Errorf("fields: %+v", path)
	}
	if _, _, ok := vm.PathTo(orphan); ok {
		t.Error("orphan has a path?")
	}
	if _, _, ok := vm.PathTo(gcassert.Nil); ok {
		t.Error("nil has a path?")
	}
	// A directly-rooted object has a one-step path.
	p2, _, ok := vm.PathTo(a)
	if !ok || len(p2) != 1 || p2[0].Addr != a {
		t.Errorf("direct path = %+v", p2)
	}
}

func TestRetainedBy(t *testing.T) {
	vm, o := probeWorld(t)
	a, b, orphan := o[0], o[1], o[3]
	if n := vm.RetainedBy(b); n != 1 {
		t.Errorf("RetainedBy(b) = %d", n)
	}
	// Add a second referent.
	node := gcassert.TypeID(0)
	if id, ok := vm.Registry().Lookup("Node"); ok {
		node = id
	}
	th := vm.NewThread("aux")
	fr := th.Push(1)
	d := th.New(node)
	fr.Set(0, d)
	vm.SetRef(d, 0, b)
	if n := vm.RetainedBy(b); n != 2 {
		t.Errorf("RetainedBy(b) after second edge = %d", n)
	}
	// Roots are not heap referents.
	if n := vm.RetainedBy(a); n != 0 {
		t.Errorf("RetainedBy(a) = %d (roots must not count)", n)
	}
	if n := vm.RetainedBy(orphan); n != 0 {
		t.Errorf("RetainedBy(orphan) = %d", n)
	}
	if n := vm.RetainedBy(gcassert.Nil); n != 0 {
		t.Errorf("RetainedBy(nil) = %d", n)
	}
}

// TestProbeAgreesWithAssertDead: the probe and the deferred assertion agree
// on reachability.
func TestProbeAgreesWithAssertDead(t *testing.T) {
	vm, o := probeWorld(t)
	c, orphan := o[2], o[3]
	rep := &gcassert.CollectingReporter{}
	vm.Engine().SetReporter(rep)
	probeSaysLiveC := vm.IsReachable(c)
	probeSaysLiveOrphan := vm.IsReachable(orphan)
	vm.AssertDead(c)
	vm.AssertDead(orphan)
	vm.Collect()
	if got := len(rep.ByKind(gcassert.KindDead)) == 1; !got {
		t.Fatalf("violations = %v", rep.Violations())
	}
	if !probeSaysLiveC || probeSaysLiveOrphan {
		t.Error("probe disagrees with collector")
	}
}
