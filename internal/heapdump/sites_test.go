package heapdump_test

import (
	"testing"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
	"gcassert/internal/heapdump"
)

func TestCensusGroupsBySite(t *testing.T) {
	s, node, leaf, roots, c, census := world(t, 8)
	p := s.EnableProvenance(1)
	mk := p.Register("maker.go:1 new Node")
	other := p.Register("other.go:2 new Node")

	// Two nodes from mk, one from other, one unsited; a leaf from mk.
	a1 := mustAlloc(t, s, node, 0)
	s.RecordSite(a1, mk)
	a2 := mustAlloc(t, s, node, 0)
	s.RecordSite(a2, mk)
	a3 := mustAlloc(t, s, node, 0)
	s.RecordSite(a3, other)
	a4 := mustAlloc(t, s, node, 0)
	lf := mustAlloc(t, s, leaf, 0)
	s.RecordSite(lf, mk)
	s.SetRef(a1, 1, lf)
	roots.slots = []heap.Addr{a1, a2, a3, a4}

	c.Collect(collector.ReasonForced)
	snap, ok := census.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	if len(snap.Sites) != 4 {
		t.Fatalf("got %d site rows, want 4: %+v", len(snap.Sites), snap.Sites)
	}
	find := func(typ, site string) *heapdump.SiteCensus {
		for i := range snap.Sites {
			if snap.Sites[i].TypeName == typ && snap.Sites[i].Site == site {
				return &snap.Sites[i]
			}
		}
		t.Fatalf("no row for (%s, %q) in %+v", typ, site, snap.Sites)
		return nil
	}
	if r := find("Node", "maker.go:1 new Node"); r.Objects != 2 {
		t.Errorf("maker Node row: %+v", r)
	}
	if r := find("Node", "other.go:2 new Node"); r.Objects != 1 {
		t.Errorf("other Node row: %+v", r)
	}
	if r := find("Node", ""); r.Objects != 1 {
		t.Errorf("unknown-site Node row: %+v", r)
	}
	if r := find("Leaf", "maker.go:1 new Node"); r.Objects != 1 {
		t.Errorf("Leaf row: %+v", r)
	}

	// Site rows reconcile with the type rows.
	var nodeSiteObjs uint64
	for i := range snap.Sites {
		if snap.Sites[i].TypeName == "Node" {
			nodeSiteObjs += snap.Sites[i].Objects
		}
	}
	if row := snap.ByType(node); row == nil || nodeSiteObjs != row.Objects {
		t.Errorf("site rows sum to %d Node objects, type row says %+v", nodeSiteObjs, row)
	}

	// Rows are sorted largest payload first.
	for i := 1; i < len(snap.Sites); i++ {
		if snap.Sites[i].Words > snap.Sites[i-1].Words {
			t.Errorf("site rows out of order at %d: %+v", i, snap.Sites)
		}
	}
}

func TestCensusWithoutProvenanceHasNoSites(t *testing.T) {
	s, node, _, roots, c, census := world(t, 8)
	roots.slots = []heap.Addr{mustAlloc(t, s, node, 0)}
	c.Collect(collector.ReasonForced)
	if snap, _ := census.Latest(); snap.Sites != nil {
		t.Fatalf("provenance-off snapshot grew site rows: %+v", snap.Sites)
	}
}

func TestSuspectsCarrySiteBreakdown(t *testing.T) {
	s, node, _, roots, c, census := world(t, 8)
	p := s.EnableProvenance(1)
	site := p.Register("leaky.go:7 new Node")

	// Grow the Node population monotonically across snapshots, always from
	// the same site; the suspect must name it.
	var keep []heap.Addr
	for gc := 0; gc < 4; gc++ {
		for i := 0; i < 5; i++ {
			a := mustAlloc(t, s, node, 0)
			s.RecordSite(a, site)
			keep = append(keep, a)
		}
		roots.slots = keep
		c.Collect(collector.ReasonForced)
	}
	sus := census.Suspects(0, 1)
	if len(sus) != 1 || sus[0].TypeName != "Node" {
		t.Fatalf("suspects = %+v", sus)
	}
	if len(sus[0].Sites) != 1 || sus[0].Sites[0].Site != "leaky.go:7 new Node" || sus[0].Sites[0].Objects != 20 {
		t.Fatalf("suspect site breakdown = %+v", sus[0].Sites)
	}
}
