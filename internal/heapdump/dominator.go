package heapdump

import (
	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// Dominator-tree analysis: object d dominates object o when every path from
// the roots to o passes through d, so freeing d's incoming references frees
// o too. The retained size of d — the bytes the program would get back by
// dropping d — is the total footprint of d's dominator subtree. This is the
// standard heap-profiler complement to the census: the census says which
// types are big, the dominator tree says which individual objects are
// *keeping* the bytes alive.
//
// The implementation is Lengauer-Tarjan (simple eval-link with path
// compression), O(E α(E,V)), over a collector.Graph capture whose node 0 is
// the virtual super-root.

// DomTree is the dominator tree of one graph capture.
type DomTree struct {
	graph *collector.Graph
	space *heap.Space

	// Idom[v] is the immediate dominator of node v (node index); Idom of the
	// super-root (node 0) is -1.
	Idom []int32
	// Retained[v] is the retained size of node v in cell words: its own
	// allocator footprint plus that of every node it dominates. Retained[0]
	// is the whole live heap.
	Retained []uint64

	children [][]int32
	shallow  []uint64
}

// Dominators computes the dominator tree of a capture. Cost is a few linear
// passes over the graph; run it in the same quiescent window as the capture.
func Dominators(g *collector.Graph, space *heap.Space) *DomTree {
	n := g.NumNodes()
	d := &DomTree{
		graph:    g,
		space:    space,
		Idom:     make([]int32, n),
		Retained: make([]uint64, n),
		children: make([][]int32, n),
		shallow:  make([]uint64, n),
	}
	if n == 0 {
		return d
	}

	// Predecessor lists, needed by the semidominator computation.
	pred := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Succs[v] {
			pred[w] = append(pred[w], int32(v))
		}
	}

	// Iterative DFS from the super-root assigning DFS numbers. vertex maps
	// DFS number -> node; dfnum maps node -> DFS number (-1 = unreached —
	// cannot happen for a BFS capture, but the algorithm tolerates it).
	dfnum := make([]int32, n)
	parent := make([]int32, n) // parent in the DFS tree, by DFS number
	vertex := make([]int32, 0, n)
	for v := range dfnum {
		dfnum[v] = -1
	}
	type frame struct{ node, par int32 }
	stack := []frame{{0, -1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if dfnum[f.node] != -1 {
			continue
		}
		num := int32(len(vertex))
		dfnum[f.node] = num
		parent[num] = f.par
		vertex = append(vertex, f.node)
		succs := g.Succs[f.node]
		for i := len(succs) - 1; i >= 0; i-- {
			if dfnum[succs[i]] == -1 {
				stack = append(stack, frame{succs[i], num})
			}
		}
	}
	reached := int32(len(vertex))

	// Lengauer-Tarjan working arrays, all indexed by DFS number.
	semi := make([]int32, reached)
	idom := make([]int32, reached)
	ancestor := make([]int32, reached)
	label := make([]int32, reached)
	bucket := make([][]int32, reached)
	for i := int32(0); i < reached; i++ {
		semi[i] = i
		ancestor[i] = -1
		label[i] = i
	}

	// eval returns the vertex with minimum semidominator on the ancestor
	// path, with iterative path compression.
	var compressStack []int32
	eval := func(v int32) int32 {
		if ancestor[v] == -1 {
			return label[v]
		}
		compressStack = compressStack[:0]
		for u := v; ancestor[ancestor[u]] != -1; u = ancestor[u] {
			compressStack = append(compressStack, u)
		}
		for i := len(compressStack) - 1; i >= 0; i-- {
			u := compressStack[i]
			if semi[label[ancestor[u]]] < semi[label[u]] {
				label[u] = label[ancestor[u]]
			}
			ancestor[u] = ancestor[ancestor[u]]
		}
		return label[v]
	}

	for w := reached - 1; w >= 1; w-- {
		// Step 2: compute semidominators.
		for _, pnode := range pred[vertex[w]] {
			pv := dfnum[pnode]
			if pv == -1 {
				continue
			}
			u := eval(pv)
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[semi[w]] = append(bucket[semi[w]], w)
		ancestor[w] = parent[w] // link(parent[w], w)
		// Step 3: implicitly define immediate dominators.
		for _, v := range bucket[parent[w]] {
			u := eval(v)
			if semi[u] < semi[v] {
				idom[v] = u
			} else {
				idom[v] = parent[w]
			}
		}
		bucket[parent[w]] = bucket[parent[w]][:0]
	}
	// Step 4: fill in dominators defined relative to semidominators.
	idom[0] = 0
	for w := int32(1); w < reached; w++ {
		if idom[w] != semi[w] {
			idom[w] = idom[idom[w]]
		}
	}

	// Translate DFS numbers back to node indices; build child lists.
	for v := range d.Idom {
		d.Idom[v] = -1
	}
	for w := int32(1); w < reached; w++ {
		node := vertex[w]
		dom := vertex[idom[w]]
		d.Idom[node] = dom
		d.children[dom] = append(d.children[dom], node)
	}

	// Retained sizes: shallow cell words, accumulated bottom-up. Reverse DFS
	// order guarantees children are finished before their dominator.
	for v := 1; v < n; v++ {
		d.shallow[v] = uint64(space.CellWords(g.Addrs[v]))
	}
	for i := range vertex {
		d.Retained[vertex[i]] = d.shallow[vertex[i]]
	}
	for w := reached - 1; w >= 1; w-- {
		node := vertex[w]
		d.Retained[d.Idom[node]] += d.Retained[node]
	}
	return d
}

// RetainedWords returns the retained size of an object in cell words, and
// whether the object is in the capture.
func (d *DomTree) RetainedWords(a heap.Addr) (uint64, bool) {
	i, ok := d.graph.Index(a)
	if !ok {
		return 0, false
	}
	return d.Retained[i], true
}

// Children returns the node indices immediately dominated by node v.
func (d *DomTree) Children(v int32) []int32 { return d.children[v] }

// Graph returns the capture the tree was computed over.
func (d *DomTree) Graph() *collector.Graph { return d.graph }

// Retainer is one entry in a top-retainers report.
type Retainer struct {
	// Addr is the dominating object; Node its graph index.
	Addr heap.Addr `json:"addr"`
	Node int32     `json:"node"`
	// TypeName is the object's type.
	TypeName string `json:"type_name"`
	// ShallowWords is the object's own footprint; RetainedWords includes
	// everything it dominates. Both are allocator cell words.
	ShallowWords  uint64 `json:"shallow_words"`
	RetainedWords uint64 `json:"retained_words"`
	// Dominated is the number of objects in its dominator subtree (excluding
	// itself).
	Dominated int `json:"dominated"`
	// Root describes the root slot holding the object directly, if any.
	Root string `json:"root,omitempty"`
}

// TopRetainers returns the n objects with the largest retained sizes,
// descending (the super-root is excluded: "the whole heap" is not a useful
// answer).
func (d *DomTree) TopRetainers(n int) []Retainer {
	g := d.graph
	out := make([]Retainer, 0, n)
	counts := d.subtreeCounts()
	for v := 1; v < g.NumNodes(); v++ {
		if d.Idom[v] == -1 {
			continue // unreached by the DFS (impossible for BFS captures)
		}
		r := Retainer{
			Addr:          g.Addrs[v],
			Node:          int32(v),
			TypeName:      d.space.TypeName(g.Addrs[v]),
			ShallowWords:  d.shallow[v],
			RetainedWords: d.Retained[v],
			Dominated:     counts[v] - 1,
			Root:          g.RootDesc[int32(v)],
		}
		// Insert into the bounded, sorted result (n is small).
		pos := len(out)
		for pos > 0 && out[pos-1].RetainedWords < r.RetainedWords {
			pos--
		}
		if pos < n {
			if len(out) < n {
				out = append(out, Retainer{})
			}
			copy(out[pos+1:], out[pos:])
			out[pos] = r
		}
	}
	return out
}

// subtreeCounts returns, per node, the number of nodes in its dominator
// subtree (itself included).
func (d *DomTree) subtreeCounts() []int {
	counts := make([]int, d.graph.NumNodes())
	// Post-order accumulation without recursion: children were appended in
	// DFS discovery order, so walking nodes in reverse discovery order and
	// adding into the parent is safe only with an explicit order; rebuild it.
	order := make([]int32, 0, d.graph.NumNodes())
	stack := []int32{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, d.children[v]...)
	}
	for i := range counts {
		counts[i] = 1
	}
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		if d.Idom[v] >= 0 {
			counts[d.Idom[v]] += counts[v]
		}
	}
	return counts
}

// TypeRetained aggregates retained sizes by type.
type TypeRetained struct {
	TypeName string `json:"type_name"`
	// Objects is the number of instances acting as subtree heads (instances
	// whose immediate dominator is not of the same type).
	Objects int `json:"objects"`
	// RetainedWords sums the heads' retained sizes. Heads-only avoids double
	// counting chains of same-typed objects (a list's nodes each dominate
	// their suffix; counting every node would multiply the list's weight).
	RetainedWords uint64 `json:"retained_words"`
}

// TypeRetainers returns per-type retained sizes, largest first, top n
// (n <= 0 returns all).
func (d *DomTree) TypeRetainers(n int) []TypeRetained {
	g := d.graph
	agg := map[string]*TypeRetained{}
	for v := 1; v < g.NumNodes(); v++ {
		if d.Idom[v] == -1 {
			continue
		}
		name := d.space.TypeName(g.Addrs[v])
		if dom := d.Idom[v]; dom > 0 && d.space.TypeName(g.Addrs[dom]) == name {
			continue // not a head: dominated by its own type
		}
		t := agg[name]
		if t == nil {
			t = &TypeRetained{TypeName: name}
			agg[name] = t
		}
		t.Objects++
		t.RetainedWords += d.Retained[v]
	}
	out := make([]TypeRetained, 0, len(agg))
	for _, t := range agg {
		out = append(out, *t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && typeRetainedLess(&out[j], &out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func typeRetainedLess(a, b *TypeRetained) bool {
	if a.RetainedWords != b.RetainedWords {
		return a.RetainedWords > b.RetainedWords
	}
	return a.TypeName < b.TypeName
}
