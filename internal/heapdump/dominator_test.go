package heapdump_test

import (
	"math/rand"
	"testing"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
	"gcassert/internal/heapdump"
)

// diamond builds root -> a; a -> {b, c}; b -> d; c -> d and returns the
// objects. d has two paths from a, so its immediate dominator is a, not b/c.
func diamond(t *testing.T) (*heap.Space, *collector.Collector, [4]heap.Addr) {
	t.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("Node", heap.Field{Name: "a", Ref: true}, heap.Field{Name: "b", Ref: true})
	s := heap.NewSpace(reg, 1<<20)
	var o [4]heap.Addr
	for i := range o {
		o[i] = mustAlloc(t, s, node, 0)
	}
	a, b, c, d := o[0], o[1], o[2], o[3]
	s.SetRef(a, 0, b)
	s.SetRef(a, 1, c)
	s.SetRef(b, 0, d)
	s.SetRef(c, 0, d)
	roots := &sliceRoots{slots: []heap.Addr{a}}
	return s, collector.New(s, roots, nil, false), o
}

func TestDominatorsDiamond(t *testing.T) {
	s, c, o := diamond(t)
	g := c.CaptureGraph()
	if g.NumObjects() != 4 {
		t.Fatalf("captured %d objects, want 4", g.NumObjects())
	}
	dom := heapdump.Dominators(g, s)

	idx := func(a heap.Addr) int32 {
		i, ok := g.Index(a)
		if !ok {
			t.Fatalf("object %v not in graph", a)
		}
		return i
	}
	a, b, cc, d := idx(o[0]), idx(o[1]), idx(o[2]), idx(o[3])

	if dom.Idom[a] != 0 {
		t.Errorf("idom(a) = %d, want super-root 0", dom.Idom[a])
	}
	if dom.Idom[b] != a || dom.Idom[cc] != a {
		t.Errorf("idom(b)=%d idom(c)=%d, want a=%d", dom.Idom[b], dom.Idom[cc], a)
	}
	if dom.Idom[d] != a {
		t.Errorf("idom(d) = %d, want a=%d (two disjoint paths)", dom.Idom[d], a)
	}

	cell := uint64(s.CellWords(o[0]))
	if got, _ := dom.RetainedWords(o[0]); got != 4*cell {
		t.Errorf("retained(a) = %d, want %d (whole graph)", got, 4*cell)
	}
	if got, _ := dom.RetainedWords(o[1]); got != cell {
		t.Errorf("retained(b) = %d, want %d (b retains only itself)", got, cell)
	}
	if dom.Retained[0] != uint64(s.Stats().LiveWords) {
		// All allocated objects are reachable here, so the super-root's
		// retained size is the whole live heap.
		t.Errorf("retained(super-root) = %d, want LiveWords = %d", dom.Retained[0], s.Stats().LiveWords)
	}
}

func TestTopRetainers(t *testing.T) {
	s, c, o := diamond(t)
	dom := heapdump.Dominators(c.CaptureGraph(), s)
	top := dom.TopRetainers(2)
	if len(top) != 2 {
		t.Fatalf("got %d retainers, want 2", len(top))
	}
	if top[0].Addr != o[0] {
		t.Errorf("top retainer = %v, want a=%v", top[0].Addr, o[0])
	}
	if top[0].Dominated != 3 {
		t.Errorf("a dominates %d objects, want 3", top[0].Dominated)
	}
	if top[0].Root != "test-root" {
		t.Errorf("root desc = %q, want test-root", top[0].Root)
	}
	if top[0].RetainedWords < top[1].RetainedWords {
		t.Error("retainers not sorted descending")
	}
	if top[0].TypeName != "Node" {
		t.Errorf("type name = %q", top[0].TypeName)
	}
}

func TestTypeRetainersHeadsOnly(t *testing.T) {
	// A chain head -> n1 -> n2 of one type: only the head is a subtree head,
	// so the type's retained words must equal the head's retained size, not
	// the sum over all three (which would triple-count the tail).
	reg := heap.NewRegistry()
	node := reg.Define("Node", heap.Field{Name: "next", Ref: true})
	s := heap.NewSpace(reg, 1<<20)
	var o [3]heap.Addr
	for i := range o {
		o[i] = mustAlloc(t, s, node, 0)
		if i > 0 {
			s.SetRef(o[i-1], 0, o[i])
		}
	}
	roots := &sliceRoots{slots: []heap.Addr{o[0]}}
	c := collector.New(s, roots, nil, false)
	dom := heapdump.Dominators(c.CaptureGraph(), s)

	tr := dom.TypeRetainers(0)
	if len(tr) != 1 {
		t.Fatalf("got %d type rows, want 1", len(tr))
	}
	want, _ := dom.RetainedWords(o[0])
	if tr[0].RetainedWords != want || tr[0].Objects != 1 {
		t.Errorf("TypeRetainers = %+v, want 1 head retaining %d words", tr[0], want)
	}
}

// TestDominatorsRandomAgainstOracle cross-checks Lengauer-Tarjan against a
// brute-force dominator oracle (delete v, recompute reachability) on random
// graphs.
func TestDominatorsRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		reg := heap.NewRegistry()
		node := reg.Define("N", heap.Field{Name: "a", Ref: true}, heap.Field{Name: "b", Ref: true}, heap.Field{Name: "c", Ref: true})
		s := heap.NewSpace(reg, 1<<20)
		n := 2 + rng.Intn(30)
		objs := make([]heap.Addr, n)
		for i := range objs {
			objs[i] = mustAlloc(t, s, node, 0)
		}
		for _, a := range objs {
			for slot := 0; slot < 3; slot++ {
				if rng.Intn(2) == 0 {
					s.SetRef(a, slot, objs[rng.Intn(n)])
				}
			}
		}
		nroots := 1 + rng.Intn(3)
		roots := &sliceRoots{}
		for i := 0; i < nroots; i++ {
			roots.slots = append(roots.slots, objs[rng.Intn(n)])
		}
		c := collector.New(s, roots, nil, false)
		g := c.CaptureGraph()
		dom := heapdump.Dominators(g, s)

		// Oracle: u dominates w iff removing u makes w unreachable. The
		// immediate dominator is the dominator that is itself dominated by
		// every other dominator of w — equivalently, the unique dominator
		// whose own dominator set contains all others. Checking idom directly:
		// idom(w) must dominate w, and no other dominator v of w may satisfy
		// "idom(w) dominates v" strictly between them. Simpler and sufficient:
		// verify (1) idom(w) dominates w per the oracle, and (2) every oracle
		// dominator of w dominates idom(w) or is w itself... that needs the
		// full set; instead verify idom(w) is the *closest* dominator: it
		// dominates w and is dominated by all other proper dominators of w.
		reach := func(skip int32) map[int32]bool {
			seen := map[int32]bool{0: true}
			stack := []int32{0}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range g.Succs[v] {
					if u != skip && !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
			return seen
		}
		full := reach(-1)
		// domSets[v] = set of w (≠ v) unreachable without v, i.e. v strictly
		// dominates w.
		nn := int32(g.NumNodes())
		dominates := func(v, w int32) bool {
			if v == 0 {
				return true
			}
			return !reach(v)[w]
		}
		for w := int32(1); w < nn; w++ {
			if !full[w] {
				continue
			}
			id := dom.Idom[w]
			if id < 0 {
				t.Fatalf("trial %d: reachable node %d has no idom", trial, w)
			}
			if !dominates(id, w) {
				t.Fatalf("trial %d: idom(%d)=%d does not dominate it", trial, w, id)
			}
			// No strictly closer dominator: any v that dominates w and is
			// dominated by id must be id itself (or w).
			for v := int32(1); v < nn; v++ {
				if v == w || v == id || !full[v] {
					continue
				}
				if dominates(v, w) && dominates(id, v) {
					t.Fatalf("trial %d: %d dominates %d and lies below idom %d", trial, v, w, id)
				}
			}
		}
	}
}
