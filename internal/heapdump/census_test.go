package heapdump_test

import (
	"strings"
	"testing"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
	"gcassert/internal/heapdump"
)

// sliceRoots is a test RootScanner over a plain slice.
type sliceRoots struct {
	slots []heap.Addr
}

func (r *sliceRoots) Roots(yield func(collector.Root)) {
	for i := range r.slots {
		yield(collector.Root{Slot: &r.slots[i], Desc: "test-root"})
	}
}

// world builds a space with a two-ref node type and a leaf type, a collector
// over slice roots, and a census wired in the same way the runtime wires it:
// Observer for the lifecycle, OnMark for the per-object callback.
func world(t testing.TB, ring int) (*heap.Space, heap.TypeID, heap.TypeID, *sliceRoots, *collector.Collector, *heapdump.Census) {
	t.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("Node", heap.Field{Name: "a", Ref: true}, heap.Field{Name: "b", Ref: true})
	leaf := reg.Define("Leaf", heap.Field{Name: "v"})
	s := heap.NewSpace(reg, 1<<20)
	roots := &sliceRoots{}
	c := collector.New(s, roots, nil, false)
	census := heapdump.NewCensus(s, heapdump.Config{Ring: ring})
	c.Observer = census
	c.OnMark = census.Observe
	return s, node, leaf, roots, c, census
}

func mustAlloc(t testing.TB, s *heap.Space, typ heap.TypeID, n int) heap.Addr {
	t.Helper()
	a, ok := s.Allocate(typ, n)
	if !ok {
		t.Fatal("allocation failed")
	}
	return a
}

func TestCensusMatchesLiveHeap(t *testing.T) {
	s, node, leaf, roots, c, census := world(t, 8)

	// A chain of 3 nodes, each holding a leaf; one garbage node.
	var chain [3]heap.Addr
	for i := range chain {
		chain[i] = mustAlloc(t, s, node, 0)
		s.SetRef(chain[i], 1, mustAlloc(t, s, leaf, 0))
		if i > 0 {
			s.SetRef(chain[i-1], 0, chain[i])
		}
	}
	mustAlloc(t, s, node, 0) // garbage
	roots.slots = []heap.Addr{chain[0]}

	col := c.Collect(collector.ReasonForced)

	snap, ok := census.Latest()
	if !ok {
		t.Fatal("no snapshot after collection")
	}
	if snap.GC != col.Seq {
		t.Errorf("snapshot GC = %d, want %d", snap.GC, col.Seq)
	}
	if snap.Reason != string(collector.ReasonForced) {
		t.Errorf("snapshot reason = %q", snap.Reason)
	}
	if snap.TotalObjects != uint64(col.ObjectsLive) {
		t.Errorf("TotalObjects = %d, want ObjectsLive = %d", snap.TotalObjects, col.ObjectsLive)
	}
	if snap.TotalCellWords != uint64(s.Stats().LiveWords) {
		t.Errorf("TotalCellWords = %d, want Stats.LiveWords = %d", snap.TotalCellWords, s.Stats().LiveWords)
	}
	nrow := snap.ByType(node)
	lrow := snap.ByType(leaf)
	if nrow == nil || lrow == nil {
		t.Fatalf("missing rows: node=%v leaf=%v", nrow, lrow)
	}
	if nrow.Objects != 3 || lrow.Objects != 3 {
		t.Errorf("objects: node=%d leaf=%d, want 3 and 3", nrow.Objects, lrow.Objects)
	}
	if nrow.TypeName != "Node" {
		t.Errorf("row type name = %q", nrow.TypeName)
	}

	// Rows are sorted by payload words descending.
	for i := 1; i < len(snap.Types); i++ {
		if snap.Types[i].Words > snap.Types[i-1].Words {
			t.Errorf("rows not sorted at %d", i)
		}
	}
}

func TestCensusTracksDeath(t *testing.T) {
	s, node, _, roots, c, census := world(t, 8)
	a := mustAlloc(t, s, node, 0)
	roots.slots = []heap.Addr{a}
	c.Collect(collector.ReasonForced)
	roots.slots[0] = heap.Nil
	c.Collect(collector.ReasonForced)
	snap, _ := census.Latest()
	if snap.TotalObjects != 0 || len(snap.Types) != 0 {
		t.Errorf("after death: %d objects, %d rows; want empty census", snap.TotalObjects, len(snap.Types))
	}
	if got := len(census.Snapshots()); got != 2 {
		t.Errorf("retained %d snapshots, want 2", got)
	}
}

func TestCensusRingWraps(t *testing.T) {
	_, _, _, _, c, census := world(t, 3)
	for i := 0; i < 5; i++ {
		c.Collect(collector.ReasonForced)
	}
	snaps := census.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("retained %d snapshots, want ring size 3", len(snaps))
	}
	// Oldest-first: sequence numbers 2, 3, 4.
	for i, want := range []uint64{2, 3, 4} {
		if snaps[i].GC != want {
			t.Errorf("snaps[%d].GC = %d, want %d", i, snaps[i].GC, want)
		}
	}
	if census.Total() != 5 {
		t.Errorf("Total = %d, want 5", census.Total())
	}
	if last := census.Last(2); len(last) != 2 || last[1].GC != 4 {
		t.Errorf("Last(2) = %+v", last)
	}
}

func TestCensusOnSnapshotCallback(t *testing.T) {
	_, _, _, _, c, census := world(t, 4)
	var got []uint64
	census.SetOnSnapshot(func(s *heapdump.Snapshot) { got = append(got, s.GC) })
	c.Collect(collector.ReasonForced)
	c.Collect(collector.ReasonForced)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("callback sequence = %v", got)
	}
}

func TestSizeBucket(t *testing.T) {
	cases := []struct{ words, bucket int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 21, 21}, {1<<22 + 5, heapdump.NumSizeBuckets - 1},
	}
	for _, tc := range cases {
		if got := heapdump.SizeBucket(tc.words); got != tc.bucket {
			t.Errorf("SizeBucket(%d) = %d, want %d", tc.words, got, tc.bucket)
		}
	}
}

func TestCensusJSONExport(t *testing.T) {
	s, node, _, roots, c, census := world(t, 4)
	roots.slots = []heap.Addr{mustAlloc(t, s, node, 0)}
	c.Collect(collector.ReasonForced)
	var b strings.Builder
	if err := census.WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total": 1`, `"type_name": "Node"`, `"total_objects": 1`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, b.String())
		}
	}
}

func TestSuspectsRankGrowingType(t *testing.T) {
	s, node, leaf, roots, c, census := world(t, 16)
	// leaky grows by 5 leaves per GC; one stable node stays flat.
	stable := mustAlloc(t, s, node, 0)
	roots.slots = []heap.Addr{stable}
	var hold []heap.Addr
	for gc := 0; gc < 6; gc++ {
		for i := 0; i < 5; i++ {
			l := mustAlloc(t, s, leaf, 0)
			hold = append(hold, l)
			roots.slots = append(roots.slots, l)
		}
		c.Collect(collector.ReasonForced)
	}
	_ = hold
	sus := census.Suspects(0, 3)
	if len(sus) == 0 {
		t.Fatal("no suspects for a monotonically growing type")
	}
	if sus[0].Type != leaf {
		t.Errorf("top suspect = %s, want Leaf", sus[0].TypeName)
	}
	if sus[0].Growth != 1.0 {
		t.Errorf("growth = %v, want 1.0", sus[0].Growth)
	}
	if sus[0].SlopeObjectsPerGC < 4 || sus[0].SlopeObjectsPerGC > 6 {
		t.Errorf("object slope = %v, want ~5", sus[0].SlopeObjectsPerGC)
	}
	for _, su := range sus {
		if su.Type == node {
			t.Errorf("flat type Node reported as suspect: %+v", su)
		}
	}
}

func TestSuspectsNeedTwoSnapshots(t *testing.T) {
	_, _, _, _, c, census := world(t, 4)
	if s := census.Suspects(0, 5); s != nil {
		t.Errorf("suspects with no snapshots: %v", s)
	}
	c.Collect(collector.ReasonForced)
	if s := census.Suspects(0, 5); s != nil {
		t.Errorf("suspects with one snapshot: %v", s)
	}
}

func TestRankSuspectsIgnoresShrinkingTypes(t *testing.T) {
	mk := func(gc uint64, words uint64) heapdump.Snapshot {
		return heapdump.Snapshot{GC: gc, Types: []heapdump.TypeCensus{
			{Type: 5, TypeName: "Shrinker", Words: words, Objects: words},
		}}
	}
	sus := heapdump.RankSuspects([]heapdump.Snapshot{mk(0, 100), mk(1, 60), mk(2, 20)}, 10)
	if len(sus) != 0 {
		t.Errorf("shrinking type ranked as suspect: %+v", sus)
	}
}
