package heapdump_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gcassert"
	"gcassert/internal/heap"
)

// TestCensusReconcilesWithSweep is the introspection layer's core invariant,
// checked property-style over randomized object graphs on the full runtime
// stack: after every collection, the census snapshot's per-type totals must
// equal an independent post-sweep walk of the heap, and its grand totals
// must equal both the Collection record's ObjectsLive and the allocator's
// LiveWords. The census counts at mark time, the sweep counts at reclaim
// time — the marked set *is* the post-sweep live set, so the two bookkeeping
// paths must agree exactly, always.
func TestCensusReconcilesWithSweep(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vm := gcassert.New(gcassert.Options{
			HeapBytes:      4 << 20,
			Infrastructure: seed%2 == 0, // cover both trace configurations
			Introspection:  true,
		})
		// A mix of shapes: plain nodes, ref arrays, word arrays.
		node := vm.Define("Node",
			gcassert.Field{Name: "a", Ref: true},
			gcassert.Field{Name: "b", Ref: true},
			gcassert.Field{Name: "v"})
		th := vm.NewThread("main")
		fr := th.Push(24)

		for round := 0; round < 5; round++ {
			// Allocate a random graph rooted in a random subset of slots.
			for i := 0; i < 200; i++ {
				var a gcassert.Ref
				switch rng.Intn(3) {
				case 0:
					a = th.New(node)
				case 1:
					a = th.NewArray(gcassert.TRefArray, rng.Intn(20))
				default:
					a = th.NewArray(gcassert.TWordArray, rng.Intn(64))
				}
				fr.Set(rng.Intn(24), a)
				// Random edges from rooted nodes into the new object.
				for j := 0; j < 24; j++ {
					src := fr.Get(j)
					if src == gcassert.Nil || rng.Intn(8) != 0 {
						continue
					}
					switch vm.Space().TypeOf(src) {
					case node:
						vm.SetRef(src, rng.Intn(2), a)
					case gcassert.TRefArray:
						if n := vm.ArrayLen(src); n > 0 {
							vm.SetRefAt(src, rng.Intn(n), a)
						}
					}
				}
			}
			// Drop a random subset of roots, then collect.
			for j := 0; j < 24; j++ {
				if rng.Intn(3) == 0 {
					fr.Set(j, gcassert.Nil)
				}
			}
			col := vm.Collect()
			snap, ok := vm.LatestCensus()
			if !ok {
				t.Logf("seed %d round %d: no census snapshot", seed, round)
				return false
			}

			// Grand totals against the collection record and the allocator.
			if snap.GC != col.Seq || snap.TotalObjects != uint64(col.ObjectsLive) {
				t.Logf("seed %d round %d: census %d objects @gc%d, collection %d @gc%d",
					seed, round, snap.TotalObjects, snap.GC, col.ObjectsLive, col.Seq)
				return false
			}
			hs := vm.HeapStats()
			if snap.TotalCellWords != hs.LiveWords {
				t.Logf("seed %d round %d: census %d cell words, allocator %d",
					seed, round, snap.TotalCellWords, hs.LiveWords)
				return false
			}
			if snap.TotalObjects != uint64(hs.LiveObjects) {
				t.Logf("seed %d round %d: census %d objects, allocator %d",
					seed, round, snap.TotalObjects, hs.LiveObjects)
				return false
			}

			// Per-type totals against an independent post-sweep heap walk.
			space := vm.Space()
			type tot struct{ objects, words, cellWords uint64 }
			walk := map[heap.TypeID]*tot{}
			space.ForEachObject(func(a gcassert.Ref) bool {
				tt := space.TypeOf(a)
				w := walk[tt]
				if w == nil {
					w = &tot{}
					walk[tt] = w
				}
				w.objects++
				w.words += uint64(space.Registry().Info(tt).SizeWords(space.ArrayLen(a)))
				w.cellWords += uint64(space.CellWords(a))
				return true
			})
			if len(walk) != len(snap.Types) {
				t.Logf("seed %d round %d: walk has %d types, census %d", seed, round, len(walk), len(snap.Types))
				return false
			}
			for i := range snap.Types {
				row := &snap.Types[i]
				w := walk[row.Type]
				if w == nil || w.objects != row.Objects || w.words != row.Words || w.cellWords != row.CellWords {
					t.Logf("seed %d round %d: type %s census {%d %d %d} walk %+v",
						seed, round, row.TypeName, row.Objects, row.Words, row.CellWords, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCensusConcurrentReaders hammers the snapshot ring from reader
// goroutines while the runtime collects — the scrape-while-running contract,
// meaningful mainly under -race.
func TestCensusConcurrentReaders(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      1 << 20,
		Introspection:  true,
		CensusRingSize: 8,
	})
	node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
	th := vm.NewThread("main")
	fr := th.Push(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink int
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range vm.CensusSnapshots() {
					sink += len(s.Types)
				}
				if s, ok := vm.LatestCensus(); ok {
					sink += int(s.TotalObjects)
				}
				sink += len(vm.Census().Suspects(0, 3))
				_ = sink
			}
		}()
	}
	for i := 0; i < 200; i++ {
		head := th.New(node)
		vm.SetRef(head, 0, fr.Get(0))
		fr.Set(0, head)
		if i%10 == 0 {
			vm.Collect()
		}
	}
	close(stop)
	wg.Wait()
	if _, ok := vm.LatestCensus(); !ok {
		t.Fatal("no census snapshots after collections")
	}
}
