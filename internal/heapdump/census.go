// Package heapdump is the heap-introspection layer: it piggybacks a
// per-type census on the collector's mark phase (one callback per marked
// object — the tracer already visits every live object, so the census rides
// the same "nearly free" budget the paper claims for assertion checks),
// retains a bounded ring of per-GC snapshots, diffs them into Cork-style
// leak-suspect rankings, and computes dominator trees / retained sizes over
// an on-demand graph capture.
//
// The package answers the question PR 1's telemetry could not: not *when*
// the GC ran, but *what the heap looked like* each time it did.
//
// Concurrency: census accumulation runs inside stop-the-world collections on
// the runtime's goroutine; the snapshot ring is mutex-guarded so HTTP
// scrapers may read Snapshots/Latest/Suspects while the workload runs.
// Dominator analysis walks the managed heap and must only run while the
// runtime is quiescent, like heap probes.
package heapdump

import (
	"math/bits"
	"sync"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
	"gcassert/internal/version"
)

// NumSizeBuckets is the number of log2 size-histogram buckets per type.
// Bucket i counts objects whose size in words w satisfies 2^(i-1) < w <= 2^i
// (bucket 0: w <= 1); the last bucket absorbs everything larger, which at
// 2^22 words exceeds any allocatable span.
const NumSizeBuckets = 23

// SizeBucket returns the histogram bucket for an object of the given size in
// words.
func SizeBucket(words int) int {
	if words <= 1 {
		return 0
	}
	b := bits.Len(uint(words - 1))
	if b >= NumSizeBuckets {
		return NumSizeBuckets - 1
	}
	return b
}

// TypeCensus is the live-heap footprint of one type at one collection.
type TypeCensus struct {
	// Type and TypeName identify the type.
	Type     heap.TypeID `json:"type"`
	TypeName string      `json:"type_name"`
	// Objects is the number of live instances marked this cycle.
	Objects uint64 `json:"objects"`
	// Words is their total payload size in heap words (headers included);
	// CellWords the allocator footprint (size-class cells / block spans) —
	// the quantity that reconciles against heap.Stats.LiveWords.
	Words     uint64 `json:"words"`
	CellWords uint64 `json:"cell_words"`
	// SizeHist is the log2 size histogram (see SizeBucket); trailing zero
	// buckets are trimmed.
	SizeHist []uint32 `json:"size_hist,omitempty"`
}

// Bytes returns the payload footprint in bytes.
func (t *TypeCensus) Bytes() uint64 { return t.Words * heap.WordBytes }

// CellBytes returns the allocator footprint in bytes.
func (t *TypeCensus) CellBytes() uint64 { return t.CellWords * heap.WordBytes }

// SiteCensus is the live-heap footprint of one (type, allocation site)
// group. Rows exist only when the heap has provenance enabled; objects
// whose allocation was not sampled (or predates enabling) fall into the
// empty site.
type SiteCensus struct {
	TypeName string `json:"type_name"`
	// Site is the registered allocation-site description ("" = unknown).
	Site    string `json:"site"`
	Objects uint64 `json:"objects"`
	Words   uint64 `json:"words"`
}

// Bytes returns the group's payload footprint in bytes.
func (s *SiteCensus) Bytes() uint64 { return s.Words * heap.WordBytes }

// Snapshot is the per-type census of one collection.
type Snapshot struct {
	// GC is the collector's sequence number for the cycle; Reason its
	// trigger label; UnixNs the census capture time.
	GC     uint64 `json:"gc"`
	Reason string `json:"reason"`
	UnixNs int64  `json:"unix_ns"`
	// TotalObjects / TotalWords / TotalCellWords sum the per-type rows.
	// TotalObjects equals the cycle's ObjectsLive and TotalCellWords equals
	// heap.Stats.LiveWords at the end of the cycle (property-tested).
	TotalObjects   uint64 `json:"total_objects"`
	TotalWords     uint64 `json:"total_words"`
	TotalCellWords uint64 `json:"total_cell_words"`
	// Types holds the non-empty per-type rows, largest payload first.
	Types []TypeCensus `json:"types"`
	// Sites holds the per-(type, site) rows, largest payload first; nil
	// unless allocation-site provenance is enabled.
	Sites []SiteCensus `json:"sites,omitempty"`
}

// ByType returns the row for a type, or nil if the type had no live
// instances in this snapshot.
func (s *Snapshot) ByType(t heap.TypeID) *TypeCensus {
	for i := range s.Types {
		if s.Types[i].Type == t {
			return &s.Types[i]
		}
	}
	return nil
}

// Config configures a Census.
type Config struct {
	// Ring bounds the retained snapshots (default 64).
	Ring int
}

// Census accumulates the per-type live census during each mark phase and
// snapshots it at the end of every collection. It implements
// collector.Observer for the GC lifecycle; the per-object half is Observe,
// installed as the collector's OnMark callback.
type Census struct {
	space *heap.Space

	// Accumulation arrays, indexed by TypeID; touched only inside
	// stop-the-world collections.
	objects   []uint64
	words     []uint64
	cellWords []uint64
	hist      [][NumSizeBuckets]uint32
	// sites accumulates per-(type, site) rows, keyed TypeID<<32 | SiteID.
	// It stays nil until the space has provenance enabled, so the
	// provenance-off mark path pays exactly one nil-check here.
	sites  map[uint64]*siteTotals
	active bool
	seq    uint64
	reason collector.Reason

	// onSnapshot, if set, runs after each snapshot is recorded (still inside
	// the collection) — the runtime uses it to publish census gauges.
	onSnapshot func(*Snapshot)

	// identity, when set, stamps exported census documents.
	identity *version.Identity

	mu    sync.Mutex
	ring  []Snapshot // ring[head] is the oldest retained snapshot
	head  int
	count int
	total uint64
}

var _ collector.Observer = (*Census)(nil)

// NewCensus creates a census over the space.
func NewCensus(space *heap.Space, cfg Config) *Census {
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	return &Census{space: space, ring: make([]Snapshot, 0, cfg.Ring)}
}

// SetOnSnapshot installs a callback invoked after every recorded snapshot,
// inside the stop-the-world collection. It must not touch the managed heap.
func (c *Census) SetOnSnapshot(fn func(*Snapshot)) { c.onSnapshot = fn }

// SetIdentity installs the instance identity stamped on exported census
// documents. Install at wiring time.
func (c *Census) SetIdentity(id version.Identity) { c.identity = &id }

// Observe accounts one marked object. It is installed as the collector's
// OnMark callback and runs once per live object per collection.
func (c *Census) Observe(a heap.Addr) {
	t := c.space.TypeOf(a)
	if int(t) >= len(c.objects) {
		c.grow()
	}
	sz := c.space.Registry().Info(t).SizeWords(c.space.ArrayLen(a))
	c.objects[t]++
	c.words[t] += uint64(sz)
	c.cellWords[t] += uint64(c.space.CellWords(a))
	c.hist[t][SizeBucket(sz)]++
	if c.sites != nil {
		k := uint64(t)<<32 | uint64(c.space.SiteOf(a))
		e := c.sites[k]
		if e == nil {
			e = &siteTotals{}
			c.sites[k] = e
		}
		e.objects++
		e.words += uint64(sz)
	}
}

// siteTotals is one (type, site) accumulation cell.
type siteTotals struct {
	objects uint64
	words   uint64
}

// grow extends the accumulation arrays to cover every registered type (types
// may be defined between collections).
func (c *Census) grow() {
	n := c.space.Registry().NumTypes()
	for len(c.objects) < n {
		c.objects = append(c.objects, 0)
		c.words = append(c.words, 0)
		c.cellWords = append(c.cellWords, 0)
		c.hist = append(c.hist, [NumSizeBuckets]uint32{})
	}
}

// GCBegin implements collector.Observer: reset the accumulation arrays.
func (c *Census) GCBegin(seq uint64, reason collector.Reason) {
	c.grow()
	for i := range c.objects {
		c.objects[i] = 0
		c.words[i] = 0
		c.cellWords[i] = 0
		c.hist[i] = [NumSizeBuckets]uint32{}
	}
	// The site table follows provenance lazily: enabling provenance between
	// collections starts producing site rows at the next census.
	if c.space.Provenance() != nil {
		c.sites = make(map[uint64]*siteTotals)
	} else {
		c.sites = nil
	}
	c.active = true
	c.seq = seq
	c.reason = reason
}

// PhaseBegin implements collector.Observer (no-op).
func (c *Census) PhaseBegin(p collector.Phase) {}

// PhaseEnd implements collector.Observer (no-op).
func (c *Census) PhaseEnd(p collector.Phase, d time.Duration) {}

// GCEnd implements collector.Observer: snapshot the accumulated census into
// the ring. After the sweep the marked set is exactly the live set, so the
// snapshot is the live heap at the end of the cycle.
func (c *Census) GCEnd(col *collector.Collection) {
	if !c.active {
		return
	}
	c.active = false
	snap := c.buildSnapshot()
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, snap)
	} else {
		c.ring[c.head] = snap
		c.head = (c.head + 1) % len(c.ring)
	}
	c.count = len(c.ring)
	c.total++
	c.mu.Unlock()
	if c.onSnapshot != nil {
		c.onSnapshot(&snap)
	}
}

// buildSnapshot renders the accumulation arrays into a Snapshot, rows sorted
// by payload words descending (name ascending on ties) for stable display.
func (c *Census) buildSnapshot() Snapshot {
	reg := c.space.Registry()
	snap := Snapshot{GC: c.seq, Reason: string(c.reason), UnixNs: time.Now().UnixNano()}
	for t := range c.objects {
		if c.objects[t] == 0 {
			continue
		}
		row := TypeCensus{
			Type:      heap.TypeID(t),
			TypeName:  reg.Name(heap.TypeID(t)),
			Objects:   c.objects[t],
			Words:     c.words[t],
			CellWords: c.cellWords[t],
		}
		last := -1
		for b := 0; b < NumSizeBuckets; b++ {
			if c.hist[t][b] != 0 {
				last = b
			}
		}
		if last >= 0 {
			row.SizeHist = append([]uint32(nil), c.hist[t][:last+1]...)
		}
		snap.TotalObjects += row.Objects
		snap.TotalWords += row.Words
		snap.TotalCellWords += row.CellWords
		snap.Types = append(snap.Types, row)
	}
	sortRows(snap.Types)
	if prov := c.space.Provenance(); prov != nil && len(c.sites) > 0 {
		snap.Sites = make([]SiteCensus, 0, len(c.sites))
		for k, e := range c.sites {
			snap.Sites = append(snap.Sites, SiteCensus{
				TypeName: reg.Name(heap.TypeID(k >> 32)),
				Site:     prov.Name(heap.SiteID(k)),
				Objects:  e.objects,
				Words:    e.words,
			})
		}
		sortSiteRows(snap.Sites)
	}
	return snap
}

func sortSiteRows(rows []SiteCensus) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && siteRowLess(&rows[j], &rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func siteRowLess(a, b *SiteCensus) bool {
	if a.Words != b.Words {
		return a.Words > b.Words
	}
	if a.TypeName != b.TypeName {
		return a.TypeName < b.TypeName
	}
	return a.Site < b.Site
}

// Snapshots returns the retained snapshots, oldest first.
func (c *Census) Snapshots() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Snapshot, 0, c.count)
	for i := 0; i < c.count; i++ {
		out = append(out, c.ring[(c.head+i)%c.count])
	}
	return out
}

// Last returns the n most recent snapshots, oldest first (n <= 0 or n larger
// than the retained count returns everything).
func (c *Census) Last(n int) []Snapshot {
	all := c.Snapshots()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Latest returns the most recent snapshot and whether one exists.
func (c *Census) Latest() (Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return Snapshot{}, false
	}
	return c.ring[(c.head+c.count-1)%c.count], true
}

// Total returns the number of snapshots ever recorded (retained <= total
// once the ring wraps).
func (c *Census) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

func sortRows(rows []TypeCensus) {
	// Insertion sort: row counts are small (number of live types) and this
	// avoids pulling package sort into the per-GC path's closure allocs.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rowLess(&rows[j], &rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowLess(a, b *TypeCensus) bool {
	if a.Words != b.Words {
		return a.Words > b.Words
	}
	return a.TypeName < b.TypeName
}
