package heapdump

import (
	"encoding/json"
	"io"
)

// JSON export envelopes. These are the wire format of the
// /debug/gcassert/census and /debug/gcassert/leaks endpoints and of
// `gcheap -json`; tools that archive snapshots feed the same shape back into
// RankSuspects for offline analysis.

// CensusDocument is the envelope for exported census snapshots.
type CensusDocument struct {
	// Total is the number of snapshots ever taken (>= len(Snapshots) once
	// the ring has wrapped).
	Total uint64 `json:"total"`
	// Snapshots is oldest-first.
	Snapshots []Snapshot `json:"snapshots"`
}

// LeaksDocument is the envelope for exported leak suspects.
type LeaksDocument struct {
	// Window is the number of snapshots diffed; Suspects is highest score
	// first.
	Window   int       `json:"window"`
	Suspects []Suspect `json:"suspects"`
}

// WriteJSON writes the last n snapshots (n <= 0: all retained) as a
// CensusDocument.
func (c *Census) WriteJSON(w io.Writer, n int) error {
	doc := CensusDocument{Total: c.Total(), Snapshots: c.Last(n)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteSuspectsJSON ranks suspects over the last `window` snapshots and
// writes them as a LeaksDocument.
func (c *Census) WriteSuspectsJSON(w io.Writer, window, top int) error {
	snaps := c.Last(window)
	doc := LeaksDocument{Window: len(snaps), Suspects: RankSuspects(snaps, top)}
	if doc.Suspects == nil {
		doc.Suspects = []Suspect{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
