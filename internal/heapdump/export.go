package heapdump

import (
	"encoding/json"
	"fmt"
	"io"

	"gcassert/internal/version"
)

// JSON export envelopes. These are the wire format of the
// /debug/gcassert/census and /debug/gcassert/leaks endpoints and of
// `gcheap -json`; tools that archive snapshots feed the same shape back into
// RankSuspects for offline analysis.

// CensusSchemaVersion is the CensusDocument format version written by this
// package. Version 1 added the Schema and Instance stamps; documents from
// earlier builds carry schema 0 and no identity, and still read.
const CensusSchemaVersion = 1

// CensusDocument is the envelope for exported census snapshots.
type CensusDocument struct {
	// Schema versions the document format; Instance identifies who exported
	// it (nil in documents from pre-stamp builds).
	Schema   int               `json:"schema"`
	Instance *version.Identity `json:"instance,omitempty"`
	// Total is the number of snapshots ever taken (>= len(Snapshots) once
	// the ring has wrapped).
	Total uint64 `json:"total"`
	// Snapshots is oldest-first.
	Snapshots []Snapshot `json:"snapshots"`
}

// ReadCensusDocument parses an exported census document, accepting every
// schema version up to this build's and rejecting newer ones with a clear
// error.
func ReadCensusDocument(r io.Reader) (CensusDocument, error) {
	var doc CensusDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return CensusDocument{}, fmt.Errorf("heapdump: parsing census document: %w", err)
	}
	if doc.Schema < 0 || doc.Schema > CensusSchemaVersion {
		return CensusDocument{}, fmt.Errorf(
			"heapdump: census document schema version %d not supported (this build reads versions 0 through %d); re-export the census or use a matching tool build",
			doc.Schema, CensusSchemaVersion)
	}
	return doc, nil
}

// LeaksDocument is the envelope for exported leak suspects.
type LeaksDocument struct {
	// Window is the number of snapshots diffed; Suspects is highest score
	// first.
	Window   int       `json:"window"`
	Suspects []Suspect `json:"suspects"`
}

// WriteJSON writes the last n snapshots (n <= 0: all retained) as a
// CensusDocument.
func (c *Census) WriteJSON(w io.Writer, n int) error {
	doc := CensusDocument{
		Schema:    CensusSchemaVersion,
		Instance:  c.identity,
		Total:     c.Total(),
		Snapshots: c.Last(n),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteSuspectsJSON ranks suspects over the last `window` snapshots and
// writes them as a LeaksDocument.
func (c *Census) WriteSuspectsJSON(w io.Writer, window, top int) error {
	snaps := c.Last(window)
	doc := LeaksDocument{Window: len(snaps), Suspects: RankSuspects(snaps, top)}
	if doc.Suspects == nil {
		doc.Suspects = []Suspect{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
