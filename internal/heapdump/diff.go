package heapdump

import (
	"gcassert/internal/heap"
	"gcassert/internal/trend"
)

// Leak-suspect ranking in the style of Cork (Jump & McKinley, POPL 2007; see
// the paper's §4.2): instead of a single snapshot, watch the per-type live
// volume across collections and rank types whose footprint grows steadily.
// A type that grows in nearly every window and has a large positive slope is
// a leak suspect; a type that merely spiked once is not. The scoring itself
// lives in internal/trend, shared with the fleet-level cross-instance
// ranking so one definition of "growing" governs both views.

// Suspect is one ranked leak suspect derived from a window of snapshots.
type Suspect struct {
	// Type and TypeName identify the suspect type.
	Type     heap.TypeID `json:"type"`
	TypeName string      `json:"type_name"`
	// FirstGC/LastGC bound the analysis window (collector sequence numbers).
	FirstGC uint64 `json:"first_gc"`
	LastGC  uint64 `json:"last_gc"`
	// StartWords/EndWords and StartObjects/EndObjects are the type's live
	// payload at the window's ends.
	StartWords   uint64 `json:"start_words"`
	EndWords     uint64 `json:"end_words"`
	StartObjects uint64 `json:"start_objects"`
	EndObjects   uint64 `json:"end_objects"`
	// SlopeWordsPerGC and SlopeObjectsPerGC are least-squares growth rates
	// over the window.
	SlopeWordsPerGC   float64 `json:"slope_words_per_gc"`
	SlopeObjectsPerGC float64 `json:"slope_objects_per_gc"`
	// Growth is the fraction of adjacent snapshot pairs in which the type's
	// live words grew (1.0 = grew every single collection).
	Growth float64 `json:"growth"`
	// Score ranks suspects: slope weighted by growth consistency, in words
	// per GC. Types that shrink or oscillate score near zero.
	Score float64 `json:"score"`
	// Sites breaks the suspect down by allocation site, from the newest
	// snapshot in the window (largest footprint first, top rows only). Nil
	// when the census ran without provenance — with it, the ranking answers
	// not just "what is growing" but "who keeps allocating it".
	Sites []SiteCensus `json:"sites,omitempty"`
}

// maxSuspectSites bounds the per-suspect site breakdown.
const maxSuspectSites = 5

// SlopeBytesPerGC returns the growth rate in bytes per collection.
func (s *Suspect) SlopeBytesPerGC() float64 { return s.SlopeWordsPerGC * heap.WordBytes }

// Suspects diffs the last `window` snapshots (0 = all retained) and returns
// the top leak suspects, highest score first. At least two snapshots are
// required; fewer yields nil. top <= 0 returns all growing types.
func (c *Census) Suspects(window, top int) []Suspect {
	return RankSuspects(c.Last(window), top)
}

// RankSuspects computes leak suspects over an explicit snapshot sequence
// (oldest first). Exposed separately so offline tools can rank saved
// snapshot files without a live census.
func RankSuspects(snaps []Snapshot, top int) []Suspect {
	if len(snaps) < 2 {
		return nil
	}
	// series[t] holds one point per snapshot for every type live anywhere in
	// the window (types absent from a snapshot contribute zero — a type that
	// died out mid-window must not look like growth from its reappearance).
	type point struct{ words, objects uint64 }
	series := map[heap.TypeID][]point{}
	names := map[heap.TypeID]string{}
	for i, s := range snaps {
		for j := range s.Types {
			row := &s.Types[j]
			if _, ok := series[row.Type]; !ok {
				series[row.Type] = make([]point, len(snaps))
				names[row.Type] = row.TypeName
			}
			series[row.Type][i] = point{row.Words, row.Objects}
		}
	}
	var out []Suspect
	last := &snaps[len(snaps)-1]
	words := make([]float64, len(snaps))
	objects := make([]float64, len(snaps))
	for t, pts := range series {
		// Slope against snapshot index, not GC seq: snapshot spacing in GC
		// numbers is uniform for a single collector, and index keeps
		// minor/full interleavings sane.
		for i, p := range pts {
			words[i] = float64(p.words)
			objects[i] = float64(p.objects)
		}
		fit := trend.Score(words)
		if fit.Score <= 0 {
			continue
		}
		slopeW, slopeO, growth, score := fit.Slope, trend.Slope(objects), fit.Growth, fit.Score
		var sites []SiteCensus
		for i := range last.Sites {
			if last.Sites[i].TypeName == names[t] {
				sites = append(sites, last.Sites[i])
				if len(sites) == maxSuspectSites {
					break
				}
			}
		}
		out = append(out, Suspect{
			Type:              t,
			TypeName:          names[t],
			Sites:             sites,
			FirstGC:           snaps[0].GC,
			LastGC:            snaps[len(snaps)-1].GC,
			StartWords:        pts[0].words,
			EndWords:          pts[len(pts)-1].words,
			StartObjects:      pts[0].objects,
			EndObjects:        pts[len(pts)-1].objects,
			SlopeWordsPerGC:   slopeW,
			SlopeObjectsPerGC: slopeO,
			Growth:            growth,
			Score:             score,
		})
	}
	sortSuspects(out)
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

func sortSuspects(s []Suspect) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && suspectLess(&s[j], &s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func suspectLess(a, b *Suspect) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.TypeName < b.TypeName
}
