// Package collector implements the stop-the-world mark-sweep garbage
// collector that GC assertions piggyback on. It mirrors the structure the
// paper relies on in Jikes RVM's MarkSweep plan:
//
//   - an optional ownership pre-phase run by the assertion engine before
//     root scanning (§2.5.2),
//   - a depth-first mark phase over a worklist in which the current object
//     stays on the worklist with its low-order address bit set, so that at
//     any moment the set-bit entries spell out the complete path from a root
//     to the current object (§2.7),
//   - per-edge assertion checks performed only in Infrastructure mode, so
//     the Base configuration measures the unmodified collector,
//   - a sweep phase provided by the heap.
//
// The assertion engine (internal/core) plugs in through the Hooks interface;
// the collector itself knows nothing about individual assertion kinds.
package collector

import (
	"time"

	"gcassert/internal/collector/parmark"
	"gcassert/internal/heap"
)

// Root is one root slot: a location outside the heap holding a reference.
// Slot points at the live storage (a thread frame slot or a global), so the
// collector reads the current value and force-true reactions can clear it.
type Root struct {
	// Slot is the storage holding the reference.
	Slot *heap.Addr
	// Desc names the root for violation reports (e.g. "main.locals" or
	// "global:orderTable").
	Desc string
}

// RootScanner enumerates all root slots. The runtime implements it over
// thread frames and the global table.
type RootScanner interface {
	// Roots calls yield once per root slot.
	Roots(yield func(r Root))
}

// EdgeAction is the assertion engine's verdict on an edge.
type EdgeAction uint8

// Edge actions returned by Hooks.OnEdge.
const (
	// EdgeProceed continues normal tracing.
	EdgeProceed EdgeAction = iota
	// EdgeSkip does not trace through the edge (the child is not marked via
	// this edge).
	EdgeSkip
	// EdgeClear severs the edge — the slot is set to nil — and skips it.
	// This implements the force-the-assertion-true reaction (§2.6).
	EdgeClear
)

// Hooks is the assertion engine's interface into the collection cycle. All
// methods are invoked only in Infrastructure mode.
type Hooks interface {
	// PreMark runs before root scanning; the ownership phase lives here.
	PreMark(c *Collector)
	// OnEdge is called for a reference edge discovered during the normal
	// scan — from a root (parent == heap.Nil, slot == -1) or from a parent
	// object's slot — when the child carries assertion flags, or (if
	// WantAllFirstMarks) for every first encounter. marked reports whether
	// the child was already marked.
	OnEdge(c *Collector, parent heap.Addr, slot int, child heap.Addr, marked bool) EdgeAction
	// WantAllFirstMarks asks the engine whether it needs OnEdge for every
	// unmarked child even without assertion flags (instance counting).
	// Consulted once per collection.
	WantAllFirstMarks() bool
	// PostMark runs after tracing completes, before sweep: volume-assertion
	// checks and weak-registration pruning happen here.
	PostMark(c *Collector)
}

// ParallelHooks is an optional extension of Hooks implemented by engines
// whose per-edge checks can run sharded across parallel mark workers. When
// the collector's worker count is above one and the hooks implement this
// interface, the mark phase runs on the parmark engine; otherwise it falls
// back to the sequential reference marker.
type ParallelHooks interface {
	Hooks
	// ParallelChecks returns the check binding for one collection at the
	// given worker count (gc is the collection's sequence number), or nil
	// to demand the sequential marker for this cycle.
	ParallelChecks(workers int, gc uint64) parmark.Checks
}

// Collector drives collections over a Space.
type Collector struct {
	space *heap.Space
	roots RootScanner

	// hooks is non-nil only when infrastructure mode is enabled. costHooks
	// caches the CostHooks type assertion so Collect pays one nil-check for
	// cost harvesting instead of an interface assertion per cycle.
	hooks     Hooks
	costHooks CostHooks
	infra     bool

	// workers is the mark-phase worker count (1 = sequential marker); par
	// is the lazily created parallel engine, parRoots its reusable root
	// buffer.
	workers  int
	par      *parmark.Engine
	parRoots []parmark.Root

	// stack is the mark worklist. In infrastructure mode entries may carry
	// the visited bit (bit 0), which is guaranteed free by word alignment.
	stack []heap.Addr

	// curParent and curRootDesc identify the edge source while scanning;
	// col is the in-progress collection record.
	curParent   heap.Addr
	curRootDesc string
	col         *Collection
	// allFirstMarks caches Hooks.WantAllFirstMarks for the current cycle.
	allFirstMarks bool

	// KeepMarks makes the sweep retain survivors' mark bits (sticky marks),
	// which the generational mode uses for minor collections.
	KeepMarks bool
	// Observer, if non-nil, receives collection-lifecycle callbacks
	// (telemetry). The disabled path costs one nil-check per phase.
	Observer Observer
	// OnMark, if non-nil, is invoked once for every object the trace marks,
	// in both Base and Infrastructure configurations. The heap-census
	// introspection layer hangs off this: the collector already visits every
	// live object, so a per-type census is one callback away (the paper's
	// "nearly free" piggybacking argument applied to observability). When
	// nil (the default) the mark hot path pays a single predictable branch
	// and zero allocations, mirroring the Observer pattern.
	OnMark func(heap.Addr)
	// PreSweep, if non-nil, runs after marking (and after PostMark) and
	// before the sweep. The generational mode uses it to prune the assertion
	// engine's weak tables on minor collections, where hooks do not run.
	PreSweep func()
	// ExplainTrigger, if non-nil, is consulted at the top of every collection
	// to stamp the record with the mutator-side story behind the Reason
	// (occupancy, allocation rate, dominant thread). The runtime installs it;
	// when nil the cost is a single nil-check per cycle.
	ExplainTrigger func(reason Reason) Trigger

	gcCount uint64
	stats   Stats
	last    Collection

	// requestTag, when non-empty, stamps every collection record with the
	// request currently executing (Collection.Request). Set and cleared by
	// the tracing layer on the runtime's own goroutine, read at the top of
	// Collect on the same goroutine — no synchronization needed, same
	// single-goroutine discipline as the rest of the collector.
	requestTag string
}

// New creates a collector over the given space and roots. hooks may be nil;
// infrastructure mode with nil hooks still pays for path tracking and edge
// dispatch, which is exactly the paper's "Infrastructure" configuration
// before any assertions are added.
func New(space *heap.Space, roots RootScanner, hooks Hooks, infra bool) *Collector {
	c := &Collector{space: space, roots: roots, hooks: hooks, infra: infra, workers: 1}
	if ch, ok := hooks.(CostHooks); ok {
		c.costHooks = ch
	}
	return c
}

// SetWorkers selects the mark-phase worker count. 1 (the default) runs the
// sequential reference marker; n > 1 runs the work-stealing parallel mark
// engine, provided the cycle supports it (hooks, if any, must implement
// ParallelHooks, and sticky-mark collections always mark sequentially).
// Callable between collections only.
func (c *Collector) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured mark-phase worker count.
func (c *Collector) Workers() int { return c.workers }

// Space returns the collector's heap.
func (c *Collector) Space() *heap.Space { return c.space }

// Infrastructure reports whether assertion infrastructure is enabled.
func (c *Collector) Infrastructure() bool { return c.infra }

// GCCount returns the number of completed collections.
func (c *Collector) GCCount() uint64 { return c.gcCount }

// SetRequestTag names the request currently executing on the mutator; an
// empty tag clears it. Every collection records the tag active when its
// pause began (Collection.Request), giving the tracing layer exact
// request-to-GC provenance instead of wall-clock inference. Call it from
// the runtime's goroutine only, between collections.
func (c *Collector) SetRequestTag(tag string) { c.requestTag = tag }

// Collect runs one full stop-the-world collection and returns its record.
// reason is recorded in the stats (typically ReasonAllocFailure or
// ReasonForced).
func (c *Collector) Collect(reason Reason) Collection {
	start := time.Now()
	col := Collection{Seq: c.gcCount, Reason: reason, Request: c.requestTag}
	if c.ExplainTrigger != nil {
		col.Trigger = c.ExplainTrigger(reason)
	}
	obs := c.Observer
	if obs != nil {
		obs.GCBegin(c.gcCount, reason)
	}

	if c.infra && c.hooks != nil {
		if obs != nil {
			obs.PhaseBegin(PhaseOwnership)
		}
		t0 := time.Now()
		c.hooks.PreMark(c)
		col.OwnershipTime = time.Since(t0)
		if obs != nil {
			obs.PhaseEnd(PhaseOwnership, col.OwnershipTime)
		}
	}

	if obs != nil {
		obs.PhaseBegin(PhaseMark)
	}
	t0 := time.Now()
	parallel := false
	if c.workers > 1 {
		if c.KeepMarks {
			col.Fallback = FallbackKeepMarks
		} else {
			parallel = c.markParallel(&col)
		}
	}
	if !parallel {
		if c.infra {
			c.markInfra(&col)
		} else {
			c.markBase(&col)
		}
		col.Workers = 1
	}
	col.MarkTime = time.Since(t0)
	if obs != nil {
		obs.PhaseEnd(PhaseMark, col.MarkTime)
	}

	if c.infra && c.hooks != nil {
		c.hooks.PostMark(c)
	}

	if c.PreSweep != nil {
		c.PreSweep()
	}

	if obs != nil {
		obs.PhaseBegin(PhaseSweep)
	}
	t0 = time.Now()
	sw := c.space.Sweep(c.KeepMarks)
	col.SweepTime = time.Since(t0)
	if obs != nil {
		obs.PhaseEnd(PhaseSweep, col.SweepTime)
	}
	col.ObjectsFreed = sw.ObjectsFreed
	col.ObjectsLive = sw.ObjectsLive
	col.WordsFreed = sw.WordsFreed
	// Cost rows are harvested after the sweep: dead-verification counts
	// accrue in the engine's free hook while the sweep runs.
	if c.infra && c.costHooks != nil {
		col.AssertCost = c.costHooks.CollectionCosts()
	}
	col.TotalTime = time.Since(start)

	c.gcCount++
	c.stats.add(col)
	c.last = col
	if obs != nil {
		obs.GCEnd(&col)
	}
	return col
}

// Last returns the record of the most recent collection.
func (c *Collector) Last() Collection { return c.last }

// Stats returns cumulative collection statistics.
func (c *Collector) Stats() Stats { return c.stats }

// ResetStats zeroes the cumulative statistics (the GC count is preserved).
func (c *Collector) ResetStats() { c.stats = Stats{} }
