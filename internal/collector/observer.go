package collector

import "time"

// Reason is a stable label recording why a collection ran. It is a string
// type so ad-hoc reasons (tests, tools) still work, but all runtime-
// triggered collections use the typed constants below so telemetry labels
// never drift.
type Reason string

// Collection reasons used by the runtime.
const (
	// ReasonAllocFailure is a collection triggered by an allocation that
	// could not be satisfied.
	ReasonAllocFailure Reason = "alloc-failure"
	// ReasonForced is an explicit Collect call.
	ReasonForced Reason = "forced"
)

// Full returns the reason label for a full-heap collection escalated from
// this reason in generational mode (e.g. "alloc-failure-full").
func (r Reason) Full() Reason { return r + "-full" }

// Phase identifies one phase of a collection cycle.
type Phase uint8

// Collection phases, in cycle order.
const (
	// PhaseOwnership is the assertion engine's ownership pre-phase (§2.5.2);
	// it only runs in Infrastructure mode with hooks installed.
	PhaseOwnership Phase = iota
	// PhaseMark is the root scan plus transitive mark.
	PhaseMark
	// PhaseSweep is the heap sweep.
	PhaseSweep
)

func (p Phase) String() string {
	switch p {
	case PhaseOwnership:
		return "ownership"
	case PhaseMark:
		return "mark"
	case PhaseSweep:
		return "sweep"
	default:
		return "unknown"
	}
}

// Observer receives collection-lifecycle notifications. It is the
// collector's telemetry tap: when nil (the default) the only cost is one
// nil-check per phase — nothing is added to the per-object mark path, so
// Base-mode tracing is unperturbed.
//
// All methods run inside the stop-the-world collection on the runtime's
// goroutine; implementations must not touch the managed heap.
type Observer interface {
	// GCBegin runs first, before any phase.
	GCBegin(seq uint64, reason Reason)
	// PhaseBegin runs immediately before the phase's work starts.
	PhaseBegin(p Phase)
	// PhaseEnd runs after the phase completes; d is the measured duration
	// (identical to the value recorded in the Collection).
	PhaseEnd(p Phase, d time.Duration)
	// GCEnd receives the completed record after stats are accumulated.
	GCEnd(col *Collection)
}

// TeeObserver fans every callback out to multiple observers, in order. The
// runtime uses it when both telemetry and heap introspection are enabled.
type TeeObserver []Observer

// GCBegin implements Observer.
func (t TeeObserver) GCBegin(seq uint64, reason Reason) {
	for _, o := range t {
		o.GCBegin(seq, reason)
	}
}

// PhaseBegin implements Observer.
func (t TeeObserver) PhaseBegin(p Phase) {
	for _, o := range t {
		o.PhaseBegin(p)
	}
}

// PhaseEnd implements Observer.
func (t TeeObserver) PhaseEnd(p Phase, d time.Duration) {
	for _, o := range t {
		o.PhaseEnd(p, d)
	}
}

// GCEnd implements Observer.
func (t TeeObserver) GCEnd(col *Collection) {
	for _, o := range t {
		o.GCEnd(col)
	}
}
