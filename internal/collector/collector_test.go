package collector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcassert/internal/heap"
)

// sliceRoots is a test RootScanner over a plain slice.
type sliceRoots struct {
	slots []heap.Addr
}

func (r *sliceRoots) Roots(yield func(Root)) {
	for i := range r.slots {
		yield(Root{Slot: &r.slots[i], Desc: "test-root"})
	}
}

// testWorld builds a space with a simple node type (two ref fields).
func testWorld(t testing.TB, heapBytes int) (*heap.Space, heap.TypeID) {
	t.Helper()
	reg := heap.NewRegistry()
	node := reg.Define("N", heap.Field{Name: "a", Ref: true}, heap.Field{Name: "b", Ref: true})
	return heap.NewSpace(reg, heapBytes), node
}

// buildRandomGraph allocates n nodes with random edges and returns them.
func buildRandomGraph(t testing.TB, s *heap.Space, node heap.TypeID, n int, rng *rand.Rand) []heap.Addr {
	t.Helper()
	objs := make([]heap.Addr, n)
	for i := range objs {
		a, ok := s.Allocate(node, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		objs[i] = a
	}
	for _, a := range objs {
		for slot := 0; slot < 2; slot++ {
			if rng.Intn(3) > 0 { // 2/3 of slots populated
				s.SetRef(a, slot, objs[rng.Intn(n)])
			}
		}
	}
	return objs
}

// reachable computes the reachability closure in plain Go — the oracle.
func reachable(s *heap.Space, roots []heap.Addr) map[heap.Addr]bool {
	seen := map[heap.Addr]bool{}
	var stack []heap.Addr
	for _, r := range roots {
		if r != heap.Nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.ForEachRef(a, func(_ int, t heap.Addr) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		})
	}
	return seen
}

// liveSet enumerates all allocated objects after a collection.
func liveSet(s *heap.Space) map[heap.Addr]bool {
	out := map[heap.Addr]bool{}
	s.ForEachObject(func(a heap.Addr) bool {
		out[a] = true
		return true
	})
	return out
}

// checkCollectMatchesOracle runs one randomized reachability experiment.
func checkCollectMatchesOracle(t *testing.T, infra bool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, node := testWorld(t, 4<<20)
	objs := buildRandomGraph(t, s, node, 500, rng)
	roots := &sliceRoots{}
	for i := 0; i < 10; i++ {
		roots.slots = append(roots.slots, objs[rng.Intn(len(objs))])
	}
	roots.slots = append(roots.slots, heap.Nil) // nil roots are fine

	want := reachable(s, roots.slots)
	c := New(s, roots, nil, infra)
	col := c.Collect("test")
	got := liveSet(s)

	if len(got) != len(want) {
		t.Fatalf("seed %d infra=%v: live %d objects, oracle says %d", seed, infra, len(got), len(want))
	}
	for a := range want {
		if !got[a] {
			t.Fatalf("seed %d: reachable %v was collected", seed, a)
		}
	}
	if col.ObjectsMarked != len(want) {
		t.Errorf("ObjectsMarked = %d, want %d", col.ObjectsMarked, len(want))
	}
	if col.ObjectsFreed != 500-len(want) {
		t.Errorf("ObjectsFreed = %d, want %d", col.ObjectsFreed, 500-len(want))
	}
}

func TestCollectMatchesReachabilityOracleBase(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		checkCollectMatchesOracle(t, false, seed)
	}
}

func TestCollectMatchesReachabilityOracleInfra(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		checkCollectMatchesOracle(t, true, seed)
	}
}

// TestBaseAndInfraIdenticalLiveSets is the property that infrastructure mode
// is semantically transparent: both traces keep exactly the same objects.
func TestBaseAndInfraIdenticalLiveSets(t *testing.T) {
	prop := func(seed int64) bool {
		collectOnce := func(infra bool) int {
			rng := rand.New(rand.NewSource(seed))
			s, node := testWorld(t, 4<<20)
			objs := buildRandomGraph(t, s, node, 300, rng)
			roots := &sliceRoots{}
			for i := 0; i < 8; i++ {
				roots.slots = append(roots.slots, objs[rng.Intn(len(objs))])
			}
			c := New(s, roots, nil, infra)
			c.Collect("prop")
			return len(liveSet(s))
		}
		return collectOnce(false) == collectOnce(true)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// recordingHooks records OnEdge invocations and can request actions.
type recordingHooks struct {
	pre, post int
	edges     []heap.Addr
	action    func(child heap.Addr, marked bool) EdgeAction
	wantAll   bool
	paths     [][]heap.Addr
	collector *Collector
}

func (h *recordingHooks) PreMark(c *Collector)  { h.pre++ }
func (h *recordingHooks) PostMark(c *Collector) { h.post++ }
func (h *recordingHooks) WantAllFirstMarks() bool {
	return h.wantAll
}
func (h *recordingHooks) OnEdge(c *Collector, parent heap.Addr, slot int, child heap.Addr, marked bool) EdgeAction {
	h.edges = append(h.edges, child)
	h.paths = append(h.paths, c.CurrentPath())
	if h.action != nil {
		return h.action(child, marked)
	}
	return EdgeProceed
}

func TestHooksLifecycleAndAllFirstMarks(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	cc, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	s.SetRef(b, 0, cc)
	roots := &sliceRoots{slots: []heap.Addr{a}}

	h := &recordingHooks{wantAll: true}
	c := New(s, roots, h, true)
	c.Collect("t")
	if h.pre != 1 || h.post != 1 {
		t.Errorf("pre=%d post=%d", h.pre, h.post)
	}
	// With wantAll, every first mark produces an edge callback: a, b, cc.
	if len(h.edges) != 3 {
		t.Errorf("edges = %v", h.edges)
	}

	// Without wantAll and without assertion flags, no callbacks at all.
	h2 := &recordingHooks{}
	c2 := New(s, roots, h2, true)
	c2.Collect("t")
	if len(h2.edges) != 0 {
		t.Errorf("unflagged edges reported: %v", h2.edges)
	}

	// A flagged object is reported even without wantAll.
	s.SetFlag(cc, heap.FlagUnshared)
	h3 := &recordingHooks{}
	c3 := New(s, roots, h3, true)
	c3.Collect("t")
	if len(h3.edges) != 1 || h3.edges[0] != cc {
		t.Errorf("flagged edge: %v", h3.edges)
	}
}

func TestEdgeClearSeversReference(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	s.SetFlag(b, heap.FlagDead)
	roots := &sliceRoots{slots: []heap.Addr{a}}
	h := &recordingHooks{action: func(child heap.Addr, marked bool) EdgeAction {
		if child == b {
			return EdgeClear
		}
		return EdgeProceed
	}}
	c := New(s, roots, h, true)
	col := c.Collect("t")
	if s.GetRef(a, 0) != heap.Nil {
		t.Error("edge not severed")
	}
	if col.ObjectsFreed != 1 {
		t.Errorf("b not freed: %+v", col)
	}
}

func TestEdgeClearSeversRoot(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	b, _ := s.Allocate(node, 0)
	s.SetFlag(b, heap.FlagDead)
	roots := &sliceRoots{slots: []heap.Addr{b}}
	h := &recordingHooks{action: func(heap.Addr, bool) EdgeAction { return EdgeClear }}
	c := New(s, roots, h, true)
	col := c.Collect("t")
	if roots.slots[0] != heap.Nil {
		t.Error("root not cleared")
	}
	if col.ObjectsFreed != 1 {
		t.Error("b survived")
	}
}

func TestEdgeSkipDoesNotMark(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	s.SetFlag(b, heap.FlagDead) // flag so the hook sees it
	roots := &sliceRoots{slots: []heap.Addr{a}}
	h := &recordingHooks{action: func(child heap.Addr, _ bool) EdgeAction {
		if child == b {
			return EdgeSkip
		}
		return EdgeProceed
	}}
	c := New(s, roots, h, true)
	col := c.Collect("t")
	if col.ObjectsFreed != 1 {
		t.Error("skipped child should be collected (not marked)")
	}
	if s.GetRef(a, 0) != b {
		t.Error("skip must not clear the slot")
	}
}

// TestCurrentPathIsRealPath checks the paper's path-reconstruction property:
// whenever the hook fires, the visited-bit entries on the worklist form an
// actual chain of references from a root to the current parent.
func TestCurrentPathIsRealPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s, node := testWorld(t, 4<<20)
	objs := buildRandomGraph(t, s, node, 200, rng)
	// Flag a handful of objects so the hook fires mid-trace.
	for i := 0; i < 20; i++ {
		s.SetFlag(objs[rng.Intn(len(objs))], heap.FlagDead)
	}
	roots := &sliceRoots{slots: []heap.Addr{objs[0], objs[1], objs[2]}}
	h := &recordingHooks{}
	c := New(s, roots, h, true)
	c.Collect("t")
	if len(h.paths) == 0 {
		t.Fatal("no hook invocations")
	}
	rootSet := map[heap.Addr]bool{objs[0]: true, objs[1]: true, objs[2]: true}
	for _, path := range h.paths {
		if len(path) == 0 {
			continue // root edge: no ancestors
		}
		if !rootSet[path[0]] {
			t.Fatalf("path %v does not start at a root", path)
		}
		for i := 0; i+1 < len(path); i++ {
			found := false
			s.ForEachRef(path[i], func(_ int, tgt heap.Addr) {
				if tgt == path[i+1] {
					found = true
				}
			})
			if !found {
				t.Fatalf("path hop %v -> %v is not a real edge", path[i], path[i+1])
			}
		}
	}
}

func TestCollectorStatsAccumulate(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	roots := &sliceRoots{slots: []heap.Addr{a}}
	c := New(s, roots, nil, false)
	c.Collect("one")
	c.Collect("two")
	st := c.Stats()
	if st.Collections != 2 {
		t.Errorf("Collections = %d", st.Collections)
	}
	if c.GCCount() != 2 {
		t.Errorf("GCCount = %d", c.GCCount())
	}
	if c.Last().Reason != "two" {
		t.Errorf("Last reason = %q", c.Last().Reason)
	}
	if st.TotalGCTime <= 0 || st.MaxPause <= 0 {
		t.Errorf("times not recorded: %+v", st)
	}
	if st.String() == "" || c.Last().String() == "" {
		t.Error("stringers empty")
	}
	c.ResetStats()
	if c.Stats().Collections != 0 {
		t.Error("ResetStats")
	}
	if c.Infrastructure() {
		t.Error("Infrastructure() should be false here")
	}
	if c.Space() != s {
		t.Error("Space()")
	}
}

// TestSelfLoopAndCycles ensures cyclic structures are traced exactly once.
func TestSelfLoopAndCycles(t *testing.T) {
	for _, infra := range []bool{false, true} {
		s, node := testWorld(t, 1<<20)
		a, _ := s.Allocate(node, 0)
		b, _ := s.Allocate(node, 0)
		s.SetRef(a, 0, a) // self loop
		s.SetRef(a, 1, b)
		s.SetRef(b, 0, a) // cycle
		roots := &sliceRoots{slots: []heap.Addr{a}}
		c := New(s, roots, nil, infra)
		col := c.Collect("t")
		if col.ObjectsMarked != 2 || col.ObjectsFreed != 0 {
			t.Errorf("infra=%v: marked=%d freed=%d", infra, col.ObjectsMarked, col.ObjectsFreed)
		}
	}
}

// TestDuplicateRoots ensures an object referenced by many roots is marked
// once and survives.
func TestDuplicateRoots(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	roots := &sliceRoots{slots: []heap.Addr{a, a, a}}
	c := New(s, roots, nil, true)
	col := c.Collect("t")
	if col.ObjectsMarked != 1 {
		t.Errorf("marked = %d", col.ObjectsMarked)
	}
	if col.RootsScanned != 3 {
		t.Errorf("roots scanned = %d", col.RootsScanned)
	}
}

func TestPreSweepRuns(t *testing.T) {
	s, node := testWorld(t, 1<<20)
	a, _ := s.Allocate(node, 0)
	roots := &sliceRoots{slots: []heap.Addr{a}}
	c := New(s, roots, nil, false)
	ran := false
	c.PreSweep = func() { ran = true }
	c.Collect("t")
	if !ran {
		t.Error("PreSweep did not run")
	}
}
