package parmark_test

import (
	"math/rand"
	"testing"

	"gcassert/internal/collector/parmark"
	"gcassert/internal/heap"
)

// buildGraph allocates n objects with random edges and returns the space
// plus root slots covering a random subset of the objects.
func buildGraph(t *testing.T, seed int64, n, nroots int) (*heap.Space, []heap.Addr) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := heap.NewRegistry()
	node := reg.Define("Node",
		heap.Field{Name: "a", Ref: true},
		heap.Field{Name: "b", Ref: true},
		heap.Field{Name: "c", Ref: true})
	space := heap.NewSpace(reg, 16<<20)

	objs := make([]heap.Addr, 0, n)
	for i := 0; i < n; i++ {
		a, ok := space.Allocate(node, 0)
		if !ok {
			t.Fatalf("allocation %d failed", i)
		}
		objs = append(objs, a)
		// Random edges to already-allocated objects, plus a chain edge so
		// deep paths exist (stress for stealing and termination).
		if i > 0 {
			space.SetRef(a, 0, objs[rng.Intn(i)])
			space.SetRef(a, 1, objs[i-1])
			if rng.Intn(2) == 0 {
				space.SetRef(a, 2, objs[rng.Intn(i)])
			}
		}
	}
	roots := make([]heap.Addr, nroots)
	for i := range roots {
		roots[i] = objs[rng.Intn(len(objs))]
	}
	// Make the chain head reachable so the longest path is live.
	roots[0] = objs[len(objs)-1]
	return space, roots
}

// seqReachable computes the live set with a plain sequential traversal
// (no mark bits).
func seqReachable(space *heap.Space, roots []heap.Addr) map[heap.Addr]bool {
	seen := make(map[heap.Addr]bool)
	var stack []heap.Addr
	for _, r := range roots {
		if r != heap.Nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		space.ForEachRef(a, func(_ int, c heap.Addr) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		})
	}
	return seen
}

func parRoots(slots []heap.Addr) []parmark.Root {
	out := make([]parmark.Root, len(slots))
	for i := range slots {
		out[i] = parmark.Root{Slot: &slots[i], Desc: "test.root"}
	}
	return out
}

// TestMarkMatchesSequentialReachability checks, at several worker counts,
// that the parallel trace marks exactly the reachable set and counts every
// object exactly once across workers.
func TestMarkMatchesSequentialReachability(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for seed := int64(0); seed < 3; seed++ {
			space, roots := buildGraph(t, seed, 20000, 16)
			want := seqReachable(space, roots)

			eng := parmark.NewEngine(space, workers)
			res := eng.Mark(parRoots(roots), nil, false, nil)
			if res.ObjectsMarked != len(want) {
				t.Fatalf("workers=%d seed=%d: marked %d, want %d", workers, seed, res.ObjectsMarked, len(want))
			}
			var sum int
			for _, ws := range res.PerWorker {
				sum += ws.Marked
			}
			if sum != res.ObjectsMarked {
				t.Fatalf("workers=%d seed=%d: per-worker sum %d != total %d", workers, seed, sum, res.ObjectsMarked)
			}
			mismatch := 0
			space.ForEachObject(func(a heap.Addr) bool {
				if space.Marked(a) != want[a] {
					mismatch++
				}
				return true
			})
			if mismatch != 0 {
				t.Fatalf("workers=%d seed=%d: %d objects with wrong mark bit", workers, seed, mismatch)
			}
			space.Sweep(false)
		}
	}
}

// pathChecks records the claim edge of every object (WantAllClaims) and, at
// merge time, verifies breadcrumb paths for a sample of claimed objects.
type pathChecks struct {
	t      *testing.T
	space  *heap.Space
	shards []*pathShard
	merged func(*parmark.Resolver, []claimRec)
}

type claimRec struct {
	parent heap.Addr
	root   int32
	child  heap.Addr
}

type pathShard struct{ claims []claimRec }

func (s *pathShard) OnEdge(parent heap.Addr, slot int, root int32, child heap.Addr, old uint64, claimed bool) {
	if claimed {
		s.claims = append(s.claims, claimRec{parent: parent, root: root, child: child})
	}
}

func (s *pathShard) OnDeadForced(parent heap.Addr, slot int, root int32, child heap.Addr, old uint64) {
}

func (pc *pathChecks) ForceDead() bool     { return false }
func (pc *pathChecks) WantAllClaims() bool { return true }
func (pc *pathChecks) Shard(i int) parmark.Shard {
	for len(pc.shards) <= i {
		pc.shards = append(pc.shards, &pathShard{})
	}
	return pc.shards[i]
}

func (pc *pathChecks) Merge(r *parmark.Resolver) {
	var all []claimRec
	for _, sh := range pc.shards {
		all = append(all, sh.claims...)
	}
	pc.merged(r, all)
}

// TestBreadcrumbPathsAreComplete marks in parallel with breadcrumbs on and
// verifies, for every claimed object, that the resolver reconstructs a
// root-anchored path whose consecutive hops really are heap edges.
func TestBreadcrumbPathsAreComplete(t *testing.T) {
	space, roots := buildGraph(t, 7, 5000, 8)
	eng := parmark.NewEngine(space, 4)

	verified := 0
	pc := &pathChecks{t: t, space: space}
	pc.merged = func(r *parmark.Resolver, claims []claimRec) {
		for _, cl := range claims {
			root, ancestors := r.EdgePath(cl.parent, cl.root)
			if root == "" {
				t.Fatalf("object %#x: empty root description", uint32(cl.child))
			}
			if cl.parent == heap.Nil {
				if len(ancestors) != 0 {
					t.Fatalf("root edge with %d ancestors", len(ancestors))
				}
				verified++
				continue
			}
			if len(ancestors) == 0 || ancestors[len(ancestors)-1] != cl.parent {
				t.Fatalf("object %#x: path does not end at parent", uint32(cl.child))
			}
			chain := append(append([]heap.Addr(nil), ancestors...), cl.child)
			for i := 0; i+1 < len(chain); i++ {
				found := false
				space.ForEachRef(chain[i], func(_ int, c heap.Addr) {
					if c == chain[i+1] {
						found = true
					}
				})
				if !found {
					t.Fatalf("object %#x: hop %d (%#x -> %#x) is not a heap edge",
						uint32(cl.child), i, uint32(chain[i]), uint32(chain[i+1]))
				}
			}
			verified++
		}
	}
	res := eng.Mark(parRoots(roots), pc, true, nil)
	if verified != res.ObjectsMarked {
		t.Fatalf("verified %d paths, marked %d objects", verified, res.ObjectsMarked)
	}
}

// TestEngineReuseAcrossCycles runs several mark/sweep cycles on one engine,
// as the collector does, checking counts stay consistent.
func TestEngineReuseAcrossCycles(t *testing.T) {
	space, roots := buildGraph(t, 3, 8000, 8)
	eng := parmark.NewEngine(space, 4)
	want := len(seqReachable(space, roots))
	for cycle := 0; cycle < 3; cycle++ {
		res := eng.Mark(parRoots(roots), nil, cycle%2 == 0, nil)
		if res.ObjectsMarked != want {
			t.Fatalf("cycle %d: marked %d, want %d", cycle, res.ObjectsMarked, want)
		}
		space.Sweep(false)
	}
}

// TestOnMarkReplaySeesEveryObject checks the serialized census replay.
func TestOnMarkReplaySeesEveryObject(t *testing.T) {
	space, roots := buildGraph(t, 11, 4000, 8)
	eng := parmark.NewEngine(space, 4)
	seen := make(map[heap.Addr]int)
	res := eng.Mark(parRoots(roots), nil, false, func(a heap.Addr) { seen[a]++ })
	if len(seen) != res.ObjectsMarked {
		t.Fatalf("OnMark saw %d distinct objects, marked %d", len(seen), res.ObjectsMarked)
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("OnMark saw %#x %d times", uint32(a), n)
		}
	}
}
