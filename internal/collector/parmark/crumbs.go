package parmark

import "gcassert/internal/heap"

// Resolver reconstructs root-to-object paths from the per-worker breadcrumb
// tables after a parallel mark. It is handed to Checks.Merge and is valid
// only until Mark returns.
//
// The breadcrumb forest is acyclic by construction: an object's crumb is
// written before any of its children's (a child is only reachable for
// claiming after its parent was claimed and scanned), so every crumb's
// parent was claimed strictly earlier and following parents must terminate
// at a root edge.
type Resolver struct {
	eng *Engine
}

// lookup finds the claim crumb of a. Exactly one worker claimed a, so at
// most one table has an entry.
func (r *Resolver) lookup(a heap.Addr) (crumb, bool) {
	for _, w := range r.eng.workers {
		if c, ok := w.crumbs[a]; ok {
			return c, true
		}
	}
	return crumb{}, false
}

// RootDesc returns the description of root index idx (as passed to OnEdge /
// OnDeadForced), or "" for an out-of-range index.
func (r *Resolver) RootDesc(idx int32) string {
	if idx < 0 || int(idx) >= len(r.eng.roots) {
		return ""
	}
	return r.eng.roots[idx].Desc
}

// EdgePath reconstructs the edge context (parent, rootIdx) of a violation
// into the sequential marker's report shape: the description of the root
// the path starts at, and the ancestor chain root-object-first ending with
// parent itself. A root edge (parent == heap.Nil) yields no ancestors.
//
// The walk follows breadcrumbs from parent upward. An object without a
// crumb terminates the walk (it can only be parent itself, on an edge whose
// source was marked outside the breadcrumbed trace); the root description
// then falls back to the edge's own root index.
func (r *Resolver) EdgePath(parent heap.Addr, rootIdx int32) (root string, ancestors []heap.Addr) {
	if parent == heap.Nil {
		return r.RootDesc(rootIdx), nil
	}
	for cur := parent; cur != heap.Nil; {
		ancestors = append(ancestors, cur)
		c, ok := r.lookup(cur)
		if !ok {
			break
		}
		rootIdx = c.root
		cur = c.parent
	}
	for i, j := 0, len(ancestors)-1; i < j; i, j = i+1, j-1 {
		ancestors[i], ancestors[j] = ancestors[j], ancestors[i]
	}
	return r.RootDesc(rootIdx), ancestors
}
