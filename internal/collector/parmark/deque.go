package parmark

import "sync/atomic"

// Deque is a Chase-Lev work-stealing deque specialized to uint64 items
// (packed mark-work entries). The owning worker pushes and pops at the
// bottom; thieves steal from the top. Lock-free: the only contended
// operation is the CAS on top, between thieves and the owner's pop of the
// final element.
//
// Every element access goes through atomic loads/stores. The algorithm is
// correct with plain element access plus the top CAS, but the Go race
// detector (rightly) has no notion of a benign race — atomic elements keep
// `go test -race` clean at the cost of a few nanoseconds per operation on
// an already-contention-tolerant path.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	arr    atomic.Pointer[ring]
}

// ring is a growable power-of-two circular buffer. Grow copies the live
// range into a fresh ring; thieves holding the old pointer still read valid
// (copied-from) slots, and their CAS on top decides whether the value they
// read is theirs.
type ring struct {
	mask int64
	buf  []atomic.Uint64
}

func newRing(size int64) *ring {
	return &ring{mask: size - 1, buf: make([]atomic.Uint64, size)}
}

func (r *ring) load(i int64) uint64     { return r.buf[i&r.mask].Load() }
func (r *ring) store(i int64, v uint64) { r.buf[i&r.mask].Store(v) }
func (r *ring) size() int64             { return r.mask + 1 }

// NewDeque creates a deque with the given initial capacity (rounded up to a
// power of two, minimum 8).
func NewDeque(capacity int) *Deque {
	size := int64(8)
	for size < int64(capacity) {
		size *= 2
	}
	d := &Deque{}
	d.arr.Store(newRing(size))
	return d
}

// Push adds an item at the bottom. Owner only.
func (d *Deque) Push(v uint64) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= a.size() {
		a = d.grow(a, t, b)
	}
	a.store(b, v)
	d.bottom.Store(b + 1)
}

// grow doubles the buffer, copying the live range [t, b). Owner only.
func (d *Deque) grow(a *ring, t, b int64) *ring {
	na := newRing(a.size() * 2)
	for i := t; i < b; i++ {
		na.store(i, a.load(i))
	}
	d.arr.Store(na)
	return na
}

// Pop removes the most recently pushed item. Owner only.
func (d *Deque) Pop() (uint64, bool) {
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return 0, false
	}
	v := a.load(b)
	if t == b {
		// Last element: race the thieves for it via the top CAS.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return 0, false
		}
	}
	return v, true
}

// Steal removes the oldest item. Any goroutine. retry reports a lost CAS
// race (another thief or the owner took the element); the deque may still
// be non-empty, so the caller should try again before moving on.
func (d *Deque) Steal() (v uint64, ok, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	a := d.arr.Load()
	v = a.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false, true
	}
	return v, true, false
}

// Size returns a point-in-time lower bound on the number of items. Used by
// the termination detector to spot work appearing in other deques; staleness
// is fine (a quiescent worker re-checks in a loop).
func (d *Deque) Size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b > t {
		return int(b - t)
	}
	return 0
}
