package parmark

import (
	"sync"
	"testing"
)

// TestDequeOwnerOnly exercises LIFO push/pop without contention.
func TestDequeOwnerOnly(t *testing.T) {
	d := NewDeque(4)
	for i := uint64(1); i <= 100; i++ {
		d.Push(i) // crosses the initial capacity, forcing grows
	}
	if got := d.Size(); got != 100 {
		t.Fatalf("Size = %d, want 100", got)
	}
	for i := uint64(100); i >= 1; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque succeeded")
	}
	if _, ok, retry := d.Steal(); ok || retry {
		t.Fatal("Steal on empty deque succeeded")
	}
}

// TestDequeStealOrder checks FIFO stealing from the top.
func TestDequeStealOrder(t *testing.T) {
	d := NewDeque(8)
	for i := uint64(1); i <= 10; i++ {
		d.Push(i)
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok, _ := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal = %d,%v, want %d,true", v, ok, i)
		}
	}
}

// TestDequeConcurrent is the linearizability stress test: one owner pushes
// and pops while thieves steal; every pushed item must be consumed exactly
// once. Meaningful mainly under -race -cpu N.
func TestDequeConcurrent(t *testing.T) {
	const (
		items   = 20000
		thieves = 3
	)
	d := NewDeque(8)
	var mu sync.Mutex
	seen := make(map[uint64]int, items)
	record := func(batch []uint64) {
		mu.Lock()
		for _, v := range batch {
			seen[v]++
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []uint64
			for {
				v, ok, retry := d.Steal()
				if ok {
					got = append(got, v)
					continue
				}
				if retry {
					continue
				}
				select {
				case <-done:
					// Drain anything pushed after the last failed steal.
					for {
						v, ok, retry := d.Steal()
						if ok {
							got = append(got, v)
							continue
						}
						if !retry {
							record(got)
							return
						}
					}
				default:
				}
			}
		}()
	}

	var owned []uint64
	for i := uint64(1); i <= items; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				owned = append(owned, v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		owned = append(owned, v)
	}
	close(done)
	wg.Wait()
	record(owned)

	if len(seen) != items {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), items)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d consumed %d times", v, n)
		}
	}
}
