// Package parmark is the parallel mark engine: N workers trace the heap
// concurrently, each with its own Chase-Lev work-stealing deque, claiming
// objects via an atomic mark-bit CAS (heap.ClaimMark) and detecting
// termination with a distributed active-worker count.
//
// The paper's path-reconstruction trick (§2.7) keeps the current DFS path
// on the worklist by setting a low-order bit on visited entries — a scheme
// that only works with one sequential depth-first worklist. Here each
// worker instead records a parent breadcrumb, child → (parent, slot, root),
// on first claim; since every object is claimed exactly once, the union of
// the per-worker breadcrumb tables is a forest over the marked set, and
// walking it parent-by-parent reconstructs a complete root-to-object path
// for any violation found during the parallel trace (crumbs.go).
//
// Assertion checks ride on the claim: the CAS returns the pre-claim header
// word, so a worker learns mark status, assertion flags, and TypeID from
// the single atomic access — the parallel restatement of the paper's
// "checks piggyback on a header load the tracer does anyway". Checks are
// performed by per-worker shards (no locks on the edge path) and merged
// single-threaded after the workers join; see the Checks interface and
// internal/core's implementation of it.
package parmark

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcassert/internal/heap"
)

// Root is one root slot handed to the engine. Slot points at live storage
// so force-true severing can clear it; each root index is processed by
// exactly one worker.
type Root struct {
	Slot *heap.Addr
	Desc string
}

// Shard receives one worker's share of the per-edge assertion checks. A
// shard is owned by a single worker for the duration of a mark; it may use
// the heap's atomic flag API for cross-worker once-only elections but must
// not touch shared engine state (that happens in Checks.Merge).
type Shard interface {
	// OnEdge is invoked for an edge parent→child (parent == heap.Nil and
	// slot == -1 for a root edge) when the child carried assertion flags in
	// oldHeader, or — if Checks.WantAllClaims — for every claiming edge.
	// claimed reports whether this worker's claim won (first encounter);
	// oldHeader is the child's header word before the claim.
	OnEdge(parent heap.Addr, slot int, root int32, child heap.Addr, oldHeader uint64, claimed bool)
	// OnDeadForced is invoked instead of OnEdge when force-dead mode
	// severed the edge to an asserted-dead child. The slot (or root slot)
	// has already been cleared and the child was not claimed.
	OnDeadForced(parent heap.Addr, slot int, root int32, child heap.Addr, oldHeader uint64)
}

// Checks binds one collection's assertion checking to the engine.
type Checks interface {
	// ForceDead reports whether asserted-dead objects must be severed
	// during the trace (the static ReactForce policy for assert-dead).
	ForceDead() bool
	// WantAllClaims asks whether OnEdge must fire for every winning claim
	// even without assertion flags (instance counting).
	WantAllClaims() bool
	// Shard returns worker i's check shard.
	Shard(i int) Shard
	// Merge runs on the collecting goroutine after all workers joined; the
	// resolver reconstructs root-to-object paths from the breadcrumbs.
	Merge(r *Resolver)
}

// WorkerStats is one worker's activity during a single mark.
type WorkerStats struct {
	// Marked is the number of objects whose claim this worker won.
	Marked int
	// Steals is the number of work items stolen from other workers.
	Steals int
	// DurNs is the worker's wall-clock span, spawn to exit.
	DurNs int64
}

// Result summarizes one parallel mark.
type Result struct {
	RootsScanned  int
	ObjectsMarked int
	PerWorker     []WorkerStats
}

// Engine is a reusable parallel marker over one space. It is not
// goroutine-safe itself: Mark is called from the collecting goroutine,
// which owns the engine between collections.
type Engine struct {
	space   *heap.Space
	workers []*worker

	roots        []Root
	checks       Checks
	forceDead    bool
	allClaims    bool
	collectMarks bool

	// active is the distributed-termination count of checked-in workers.
	active  atomic.Int64
	aborted atomic.Bool
	panicMu sync.Mutex
	panicV  any
}

// crumb is the breadcrumb recorded when an object is first claimed: the
// edge it was claimed through. parent == heap.Nil means a root edge, with
// root indexing Engine.roots.
type crumb struct {
	parent heap.Addr
	slot   int32
	root   int32
}

type worker struct {
	eng   *Engine
	id    int
	deque *Deque
	shard Shard
	// crumbs is non-nil only in infrastructure mode.
	crumbs map[heap.Addr]crumb

	// curObj / curRoot identify the edge source while scanning.
	curObj  heap.Addr
	curRoot int32
	visitFn func(slot int, child heap.Addr)

	marked  int
	steals  int
	markBuf []heap.Addr
	rng     uint64
	dur     time.Duration
}

// NewEngine creates an engine with n workers over the space. n must be > 1
// (the sequential marker is the n == 1 path and lives in the collector).
func NewEngine(space *heap.Space, n int) *Engine {
	e := &Engine{space: space}
	for i := 0; i < n; i++ {
		e.workers = append(e.workers, &worker{
			eng:   e,
			id:    i,
			deque: NewDeque(256),
			rng:   uint64(i)*0x9e3779b97f4a7c15 + 1,
		})
	}
	return e
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return len(e.workers) }

// Mark runs one parallel trace from roots. checks may be nil (Base mode or
// infrastructure without hooks); crumbs enables breadcrumb recording
// (infrastructure mode — the cost is paid whether or not assertions exist,
// matching the sequential marker's path-tracking discipline); onMark, if
// non-nil, is replayed serially after the workers join (the census callback
// is not goroutine-safe).
//
// The caller must guarantee all mark bits are clear (the engine supports
// only full traces; generational minor collections use the sequential
// marker).
func (e *Engine) Mark(roots []Root, checks Checks, crumbs bool, onMark func(heap.Addr)) Result {
	e.roots = roots
	e.checks = checks
	e.forceDead = checks != nil && checks.ForceDead()
	e.allClaims = checks != nil && checks.WantAllClaims()
	e.collectMarks = onMark != nil
	e.aborted.Store(false)
	e.panicV = nil
	e.active.Store(int64(len(e.workers)))

	for _, w := range e.workers {
		w.marked, w.steals, w.dur = 0, 0, 0
		w.markBuf = w.markBuf[:0]
		if checks != nil {
			w.shard = checks.Shard(w.id)
		} else {
			w.shard = nil
		}
		if crumbs {
			w.crumbs = make(map[heap.Addr]crumb, 1024)
		} else {
			w.crumbs = nil
		}
		if crumbs {
			w.visitFn = w.visitInfra
		} else {
			w.visitFn = w.visitBase
		}
	}

	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					e.panicMu.Lock()
					if e.panicV == nil {
						e.panicV = p
					}
					e.panicMu.Unlock()
					e.aborted.Store(true)
				}
			}()
			start := time.Now()
			e.run(w)
			w.dur = time.Since(start)
		}(w)
	}
	wg.Wait()
	if p := e.panicV; p != nil {
		e.panicV = nil
		panic(p)
	}

	res := Result{RootsScanned: len(roots), PerWorker: make([]WorkerStats, len(e.workers))}
	for i, w := range e.workers {
		res.ObjectsMarked += w.marked
		res.PerWorker[i] = WorkerStats{Marked: w.marked, Steals: w.steals, DurNs: w.dur.Nanoseconds()}
	}
	if onMark != nil {
		for _, w := range e.workers {
			for _, a := range w.markBuf {
				onMark(a)
			}
		}
	}
	if checks != nil {
		checks.Merge(&Resolver{eng: e})
	}
	e.checks = nil
	return res
}

// run is one worker's mark loop: strided root scan, then drain-and-steal
// until global termination.
func (e *Engine) run(w *worker) {
	n := len(e.workers)
	for i := w.id; i < len(e.roots); i += n {
		e.rootEdge(w, int32(i))
	}
	for {
		if e.aborted.Load() {
			return
		}
		if item, ok := w.deque.Pop(); ok {
			w.process(item)
			continue
		}
		if item, ok := e.steal(w); ok {
			w.process(item)
			continue
		}
		if e.quiesce(w) {
			return
		}
	}
}

// steal sweeps the other workers' deques in a per-worker pseudo-random
// order, retrying lost CAS races.
func (e *Engine) steal(w *worker) (uint64, bool) {
	n := len(e.workers)
	if n == 1 {
		return 0, false
	}
	for sweep := 0; sweep < 2; sweep++ {
		off := int(w.nextRand() % uint64(n))
		for i := 0; i < n; i++ {
			v := e.workers[(off+i)%n]
			if v == w {
				continue
			}
			for {
				item, ok, retry := v.deque.Steal()
				if ok {
					w.steals++
					return item, true
				}
				if !retry {
					break
				}
			}
		}
	}
	return 0, false
}

// quiesce implements distributed termination detection: the worker checks
// out of the active count, then spins watching for either global
// termination (every worker checked out — no work can exist, because a
// worker only checks out with an empty deque and only its owner pushes to
// a deque) or work appearing in some deque, in which case it checks back
// in and resumes stealing. Returns true to terminate.
func (e *Engine) quiesce(w *worker) bool {
	e.active.Add(-1)
	for {
		if e.aborted.Load() {
			return true
		}
		if e.active.Load() == 0 {
			return true
		}
		for _, v := range e.workers {
			if v != w && v.deque.Size() > 0 {
				e.active.Add(1)
				return false
			}
		}
		runtime.Gosched()
	}
}

// nextRand is a xorshift64 PRNG for steal-victim selection.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// Work items pack (address, root index) into one deque word: the address
// in the high half, the index of the root whose subtree the object belongs
// to in the low half. Carrying the root index with the work makes every
// violation's root description available without a breadcrumb walk.
func packItem(a heap.Addr, root int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(root))
}

func unpackItem(item uint64) (heap.Addr, int32) {
	return heap.Addr(uint32(item >> 32)), int32(uint32(item))
}

func (w *worker) push(child heap.Addr) {
	w.deque.Push(packItem(child, w.curRoot))
}

// process scans one claimed object's outgoing references.
func (w *worker) process(item uint64) {
	w.curObj, w.curRoot = unpackItem(item)
	w.eng.space.ForEachRefAtomic(w.curObj, w.visitFn)
}

// rootEdge handles the edge from root index idx into the heap.
func (e *Engine) rootEdge(w *worker, idx int32) {
	r := e.roots[idx]
	a := *r.Slot
	if a == heap.Nil {
		return
	}
	w.curObj, w.curRoot = heap.Nil, idx
	s := e.space
	if e.forceDead {
		if h := s.AtomicHeader(a); heap.HeaderFlags(h)&heap.FlagDead != 0 {
			*r.Slot = heap.Nil
			w.shard.OnDeadForced(heap.Nil, -1, idx, a, h)
			return
		}
	}
	old, claimed := s.ClaimMark(a)
	if claimed {
		w.claimed(a, -1, old)
	} else if w.shard != nil && heap.HeaderFlags(old)&heap.AssertFlags != 0 {
		w.shard.OnEdge(heap.Nil, -1, idx, a, old, false)
	}
}

// claimed records a winning claim of child via the current edge (curObj,
// slot, curRoot) and pushes the child for scanning.
func (w *worker) claimed(child heap.Addr, slot int, old uint64) {
	w.marked++
	if w.crumbs != nil {
		w.crumbs[child] = crumb{parent: w.curObj, slot: int32(slot), root: w.curRoot}
	}
	if w.shard != nil && (heap.HeaderFlags(old)&heap.AssertFlags != 0 || w.eng.allClaims) {
		w.shard.OnEdge(w.curObj, slot, w.curRoot, child, old, true)
	}
	if w.eng.collectMarks {
		w.markBuf = append(w.markBuf, child)
	}
	w.push(child)
}

// visitInfra is the infrastructure-mode edge visitor: breadcrumbs, checks,
// and force-dead severing.
func (w *worker) visitInfra(slot int, child heap.Addr) {
	e := w.eng
	s := e.space
	if e.forceDead {
		if h := s.AtomicHeader(child); heap.HeaderFlags(h)&heap.FlagDead != 0 {
			// Sever before ever claiming, so the asserted-dead object stays
			// unmarked and is reclaimed this cycle. The slot belongs to the
			// object this worker is scanning — no other worker writes it.
			s.ClearRefSlotUnchecked(w.curObj, slot)
			w.shard.OnDeadForced(w.curObj, slot, w.curRoot, child, h)
			return
		}
	}
	old, claimed := s.ClaimMark(child)
	if claimed {
		w.claimed(child, slot, old)
	} else if w.shard != nil && heap.HeaderFlags(old)&heap.AssertFlags != 0 {
		w.shard.OnEdge(w.curObj, slot, w.curRoot, child, old, false)
	}
}

// visitBase is the Base-mode edge visitor: claim and push, nothing else.
func (w *worker) visitBase(slot int, child heap.Addr) {
	if _, claimed := w.eng.space.ClaimMark(child); claimed {
		w.marked++
		if w.eng.collectMarks {
			w.markBuf = append(w.markBuf, child)
		}
		w.push(child)
	}
}
