package collector

import "gcassert/internal/heap"

// visitedBit marks a worklist entry whose children are currently being (or
// have been) traced. Addresses are 8-byte aligned, so bit 0 is always free —
// the same spare bit the paper steals on word-aligned Jikes references.
const visitedBit heap.Addr = 1

// markBase is the Base-configuration trace: plain depth-first marking with
// no path tracking and no assertion checks. This is what an unmodified
// mark-sweep collector does.
func (c *Collector) markBase(col *Collection) {
	c.stack = c.stack[:0]
	c.col = col
	c.roots.Roots(func(r Root) {
		a := *r.Slot
		if a != heap.Nil && !c.space.Marked(a) {
			c.space.SetMark(a)
			col.ObjectsMarked++
			if c.OnMark != nil {
				c.OnMark(a)
			}
			c.stack = append(c.stack, a)
		}
		col.RootsScanned++
	})
	for len(c.stack) > 0 {
		a := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		c.space.ForEachRef(a, c.visitBase)
	}
	c.col = nil
}

func (c *Collector) visitBase(slot int, t heap.Addr) {
	if !c.space.Marked(t) {
		c.space.SetMark(t)
		c.col.ObjectsMarked++
		if c.OnMark != nil {
			c.OnMark(t)
		}
		c.stack = append(c.stack, t)
	}
}

// markInfra is the Infrastructure-configuration trace: depth-first marking
// with the visited-bit path-reconstruction discipline and a per-edge hook
// dispatch. Each root is drained to completion before the next so the root
// description of the current path is always known.
func (c *Collector) markInfra(col *Collection) {
	c.stack = c.stack[:0]
	c.col = col
	c.allFirstMarks = c.hooks != nil && c.hooks.WantAllFirstMarks()
	c.roots.Roots(func(r Root) {
		col.RootsScanned++
		a := *r.Slot
		if a == heap.Nil {
			return
		}
		c.curRootDesc = r.Desc
		flags := c.space.Flags(a)
		marked := flags&heap.FlagMark != 0
		if c.hooks != nil && (flags&heap.AssertFlags != 0 || (!marked && c.allFirstMarks)) {
			switch c.hooks.OnEdge(c, heap.Nil, -1, a, marked) {
			case EdgeClear:
				*r.Slot = heap.Nil
				return
			case EdgeSkip:
				return
			}
		}
		if marked {
			return
		}
		c.space.SetMark(a)
		col.ObjectsMarked++
		if c.OnMark != nil {
			c.OnMark(a)
		}
		c.stack = append(c.stack, a)
		c.drainInfra(col)
	})
	c.col = nil
}

// drainInfra processes the worklist with the path-tracking discipline: pop an
// entry; if its visited bit is set all its children are done, discard it;
// otherwise set the bit, push it back, and scan its children on top of it.
func (c *Collector) drainInfra(col *Collection) {
	for len(c.stack) > 0 {
		top := c.stack[len(c.stack)-1]
		if top&visitedBit != 0 {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		c.stack[len(c.stack)-1] = top | visitedBit
		c.curParent = top
		c.space.ForEachRef(top, c.visitInfra)
	}
}

func (c *Collector) visitInfra(slot int, t heap.Addr) {
	// One header load yields both the mark bit and the assertion flags; the
	// engine is consulted only when a flag is set (or on first marks when it
	// is counting instances), so the common edge costs a mask test.
	flags := c.space.Flags(t)
	marked := flags&heap.FlagMark != 0
	if c.hooks != nil && (flags&heap.AssertFlags != 0 || (!marked && c.allFirstMarks)) {
		switch c.hooks.OnEdge(c, c.curParent, slot, t, marked) {
		case EdgeClear:
			c.space.ClearRefSlot(c.curParent, slot)
			return
		case EdgeSkip:
			return
		}
	}
	if !marked {
		c.space.SetMark(t)
		c.col.ObjectsMarked++
		if c.OnMark != nil {
			c.OnMark(t)
		}
		c.stack = append(c.stack, t)
	}
}

// CurrentPath returns the root-to-current-object path implied by the
// worklist: every entry whose visited bit is set, bottom first, with the bit
// stripped. It is only valid while a violation hook is executing. The slice
// is freshly allocated — violations are rare, so this does not affect the
// steady-state cost of tracing.
func (c *Collector) CurrentPath() []heap.Addr {
	var path []heap.Addr
	for _, e := range c.stack {
		if e&visitedBit != 0 {
			path = append(path, e&^visitedBit)
		}
	}
	return path
}

// CurrentRoot returns the description of the root whose subtree is being
// traced. Only meaningful during the mark phase.
func (c *Collector) CurrentRoot() string { return c.curRootDesc }
