package collector

import "gcassert/internal/heap"

// Graph is an on-demand snapshot of the reachable object graph, captured by
// a breadth-first walk from the roots without touching header bits (so it is
// safe between collections, like a heap probe). Node 0 is a virtual
// super-root whose successors are the objects held directly by root slots;
// dominator analysis needs a single entry node, and the super-root provides
// it without special-casing multi-rooted objects.
//
// The representation is dense — parallel slices indexed by node — because
// the dominator pass (internal/heapdump) is array-based Lengauer-Tarjan and
// a map-of-slices graph would double its constant factor.
type Graph struct {
	// Addrs maps node index to object address; Addrs[0] is heap.Nil (the
	// virtual super-root).
	Addrs []heap.Addr
	// Succs holds each node's out-edges as node indices. Duplicate edges
	// (two fields of one object holding the same target) are kept: they are
	// harmless to dominators and preserving them keeps capture O(edges).
	Succs [][]int32
	// RootDesc records, for each directly-rooted node, the description of
	// the first root slot found holding it (for leak reports).
	RootDesc map[int32]string

	index map[heap.Addr]int32
}

// NumNodes returns the node count including the virtual super-root.
func (g *Graph) NumNodes() int { return len(g.Addrs) }

// NumObjects returns the number of heap objects captured (nodes minus the
// super-root).
func (g *Graph) NumObjects() int { return len(g.Addrs) - 1 }

// Index returns the node index of an address and whether it is in the graph.
func (g *Graph) Index(a heap.Addr) (int32, bool) {
	i, ok := g.index[a]
	return i, ok
}

// CaptureGraph walks the heap from the collector's roots and returns the
// reachable object graph. It allocates on the Go heap, not the managed one,
// and runs in mutator context: callers must be quiescent (between mutator
// steps), the same discipline as heap probes and profiles. Cost is one full
// traversal — this is the on-demand half of introspection, deliberately not
// piggybacked on the mark phase (recording every edge at every GC would
// betray the paper's "nearly free" budget).
func (c *Collector) CaptureGraph() *Graph {
	g := &Graph{
		Addrs:    []heap.Addr{heap.Nil},
		Succs:    [][]int32{nil},
		RootDesc: make(map[int32]string),
		index:    map[heap.Addr]int32{},
	}
	intern := func(a heap.Addr) int32 {
		if i, ok := g.index[a]; ok {
			return i
		}
		i := int32(len(g.Addrs))
		g.index[a] = i
		g.Addrs = append(g.Addrs, a)
		g.Succs = append(g.Succs, nil)
		return i
	}
	c.roots.Roots(func(r Root) {
		a := *r.Slot
		if a == heap.Nil {
			return
		}
		_, seen := g.index[a]
		i := intern(a)
		if !seen {
			g.Succs[0] = append(g.Succs[0], i)
			g.RootDesc[i] = r.Desc
		}
	})
	// BFS; Addrs doubles as the worklist since interning appends in
	// discovery order.
	for n := int32(1); n < int32(len(g.Addrs)); n++ {
		a := g.Addrs[n]
		c.space.ForEachRef(a, func(_ int, t heap.Addr) {
			g.Succs[n] = append(g.Succs[n], intern(t))
		})
	}
	return g
}
