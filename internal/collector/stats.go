package collector

import (
	"fmt"
	"time"

	"gcassert/internal/collector/parmark"
)

// WorkerStats is one parallel mark worker's activity in a collection.
type WorkerStats = parmark.WorkerStats

// AssertCost attributes one assertion kind's share of a collection: how many
// checks the cycle performed for the kind and how long the kind's rare-path
// handling took. Work counts are exact (they are deltas of the engine's
// check counters); times cover the flagged slow paths only — the per-edge
// fast path is deliberately untimed so attribution never perturbs the mark
// loop it measures.
type AssertCost struct {
	// Kind is the assertion kind's stable label ("assert-dead",
	// "assert-instances", "assert-unshared", "assert-ownedby",
	// "improper-ownership").
	Kind string
	// Checks is the number of checks performed for the kind this cycle, in
	// the kind's natural unit (dead results, instance-count increments,
	// unshared re-encounters, ownees checked).
	Checks uint64
	// Ns is the time spent in the kind's handling this cycle, in
	// nanoseconds. Zero for kinds whose work is folded into the untimed
	// per-edge fast path.
	Ns int64
}

// CostHooks is an optional extension of Hooks implemented by engines that
// attribute per-assertion-kind cost. The collector caches the type assertion
// at construction, so a cycle with attribution disabled pays one nil-check.
type CostHooks interface {
	Hooks
	// CollectionCosts returns the per-kind cost rows for the collection that
	// just finished sweeping (dead-verification counts accrue during sweep),
	// or nil when attribution is disabled. The returned slice is owned by the
	// caller.
	CollectionCosts() []AssertCost
}

// Trigger explains why a collection ran, for operators: the mechanical
// Reason plus the heap pressure behind it and the mutator that applied it.
type Trigger struct {
	// Why is a one-line human-readable explanation, e.g.
	// "heap exhausted at 92% occupancy (alloc rate 1.2e+07 words/s)".
	Why string
	// OccupancyPct is the heap occupancy (live words / capacity words × 100)
	// observed when the collection was triggered.
	OccupancyPct float64
	// AllocRateWps is the allocation-rate EWMA in words/second at trigger
	// time (0 until the first interval completes).
	AllocRateWps float64
	// ByThread names the dominant allocating thread since the previous
	// collection ("main", ...); empty when nothing allocated.
	ByThread string
	// ByThreadWords is that thread's allocation volume, in words, since the
	// previous collection.
	ByThreadWords uint64
	// BySite names the dominant allocating site of the window (provenance
	// required; empty otherwise).
	BySite string
}

// Collection records one collection cycle.
type Collection struct {
	// Seq is the collection's sequence number (0-based).
	Seq uint64
	// Reason records why the collection ran (ReasonAllocFailure,
	// ReasonForced, ...).
	Reason Reason
	// OwnershipTime is the time spent in the assertion engine's ownership
	// pre-phase (zero in Base mode or with no ownership assertions).
	OwnershipTime time.Duration
	// MarkTime is the time spent in the root scan and transitive mark.
	MarkTime time.Duration
	// SweepTime is the time spent sweeping.
	SweepTime time.Duration
	// TotalTime is the full stop-the-world pause.
	TotalTime time.Duration
	// RootsScanned is the number of root slots examined.
	RootsScanned int
	// ObjectsMarked is the number of objects marked during the normal scan.
	ObjectsMarked int
	// ObjectsFreed and WordsFreed summarize the sweep.
	ObjectsFreed int
	WordsFreed   int
	// ObjectsLive is the number of survivors after the sweep.
	ObjectsLive int
	// Workers is the number of mark-phase workers used (1 = the sequential
	// reference marker).
	Workers int
	// PerWorker is per-worker mark activity; nil unless the cycle marked in
	// parallel.
	PerWorker []WorkerStats
	// Fallback, on a cycle where the configured worker count exceeded one but
	// the mark ran sequentially anyway, names why (one of the Fallback*
	// constants). Empty when the cycle marked in parallel or when only one
	// worker was configured to begin with.
	Fallback string
	// AssertCost attributes the cycle's assertion work per kind; nil unless
	// the engine has cost attribution enabled (Options.CostAttribution).
	AssertCost []AssertCost
	// Trigger explains why the collection ran; zero unless the runtime
	// installed a trigger explainer (Collector.ExplainTrigger).
	Trigger Trigger
	// Request is the request tag active when the collection began (set via
	// Collector.SetRequestTag by the tracing layer; empty otherwise). It is
	// captured at the top of Collect — the moment the pause starts — so it
	// names the request the pause actually interrupted, a property that
	// stays correct when marking goes concurrent.
	Request string
}

// Reasons a cycle configured for parallel marking fell back to the
// sequential marker. Telemetry exports them as the reason label of
// gcassert_gc_mark_fallback_total.
const (
	// FallbackKeepMarks: sticky-mark (generational minor) collections always
	// mark sequentially; the parallel engine assumes clear mark bits.
	FallbackKeepMarks = "keep-marks"
	// FallbackNonParallelHooks: the installed hooks do not implement
	// ParallelHooks, so per-edge checks cannot be sharded.
	FallbackNonParallelHooks = "non-parallel-hooks"
	// FallbackDecider: the engine demanded the sequential marker for this
	// cycle (a programmatic violation decider needs edge-time reactions).
	FallbackDecider = "decider"
)

func (c Collection) String() string {
	return fmt.Sprintf("GC#%d(%s): %v (own %v, mark %v, sweep %v) marked=%d freed=%d live=%d",
		c.Seq, c.Reason, c.TotalTime, c.OwnershipTime, c.MarkTime, c.SweepTime,
		c.ObjectsMarked, c.ObjectsFreed, c.ObjectsLive)
}

// Stats accumulates collection statistics across cycles.
type Stats struct {
	// Collections is the number of completed cycles.
	Collections uint64
	// TotalGCTime is the sum of all pauses.
	TotalGCTime time.Duration
	// OwnershipTime, MarkTime and SweepTime are per-phase sums.
	OwnershipTime time.Duration
	MarkTime      time.Duration
	SweepTime     time.Duration
	// MaxPause is the longest single pause.
	MaxPause time.Duration
	// ObjectsMarked and ObjectsFreed are cumulative totals.
	ObjectsMarked uint64
	ObjectsFreed  uint64
}

func (s *Stats) add(c Collection) {
	s.Collections++
	s.TotalGCTime += c.TotalTime
	s.OwnershipTime += c.OwnershipTime
	s.MarkTime += c.MarkTime
	s.SweepTime += c.SweepTime
	if c.TotalTime > s.MaxPause {
		s.MaxPause = c.TotalTime
	}
	s.ObjectsMarked += uint64(c.ObjectsMarked)
	s.ObjectsFreed += uint64(c.ObjectsFreed)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d collections, %v total GC time (own %v, mark %v, sweep %v), max pause %v",
		s.Collections, s.TotalGCTime, s.OwnershipTime, s.MarkTime, s.SweepTime, s.MaxPause)
}
