package collector

import "gcassert/internal/collector/parmark"

// markParallel runs the work-stealing parallel mark. It returns false when
// the cycle cannot run in parallel — hooks that do not implement
// ParallelHooks, or a binding that demands the sequential marker — in which
// case the caller falls back to markInfra/markBase. Mark bits must be clear
// at entry, which Collect guarantees by refusing parallel marking on
// sticky-mark (KeepMarks) collections.
func (c *Collector) markParallel(col *Collection) bool {
	var checks parmark.Checks
	if c.infra && c.hooks != nil {
		ph, ok := c.hooks.(ParallelHooks)
		if !ok {
			col.Fallback = FallbackNonParallelHooks
			return false
		}
		if checks = ph.ParallelChecks(c.workers, c.gcCount); checks == nil {
			col.Fallback = FallbackDecider
			return false
		}
	}
	if c.par == nil || c.par.Workers() != c.workers {
		c.par = parmark.NewEngine(c.space, c.workers)
	}
	c.parRoots = c.parRoots[:0]
	c.roots.Roots(func(r Root) {
		c.parRoots = append(c.parRoots, parmark.Root{Slot: r.Slot, Desc: r.Desc})
	})
	// Breadcrumbs are recorded whenever infrastructure mode is on, mirroring
	// the sequential marker, which pays for path tracking in the
	// Infrastructure configuration whether or not assertions exist.
	res := c.par.Mark(c.parRoots, checks, c.infra, c.OnMark)
	col.RootsScanned = res.RootsScanned
	col.ObjectsMarked = res.ObjectsMarked
	col.Workers = c.workers
	col.PerWorker = res.PerWorker
	return true
}
