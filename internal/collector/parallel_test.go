package collector

import (
	"math/rand"
	"testing"

	"gcassert/internal/heap"
)

// TestParallelCollectMatchesOracle runs the reachability-oracle experiment
// with the parallel mark engine at several widths, in both Base and
// (hookless) Infrastructure configurations.
func TestParallelCollectMatchesOracle(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for _, infra := range []bool{false, true} {
			for seed := int64(0); seed < 10; seed++ {
				rng := rand.New(rand.NewSource(seed))
				s, node := testWorld(t, 4<<20)
				objs := buildRandomGraph(t, s, node, 500, rng)
				roots := &sliceRoots{}
				for i := 0; i < 10; i++ {
					roots.slots = append(roots.slots, objs[rng.Intn(len(objs))])
				}
				roots.slots = append(roots.slots, heap.Nil)

				want := reachable(s, roots.slots)
				c := New(s, roots, nil, infra)
				c.SetWorkers(workers)
				col := c.Collect("test")
				got := liveSet(s)

				if col.Workers != workers {
					t.Fatalf("workers=%d infra=%v: collection ran with %d workers", workers, infra, col.Workers)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d infra=%v seed=%d: live %d objects, oracle says %d",
						workers, infra, seed, len(got), len(want))
				}
				for a := range want {
					if !got[a] {
						t.Fatalf("workers=%d seed=%d: reachable %v was collected", workers, seed, a)
					}
				}
				if col.ObjectsMarked != len(want) {
					t.Errorf("ObjectsMarked = %d, want %d", col.ObjectsMarked, len(want))
				}
				var sum int
				for _, ws := range col.PerWorker {
					sum += ws.Marked
				}
				if sum != col.ObjectsMarked {
					t.Errorf("per-worker marked sum %d != ObjectsMarked %d", sum, col.ObjectsMarked)
				}
			}
		}
	}
}

// seqOnlyHooks implements Hooks but not ParallelHooks, so a collector with
// workers > 1 must fall back to the sequential marker.
type seqOnlyHooks struct{ edges int }

func (h *seqOnlyHooks) PreMark(c *Collector) {}
func (h *seqOnlyHooks) OnEdge(c *Collector, parent heap.Addr, slot int, child heap.Addr, marked bool) EdgeAction {
	h.edges++
	return EdgeProceed
}
func (h *seqOnlyHooks) WantAllFirstMarks() bool { return true }
func (h *seqOnlyHooks) PostMark(c *Collector)   {}

// TestParallelFallbackToSequential checks both fallback conditions: hooks
// that do not implement ParallelHooks, and sticky-mark (KeepMarks) cycles.
func TestParallelFallbackToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, node := testWorld(t, 4<<20)
	objs := buildRandomGraph(t, s, node, 300, rng)
	roots := &sliceRoots{slots: []heap.Addr{objs[0], objs[17]}}
	want := reachable(s, roots.slots)

	hooks := &seqOnlyHooks{}
	c := New(s, roots, hooks, true)
	c.SetWorkers(4)
	col := c.Collect("test")
	if col.Workers != 1 {
		t.Fatalf("non-parallel hooks: collection reports %d workers, want 1", col.Workers)
	}
	if col.Fallback != FallbackNonParallelHooks {
		t.Fatalf("Fallback = %q, want %q", col.Fallback, FallbackNonParallelHooks)
	}
	if col.ObjectsMarked != len(want) {
		t.Fatalf("fallback marked %d, want %d", col.ObjectsMarked, len(want))
	}
	if hooks.edges == 0 {
		t.Fatal("fallback did not run the sequential hook path")
	}

	// Sticky-mark cycles must also mark sequentially even in Base mode.
	s2, node2 := testWorld(t, 4<<20)
	objs2 := buildRandomGraph(t, s2, node2, 300, rng)
	roots2 := &sliceRoots{slots: []heap.Addr{objs2[5]}}
	c2 := New(s2, roots2, nil, false)
	c2.SetWorkers(4)
	c2.KeepMarks = true
	if col2 := c2.Collect("test"); col2.Workers != 1 || col2.Fallback != FallbackKeepMarks {
		t.Fatalf("KeepMarks cycle reports %d workers, fallback %q; want 1, %q",
			col2.Workers, col2.Fallback, FallbackKeepMarks)
	}

	// A genuinely parallel collection must not claim a fallback.
	s3, node3 := testWorld(t, 4<<20)
	objs3 := buildRandomGraph(t, s3, node3, 300, rng)
	c3 := New(s3, &sliceRoots{slots: []heap.Addr{objs3[0]}}, nil, false)
	c3.SetWorkers(4)
	if col3 := c3.Collect("test"); col3.Workers != 4 || col3.Fallback != "" {
		t.Fatalf("parallel cycle reports %d workers, fallback %q; want 4, none",
			col3.Workers, col3.Fallback)
	}
}

// TestSetWorkersClamps checks the worker-count accessor pair.
func TestSetWorkersClamps(t *testing.T) {
	s, _ := testWorld(t, 1<<20)
	c := New(s, &sliceRoots{}, nil, false)
	if c.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", c.Workers())
	}
	c.SetWorkers(0)
	if c.Workers() != 1 {
		t.Fatalf("SetWorkers(0) gave %d, want 1", c.Workers())
	}
	c.SetWorkers(6)
	if c.Workers() != 6 {
		t.Fatalf("SetWorkers(6) gave %d", c.Workers())
	}
}

// TestParallelOnMarkCensus checks the OnMark census replay fires exactly
// once per live object under parallel marking.
func TestParallelOnMarkCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, node := testWorld(t, 4<<20)
	objs := buildRandomGraph(t, s, node, 400, rng)
	roots := &sliceRoots{slots: []heap.Addr{objs[0], objs[100], objs[399]}}
	want := reachable(s, roots.slots)

	c := New(s, roots, nil, false)
	c.SetWorkers(4)
	seen := map[heap.Addr]int{}
	c.OnMark = func(a heap.Addr) { seen[a]++ }
	c.Collect("test")
	if len(seen) != len(want) {
		t.Fatalf("OnMark saw %d objects, want %d", len(seen), len(want))
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("OnMark saw %v %d times", a, n)
		}
	}
}
