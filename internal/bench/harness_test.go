package bench

import (
	"strings"
	"testing"

	"gcassert"
)

// tinyWorkload allocates and drops small lists; it supports assertions by
// asserting death of dropped heads.
func tinyWorkload() Workload {
	return Workload{Name: "tiny", Heap: 2 << 20, HasAsserts: true,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			node := vm.Define("tiny/Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("tiny")
			fr := th.Push(1)
			return func(int) {
				for r := 0; r < 250; r++ {
					var head gcassert.Ref
					for i := 0; i < 800; i++ {
						n := th.New(node)
						vm.Space().SetRef(n, 0, head)
						head = n
						fr.Set(0, head)
					}
					if asserts {
						vm.AssertDead(head)
					}
					fr.Set(0, gcassert.Nil)
				}
			}
		}}
}

func TestRunProducesSamples(t *testing.T) {
	w := tinyWorkload()
	res := Run(w, Infra, Options{Trials: 3, Iterations: 2})
	if res.Total.N() != 3 || res.GC.N() != 3 || res.Mutator.N() != 3 {
		t.Fatalf("samples: total=%d gc=%d", res.Total.N(), res.GC.N())
	}
	if res.Total.Mean() <= 0 {
		t.Error("nonpositive total")
	}
	if res.Mode != Infra || res.Workload != "tiny" {
		t.Error("result identity")
	}
}

func TestRunWithAssertionsRecordsStats(t *testing.T) {
	w := tinyWorkload()
	res := Run(w, WithAssertions, Options{Trials: 1, Iterations: 2})
	if res.AssertStats.DeadAsserted == 0 {
		t.Errorf("assert stats empty: %+v", res.AssertStats)
	}
	if res.TotalCollections == 0 {
		t.Error("no collections recorded")
	}
}

func TestCompareSkipsAssertModeWhenUnsupported(t *testing.T) {
	w := tinyWorkload()
	w.HasAsserts = false
	c := Compare(w, []Mode{Base, Infra, WithAssertions}, Options{Trials: 1, Iterations: 1})
	if _, ok := c.Results[WithAssertions]; ok {
		t.Error("WithAssertions run despite HasAsserts=false")
	}
	if c.Normalized(Infra, TotalTime) <= 0 {
		t.Error("normalized")
	}
	if c.Normalized(WithAssertions, TotalTime) != 0 {
		t.Error("missing mode should normalize to 0")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Base: "Base", Infra: "Infrastructure",
		WithAssertions: "WithAssertions", Mode(9): "Mode(9)"} {
		if m.String() != want {
			t.Errorf("%d = %q", m, m.String())
		}
	}
}

func TestFigurePrinters(t *testing.T) {
	w := tinyWorkload()
	c := Compare(w, []Mode{Base, Infra, WithAssertions}, Options{Trials: 2, Iterations: 1})
	comps := []*Comparison{c}
	var b strings.Builder
	PrintFigure2(&b, comps)
	PrintFigure3(&b, comps)
	PrintFigure4(&b, comps)
	PrintFigure5(&b, comps)
	out := b.String()
	for _, want := range []string{
		"Figure 2:", "Figure 3:", "Figure 4:", "Figure 5:",
		"geomean", "tiny", "paper:", "ownees/GC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestOptionsPresets(t *testing.T) {
	if o := DefaultOptions(); o.Trials <= 0 || o.Iterations <= 0 {
		t.Error("DefaultOptions")
	}
	if o := PaperOptions(); o.Trials != 20 || o.Iterations != 4 {
		t.Errorf("PaperOptions = %+v", o)
	}
}
