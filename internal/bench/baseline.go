package bench

import (
	"fmt"
	"io"
	"time"

	"gcassert"
	"gcassert/internal/stats"
)

// measureTrial runs one trial of the workload on a fresh runtime — warmup
// iterations, then one timed iteration — and returns the measured time and
// the runtime for stats inspection.
func measureTrial(w Workload, opt Options, mkOpts func() gcassert.Options) (time.Duration, *gcassert.Runtime) {
	vm := gcassert.New(mkOpts())
	run := w.New(vm, false)
	for i := 0; i < opt.Iterations-1; i++ {
		run(i)
	}
	start := time.Now()
	run(opt.Iterations - 1)
	return time.Since(start), vm
}

// measureWorkload produces one workload's baseline record. The two
// configurations are interleaved *within* each trial — base then census,
// back to back — so machine-performance drift over the run lands equally on
// both sides of every paired ratio. Measuring all base trials first and all
// census trials after (the seed's method) let minutes of drift masquerade as
// configuration overhead, including the impossible negative overheads the
// seed baseline recorded.
func measureWorkload(w Workload, opt Options, progress io.Writer) WorkloadRun {
	wr := WorkloadRun{Name: w.Name}
	var censusVM *gcassert.Runtime
	for trial := 0; trial < opt.Trials; trial++ {
		base, _ := measureTrial(w, opt, func() gcassert.Options {
			return gcassert.Options{HeapBytes: w.Heap}
		})
		census, vm := measureTrial(w, opt, func() gcassert.Options {
			return gcassert.Options{HeapBytes: w.Heap, Telemetry: true, Introspection: true}
		})
		censusVM = vm
		wr.BaseTrialsNs = append(wr.BaseTrialsNs, base.Nanoseconds())
		wr.CensusTrialsNs = append(wr.CensusTrialsNs, census.Nanoseconds())
		wr.OverheadTrialsPct = append(wr.OverheadTrialsPct,
			100*(float64(census)/float64(base)-1))
	}

	baseF := make([]float64, len(wr.BaseTrialsNs))
	censusF := make([]float64, len(wr.CensusTrialsNs))
	for i := range wr.BaseTrialsNs {
		baseF[i] = float64(wr.BaseTrialsNs[i])
		censusF[i] = float64(wr.CensusTrialsNs[i])
	}
	wr.BaseMedianNs = int64(stats.Median(baseF))
	wr.CensusMedianNs = int64(stats.Median(censusF))
	wr.CensusOverheadPct = stats.Median(wr.OverheadTrialsPct)
	wr.BaseSpreadPct = stats.SpreadPct(baseF)
	wr.CensusSpreadPct = stats.SpreadPct(censusF)

	// Telemetry of the final census trial: pause percentiles and the
	// census/live-words cross-check.
	h := censusVM.Telemetry().PauseHistogram()
	wr.PauseP50Ns = h.Quantile(0.5).Nanoseconds()
	wr.PauseP99Ns = h.Quantile(0.99).Nanoseconds()
	wr.PauseP999Ns = h.Quantile(0.999).Nanoseconds()
	wr.PauseMaxNs = h.Max().Nanoseconds()
	wr.Collections = censusVM.GCStats().Collections
	censusVM.Collect()
	if snap, ok := censusVM.LatestCensus(); ok {
		wr.CensusLiveWords = snap.TotalCellWords
		wr.LiveWordsMatch = snap.TotalCellWords == censusVM.HeapStats().LiveWords
	}
	if progress != nil {
		fmt.Fprintf(progress, "  %-12s base %v, census %v (spread %.1f%%/%.1f%%), overhead %+.2f%%\n",
			w.Name, time.Duration(wr.BaseMedianNs), time.Duration(wr.CensusMedianNs),
			wr.BaseSpreadPct, wr.CensusSpreadPct, wr.CensusOverheadPct)
	}
	return wr
}

// measureMarkSpeedup builds one live heap from the workload and re-marks it
// at several worker widths, timing only the mark phase. The heap does not
// change between collections, so every width traces the identical object
// graph — the cleanest apples-to-apples mark comparison the harness can get.
func measureMarkSpeedup(w Workload, opt Options) MarkSpeedupRun {
	const reps = 5
	vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap})
	run := w.New(vm, false)
	for i := 0; i < opt.Iterations; i++ {
		run(i)
	}
	out := MarkSpeedupRun{Name: w.Name}
	var seqNs int64
	for _, width := range []int{1, 2, 4, 8} {
		vm.SetMarkWorkers(width)
		vm.Collect() // warm: builds the engine and settles the live set
		var markNs int64
		var steals, marked int
		for r := 0; r < reps; r++ {
			col := vm.Collect()
			markNs += col.MarkTime.Nanoseconds()
			marked = col.ObjectsMarked
			for _, ws := range col.PerWorker {
				steals += ws.Steals
			}
		}
		mean := markNs / reps
		p := MarkWidthPoint{Workers: width, MarkNs: mean, Marked: marked, StealsMu: float64(steals) / reps}
		if width == 1 {
			seqNs = mean
		}
		if mean > 0 {
			p.Speedup = float64(seqNs) / float64(mean)
		}
		out.Widths = append(out.Widths, p)
	}
	return out
}

// measureAttribution runs one workload with its assertions armed and cost
// attribution on, folding the run's telemetry events into cumulative
// per-kind cost rows and the closing pressure snapshot.
func measureAttribution(w Workload, opt Options) (AssertCostRun, AllocRateRun) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: w.Heap, Infrastructure: true,
		Telemetry: true, CostAttribution: true,
	})
	run := w.New(vm, true)
	for i := 0; i < opt.Iterations; i++ {
		run(i)
	}
	vm.Collect()

	cost := AssertCostRun{Name: w.Name}
	checks := map[string]uint64{}
	ns := map[string]int64{}
	var order []string
	for _, ev := range vm.Telemetry().Events() {
		cost.TotalGC += ev.TotalNs
		for _, c := range ev.Costs {
			if _, seen := checks[c.Kind]; !seen {
				order = append(order, c.Kind)
			}
			checks[c.Kind] += c.Checks
			ns[c.Kind] += c.Ns
		}
	}
	for _, kind := range order {
		p := CostKindPoint{Kind: kind, Checks: checks[kind], Ns: ns[kind]}
		if cost.TotalGC > 0 {
			p.PctGC = 100 * float64(p.Ns) / float64(cost.TotalGC)
		}
		cost.Kinds = append(cost.Kinds, p)
	}

	rate := AllocRateRun{Name: w.Name}
	if pr, ok := vm.Pressure(); ok {
		rate.AllocRateWps = pr.AllocRateWps
		rate.OccupancySamples = len(pr.Occupancy)
		if n := len(pr.Occupancy); n > 0 {
			rate.FinalOccupancyPct = pr.Occupancy[n-1].Pct
		}
		rate.Threads = len(pr.Threads)
	}
	return cost, rate
}

// MeasureBaseline measures the assertion-bearing workloads of suite with
// base/census interleaving and returns the versioned run document, stamped
// with the current runner. progress receives human-readable status lines
// (nil for silence).
func MeasureBaseline(suite []Workload, opt Options, progress io.Writer) *RunDoc {
	doc := &RunDoc{
		SchemaVersion: RunSchemaVersion,
		GeneratedUnix: time.Now().Unix(),
		Trials:        opt.Trials,
		Iterations:    opt.Iterations,
		Runner:        CurrentRunner(),
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue // the baseline tracks the paper's featured workloads
		}
		if progress != nil {
			fmt.Fprintf(progress, "baseline %-12s (%d trials x %d iters, base/census interleaved)\n",
				w.Name, opt.Trials, opt.Iterations)
		}
		doc.Workloads = append(doc.Workloads, measureWorkload(w, opt, progress))
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue
		}
		if progress != nil {
			fmt.Fprintf(progress, "mark speedup %-12s (widths 1,2,4,8 on %d CPUs)\n", w.Name, doc.Runner.CPUs)
		}
		doc.MarkSpeedup = append(doc.MarkSpeedup, measureMarkSpeedup(w, opt))
	}
	for _, w := range suite {
		if !w.HasAsserts {
			continue
		}
		if progress != nil {
			fmt.Fprintf(progress, "attribution %-12s (assertions + cost accounting)\n", w.Name)
		}
		cost, rate := measureAttribution(w, opt)
		doc.AssertCost = append(doc.AssertCost, cost)
		doc.AllocRate = append(doc.AllocRate, rate)
	}
	return doc
}
