// Package jbb is a miniature SPECjbb2000 / pseudojbb: a three-tier business
// workload with data stored in B-trees rather than an external database
// (§3.2.1 of the paper). A Company owns Warehouses, which own Districts;
// each District stores its open Orders in a longBTree orderTable and its
// Customers in an array. Transactions create orders, take payments, and
// deliver (destroy) orders.
//
// The three bugs the paper found in SPECjbb2000 are reproducible through
// Config knobs:
//
//   - LeakLastOrder: Customer.lastOrder is not cleared when an Order is
//     destroyed, so destroyed Orders stay reachable from Customers.
//   - DragOldCompany: the oldCompany local is not nulled after the previous
//     Company is destroyed, dragging the whole old Company data structure
//     for one extra iteration.
//   - LeakOrderTable: DeliveryTransaction does not remove processed Orders
//     from the orderTable (the known SPECjbb leak first reported by Jump &
//     McKinley), producing the paper's Figure 1 path.
//
// With all knobs off the workload is the repaired program, used for the
// Figure 4/5 performance runs: one assert-instances plus one assert-ownedby
// per order added, all passing.
package jbb

import (
	"gcassert"
	"gcassert/internal/bench/wutil"
	"gcassert/internal/btree"
)

// Config parameterizes the workload.
type Config struct {
	// Warehouses, Districts (per warehouse) and Customers (per district)
	// size the long-lived object graph.
	Warehouses int
	Districts  int
	Customers  int
	// Transactions is the number of transactions per iteration.
	Transactions int
	// DeliveryBatch is how many oldest orders one delivery processes.
	DeliveryBatch int
	// Items sizes the company's item catalog (long-lived, not owned by any
	// orderTable, so it is traced by the normal scan, not the ownership
	// phase — as in the real benchmark, where the catalog dominates the
	// live heap).
	Items int

	// Seeded bugs (see package comment).
	LeakLastOrder  bool
	DragOldCompany bool
	LeakOrderTable bool

	// Asserts registers the paper's assertions: assert-instances(Company,1),
	// assert-ownedby(orderTable, order) in District.addOrder, and
	// assert-dead(order) at the end of delivery processing plus
	// assert-dead(company) in Company.destroy.
	Asserts bool
	// DisableOwnedBy suppresses only the assert-ownedby instrumentation, so
	// case studies can observe the pure assert-dead paths (the paper's
	// Figure 1 was produced this way, before they switched to ownership
	// assertions in §3.2.1).
	DisableOwnedBy bool

	// Seed for the deterministic transaction mix.
	Seed uint64
}

// DefaultConfig is the scale used by the harness.
func DefaultConfig() Config {
	return Config{
		Warehouses:    2,
		Districts:     5,
		Customers:     60,
		Transactions:  60000,
		DeliveryBatch: 20,
		Items:         15000,
		Seed:          1,
	}
}

// Managed field slots.
const (
	companyWarehouses = 0 // ref array
	companyItems      = 1 // ref array: the item catalog

	itemName  = 0 // ref: word array
	itemPrice = 1 // scalar

	whDistricts = 0 // ref array
	whID        = 1 // scalar

	distOrderTable = 0 // ref: longBTree
	distCustomers  = 1 // ref array
	distID         = 2 // scalar
	distNextOrder  = 3 // scalar

	custLastOrder = 0 // ref
	custAddress   = 1 // ref
	custID        = 2 // scalar

	addrStreet = 0 // ref: word array

	orderCustomer = 0 // ref
	orderLines    = 1 // ref array
	orderID       = 2 // scalar
	orderStatus   = 3 // scalar

	lineItem = 0 // scalar
	lineQty  = 1 // scalar
)

// JBB is one bound instance of the workload.
type JBB struct {
	cfg Config
	vm  *gcassert.Runtime
	th  *gcassert.Thread
	rng *wutil.RNG

	tCompany, tWarehouse, tDistrict gcassert.TypeID
	tCustomer, tAddress             gcassert.TypeID
	tOrder, tOrderline, tItem       gcassert.TypeID

	// companyGlobal roots the current company; mainFrame slot 0 holds the
	// oldCompany local from the paper's drag bug; treeScratch is shared by
	// every orderTable for rooting in-flight B-tree allocations.
	companyGlobal int
	mainFrame     *gcassert.Frame
	treeScratch   *gcassert.Frame

	// trees holds Go-side handles to the district orderTables of the
	// current company, indexed [warehouse][district].
	trees [][]*btree.Tree
}

// Types registers (or looks up) the workload's managed types.
func (j *JBB) defineTypes() {
	reg := j.vm.Registry()
	def := func(name string, fields ...gcassert.Field) gcassert.TypeID {
		if id, ok := reg.Lookup(name); ok {
			return id
		}
		return j.vm.Define(name, fields...)
	}
	j.tCompany = def("spec/jbb/Company",
		gcassert.Field{Name: "warehouses", Ref: true},
		gcassert.Field{Name: "items", Ref: true})
	j.tItem = def("spec/jbb/Item",
		gcassert.Field{Name: "name", Ref: true},
		gcassert.Field{Name: "price", Ref: false})
	j.tWarehouse = def("spec/jbb/Warehouse",
		gcassert.Field{Name: "districts", Ref: true},
		gcassert.Field{Name: "id", Ref: false})
	j.tDistrict = def("spec/jbb/District",
		gcassert.Field{Name: "orderTable", Ref: true},
		gcassert.Field{Name: "customers", Ref: true},
		gcassert.Field{Name: "id", Ref: false},
		gcassert.Field{Name: "nextOrder", Ref: false})
	j.tCustomer = def("spec/jbb/Customer",
		gcassert.Field{Name: "lastOrder", Ref: true},
		gcassert.Field{Name: "address", Ref: true},
		gcassert.Field{Name: "id", Ref: false})
	j.tAddress = def("spec/jbb/Address", gcassert.Field{Name: "street", Ref: true})
	j.tOrder = def("spec/jbb/Order",
		gcassert.Field{Name: "customer", Ref: true},
		gcassert.Field{Name: "lines", Ref: true},
		gcassert.Field{Name: "id", Ref: false},
		gcassert.Field{Name: "status", Ref: false})
	j.tOrderline = def("spec/jbb/Orderline",
		gcassert.Field{Name: "item", Ref: false},
		gcassert.Field{Name: "qty", Ref: false})
}

// New binds the workload to a runtime.
func New(vm *gcassert.Runtime, cfg Config) *JBB {
	if cfg.Warehouses == 0 {
		cfg = DefaultConfig()
	}
	j := &JBB{cfg: cfg, vm: vm, rng: wutil.NewRNG(cfg.Seed)}
	j.defineTypes()
	j.th = vm.NewThread("jbb-main")
	j.companyGlobal = vm.NewGlobal("company")
	j.mainFrame = j.th.Push(2) // slot 0: oldCompany, slot 1: scratch
	j.treeScratch = j.th.Push(btree.ScratchSlots)
	return j
}

// Thread returns the workload's mutator thread.
func (j *JBB) Thread() *gcassert.Thread { return j.th }

// Company returns the current company object.
func (j *JBB) Company() gcassert.Ref { return j.vm.GetGlobal(j.companyGlobal) }

// OrderType returns the Order TypeID (used by tests and examples).
func (j *JBB) OrderType() gcassert.TypeID { return j.tOrder }

// CompanyType returns the Company TypeID.
func (j *JBB) CompanyType() gcassert.TypeID { return j.tCompany }

// buildCompany allocates and populates a fresh company.
func (j *JBB) buildCompany() gcassert.Ref {
	vm, th, cfg := j.vm, j.th, j.cfg
	fr := th.Push(2)
	defer th.Pop()

	company := th.New(j.tCompany)
	fr.Set(0, company)
	vm.SetRef(company, companyWarehouses, th.NewArray(gcassert.TRefArray, cfg.Warehouses))
	// Populate the item catalog: the bulk of the long-lived heap.
	vm.SetRef(company, companyItems, th.NewArray(gcassert.TRefArray, cfg.Items))
	items := vm.GetRef(company, companyItems)
	for i := 0; i < cfg.Items; i++ {
		it := th.New(j.tItem)
		vm.SetRefAt(items, i, it)
		vm.SetScalar(it, itemPrice, j.rng.Next()%10000)
		vm.SetRef(it, itemName, wutil.NewString(vm, th, j.rng, 4))
	}

	j.trees = make([][]*btree.Tree, cfg.Warehouses)
	for w := 0; w < cfg.Warehouses; w++ {
		wh := th.New(j.tWarehouse)
		vm.SetRefAt(vm.GetRef(company, companyWarehouses), w, wh)
		vm.SetScalar(wh, whID, uint64(w))
		vm.SetRef(wh, whDistricts, th.NewArray(gcassert.TRefArray, cfg.Districts))
		j.trees[w] = make([]*btree.Tree, cfg.Districts)
		for d := 0; d < cfg.Districts; d++ {
			dist := th.New(j.tDistrict)
			vm.SetRefAt(vm.GetRef(wh, whDistricts), d, dist)
			vm.SetScalar(dist, distID, uint64(d))
			tree := btree.New(vm, th, j.treeScratch)
			vm.SetRef(dist, distOrderTable, tree.Ref)
			j.trees[w][d] = tree
			vm.SetRef(dist, distCustomers, th.NewArray(gcassert.TRefArray, cfg.Customers))
			for c := 0; c < cfg.Customers; c++ {
				cust := th.New(j.tCustomer)
				vm.SetRefAt(vm.GetRef(dist, distCustomers), c, cust)
				vm.SetScalar(cust, custID, uint64(c))
				addr := th.New(j.tAddress)
				vm.SetRef(cust, custAddress, addr)
				vm.SetRef(addr, addrStreet, wutil.NewString(vm, th, j.rng, 8))
			}
		}
	}
	return company
}

// district returns the managed district object (w, d) of the company.
func (j *JBB) district(company gcassert.Ref, w, d int) gcassert.Ref {
	vm := j.vm
	wh := vm.RefAt(vm.GetRef(company, companyWarehouses), w)
	return vm.RefAt(vm.GetRef(wh, whDistricts), d)
}

// addOrder creates an Order for a random customer of district (w, d),
// inserts it into the orderTable, and applies the paper's instrumentation
// (District.addOrder was the hook point for assert-ownedby).
func (j *JBB) addOrder(company gcassert.Ref, w, d int) {
	vm, th, cfg := j.vm, j.th, j.cfg
	dist := j.district(company, w, d)
	tree := j.trees[w][d]

	fr := th.Push(1)
	order := th.New(j.tOrder)
	fr.Set(0, order)

	cust := vm.RefAt(vm.GetRef(dist, distCustomers), j.rng.Intn(cfg.Customers))
	vm.SetRef(order, orderCustomer, cust)
	nLines := 5 + j.rng.Intn(10)
	vm.SetRef(order, orderLines, th.NewArray(gcassert.TRefArray, nLines))
	lines := vm.GetRef(order, orderLines)
	items := vm.GetRef(company, companyItems)
	for i := 0; i < nLines; i++ {
		ln := th.New(j.tOrderline)
		item := j.rng.Intn(j.cfg.Items)
		// Price the line from the catalog (a read; orderlines hold the item
		// id, not a reference, so the catalog stays outside owner regions).
		price := vm.GetScalar(vm.RefAt(items, item), itemPrice)
		vm.SetScalar(ln, lineItem, uint64(item))
		vm.SetScalar(ln, lineQty, (1+uint64(j.rng.Intn(10)))*price%1_000_000)
		vm.SetRefAt(lines, i, ln)
	}

	id := vm.GetScalar(dist, distNextOrder)
	vm.SetScalar(dist, distNextOrder, id+1)
	vm.SetScalar(order, orderID, id)
	tree.Put(int64(id), order)
	vm.SetRef(cust, custLastOrder, order)

	if cfg.Asserts && !cfg.DisableOwnedBy {
		vm.AssertOwnedBy(tree.Ref, order)
	}
	th.Pop()
}

// payment allocates transient history records for a random customer.
func (j *JBB) payment(company gcassert.Ref, w, d int) {
	vm, th := j.vm, j.th
	dist := j.district(company, w, d)
	cust := vm.RefAt(vm.GetRef(dist, distCustomers), j.rng.Intn(j.cfg.Customers))
	fr := th.Push(1)
	hist := wutil.NewString(vm, th, j.rng, 12)
	fr.Set(0, hist)
	// Record the customer id in the history record; the record itself is
	// transient and dropped when the frame pops.
	vm.SetWordAt(hist, 0, vm.GetScalar(cust, custID))
	th.Pop()
}

// delivery processes (destroys) the oldest DeliveryBatch orders of district
// (w, d): DeliveryTransaction.process() in SPECjbb.
func (j *JBB) delivery(company gcassert.Ref, w, d int) {
	vm, cfg := j.vm, j.cfg
	tree := j.trees[w][d]
	for i := 0; i < cfg.DeliveryBatch; i++ {
		var oldest int64 = -1
		tree.ForEach(func(k int64, v gcassert.Ref) bool {
			oldest = k
			return false
		})
		if oldest < 0 {
			return
		}
		var order gcassert.Ref
		if cfg.LeakOrderTable {
			// The SPECjbb bug: the order is "completed" but never removed
			// from the orderTable.
			order, _ = tree.Get(oldest)
		} else {
			order, _ = tree.Remove(oldest)
		}
		j.destroyOrder(order)
		if cfg.Asserts {
			// The paper's instrumentation: at the end of
			// DeliveryTransaction.process(), the order should be dead.
			vm.AssertDead(order)
		}
	}
}

// destroyOrder is Order.destroy(): clear the back-references that would
// keep the order alive, unless the seeded bug leaves them dangling.
func (j *JBB) destroyOrder(order gcassert.Ref) {
	vm := j.vm
	vm.SetScalar(order, orderStatus, 1)
	cust := vm.GetRef(order, orderCustomer)
	if !j.cfg.LeakLastOrder && cust != gcassert.Nil && vm.GetRef(cust, custLastOrder) == order {
		vm.SetRef(cust, custLastOrder, gcassert.Nil)
	}
}

// orderStatusTx reads a random customer's last order.
func (j *JBB) orderStatusTx(company gcassert.Ref, w, d int) uint64 {
	vm := j.vm
	dist := j.district(company, w, d)
	cust := vm.RefAt(vm.GetRef(dist, distCustomers), j.rng.Intn(j.cfg.Customers))
	if o := vm.GetRef(cust, custLastOrder); o != gcassert.Nil {
		return vm.GetScalar(o, orderID)
	}
	return 0
}

// stockLevel walks the orderTable counting open orders.
func (j *JBB) stockLevel(w, d int) int {
	count := 0
	j.trees[w][d].ForEach(func(int64, gcassert.Ref) bool {
		count++
		return count < 200
	})
	return count
}

// RunIteration executes one benchmark iteration: destroy the previous
// company, build a fresh one, then run the transaction mix — the structure
// of pseudojbb's main loop, including the oldCompany behavior (§3.2.1).
func (j *JBB) RunIteration(iter int) {
	vm, cfg := j.vm, j.cfg

	old := vm.GetGlobal(j.companyGlobal)
	if old != gcassert.Nil {
		// Destroy the previous company. The paper's second bug: the
		// oldCompany local variable remains visible through the whole
		// method, dragging the previous Company for the iteration.
		j.mainFrame.Set(0, old)
		vm.SetGlobal(j.companyGlobal, gcassert.Nil)
		if cfg.Asserts {
			vm.AssertDead(old)
		}
		if !cfg.DragOldCompany {
			j.mainFrame.Set(0, gcassert.Nil)
		}
	}

	company := j.buildCompany()
	vm.SetGlobal(j.companyGlobal, company)
	if cfg.Asserts {
		vm.AssertInstances(j.tCompany, 1)
	}

	for t := 0; t < cfg.Transactions; t++ {
		w := j.rng.Intn(cfg.Warehouses)
		d := j.rng.Intn(cfg.Districts)
		switch p := j.rng.Intn(100); {
		case p < 45:
			j.addOrder(company, w, d)
		case p < 88:
			j.payment(company, w, d)
		case p < 92:
			j.delivery(company, w, d)
		case p < 96:
			j.orderStatusTx(company, w, d)
		default:
			j.stockLevel(w, d)
		}
	}

	// End of iteration: the drag bug keeps oldCompany live until here.
	j.mainFrame.Set(0, gcassert.Nil)
}
