package jbb

import (
	"testing"

	"gcassert"
)

func newJBB(t *testing.T, mutate func(*Config)) (*JBB, *gcassert.Runtime, *gcassert.CollectingReporter) {
	t.Helper()
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true, Reporter: rep})
	cfg := DefaultConfig()
	cfg.Transactions = 4000
	cfg.Items = 2000
	if mutate != nil {
		mutate(&cfg)
	}
	return New(vm, cfg), vm, rep
}

func TestIterationBuildsCompany(t *testing.T) {
	j, vm, _ := newJBB(t, nil)
	j.RunIteration(0)
	company := j.Company()
	if company == gcassert.Nil {
		t.Fatal("no company after iteration")
	}
	if vm.TypeName(company) != "spec/jbb/Company" {
		t.Errorf("company type = %s", vm.TypeName(company))
	}
	// The structure is navigable: warehouses -> districts -> orderTable.
	whs := vm.GetRef(company, companyWarehouses)
	if vm.ArrayLen(whs) != j.cfg.Warehouses {
		t.Errorf("warehouses = %d", vm.ArrayLen(whs))
	}
	wh := vm.RefAt(whs, 0)
	dists := vm.GetRef(wh, whDistricts)
	dist := vm.RefAt(dists, 0)
	if tbl := vm.GetRef(dist, distOrderTable); tbl == gcassert.Nil {
		t.Error("district has no orderTable")
	}
	if items := vm.GetRef(company, companyItems); vm.ArrayLen(items) != j.cfg.Items {
		t.Error("item catalog size")
	}
}

func TestCompanyChurnsAcrossIterations(t *testing.T) {
	j, _, _ := newJBB(t, nil)
	j.RunIteration(0)
	first := j.Company()
	j.RunIteration(1)
	second := j.Company()
	if first == second {
		t.Error("company not replaced between iterations")
	}
}

func TestDeterministicTransactionMix(t *testing.T) {
	run := func() gcassert.HeapStats {
		j, vm, _ := newJBB(t, nil)
		j.RunIteration(0)
		return vm.HeapStats()
	}
	a, b := run(), run()
	if a.ObjectsAllocated != b.ObjectsAllocated || a.WordsAllocated != b.WordsAllocated {
		t.Errorf("nondeterministic allocation: %+v vs %+v", a, b)
	}
}

func TestRepairedRunsCleanWithAsserts(t *testing.T) {
	j, vm, rep := newJBB(t, func(c *Config) { c.Asserts = true })
	j.RunIteration(0)
	j.RunIteration(1)
	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("violations on repaired program: %v", rep.Violations()[0].String())
	}
	st := vm.AssertionStats()
	if st.OwnedPairsAsserted == 0 || st.DeadAsserted == 0 {
		t.Errorf("no assertion traffic: %+v", st)
	}
	if st.OwneesChecked == 0 {
		t.Error("ownership phase never ran")
	}
}

func TestNoAssertsMeansNoEngineTraffic(t *testing.T) {
	j, vm, _ := newJBB(t, nil)
	j.RunIteration(0)
	vm.Collect()
	st := vm.AssertionStats()
	if st.DeadAsserted != 0 || st.OwnedPairsAsserted != 0 {
		t.Errorf("unexpected assertions: %+v", st)
	}
}

func TestZeroConfigUsesDefaults(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20})
	j := New(vm, Config{})
	if j.cfg.Warehouses != DefaultConfig().Warehouses {
		t.Error("zero config not defaulted")
	}
}

func TestTypeAccessors(t *testing.T) {
	j, vm, _ := newJBB(t, nil)
	if name := vm.Registry().Name(j.OrderType()); name != "spec/jbb/Order" {
		t.Errorf("OrderType = %s", name)
	}
	if name := vm.Registry().Name(j.CompanyType()); name != "spec/jbb/Company" {
		t.Errorf("CompanyType = %s", name)
	}
	if j.Thread() == nil {
		t.Error("Thread nil")
	}
}
