package bench

import (
	"fmt"
	"io"

	"gcassert/internal/stats"
)

// PrintFigure2 reports the run-time overhead of the assertion infrastructure
// (Base vs Infrastructure) for each workload, normalized to Base — the
// paper's Figure 2 (geomean total +2.75%, mutator +1.12% in the paper).
func PrintFigure2(w io.Writer, comps []*Comparison) {
	fmt.Fprintln(w, "Figure 2: run-time overhead of GC assertion infrastructure (normalized to Base)")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %14s\n", "benchmark", "base (s)", "infra (s)", "total(norm)", "mutator(norm)")
	var totals, muts []float64
	for _, c := range comps {
		base, infra := c.Results[Base], c.Results[Infra]
		if base == nil || infra == nil {
			continue
		}
		nt := c.Normalized(Infra, TotalTime)
		nm := c.Normalized(Infra, MutatorTime)
		totals = append(totals, nt)
		muts = append(muts, nm)
		fmt.Fprintf(w, "%-12s %8.4f±%.3f %8.4f±%.3f %14.4f %14.4f\n",
			c.Workload, base.Total.Mean(), base.Total.CI90(),
			infra.Total.Mean(), infra.Total.CI90(), nt, nm)
	}
	fmt.Fprintf(w, "%-12s %12s %12s %14.4f %14.4f\n", "geomean", "", "",
		stats.GeoMean(totals), stats.GeoMean(muts))
	fmt.Fprintf(w, "paper:       total +2.75%%, mutator +1.12%% (geomean)\n\n")
}

// PrintFigure3 reports the GC-time overhead of the infrastructure — the
// paper's Figure 3 (geomean +13.36%, worst case bloat +30%).
func PrintFigure3(w io.Writer, comps []*Comparison) {
	fmt.Fprintln(w, "Figure 3: GC-time overhead of GC assertion infrastructure (normalized to Base)")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %8s\n", "benchmark", "baseGC (s)", "infraGC (s)", "GC(norm)", "GCs")
	var norms []float64
	worst, worstName := 0.0, ""
	for _, c := range comps {
		base, infra := c.Results[Base], c.Results[Infra]
		if base == nil || infra == nil {
			continue
		}
		n := c.Normalized(Infra, GCTime)
		norms = append(norms, n)
		if n > worst {
			worst, worstName = n, c.Workload
		}
		fmt.Fprintf(w, "%-12s %8.4f±%.3f %8.4f±%.3f %14.4f %8.1f\n",
			c.Workload, base.GC.Mean(), base.GC.CI90(),
			infra.GC.Mean(), infra.GC.CI90(), n, infra.Collections.Mean())
	}
	fmt.Fprintf(w, "%-12s %12s %12s %14.4f\n", "geomean", "", "", stats.GeoMean(norms))
	fmt.Fprintf(w, "worst:       %s at %.4f\n", worstName, worst)
	fmt.Fprintf(w, "paper:       +13.36%% geomean, worst ~1.30 (bloat)\n\n")
}

// PrintFigure4 reports total run time with assertions added, for the
// asserting workloads — the paper's Figure 4 (_209_db +1.02%, pseudojbb
// +1.84% vs Base; both < 2%).
func PrintFigure4(w io.Writer, comps []*Comparison) {
	fmt.Fprintln(w, "Figure 4: run-time overhead with GC assertions added (normalized to Base)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %12s\n", "benchmark", "base (s)", "infra(norm)", "asserts(norm)", "deadAsserts", "ownedPairs")
	for _, c := range comps {
		base, wa := c.Results[Base], c.Results[WithAssertions]
		if base == nil || wa == nil {
			continue
		}
		fmt.Fprintf(w, "%-12s %8.4f±%.3f %12.4f %12.4f %12d %12d\n",
			c.Workload, base.Total.Mean(), base.Total.CI90(),
			c.Normalized(Infra, TotalTime), c.Normalized(WithAssertions, TotalTime),
			wa.AssertStats.DeadAsserted, wa.AssertStats.OwnedPairsAsserted)
	}
	fmt.Fprintf(w, "paper:       _209_db +1.02%%, pseudojbb +1.84%% total (vs Base)\n\n")
}

// PrintFigure5 reports GC time with assertions added — the paper's Figure 5
// (_209_db +49.7%, pseudojbb +15.3% vs Base), along with the ownership
// checking volume (the paper reports ~15,274 ownees/GC for db and ~420 for
// pseudojbb).
func PrintFigure5(w io.Writer, comps []*Comparison) {
	fmt.Fprintln(w, "Figure 5: GC-time overhead with GC assertions added (normalized to Base)")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %16s\n", "benchmark", "baseGC (s)", "infraGC(norm)", "asserts(norm)", "ownees/GC")
	for _, c := range comps {
		base, wa := c.Results[Base], c.Results[WithAssertions]
		if base == nil || wa == nil {
			continue
		}
		fmt.Fprintf(w, "%-12s %8.4f±%.3f %12.4f %14.4f %16.1f\n",
			c.Workload, base.GC.Mean(), base.GC.CI90(),
			c.Normalized(Infra, GCTime), c.Normalized(WithAssertions, GCTime),
			wa.OwneesCheckedPerGC())
	}
	fmt.Fprintf(w, "paper:       _209_db +49.7%%, pseudojbb +15.3%% GC time (vs Base)\n\n")
}
