package bench

import (
	"testing"

	"gcassert"
	"gcassert/internal/bench/db"
)

// TestReproductionShape asserts the paper's headline shape on a small but
// GC-heavy configuration: the assertion infrastructure costs more GC time
// than Base, while full instrumentation keeps total time within a loose
// bound of Base. Thresholds are deliberately generous — this is a shape
// regression test, not a performance benchmark (EXPERIMENTS.md records the
// measured magnitudes).
func TestReproductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	w := Workload{Name: "shape-db", Heap: 8 << 20, HasAsserts: true,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			cfg := db.DefaultConfig()
			cfg.Asserts = asserts
			d := db.New(vm, cfg)
			return d.RunIteration
		}}
	c := Compare(w, []Mode{Base, Infra, WithAssertions}, Options{Trials: 5, Iterations: 2})

	gcNorm := c.Normalized(Infra, GCTime)
	if gcNorm < 1.0 {
		t.Errorf("infrastructure GC overhead = %.3f, expected > 1 (paper: ~1.13 geomean)", gcNorm)
	}
	totalNorm := c.Normalized(WithAssertions, TotalTime)
	if totalNorm > 1.6 {
		t.Errorf("WithAssertions total = %.3f x Base, expected close to 1 (paper: ~1.01)", totalNorm)
	}
	gcAsserts := c.Normalized(WithAssertions, GCTime)
	if gcAsserts <= gcNorm {
		t.Errorf("assertion checking should cost more GC time (%.3f) than bare infrastructure (%.3f)",
			gcAsserts, gcNorm)
	}
	// The checking volume matches the paper's _209_db character: thousands
	// of ownees checked per collection.
	if r := c.Results[WithAssertions]; r.OwneesCheckedPerGC() < 1000 {
		t.Errorf("ownees/GC = %.0f, expected thousands", r.OwneesCheckedPerGC())
	}
}

// TestGenerationalDelaysDetectionShape is the §2.2 claim as a regression
// test: the generational collector takes strictly more collections to
// detect an assert-dead violation than the full-heap collector.
func TestGenerationalDelaysDetectionShape(t *testing.T) {
	detect := func(gen bool) uint64 {
		rep := &gcassert.CollectingReporter{}
		vm := gcassert.New(gcassert.Options{
			HeapBytes:      2 << 20,
			Infrastructure: true,
			Reporter:       rep,
			Generational:   gen,
			MinorRatio:     8,
		})
		node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
		th := vm.NewThread("main")
		fr := th.Push(1)
		leak := th.New(node)
		fr.Set(0, leak)
		vm.AssertDead(leak)
		for rep.Len() == 0 {
			cfr := th.Push(1)
			var head gcassert.Ref
			for i := 0; i < 5000; i++ {
				n := th.New(node)
				vm.Space().SetRef(n, 0, head)
				head = n
				cfr.Set(0, head)
			}
			th.Pop()
		}
		return vm.GCStats().Collections + vm.MinorGCStats().Collections
	}
	full := detect(false)
	gen := detect(true)
	if gen <= full {
		t.Errorf("generational detected after %d collections, full-heap after %d; expected a delay", gen, full)
	}
}
