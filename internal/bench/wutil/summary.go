package wutil

import (
	"fmt"
	"io"
	"time"

	"gcassert"
)

// WriteGCSummary writes the standard end-of-run GC summary shared by the
// command-line tools (gctrace, gcassert-bench -baseline, gcheap): collection
// counts, the event-stream-vs-GCStats cross-check, and pause percentiles.
//
// The cross-check exists because the telemetry event stream and the
// collector's cumulative stats measure the same phases independently; any
// deviation beyond ring-eviction effects would mean one of them is lying.
// Runtimes without telemetry get the GCStats half only.
func WriteGCSummary(w io.Writer, vm *gcassert.Runtime, elapsed time.Duration) {
	st := vm.GCStats()
	fmt.Fprintf(w, "\n%d collections in %v (%.1f%% of wall time in GC)\n",
		st.Collections, elapsed.Round(time.Millisecond),
		100*float64(st.TotalGCTime)/float64(elapsed))

	tel := vm.Telemetry()
	if tel == nil {
		fmt.Fprintf(w, "GC time: ownership %v  mark %v  sweep %v  total %v\n",
			st.OwnershipTime, st.MarkTime, st.SweepTime, st.TotalGCTime)
		return
	}

	events := tel.Events()
	var own, mark, sweep, total int64
	for i := range events {
		e := &events[i]
		own += e.PhaseNs("ownership")
		mark += e.PhaseNs("mark")
		sweep += e.PhaseNs("sweep")
		total += e.TotalNs
	}
	dev := func(evNs int64, st time.Duration) string {
		if st == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.3f%%", 100*(float64(evNs)/float64(st)-1))
	}
	fmt.Fprintf(w, "event stream vs GCStats (deviation):\n")
	fmt.Fprintf(w, "  ownership %12v vs %12v  %s\n", time.Duration(own), st.OwnershipTime, dev(own, st.OwnershipTime))
	fmt.Fprintf(w, "  mark      %12v vs %12v  %s\n", time.Duration(mark), st.MarkTime, dev(mark, st.MarkTime))
	fmt.Fprintf(w, "  sweep     %12v vs %12v  %s\n", time.Duration(sweep), st.SweepTime, dev(sweep, st.SweepTime))
	fmt.Fprintf(w, "  total     %12v vs %12v  %s\n", time.Duration(total), st.TotalGCTime, dev(total, st.TotalGCTime))
	h := tel.PauseHistogram()
	fmt.Fprintf(w, "pause: p50 %v  p90 %v  p95 %v  p99 %v  max %v\n",
		h.Quantile(0.5).Round(time.Microsecond), h.Quantile(0.9).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond), h.Max().Round(time.Microsecond))
	if n := tel.Ring().Total(); n > uint64(len(events)) {
		fmt.Fprintf(w, "note: ring retained %d of %d events; raise the ring size for full-run exports\n", len(events), n)
	}
}
