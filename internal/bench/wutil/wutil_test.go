package wutil

import (
	"math/rand"
	"testing"

	"gcassert"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Error("zero seed produced zeros")
	}
}

func TestRNGIntnAndFloat(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("digit %d count %d: badly skewed", d, c)
		}
	}
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func newVM(t *testing.T, heapBytes int) (*gcassert.Runtime, *gcassert.Thread) {
	t.Helper()
	vm := gcassert.New(gcassert.Options{HeapBytes: heapBytes})
	return vm, vm.NewThread("main")
}

func TestHashMapBasics(t *testing.T) {
	vm, th := newVM(t, 8<<20)
	g := vm.NewGlobal("map")
	m := NewHashMap(vm, th, 8)
	vm.SetGlobal(g, m.Ref)
	node := vm.Define("V", gcassert.Field{Name: "x", Ref: false})
	fr := th.Push(1)

	if m.Len() != 0 {
		t.Error("fresh map not empty")
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty")
	}
	v := th.New(node)
	fr.Set(0, v)
	if _, replaced := m.Put(1, v); replaced {
		t.Error("first Put replaced")
	}
	got, ok := m.Get(1)
	if !ok || got != v {
		t.Error("Get after Put")
	}
	v2 := th.New(node)
	fr.Set(0, v2)
	prev, replaced := m.Put(1, v2)
	if !replaced || prev != v {
		t.Error("replace semantics")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	rv, ok := m.Remove(1)
	if !ok || rv != v2 {
		t.Error("Remove")
	}
	if _, ok := m.Remove(1); ok {
		t.Error("double Remove")
	}
}

func TestHashMapGrowAndModel(t *testing.T) {
	vm, th := newVM(t, 32<<20)
	g := vm.NewGlobal("map")
	m := NewHashMap(vm, th, 4) // tiny: forces many growths
	vm.SetGlobal(g, m.Ref)
	node := vm.Define("V", gcassert.Field{Name: "x", Ref: false})
	fr := th.Push(1)
	rng := rand.New(rand.NewSource(3))
	model := map[uint64]uint64{}
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(4000))
		switch rng.Intn(3) {
		case 0:
			v := th.New(node)
			fr.Set(0, v)
			vm.SetScalar(v, 0, k*7)
			m.Put(k, v)
			model[k] = k * 7
			fr.Set(0, gcassert.Nil)
		case 1:
			v, ok := m.Get(k)
			_, inModel := model[k]
			if ok != inModel {
				t.Fatalf("op %d: Get mismatch", op)
			}
			if ok && vm.GetScalar(v, 0) != model[k] {
				t.Fatalf("op %d: value mismatch", op)
			}
		case 2:
			_, ok := m.Remove(k)
			if _, inModel := model[k]; ok != inModel {
				t.Fatalf("op %d: Remove mismatch", op)
			}
			delete(model, k)
		}
		if m.Len() != len(model) {
			t.Fatalf("op %d: Len=%d model=%d", op, m.Len(), len(model))
		}
	}
	// ForEach covers exactly the model.
	seen := map[uint64]bool{}
	m.ForEach(func(k uint64, v gcassert.Ref) bool {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
		if vm.GetScalar(v, 0) != model[k] {
			t.Fatalf("ForEach value mismatch at %d", k)
		}
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("ForEach saw %d keys, model %d", len(seen), len(model))
	}
}

func TestHashMapSurvivesGC(t *testing.T) {
	vm, th := newVM(t, 2<<20)
	g := vm.NewGlobal("map")
	m := NewHashMap(vm, th, 64)
	vm.SetGlobal(g, m.Ref)
	rng := NewRNG(5)
	fr := th.Push(1)
	for k := uint64(0); k < 2000; k++ {
		s := NewString(vm, th, rng, 6)
		fr.Set(0, s)
		m.Put(k, s)
		fr.Set(0, gcassert.Nil)
		// Churn to force collections.
		fr.Set(0, th.NewArray(gcassert.TWordArray, 128))
		fr.Set(0, gcassert.Nil)
	}
	if vm.Collector().GCCount() == 0 {
		t.Fatal("no GCs; test ineffective")
	}
	for k := uint64(0); k < 2000; k++ {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("key %d lost across GC", k)
		}
	}
}

func TestHashMapForEachEarlyStop(t *testing.T) {
	vm, th := newVM(t, 8<<20)
	g := vm.NewGlobal("map")
	m := NewHashMap(vm, th, 8)
	vm.SetGlobal(g, m.Ref)
	fr := th.Push(1)
	for k := uint64(0); k < 10; k++ {
		s := th.NewArray(gcassert.TWordArray, 1)
		fr.Set(0, s)
		m.Put(k, s)
		fr.Set(0, gcassert.Nil)
	}
	n := 0
	m.ForEach(func(uint64, gcassert.Ref) bool { n++; return n < 4 })
	if n != 4 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestNewString(t *testing.T) {
	vm, th := newVM(t, 8<<20)
	rng := NewRNG(11)
	fr := th.Push(1)
	s := NewString(vm, th, rng, 16)
	fr.Set(0, s)
	if vm.ArrayLen(s) != 16 {
		t.Errorf("len = %d", vm.ArrayLen(s))
	}
	zero := 0
	for i := 0; i < 16; i++ {
		if vm.WordAt(s, i) == 0 {
			zero++
		}
	}
	if zero == 16 {
		t.Error("string not filled")
	}
}
