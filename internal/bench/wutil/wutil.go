// Package wutil provides shared building blocks for the synthetic
// benchmark workloads: a deterministic PRNG and common managed data
// structures (hash map, string-like word arrays).
//
// Allocation discipline: a reference returned by Thread.New is invisible to
// the collector until it is stored into a rooted object or a frame slot. The
// helpers here therefore either perform a single allocation and link it
// before allocating again, or root intermediates in a scratch frame, so that
// a collection triggered by heap exhaustion can never reclaim an in-flight
// object.
package wutil

import "gcassert"

// RNG is a deterministic xorshift64* generator, so every trial of every
// workload replays the identical allocation sequence.
type RNG uint64

// NewRNG seeds a generator (zero seeds are remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := RNG(seed)
	return &r
}

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = RNG(x)
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("wutil: Intn with n <= 0")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// HashMapTypeName and HashEntryTypeName are the managed types of HashMap.
const (
	HashMapTypeName   = "util/HashMap"
	HashEntryTypeName = "util/HashMap$Entry"
)

// HashMap slots.
const (
	hmBuckets = iota // ref: TRefArray of bucket heads
	hmSize           // scalar: number of entries
)

// Entry slots.
const (
	heNext = iota // ref: next entry in bucket
	heVal         // ref: value
	heKey         // scalar: key
)

// HashMap is a managed chained hash table with uint64 keys and reference
// values, standing in for java.util.HashMap in the workloads. The caller
// must keep Ref rooted.
type HashMap struct {
	vm        *gcassert.Runtime
	th        *gcassert.Thread
	entryType gcassert.TypeID
	// Ref is the managed map object.
	Ref gcassert.Ref
}

// HashMapTypes registers (or looks up) the map's managed types.
func HashMapTypes(vm *gcassert.Runtime) (mt, et gcassert.TypeID) {
	reg := vm.Registry()
	mt, ok := reg.Lookup(HashMapTypeName)
	if !ok {
		mt = vm.Define(HashMapTypeName,
			gcassert.Field{Name: "buckets", Ref: true},
			gcassert.Field{Name: "size", Ref: false},
		)
	}
	et, ok = reg.Lookup(HashEntryTypeName)
	if !ok {
		et = vm.Define(HashEntryTypeName,
			gcassert.Field{Name: "next", Ref: true},
			gcassert.Field{Name: "value", Ref: true},
			gcassert.Field{Name: "key", Ref: false},
		)
	}
	return mt, et
}

// NewHashMap allocates a managed map with the given initial bucket count.
func NewHashMap(vm *gcassert.Runtime, th *gcassert.Thread, buckets int) *HashMap {
	if buckets < 4 {
		buckets = 4
	}
	mt, et := HashMapTypes(vm)
	m := &HashMap{vm: vm, th: th, entryType: et}
	// Root the map object across the bucket-array allocation.
	fr := th.Push(1)
	obj := th.New(mt)
	fr.Set(0, obj)
	vm.SetRef(obj, hmBuckets, th.NewArray(gcassert.TRefArray, buckets))
	th.Pop()
	m.Ref = obj
	return m
}

// Len returns the number of entries.
func (m *HashMap) Len() int { return int(m.vm.GetScalar(m.Ref, hmSize)) }

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

// Put inserts or replaces the value under key, returning the previous value
// if the key was present.
func (m *HashMap) Put(key uint64, val gcassert.Ref) (gcassert.Ref, bool) {
	vm := m.vm
	buckets := vm.GetRef(m.Ref, hmBuckets)
	n := vm.ArrayLen(buckets)
	b := int(hashKey(key) % uint64(n))
	for e := vm.RefAt(buckets, b); e != gcassert.Nil; e = vm.GetRef(e, heNext) {
		if vm.GetScalar(e, heKey) == key {
			prev := vm.GetRef(e, heVal)
			vm.SetRef(e, heVal, val)
			return prev, true
		}
	}
	// Single allocation, linked before any further allocation: the value
	// must already be rooted by the caller.
	e := m.th.New(m.entryType)
	vm.SetScalar(e, heKey, key)
	vm.SetRef(e, heVal, val)
	vm.SetRef(e, heNext, vm.RefAt(buckets, b))
	vm.SetRefAt(buckets, b, e)
	size := m.Len() + 1
	vm.SetScalar(m.Ref, hmSize, uint64(size))
	if size > 2*n {
		m.grow(2 * n)
	}
	return gcassert.Nil, false
}

// Get returns the value stored under key.
func (m *HashMap) Get(key uint64) (gcassert.Ref, bool) {
	vm := m.vm
	buckets := vm.GetRef(m.Ref, hmBuckets)
	b := int(hashKey(key) % uint64(vm.ArrayLen(buckets)))
	for e := vm.RefAt(buckets, b); e != gcassert.Nil; e = vm.GetRef(e, heNext) {
		if vm.GetScalar(e, heKey) == key {
			return vm.GetRef(e, heVal), true
		}
	}
	return gcassert.Nil, false
}

// Remove deletes key, returning its value if present.
func (m *HashMap) Remove(key uint64) (gcassert.Ref, bool) {
	vm := m.vm
	buckets := vm.GetRef(m.Ref, hmBuckets)
	b := int(hashKey(key) % uint64(vm.ArrayLen(buckets)))
	var prev gcassert.Ref
	for e := vm.RefAt(buckets, b); e != gcassert.Nil; e = vm.GetRef(e, heNext) {
		if vm.GetScalar(e, heKey) == key {
			v := vm.GetRef(e, heVal)
			next := vm.GetRef(e, heNext)
			if prev == gcassert.Nil {
				vm.SetRefAt(buckets, b, next)
			} else {
				vm.SetRef(prev, heNext, next)
			}
			vm.SetScalar(m.Ref, hmSize, uint64(m.Len()-1))
			return v, true
		}
		prev = e
	}
	return gcassert.Nil, false
}

// ForEach visits every (key, value) pair in unspecified order.
func (m *HashMap) ForEach(fn func(key uint64, val gcassert.Ref) bool) {
	vm := m.vm
	buckets := vm.GetRef(m.Ref, hmBuckets)
	n := vm.ArrayLen(buckets)
	for b := 0; b < n; b++ {
		for e := vm.RefAt(buckets, b); e != gcassert.Nil; e = vm.GetRef(e, heNext) {
			if !fn(vm.GetScalar(e, heKey), vm.GetRef(e, heVal)) {
				return
			}
		}
	}
}

// grow rehashes into a larger bucket array.
func (m *HashMap) grow(newN int) {
	vm := m.vm
	// The new array is the only in-flight allocation; the old buckets stay
	// reachable via the map object until the final store.
	nb := m.th.NewArray(gcassert.TRefArray, newN)
	old := vm.GetRef(m.Ref, hmBuckets)
	oldN := vm.ArrayLen(old)
	for b := 0; b < oldN; b++ {
		e := vm.RefAt(old, b)
		for e != gcassert.Nil {
			next := vm.GetRef(e, heNext)
			nbIdx := int(hashKey(vm.GetScalar(e, heKey)) % uint64(newN))
			vm.SetRef(e, heNext, vm.RefAt(nb, nbIdx))
			vm.SetRefAt(nb, nbIdx, e)
			e = next
		}
	}
	vm.SetRef(m.Ref, hmBuckets, nb)
}

// NewString allocates a managed word array of length n filled from the RNG,
// standing in for string/char[] payloads.
func NewString(vm *gcassert.Runtime, th *gcassert.Thread, rng *RNG, n int) gcassert.Ref {
	a := th.NewArray(gcassert.TWordArray, n)
	for i := 0; i < n; i++ {
		vm.SetWordAt(a, i, rng.Next())
	}
	return a
}
