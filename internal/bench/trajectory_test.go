package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMeasureBaselineInterleavesAndPairs(t *testing.T) {
	opt := Options{Trials: 3, Iterations: 2}
	doc := MeasureBaseline([]Workload{tinyWorkload()}, opt, nil)
	if err := doc.Validate(); err != nil {
		t.Fatalf("fresh measurement fails its own validation: %v", err)
	}
	if doc.SchemaVersion != RunSchemaVersion {
		t.Errorf("schema version %d, want %d", doc.SchemaVersion, RunSchemaVersion)
	}
	if doc.Runner.CPUs <= 0 || doc.Runner.GoVersion == "" {
		t.Errorf("runner stamp incomplete: %+v", doc.Runner)
	}
	w := doc.Workload("tiny")
	if w == nil {
		t.Fatal("tiny workload missing from doc")
	}
	if len(w.BaseTrialsNs) != 3 || len(w.CensusTrialsNs) != 3 || len(w.OverheadTrialsPct) != 3 {
		t.Fatalf("trial arrays not paired per trial: %+v", w)
	}
	for i := range w.BaseTrialsNs {
		if w.BaseTrialsNs[i] <= 0 || w.CensusTrialsNs[i] <= 0 {
			t.Errorf("trial %d has non-positive time", i)
		}
		// The per-trial overhead must be derived from *this* trial's pair.
		want := 100 * (float64(w.CensusTrialsNs[i])/float64(w.BaseTrialsNs[i]) - 1)
		if diff := w.OverheadTrialsPct[i] - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("trial %d overhead %.4f%% not paired with its own base (%.4f%%)",
				i, w.OverheadTrialsPct[i], want)
		}
	}
	if w.BaseMedianNs <= 0 || w.CensusMedianNs <= 0 {
		t.Error("medians unpopulated")
	}
	if len(doc.MarkSpeedup) != 1 || len(doc.AssertCost) != 1 || len(doc.AllocRate) != 1 {
		t.Errorf("auxiliary sections missing: %d/%d/%d",
			len(doc.MarkSpeedup), len(doc.AssertCost), len(doc.AllocRate))
	}
}

// syntheticRun builds a RunDoc by hand: base trials in ns, per-trial
// overhead percentages, and a runner host (the fingerprint discriminator).
func syntheticRun(host string, base []int64, overheadPct []float64) *RunDoc {
	doc := &RunDoc{
		SchemaVersion: RunSchemaVersion, Trials: len(base), Iterations: 3,
		Runner: RunnerMeta{Host: host, CPUs: 4, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.22"},
	}
	w := WorkloadRun{Name: "_209_db", PauseP99Ns: 1_000_000}
	for i := range base {
		census := int64(float64(base[i]) * (1 + overheadPct[i]/100))
		w.BaseTrialsNs = append(w.BaseTrialsNs, base[i])
		w.CensusTrialsNs = append(w.CensusTrialsNs, census)
		w.OverheadTrialsPct = append(w.OverheadTrialsPct, overheadPct[i])
	}
	w.BaseMedianNs = medianI64(w.BaseTrialsNs)
	w.CensusMedianNs = medianI64(w.CensusTrialsNs)
	w.CensusOverheadPct = medianF(overheadPct)
	doc.Workloads = append(doc.Workloads, w)
	return doc
}

func medianI64(xs []int64) int64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return int64(medianF(f))
}

func medianF(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func TestCompareRunsSelfIsQuiet(t *testing.T) {
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	oh := []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9}
	doc := syntheticRun("ci-host", base, oh)
	res := CompareRuns(doc, doc)
	if res.HasRegression() {
		t.Fatalf("A/A comparison reports a regression: %+v", res.Deltas)
	}
	for _, d := range res.Deltas {
		if d.Verdict == VerdictRegressed || d.Verdict == VerdictImproved {
			t.Errorf("A/A metric %s got confident verdict %s (p=%.3f)", d.Metric, d.Verdict, d.P)
		}
	}
}

func TestCompareRunsFlagsInjectedSlowdown(t *testing.T) {
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	oldDoc := syntheticRun("ci-host", base, []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9})
	// The census config got 30% slower relative to base: every trial's
	// overhead jumps with ordinary noise.
	newDoc := syntheticRun("ci-host", base, []float64{31.5, 33.0, 30.2, 32.1, 34.0, 31.0})
	res := CompareRuns(oldDoc, newDoc)
	if !res.HasRegression() {
		t.Fatalf("injected slowdown not flagged: %+v", res.Deltas)
	}
	var found bool
	for _, d := range res.Deltas {
		if d.Metric == "census overhead" && d.Verdict == VerdictRegressed {
			found = true
			if d.P >= compareAlpha {
				t.Errorf("regression verdict with p=%.3f >= alpha", d.P)
			}
		}
	}
	if !found {
		t.Error("census overhead metric should carry the regression verdict")
	}
	// Improvement in the other direction, symmetric machinery.
	res = CompareRuns(newDoc, oldDoc)
	if res.HasRegression() {
		t.Error("overhead *drop* reported as regression")
	}
}

func TestCompareRunsCrossRunnerGatesAbsoluteTimes(t *testing.T) {
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	oh := []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9}
	oldDoc := syntheticRun("laptop", base, oh)
	// Same overheads on a machine half as fast: ns metrics double, but the
	// ratio-based gate must stay quiet.
	slow := make([]int64, len(base))
	for i, b := range base {
		slow[i] = 2 * b
	}
	newDoc := syntheticRun("ci-host", slow, oh)
	res := CompareRuns(oldDoc, newDoc)
	if res.SameRunner {
		t.Fatal("different hosts should not fingerprint-match")
	}
	if res.HasRegression() {
		t.Fatalf("cross-machine ns drift misread as regression: %+v", res.Deltas)
	}
	for _, d := range res.Deltas {
		if d.Unit == "ns" && d.Metric != "pause p99" && d.Verdict != VerdictInfo {
			t.Errorf("cross-runner %s should be informational, got %s", d.Metric, d.Verdict)
		}
	}
	// Same fingerprint: the doubled times must now be called.
	sameOld := syntheticRun("ci-host", base, oh)
	res = CompareRuns(sameOld, newDoc)
	if !res.SameRunner {
		t.Fatal("identical runner meta should fingerprint-match")
	}
	var nsRegressed bool
	for _, d := range res.Deltas {
		if d.Unit == "ns" && d.Verdict == VerdictRegressed {
			nsRegressed = true
		}
	}
	if !nsRegressed {
		t.Errorf("same-runner 2x slowdown not flagged: %+v", res.Deltas)
	}
}

func TestRunDocValidateAndRoundTrip(t *testing.T) {
	doc := syntheticRun("h", []int64{1000, 1100, 1050}, []float64{1, 2, 3})
	path := filepath.Join(t.TempDir(), "run.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadRunDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload("_209_db") == nil || back.Runner.Host != "h" {
		t.Errorf("round trip lost data: %+v", back)
	}

	// Wrong schema version is refused with guidance.
	doc.SchemaVersion = 1
	if err := doc.Validate(); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("stale schema accepted: %v", err)
	}
	doc.SchemaVersion = RunSchemaVersion
	// Unpaired arrays are refused.
	doc.Workloads[0].CensusTrialsNs = doc.Workloads[0].CensusTrialsNs[:2]
	if err := doc.Validate(); err == nil || !strings.Contains(err.Error(), "unpaired") {
		t.Errorf("unpaired arrays accepted: %v", err)
	}
}

func TestPrintCompareRendersVerdicts(t *testing.T) {
	base := []int64{10_000_000, 10_200_000, 9_900_000, 10_100_000, 10_050_000, 9_950_000}
	oldDoc := syntheticRun("ci-host", base, []float64{2.0, 2.3, 1.8, 2.1, 2.2, 1.9})
	newDoc := syntheticRun("ci-host", base, []float64{31.5, 33.0, 30.2, 32.1, 34.0, 31.0})
	var b bytes.Buffer
	PrintCompare(&b, oldDoc, newDoc, CompareRuns(oldDoc, newDoc))
	out := b.String()
	for _, want := range []string{"runner match: yes", "census overhead", "REGRESSED", "CONFIDENT REGRESSION"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}
