package workloads

import (
	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/wutil"
)

// compress: scalar-array-dominated computation with few objects and little
// GC load — the mutator-heavy end of the spectrum.
func compress() bench.Workload {
	return bench.Workload{Name: "compress", Heap: 3 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		th := vm.NewThread("compress")
		rng := wutil.NewRNG(53)
		fr := th.Push(2)
		const bufWords = 64 << 10
		return func(int) {
			for block := 0; block < 24; block++ {
				in := th.NewArray(gcassert.TWordArray, bufWords)
				fr.Set(0, in)
				out := th.NewArray(gcassert.TWordArray, bufWords)
				fr.Set(1, out)
				for i := 0; i < bufWords; i++ {
					vm.SetWordAt(in, i, rng.Next()&0xFF)
				}
				// LZ-style pass: run-length fold with a rolling hash.
				var h, o uint64
				oi := 0
				for i := 0; i < bufWords; i++ {
					w := vm.WordAt(in, i)
					h = h*131 + w
					o ^= h
					if w%7 == 0 {
						vm.SetWordAt(out, oi, o)
						oi = (oi + 1) % bufWords
					}
				}
				// Decompress-style verification pass.
				var sum uint64
				for i := 0; i < bufWords; i++ {
					sum += vm.WordAt(out, i)
				}
				vm.SetWordAt(out, 0, sum)
				fr.Set(0, gcassert.Nil)
				fr.Set(1, gcassert.Nil)
			}
		}
	}}
}

// jess: rule-engine working memory — facts asserted into alpha-memory
// lists, matched, and retracted in waves.
func jess() bench.Workload {
	return bench.Workload{Name: "jess", Heap: 3 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		fact := vm.Define("jess/Fact",
			gcassert.Field{Name: "next", Ref: true},
			gcassert.Field{Name: "slots", Ref: true},
			gcassert.Field{Name: "kind", Ref: false})
		th := vm.NewThread("jess")
		rng := wutil.NewRNG(59)
		const nKinds = 24
		wmGlobal := vm.NewGlobal("workingMemory")
		wm := th.NewArray(gcassert.TRefArray, nKinds)
		vm.SetGlobal(wmGlobal, wm)
		fr := th.Push(1)
		return func(int) {
			wm := vm.GetGlobal(wmGlobal)
			for cycle := 0; cycle < 400; cycle++ {
				// Assert a wave of facts.
				for f := 0; f < 450; f++ {
					k := rng.Intn(nKinds)
					fo := th.New(fact)
					fr.Set(0, fo)
					vm.SetScalar(fo, 2, uint64(k))
					vm.SetRef(fo, 1, wutil.NewString(vm, th, rng, 3))
					vm.SetRef(fo, 0, vm.RefAt(wm, k))
					vm.SetRefAt(wm, k, fo)
					fr.Set(0, gcassert.Nil)
				}
				// Match: join pairs of alpha memories.
				var fired uint64
				for k := 0; k < nKinds; k++ {
					for f := vm.RefAt(wm, k); f != gcassert.Nil; f = vm.GetRef(f, 0) {
						fired += vm.WordAt(vm.GetRef(f, 1), 0) & 1
					}
				}
				// Retract: drop roughly half the lists.
				for k := 0; k < nKinds; k++ {
					if rng.Intn(2) == 0 {
						vm.SetRefAt(wm, k, gcassert.Nil)
					}
				}
			}
		}
	}}
}

// javac: compiler front end — per-file ASTs plus symbol tables in nested
// scopes; class symbols persist in a global table across files.
func javac() bench.Workload {
	return bench.Workload{Name: "javac", Heap: 4 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		sym := vm.Define("javac/Symbol",
			gcassert.Field{Name: "name", Ref: true},
			gcassert.Field{Name: "type", Ref: true},
			gcassert.Field{Name: "id", Ref: false})
		tnode := vm.Define("javac/Tree",
			gcassert.Field{Name: "kids", Ref: true},
			gcassert.Field{Name: "sym", Ref: true},
			gcassert.Field{Name: "op", Ref: false})
		th := vm.NewThread("javac")
		rng := wutil.NewRNG(61)
		classesGlobal := vm.NewGlobal("classTable")
		classTable := wutil.NewHashMap(vm, th, 128)
		vm.SetGlobal(classesGlobal, classTable.Ref)
		fr := th.Push(3)
		nextSym := uint64(0)

		newSymbol := func() gcassert.Ref {
			s := th.New(sym)
			fr.Set(2, s)
			vm.SetScalar(s, 2, nextSym)
			nextSym++
			vm.SetRef(s, 0, wutil.NewString(vm, th, rng, 3))
			fr.Set(2, gcassert.Nil)
			return s
		}
		var parse func(depth int, scope *wutil.HashMap) gcassert.Ref
		parse = func(depth int, scope *wutil.HashMap) gcassert.Ref {
			n := th.New(tnode)
			sl := fr.Add(n)
			vm.SetScalar(n, 2, rng.Next()%64)
			if rng.Intn(3) == 0 {
				s := newSymbol()
				vm.SetRef(n, 1, s)
				scope.Put(rng.Next()%512, s)
			}
			if depth > 0 {
				fan := 1 + rng.Intn(3)
				vm.SetRef(n, 0, th.NewArray(gcassert.TRefArray, fan))
				kids := vm.GetRef(n, 0)
				for i := 0; i < fan; i++ {
					c := parse(depth-1, scope)
					vm.SetRefAt(kids, i, c)
				}
			}
			fr.Truncate(sl)
			return n
		}
		return func(int) {
			for file := 0; file < 500; file++ {
				scope := wutil.NewHashMap(vm, th, 64)
				fr.Set(0, scope.Ref)
				ast := parse(7, scope)
				fr.Set(1, ast)
				// "Attribute" pass: walk symbols; promote one class symbol
				// per file into the persistent class table.
				cls := newSymbol()
				fr.Set(2, cls)
				classTable.Put(uint64(file)%4093, cls)
				fr.Set(0, gcassert.Nil)
				fr.Set(1, gcassert.Nil)
				fr.Set(2, gcassert.Nil)
			}
		}
	}}
}

// mtrt: raytracer — a persistent scene of spheres, two logical threads
// tracing rays with heavy transient vector allocation.
func mtrt() bench.Workload {
	return bench.Workload{Name: "mtrt", Heap: 3 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		vec := vm.Define("mtrt/Vec",
			gcassert.Field{Name: "x", Ref: false},
			gcassert.Field{Name: "y", Ref: false},
			gcassert.Field{Name: "z", Ref: false})
		sphere := vm.Define("mtrt/Sphere",
			gcassert.Field{Name: "center", Ref: true},
			gcassert.Field{Name: "radius", Ref: false})
		rng := wutil.NewRNG(67)
		sceneGlobal := vm.NewGlobal("scene")
		setup := vm.NewThread("mtrt-setup")
		fr := setup.Push(1)
		const nSpheres = 64
		scene := setup.NewArray(gcassert.TRefArray, nSpheres)
		vm.SetGlobal(sceneGlobal, scene)
		for i := 0; i < nSpheres; i++ {
			s := setup.New(sphere)
			vm.SetRefAt(scene, i, s)
			c := setup.New(vec)
			vm.SetRef(s, 0, c)
			vm.SetScalar(c, 0, rng.Next()%1000)
			vm.SetScalar(c, 1, rng.Next()%1000)
			vm.SetScalar(c, 2, rng.Next()%1000)
			vm.SetScalar(s, 1, 1+rng.Next()%50)
		}
		setup.Pop()
		_ = fr

		threads := []*gcassert.Thread{vm.NewThread("rt0"), vm.NewThread("rt1")}
		frames := []*gcassert.Frame{threads[0].Push(2), threads[1].Push(2)}
		trace := func(ti int, px uint64) uint64 {
			th, f := threads[ti], frames[ti]
			scene := vm.GetGlobal(sceneGlobal)
			// Transient ray + hit vectors per pixel.
			dir := th.New(vec)
			f.Set(0, dir)
			vm.SetScalar(dir, 0, px%997)
			vm.SetScalar(dir, 1, px/997)
			vm.SetScalar(dir, 2, 1)
			best := uint64(1 << 62)
			for i := 0; i < nSpheres; i++ {
				s := vm.RefAt(scene, i)
				c := vm.GetRef(s, 0)
				dx := vm.GetScalar(c, 0) - vm.GetScalar(dir, 0)%1000
				dy := vm.GetScalar(c, 1) - vm.GetScalar(dir, 1)%1000
				d2 := dx*dx + dy*dy
				if d2 < best {
					best = d2
					hit := th.New(vec)
					f.Set(1, hit)
					vm.SetScalar(hit, 0, dx)
					vm.SetScalar(hit, 1, dy)
				}
			}
			f.Set(0, gcassert.Nil)
			f.Set(1, gcassert.Nil)
			return best
		}
		return func(int) {
			for px := 0; px < 40000; px++ {
				trace(px%2, uint64(px))
			}
		}
	}}
}

// jack: parser-generator front end — token stream objects consumed into
// production records, per "file".
func jack() bench.Workload {
	return bench.Workload{Name: "jack", Heap: 3 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		token := vm.Define("jack/Token",
			gcassert.Field{Name: "next", Ref: true},
			gcassert.Field{Name: "image", Ref: true},
			gcassert.Field{Name: "kind", Ref: false})
		prod := vm.Define("jack/Production",
			gcassert.Field{Name: "tokens", Ref: true},
			gcassert.Field{Name: "name", Ref: true})
		th := vm.NewThread("jack")
		rng := wutil.NewRNG(71)
		fr := th.Push(3)
		return func(int) {
			for file := 0; file < 300; file++ {
				// Lex: build a token list.
				var head gcassert.Ref
				for t := 0; t < 900; t++ {
					tok := th.New(token)
					fr.Set(0, tok)
					vm.SetScalar(tok, 2, rng.Next()%40)
					vm.SetRef(tok, 1, wutil.NewString(vm, th, rng, 2))
					vm.SetRef(tok, 0, head)
					head = tok
					fr.Set(1, head)
					fr.Set(0, gcassert.Nil)
				}
				// Parse: group tokens into productions.
				outSlot := 2
				var productions gcassert.Ref = th.NewArray(gcassert.TRefArray, 64)
				fr.Set(outSlot, productions)
				pi := 0
				run := head
				for run != gcassert.Nil && pi < 64 {
					p := th.New(prod)
					vm.SetRefAt(productions, pi, p)
					pi++
					vm.SetRef(p, 0, run)
					// Advance a random number of tokens.
					for skip := 1 + rng.Intn(20); skip > 0 && run != gcassert.Nil; skip-- {
						run = vm.GetRef(run, 0)
					}
				}
				fr.Set(0, gcassert.Nil)
				fr.Set(1, gcassert.Nil)
				fr.Set(2, gcassert.Nil)
			}
		}
	}}
}
