// Package workloads assembles the synthetic benchmark suite used by the
// evaluation harness: generators whose allocation volume, object-graph shape
// and lifetime behavior mimic the DaCapo 2006 and SPEC JVM98 programs the
// paper measures, plus the pseudojbb and _209_db workloads with their paper
// instrumentation.
//
// Each generator is a distinct heap exercise — tree churn (antlr, fop),
// large live graphs (bloat, hsqldb), map-heavy caches (eclipse, javac),
// scalar-dominated computation (compress, mtrt), multi-threaded sharing
// (lusearch) — so the infrastructure-overhead measurements cover the same
// spectrum of GC loads as the paper's Figure 2/3. Every workload keeps a
// persistent live set (retained rings, registries, indexes) in addition to
// its transient churn, so mark phases trace a realistic object population,
// and runs long enough per iteration for stable timing.
package workloads

import (
	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/wutil"
	"gcassert/internal/btree"
)

// mb is a mebibyte.
const mb = 1 << 20

// retainRing installs a global ref-array ring of n slots and returns a
// function that retains v, evicting the oldest occupant.
func retainRing(vm *gcassert.Runtime, th *gcassert.Thread, name string, n int) func(v gcassert.Ref) {
	g := vm.NewGlobal(name)
	ring := th.NewArray(gcassert.TRefArray, n)
	vm.SetGlobal(g, ring)
	pos := 0
	return func(v gcassert.Ref) {
		vm.SetRefAt(vm.GetGlobal(g), pos%n, v)
		pos++
	}
}

// antlr: parser-style AST churn — build random expression trees from token
// streams, walk them, drop most but retain a ring of recent parse results.
func antlr() bench.Workload {
	return bench.Workload{Name: "antlr", Heap: 4 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		node := vm.Define("antlr/ASTNode",
			gcassert.Field{Name: "left", Ref: true},
			gcassert.Field{Name: "right", Ref: true},
			gcassert.Field{Name: "token", Ref: false})
		th := vm.NewThread("antlr")
		rng := wutil.NewRNG(11)
		fr := th.Push(1)
		retain := retainRing(vm, th, "antlr/grammars", 64)

		var build func(depth int) gcassert.Ref
		build = func(depth int) gcassert.Ref {
			n := th.New(node)
			vm.SetScalar(n, 2, rng.Next()%512)
			if depth <= 0 || rng.Intn(4) == 0 {
				return n
			}
			sl := fr.Add(n)
			l := build(depth - 1)
			vm.SetRef(n, 0, l)
			r := build(depth - 1)
			vm.SetRef(n, 1, r)
			fr.Truncate(sl)
			return n
		}
		var eval func(n gcassert.Ref) uint64
		eval = func(n gcassert.Ref) uint64 {
			if n == gcassert.Nil {
				return 0
			}
			return vm.GetScalar(n, 2) + eval(vm.GetRef(n, 0)) + eval(vm.GetRef(n, 1))
		}
		return func(int) {
			for p := 0; p < 2000; p++ {
				sl := fr.Add(build(10))
				eval(fr.Get(sl))
				if p%16 == 0 {
					retain(fr.Get(sl))
				}
				fr.Truncate(sl)
			}
		}
	}}
}

// bloat: bytecode-optimizer-style analysis — a large live control-flow
// graph with per-pass bitset reallocation, the paper's worst GC-overhead
// case (large live set, frequent collections).
func bloat() bench.Workload {
	return bench.Workload{Name: "bloat", Heap: 16 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		block := vm.Define("bloat/BasicBlock",
			gcassert.Field{Name: "succs", Ref: true},
			gcassert.Field{Name: "in", Ref: true},
			gcassert.Field{Name: "out", Ref: true},
			gcassert.Field{Name: "instrs", Ref: true})
		th := vm.NewThread("bloat")
		rng := wutil.NewRNG(13)
		cfgGlobal := vm.NewGlobal("cfg")
		const nBlocks = 26000
		const setWords = 12

		blocks := th.NewArray(gcassert.TRefArray, nBlocks)
		vm.SetGlobal(cfgGlobal, blocks)
		for i := 0; i < nBlocks; i++ {
			b := th.New(block)
			vm.SetRefAt(blocks, i, b)
			vm.SetRef(b, 3, wutil.NewString(vm, th, rng, 6))
			vm.SetRef(b, 0, th.NewArray(gcassert.TRefArray, 2))
		}
		for i := 0; i < nBlocks; i++ {
			b := vm.RefAt(blocks, i)
			succs := vm.GetRef(b, 0)
			vm.SetRefAt(succs, 0, vm.RefAt(blocks, (i+1)%nBlocks))
			vm.SetRefAt(succs, 1, vm.RefAt(blocks, rng.Intn(nBlocks)))
		}

		return func(int) {
			blocks := vm.GetGlobal(cfgGlobal)
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < nBlocks; i++ {
					b := vm.RefAt(blocks, i)
					vm.SetRef(b, 1, th.NewArray(gcassert.TWordArray, setWords))
					vm.SetRef(b, 2, th.NewArray(gcassert.TWordArray, setWords))
				}
				for i := 0; i < nBlocks; i++ {
					b := vm.RefAt(blocks, i)
					out := vm.GetRef(b, 2)
					succs := vm.GetRef(b, 0)
					for s := 0; s < 2; s++ {
						sb := vm.RefAt(succs, s)
						in := vm.GetRef(sb, 1)
						for w := 0; w < setWords; w++ {
							vm.SetWordAt(out, w, vm.WordAt(out, w)|vm.WordAt(in, w))
						}
					}
				}
			}
		}
	}}
}

// chart: plot rendering — allocate point series, aggregate into raster
// buffers, retain the recent rasters as the "report".
func chart() bench.Workload {
	return bench.Workload{Name: "chart", Heap: 6 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		series := vm.Define("chart/Series",
			gcassert.Field{Name: "xs", Ref: true},
			gcassert.Field{Name: "ys", Ref: true})
		th := vm.NewThread("chart")
		rng := wutil.NewRNG(17)
		fr := th.Push(2)
		retain := retainRing(vm, th, "chart/report", 48)
		return func(int) {
			for plot := 0; plot < 30; plot++ {
				raster := th.NewArray(gcassert.TWordArray, 4096)
				fr.Set(0, raster)
				for s := 0; s < 40; s++ {
					sr := th.New(series)
					fr.Set(1, sr)
					const npts = 600
					vm.SetRef(sr, 0, th.NewArray(gcassert.TWordArray, npts))
					vm.SetRef(sr, 1, th.NewArray(gcassert.TWordArray, npts))
					xs, ys := vm.GetRef(sr, 0), vm.GetRef(sr, 1)
					for i := 0; i < npts; i++ {
						vm.SetWordAt(xs, i, rng.Next()%4096)
						vm.SetWordAt(ys, i, rng.Next())
					}
					for i := 0; i < npts; i++ {
						px := int(vm.WordAt(xs, i))
						vm.SetWordAt(raster, px, vm.WordAt(raster, px)+vm.WordAt(ys, i)%255)
					}
					fr.Set(1, gcassert.Nil)
				}
				retain(raster)
				fr.Set(0, gcassert.Nil)
			}
		}
	}}
}

// eclipse: plugin-registry style map churn — a seeded registry of
// descriptors with steady register/unregister/lookup traffic.
func eclipse() bench.Workload {
	return bench.Workload{Name: "eclipse", Heap: 6 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		desc := vm.Define("eclipse/Descriptor",
			gcassert.Field{Name: "name", Ref: true},
			gcassert.Field{Name: "deps", Ref: true},
			gcassert.Field{Name: "id", Ref: false})
		th := vm.NewThread("eclipse")
		rng := wutil.NewRNG(19)
		regGlobal := vm.NewGlobal("registry")
		registry := wutil.NewHashMap(vm, th, 1024)
		vm.SetGlobal(regGlobal, registry.Ref)
		fr := th.Push(1)
		next := uint64(0)
		var live []uint64
		register := func() {
			d := th.New(desc)
			fr.Set(0, d)
			vm.SetScalar(d, 2, next)
			vm.SetRef(d, 0, wutil.NewString(vm, th, rng, 6))
			vm.SetRef(d, 1, th.NewArray(gcassert.TRefArray, 4))
			registry.Put(next, d)
			live = append(live, next)
			next++
			fr.Set(0, gcassert.Nil)
		}
		for i := 0; i < 6000; i++ {
			register()
		}
		return func(int) {
			for op := 0; op < 120000; op++ {
				switch p := rng.Intn(10); {
				case p < 3 && len(live) < 9000 || len(live) == 0:
					register()
				case p < 6:
					i := rng.Intn(len(live))
					registry.Remove(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					registry.Get(live[rng.Intn(len(live))])
				}
			}
		}
	}}
}

// fop: formatting-object tree — build wide layout trees with property
// strings, run a layout pass, retain the last few "pages".
func fop() bench.Workload {
	return bench.Workload{Name: "fop", Heap: 8 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		fo := vm.Define("fop/FONode",
			gcassert.Field{Name: "children", Ref: true},
			gcassert.Field{Name: "props", Ref: true},
			gcassert.Field{Name: "width", Ref: false})
		th := vm.NewThread("fop")
		rng := wutil.NewRNG(23)
		fr := th.Push(1)
		retain := retainRing(vm, th, "fop/pages", 8)
		var build func(depth, fan int) gcassert.Ref
		build = func(depth, fan int) gcassert.Ref {
			n := th.New(fo)
			sl := fr.Add(n)
			vm.SetRef(n, 1, wutil.NewString(vm, th, rng, 4))
			if depth > 0 {
				vm.SetRef(n, 0, th.NewArray(gcassert.TRefArray, fan))
				kids := vm.GetRef(n, 0)
				for i := 0; i < fan; i++ {
					c := build(depth-1, fan)
					vm.SetRefAt(kids, i, c)
				}
			}
			fr.Truncate(sl)
			return n
		}
		var layout func(n gcassert.Ref) uint64
		layout = func(n gcassert.Ref) uint64 {
			w := vm.WordAt(vm.GetRef(n, 1), 0) % 80
			kids := vm.GetRef(n, 0)
			if kids != gcassert.Nil {
				for i := 0; i < vm.ArrayLen(kids); i++ {
					w += layout(vm.RefAt(kids, i))
				}
			}
			vm.SetScalar(n, 2, w)
			return w
		}
		return func(int) {
			for page := 0; page < 40; page++ {
				t := build(5, 6)
				sl := fr.Add(t)
				layout(t)
				retain(t)
				fr.Truncate(sl)
			}
		}
	}}
}

// hsqldb: transactional table — rows in a B-tree with a large steady live
// set and update/insert/delete churn.
func hsqldb() bench.Workload {
	return bench.Workload{Name: "hsqldb", Heap: 8 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		row := vm.Define("hsqldb/Row",
			gcassert.Field{Name: "cols", Ref: true},
			gcassert.Field{Name: "id", Ref: false})
		th := vm.NewThread("hsqldb")
		rng := wutil.NewRNG(29)
		tblGlobal := vm.NewGlobal("table")
		scratch := th.Push(btree.ScratchSlots)
		table := btree.New(vm, th, scratch)
		vm.SetGlobal(tblGlobal, table.Ref)
		fr := th.Push(1)
		nextID := int64(0)
		var liveKeys []int64 // Go-side key list, for steady-state churn
		insert := func() {
			r := th.New(row)
			fr.Set(0, r)
			vm.SetScalar(r, 1, uint64(nextID))
			vm.SetRef(r, 0, th.NewArray(gcassert.TRefArray, 4))
			cols := vm.GetRef(r, 0)
			for c := 0; c < 4; c++ {
				vm.SetRefAt(cols, c, wutil.NewString(vm, th, rng, 5))
			}
			table.Put(nextID, r)
			liveKeys = append(liveKeys, nextID)
			nextID++
			fr.Set(0, gcassert.Nil)
		}
		remove := func() {
			i := rng.Intn(len(liveKeys))
			table.Remove(liveKeys[i])
			liveKeys[i] = liveKeys[len(liveKeys)-1]
			liveKeys = liveKeys[:len(liveKeys)-1]
		}
		for i := 0; i < 9000; i++ {
			insert()
		}
		return func(int) {
			for tx := 0; tx < 40000; tx++ {
				switch p := rng.Intn(10); {
				case p < 3 && len(liveKeys) < 12000 || len(liveKeys) < 6000:
					insert()
				case p < 6 && len(liveKeys) > 0:
					remove()
				default:
					if r, ok := table.Get(liveKeys[rng.Intn(len(liveKeys))]); ok {
						cols := vm.GetRef(r, 0)
						s := wutil.NewString(vm, th, rng, 5)
						vm.SetRefAt(cols, rng.Intn(4), s)
					}
				}
			}
		}
	}}
}

// jython: interpreter-style frame and small-dict churn with deep call
// chains; compiled "code objects" persist in a module ring.
func jython() bench.Workload {
	return bench.Workload{Name: "jython", Heap: 4 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		pyframe := vm.Define("jython/PyFrame",
			gcassert.Field{Name: "locals", Ref: true},
			gcassert.Field{Name: "back", Ref: true},
			gcassert.Field{Name: "lasti", Ref: false})
		th := vm.NewThread("jython")
		rng := wutil.NewRNG(31)
		fr := th.Push(1)
		retain := retainRing(vm, th, "jython/modules", 256)
		var call func(back gcassert.Ref, depth int) uint64
		call = func(back gcassert.Ref, depth int) uint64 {
			f := th.New(pyframe)
			sl := fr.Add(f)
			vm.SetRef(f, 1, back)
			vm.SetRef(f, 0, th.NewArray(gcassert.TRefArray, 8))
			locals := vm.GetRef(f, 0)
			for i := 0; i < 4; i++ {
				vm.SetRefAt(locals, i, wutil.NewString(vm, th, rng, 3))
			}
			r := rng.Next() % 97
			if depth > 0 {
				r += call(f, depth-1)
			}
			vm.SetScalar(f, 2, r)
			fr.Truncate(sl)
			return r
		}
		return func(int) {
			for c := 0; c < 6000; c++ {
				call(gcassert.Nil, 20)
				if c%32 == 0 {
					code := wutil.NewString(vm, th, rng, 48)
					retain(code)
				}
			}
		}
	}}
}

// luindex: inverted-index construction — tokenize documents into postings
// lists held in a term map; the index is dropped and rebuilt per iteration.
func luindex() bench.Workload {
	return bench.Workload{Name: "luindex", Heap: 8 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		posting := vm.Define("luindex/Posting",
			gcassert.Field{Name: "next", Ref: true},
			gcassert.Field{Name: "doc", Ref: false})
		th := vm.NewThread("luindex")
		rng := wutil.NewRNG(37)
		idxGlobal := vm.NewGlobal("index")
		fr := th.Push(1)
		return func(int) {
			index := wutil.NewHashMap(vm, th, 1024)
			vm.SetGlobal(idxGlobal, index.Ref)
			for doc := 0; doc < 4800; doc++ {
				for tok := 0; tok < 40; tok++ {
					term := rng.Next() % 6000
					p := th.New(posting)
					fr.Set(0, p)
					vm.SetScalar(p, 1, uint64(doc))
					if head, ok := index.Get(term); ok {
						vm.SetRef(p, 0, head)
					}
					index.Put(term, p)
					fr.Set(0, gcassert.Nil)
				}
			}
			vm.SetGlobal(idxGlobal, gcassert.Nil)
		}
	}}
}

// lusearchThreads is the number of searcher threads (the case study's 32).
const lusearchThreads = 32

// lusearch: multi-threaded text search over a shared index; each thread
// allocates its own IndexSearcher (the §3.2.2 case study asserts there
// should be only one).
func lusearch() bench.Workload {
	return bench.Workload{Name: "lusearch", Heap: 6 * mb, New: func(vm *gcassert.Runtime, asserts bool) func(int) {
		run, _ := NewLusearch(vm, asserts)
		return run
	}}
}

// NewLusearch builds the lusearch workload and returns its iteration
// function plus the IndexSearcher TypeID (for the case-study example). When
// asserts is set, it registers the paper's assert-instances(IndexSearcher,1).
func NewLusearch(vm *gcassert.Runtime, asserts bool) (func(int), gcassert.TypeID) {
	searcher := vm.Define("lucene/IndexSearcher",
		gcassert.Field{Name: "index", Ref: true},
		gcassert.Field{Name: "hits", Ref: true})
	posting := vm.Define("lucene/Posting",
		gcassert.Field{Name: "next", Ref: true},
		gcassert.Field{Name: "doc", Ref: false})
	main := vm.NewThread("lusearch-main")
	rng := wutil.NewRNG(41)
	idxGlobal := vm.NewGlobal("sharedIndex")

	index := wutil.NewHashMap(vm, main, 2048)
	vm.SetGlobal(idxGlobal, index.Ref)
	fr := main.Push(1)
	const nTerms = 4000
	for doc := 0; doc < 1600; doc++ {
		for tok := 0; tok < 24; tok++ {
			term := rng.Next() % nTerms
			p := main.New(posting)
			fr.Set(0, p)
			vm.SetScalar(p, 1, uint64(doc))
			if head, ok := index.Get(term); ok {
				vm.SetRef(p, 0, head)
			}
			index.Put(term, p)
			fr.Set(0, gcassert.Nil)
		}
	}
	main.Pop()

	if asserts {
		// The Lucene docs recommend a single shared IndexSearcher (§3.2.2).
		vm.AssertInstances(searcher, 1)
	}

	threads := make([]*gcassert.Thread, lusearchThreads)
	frames := make([]*gcassert.Frame, lusearchThreads)
	for i := range threads {
		threads[i] = vm.NewThread("searcher")
		frames[i] = threads[i].Push(2)
	}

	run := func(int) {
		for i, th := range threads {
			s := th.New(searcher)
			frames[i].Set(0, s)
			vm.SetRef(s, 0, vm.GetGlobal(idxGlobal))
		}
		for q := 0; q < 1400; q++ {
			for i, th := range threads {
				s := frames[i].Get(0)
				hits := th.NewArray(gcassert.TWordArray, 16)
				vm.SetRef(s, 1, hits)
				if head, ok := index.Get(rng.Next() % nTerms); ok {
					n := 0
					for p := head; p != gcassert.Nil && n < 16; p = vm.GetRef(p, 0) {
						vm.SetWordAt(hits, n, vm.GetScalar(p, 1))
						n++
					}
				}
			}
		}
		// Threads keep their searchers until the next iteration replaces
		// them (so at GC time all 32 are live).
	}
	return run, searcher
}

// pmd: source-analysis style — retained ASTs per "file" with rule passes
// emitting violation records retained in a report ring.
func pmd() bench.Workload {
	return bench.Workload{Name: "pmd", Heap: 6 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		node := vm.Define("pmd/Node",
			gcassert.Field{Name: "kids", Ref: true},
			gcassert.Field{Name: "kind", Ref: false})
		viol := vm.Define("pmd/RuleViolation",
			gcassert.Field{Name: "node", Ref: true},
			gcassert.Field{Name: "msg", Ref: true})
		th := vm.NewThread("pmd")
		rng := wutil.NewRNG(43)
		fr := th.Push(2)
		retain := retainRing(vm, th, "pmd/reports", 24)
		var build func(depth int) gcassert.Ref
		build = func(depth int) gcassert.Ref {
			n := th.New(node)
			sl := fr.Add(n)
			vm.SetScalar(n, 1, rng.Next()%40)
			if depth > 0 {
				fan := 1 + rng.Intn(4)
				vm.SetRef(n, 0, th.NewArray(gcassert.TRefArray, fan))
				kids := vm.GetRef(n, 0)
				for i := 0; i < fan; i++ {
					c := build(depth - 1)
					vm.SetRefAt(kids, i, c)
				}
			}
			fr.Truncate(sl)
			return n
		}
		var check func(n, report gcassert.Ref, pos *int)
		check = func(n, report gcassert.Ref, pos *int) {
			if vm.GetScalar(n, 1)%7 == 0 && *pos < vm.ArrayLen(report) {
				v := th.New(viol)
				vm.SetRefAt(report, *pos, v)
				vm.SetRef(v, 0, n)
				*pos++
			}
			kids := vm.GetRef(n, 0)
			if kids != gcassert.Nil {
				for i := 0; i < vm.ArrayLen(kids); i++ {
					check(vm.RefAt(kids, i), report, pos)
				}
			}
		}
		return func(int) {
			for file := 0; file < 200; file++ {
				ast := build(8)
				fr.Set(0, ast)
				report := th.NewArray(gcassert.TRefArray, 256)
				fr.Set(1, report)
				pos := 0
				for rule := 0; rule < 4 && pos < 256; rule++ {
					check(ast, report, &pos)
				}
				retain(report)
				fr.Set(0, gcassert.Nil)
				fr.Set(1, gcassert.Nil)
			}
		}
	}}
}

// xalan: document transformation — a long-lived input tree transformed into
// transient output trees with string churn.
func xalan() bench.Workload {
	return bench.Workload{Name: "xalan", Heap: 8 * mb, New: func(vm *gcassert.Runtime, _ bool) func(int) {
		elem := vm.Define("xalan/Element",
			gcassert.Field{Name: "kids", Ref: true},
			gcassert.Field{Name: "text", Ref: true})
		th := vm.NewThread("xalan")
		rng := wutil.NewRNG(47)
		inGlobal := vm.NewGlobal("inputDoc")
		fr := th.Push(1)
		var build func(depth int) gcassert.Ref
		build = func(depth int) gcassert.Ref {
			n := th.New(elem)
			sl := fr.Add(n)
			vm.SetRef(n, 1, wutil.NewString(vm, th, rng, 6))
			if depth > 0 {
				vm.SetRef(n, 0, th.NewArray(gcassert.TRefArray, 5))
				kids := vm.GetRef(n, 0)
				for i := 0; i < 5; i++ {
					c := build(depth - 1)
					vm.SetRefAt(kids, i, c)
				}
			}
			fr.Truncate(sl)
			return n
		}
		input := build(6)
		vm.SetGlobal(inGlobal, input)
		var transform func(in gcassert.Ref) gcassert.Ref
		transform = func(in gcassert.Ref) gcassert.Ref {
			out := th.New(elem)
			sl := fr.Add(out)
			src := vm.GetRef(in, 1)
			dst := th.NewArray(gcassert.TWordArray, vm.ArrayLen(src))
			vm.SetRef(out, 1, dst)
			for i := 0; i < vm.ArrayLen(src); i++ {
				vm.SetWordAt(dst, i, vm.WordAt(src, i)^0x5555)
			}
			kids := vm.GetRef(in, 0)
			if kids != gcassert.Nil {
				n := vm.ArrayLen(kids)
				vm.SetRef(out, 0, th.NewArray(gcassert.TRefArray, n))
				okids := vm.GetRef(out, 0)
				for i := 0; i < n; i++ {
					c := transform(vm.RefAt(kids, i))
					vm.SetRefAt(okids, i, c)
				}
			}
			fr.Truncate(sl)
			return out
		}
		return func(int) {
			for doc := 0; doc < 12; doc++ {
				sl := fr.Add(transform(vm.GetGlobal(inGlobal)))
				fr.Truncate(sl)
			}
		}
	}}
}
