package workloads

import (
	"fmt"

	"gcassert"
	"gcassert/internal/bench"
	"gcassert/internal/bench/db"
	"gcassert/internal/bench/jbb"
)

// pseudojbb wraps the mini SPECjbb2000 workload. With assertions it carries
// the paper's instrumentation (assert-instances on Company, assert-ownedby
// per order, assert-dead on destroy) over the repaired program, so the
// assertions pass — the Figure 4/5 configuration.
func pseudojbb() bench.Workload {
	return bench.Workload{Name: "pseudojbb", Heap: 4 * mb, HasAsserts: true,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			cfg := jbb.DefaultConfig()
			cfg.Asserts = asserts
			j := jbb.New(vm, cfg)
			return j.RunIteration
		}}
}

// db209 wraps the mini _209_db workload; with assertions every entry is
// owned by the database and removals assert death, also all passing.
func db209() bench.Workload {
	return bench.Workload{Name: "_209_db", Heap: 8 * mb, HasAsserts: true,
		New: func(vm *gcassert.Runtime, asserts bool) func(int) {
			cfg := db.DefaultConfig()
			cfg.Asserts = asserts
			d := db.New(vm, cfg)
			return d.RunIteration
		}}
}

// All returns the full benchmark suite in the paper's grouping: DaCapo
// 2006, SPEC JVM98, and pseudojbb.
func All() []bench.Workload {
	return []bench.Workload{
		// DaCapo 2006 analogues.
		antlr(), bloat(), chart(), eclipse(), fop(),
		hsqldb(), jython(), luindex(), lusearch(), pmd(), xalan(),
		// SPEC JVM98 analogues.
		compress(), jess(), db209(), javac(), mtrt(), jack(),
		// SPEC JBB2000 with fixed workload.
		pseudojbb(),
	}
}

// ByName returns the named workload.
func ByName(name string) (bench.Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return bench.Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Asserting returns the workloads that define a WithAssertions variant
// (the paper's Figure 4/5 set: _209_db and pseudojbb).
func Asserting() []bench.Workload {
	var out []bench.Workload
	for _, w := range All() {
		if w.HasAsserts {
			out = append(out, w)
		}
	}
	return out
}
