package workloads

import (
	"testing"

	"gcassert"
)

// TestWorkloadsSteadyState runs every workload for several iterations and
// checks the live heap does not grow unboundedly: the paper's methodology
// (measure the 4th iteration at a fixed heap) requires steady-state
// workloads. A workload whose live set keeps growing would OOM its fixed
// heap in longer runs.
func TestWorkloadsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state run")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap})
			run := w.New(vm, false)
			run(0)
			run(1)
			vm.Collect()
			live2 := vm.HeapStats().LiveWords
			for i := 2; i < 6; i++ {
				run(i)
			}
			vm.Collect()
			live6 := vm.HeapStats().LiveWords
			// Allow modest drift, but not systematic growth.
			if live6 > live2+live2/2+20000 {
				t.Errorf("live set grew from %d to %d words over 4 extra iterations", live2, live6)
			}
		})
	}
}
