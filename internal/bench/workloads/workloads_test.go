package workloads

import (
	"testing"

	"gcassert"
	"gcassert/internal/bench"
)

// TestAllWorkloadsRunBase executes one iteration of every workload on the
// Base configuration: no panics, and at least one object allocated.
func TestAllWorkloadsRunBase(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap})
			run := w.New(vm, false)
			run(0)
			if vm.HeapStats().ObjectsAllocated == 0 {
				t.Error("workload allocated nothing")
			}
		})
	}
}

// TestAllWorkloadsRunInfra executes two iterations with the assertion
// infrastructure enabled and a forced collection at the end; there must be
// no violations, since no assertions are registered.
func TestAllWorkloadsRunInfra(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep := &gcassert.CollectingReporter{}
			vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap, Infrastructure: true, Reporter: rep})
			run := w.New(vm, false)
			run(0)
			run(1)
			vm.Collect()
			if rep.Len() != 0 {
				t.Fatalf("violations without assertions: %v", rep.Violations())
			}
		})
	}
}

// TestAssertingWorkloadsPass runs the WithAssertions variants of _209_db and
// pseudojbb (the repaired programs): thousands of assertions, none of which
// may fire.
func TestAssertingWorkloadsPass(t *testing.T) {
	for _, w := range Asserting() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep := &gcassert.CollectingReporter{}
			vm := gcassert.New(gcassert.Options{HeapBytes: w.Heap, Infrastructure: true, Reporter: rep})
			run := w.New(vm, true)
			run(0)
			run(1)
			vm.Collect()
			if rep.Len() != 0 {
				vs := rep.Violations()
				max := len(vs)
				if max > 3 {
					max = 3
				}
				t.Fatalf("repaired program must not violate; got %d, first: %v", len(vs), vs[:max])
			}
			st := vm.AssertionStats()
			if st.DeadAsserted == 0 || st.OwnedPairsAsserted == 0 {
				t.Errorf("expected assertion activity, got %+v", st)
			}
		})
	}
}

// TestHarnessCompare smoke-tests the harness plumbing on one workload.
func TestHarnessCompare(t *testing.T) {
	w, err := ByName("_209_db")
	if err != nil {
		t.Fatal(err)
	}
	c := bench.Compare(w, []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions},
		bench.Options{Trials: 1, Iterations: 1})
	for _, m := range []bench.Mode{bench.Base, bench.Infra, bench.WithAssertions} {
		r, ok := c.Results[m]
		if !ok {
			t.Fatalf("missing mode %v", m)
		}
		if r.Total.Mean() <= 0 {
			t.Errorf("%v: nonpositive total time", m)
		}
	}
	if n := c.Normalized(bench.Infra, bench.TotalTime); n <= 0 {
		t.Errorf("normalized infra total = %v", n)
	}
}

// TestByNameUnknown checks the error path.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("want error for unknown workload")
	}
}
