package bench

import (
	"fmt"
	"io"
	"time"

	"gcassert/internal/stats"
)

// compareAlpha is the two-sided significance level for trajectory verdicts.
const compareAlpha = 0.05

// Verdict is the outcome of one metric's old-vs-new comparison.
type Verdict string

// Verdicts. Regressed and Improved are *confident* calls — a Mann–Whitney
// test rejected "same distribution" at compareAlpha and the medians moved in
// the respective direction. Unchanged means the test could not tell the runs
// apart. Info rows carry no statistical claim: either the metric is a scalar
// with no trial distribution, or it is an absolute time measured on a
// different machine.
const (
	VerdictRegressed Verdict = "REGRESSED"
	VerdictImproved  Verdict = "improved"
	VerdictUnchanged Verdict = "~"
	VerdictInfo      Verdict = "info"
)

// Delta is one metric's movement between two runs.
type Delta struct {
	Workload string  `json:"workload"`
	Metric   string  `json:"metric"`
	Unit     string  `json:"unit"` // "pct" or "ns", drives formatting
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	// P is the Mann–Whitney two-sided p-value over the per-trial samples
	// (1 when no test ran — scalar metrics, missing data).
	P       float64 `json:"p"`
	Verdict Verdict `json:"verdict"`
	Note    string  `json:"note,omitempty"`
}

// CompareResult is the full old-vs-new delta table.
type CompareResult struct {
	// SameRunner reports whether the two runs' machine fingerprints match;
	// absolute-nanosecond metrics only get verdicts when they do. Overhead
	// ratios always get verdicts — each ratio's numerator and denominator
	// ran interleaved on the same machine, so the ratio travels.
	SameRunner bool    `json:"same_runner"`
	Deltas     []Delta `json:"deltas"`
}

// HasRegression reports whether any metric regressed with confidence.
func (r *CompareResult) HasRegression() bool {
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegressed {
			return true
		}
	}
	return false
}

// verdictFor turns a significance test into a verdict: confident only when
// the test rejects at compareAlpha; direction from the medians. worseUp
// means larger values are worse (true for times and overheads).
func verdictFor(oldMed, newMed, p float64, worseUp bool) Verdict {
	if p >= compareAlpha || oldMed == newMed {
		return VerdictUnchanged
	}
	worse := newMed > oldMed
	if !worseUp {
		worse = !worse
	}
	if worse {
		return VerdictRegressed
	}
	return VerdictImproved
}

func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// CompareRuns builds the delta table between two run documents. Both must
// already be validated (ReadRunDoc does this).
func CompareRuns(oldDoc, newDoc *RunDoc) *CompareResult {
	res := &CompareResult{
		SameRunner: oldDoc.Runner.Fingerprint() == newDoc.Runner.Fingerprint(),
	}
	nsNote := ""
	if !res.SameRunner {
		nsNote = "different runner — absolute times not comparable"
	}
	for _, nw := range newDoc.Workloads {
		ow := oldDoc.Workload(nw.Name)
		if ow == nil {
			res.Deltas = append(res.Deltas, Delta{
				Workload: nw.Name, Metric: "census overhead", Unit: "pct",
				New: nw.CensusOverheadPct, P: 1, Verdict: VerdictInfo,
				Note: "absent in old run",
			})
			continue
		}

		// Overhead ratio: machine-independent, always eligible for a verdict.
		_, p := stats.MannWhitney(ow.OverheadTrialsPct, nw.OverheadTrialsPct)
		res.Deltas = append(res.Deltas, Delta{
			Workload: nw.Name, Metric: "census overhead", Unit: "pct",
			Old: ow.CensusOverheadPct, New: nw.CensusOverheadPct,
			P: p, Verdict: verdictFor(ow.CensusOverheadPct, nw.CensusOverheadPct, p, true),
		})

		// Absolute times: verdicts only on the same runner.
		for _, m := range []struct {
			metric   string
			old, new []int64
			oldMed   int64
			newMed   int64
		}{
			{"base ns/op", ow.BaseTrialsNs, nw.BaseTrialsNs, ow.BaseMedianNs, nw.BaseMedianNs},
			{"census ns/op", ow.CensusTrialsNs, nw.CensusTrialsNs, ow.CensusMedianNs, nw.CensusMedianNs},
		} {
			d := Delta{
				Workload: nw.Name, Metric: m.metric, Unit: "ns",
				Old: float64(m.oldMed), New: float64(m.newMed), P: 1,
			}
			if res.SameRunner {
				_, p := stats.MannWhitney(toFloats(m.old), toFloats(m.new))
				d.P = p
				d.Verdict = verdictFor(float64(m.oldMed), float64(m.newMed), p, true)
			} else {
				d.Verdict = VerdictInfo
				d.Note = nsNote
			}
			res.Deltas = append(res.Deltas, d)
		}

		// Pause tail: a single percentile per run, no distribution to test.
		res.Deltas = append(res.Deltas, Delta{
			Workload: nw.Name, Metric: "pause p99", Unit: "ns",
			Old: float64(ow.PauseP99Ns), New: float64(nw.PauseP99Ns),
			P: 1, Verdict: VerdictInfo,
			Note: "single sample per run",
		})
	}
	for _, ow := range oldDoc.Workloads {
		if newDoc.Workload(ow.Name) == nil {
			res.Deltas = append(res.Deltas, Delta{
				Workload: ow.Name, Metric: "census overhead", Unit: "pct",
				Old: ow.CensusOverheadPct, P: 1, Verdict: VerdictInfo,
				Note: "absent in new run",
			})
		}
	}
	return res
}

func fmtDelta(d Delta) (oldS, newS, deltaS string) {
	switch d.Unit {
	case "pct":
		return fmt.Sprintf("%+.2f%%", d.Old), fmt.Sprintf("%+.2f%%", d.New),
			fmt.Sprintf("%+.2fpp", d.New-d.Old)
	default:
		rel := ""
		if d.Old > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*(d.New/d.Old-1))
		}
		return time.Duration(d.Old).Round(time.Microsecond).String(),
			time.Duration(d.New).Round(time.Microsecond).String(), rel
	}
}

// PrintCompare renders the delta table with the runner-match preamble.
func PrintCompare(w io.Writer, oldDoc, newDoc *RunDoc, res *CompareResult) {
	fmt.Fprintf(w, "old: %s (commit %.12s, %d trials)\n",
		oldDoc.Runner.Fingerprint(), orNone(oldDoc.Runner.Commit), oldDoc.Trials)
	fmt.Fprintf(w, "new: %s (commit %.12s, %d trials)\n",
		newDoc.Runner.Fingerprint(), orNone(newDoc.Runner.Commit), newDoc.Trials)
	if res.SameRunner {
		fmt.Fprintln(w, "runner match: yes — absolute-time verdicts enabled")
	} else {
		fmt.Fprintln(w, "runner match: no — verdicts on overhead ratios only, absolute times informational")
	}
	fmt.Fprintf(w, "%-12s %-16s %12s %12s %10s %7s  %s\n",
		"workload", "metric", "old", "new", "delta", "p", "verdict")
	for _, d := range res.Deltas {
		oldS, newS, deltaS := fmtDelta(d)
		pS := "-"
		if d.P < 1 {
			pS = fmt.Sprintf("%.3f", d.P)
		}
		line := fmt.Sprintf("%-12s %-16s %12s %12s %10s %7s  %s",
			d.Workload, d.Metric, oldS, newS, deltaS, pS, d.Verdict)
		if d.Note != "" {
			line += " (" + d.Note + ")"
		}
		fmt.Fprintln(w, line)
	}
	if res.HasRegression() {
		fmt.Fprintln(w, "result: CONFIDENT REGRESSION")
	} else {
		fmt.Fprintln(w, "result: no confident regression")
	}
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
