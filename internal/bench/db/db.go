// Package db is a miniature SPEC JVM98 _209_db: an in-memory database of
// Entry records addressed through a sorted index, exercised with a shuffled
// mix of find/add/remove/scan operations.
//
// With assertions enabled it carries the paper's instrumentation (§3.1.1):
// every Entry is asserted owned by its containing Database, and removals
// place assert-dead on the removed Entry (the code location where the
// original program nulls the instance variable). The live database of
// several thousand entries makes this the workload with the largest
// per-GC ownership checking load, matching the paper's ~15k ownees per GC.
package db

import (
	"gcassert"
	"gcassert/internal/bench/wutil"
)

// Config parameterizes the workload.
type Config struct {
	// Entries is the steady-state database size.
	Entries int
	// Ops is the number of operations per iteration.
	Ops int
	// FieldsPerEntry is the number of payload "strings" per entry.
	FieldsPerEntry int
	// Asserts enables the paper's instrumentation.
	Asserts bool
	// LeakRemoved seeds a bug for the case-study tests: removed entries are
	// kept in a "recently deleted" cache, so their assert-dead fires.
	LeakRemoved bool
	// Seed drives the deterministic op mix.
	Seed uint64
}

// DefaultConfig is the harness scale.
func DefaultConfig() Config {
	return Config{Entries: 12000, Ops: 60000, FieldsPerEntry: 3, Seed: 7}
}

// Managed field slots.
const (
	dbEntries = 0 // ref: TRefArray of entries (dense prefix)
	dbCache   = 1 // ref: TRefArray: the seeded "recently deleted" cache
	dbN       = 2 // scalar: number of live entries

	entFields = 0 // ref: TRefArray of word-array payloads
	entKey    = 1 // scalar: sort key
	entID     = 2 // scalar
)

// DB is one bound instance.
type DB struct {
	cfg Config
	vm  *gcassert.Runtime
	th  *gcassert.Thread
	rng *wutil.RNG

	tDatabase, tEntry gcassert.TypeID

	dbGlobal int
	nextID   uint64
	cachePos int
}

// New binds the workload to a runtime.
func New(vm *gcassert.Runtime, cfg Config) *DB {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	d := &DB{cfg: cfg, vm: vm, rng: wutil.NewRNG(cfg.Seed)}
	reg := vm.Registry()
	def := func(name string, fields ...gcassert.Field) gcassert.TypeID {
		if id, ok := reg.Lookup(name); ok {
			return id
		}
		return vm.Define(name, fields...)
	}
	d.tDatabase = def("spec/db/Database",
		gcassert.Field{Name: "entries", Ref: true},
		gcassert.Field{Name: "cache", Ref: true},
		gcassert.Field{Name: "n", Ref: false})
	d.tEntry = def("spec/db/Entry",
		gcassert.Field{Name: "fields", Ref: true},
		gcassert.Field{Name: "key", Ref: false},
		gcassert.Field{Name: "id", Ref: false})
	d.th = vm.NewThread("db-main")
	d.dbGlobal = vm.NewGlobal("database")
	return d
}

// EntryType returns the Entry TypeID.
func (d *DB) EntryType() gcassert.TypeID { return d.tEntry }

// Database returns the managed database object.
func (d *DB) Database() gcassert.Ref { return d.vm.GetGlobal(d.dbGlobal) }

// Thread returns the mutator thread.
func (d *DB) Thread() *gcassert.Thread { return d.th }

// setup builds the initial database.
func (d *DB) setup() {
	vm, th, cfg := d.vm, d.th, d.cfg
	fr := th.Push(1)
	database := th.New(d.tDatabase)
	fr.Set(0, database)
	vm.SetRef(database, dbEntries, th.NewArray(gcassert.TRefArray, 2*cfg.Entries))
	vm.SetRef(database, dbCache, th.NewArray(gcassert.TRefArray, 64))
	vm.SetGlobal(d.dbGlobal, database)
	th.Pop()
	for i := 0; i < cfg.Entries; i++ {
		d.add()
	}
}

// newEntry allocates a fully populated entry, rooted in fr slot 0.
func (d *DB) newEntry(fr *gcassert.Frame) gcassert.Ref {
	vm, th, cfg := d.vm, d.th, d.cfg
	e := th.New(d.tEntry)
	fr.Set(0, e)
	vm.SetScalar(e, entKey, d.rng.Next()%1_000_000)
	vm.SetScalar(e, entID, d.nextID)
	d.nextID++
	vm.SetRef(e, entFields, th.NewArray(gcassert.TRefArray, cfg.FieldsPerEntry))
	flds := vm.GetRef(e, entFields)
	for i := 0; i < cfg.FieldsPerEntry; i++ {
		vm.SetRefAt(flds, i, wutil.NewString(vm, th, d.rng, 4+d.rng.Intn(8)))
	}
	return e
}

// add inserts a new entry into the database.
func (d *DB) add() {
	vm, th := d.vm, d.th
	fr := th.Push(1)
	e := d.newEntry(fr)
	database := d.Database()
	entries := vm.GetRef(database, dbEntries)
	n := int(vm.GetScalar(database, dbN))
	if n == vm.ArrayLen(entries) {
		// Grow the entry table.
		ne := th.NewArray(gcassert.TRefArray, 2*n)
		for i := 0; i < n; i++ {
			vm.SetRefAt(ne, i, vm.RefAt(entries, i))
		}
		vm.SetRef(database, dbEntries, ne)
		entries = ne
	}
	vm.SetRefAt(entries, n, e)
	vm.SetScalar(database, dbN, uint64(n+1))
	if d.cfg.Asserts {
		vm.AssertOwnedBy(database, e)
	}
	th.Pop()
}

// remove deletes a random entry (swap-remove), asserting its death.
func (d *DB) remove() {
	vm := d.vm
	database := d.Database()
	n := int(vm.GetScalar(database, dbN))
	if n == 0 {
		return
	}
	entries := vm.GetRef(database, dbEntries)
	i := d.rng.Intn(n)
	e := vm.RefAt(entries, i)
	vm.SetRefAt(entries, i, vm.RefAt(entries, n-1))
	vm.SetRefAt(entries, n-1, gcassert.Nil)
	vm.SetScalar(database, dbN, uint64(n-1))
	if d.cfg.LeakRemoved {
		// Seeded bug: keep the removed entry in a "recently deleted" cache.
		cache := vm.GetRef(database, dbCache)
		vm.SetRefAt(cache, d.cachePos%vm.ArrayLen(cache), e)
		d.cachePos++
	}
	if d.cfg.Asserts {
		vm.AssertDead(e)
	}
}

// find performs a scan lookup by key over the dense prefix.
func (d *DB) find() int {
	vm := d.vm
	database := d.Database()
	n := int(vm.GetScalar(database, dbN))
	if n == 0 {
		return -1
	}
	entries := vm.GetRef(database, dbEntries)
	key := d.rng.Next() % 1_000_000
	// Probe a bounded window, like the original's sequential search.
	start := d.rng.Intn(n)
	for i := 0; i < 16 && i < n; i++ {
		e := vm.RefAt(entries, (start+i)%n)
		if vm.GetScalar(e, entKey) <= key {
			return (start + i) % n
		}
	}
	return -1
}

// scan touches every entry's first payload word (the "sort" pass).
func (d *DB) scan() uint64 {
	vm := d.vm
	database := d.Database()
	n := int(vm.GetScalar(database, dbN))
	if n > 3000 {
		n = 3000 // the original's sort pass touches a bounded window
	}
	entries := vm.GetRef(database, dbEntries)
	var sum uint64
	for i := 0; i < n; i++ {
		e := vm.RefAt(entries, i)
		flds := vm.GetRef(e, entFields)
		sum += vm.WordAt(vm.RefAt(flds, 0), 0)
	}
	return sum
}

// RunIteration executes one iteration of the op mix.
func (d *DB) RunIteration(iter int) {
	if d.Database() == gcassert.Nil {
		d.setup()
	}
	for op := 0; op < d.cfg.Ops; op++ {
		switch p := d.rng.Intn(100); {
		case p < 40:
			d.find()
		case p < 68:
			d.add()
		case p < 96:
			d.remove()
		default:
			d.scan()
		}
	}
}
