package db

import (
	"testing"

	"gcassert"
)

func newDB(t *testing.T, mutate func(*Config)) (*DB, *gcassert.Runtime, *gcassert.CollectingReporter) {
	t.Helper()
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{HeapBytes: 16 << 20, Infrastructure: true, Reporter: rep})
	cfg := DefaultConfig()
	cfg.Entries = 1500
	cfg.Ops = 8000
	if mutate != nil {
		mutate(&cfg)
	}
	return New(vm, cfg), vm, rep
}

func TestSetupAndSteadyState(t *testing.T) {
	d, vm, _ := newDB(t, nil)
	d.RunIteration(0)
	database := d.Database()
	if database == gcassert.Nil {
		t.Fatal("no database")
	}
	n := int(vm.GetScalar(database, dbN))
	if n <= 0 {
		t.Fatalf("database emptied out: n=%d", n)
	}
	// The dense prefix is fully populated; the rest of the table is nil.
	entries := vm.GetRef(database, dbEntries)
	for i := 0; i < n; i++ {
		if vm.RefAt(entries, i) == gcassert.Nil {
			t.Fatalf("hole at %d (n=%d)", i, n)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() uint64 {
		d, vm, _ := newDB(t, nil)
		d.RunIteration(0)
		return vm.HeapStats().ObjectsAllocated
	}
	if run() != run() {
		t.Error("nondeterministic")
	}
}

func TestAssertsCleanOnRepaired(t *testing.T) {
	d, vm, rep := newDB(t, func(c *Config) { c.Asserts = true })
	d.RunIteration(0)
	vm.Collect()
	if rep.Len() != 0 {
		t.Fatalf("violations: %v", rep.Violations()[0].String())
	}
	st := vm.AssertionStats()
	if st.OwnedPairsAsserted == 0 || st.DeadAsserted == 0 || st.DeadVerified == 0 {
		t.Errorf("assertion traffic: %+v", st)
	}
}

func TestLeakRemovedCachesAreDetected(t *testing.T) {
	d, vm, rep := newDB(t, func(c *Config) { c.Asserts = true; c.LeakRemoved = true })
	d.RunIteration(0)
	vm.Collect()
	if len(rep.ByKind(gcassert.KindDead)) == 0 {
		t.Fatal("cache leak not detected")
	}
}

func TestGrowthPath(t *testing.T) {
	// A tiny initial table forces the growth branch.
	d, vm, _ := newDB(t, func(c *Config) { c.Entries = 10; c.Ops = 0 })
	d.RunIteration(0)
	for i := 0; i < 100; i++ {
		d.add()
	}
	database := d.Database()
	if n := int(vm.GetScalar(database, dbN)); n != 110 {
		t.Errorf("n = %d, want 110", n)
	}
	entries := vm.GetRef(database, dbEntries)
	if vm.ArrayLen(entries) < 110 {
		t.Errorf("table not grown: %d", vm.ArrayLen(entries))
	}
}

func TestEntryType(t *testing.T) {
	d, vm, _ := newDB(t, nil)
	if vm.Registry().Name(d.EntryType()) != "spec/db/Entry" {
		t.Error("EntryType")
	}
	if d.Thread() == nil {
		t.Error("Thread")
	}
}
