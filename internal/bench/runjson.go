package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"gcassert/internal/version"
)

// RunSchemaVersion is the current BENCH_run document schema. Version 2
// introduced per-trial arrays (the raw material for significance testing),
// the runner stamp, and base/census interleaving; the unversioned seed
// format (implicitly version 0-1) carried only cross-trial means, which is
// why it could report a negative census overhead: all base trials ran before
// all census trials, so any machine drift between the two blocks landed in
// the delta.
const RunSchemaVersion = 2

// RunnerMeta records who produced a run. Absolute times are only comparable
// between runs whose fingerprints match; overhead *ratios* are comparable
// across machines because both sides of each ratio ran interleaved on the
// same hardware within the same trial.
type RunnerMeta struct {
	Host      string `json:"host"`
	CPUs      int    `json:"cpus"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
	Commit    string `json:"commit,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// CurrentRunner describes this process's machine and build.
func CurrentRunner() RunnerMeta {
	host, _ := os.Hostname()
	b := version.CurrentBuild()
	return RunnerMeta{
		Host: host, CPUs: runtime.NumCPU(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoVersion: b.GoVersion, Commit: b.VCSRevision, Dirty: b.Dirty,
	}
}

// Fingerprint identifies the measurement environment (not the commit): two
// runs with equal fingerprints may be compared in absolute nanoseconds.
func (r RunnerMeta) Fingerprint() string {
	return fmt.Sprintf("%s/%d-cpu/%s-%s/%s", r.Host, r.CPUs, r.GOOS, r.GOARCH, r.GoVersion)
}

// WorkloadRun is one workload's measurements: the per-trial raw arrays plus
// the robust summaries derived from them.
type WorkloadRun struct {
	Name string `json:"name"`
	// BaseTrialsNs and CensusTrialsNs are measured-iteration times per
	// trial; trial i of both configurations ran back-to-back (A/B within
	// the trial), so the arrays are paired.
	BaseTrialsNs   []int64 `json:"base_trials_ns"`
	CensusTrialsNs []int64 `json:"census_trials_ns"`
	// OverheadTrialsPct is the paired per-trial overhead,
	// 100*(census/base − 1) — machine-independent, the regression gate's
	// primary signal.
	OverheadTrialsPct []float64 `json:"overhead_trials_pct"`
	// Medians and IQR/median spreads of the arrays above.
	BaseMedianNs      int64   `json:"base_median_ns"`
	CensusMedianNs    int64   `json:"census_median_ns"`
	CensusOverheadPct float64 `json:"census_overhead_pct"`
	BaseSpreadPct     float64 `json:"base_spread_pct"`
	CensusSpreadPct   float64 `json:"census_spread_pct"`
	// Pause percentiles from the final census trial's telemetry.
	PauseP50Ns  int64  `json:"pause_p50_ns"`
	PauseP99Ns  int64  `json:"pause_p99_ns"`
	PauseP999Ns int64  `json:"pause_p999_ns"`
	PauseMaxNs  int64  `json:"pause_max_ns"`
	Collections uint64 `json:"collections"`
	// CensusLiveWords cross-checks the census against the collector's
	// live-words accounting at the same instant.
	CensusLiveWords uint64 `json:"census_live_words"`
	LiveWordsMatch  bool   `json:"live_words_match"`
}

// MarkSpeedupRun is the parallel-mark worker sweep for one workload.
type MarkSpeedupRun struct {
	Name   string           `json:"name"`
	Widths []MarkWidthPoint `json:"widths"`
}

// MarkWidthPoint is one worker width in the sweep.
type MarkWidthPoint struct {
	Workers  int     `json:"workers"`
	MarkNs   int64   `json:"mark_ns"`
	Speedup  float64 `json:"speedup"`
	Marked   int     `json:"objects_marked"`
	StealsMu float64 `json:"steals_mean"`
}

// AssertCostRun is the cost-attribution profile of one assertion-enabled
// workload run.
type AssertCostRun struct {
	Name    string          `json:"name"`
	TotalGC int64           `json:"total_gc_ns"`
	Kinds   []CostKindPoint `json:"kinds"`
}

// CostKindPoint is one assertion kind's cumulative cost.
type CostKindPoint struct {
	Kind   string  `json:"kind"`
	Checks uint64  `json:"checks"`
	Ns     int64   `json:"ns"`
	PctGC  float64 `json:"pct_of_gc"`
}

// AllocRateRun is the mutator-pressure profile of the same run.
type AllocRateRun struct {
	Name              string  `json:"name"`
	AllocRateWps      float64 `json:"alloc_rate_wps"`
	OccupancySamples  int     `json:"occupancy_samples"`
	FinalOccupancyPct float64 `json:"final_occupancy_pct"`
	Threads           int     `json:"threads"`
}

// ServiceRun is one mjload -server run against a live gcassertd: the
// service-level throughput, latency-tail and SLO-compliance record. It is
// an additive schema-2 section — documents without it (and readers that
// predate it) are unaffected.
type ServiceRun struct {
	Name                 string  `json:"name"`
	Server               string  `json:"server"`
	Tenants              int     `json:"tenants"`
	TargetRPSPerTenant   float64 `json:"target_rps_per_tenant"`
	AchievedRPSAggregate float64 `json:"achieved_rps_aggregate"`
	Requests             uint64  `json:"requests"`
	Failures             uint64  `json:"failures"`
	Violations           uint64  `json:"violations"`
	ViolationsPerMillion float64 `json:"violations_per_million_requests"`
	LatencyP50Ns         int64   `json:"latency_p50_ns"`
	LatencyP99Ns         int64   `json:"latency_p99_ns"`
	LatencyP999Ns        int64   `json:"latency_p999_ns"`
	LatencyMaxNs         int64   `json:"latency_max_ns"`
	// SLO fields are present only when the run declared an SLO (-slo):
	// how many tenants ended compliant and the worst fast-burn observed.
	SLOTenants          int     `json:"slo_tenants,omitempty"`
	SLOTenantsCompliant int     `json:"slo_tenants_compliant,omitempty"`
	SLOWorstBurn        float64 `json:"slo_worst_burn,omitempty"`
	SLOWorstTenant      string  `json:"slo_worst_tenant,omitempty"`
}

// RunDoc is the versioned machine-readable benchmark run: the trajectory
// pipeline's unit of archival and comparison.
type RunDoc struct {
	SchemaVersion int        `json:"schema_version"`
	GeneratedUnix int64      `json:"generated_unix"`
	Trials        int        `json:"trials"`
	Iterations    int        `json:"iterations"`
	Runner        RunnerMeta `json:"runner"`

	Workloads   []WorkloadRun    `json:"workloads"`
	MarkSpeedup []MarkSpeedupRun `json:"mark_speedup,omitempty"`
	AssertCost  []AssertCostRun  `json:"assert_cost,omitempty"`
	AllocRate   []AllocRateRun   `json:"alloc_rate,omitempty"`
	Service     []ServiceRun     `json:"service,omitempty"`
}

// Workload returns the named workload's record, or nil.
func (d *RunDoc) Workload(name string) *WorkloadRun {
	for i := range d.Workloads {
		if d.Workloads[i].Name == name {
			return &d.Workloads[i]
		}
	}
	return nil
}

// Validate checks the document's schema version and internal consistency.
func (d *RunDoc) Validate() error {
	if d.SchemaVersion != RunSchemaVersion {
		return fmt.Errorf("bench: run document has schema_version %d, this build reads %d — regenerate with `gcassert-bench -baseline`",
			d.SchemaVersion, RunSchemaVersion)
	}
	for _, w := range d.Workloads {
		if len(w.BaseTrialsNs) != len(w.CensusTrialsNs) || len(w.BaseTrialsNs) != len(w.OverheadTrialsPct) {
			return fmt.Errorf("bench: workload %s has unpaired trial arrays (%d base, %d census, %d overhead)",
				w.Name, len(w.BaseTrialsNs), len(w.CensusTrialsNs), len(w.OverheadTrialsPct))
		}
		if len(w.BaseTrialsNs) == 0 {
			return fmt.Errorf("bench: workload %s has no trials", w.Name)
		}
	}
	return nil
}

// WriteJSON renders the document, indented for diff-friendly archival.
func (d *RunDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadRunDoc loads and validates a run document from a file.
func ReadRunDoc(path string) (*RunDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d RunDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
