// Package bench is the evaluation harness reproducing the paper's
// performance methodology (§3.1.1): each benchmark runs in three
// configurations —
//
//   - Base: unmodified collector, no assertion infrastructure;
//   - Infrastructure: assertion infrastructure enabled, no assertions added;
//   - WithAssertions: infrastructure plus the benchmark's own assertions
//     (only _209_db and pseudojbb define them, as in the paper);
//
// iterates each benchmark several times and measures the final iteration,
// repeats that for a number of trials, and reports total / mutator / GC time
// with 90% confidence intervals, normalized to Base.
package bench

import (
	"fmt"
	"time"

	"gcassert"
	"gcassert/internal/stats"
)

// Mode is a measurement configuration.
type Mode int

// Configurations, in the paper's order.
const (
	// Base runs the unmodified collector.
	Base Mode = iota
	// Infra enables the assertion infrastructure without any assertions.
	Infra
	// WithAssertions enables the infrastructure and the workload's own
	// assertions.
	WithAssertions
)

func (m Mode) String() string {
	switch m {
	case Base:
		return "Base"
	case Infra:
		return "Infrastructure"
	case WithAssertions:
		return "WithAssertions"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Workload is one benchmark program.
type Workload struct {
	// Name is the benchmark's name (DaCapo / SPEC style).
	Name string
	// Heap is the managed heap size for the runs (the paper fixes the heap
	// at 2× the minimum for each benchmark).
	Heap int
	// New binds a fresh instance of the workload to the runtime and returns
	// the function that executes one full iteration. When asserts is true
	// the workload registers its GC assertions (only meaningful on an
	// infrastructure-mode runtime).
	New func(vm *gcassert.Runtime, asserts bool) func(iter int)
	// HasAsserts marks workloads that define a WithAssertions variant.
	HasAsserts bool
}

// Options controls a harness run.
type Options struct {
	// Trials is the number of independent trials (paper: 20).
	Trials int
	// Iterations per trial; the last is the measured one (paper: 4).
	Iterations int
	// Workers is the mark-phase worker count for every measured runtime
	// (0 or 1 = the sequential reference marker).
	Workers int
}

// DefaultOptions returns a scaled-down version of the paper's methodology
// suitable for quick runs: 5 trials of 3 iterations.
func DefaultOptions() Options { return Options{Trials: 5, Iterations: 3} }

// PaperOptions returns the paper's full methodology: 20 trials, 4 iterations.
func PaperOptions() Options { return Options{Trials: 20, Iterations: 4} }

// Result holds the measurements of one workload in one mode.
type Result struct {
	Workload string
	Mode     Mode
	// Total, Mutator and GC are per-trial times (seconds) of the measured
	// iteration.
	Total   stats.Sample
	Mutator stats.Sample
	GC      stats.Sample
	// Collections is the mean number of collections in the measured
	// iteration.
	Collections stats.Sample
	// TotalCollections is the final trial's whole-run collection count.
	TotalCollections uint64
	// Assertion activity of the final trial (WithAssertions only).
	AssertStats gcassert.AssertStats
}

// OwneesCheckedPerGC reports the paper's "ownee objects checked per GC"
// metric for a WithAssertions result.
func (r *Result) OwneesCheckedPerGC() float64 {
	if r.TotalCollections == 0 {
		return 0
	}
	return float64(r.AssertStats.OwneesChecked) / float64(r.TotalCollections)
}

// runTrial executes one trial — fresh runtime, warmup iterations, one
// measured iteration — and records it into res.
func runTrial(w Workload, mode Mode, opt Options, res *Result) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes:      w.Heap,
		Infrastructure: mode != Base,
		Workers:        opt.Workers,
	})
	run := w.New(vm, mode == WithAssertions)
	for i := 0; i < opt.Iterations-1; i++ {
		run(i)
	}
	gcBefore := vm.GCStats()
	start := time.Now()
	run(opt.Iterations - 1)
	total := time.Since(start)
	gcAfter := vm.GCStats()
	gcTime := gcAfter.TotalGCTime - gcBefore.TotalGCTime
	res.Total.AddDuration(total)
	res.GC.AddDuration(gcTime)
	res.Mutator.AddDuration(total - gcTime)
	res.Collections.Add(float64(gcAfter.Collections - gcBefore.Collections))
	res.TotalCollections = gcAfter.Collections
	if mode == WithAssertions {
		res.AssertStats = vm.AssertionStats()
	}
}

// Run measures one workload in one mode for all trials.
func Run(w Workload, mode Mode, opt Options) Result {
	res := Result{Workload: w.Name, Mode: mode}
	for trial := 0; trial < opt.Trials; trial++ {
		runTrial(w, mode, opt, &res)
	}
	return res
}

// Comparison is the Base-normalized view of one workload across modes.
type Comparison struct {
	Workload string
	// Results by mode; WithAssertions may be absent.
	Results map[Mode]*Result
}

// Normalized returns the given metric of mode normalized to Base. When the
// trials were collected interleaved (Compare does this), the two samples
// are paired — trial i of every mode ran under the same machine conditions
// — and the median of per-trial ratios is returned, which is robust to the
// time-varying performance of shared hardware. With unpaired samples it
// falls back to the ratio of means.
func (c *Comparison) Normalized(mode Mode, metric func(*Result) *stats.Sample) float64 {
	base, ok1 := c.Results[Base]
	r, ok2 := c.Results[mode]
	if !ok1 || !ok2 {
		return 0
	}
	bs, ms := metric(base).Values(), metric(r).Values()
	if len(bs) == len(ms) && len(bs) > 0 {
		ratios := make([]float64, 0, len(bs))
		for i := range bs {
			if bs[i] > 0 {
				ratios = append(ratios, ms[i]/bs[i])
			}
		}
		if len(ratios) > 0 {
			return stats.Median(ratios)
		}
	}
	return stats.Ratio(metric(r), metric(base))
}

// Metric selectors for Comparison.Normalized.
var (
	// TotalTime selects total execution time.
	TotalTime = func(r *Result) *stats.Sample { return &r.Total }
	// MutatorTime selects mutator (non-GC) time.
	MutatorTime = func(r *Result) *stats.Sample { return &r.Mutator }
	// GCTime selects collector time.
	GCTime = func(r *Result) *stats.Sample { return &r.GC }
)

// Compare runs the workload in the given modes, interleaving the modes
// within each trial so that machine-performance drift affects all modes
// equally (the per-trial measurements are then paired for Normalized).
func Compare(w Workload, modes []Mode, opt Options) *Comparison {
	c := &Comparison{Workload: w.Name, Results: make(map[Mode]*Result)}
	var active []Mode
	for _, m := range modes {
		if m == WithAssertions && !w.HasAsserts {
			continue
		}
		active = append(active, m)
		c.Results[m] = &Result{Workload: w.Name, Mode: m}
	}
	for trial := 0; trial < opt.Trials; trial++ {
		for _, m := range active {
			runTrial(w, m, opt, c.Results[m])
		}
	}
	return c
}
