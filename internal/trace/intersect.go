package trace

import "gcassert/internal/telemetry"

// Window is one half-open wall-clock interval [StartNs, EndNs), in Unix
// nanoseconds. Request service windows and queue waits are both Windows.
type Window struct {
	StartNs int64
	EndNs   int64
}

// Overlap returns the length of the intersection of [aStart, aEnd) and
// [bStart, bEnd), or 0 when they are disjoint.
func Overlap(aStart, aEnd, bStart, bEnd int64) int64 {
	lo, hi := aStart, aEnd
	if bStart > lo {
		lo = bStart
	}
	if bEnd < hi {
		hi = bEnd
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// IntersectPauses runs the event-major two-cursor sweep that attributes GC
// stop-the-world pauses to request windows (PR 7's loadlab algorithm,
// lifted here so the live tracer and the offline latency lab share one
// implementation). fn is invoked once per (event, window) pair with a
// positive overlap.
//
// Preconditions: events are chronological by pause start with
// non-overlapping pause windows (the STW collector guarantees both);
// windows are chronological with monotone starts and ends (a serial
// request loop guarantees both; loadlab's open-loop records satisfy it
// separately for service windows and queue waits). Under those
// preconditions each cursor only ever moves forward, so the sweep is
// O(events + windows + hits).
func IntersectPauses(events []telemetry.Event, windows []Window, fn func(eventIdx, windowIdx int, overlapNs int64)) {
	wi := 0
	for ei := range events {
		es, ee := events[ei].PauseWindow()
		// Skip windows that ended before this pause began; they cannot
		// intersect it or any later pause.
		for wi < len(windows) && windows[wi].EndNs <= es {
			wi++
		}
		// At most a few windows straddle one pause.
		for j := wi; j < len(windows) && windows[j].StartNs < ee; j++ {
			if o := Overlap(windows[j].StartNs, windows[j].EndNs, es, ee); o > 0 {
				fn(ei, j, o)
			}
		}
	}
}
