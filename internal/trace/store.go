package trace

import "sync"

// DefaultStoreCap bounds a tenant's retained traces when the tenant
// doesn't choose.
const DefaultStoreCap = 64

// Summary is one stored trace's listing row, cheap enough to return for
// every retained trace.
type Summary struct {
	TraceID       string `json:"trace_id"`
	StartUnixNs   int64  `json:"start_unix_ns"`
	DurNs         int64  `json:"dur_ns"`
	SampledReason string `json:"sampled_reason,omitempty"`
	Requests      int    `json:"requests"`
	GCs           int    `json:"gcs"`
	Violations    int    `json:"violations"`
	GCPauseNs     int64  `json:"gc_pause_ns"`
}

// Store is a bounded in-memory trace store: FIFO by insertion, oldest
// evicted first when the bound is hit. One Store per tenant; safe for
// concurrent use (the service loop puts, HTTP handlers get).
type Store struct {
	mu    sync.Mutex
	cap   int
	docs  map[string]*Document
	order []string // insertion order, oldest first
}

// NewStore creates a store retaining at most cap traces (cap <= 0 uses
// DefaultStoreCap).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = DefaultStoreCap
	}
	return &Store{cap: cap, docs: make(map[string]*Document)}
}

// Cap returns the store's bound.
func (s *Store) Cap() int { return s.cap }

// Put stores a document, evicting the oldest stored trace when full. A
// re-put of an existing trace ID replaces the document in place without
// consuming a slot.
func (s *Store) Put(d *Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.docs[d.TraceID]; dup {
		s.docs[d.TraceID] = d
		return
	}
	for len(s.order) >= s.cap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.docs, oldest)
	}
	s.docs[d.TraceID] = d
	s.order = append(s.order, d.TraceID)
}

// Get returns a stored document by trace ID.
func (s *Store) Get(traceID string) (*Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[traceID]
	return d, ok
}

// Len reports the number of stored traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Summaries lists the stored traces, newest first.
func (s *Store) Summaries() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Summary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		d := s.docs[s.order[i]]
		out = append(out, Summary{
			TraceID:       d.TraceID,
			StartUnixNs:   d.StartUnixNs,
			DurNs:         d.DurNs(),
			SampledReason: d.SampledReason,
			Requests:      d.Requests,
			GCs:           d.GCs,
			Violations:    d.Violations,
			GCPauseNs:     d.GCPauseNs,
		})
	}
	return out
}
