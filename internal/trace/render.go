package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteTree renders a stored trace as a human-readable span tree (the
// cmd/gctrace drill-down view): one line per span with duration and
// attributes, violations called out with their "Allocated at:" provenance.
func WriteTree(w io.Writer, d *Document) error {
	if _, err := fmt.Fprintf(w, "trace %s  tenant=%s  reason=%s  %s  requests=%d gcs=%d violations=%d pause=%s\n",
		d.TraceID, orDash(d.Tenant), orDash(d.SampledReason), fmtNs(d.DurNs()),
		d.Requests, d.GCs, d.Violations, fmtNs(d.GCPauseNs)); err != nil {
		return err
	}
	root := d.Span(d.RootSpanID)
	if root == nil {
		_, err := fmt.Fprintln(w, "  (no root span)")
		return err
	}
	return writeSpanTree(w, d, root, "")
}

func writeSpanTree(w io.Writer, d *Document, s *Span, indent string) error {
	if _, err := fmt.Fprintf(w, "%s%s (%s)%s\n", indent, s.Name, fmtNs(s.DurNs()), attrSuffix(s.Attrs)); err != nil {
		return err
	}
	for _, ev := range s.Events {
		line := indent + "  ! " + ev.Name
		if t, ok := ev.Attrs["type"].(string); ok {
			line += "  type=" + t
		}
		if site, ok := ev.Attrs["allocated_at"].(string); ok {
			line += "  Allocated at: " + site
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	kids := d.Children(s.SpanID)
	sort.Slice(kids, func(i, j int) bool {
		return d.Spans[kids[i]].StartUnixNs < d.Spans[kids[j]].StartUnixNs
	})
	for _, k := range kids {
		if err := writeSpanTree(w, d, &d.Spans[k], indent+"  "); err != nil {
			return err
		}
	}
	return nil
}

// attrSuffix renders attributes deterministically (sorted keys), skipping
// the bulky ones the tree already shows structurally.
func attrSuffix(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("  %s=%v", k, attrs[k])
	}
	return out
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// fmtNs renders a nanosecond duration compactly (µs under 1ms, ms above).
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// chromeEvent / chromeTrace mirror the Chrome trace_event JSON layout the
// telemetry exporter established; spans render as "X" (complete) events so
// chrome://tracing and Perfetto show the same tree the text view prints.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders a stored trace as Chrome trace_event JSON. Each span
// depth gets its own tid so the nesting reads as stacked tracks;
// violations become instant ("i") events at their wall-clock time.
func WriteChrome(w io.Writer, d *Document) error {
	var evs []chromeEvent
	base := d.StartUnixNs
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		evs = append(evs, chromeEvent{
			Name: s.Name,
			Cat:  "trace",
			Ph:   "X",
			Ts:   float64(s.StartUnixNs-base) / 1e3,
			Dur:  float64(s.DurNs()) / 1e3,
			Pid:  1,
			Tid:  depth + 1,
			Args: s.Attrs,
		})
		for _, ev := range s.Events {
			ts := float64(ev.UnixNs-base) / 1e3
			if ev.UnixNs == 0 {
				ts = float64(s.StartUnixNs-base) / 1e3
			}
			evs = append(evs, chromeEvent{
				Name: ev.Name, Cat: "violation", Ph: "i",
				Ts: ts, Pid: 1, Tid: depth + 1, Args: ev.Attrs,
			})
		}
		kids := d.Children(s.SpanID)
		sort.Slice(kids, func(i, j int) bool {
			return d.Spans[kids[i]].StartUnixNs < d.Spans[kids[j]].StartUnixNs
		})
		for _, k := range kids {
			walk(&d.Spans[k], depth+1)
		}
	}
	if root := d.Span(d.RootSpanID); root != nil {
		walk(root, 0)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
