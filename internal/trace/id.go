// Package trace is the request-to-GC distributed tracing layer: a span
// model with W3C traceparent propagation, a builder that turns one driven
// request batch into a span tree whose GC collections are child spans of
// the requests they paused (annotated with trigger reason, per-assertion-
// kind cost, pause decomposition, and violation provenance), tail-based
// sampling, and a bounded per-tenant store.
//
// The package also owns the two-cursor pause/request intersection sweep
// that PR 7 introduced inside internal/loadlab; it lives here now so the
// offline latency lab and the live tracer share one implementation
// (IntersectPauses) instead of forking it.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID is a 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the all-zero (invalid per W3C) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the all-zero (invalid per W3C) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// idFallback seeds deterministic IDs when the system entropy source fails
// (it cannot on the platforms we run on, but an all-zero ID is invalid on
// the wire, so the fallback must exist).
var idFallback atomic.Uint64

func randomBytes(b []byte) {
	if _, err := crand.Read(b); err == nil {
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
	binary.BigEndian.PutUint64(b[len(b)-8:], idFallback.Add(1)|1<<63)
}

// NewTraceID returns a fresh random trace ID, never all-zero.
func NewTraceID() TraceID {
	var t TraceID
	randomBytes(t[:])
	return t
}

// NewSpanID returns a fresh random span ID, never all-zero.
func NewSpanID() SpanID {
	var s SpanID
	randomBytes(s[:])
	return s
}

// ParseTraceID parses 32 hex digits.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("trace id %q: %v", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("trace id %q: all-zero is invalid", s)
	}
	return t, nil
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("span id %q: want 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("span id %q: %v", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("span id %q: all-zero is invalid", s)
	}
	return id, nil
}
