package trace

import "math/rand"

// Tail-sampling keep reasons, stamped into Document.SampledReason.
const (
	// KeepViolation: the batch tripped at least one assertion violation.
	KeepViolation = "violation"
	// KeepSLOBad: at least one request was SLO-bad at record time.
	KeepSLOBad = "slo-bad"
	// KeepSlowPause: some collection's pause met the configured threshold.
	KeepSlowPause = "slow-pause"
	// KeepProbability: kept by the probabilistic sampler.
	KeepProbability = "probability"
)

// Sampler makes the tail-based keep/drop decision for a finished trace.
// The interesting traces are always kept — violations, SLO-bad requests,
// slow pauses — and the healthy remainder is sampled down to Probability,
// which is what makes always-on tracing affordable.
type Sampler struct {
	// SlowPauseNs keeps any trace containing a collection whose
	// stop-the-world pause is >= this many nanoseconds. 0 disables the
	// criterion.
	SlowPauseNs int64
	// Probability in [0, 1] keeps that fraction of traces matching no
	// always-keep criterion.
	Probability float64
	// Rand overrides the uniform [0,1) source (tests). Nil uses math/rand.
	Rand func() float64
}

// Keep decides whether a finished trace is retained and why.
func (s Sampler) Keep(hasViolation, sloBad bool, maxPauseNs int64) (keep bool, reason string) {
	switch {
	case hasViolation:
		return true, KeepViolation
	case sloBad:
		return true, KeepSLOBad
	case s.SlowPauseNs > 0 && maxPauseNs >= s.SlowPauseNs:
		return true, KeepSlowPause
	}
	if s.Probability <= 0 {
		return false, ""
	}
	if s.Probability >= 1 {
		return true, KeepProbability
	}
	rnd := s.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	if rnd() < s.Probability {
		return true, KeepProbability
	}
	return false, ""
}
