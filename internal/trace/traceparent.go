package trace

import (
	"fmt"
	"strings"
)

// Header is the W3C trace-context header name carried on every gcassertd
// request and response.
const Header = "traceparent"

// SpanContext is a propagated trace position: which trace, which span is
// the current parent, and whether the upstream chose to sample.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context in W3C form:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", sc.TraceID, sc.SpanID, flags)
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// non-"ff" version (per spec, future versions must stay parseable as
// version 00 up to their extra fields) and rejects malformed or all-zero
// IDs. ok=false means "no usable upstream context" — never an error the
// request should fail on.
func ParseTraceparent(h string) (sc SpanContext, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || ver == "ff" || !isHex(ver) {
		return SpanContext{}, false
	}
	if ver == "00" && len(parts) != 4 {
		return SpanContext{}, false
	}
	// The wire format is lowercase hex only (hex.Decode would also accept
	// uppercase, which the W3C spec forbids).
	if !isHex(tid) || !isHex(sid) {
		return SpanContext{}, false
	}
	t, err := ParseTraceID(tid)
	if err != nil {
		return SpanContext{}, false
	}
	s, err := ParseSpanID(sid)
	if err != nil {
		return SpanContext{}, false
	}
	if len(flags) != 2 || !isHex(flags) {
		return SpanContext{}, false
	}
	sc = SpanContext{TraceID: t, SpanID: s, Sampled: flags[1]&1 == 1}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}
