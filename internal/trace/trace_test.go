package trace

import (
	"encoding/binary"
	"strings"
	"testing"

	"gcassert/internal/telemetry"
)

func TestParseTraceparentValid(t *testing.T) {
	sc, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if got := sc.TraceID.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", got)
	}
	if got := sc.SpanID.String(); got != "b7ad6b7169203331" {
		t.Errorf("span id = %s", got)
	}
	if !sc.Sampled {
		t.Error("sampled flag not parsed")
	}

	// Unsampled flag.
	sc, ok = ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if !ok || sc.Sampled {
		t.Errorf("flags 00: ok=%v sampled=%v, want ok, unsampled", ok, sc.Sampled)
	}

	// Surrounding whitespace is tolerated.
	if _, ok := ParseTraceparent("  00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\n"); !ok {
		t.Error("whitespace-padded header rejected")
	}

	// A future version may carry extra dash-separated fields and must still
	// parse as version 00 up to its known prefix.
	if _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Error("future-version header with extra field rejected")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := map[string]string{
		"empty":              "",
		"too few parts":      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
		"version ff":         "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"version not hex":    "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"v00 extra fields":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"all-zero trace id":  "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"all-zero span id":   "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"short trace id":     "00-0af7651916cd43dd-b7ad6b7169203331-01",
		"short span id":      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71-01",
		"uppercase trace id": "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"non-hex span id":    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01",
		"three-char flags":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-011",
		"flags not hex":      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0x",
	}
	for name, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	orig := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	got, ok := ParseTraceparent(orig.Traceparent())
	if !ok || got != orig {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, orig)
	}
	orig.Sampled = false
	got, ok = ParseTraceparent(orig.Traceparent())
	if !ok || got != orig {
		t.Fatalf("unsampled round trip: got %+v ok=%v, want %+v", got, ok, orig)
	}
}

func TestParseIDs(t *testing.T) {
	if _, err := ParseTraceID(strings.Repeat("0", 32)); err == nil {
		t.Error("all-zero trace id accepted")
	}
	if _, err := ParseSpanID(strings.Repeat("0", 16)); err == nil {
		t.Error("all-zero span id accepted")
	}
	if _, err := ParseTraceID("abc"); err == nil {
		t.Error("short trace id accepted")
	}
	if _, err := ParseSpanID("abc"); err == nil {
		t.Error("short span id accepted")
	}
	id := NewTraceID()
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Errorf("trace id round trip: %v %v", back, err)
	}
	sid := NewSpanID()
	sback, err := ParseSpanID(sid.String())
	if err != nil || sback != sid {
		t.Errorf("span id round trip: %v %v", sback, err)
	}
	if NewTraceID().IsZero() || NewSpanID().IsZero() {
		t.Error("fresh ID is all-zero")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a0, a1, b0, b1, want int64
	}{
		{0, 10, 5, 15, 5},    // partial overlap
		{5, 15, 0, 10, 5},    // symmetric
		{0, 10, 10, 20, 0},   // touching half-open ends
		{0, 10, 20, 30, 0},   // disjoint
		{0, 100, 40, 60, 20}, // containment
		{40, 60, 0, 100, 20}, // contained
		{5, 5, 0, 10, 0},     // empty interval
	}
	for _, c := range cases {
		if got := Overlap(c.a0, c.a1, c.b0, c.b1); got != c.want {
			t.Errorf("Overlap(%d,%d,%d,%d) = %d, want %d", c.a0, c.a1, c.b0, c.b1, got, c.want)
		}
	}
}

func pauseEvent(startNs, totalNs int64) telemetry.Event {
	return telemetry.Event{StartUnixNs: startNs, TotalNs: totalNs}
}

func TestIntersectPauses(t *testing.T) {
	// Three requests back to back; pause 0 inside request 0, pause 1
	// straddling requests 1 and 2, pause 2 after every window.
	windows := []Window{{0, 100}, {100, 200}, {200, 300}}
	events := []telemetry.Event{
		pauseEvent(40, 20),  // [40,60) — wholly inside window 0
		pauseEvent(180, 40), // [180,220) — 20ns in window 1, 20ns in window 2
		pauseEvent(500, 10), // [500,510) — intersects nothing
	}
	type hit struct {
		ei, wi int
		o      int64
	}
	var hits []hit
	IntersectPauses(events, windows, func(ei, wi int, o int64) {
		hits = append(hits, hit{ei, wi, o})
	})
	want := []hit{{0, 0, 20}, {1, 1, 20}, {1, 2, 20}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %+v, want %+v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("hit %d = %+v, want %+v", i, hits[i], want[i])
		}
	}

	// Empty inputs must be safe.
	IntersectPauses(nil, windows, func(_, _ int, _ int64) { t.Error("hit with no events") })
	IntersectPauses(events, nil, func(_, _ int, _ int64) { t.Error("hit with no windows") })
}

func TestSamplerKeepPriority(t *testing.T) {
	s := Sampler{SlowPauseNs: 100, Probability: 1}

	// Violation outranks everything.
	if keep, reason := s.Keep(true, true, 1000); !keep || reason != KeepViolation {
		t.Errorf("violation: keep=%v reason=%q", keep, reason)
	}
	// SLO-bad outranks slow-pause.
	if keep, reason := s.Keep(false, true, 1000); !keep || reason != KeepSLOBad {
		t.Errorf("slo-bad: keep=%v reason=%q", keep, reason)
	}
	// Slow pause at exactly the threshold keeps.
	if keep, reason := s.Keep(false, false, 100); !keep || reason != KeepSlowPause {
		t.Errorf("slow-pause: keep=%v reason=%q", keep, reason)
	}
	// Below threshold falls through to probability.
	if keep, reason := s.Keep(false, false, 99); !keep || reason != KeepProbability {
		t.Errorf("probability: keep=%v reason=%q", keep, reason)
	}
	// SlowPauseNs == 0 disables the pause criterion.
	s2 := Sampler{Probability: 0}
	if keep, reason := s2.Keep(false, false, 1<<40); keep || reason != "" {
		t.Errorf("disabled slow-pause: keep=%v reason=%q", keep, reason)
	}
}

func TestSamplerProbability(t *testing.T) {
	// Deterministic Rand: below p keeps, at/above p drops.
	s := Sampler{Probability: 0.5, Rand: func() float64 { return 0.49 }}
	if keep, reason := s.Keep(false, false, 0); !keep || reason != KeepProbability {
		t.Errorf("rand below p: keep=%v reason=%q", keep, reason)
	}
	s.Rand = func() float64 { return 0.5 }
	if keep, _ := s.Keep(false, false, 0); keep {
		t.Error("rand at p kept")
	}
	// p <= 0 drops without consulting Rand; p >= 1 keeps without it.
	s = Sampler{Probability: 0, Rand: func() float64 { t.Error("Rand consulted at p=0"); return 0 }}
	if keep, _ := s.Keep(false, false, 0); keep {
		t.Error("p=0 kept")
	}
	s = Sampler{Probability: 1, Rand: func() float64 { t.Error("Rand consulted at p=1"); return 0.99 }}
	if keep, reason := s.Keep(false, false, 0); !keep || reason != KeepProbability {
		t.Errorf("p=1: keep=%v reason=%q", keep, reason)
	}
}

// seqIDs returns a deterministic span ID generator: 1, 2, 3, ...
func seqIDs() func() SpanID {
	var n uint64
	return func() SpanID {
		n++
		var id SpanID
		binary.BigEndian.PutUint64(id[:], n)
		return id
	}
}

func TestBuilderSpanTree(t *testing.T) {
	parent := SpanContext{TraceID: mustTraceID(t, "0af7651916cd43dd8448eb211c80319c"), SpanID: mustSpanID(t, "b7ad6b7169203331"), Sampled: true}
	b := NewBuilder(parent, "acme", "host-1", "drive", 1000)
	b.NewSpanIDFn = seqIDs()
	// NewBuilder already minted the root span from the default generator;
	// rebuild with the hook installed so every ID is deterministic.
	b = NewBuilder(parent, "acme", "host-1", "drive", 1000)
	b.NewSpanIDFn = seqIDs()
	b.rootSpan = b.newSpanID() // root = 1
	b.RootAttr("requests", 2)

	// Request 0: [1000, 2000), carries a tag-matched GC.
	r0 := b.StartRequest(1000) // span 2
	ev0 := pauseEvent(1500, 100)
	ev0.Seq = 7
	ev0.Reason = "allocation-failure"
	ev0.Request = r0.String()
	ev0.Trigger = "occupancy"
	ev0.OccupancyPct = 87.5
	ev0.Costs = []telemetry.AssertCost{{Kind: "assert-dead", Checks: 3, Ns: 42}}
	ev0.Phases = []telemetry.PhaseSpan{{Phase: "mark", StartUnixNs: 1500, DurNs: 60}, {Phase: "sweep", StartUnixNs: 1560, DurNs: 40}}
	b.Violation("assert-dead", "Node", "main.go:10", "stack", "object reachable", 1550)
	b.GCEvent(&ev0)
	b.EndRequest(2000, "", false, 1)

	// Request 1: [2000, 3000), GC with no tag — window overlap must parent
	// it here.
	b.StartRequest(2000) // span 3
	ev1 := pauseEvent(2500, 200)
	ev1.Seq = 8
	b.GCEvent(&ev1)
	b.EndRequest(3000, "guest fault", true, 0)

	// Batch-end collection after every request window: parents on root.
	ev2 := pauseEvent(3500, 50)
	ev2.Seq = 9
	b.GCEvent(&ev2)

	// A violation that never sees a closing GCEvent lands on the root.
	b.Violation("assert-ownedby", "Leaf", "main.go:20", "", "", 3600)

	if !b.HasViolations() {
		t.Fatal("HasViolations = false")
	}
	if !b.SLOBad() {
		t.Fatal("SLOBad = false")
	}
	if got := b.MaxPauseNs(); got != 200 {
		t.Fatalf("MaxPauseNs = %d", got)
	}

	doc := b.Finish(4000)

	if doc.TraceID != parent.TraceID.String() {
		t.Errorf("trace id %s does not continue caller's %s", doc.TraceID, parent.TraceID)
	}
	if doc.Requests != 2 || doc.GCs != 3 {
		t.Errorf("rollup requests=%d gcs=%d, want 2, 3", doc.Requests, doc.GCs)
	}
	if doc.Violations != 2 {
		t.Errorf("rollup violations=%d, want 2 (one adopted, one orphan)", doc.Violations)
	}
	if doc.GCPauseNs != 350 {
		t.Errorf("GCPauseNs = %d, want 350", doc.GCPauseNs)
	}
	if doc.MaxPauseNs != 200 {
		t.Errorf("MaxPauseNs = %d, want 200", doc.MaxPauseNs)
	}
	if doc.ServicePauseNs != 300 {
		t.Errorf("ServicePauseNs = %d, want 300 (100 + 200, trailing GC outside)", doc.ServicePauseNs)
	}

	root := doc.Span(doc.RootSpanID)
	if root == nil {
		t.Fatal("root span missing")
	}
	if root.Parent != parent.SpanID.String() {
		t.Errorf("root parent = %q, want remote parent %s", root.Parent, parent.SpanID)
	}
	if len(root.Events) != 1 || root.Events[0].Name != "violation:assert-ownedby" {
		t.Errorf("orphan violation not on root: %+v", root.Events)
	}

	// Request spans.
	var reqSpans []*Span
	for i := range doc.Spans {
		if doc.Spans[i].Name == "request" {
			reqSpans = append(reqSpans, &doc.Spans[i])
		}
	}
	if len(reqSpans) != 2 {
		t.Fatalf("request spans = %d", len(reqSpans))
	}
	if reqSpans[0].Attrs["gc_pause_ns"] != int64(100) {
		t.Errorf("request 0 gc_pause_ns = %v, want 100", reqSpans[0].Attrs["gc_pause_ns"])
	}
	if reqSpans[1].Attrs["gc_pause_ns"] != int64(200) {
		t.Errorf("request 1 gc_pause_ns = %v, want 200", reqSpans[1].Attrs["gc_pause_ns"])
	}
	if reqSpans[1].Attrs["slo_bad"] != true || reqSpans[1].Attrs["error"] != "guest fault" {
		t.Errorf("request 1 attrs = %v", reqSpans[1].Attrs)
	}

	// GC spans: find by seq.
	gcBySeq := map[uint64]*Span{}
	for i := range doc.Spans {
		if doc.Spans[i].Name == "gc" {
			gcBySeq[doc.Spans[i].Attrs["seq"].(uint64)] = &doc.Spans[i]
		}
	}
	if len(gcBySeq) != 3 {
		t.Fatalf("gc spans = %d", len(gcBySeq))
	}
	// Tag-matched: parented on request 0 by runtime evidence.
	if gcBySeq[7].Parent != reqSpans[0].SpanID {
		t.Errorf("tagged gc parent = %s, want request 0 %s", gcBySeq[7].Parent, reqSpans[0].SpanID)
	}
	// Untagged: window-overlap fallback parents on request 1.
	if gcBySeq[8].Parent != reqSpans[1].SpanID {
		t.Errorf("untagged gc parent = %s, want request 1 %s", gcBySeq[8].Parent, reqSpans[1].SpanID)
	}
	// Outside every window: parents on root.
	if gcBySeq[9].Parent != doc.RootSpanID {
		t.Errorf("trailing gc parent = %s, want root", gcBySeq[9].Parent)
	}

	// The adopted violation rides the tagged collection, with provenance.
	g := gcBySeq[7]
	if len(g.Events) != 1 {
		t.Fatalf("tagged gc events = %+v", g.Events)
	}
	v := g.Events[0]
	if v.Name != "violation:assert-dead" || v.Attrs["allocated_at"] != "main.go:10" || v.Attrs["type"] != "Node" {
		t.Errorf("violation event = %+v", v)
	}
	if g.Attrs["cost_ns.assert-dead"] != int64(42) || g.Attrs["cost_checks.assert-dead"] != uint64(3) {
		t.Errorf("per-kind cost attrs = %v", g.Attrs)
	}
	if g.Attrs["trigger"] != "occupancy" {
		t.Errorf("trigger attr = %v", g.Attrs["trigger"])
	}

	// Phase sub-spans hang off the tagged GC span.
	var phases []*Span
	for i := range doc.Spans {
		if doc.Spans[i].Parent == g.SpanID {
			phases = append(phases, &doc.Spans[i])
		}
	}
	if len(phases) != 2 || phases[0].Name != "gc:mark" || phases[1].Name != "gc:sweep" {
		t.Fatalf("phase sub-spans = %+v", phases)
	}
	if phases[0].DurNs() != 60 || phases[1].DurNs() != 40 {
		t.Errorf("phase durations = %d, %d", phases[0].DurNs(), phases[1].DurNs())
	}
}

func TestBuilderFreshTrace(t *testing.T) {
	b := NewBuilder(SpanContext{}, "acme", "host-1", "drive", 0)
	if b.Context().TraceID.IsZero() {
		t.Fatal("no trace ID minted without a remote parent")
	}
	if !b.Context().Sampled {
		t.Error("builder context must advertise sampled")
	}
	doc := b.Finish(10)
	root := doc.Span(doc.RootSpanID)
	if root == nil || root.Parent != "" {
		t.Errorf("fresh trace root must have no parent: %+v", root)
	}
}

func mustTraceID(t *testing.T, s string) TraceID {
	t.Helper()
	id, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustSpanID(t *testing.T, s string) SpanID {
	t.Helper()
	id, err := ParseSpanID(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func docWithID(id string, startNs int64) *Document {
	return &Document{TraceID: id, StartUnixNs: startNs, EndUnixNs: startNs + 1}
}

func TestStoreEvictionOrder(t *testing.T) {
	s := NewStore(3)
	if s.Cap() != 3 {
		t.Fatalf("cap = %d", s.Cap())
	}
	s.Put(docWithID("a", 1))
	s.Put(docWithID("b", 2))
	s.Put(docWithID("c", 3))
	s.Put(docWithID("d", 4)) // evicts a — the oldest — not anything newer

	if _, ok := s.Get("a"); ok {
		t.Error("oldest trace a survived eviction")
	}
	for _, id := range []string{"b", "c", "d"} {
		if _, ok := s.Get(id); !ok {
			t.Errorf("trace %s evicted out of order", id)
		}
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}

	// Summaries list newest first.
	sums := s.Summaries()
	if len(sums) != 3 || sums[0].TraceID != "d" || sums[1].TraceID != "c" || sums[2].TraceID != "b" {
		t.Errorf("summaries order = %+v", sums)
	}

	// Re-putting an existing ID replaces in place without consuming a slot
	// or refreshing its eviction position.
	s.Put(docWithID("b", 20))
	if s.Len() != 3 {
		t.Errorf("dup put changed len to %d", s.Len())
	}
	got, ok := s.Get("b")
	if !ok || got.StartUnixNs != 20 {
		t.Errorf("dup put did not replace: %+v ok=%v", got, ok)
	}
	s.Put(docWithID("e", 5)) // b is still oldest → evicted
	if _, ok := s.Get("b"); ok {
		t.Error("dup put refreshed eviction position")
	}
}

func TestStoreDefaultCap(t *testing.T) {
	if NewStore(0).Cap() != DefaultStoreCap {
		t.Error("cap 0 did not default")
	}
	if NewStore(-5).Cap() != DefaultStoreCap {
		t.Error("negative cap did not default")
	}
}
