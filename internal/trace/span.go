package trace

// DocumentSchemaVersion stamps stored trace documents so fleet consumers
// can reject layouts they don't understand.
const DocumentSchemaVersion = 1

// Span is one node of a trace: a named wall-clock window with a parent,
// free-form attributes, and point-in-time events. IDs are wire-format hex
// strings (32 digits for the trace, 16 for spans) so documents round-trip
// through JSON without a custom codec.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span ID; for the root span it names the remote
	// caller's span (from the incoming traceparent) or is empty when the
	// trace originated here.
	Parent      string `json:"parent_id,omitempty"`
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns"`
	// Attrs annotate the span (trigger reason, per-kind assert cost, pause
	// decomposition, ...). Values are JSON scalars.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Events are point-in-time annotations inside the span's window —
	// assertion violations, with their allocation-site provenance, land
	// here.
	Events []SpanEvent `json:"events,omitempty"`
}

// DurNs is the span's wall-clock duration.
func (s *Span) DurNs() int64 { return s.EndUnixNs - s.StartUnixNs }

// SpanEvent is one point-in-time annotation on a span.
type SpanEvent struct {
	Name   string         `json:"name"`
	UnixNs int64          `json:"unix_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Document is one stored trace: the span tree for a single driven request
// batch, plus the tail-sampling verdict and rollup counters the store and
// fleet listings surface without walking the spans.
type Document struct {
	SchemaVersion int    `json:"schema_version"`
	TraceID       string `json:"trace_id"`
	// Tenant and Instance locate the trace in the fleet.
	Tenant   string `json:"tenant,omitempty"`
	Instance string `json:"instance,omitempty"`
	// RootSpanID names the entry span (the drive); its Parent, when set, is
	// the remote caller's span from the incoming traceparent.
	RootSpanID  string `json:"root_span_id"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns"`
	// SampledReason records why tail sampling kept this trace: "violation",
	// "slo-bad", "slow-pause" or "probability".
	SampledReason string `json:"sampled_reason,omitempty"`
	// Rollup counters.
	Requests       int   `json:"requests"`
	GCs            int   `json:"gcs"`
	Violations     int   `json:"violations"`
	GCPauseNs      int64 `json:"gc_pause_ns"`
	MaxPauseNs     int64 `json:"max_pause_ns,omitempty"`
	ServicePauseNs int64 `json:"service_pause_ns"`

	Spans []Span `json:"spans"`
}

// DurNs is the trace's end-to-end duration.
func (d *Document) DurNs() int64 { return d.EndUnixNs - d.StartUnixNs }

// Span finds a span by ID (nil when absent).
func (d *Document) Span(id string) *Span {
	for i := range d.Spans {
		if d.Spans[i].SpanID == id {
			return &d.Spans[i]
		}
	}
	return nil
}

// Children returns the indices of id's child spans, in stored (= start
// time) order.
func (d *Document) Children(id string) []int {
	var out []int
	for i := range d.Spans {
		if d.Spans[i].Parent == id {
			out = append(out, i)
		}
	}
	return out
}
