package trace

import (
	"fmt"

	"gcassert/internal/telemetry"
)

// Builder accumulates one driven request batch into a span tree. It is
// deliberately single-goroutine: gcassertd's tenant service loop is the
// only writer (requests run there, and GC events and violations are
// delivered synchronously on the same goroutine from inside the pause), so
// the builder needs no locking — the finished Document is handed off to
// the concurrency-safe Store.
//
// Span parentage for GC collections prefers the runtime's own evidence:
// the collector stamps every collection with the request tag active when
// the pause began (Event.Request), and only events without a usable tag
// fall back to wall-clock window intersection (IntersectPauses). Either
// way each collection becomes a child span of the request it paused, with
// the trailing batch-end collection parented on the root drive span.
type Builder struct {
	traceID      TraceID
	rootSpan     SpanID
	remoteParent SpanID // zero unless the caller sent a traceparent
	tenant       string
	instance     string
	rootName     string
	startNs      int64
	rootAttrs    map[string]any

	reqs    []reqRecord
	gcs     []gcRecord
	pending []SpanEvent // violations awaiting their collection's event

	// NewSpanIDFn overrides span ID generation (tests). Nil uses NewSpanID.
	NewSpanIDFn func() SpanID
}

type reqRecord struct {
	span    SpanID
	startNs int64
	endNs   int64
	errMsg  string
	sloBad  bool
	viols   int
}

type gcRecord struct {
	ev    telemetry.Event
	viols []SpanEvent
}

// NewBuilder starts a trace for one batch. A valid parent context (from
// the incoming traceparent) continues the caller's trace with the root
// span parented under the caller's span; otherwise a fresh trace ID is
// minted. rootName names the root span ("drive").
func NewBuilder(parent SpanContext, tenant, instance, rootName string, startNs int64) *Builder {
	b := &Builder{
		tenant:   tenant,
		instance: instance,
		rootName: rootName,
		startNs:  startNs,
	}
	if parent.IsValid() {
		b.traceID = parent.TraceID
		b.remoteParent = parent.SpanID
	} else {
		b.traceID = NewTraceID()
	}
	b.rootSpan = b.newSpanID()
	return b
}

func (b *Builder) newSpanID() SpanID {
	if b.NewSpanIDFn != nil {
		return b.NewSpanIDFn()
	}
	return NewSpanID()
}

// Context returns the trace position to inject into the HTTP response
// traceparent: this trace, the root span, sampled.
func (b *Builder) Context() SpanContext {
	return SpanContext{TraceID: b.traceID, SpanID: b.rootSpan, Sampled: true}
}

// RootAttr annotates the root span.
func (b *Builder) RootAttr(key string, value any) {
	if b.rootAttrs == nil {
		b.rootAttrs = make(map[string]any)
	}
	b.rootAttrs[key] = value
}

// StartRequest opens the next request's span and returns its ID — the
// caller tags the runtime with it (Runtime.SetRequestTag) so collections
// triggered inside the request carry exact provenance.
func (b *Builder) StartRequest(startNs int64) SpanID {
	id := b.newSpanID()
	b.reqs = append(b.reqs, reqRecord{span: id, startNs: startNs, endNs: startNs})
	return id
}

// EndRequest closes the most recently started request span. violations is
// the number of assertion violations the request's collections tripped;
// sloBad records the SLO engine's at-record-time judgment.
func (b *Builder) EndRequest(endNs int64, errMsg string, sloBad bool, violations int) {
	if len(b.reqs) == 0 {
		return
	}
	r := &b.reqs[len(b.reqs)-1]
	r.endNs = endNs
	r.errMsg = errMsg
	r.sloBad = sloBad
	r.viols = violations
}

// Violation records one assertion violation with its allocation-site
// provenance. Violations are reported during a collection, before that
// collection's telemetry event is recorded, so they are held pending and
// attached to the next GCEvent.
func (b *Builder) Violation(kind, typeName, site, rootDesc, message string, unixNs int64) {
	attrs := map[string]any{"kind": kind}
	if typeName != "" {
		attrs["type"] = typeName
	}
	if site != "" {
		attrs["allocated_at"] = site
	}
	if rootDesc != "" {
		attrs["root"] = rootDesc
	}
	if message != "" {
		attrs["message"] = message
	}
	b.pending = append(b.pending, SpanEvent{
		Name:   "violation:" + kind,
		UnixNs: unixNs,
		Attrs:  attrs,
	})
}

// GCEvent records one completed collection (called from the telemetry
// OnRecord tap, inside the pause, on the service goroutine) and adopts any
// pending violations as its own.
func (b *Builder) GCEvent(ev *telemetry.Event) {
	rec := gcRecord{ev: *ev}
	if len(b.pending) > 0 {
		rec.viols = b.pending
		b.pending = nil
	}
	b.gcs = append(b.gcs, rec)
}

// HasViolations reports whether any collection in the batch tripped an
// assertion.
func (b *Builder) HasViolations() bool {
	if len(b.pending) > 0 {
		return true
	}
	for i := range b.gcs {
		if len(b.gcs[i].viols) > 0 {
			return true
		}
	}
	return false
}

// SLOBad reports whether any request was judged SLO-bad at record time.
func (b *Builder) SLOBad() bool {
	for i := range b.reqs {
		if b.reqs[i].sloBad {
			return true
		}
	}
	return false
}

// MaxPauseNs returns the longest stop-the-world pause in the batch.
func (b *Builder) MaxPauseNs() int64 {
	var max int64
	for i := range b.gcs {
		if b.gcs[i].ev.TotalNs > max {
			max = b.gcs[i].ev.TotalNs
		}
	}
	return max
}

// Finish assembles the span tree and rollup counters. The document's
// SampledReason is left empty; the caller stamps it after the sampling
// decision.
func (b *Builder) Finish(endNs int64) *Document {
	d := &Document{
		SchemaVersion: DocumentSchemaVersion,
		TraceID:       b.traceID.String(),
		Tenant:        b.tenant,
		Instance:      b.instance,
		RootSpanID:    b.rootSpan.String(),
		StartUnixNs:   b.startNs,
		EndUnixNs:     endNs,
		Requests:      len(b.reqs),
		GCs:           len(b.gcs),
	}

	root := Span{
		TraceID:     d.TraceID,
		SpanID:      d.RootSpanID,
		Name:        b.rootName,
		StartUnixNs: b.startNs,
		EndUnixNs:   endNs,
		Attrs:       b.rootAttrs,
	}
	if !b.remoteParent.IsZero() {
		root.Parent = b.remoteParent.String()
	}
	// Violations that never saw a closing event (a guest fault aborting the
	// collection's record) still surface, on the root.
	if len(b.pending) > 0 {
		root.Events = append(root.Events, b.pending...)
	}

	// Pause decomposition: the two-cursor sweep attributes each pause's
	// overlap to the request service windows it straddled. Tag-matched
	// events are parented by runtime evidence; the sweep result still
	// annotates both sides with exact overlap numbers.
	wins := make([]Window, len(b.reqs))
	for i, r := range b.reqs {
		wins[i] = Window{StartNs: r.startNs, EndNs: r.endNs}
	}
	evs := make([]telemetry.Event, len(b.gcs))
	for i := range b.gcs {
		evs[i] = b.gcs[i].ev
	}
	evSvc := make([]int64, len(evs))     // per-event service overlap
	evOwner := make([]int, len(evs))     // window owning the largest share
	evOwnerNs := make([]int64, len(evs)) // that largest share
	reqPause := make([]int64, len(wins)) // per-request absorbed pause
	for i := range evOwner {
		evOwner[i] = -1
	}
	IntersectPauses(evs, wins, func(ei, wi int, o int64) {
		evSvc[ei] += o
		reqPause[wi] += o
		if o > evOwnerNs[ei] {
			evOwnerNs[ei] = o
			evOwner[ei] = wi
		}
	})

	spanIDByReq := make(map[int]string, len(b.reqs))
	reqSpans := make([]Span, 0, len(b.reqs))
	for i, r := range b.reqs {
		id := r.span.String()
		spanIDByReq[i] = id
		attrs := map[string]any{"index": i}
		if r.errMsg != "" {
			attrs["error"] = r.errMsg
		}
		if r.sloBad {
			attrs["slo_bad"] = true
		}
		if r.viols > 0 {
			attrs["violations"] = r.viols
		}
		if reqPause[i] > 0 {
			attrs["gc_pause_ns"] = reqPause[i]
		}
		reqSpans = append(reqSpans, Span{
			TraceID:     d.TraceID,
			SpanID:      id,
			Parent:      d.RootSpanID,
			Name:        "request",
			StartUnixNs: r.startNs,
			EndUnixNs:   r.endNs,
			Attrs:       attrs,
		})
	}

	var gcSpans []Span
	for i := range b.gcs {
		ev := &b.gcs[i].ev
		parent := d.RootSpanID
		if ev.Request != "" {
			// Exact provenance: the collector stamped the active request.
			for ri := range b.reqs {
				if b.reqs[ri].span.String() == ev.Request {
					parent = spanIDByReq[ri]
					break
				}
			}
		} else if evOwner[i] >= 0 {
			parent = spanIDByReq[evOwner[i]]
		}
		id := b.newSpanID().String()
		es, ee := ev.PauseWindow()
		attrs := map[string]any{
			"seq":      ev.Seq,
			"reason":   ev.Reason,
			"total_ns": ev.TotalNs,
			"workers":  ev.Workers,
			"freed":    ev.ObjectsFreed,
			"live":     ev.ObjectsLive,
		}
		if ev.Trigger != "" {
			attrs["trigger"] = ev.Trigger
			attrs["occupancy_pct"] = ev.OccupancyPct
		}
		if ev.TriggerThread != "" {
			attrs["trigger_thread"] = ev.TriggerThread
		}
		if evSvc[i] > 0 {
			attrs["service_overlap_ns"] = evSvc[i]
		}
		for _, c := range ev.Costs {
			attrs["cost_ns."+c.Kind] = c.Ns
			attrs["cost_checks."+c.Kind] = c.Checks
		}
		gc := Span{
			TraceID:     d.TraceID,
			SpanID:      id,
			Parent:      parent,
			Name:        "gc",
			StartUnixNs: es,
			EndUnixNs:   ee,
			Attrs:       attrs,
			Events:      b.gcs[i].viols,
		}
		d.Violations += len(b.gcs[i].viols)
		d.GCPauseNs += ev.TotalNs
		if ev.TotalNs > d.MaxPauseNs {
			d.MaxPauseNs = ev.TotalNs
		}
		d.ServicePauseNs += evSvc[i]
		gcSpans = append(gcSpans, gc)
		// Phase sub-spans carry the pause's internal decomposition.
		for _, ph := range ev.Phases {
			gcSpans = append(gcSpans, Span{
				TraceID:     d.TraceID,
				SpanID:      b.newSpanID().String(),
				Parent:      id,
				Name:        fmt.Sprintf("gc:%s", ph.Phase),
				StartUnixNs: ph.StartUnixNs,
				EndUnixNs:   ph.StartUnixNs + ph.DurNs,
			})
		}
	}
	d.Violations += len(b.pending)

	d.Spans = make([]Span, 0, 1+len(reqSpans)+len(gcSpans))
	d.Spans = append(d.Spans, root)
	d.Spans = append(d.Spans, reqSpans...)
	d.Spans = append(d.Spans, gcSpans...)
	return d
}
