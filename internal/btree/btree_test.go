package btree

import (
	"math/rand"
	"testing"

	"gcassert"
)

// harness builds a VM, a thread, a rooted tree, and a payload type.
type harness struct {
	vm   *gcassert.Runtime
	th   *gcassert.Thread
	tree *Tree
	val  gcassert.TypeID
}

func newHarness(t *testing.T, heapBytes int) *harness {
	t.Helper()
	if heapBytes == 0 {
		heapBytes = 16 << 20
	}
	vm := gcassert.New(gcassert.Options{HeapBytes: heapBytes, Infrastructure: true})
	val := vm.Define("Val", gcassert.Field{Name: "k", Ref: false})
	th := vm.NewThread("main")
	tr := New(vm, th, nil)
	g := vm.NewGlobal("tree")
	vm.SetGlobal(g, tr.Ref)
	return &harness{vm: vm, th: th, tree: tr, val: val}
}

// newVal allocates a payload object recording its key.
func (h *harness) newVal(k int64) gcassert.Ref {
	v := h.th.New(h.val)
	h.vm.SetScalar(v, 0, uint64(k))
	return v
}

func TestEmptyTree(t *testing.T) {
	h := newHarness(t, 0)
	if h.tree.Len() != 0 {
		t.Error("fresh tree not empty")
	}
	if _, ok := h.tree.Get(42); ok {
		t.Error("Get on empty tree")
	}
	if _, ok := h.tree.Remove(42); ok {
		t.Error("Remove on empty tree")
	}
	n := 0
	h.tree.ForEach(func(int64, gcassert.Ref) bool { n++; return true })
	if n != 0 {
		t.Error("ForEach on empty tree")
	}
}

func TestPutGetSequential(t *testing.T) {
	h := newHarness(t, 0)
	const n = 2000
	for i := int64(0); i < n; i++ {
		if _, replaced := h.tree.Put(i, h.newVal(i)); replaced {
			t.Fatalf("unexpected replace at %d", i)
		}
	}
	if h.tree.Len() != n {
		t.Fatalf("Len = %d", h.tree.Len())
	}
	for i := int64(0); i < n; i++ {
		v, ok := h.tree.Get(i)
		if !ok {
			t.Fatalf("Get(%d) missing", i)
		}
		if got := int64(h.vm.GetScalar(v, 0)); got != i {
			t.Fatalf("Get(%d) = val %d", i, got)
		}
	}
	if _, ok := h.tree.Get(n + 10); ok {
		t.Error("Get of absent key")
	}
}

func TestPutReplace(t *testing.T) {
	h := newHarness(t, 0)
	v1, v2 := h.newVal(1), h.newVal(2)
	h.tree.Put(7, v1)
	prev, replaced := h.tree.Put(7, v2)
	if !replaced || prev != v1 {
		t.Fatalf("replace: prev=%v replaced=%v", prev, replaced)
	}
	if h.tree.Len() != 1 {
		t.Errorf("Len = %d", h.tree.Len())
	}
	got, _ := h.tree.Get(7)
	if got != v2 {
		t.Error("Get after replace")
	}
}

func TestForEachOrdered(t *testing.T) {
	h := newHarness(t, 0)
	keys := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		h.tree.Put(k, h.newVal(k))
	}
	var got []int64
	h.tree.ForEach(func(k int64, v gcassert.Ref) bool {
		got = append(got, k)
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not ascending: %v", got)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("visited %d keys", len(got))
	}
	// Early stop.
	n := 0
	h.tree.ForEach(func(int64, gcassert.Ref) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRemoveSequentialAndReverse(t *testing.T) {
	h := newHarness(t, 0)
	const n = 1200
	for i := int64(0); i < n; i++ {
		h.tree.Put(i, h.newVal(i))
	}
	// Remove even keys ascending, odd keys descending.
	for i := int64(0); i < n; i += 2 {
		v, ok := h.tree.Remove(i)
		if !ok || int64(h.vm.GetScalar(v, 0)) != i {
			t.Fatalf("Remove(%d) = %v, %v", i, v, ok)
		}
	}
	for i := int64(n - 1); i >= 0; i -= 2 {
		if _, ok := h.tree.Remove(i); !ok {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if h.tree.Len() != 0 {
		t.Fatalf("Len = %d after removing all", h.tree.Len())
	}
	if _, ok := h.tree.Remove(0); ok {
		t.Error("double remove")
	}
}

// TestRandomizedAgainstMap drives the tree with a long random op sequence
// and checks every observable against a plain Go map.
func TestRandomizedAgainstMap(t *testing.T) {
	h := newHarness(t, 32<<20)
	rng := rand.New(rand.NewSource(4))
	model := map[int64]int64{} // key -> val key
	const ops = 30000
	const keyspace = 3000
	for op := 0; op < ops; op++ {
		k := int64(rng.Intn(keyspace))
		switch rng.Intn(3) {
		case 0: // put
			_, replaced := h.tree.Put(k, h.newVal(k*1000+int64(op)))
			if _, inModel := model[k]; replaced != inModel {
				t.Fatalf("op %d: Put replaced=%v, model=%v", op, replaced, inModel)
			}
			model[k] = k*1000 + int64(op)
		case 1: // get
			v, ok := h.tree.Get(k)
			mv, inModel := model[k]
			if ok != inModel {
				t.Fatalf("op %d: Get(%d) ok=%v model=%v", op, k, ok, inModel)
			}
			if ok && int64(h.vm.GetScalar(v, 0)) != mv {
				t.Fatalf("op %d: Get(%d) wrong value", op, k)
			}
		case 2: // remove
			v, ok := h.tree.Remove(k)
			mv, inModel := model[k]
			if ok != inModel {
				t.Fatalf("op %d: Remove(%d) ok=%v model=%v", op, k, ok, inModel)
			}
			if ok && int64(h.vm.GetScalar(v, 0)) != mv {
				t.Fatalf("op %d: Remove(%d) wrong value", op, k)
			}
			delete(model, k)
		}
		if h.tree.Len() != len(model) {
			t.Fatalf("op %d: Len=%d model=%d", op, h.tree.Len(), len(model))
		}
	}
	// Final sweep: every model key present, in order.
	prev := int64(-1)
	count := 0
	h.tree.ForEach(func(k int64, v gcassert.Ref) bool {
		if k <= prev {
			t.Fatalf("order violation at %d", k)
		}
		if model[k] != int64(h.vm.GetScalar(v, 0)) {
			t.Fatalf("final value mismatch at %d", k)
		}
		prev = k
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("ForEach visited %d, model has %d", count, len(model))
	}
}

// TestSurvivesGCChurn interleaves tree operations with garbage pressure so
// collections run mid-operation; the tree must stay intact (this exercises
// the scratch-frame rooting of in-flight node allocations).
func TestSurvivesGCChurn(t *testing.T) {
	h := newHarness(t, 2<<20) // small heap: frequent collections
	rng := rand.New(rand.NewSource(9))
	model := map[int64]bool{}
	fr := h.th.Push(1)
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(2000))
		if rng.Intn(2) == 0 {
			h.tree.Put(k, h.newVal(k))
			model[k] = true
		} else {
			_, ok := h.tree.Remove(k)
			if ok != model[k] {
				t.Fatalf("op %d: remove mismatch", op)
			}
			delete(model, k)
		}
		// Garbage pressure.
		fr.Set(0, h.th.NewArray(gcassert.TWordArray, 64))
		fr.Set(0, gcassert.Nil)
	}
	if h.vm.Collector().GCCount() == 0 {
		t.Fatal("no collections during churn; test ineffective")
	}
	for k := range model {
		if v, ok := h.tree.Get(k); !ok || int64(h.vm.GetScalar(v, 0)) != k {
			t.Fatalf("key %d lost after churn", k)
		}
	}
}

// TestStructureInvariants validates the B-tree shape after heavy mixed use:
// key counts per node within bounds, keys ordered, leaves at uniform depth.
func TestStructureInvariants(t *testing.T) {
	h := newHarness(t, 32<<20)
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(5000))
		if rng.Intn(3) != 0 {
			h.tree.Put(k, h.newVal(k))
		} else {
			h.tree.Remove(k)
		}
	}
	vm := h.vm
	root := vm.GetRef(h.tree.Ref, treeRoot)
	leafDepth := -1
	var walk func(n gcassert.Ref, depth int, lo, hi int64)
	walk = func(n gcassert.Ref, depth int, lo, hi int64) {
		cnt := h.tree.nKeys(n)
		if n != root && cnt < minKeys {
			t.Fatalf("underfull node: %d keys", cnt)
		}
		if cnt > maxKeys {
			t.Fatalf("overfull node: %d keys", cnt)
		}
		prev := lo
		for i := 0; i < cnt; i++ {
			k := h.tree.key(n, i)
			if k < prev || k > hi {
				t.Fatalf("key %d out of range [%d,%d]", k, prev, hi)
			}
			prev = k
		}
		if h.tree.isLeaf(n) {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at depths %d and %d", leafDepth, depth)
			}
			return
		}
		for i := 0; i <= cnt; i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = h.tree.key(n, i-1)
			}
			if i < cnt {
				chi = h.tree.key(n, i)
			}
			kid := h.tree.kid(n, i)
			if kid == gcassert.Nil {
				t.Fatal("nil child in internal node")
			}
			walk(kid, depth+1, clo, chi)
		}
	}
	walk(root, 0, -1<<62, 1<<62)
}

func TestScratchFrameValidation(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20})
	th := vm.NewThread("main")
	small := th.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for undersized scratch frame")
		}
	}()
	New(vm, th, small)
}

func TestTypesIdempotent(t *testing.T) {
	vm := gcassert.New(gcassert.Options{HeapBytes: 4 << 20})
	t1, n1 := Types(vm)
	t2, n2 := Types(vm)
	if t1 != t2 || n1 != n2 {
		t.Error("Types not idempotent")
	}
}
