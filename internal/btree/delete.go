package btree

import "gcassert"

// Remove deletes k from the tree, returning the removed value if present.
// It uses the standard preemptive B-tree deletion: while descending, every
// visited child is first brought to at least degree keys by borrowing from a
// sibling or merging, so the deletion itself never needs to back up.
func (t *Tree) Remove(k int64) (gcassert.Ref, bool) {
	root := t.vm.GetRef(t.Ref, treeRoot)
	v, ok := t.remove(root, k)
	// Shrink the tree when the root has emptied out.
	if t.nKeys(root) == 0 && !t.isLeaf(root) {
		t.vm.SetRef(t.Ref, treeRoot, t.kid(root, 0))
	}
	if ok {
		t.vm.SetScalar(t.Ref, treeSize, uint64(t.Len()-1))
	}
	return v, ok
}

func (t *Tree) remove(n gcassert.Ref, k int64) (gcassert.Ref, bool) {
	for {
		i := t.findKey(n, k)
		found := i < t.nKeys(n) && t.key(n, i) == k
		if t.isLeaf(n) {
			if !found {
				return gcassert.Nil, false
			}
			v := t.val(n, i)
			cnt := t.nKeys(n)
			for j := i; j < cnt-1; j++ {
				t.setKey(n, j, t.key(n, j+1))
				t.setVal(n, j, t.val(n, j+1))
			}
			t.setVal(n, cnt-1, gcassert.Nil)
			t.setN(n, cnt-1)
			return v, true
		}
		if found {
			return t.removeInternal(n, i, k), true
		}
		child := t.ensureDegree(n, i)
		n = child
	}
}

// removeInternal removes the key at index i of internal node n.
func (t *Tree) removeInternal(n gcassert.Ref, i int, k int64) gcassert.Ref {
	v := t.val(n, i)
	left, right := t.kid(n, i), t.kid(n, i+1)
	switch {
	case t.nKeys(left) >= degree:
		// Replace with the predecessor, then delete it from the left subtree.
		pk, pv := t.maxPair(left)
		t.setKey(n, i, pk)
		t.setVal(n, i, pv)
		t.remove(t.ensureDegree(n, i), pk)
	case t.nKeys(right) >= degree:
		sk, sv := t.minPair(right)
		t.setKey(n, i, sk)
		t.setVal(n, i, sv)
		t.remove(t.ensureDegree(n, i+1), sk)
	default:
		// Both children minimal: merge them around the key, then delete
		// from the merged node.
		merged := t.merge(n, i)
		t.remove(merged, k)
	}
	return v
}

// maxPair returns the largest pair in the subtree rooted at n.
func (t *Tree) maxPair(n gcassert.Ref) (int64, gcassert.Ref) {
	for !t.isLeaf(n) {
		n = t.kid(n, t.nKeys(n))
	}
	i := t.nKeys(n) - 1
	return t.key(n, i), t.val(n, i)
}

// minPair returns the smallest pair in the subtree rooted at n.
func (t *Tree) minPair(n gcassert.Ref) (int64, gcassert.Ref) {
	for !t.isLeaf(n) {
		n = t.kid(n, 0)
	}
	return t.key(n, 0), t.val(n, 0)
}

// ensureDegree guarantees the i-th child of n has at least degree keys,
// borrowing from a sibling or merging as needed, and returns the child that
// now covers the i-th position.
func (t *Tree) ensureDegree(n gcassert.Ref, i int) gcassert.Ref {
	child := t.kid(n, i)
	if t.nKeys(child) >= degree {
		return child
	}
	if i > 0 && t.nKeys(t.kid(n, i-1)) >= degree {
		t.borrowLeft(n, i)
		return child
	}
	if i < t.nKeys(n) && t.nKeys(t.kid(n, i+1)) >= degree {
		t.borrowRight(n, i)
		return child
	}
	if i < t.nKeys(n) {
		return t.merge(n, i)
	}
	return t.merge(n, i-1)
}

// borrowLeft rotates one pair from the left sibling through the parent into
// child i.
func (t *Tree) borrowLeft(n gcassert.Ref, i int) {
	child, left := t.kid(n, i), t.kid(n, i-1)
	cn, ln := t.nKeys(child), t.nKeys(left)
	for j := cn; j > 0; j-- {
		t.setKey(child, j, t.key(child, j-1))
		t.setVal(child, j, t.val(child, j-1))
	}
	if !t.isLeaf(child) {
		for j := cn + 1; j > 0; j-- {
			t.setKid(child, j, t.kid(child, j-1))
		}
		t.setKid(child, 0, t.kid(left, ln))
		t.setKid(left, ln, gcassert.Nil)
	}
	t.setKey(child, 0, t.key(n, i-1))
	t.setVal(child, 0, t.val(n, i-1))
	t.setKey(n, i-1, t.key(left, ln-1))
	t.setVal(n, i-1, t.val(left, ln-1))
	t.setVal(left, ln-1, gcassert.Nil)
	t.setN(child, cn+1)
	t.setN(left, ln-1)
}

// borrowRight rotates one pair from the right sibling through the parent
// into child i.
func (t *Tree) borrowRight(n gcassert.Ref, i int) {
	child, right := t.kid(n, i), t.kid(n, i+1)
	cn, rn := t.nKeys(child), t.nKeys(right)
	t.setKey(child, cn, t.key(n, i))
	t.setVal(child, cn, t.val(n, i))
	if !t.isLeaf(child) {
		t.setKid(child, cn+1, t.kid(right, 0))
	}
	t.setKey(n, i, t.key(right, 0))
	t.setVal(n, i, t.val(right, 0))
	for j := 0; j < rn-1; j++ {
		t.setKey(right, j, t.key(right, j+1))
		t.setVal(right, j, t.val(right, j+1))
	}
	t.setVal(right, rn-1, gcassert.Nil)
	if !t.isLeaf(right) {
		for j := 0; j < rn; j++ {
			t.setKid(right, j, t.kid(right, j+1))
		}
		t.setKid(right, rn, gcassert.Nil)
	}
	t.setN(child, cn+1)
	t.setN(right, rn-1)
}

// merge folds the key at i and the (i+1)-th child into the i-th child,
// returning the merged node. Both children must hold degree-1 keys.
func (t *Tree) merge(n gcassert.Ref, i int) gcassert.Ref {
	child, right := t.kid(n, i), t.kid(n, i+1)
	cn, rn := t.nKeys(child), t.nKeys(right)
	t.setKey(child, cn, t.key(n, i))
	t.setVal(child, cn, t.val(n, i))
	for j := 0; j < rn; j++ {
		t.setKey(child, cn+1+j, t.key(right, j))
		t.setVal(child, cn+1+j, t.val(right, j))
	}
	if !t.isLeaf(child) {
		for j := 0; j <= rn; j++ {
			t.setKid(child, cn+1+j, t.kid(right, j))
		}
	}
	t.setN(child, cn+1+rn)
	// Remove key i and child i+1 from the parent.
	pn := t.nKeys(n)
	for j := i; j < pn-1; j++ {
		t.setKey(n, j, t.key(n, j+1))
		t.setVal(n, j, t.val(n, j+1))
	}
	t.setVal(n, pn-1, gcassert.Nil)
	for j := i + 1; j < pn; j++ {
		t.setKid(n, j, t.kid(n, j+1))
	}
	t.setKid(n, pn, gcassert.Nil)
	t.setN(n, pn-1)
	return child
}
