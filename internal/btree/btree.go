// Package btree implements longBTree: a B-tree with int64 keys and managed
// references as values, stored entirely on the managed heap. It stands in
// for the spec/jbb/infra/Collections/longBTree that SPECjbb2000 uses for its
// orderTable — the data structure through which the paper's Figure 1 leak
// path runs (Company → Warehouse → District → longBTree → longBTreeNode →
// Order).
//
// All nodes are managed objects, so the collector traces them like any other
// program data and assertion violations report paths through the tree.
package btree

import (
	"gcassert"
)

// Minimum degree of the tree: nodes hold between Degree-1 and 2*Degree-1
// keys (except the root, which may hold fewer).
const (
	degree  = 8
	maxKeys = 2*degree - 1
	maxKids = 2 * degree
	minKeys = degree - 1
)

// ScratchSlots is the number of frame slots a Tree needs for rooting
// in-flight allocations. Several trees on the same thread may share one
// scratch frame, since operations never overlap.
const ScratchSlots = 4

// Type names registered for the tree's managed objects.
const (
	TreeTypeName = "spec/jbb/infra/Collections/longBTree"
	NodeTypeName = "spec/jbb/infra/Collections/longBTreeNode"
)

// Field slots of the tree object.
const (
	treeRoot = iota // ref: root node
	treeSize        // scalar: number of stored pairs
)

// Field slots of a node object.
const (
	nodeKeys = iota // ref: TWordArray of maxKeys keys
	nodeVals        // ref: TRefArray of maxKeys values
	nodeKids        // ref: TRefArray of maxKids children (nil array for leaves)
	nodeN           // scalar: number of keys in use
	nodeLeaf        // scalar: 1 for leaves
)

// Types registers (or looks up) the tree's managed types in the runtime's
// registry and returns (tree, node) type IDs.
func Types(vm *gcassert.Runtime) (gcassert.TypeID, gcassert.TypeID) {
	reg := vm.Registry()
	tt, ok := reg.Lookup(TreeTypeName)
	if !ok {
		tt = vm.Define(TreeTypeName,
			gcassert.Field{Name: "root", Ref: true},
			gcassert.Field{Name: "size", Ref: false},
		)
	}
	nt, ok := reg.Lookup(NodeTypeName)
	if !ok {
		nt = vm.Define(NodeTypeName,
			gcassert.Field{Name: "keys", Ref: true},
			gcassert.Field{Name: "vals", Ref: true},
			gcassert.Field{Name: "children", Ref: true},
			gcassert.Field{Name: "n", Ref: false},
			gcassert.Field{Name: "leaf", Ref: false},
		)
	}
	return tt, nt
}

// Tree is a handle to a managed longBTree. The caller must keep Ref rooted
// (in a frame slot or global); the handle itself holds no GC-visible state.
type Tree struct {
	vm       *gcassert.Runtime
	th       *gcassert.Thread
	nodeType gcassert.TypeID
	// Ref is the managed tree object.
	Ref gcassert.Ref
	// scratch roots in-flight allocations (e.g. split siblings) so a
	// collection triggered mid-operation cannot reclaim them.
	scratch *gcassert.Frame
}

// New allocates a managed longBTree. The returned handle's Ref must be kept
// rooted by the caller. scratch is a frame with at least ScratchSlots slots
// used to root in-flight allocations; pass nil to have the tree push its own
// frame on th (which then stays pushed for the life of the thread — callers
// creating many trees should share one scratch frame instead).
func New(vm *gcassert.Runtime, th *gcassert.Thread, scratch *gcassert.Frame) *Tree {
	tt, nt := Types(vm)
	if scratch == nil {
		scratch = th.Push(ScratchSlots)
	} else if scratch.Len() < ScratchSlots {
		panic("btree: scratch frame too small")
	}
	t := &Tree{vm: vm, th: th, nodeType: nt, scratch: scratch}
	// Root the tree object in the scratch frame while building the root.
	tree := th.New(tt)
	t.scratch.Set(0, tree)
	root := t.newNode(true)
	vm.SetRef(tree, treeRoot, root)
	t.scratch.Set(0, gcassert.Nil)
	t.Ref = tree
	return t
}

// newNode allocates a node and its arrays, keeping everything rooted in the
// scratch frame during the intermediate allocations.
func (t *Tree) newNode(leaf bool) gcassert.Ref {
	vm, th := t.vm, t.th
	n := th.New(t.nodeType)
	t.scratch.Set(1, n)
	vm.SetRef(n, nodeKeys, th.NewArray(gcassert.TWordArray, maxKeys))
	vm.SetRef(n, nodeVals, th.NewArray(gcassert.TRefArray, maxKeys))
	if !leaf {
		vm.SetRef(n, nodeKids, th.NewArray(gcassert.TRefArray, maxKids))
	}
	if leaf {
		vm.SetScalar(n, nodeLeaf, 1)
	}
	t.scratch.Set(1, gcassert.Nil)
	return n
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.vm.GetScalar(t.Ref, treeSize)) }

// --- node accessors -------------------------------------------------------

func (t *Tree) nKeys(n gcassert.Ref) int   { return int(t.vm.GetScalar(n, nodeN)) }
func (t *Tree) setN(n gcassert.Ref, v int) { t.vm.SetScalar(n, nodeN, uint64(v)) }
func (t *Tree) isLeaf(n gcassert.Ref) bool { return t.vm.GetScalar(n, nodeLeaf) == 1 }

func (t *Tree) key(n gcassert.Ref, i int) int64 {
	return int64(t.vm.WordAt(t.vm.GetRef(n, nodeKeys), i))
}
func (t *Tree) setKey(n gcassert.Ref, i int, k int64) {
	t.vm.SetWordAt(t.vm.GetRef(n, nodeKeys), i, uint64(k))
}
func (t *Tree) val(n gcassert.Ref, i int) gcassert.Ref {
	return t.vm.RefAt(t.vm.GetRef(n, nodeVals), i)
}
func (t *Tree) setVal(n gcassert.Ref, i int, v gcassert.Ref) {
	t.vm.SetRefAt(t.vm.GetRef(n, nodeVals), i, v)
}
func (t *Tree) kid(n gcassert.Ref, i int) gcassert.Ref {
	return t.vm.RefAt(t.vm.GetRef(n, nodeKids), i)
}
func (t *Tree) setKid(n gcassert.Ref, i int, v gcassert.Ref) {
	t.vm.SetRefAt(t.vm.GetRef(n, nodeKids), i, v)
}

// findKey returns the first index i in n with key(i) >= k.
func (t *Tree) findKey(n gcassert.Ref, k int64) int {
	lo, hi := 0, t.nKeys(n)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.key(n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *Tree) Get(k int64) (gcassert.Ref, bool) {
	n := t.vm.GetRef(t.Ref, treeRoot)
	for {
		i := t.findKey(n, k)
		if i < t.nKeys(n) && t.key(n, i) == k {
			return t.val(n, i), true
		}
		if t.isLeaf(n) {
			return gcassert.Nil, false
		}
		n = t.kid(n, i)
	}
}

// Put stores v under k, replacing any existing value. It returns the
// previous value, if any.
func (t *Tree) Put(k int64, v gcassert.Ref) (gcassert.Ref, bool) {
	// Root the value across possible allocations in splits.
	t.scratch.Set(2, v)
	defer t.scratch.Set(2, gcassert.Nil)

	root := t.vm.GetRef(t.Ref, treeRoot)
	if t.nKeys(root) == maxKeys {
		// Grow the tree: new root with the old root as child 0, then split.
		newRoot := t.newNode(false)
		t.setKid(newRoot, 0, root)
		t.vm.SetRef(t.Ref, treeRoot, newRoot)
		t.splitChild(newRoot, 0)
		root = newRoot
	}
	prev, replaced := t.insertNonFull(root, k, v)
	if !replaced {
		t.vm.SetScalar(t.Ref, treeSize, uint64(t.Len()+1))
	}
	return prev, replaced
}

// splitChild splits the full i-th child of parent (which must be non-full).
func (t *Tree) splitChild(parent gcassert.Ref, i int) {
	child := t.kid(parent, i)
	sib := t.newNode(t.isLeaf(child))
	// sib is only reachable via scratch until linked below; newNode rooted
	// it during its own allocations, but the link into parent happens before
	// any further allocation, so holding it in a Go local here is safe.
	// Move the upper degree-1 keys (and kids) of child into sib.
	for j := 0; j < minKeys; j++ {
		t.setKey(sib, j, t.key(child, j+degree))
		t.setVal(sib, j, t.val(child, j+degree))
		t.setVal(child, j+degree, gcassert.Nil)
	}
	if !t.isLeaf(child) {
		for j := 0; j < degree; j++ {
			t.setKid(sib, j, t.kid(child, j+degree))
			t.setKid(child, j+degree, gcassert.Nil)
		}
	}
	t.setN(sib, minKeys)
	// The median key[degree-1] moves up into the parent.
	mk, mv := t.key(child, degree-1), t.val(child, degree-1)
	t.setVal(child, degree-1, gcassert.Nil)
	t.setN(child, minKeys)
	// Shift parent's keys/kids right to make room at i.
	pn := t.nKeys(parent)
	for j := pn; j > i; j-- {
		t.setKey(parent, j, t.key(parent, j-1))
		t.setVal(parent, j, t.val(parent, j-1))
	}
	for j := pn + 1; j > i+1; j-- {
		t.setKid(parent, j, t.kid(parent, j-1))
	}
	t.setKey(parent, i, mk)
	t.setVal(parent, i, mv)
	t.setKid(parent, i+1, sib)
	t.setN(parent, pn+1)
}

// insertNonFull inserts into a node known to be non-full.
func (t *Tree) insertNonFull(n gcassert.Ref, k int64, v gcassert.Ref) (gcassert.Ref, bool) {
	for {
		i := t.findKey(n, k)
		if i < t.nKeys(n) && t.key(n, i) == k {
			prev := t.val(n, i)
			t.setVal(n, i, v)
			return prev, true
		}
		if t.isLeaf(n) {
			for j := t.nKeys(n); j > i; j-- {
				t.setKey(n, j, t.key(n, j-1))
				t.setVal(n, j, t.val(n, j-1))
			}
			t.setKey(n, i, k)
			t.setVal(n, i, v)
			t.setN(n, t.nKeys(n)+1)
			return gcassert.Nil, false
		}
		child := t.kid(n, i)
		if t.nKeys(child) == maxKeys {
			t.splitChild(n, i)
			// After the split the separator at i may equal or precede k.
			if k > t.key(n, i) {
				i++
			} else if k == t.key(n, i) {
				prev := t.val(n, i)
				t.setVal(n, i, v)
				return prev, true
			}
			child = t.kid(n, i)
		}
		n = child
	}
}

// ForEach visits all pairs in ascending key order, stopping if fn returns
// false.
func (t *Tree) ForEach(fn func(k int64, v gcassert.Ref) bool) {
	t.walk(t.vm.GetRef(t.Ref, treeRoot), fn)
}

func (t *Tree) walk(n gcassert.Ref, fn func(int64, gcassert.Ref) bool) bool {
	cnt := t.nKeys(n)
	leaf := t.isLeaf(n)
	for i := 0; i < cnt; i++ {
		if !leaf && !t.walk(t.kid(n, i), fn) {
			return false
		}
		if !fn(t.key(n, i), t.val(n, i)) {
			return false
		}
	}
	if !leaf {
		return t.walk(t.kid(n, cnt), fn)
	}
	return true
}
