package slo

import (
	"encoding/json"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic window tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns) }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

// testSpec is the scaled-down shape every engine test uses: 60s compliance
// window, fast rule 5s/30s at 10×, slow rule effectively disabled (its
// threshold exceeds the maximum possible burn of 1/budgetFraction).
func testSpec(objs ...Objective) Spec {
	return Spec{
		Window:     Duration(60 * time.Second),
		Objectives: objs,
		Alerting: Alerting{
			FastShort: Duration(5 * time.Second),
			FastLong:  Duration(30 * time.Second),
			FastBurn:  10,
			SlowShort: Duration(30 * time.Second),
			SlowLong:  Duration(60 * time.Second),
			SlowBurn:  5000,
		},
	}
}

// TestAlertSequencePendingFiringClear is the acceptance test: a tenant
// driven through budget exhaustion on a fake clock must produce exactly
// pending → fast-burn firing → hysteresis clear, nothing else.
func TestAlertSequencePendingFiringClear(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(Objective{Kind: KindViolationRate, MaxPerMillion: 10000}), clk.now)
	if err != nil {
		t.Fatal(err)
	}

	var events []AlertEvent
	record := func(requests, violations uint64) {
		events = append(events, tr.RecordRequests(requests, 0, violations)...)
	}

	// 30s of clean traffic fills the long window with good history.
	for i := 0; i < 30; i++ {
		record(100, 0)
		clk.advance(time.Second)
	}
	if len(events) != 0 {
		t.Fatalf("clean traffic raised %d events: %+v", len(events), events)
	}

	// Violations start: the short window spikes over the threshold while the
	// good history still dilutes the long window → pending, then the long
	// window catches up → firing.
	for i := 0; i < 4; i++ {
		record(100, 100)
		clk.advance(time.Second)
	}

	// Cause stops; the short window drains, then the hold must pass.
	for i := 0; i < 15; i++ {
		record(100, 0)
		clk.advance(time.Second)
	}

	want := []struct{ state, prev string }{
		{"pending", "ok"},
		{"firing", "pending"},
		{"ok", "firing"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d transitions, want %d: %+v", len(events), len(want), events)
	}
	for i, w := range want {
		ev := events[i]
		if ev.State != w.state || ev.Prev != w.prev {
			t.Fatalf("transition %d: got %s→%s, want %s→%s", i, ev.Prev, ev.State, w.prev, w.state)
		}
		if ev.Severity != SeverityFast {
			t.Fatalf("transition %d: severity %q, want fast", i, ev.Severity)
		}
		if ev.Kind != KindViolationRate || ev.Objective != KindViolationRate {
			t.Fatalf("transition %d: kind %q objective %q", i, ev.Kind, ev.Objective)
		}
		if i > 0 && ev.UnixNs < events[i-1].UnixNs {
			t.Fatalf("transition %d: time went backwards", i)
		}
	}
	if events[1].BurnShort < events[1].Threshold || events[1].BurnLong < events[1].Threshold {
		t.Fatalf("firing with burns %g/%g below threshold %g",
			events[1].BurnShort, events[1].BurnLong, events[1].Threshold)
	}
	if events[2].BurnShort >= 0.9*events[2].Threshold {
		t.Fatalf("cleared while short burn %g still ≥ clear point", events[2].BurnShort)
	}

	// The hysteresis hold is real: the clear arrived well after the burn
	// first dropped, not on the first quiet record.
	if gap := events[2].UnixNs - events[1].UnixNs; gap < int64(5*time.Second) {
		t.Fatalf("clear only %v after firing — hysteresis hold not applied", time.Duration(gap))
	}

	status, extra := tr.Status()
	if len(extra) != 0 {
		t.Fatalf("status raised unexpected transitions: %+v", extra)
	}
	if status.Objectives[0].BudgetRemainingRatio != 0 {
		t.Fatalf("budget remaining %g after exhaustion, want 0", status.Objectives[0].BudgetRemainingRatio)
	}
	if status.Objectives[0].Met {
		t.Fatal("objective reports met with budget exhausted")
	}
}

// TestHysteresisBlocksFlappingClear: a burn that dips below the clear point
// but returns before the hold expires must keep the alert firing.
func TestHysteresisBlocksFlappingClear(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(Objective{Kind: KindViolationRate, MaxPerMillion: 10000}), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	// All-bad traffic from a cold start: both windows trip at once → firing
	// directly (no good history to dilute the long window).
	evs := tr.RecordRequests(100, 0, 100)
	if len(evs) != 1 || evs[0].State != "firing" || evs[0].Prev != "ok" {
		t.Fatalf("cold all-bad start: got %+v, want ok→firing", evs)
	}
	// Quiet for 3s (inside the 5s hold), then bad again: no clear.
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		if evs := tr.RecordRequests(100, 0, 0); len(evs) != 0 {
			t.Fatalf("cleared inside the hold: %+v", evs)
		}
	}
	clk.advance(time.Second)
	if evs := tr.RecordRequests(100, 0, 100); len(evs) != 0 {
		t.Fatalf("flap raised transitions: %+v", evs)
	}
	if st, _ := tr.Status(); st.Compliant {
		t.Fatal("tracker reports compliant while alert still firing")
	}
}

// TestStatusReadClearsIdleAlert: the firing→ok transition must happen on a
// status read of a quiet tenant, not only on the next record.
func TestStatusReadClearsIdleAlert(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(Objective{Kind: KindViolationRate, MaxPerMillion: 10000}), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if evs := tr.RecordRequests(100, 0, 100); len(evs) != 1 || evs[0].State != "firing" {
		t.Fatalf("want immediate firing, got %+v", evs)
	}
	// Tenant goes idle past the whole compliance window; the hold passes
	// with no records at all.
	clk.advance(70 * time.Second)
	st, evs := tr.Status()
	if len(evs) != 1 || evs[0].State != "ok" || evs[0].Prev != "firing" {
		t.Fatalf("status read: got %+v, want one firing→ok transition", evs)
	}
	if !st.Compliant {
		t.Fatal("tracker not compliant after idle clear")
	}
}

func TestPauseAndCostObjectives(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(
		Objective{Kind: KindPauseP99, MaxMs: 10},
		Objective{Kind: KindAssertCost, MaxPct: 25},
	), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	// 99 fast pauses and one slow one: exactly at the 1% budget, met.
	for i := 0; i < 99; i++ {
		tr.RecordPause(int64(2*time.Millisecond), int64(100*time.Microsecond))
	}
	tr.RecordPause(int64(20*time.Millisecond), int64(time.Millisecond))
	st, _ := tr.Status()
	pp := st.Objectives[0]
	if pp.Kind != KindPauseP99 || pp.WindowTotal != 100 || pp.WindowBad != 1 {
		t.Fatalf("pause objective accounting: %+v", pp)
	}
	if !pp.Met {
		t.Fatal("pause p99 exactly at budget should be met")
	}
	ac := st.Objectives[1]
	if ac.Kind != KindAssertCost || !ac.Met {
		t.Fatalf("assert cost should be met (~5%% of GC time): %+v", ac)
	}
	// One more slow pause exceeds the 1% budget.
	tr.RecordPause(int64(20*time.Millisecond), 0)
	if st, _ := tr.Status(); st.Objectives[0].Met {
		t.Fatal("pause p99 over budget still reports met")
	}
	// Attribution noise: assertNs above pauseNs must clamp, not panic or
	// overflow the bad count past total.
	tr.RecordPause(int64(time.Millisecond), int64(5*time.Millisecond))
	st, _ = tr.Status()
	if ac := st.Objectives[1]; ac.WindowBad > ac.WindowTotal {
		t.Fatalf("assert cost bad %d > total %d", ac.WindowBad, ac.WindowTotal)
	}
}

func TestAvailabilityObjective(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(Objective{Kind: KindAvailability, TargetPct: 99}), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	tr.RecordRequests(1000, 5, 0)
	st, _ := tr.Status()
	o := st.Objectives[0]
	if !o.Met {
		t.Fatalf("5/1000 failures against 99%% target should be met: %+v", o)
	}
	if got, want := o.BudgetRemainingRatio, 0.5; got != want {
		t.Fatalf("budget remaining %g, want %g (5 of 10 allowed failures spent)", got, want)
	}
	tr.RecordRequests(0, 0, 0) // no-op fast path
	tr.RecordRequests(10, 10, 0)
	if st, _ := tr.Status(); st.Objectives[0].Met {
		t.Fatal("15/1010 failures against 99% target still met")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{}, // no objectives
		{Objectives: []Objective{{Kind: "nope"}}}, // unknown kind
		{Objectives: []Objective{{Kind: KindAvailability, TargetPct: 100}}},
		{Objectives: []Objective{{Kind: KindViolationRate}}},
		{Objectives: []Objective{{Kind: KindPauseP99, MaxMs: -1}}},
		{Objectives: []Objective{{Kind: KindAssertCost, MaxPct: 101}}},
		{Objectives: []Objective{ // duplicate names
			{Kind: KindPauseP99, MaxMs: 1},
			{Kind: KindPauseP99, Name: KindPauseP99, MaxMs: 2},
		}},
		{Objectives: []Objective{{Kind: KindPauseP99, MaxMs: 1}},
			Alerting: Alerting{FastShort: Duration(time.Hour), FastLong: Duration(time.Minute)}},
		{Objectives: []Objective{{Kind: KindPauseP99, MaxMs: 1}},
			Alerting: Alerting{ClearRatio: 1.5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated unexpectedly: %+v", i, s)
		}
	}
	good := Spec{Objectives: []Objective{{Kind: KindViolationRate, MaxPerMillion: 50}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	if _, err := New(good, nil); err != nil {
		t.Fatalf("New with nil clock: %v", err)
	}
}

func TestDurationJSON(t *testing.T) {
	var s Spec
	in := `{"window":"90s","objectives":[{"kind":"pause_p99","max_ms":5}],
	        "alerting":{"fast_short":2000000000,"fast_long":"10s"}}`
	if err := json.Unmarshal([]byte(in), &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.Window) != 90*time.Second {
		t.Fatalf("window %v", time.Duration(s.Window))
	}
	if time.Duration(s.Alerting.FastShort) != 2*time.Second {
		t.Fatalf("fast_short (numeric ns) %v", time.Duration(s.Alerting.FastShort))
	}
	out, err := json.Marshal(s.Window)
	if err != nil || string(out) != `"1m30s"` {
		t.Fatalf("marshal: %s, %v", out, err)
	}
	if err := json.Unmarshal([]byte(`{"window":"fast"}`), &s); err == nil {
		t.Fatal("bad duration string accepted")
	}
}

// TestRecordPathAllocs pins the configured-tracker record path itself: ring
// accounting and evaluation allocate nothing while no transition occurs.
func TestRecordPathAllocs(t *testing.T) {
	clk := &fakeClock{ns: int64(1_700_000_000) * int64(time.Second)}
	tr, err := New(testSpec(
		Objective{Kind: KindViolationRate, MaxPerMillion: 500000},
		Objective{Kind: KindPauseP99, MaxMs: 10},
	), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.RecordRequests(10, 0, 0)
		tr.RecordPause(int64(time.Millisecond), 0)
	})
	if allocs > 0 {
		t.Fatalf("record path allocates %.1f/op with no transitions", allocs)
	}
}
