// Package slo is the per-tenant SLO engine: it turns the telemetry streams
// the runtime already emits — request outcomes, assertion violations, GC
// pauses, per-kind assertion cost — into a judgment: is this tenant inside
// its heap-health budget, and how fast is it burning it?
//
// An SLO spec declares objectives over a sliding compliance window. Every
// objective reduces to the same accounting shape — a (total, bad) event pair
// per time bucket — so one windowed ring per objective answers every
// question the engine asks:
//
//   - availability:     total = requests,   bad = failed requests
//   - violation_rate:   total = requests,   bad = assertion violations
//   - pause_p99:        total = GC pauses,  bad = pauses over the threshold
//   - assert_cost:      total = GC ns,      bad = assertion-attributed ns
//
// The error budget over the compliance window is budgetFraction × total;
// burn rate over any window is (bad/total) / budgetFraction — burn 1.0
// spends the budget exactly at the window's natural rate, burn 14.4 spends a
// 30-day budget in ~2 days (the classic fast-burn page threshold).
//
// Alerting is Google-SRE multi-window multi-burn-rate: a severity fires only
// when both its short and long window burn above the threshold (the long
// window proves the problem is sustained, the short window makes the alert
// reset quickly once the cause stops), with hysteresis on clear — a firing
// alert must stay below clear_ratio × threshold on the short window for
// clear_hold before it resolves, so a flapping burn rate does not flap the
// alert.
//
// The engine is clock-injected and allocation-free on the record path; when
// a tenant has no SLO configured the tracker simply does not exist and the
// record seams are one nil-check each.
package slo

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("5m", "1h30m") so SLO specs read naturally on the wire. It also accepts
// bare JSON numbers (nanoseconds) for programmatic clients.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("slo: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("slo: bad duration %s (want \"5m\"-style string or nanoseconds)", b)
	}
	*d = Duration(ns)
	return nil
}

// Objective kinds.
const (
	// KindAvailability targets a request success ratio: failed requests
	// spend the budget. Threshold: TargetPct (e.g. 99.9).
	KindAvailability = "availability"
	// KindViolationRate bounds assertion violations per million requests.
	// Threshold: MaxPerMillion.
	KindViolationRate = "violation_rate"
	// KindPauseP99 bounds the GC pause p99: at most 1% of pauses in the
	// window may exceed MaxMs milliseconds.
	KindPauseP99 = "pause_p99"
	// KindAssertCost bounds the assertion-attributed fraction of GC time.
	// Threshold: MaxPct (percent of GC nanoseconds).
	KindAssertCost = "assert_cost"
)

// pauseP99BadFraction is the budget fraction implied by a p99 pause
// objective: "p99 ≤ N ms" is "at most 1% of pauses exceed N ms".
const pauseP99BadFraction = 0.01

// Objective is one declared objective. Exactly the threshold field matching
// Kind must be set.
type Objective struct {
	// Kind selects the objective type (the Kind* constants).
	Kind string `json:"kind"`
	// Name labels the objective in status documents, alerts and metric
	// labels; defaults to Kind. Must be unique within a spec.
	Name string `json:"name,omitempty"`
	// TargetPct is the availability target in percent (KindAvailability).
	TargetPct float64 `json:"target_pct,omitempty"`
	// MaxPerMillion is the violation budget per million requests
	// (KindViolationRate).
	MaxPerMillion float64 `json:"max_per_million,omitempty"`
	// MaxMs is the pause threshold in milliseconds (KindPauseP99).
	MaxMs float64 `json:"max_ms,omitempty"`
	// MaxPct is the assertion-cost ceiling as a percent of GC time
	// (KindAssertCost).
	MaxPct float64 `json:"max_pct,omitempty"`
}

// budgetFraction is the allowed bad/total ratio the objective's threshold
// implies. Valid only after Spec.normalize.
func (o *Objective) budgetFraction() float64 {
	switch o.Kind {
	case KindAvailability:
		return (100 - o.TargetPct) / 100
	case KindViolationRate:
		return o.MaxPerMillion / 1e6
	case KindPauseP99:
		return pauseP99BadFraction
	case KindAssertCost:
		return o.MaxPct / 100
	}
	return 0
}

// threshold returns the configured threshold in its natural unit, for
// status documents.
func (o *Objective) threshold() float64 {
	switch o.Kind {
	case KindAvailability:
		return o.TargetPct
	case KindViolationRate:
		return o.MaxPerMillion
	case KindPauseP99:
		return o.MaxMs
	case KindAssertCost:
		return o.MaxPct
	}
	return 0
}

// Severity labels for the two alert rules.
const (
	SeverityFast = "fast"
	SeveritySlow = "slow"
)

// Alerting configures the two burn-rate rules and the clear hysteresis.
// Zero fields take the Google-SRE-shaped defaults (5m/1h at 14.4×,
// 1h/6h at 6×); tests scale every window down.
type Alerting struct {
	FastShort Duration `json:"fast_short,omitempty"`
	FastLong  Duration `json:"fast_long,omitempty"`
	FastBurn  float64  `json:"fast_burn,omitempty"`
	SlowShort Duration `json:"slow_short,omitempty"`
	SlowLong  Duration `json:"slow_long,omitempty"`
	SlowBurn  float64  `json:"slow_burn,omitempty"`
	// ClearHold is how long a firing alert's short-window burn must stay
	// below ClearRatio × threshold before the alert resolves (default:
	// the rule's short window). ClearRatio defaults to 0.9.
	ClearHold  Duration `json:"clear_hold,omitempty"`
	ClearRatio float64  `json:"clear_ratio,omitempty"`
}

// Spec is the wire-format SLO declaration, set at tenant creation or via
// PUT /tenants/{id}/slo.
type Spec struct {
	// Window is the compliance window the error budget is measured over
	// (default 1h).
	Window     Duration    `json:"window,omitempty"`
	Objectives []Objective `json:"objectives"`
	Alerting   Alerting    `json:"alerting,omitempty"`
}

// Default windows and thresholds.
const (
	defaultWindow     = Duration(time.Hour)
	defaultFastShort  = Duration(5 * time.Minute)
	defaultFastLong   = Duration(time.Hour)
	defaultFastBurn   = 14.4
	defaultSlowShort  = Duration(time.Hour)
	defaultSlowLong   = Duration(6 * time.Hour)
	defaultSlowBurn   = 6.0
	defaultClearRatio = 0.9
)

// normalize fills defaults and validates; it returns the normalized copy so
// the original wire document round-trips unchanged in TenantOptions.
func (s Spec) normalize() (Spec, error) {
	if s.Window <= 0 {
		s.Window = defaultWindow
	}
	a := &s.Alerting
	if a.FastShort <= 0 {
		a.FastShort = defaultFastShort
	}
	if a.FastLong <= 0 {
		a.FastLong = defaultFastLong
	}
	if a.FastBurn <= 0 {
		a.FastBurn = defaultFastBurn
	}
	if a.SlowShort <= 0 {
		a.SlowShort = defaultSlowShort
	}
	if a.SlowLong <= 0 {
		a.SlowLong = defaultSlowLong
	}
	if a.SlowBurn <= 0 {
		a.SlowBurn = defaultSlowBurn
	}
	if a.ClearHold <= 0 {
		a.ClearHold = a.FastShort
	}
	if a.ClearRatio <= 0 {
		a.ClearRatio = defaultClearRatio
	}
	if a.ClearRatio > 1 {
		return s, fmt.Errorf("slo: clear_ratio %g > 1 would require the burn to rise to clear", a.ClearRatio)
	}
	if a.FastShort >= a.FastLong {
		return s, fmt.Errorf("slo: fast_short %v must be shorter than fast_long %v",
			time.Duration(a.FastShort), time.Duration(a.FastLong))
	}
	if a.SlowShort >= a.SlowLong {
		return s, fmt.Errorf("slo: slow_short %v must be shorter than slow_long %v",
			time.Duration(a.SlowShort), time.Duration(a.SlowLong))
	}

	if len(s.Objectives) == 0 {
		return s, fmt.Errorf("slo: spec declares no objectives")
	}
	seen := make(map[string]bool, len(s.Objectives))
	objs := append([]Objective(nil), s.Objectives...)
	for i := range objs {
		o := &objs[i]
		if o.Name == "" {
			o.Name = o.Kind
		}
		if seen[o.Name] {
			return s, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		switch o.Kind {
		case KindAvailability:
			if o.TargetPct <= 0 || o.TargetPct >= 100 {
				return s, fmt.Errorf("slo: objective %q: target_pct %g must be in (0, 100)", o.Name, o.TargetPct)
			}
		case KindViolationRate:
			if o.MaxPerMillion <= 0 {
				return s, fmt.Errorf("slo: objective %q: max_per_million must be positive", o.Name)
			}
		case KindPauseP99:
			if o.MaxMs <= 0 {
				return s, fmt.Errorf("slo: objective %q: max_ms must be positive", o.Name)
			}
		case KindAssertCost:
			if o.MaxPct <= 0 || o.MaxPct > 100 {
				return s, fmt.Errorf("slo: objective %q: max_pct %g must be in (0, 100]", o.Name, o.MaxPct)
			}
		default:
			return s, fmt.Errorf("slo: unknown objective kind %q (want %s, %s, %s or %s)",
				o.Kind, KindAvailability, KindViolationRate, KindPauseP99, KindAssertCost)
		}
	}
	s.Objectives = objs
	return s, nil
}

// Validate checks a wire spec without building a tracker (the HTTP layer's
// 400-vs-200 decision).
func (s Spec) Validate() error {
	_, err := s.normalize()
	return err
}

// longestWindow is the widest window any accounting question needs.
func (s *Spec) longestWindow() Duration {
	max := s.Window
	for _, d := range []Duration{s.Alerting.FastLong, s.Alerting.SlowLong} {
		if d > max {
			max = d
		}
	}
	return max
}
