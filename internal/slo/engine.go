package slo

import (
	"math"
	"sync"
	"time"
)

// State is an alert rule's position in its lifecycle.
type State int

const (
	// StateOK: neither window burns above the rule's threshold.
	StateOK State = iota
	// StatePending: the short window burns above the threshold but the long
	// window does not yet — the budget is burning fast but the problem is
	// not yet proven sustained.
	StatePending
	// StateFiring: both windows burn above the threshold.
	StateFiring
)

// String renders the wire spelling.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	}
	return "ok"
}

// AlertEvent is one alert state transition, the unit published on the
// /alerts SSE stream and shipped to the fleet collector.
type AlertEvent struct {
	// Tenant is filled in by the hosting service (the engine does not know
	// its tenant's name).
	Tenant    string `json:"tenant,omitempty"`
	Objective string `json:"objective"`
	Kind      string `json:"kind"`
	Severity  string `json:"severity"` // "fast" or "slow"
	State     string `json:"state"`    // new state
	Prev      string `json:"prev"`     // previous state
	// BurnShort and BurnLong are the rule's window burn rates at transition
	// time; Threshold the rule's burn threshold.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Threshold float64 `json:"threshold"`
	// BudgetRemainingRatio is the objective's error budget left over the
	// compliance window, 0..1.
	BudgetRemainingRatio float64 `json:"budget_remaining_ratio"`
	UnixNs               int64   `json:"unix_ns"`
}

// AlertStatus is one rule's current state in a status document.
type AlertStatus struct {
	Severity    string  `json:"severity"`
	State       string  `json:"state"`
	SinceUnixNs int64   `json:"since_unix_ns,omitempty"`
	BurnShort   float64 `json:"burn_short"`
	BurnLong    float64 `json:"burn_long"`
	Threshold   float64 `json:"threshold"`
}

// ObjectiveStatus is one objective's full accounting in a status document.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Threshold float64 `json:"threshold"` // in the objective's natural unit
	// BudgetFraction is the allowed bad/total ratio the threshold implies.
	BudgetFraction float64 `json:"budget_fraction"`
	// WindowTotal and WindowBad are the raw event counts over the
	// compliance window (requests, pauses, or nanoseconds by kind).
	WindowTotal uint64 `json:"window_total"`
	WindowBad   uint64 `json:"window_bad"`
	// BudgetRemainingRatio is 1 − spent/allowed over the compliance window,
	// clamped to [0, 1]; 1 when the window holds no events yet.
	BudgetRemainingRatio float64 `json:"budget_remaining_ratio"`
	// Met reports whether the objective currently holds over the window.
	Met    bool          `json:"met"`
	Alerts []AlertStatus `json:"alerts"`
}

// Status is the judgment document served on GET /tenants/{id}/slo.
type Status struct {
	ConfiguredUnixNs int64             `json:"configured_unix_ns"`
	Window           Duration          `json:"window"`
	Objectives       []ObjectiveStatus `json:"objectives"`
	// Compliant is true when every objective is met and no rule fires.
	Compliant bool `json:"compliant"`
	// WorstBurn is the highest short-window fast-rule burn across
	// objectives, with the objective that produced it — the fleet rollup's
	// ranking key.
	WorstBurn      float64 `json:"worst_burn"`
	WorstObjective string  `json:"worst_objective,omitempty"`
}

// alertRule is one severity's live state.
type alertRule struct {
	severity  string
	shortNs   int64
	longNs    int64
	threshold float64
	clearHold int64 // ns the short burn must stay low before a clear
	clearAt   float64

	state      State
	sinceNs    int64
	lastHighNs int64 // while firing: last evaluation with short burn ≥ clearAt
	burnShort  float64
	burnLong   float64
}

// objectiveState is one objective's ring plus its two alert rules.
type objectiveState struct {
	o          Objective
	budgetFrac float64
	ring       ring
	rules      [2]alertRule // fast, slow
}

// Tracker is one tenant's live SLO engine. All methods are safe for
// concurrent use; the record path takes one mutex and performs no
// allocations (transitions, which are rare, allocate their events).
type Tracker struct {
	mu         sync.Mutex
	spec       Spec // normalized
	wire       Spec // as configured, for round-tripping
	now        func() time.Time
	configured int64
	objs       []objectiveState
}

// New builds a tracker from a wire spec. clock may be nil (wall clock).
func New(spec Spec, clock func() time.Time) (*Tracker, error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = time.Now
	}
	t := &Tracker{spec: norm, wire: spec, now: clock, configured: clock().UnixNano()}
	span := int64(norm.longestWindow())
	a := norm.Alerting
	for _, o := range norm.Objectives {
		os := objectiveState{o: o, budgetFrac: o.budgetFraction(), ring: newRing(span)}
		os.rules[0] = alertRule{
			severity: SeverityFast, shortNs: int64(a.FastShort), longNs: int64(a.FastLong),
			threshold: a.FastBurn, clearHold: int64(a.ClearHold), clearAt: a.ClearRatio * a.FastBurn,
		}
		os.rules[1] = alertRule{
			severity: SeveritySlow, shortNs: int64(a.SlowShort), longNs: int64(a.SlowLong),
			threshold: a.SlowBurn, clearHold: int64(a.ClearHold), clearAt: a.ClearRatio * a.SlowBurn,
		}
		t.objs = append(t.objs, os)
	}
	return t, nil
}

// Spec returns the spec as originally configured (wire form).
func (t *Tracker) Spec() Spec { return t.wire }

// RecordRequests folds a batch of request outcomes into every
// request-driven objective (availability, violation_rate) and evaluates.
// Returned events are the alert transitions this record caused (usually
// nil).
func (t *Tracker) RecordRequests(requests, failures, violations uint64) []AlertEvent {
	_, evs := t.RecordRequestsMarked(requests, failures, violations)
	return evs
}

// RecordRequestsMarked is RecordRequests plus the at-record-time judgment
// the tracing layer's tail sampler consumes: bad reports whether this batch
// contributed at least one bad unit to a request-driven objective the
// tenant actually declared (a failure against an availability objective, a
// violation against a violation-rate objective). The judgment is made here,
// under the same lock that folds the units in, so a request marked good can
// never later turn out to have spent budget.
func (t *Tracker) RecordRequestsMarked(requests, failures, violations uint64) (bad bool, evs []AlertEvent) {
	if requests == 0 && violations == 0 {
		return false, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nowNs := t.now().UnixNano()
	for i := range t.objs {
		switch t.objs[i].o.Kind {
		case KindAvailability:
			t.objs[i].ring.add(nowNs, requests, failures)
			if failures > 0 {
				bad = true
			}
		case KindViolationRate:
			t.objs[i].ring.add(nowNs, requests, violations)
			if violations > 0 {
				bad = true
			}
		}
	}
	return bad, t.evaluateLocked(nowNs)
}

// RecordPause folds one collection into the pause and cost objectives:
// pauseNs is the stop-the-world time, assertNs the assertion-attributed
// share of it.
func (t *Tracker) RecordPause(pauseNs, assertNs int64) []AlertEvent {
	if pauseNs < 0 {
		return nil
	}
	if assertNs < 0 {
		assertNs = 0
	}
	if assertNs > pauseNs {
		assertNs = pauseNs // attribution noise must not invent negative good time
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nowNs := t.now().UnixNano()
	for i := range t.objs {
		switch t.objs[i].o.Kind {
		case KindPauseP99:
			bad := uint64(0)
			if float64(pauseNs) > t.objs[i].o.MaxMs*1e6 {
				bad = 1
			}
			t.objs[i].ring.add(nowNs, 1, bad)
		case KindAssertCost:
			t.objs[i].ring.add(nowNs, uint64(pauseNs), uint64(assertNs))
		}
	}
	return t.evaluateLocked(nowNs)
}

// burn computes a window's burn rate: the observed bad fraction over the
// allowed fraction. No events in the window burns nothing.
func burn(total, bad uint64, budgetFrac float64) float64 {
	if total == 0 || budgetFrac <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budgetFrac
}

// evaluateLocked re-derives every rule's burn rates and steps the state
// machines, returning the transitions.
func (t *Tracker) evaluateLocked(nowNs int64) []AlertEvent {
	var events []AlertEvent
	for i := range t.objs {
		os := &t.objs[i]
		remaining := t.budgetRemainingLocked(os, nowNs)
		for ri := range os.rules {
			r := &os.rules[ri]
			st, sb := os.ring.sum(nowNs, r.shortNs)
			lt, lb := os.ring.sum(nowNs, r.longNs)
			r.burnShort = burn(st, sb, os.budgetFrac)
			r.burnLong = burn(lt, lb, os.budgetFrac)

			prev := r.state
			switch r.state {
			case StateOK:
				switch {
				case r.burnShort >= r.threshold && r.burnLong >= r.threshold:
					r.state, r.sinceNs, r.lastHighNs = StateFiring, nowNs, nowNs
				case r.burnShort >= r.threshold:
					r.state, r.sinceNs = StatePending, nowNs
				}
			case StatePending:
				switch {
				case r.burnShort >= r.threshold && r.burnLong >= r.threshold:
					r.state, r.sinceNs, r.lastHighNs = StateFiring, nowNs, nowNs
				case r.burnShort < r.threshold:
					r.state, r.sinceNs = StateOK, nowNs
				}
			case StateFiring:
				// Hysteresis: clear only once clearHold has passed since the
				// last evaluation that saw the short-window burn at or above
				// clearAt. Measuring from the last high observation (rather
				// than the first low one) lets a long-idle tenant clear on a
				// single status read — the drained window is the evidence
				// the burn stopped, not the read that noticed it.
				if r.burnShort >= r.clearAt {
					r.lastHighNs = nowNs
				} else if nowNs-r.lastHighNs >= r.clearHold {
					r.state, r.sinceNs = StateOK, nowNs
				}
			}
			if r.state != prev {
				events = append(events, AlertEvent{
					Objective: os.o.Name, Kind: os.o.Kind,
					Severity: r.severity, State: r.state.String(), Prev: prev.String(),
					BurnShort: r.burnShort, BurnLong: r.burnLong, Threshold: r.threshold,
					BudgetRemainingRatio: remaining, UnixNs: nowNs,
				})
			}
		}
	}
	return events
}

// budgetRemainingLocked computes 1 − spent/allowed over the compliance
// window, clamped to [0, 1]. An empty window has a full budget.
func (t *Tracker) budgetRemainingLocked(os *objectiveState, nowNs int64) float64 {
	total, bad := os.ring.sum(nowNs, int64(t.spec.Window))
	if total == 0 {
		return 1
	}
	allowed := os.budgetFrac * float64(total)
	if allowed <= 0 {
		if bad == 0 {
			return 1
		}
		return 0
	}
	rem := 1 - float64(bad)/allowed
	return math.Max(0, math.Min(1, rem))
}

// Status re-evaluates at the current clock and returns the judgment
// document plus any transitions the evaluation caused (a quiet tenant's
// firing alert clears on a status read once the hold has passed, not only
// on the next record).
func (t *Tracker) Status() (Status, []AlertEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	nowNs := t.now().UnixNano()
	events := t.evaluateLocked(nowNs)

	doc := Status{
		ConfiguredUnixNs: t.configured,
		Window:           t.spec.Window,
		Compliant:        true,
	}
	for i := range t.objs {
		os := &t.objs[i]
		total, bad := os.ring.sum(nowNs, int64(t.spec.Window))
		s := ObjectiveStatus{
			Name:                 os.o.Name,
			Kind:                 os.o.Kind,
			Threshold:            os.o.threshold(),
			BudgetFraction:       os.budgetFrac,
			WindowTotal:          total,
			WindowBad:            bad,
			BudgetRemainingRatio: t.budgetRemainingLocked(os, nowNs),
			Met:                  total == 0 || float64(bad) <= os.budgetFrac*float64(total),
		}
		for ri := range os.rules {
			r := &os.rules[ri]
			s.Alerts = append(s.Alerts, AlertStatus{
				Severity: r.severity, State: r.state.String(), SinceUnixNs: r.sinceNs,
				BurnShort: r.burnShort, BurnLong: r.burnLong, Threshold: r.threshold,
			})
			if r.state != StateOK {
				doc.Compliant = false
			}
		}
		if !s.Met {
			doc.Compliant = false
		}
		if fast := os.rules[0].burnShort; fast > doc.WorstBurn {
			doc.WorstBurn, doc.WorstObjective = fast, os.o.Name
		}
		doc.Objectives = append(doc.Objectives, s)
	}
	return doc, events
}
