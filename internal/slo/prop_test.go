package slo_test

import (
	"testing"
	"time"

	"gcassert"
	"gcassert/internal/slo"
	"gcassert/internal/telemetry"
)

// TestBudgetAccountingReconciles is the engine's acceptance property, in
// the same style as the loadlab pause-reconciliation test: drive a real
// runtime, feed the tracker from the same streams the service layer uses
// (request outcomes plus the telemetry OnRecord tap), and every number in
// the status document must reconcile EXACTLY against the raw counts the
// runtime reports — the violation counters, the pause histogram, and the
// per-event assertion-cost nanoseconds. Any drift means the window
// accounting drops or double-counts events.
func TestBudgetAccountingReconciles(t *testing.T) {
	configs := []struct {
		name     string
		heap     int
		requests int
		churn    int
		violEach int // assert-dead violation every N requests
		failEach int // synthetic request failure every N requests
		forced   int // forced collection every N requests (0 = never)
	}{
		{"exhaustion-only", 1 << 20, 400, 256, 13, 37, 0},
		{"forced-and-exhaustion", 1 << 20, 250, 128, 7, 11, 5},
		{"violation-heavy", 1 << 20, 300, 200, 2, 0, 9},
	}
	const maxMs = 0.05 // 50µs: real micro-pauses land on both sides
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			var violations uint64
			vm := gcassert.New(gcassert.Options{
				HeapBytes:       cfg.heap,
				Infrastructure:  true,
				Telemetry:       true,
				CostAttribution: true,
				OnViolation: func(*gcassert.Violation) gcassert.Reaction {
					violations++
					return gcassert.ReactLog
				},
			})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("svc")
			fr := th.Push(2)

			tr, err := slo.New(slo.Spec{
				Window: slo.Duration(time.Hour),
				Objectives: []slo.Objective{
					{Kind: slo.KindAvailability, TargetPct: 99},
					{Kind: slo.KindViolationRate, MaxPerMillion: 1000},
					{Kind: slo.KindPauseP99, MaxMs: maxMs},
					{Kind: slo.KindAssertCost, MaxPct: 50},
				},
			}, nil)
			if err != nil {
				t.Fatal(err)
			}

			// The OnRecord tap is the same seam the service layer uses:
			// every collection feeds the pause and cost objectives.
			var events []*telemetry.Event
			vm.Telemetry().OnRecord(func(ev *telemetry.Event) {
				events = append(events, ev)
				var assertNs int64
				for _, c := range ev.Costs {
					assertNs += c.Ns
				}
				tr.RecordPause(ev.TotalNs, assertNs)
			})

			var requests, failures, lastViol uint64
			for seq := 0; seq < cfg.requests; seq++ {
				fr.Set(0, gcassert.Nil)
				for j := 0; j < cfg.churn; j++ {
					n := th.New(node)
					vm.SetRef(n, 0, fr.Get(0))
					fr.Set(0, n)
				}
				if cfg.violEach > 0 && seq%cfg.violEach == 0 {
					// Keep the asserted-dead object referenced: the next
					// collection finds it live and reports a violation.
					leaked := th.New(node)
					fr.Set(1, leaked)
					vm.AssertDead(leaked)
				}
				fr.Set(0, gcassert.Nil)
				if cfg.forced > 0 && seq%cfg.forced == 0 {
					vm.Collect()
				}
				requests++
				var fail uint64
				if cfg.failEach > 0 && seq%cfg.failEach == 0 {
					fail = 1
					failures++
				}
				tr.RecordRequests(1, fail, violations-lastViol)
				lastViol = violations
			}
			vm.Telemetry().OnRecord(nil)

			hist := vm.Telemetry().PauseHistogram()
			if hist.Count() == 0 || violations == 0 {
				t.Fatalf("run too quiet (%d collections, %d violations); property is vacuous",
					hist.Count(), violations)
			}
			if got := vm.AssertionStats().DeadViolations; got != violations {
				t.Fatalf("decider saw %d violations, engine counted %d", violations, got)
			}

			st, _ := tr.Status()
			byKind := map[string]slo.ObjectiveStatus{}
			for _, o := range st.Objectives {
				byKind[o.Kind] = o
			}

			// Availability: every request accounted, failures exact.
			av := byKind[slo.KindAvailability]
			if av.WindowTotal != requests || av.WindowBad != failures {
				t.Errorf("availability window (%d, %d), want (%d, %d)",
					av.WindowTotal, av.WindowBad, requests, failures)
			}

			// Violation rate: the window's bad count IS the runtime's
			// violation count.
			vr := byKind[slo.KindViolationRate]
			if vr.WindowTotal != requests || vr.WindowBad != violations {
				t.Errorf("violation_rate window (%d, %d), want (%d, %d)",
					vr.WindowTotal, vr.WindowBad, requests, violations)
			}

			// Pause p99: one window event per histogram entry; the bad
			// subset recomputed from the raw event stream.
			var badPauses uint64
			var pauseSumNs, assertSumNs int64
			for _, ev := range events {
				if float64(ev.TotalNs) > maxMs*1e6 {
					badPauses++
				}
				pauseSumNs += ev.TotalNs
				for _, c := range ev.Costs {
					assertSumNs += c.Ns
				}
			}
			pp := byKind[slo.KindPauseP99]
			if pp.WindowTotal != uint64(hist.Count()) || pp.WindowBad != badPauses {
				t.Errorf("pause_p99 window (%d, %d), want (%d, %d)",
					pp.WindowTotal, pp.WindowBad, hist.Count(), badPauses)
			}

			// Assert cost: total is the pause histogram's nanosecond sum,
			// bad the summed per-kind attributed nanoseconds.
			ac := byKind[slo.KindAssertCost]
			if ac.WindowTotal != uint64(pauseSumNs) || ac.WindowTotal != uint64(hist.Sum().Nanoseconds()) {
				t.Errorf("assert_cost total %d, want %d (events) / %d (histogram)",
					ac.WindowTotal, pauseSumNs, hist.Sum().Nanoseconds())
			}
			if ac.WindowBad != uint64(assertSumNs) {
				t.Errorf("assert_cost bad %d, want %d", ac.WindowBad, assertSumNs)
			}
			if assertSumNs == 0 {
				t.Error("no assertion cost attributed; property is vacuous")
			}

			// Budget remaining must be re-derivable from the raw counts.
			for _, o := range st.Objectives {
				allowed := o.BudgetFraction * float64(o.WindowTotal)
				want := 1.0
				if allowed > 0 && o.WindowTotal > 0 {
					want = 1 - float64(o.WindowBad)/allowed
					if want < 0 {
						want = 0
					}
					if want > 1 {
						want = 1
					}
				}
				if o.BudgetRemainingRatio != want {
					t.Errorf("%s: budget remaining %g, want %g from raw counts",
						o.Name, o.BudgetRemainingRatio, want)
				}
			}
		})
	}
}
