package slo

// bucket is one time slice's event accounting: total events observed and
// the bad subset (both in the objective's natural unit — requests, pauses,
// or nanoseconds).
type bucket struct {
	total uint64
	bad   uint64
}

// ringBuckets is the fixed bucket count every ring uses. The bucket
// duration is longestWindow/ringBuckets, so the shortest alert window keeps
// useful resolution as long as it is no finer than ~1/120 of the longest —
// true for both the production defaults (5m against 6h is 1/72) and the
// scaled-down test shapes, which preserve the ratios.
const ringBuckets = 120

// ring is a fixed-size sliding-window accumulator: time is divided into
// aligned buckets of durNs, the ring holds the most recent ringBuckets of
// them, and any window up to the ring's span is answered by summing the
// buckets it overlaps. All storage is allocated at construction; advancing
// and recording never allocate.
type ring struct {
	buckets     [ringBuckets]bucket
	durNs       int64
	head        int   // index of the current bucket
	headStartNs int64 // aligned start time of the current bucket
	started     bool  // false until the first advance
}

// newRing sizes a ring so spanNs fits exactly.
func newRing(spanNs int64) ring {
	dur := spanNs / ringBuckets
	if dur < 1 {
		dur = 1
	}
	return ring{durNs: dur}
}

// advance rotates the ring so the bucket containing nowNs is current,
// zeroing every bucket whose time slice was passed over.
func (r *ring) advance(nowNs int64) {
	aligned := nowNs - nowNs%r.durNs
	if !r.started {
		r.started = true
		r.headStartNs = aligned
		return
	}
	if aligned <= r.headStartNs {
		return // same bucket, or a clock running backwards: don't rewind history
	}
	steps := (aligned - r.headStartNs) / r.durNs
	if steps >= ringBuckets {
		r.buckets = [ringBuckets]bucket{}
		r.head = 0
		r.headStartNs = aligned
		return
	}
	for ; steps > 0; steps-- {
		r.head = (r.head + 1) % ringBuckets
		r.buckets[r.head] = bucket{}
		r.headStartNs += r.durNs
	}
}

// add records total/bad events at nowNs.
func (r *ring) add(nowNs int64, total, bad uint64) {
	r.advance(nowNs)
	r.buckets[r.head].total += total
	r.buckets[r.head].bad += bad
}

// sum returns the (total, bad) accumulated over the last windowNs ending at
// nowNs. A bucket counts when any part of its slice lies inside the window,
// so the effective window rounds up to whole buckets — the documented
// resolution of the engine.
func (r *ring) sum(nowNs, windowNs int64) (total, bad uint64) {
	r.advance(nowNs)
	if !r.started {
		return 0, 0
	}
	cutoff := nowNs - windowNs
	start := r.headStartNs
	for k := 0; k < ringBuckets; k++ {
		if start+r.durNs <= cutoff {
			break
		}
		b := &r.buckets[(r.head-k+ringBuckets)%ringBuckets]
		total += b.total
		bad += b.bad
		start -= r.durNs
	}
	return total, bad
}
