package slo

import "testing"

const sec = int64(1e9)

func TestRingSumWindows(t *testing.T) {
	r := newRing(60 * sec) // 0.5s buckets
	base := int64(1_700_000_000) * sec
	for i := int64(0); i < 30; i++ {
		r.add(base+i*sec, 100, 1)
	}
	now := base + 29*sec
	if total, bad := r.sum(now, 60*sec); total != 3000 || bad != 30 {
		t.Fatalf("full window: got (%d, %d), want (3000, 30)", total, bad)
	}
	// A 5s window rounds up to whole buckets: records at 24..29 inclusive.
	if total, bad := r.sum(now, 5*sec); total != 600 || bad != 6 {
		t.Fatalf("5s window: got (%d, %d), want (600, 6)", total, bad)
	}
}

func TestRingRotationZeroesPassedBuckets(t *testing.T) {
	r := newRing(60 * sec)
	base := int64(1_700_000_000) * sec
	r.add(base, 50, 5)
	// Jump 10s: the old bucket must still be visible in a wide window...
	if total, _ := r.sum(base+10*sec, 60*sec); total != 50 {
		t.Fatalf("after 10s: total %d, want 50", total)
	}
	// ...but not once it slides out of the span entirely.
	if total, bad := r.sum(base+100*sec, 60*sec); total != 0 || bad != 0 {
		t.Fatalf("after 100s: got (%d, %d), want (0, 0)", total, bad)
	}
}

func TestRingLargeJumpResets(t *testing.T) {
	r := newRing(60 * sec)
	base := int64(1_700_000_000) * sec
	for i := int64(0); i < ringBuckets; i++ {
		r.add(base+i*sec/2, 1, 0)
	}
	r.advance(base + 1000*sec) // > full span: everything expires at once
	if total, _ := r.sum(base+1000*sec, 60*sec); total != 0 {
		t.Fatalf("after full-span jump: total %d, want 0", total)
	}
	r.add(base+1000*sec, 7, 2)
	if total, bad := r.sum(base+1000*sec, 60*sec); total != 7 || bad != 2 {
		t.Fatalf("post-reset add: got (%d, %d), want (7, 2)", total, bad)
	}
}

func TestRingBackwardsClockDoesNotRewind(t *testing.T) {
	r := newRing(60 * sec)
	base := int64(1_700_000_000) * sec
	r.add(base+10*sec, 10, 1)
	r.add(base+5*sec, 20, 2) // lands in the current bucket, history intact
	if total, bad := r.sum(base+10*sec, 60*sec); total != 30 || bad != 3 {
		t.Fatalf("got (%d, %d), want (30, 3)", total, bad)
	}
}

func TestRingNearZeroClock(t *testing.T) {
	// A fake clock starting at (or aligned to) time 0 must still count.
	r := newRing(60 * sec)
	r.add(0, 3, 1)
	if total, bad := r.sum(0, 60*sec); total != 3 || bad != 1 {
		t.Fatalf("got (%d, %d), want (3, 1)", total, bad)
	}
}
