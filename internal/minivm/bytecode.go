package minivm

import "fmt"

// Op is a bytecode opcode. The instruction set is a typed stack machine:
// reference-carrying and integer-carrying variants are distinct opcodes so
// the interpreter can maintain its shadow GC roots without dynamic tags.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota
	// Constants.
	OpConstInt // push K
	OpNull     // push null reference
	// Locals. A = local slot.
	OpLoadInt
	OpLoadRef
	OpStoreInt
	OpStoreRef
	// Stack housekeeping.
	OpPopInt
	OpPopRef
	// Fields. A = field slot; object on top of stack (value above it for put).
	OpGetFInt
	OpGetFRef
	OpPutFInt
	OpPutFRef
	// Arrays.
	OpNewArrInt // pop len, push new int array
	OpNewArrRef // pop len, push new ref array
	OpALoadInt  // pop idx, arr; push arr[idx]
	OpALoadRef
	OpAStoreInt // pop val, idx, arr; arr[idx] = val
	OpAStoreRef
	OpLen // pop arr, push length
	// Objects. A = class index.
	OpNewObj
	// Arithmetic and logic (ints).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEqInt
	OpNeInt
	OpLt
	OpLe
	OpGt
	OpGe
	// Reference comparison.
	OpEqRef
	OpNeRef
	// Control flow. A = target pc.
	OpJmp
	OpJz // pop int; jump if zero
	// Calls. A = method ID (receiver and args on stack).
	OpCall
	OpRetVoid
	OpRetInt
	OpRetRef
	// Intrinsics.
	OpPrint           // pop int, print it
	OpGC              // force a collection
	OpAssertDead      // pop ref
	OpAssertUnshared  // pop ref
	OpAssertInstances // A = class index, K = limit
	OpAssertOwnedBy   // pop ownee, owner
	OpRegionStart
	OpRegionAllDead // push int (count asserted)
)

var opNames = [...]string{
	OpNop: "nop", OpConstInt: "const", OpNull: "null",
	OpLoadInt: "load.i", OpLoadRef: "load.r", OpStoreInt: "store.i", OpStoreRef: "store.r",
	OpPopInt: "pop.i", OpPopRef: "pop.r",
	OpGetFInt: "getf.i", OpGetFRef: "getf.r", OpPutFInt: "putf.i", OpPutFRef: "putf.r",
	OpNewArrInt: "newarr.i", OpNewArrRef: "newarr.r",
	OpALoadInt: "aload.i", OpALoadRef: "aload.r", OpAStoreInt: "astore.i", OpAStoreRef: "astore.r",
	OpLen: "len", OpNewObj: "new",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not",
	OpEqInt: "eq.i", OpNeInt: "ne.i", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpEqRef: "eq.r", OpNeRef: "ne.r",
	OpJmp: "jmp", OpJz: "jz", OpCall: "call",
	OpRetVoid: "ret.v", OpRetInt: "ret.i", OpRetRef: "ret.r",
	OpPrint: "print", OpGC: "gc",
	OpAssertDead: "assert.dead", OpAssertUnshared: "assert.unshared",
	OpAssertInstances: "assert.instances", OpAssertOwnedBy: "assert.ownedby",
	OpRegionStart: "region.start", OpRegionAllDead: "region.alldead",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one instruction: an opcode with an int operand A (slot, target,
// class or method index) and a literal operand K.
type Instr struct {
	Op Op
	A  int
	K  int64
}

func (i Instr) String() string {
	switch i.Op {
	case OpConstInt:
		return fmt.Sprintf("%s %d", i.Op, i.K)
	case OpAssertInstances:
		return fmt.Sprintf("%s class=%d limit=%d", i.Op, i.A, i.K)
	case OpLoadInt, OpLoadRef, OpStoreInt, OpStoreRef, OpGetFInt, OpGetFRef,
		OpPutFInt, OpPutFRef, OpJmp, OpJz, OpCall, OpNewObj:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	default:
		return i.Op.String()
	}
}
