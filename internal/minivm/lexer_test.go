package minivm

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(`class Foo { int x; } // comment
/* block
comment */ 42 <= == != && || ! new_x $y`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokClass, TokIdent, TokLBrace, TokIntKw, TokIdent, TokSemi,
		TokRBrace, TokInt, TokLe, TokEq, TokNe, TokAndAnd, TokOrOr, TokBang,
		TokIdent, TokIdent, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[1].Text != "Foo" || toks[7].Val != 42 {
		t.Error("token payloads wrong")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"#", "1abc", "&", "|", "/* unterminated", "999999999999999999999999"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q): expected error", src)
		}
	}
}

func TestLexAllOperators(t *testing.T) {
	toks, err := lexAll("{ } ( ) [ ] ; , . = + - * / % < > this null return")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokLBrace, TokRBrace, TokLParen, TokRParen, TokLBracket,
		TokRBracket, TokSemi, TokComma, TokDot, TokAssign, TokPlus, TokMinus,
		TokStar, TokSlash, TokPercent, TokLt, TokGt, TokThis, TokNull, TokReturn, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
