// Package minivm implements MJ, a miniature Java-like language hosted on
// the gcassert managed runtime: a lexer, recursive-descent parser, type
// checker, bytecode compiler, and stack-machine interpreter whose objects
// live on the managed heap and whose frames are GC roots.
//
// MJ exists to play the role Java plays in the paper: guest programs whose
// data structures the collector traces and whose bugs GC assertions catch.
// The paper's assertion interface is exposed as language intrinsics:
//
//	assertDead(e); assertUnshared(e);
//	assertInstances(ClassName, n); assertOwnedBy(owner, ownee);
//	startRegion(); assertAllDead(); gc(); print(e); length(a);
//
// A program is a set of classes; execution starts at Main.main().
package minivm

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	// Punctuation and operators.
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokDot      // .
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokBang     // !
	// Keywords.
	TokClass
	TokIntKw
	TokVoid
	TokIf
	TokElse
	TokWhile
	TokFor
	TokBreak
	TokContinue
	TokReturn
	TokNew
	TokNull
	TokThis
)

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokInt: "integer",
	TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokDot: ".", TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokEq: "==", TokNe: "!=", TokLt: "<",
	TokLe: "<=", TokGt: ">", TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||",
	TokBang: "!", TokClass: "class", TokIntKw: "int", TokVoid: "void",
	TokIf: "if", TokElse: "else", TokWhile: "while", TokFor: "for",
	TokBreak: "break", TokContinue: "continue", TokReturn: "return",
	TokNew: "new", TokNull: "null", TokThis: "this",
}

func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"class": TokClass, "int": TokIntKw, "void": TokVoid, "if": TokIf,
	"else": TokElse, "while": TokWhile, "for": TokFor, "break": TokBreak,
	"continue": TokContinue, "return": TokReturn, "new": TokNew,
	"null": TokNull, "this": TokThis,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	// Text is the identifier spelling (TokIdent only).
	Text string
	// Val is the literal value (TokInt only).
	Val int64
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("ident %q", t.Text)
	case TokInt:
		return fmt.Sprintf("int %d", t.Val)
	default:
		return t.Kind.String()
	}
}

// Error is a compile-time error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
