package minivm

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"gcassert"
)

// leakSrc plants an assert-dead violation: main caches the node it asserts
// dead, so the collector finds it reachable.
const leakSrc = `
class Node { Node next; }
class Main {
  Node cache;
  void main() {
    Node n = new Node();
    cache = n;
    assertDead(n);
    gc();
  }
}`

func TestGuestViolationNamesAllocationSite(t *testing.T) {
	res, err := CompileAndRun(leakSrc, RunOptions{HeapBytes: 8 << 20, Provenance: true})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	vs := res.Violations.Violations()
	if len(vs) == 0 {
		t.Fatal("expected an assert-dead violation")
	}
	v := vs[0]
	if v.Site == "" {
		t.Fatal("violation carries no allocation site with Provenance on")
	}
	// The site names the allocating method, the source line of the `new`,
	// and the class.
	if !strings.Contains(v.Site, "Main.main") || !strings.Contains(v.Site, "new Node") {
		t.Errorf("site = %q, want it to mention Main.main and new Node", v.Site)
	}
	if !strings.Contains(v.String(), "Allocated at: "+v.Site) {
		t.Errorf("report does not show the site:\n%s", v.String())
	}
}

func TestGuestViolationSiteOffByDefault(t *testing.T) {
	res, err := CompileAndRun(leakSrc, RunOptions{HeapBytes: 8 << 20})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	vs := res.Violations.Violations()
	if len(vs) == 0 {
		t.Fatal("expected an assert-dead violation")
	}
	if vs[0].Site != "" {
		t.Errorf("provenance off, yet violation has site %q", vs[0].Site)
	}
}

// nopCloser adapts a buffer into the dump sink's WriteCloser.
type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// TestGuestForensicBundle is the end-to-end acceptance path: a guest
// program violates assert-dead under provenance + flight recorder; the
// violation-triggered dump — taken while the world is still stopped, so the
// offending objects are in the heap profile — must hold the violation
// (naming the allocation site) and a heap profile that parses as pprof with
// the guest's sites in it.
func TestGuestForensicBundle(t *testing.T) {
	src := `
class Node { Node next; }
class Main {
  Node cache;
  void main() {
    gc();
    Node keep = new Node();
    int i = 0;
    while (i < 50) {
      Node n = new Node();
      n.next = keep;
      keep = n;
      i = i + 1;
    }
    cache = keep;
    assertDead(keep);
    gc();
  }
}`
	unit, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep := &gcassert.CollectingReporter{}
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 8 << 20, Infrastructure: true, Reporter: rep,
		Provenance: "exhaustive", FlightRecorder: true,
	})
	var dump bytes.Buffer
	vm.Flight().SetDumpSink(func() (io.WriteCloser, error) {
		return nopCloser{&dump}, nil
	})
	im, err := Load(vm, unit, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := im.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Len() == 0 {
		t.Fatal("expected an assert-dead violation")
	}
	if dump.Len() == 0 {
		t.Fatal("violation did not trigger a dump")
	}

	b, err := gcassert.ReadFlightBundle(&dump)
	if err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Trigger != "violation" {
		t.Errorf("bundle trigger = %q, want violation", b.Trigger)
	}
	if len(b.Cycles) == 0 {
		t.Error("bundle has no recorded cycles")
	}
	if len(b.Violations) == 0 {
		t.Fatal("bundle has no violation records")
	}
	vr := b.Violations[0]
	if vr.Kind != "assert-dead" || vr.TypeName != "Node" {
		t.Errorf("violation record = %+v", vr)
	}
	if !strings.Contains(vr.Site, "new Node") {
		t.Errorf("violation record's site = %q, want an allocation site", vr.Site)
	}
	if len(vr.Path) == 0 {
		t.Errorf("violation record lost its path")
	}

	prof, err := gcassert.ParseHeapProfile(b.HeapProfile)
	if err != nil {
		t.Fatalf("bundle heap profile does not parse as pprof: %v", err)
	}
	if len(prof.SampleTypes) != 2 || prof.SampleTypes[1].Unit != "bytes" {
		t.Errorf("profile sample types = %+v", prof.SampleTypes)
	}
	// The guest's Node allocation site must appear with its live population
	// (keep-chain of 51 nodes; both `new Node()` lines are distinct sites).
	var nodeObjs int64
	for _, s := range prof.Samples {
		if s.Labels["type"] == "Node" && strings.Contains(s.Sites[0], "new Node") {
			nodeObjs += s.Values[0]
		}
	}
	if nodeObjs != 51 {
		t.Errorf("profile shows %d sited Node objects, want 51", nodeObjs)
	}
}

// TestGuestCensusBySite: with introspection and provenance on, the census
// snapshot breaks the guest heap down by allocation site.
func TestGuestCensusBySite(t *testing.T) {
	src := `
class Node { Node next; }
class Main {
  Node head;
  void main() {
    int i = 0;
    while (i < 10) {
      Node n = new Node();
      n.next = head;
      head = n;
      i = i + 1;
    }
    gc();
  }
}`
	unit, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 8 << 20, Infrastructure: true,
		Provenance: "exhaustive", Introspection: true,
	})
	im, err := Load(vm, unit, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := im.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, ok := vm.Census().Latest()
	if !ok {
		t.Fatal("no census snapshot")
	}
	var found bool
	for _, row := range snap.Sites {
		if row.TypeName == "Node" && strings.Contains(row.Site, "new Node") && row.Objects == 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("census site rows miss the Node site: %+v", snap.Sites)
	}
}
