package minivm

import "fmt"

// Compile parses, type-checks and compiles MJ source into a Unit.
func Compile(src string) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{unit: &Unit{classByName: map[string]*ClassInfo{}}}
	if err := c.collect(prog); err != nil {
		return nil, err
	}
	for _, ci := range c.unit.Classes {
		for _, m := range ci.Methods {
			if err := c.compileMethod(m); err != nil {
				return nil, err
			}
		}
	}
	main, ok := c.unit.Class("Main")
	if !ok {
		return nil, errf(Pos{1, 1}, "no class Main")
	}
	mm, ok := main.Methods["main"]
	if !ok {
		return nil, errf(main.Decl.Pos, "class Main has no method main")
	}
	if len(mm.Params) != 0 || mm.Ret.Kind != KVoid {
		return nil, errf(mm.Decl.Pos, "Main.main must be 'void main()'")
	}
	c.unit.Main = mm
	return c.unit, nil
}

type compiler struct {
	unit *Unit
}

// collect builds the class and method tables and resolves all signatures.
func (c *compiler) collect(prog *Program) *Error {
	for _, cd := range prog.Classes {
		if _, dup := c.unit.classByName[cd.Name]; dup {
			return errf(cd.Pos, "duplicate class %s", cd.Name)
		}
		if cd.Name == "int" || cd.Name == "void" {
			return errf(cd.Pos, "invalid class name %q", cd.Name)
		}
		ci := &ClassInfo{
			Name: cd.Name, Decl: cd, Index: len(c.unit.Classes),
			Methods:      map[string]*MethodInfo{},
			fieldsByName: map[string]*FieldInfo{},
		}
		c.unit.Classes = append(c.unit.Classes, ci)
		c.unit.classByName[cd.Name] = ci
	}
	for _, ci := range c.unit.Classes {
		for _, fd := range ci.Decl.Fields {
			if _, dup := ci.fieldsByName[fd.Name]; dup {
				return errf(fd.Pos, "duplicate field %s.%s", ci.Name, fd.Name)
			}
			ft, err := c.resolveType(fd.Type)
			if err != nil {
				return err
			}
			fi := &FieldInfo{Name: fd.Name, Type: ft, Slot: len(ci.Fields)}
			ci.Fields = append(ci.Fields, fi)
			ci.fieldsByName[fd.Name] = fi
		}
		for _, md := range ci.Decl.Methods {
			if _, dup := ci.Methods[md.Name]; dup {
				return errf(md.Pos, "duplicate method %s.%s (no overloading)", ci.Name, md.Name)
			}
			mi := &MethodInfo{Class: ci, Name: md.Name, Decl: md, ID: len(c.unit.Methods)}
			if md.Ret.Void {
				mi.Ret = typeVoid
			} else {
				rt, err := c.resolveType(md.Ret)
				if err != nil {
					return err
				}
				mi.Ret = rt
			}
			for _, p := range md.Params {
				pt, err := c.resolveType(p.Type)
				if err != nil {
					return err
				}
				mi.Params = append(mi.Params, pt)
			}
			ci.Methods[md.Name] = mi
			c.unit.Methods = append(c.unit.Methods, mi)
		}
	}
	return nil
}

// resolveType converts a syntactic type to a semantic one.
func (c *compiler) resolveType(t TypeExpr) (*Type, *Error) {
	var base *Type
	if t.Name == "int" {
		base = typeInt
	} else {
		ci, ok := c.unit.classByName[t.Name]
		if !ok {
			return nil, errf(t.Pos, "unknown type %s", t.Name)
		}
		base = &Type{Kind: KClass, Class: ci}
	}
	for i := 0; i < t.Dims; i++ {
		base = &Type{Kind: KArray, Elem: base}
	}
	return base, nil
}

// loopCtx tracks the pending break/continue jumps of one enclosing loop.
type loopCtx struct {
	breaks    []int
	continues []int
}

// mcompiler compiles one method body.
type mcompiler struct {
	c *compiler
	m *MethodInfo

	scopes     []map[string]int
	localTypes []*Type
	loops      []*loopCtx

	depth, maxDepth int
}

func (c *compiler) compileMethod(m *MethodInfo) *Error {
	mc := &mcompiler{c: c, m: m}
	mc.pushScope()
	// Local 0 is this; params follow.
	mc.declare(m.Decl.Pos, "this", &Type{Kind: KClass, Class: m.Class})
	for i, p := range m.Decl.Params {
		if _, err := mc.declareChecked(p.Pos, p.Name, m.Params[i]); err != nil {
			return err
		}
	}
	if err := mc.block(m.Decl.Body); err != nil {
		return err
	}
	mc.popScope()
	// Implicit return: void methods fall off the end; non-void methods
	// default-return zero/null (MJ semantics; simpler than flow analysis).
	end := m.Decl.Body.Pos
	switch {
	case m.Ret.Kind == KVoid:
		mc.emit(end, Instr{Op: OpRetVoid}, 0, 0)
	case m.Ret.IsRef():
		mc.emit(end, Instr{Op: OpNull}, 0, 1)
		mc.emit(end, Instr{Op: OpRetRef}, 1, 0)
	default:
		mc.emit(end, Instr{Op: OpConstInt, K: 0}, 0, 1)
		mc.emit(end, Instr{Op: OpRetInt}, 1, 0)
	}
	m.NumLocals = len(mc.localTypes)
	m.MaxStack = mc.maxDepth
	m.RefSlot = make([]bool, m.NumLocals)
	for i, t := range mc.localTypes {
		m.RefSlot[i] = t.IsRef()
	}
	return nil
}

// emit appends an instruction, tracking stack depth (pops then pushes).
func (mc *mcompiler) emit(pos Pos, i Instr, pops, pushes int) int {
	mc.m.Code = append(mc.m.Code, i)
	mc.m.Pos = append(mc.m.Pos, pos)
	mc.depth += pushes - pops
	if mc.depth > mc.maxDepth {
		mc.maxDepth = mc.depth
	}
	if mc.depth < 0 {
		panic(fmt.Sprintf("minivm: compiler stack underflow at %s in %s", pos, mc.m.Sig()))
	}
	return len(mc.m.Code) - 1
}

// patch sets the jump target of instruction idx to the current pc.
func (mc *mcompiler) patch(idx int) { mc.m.Code[idx].A = len(mc.m.Code) }

func (mc *mcompiler) pushScope() { mc.scopes = append(mc.scopes, map[string]int{}) }
func (mc *mcompiler) popScope()  { mc.scopes = mc.scopes[:len(mc.scopes)-1] }

func (mc *mcompiler) pushLoop() *loopCtx {
	ctx := &loopCtx{}
	mc.loops = append(mc.loops, ctx)
	return ctx
}
func (mc *mcompiler) popLoop() { mc.loops = mc.loops[:len(mc.loops)-1] }
func (mc *mcompiler) curLoop() *loopCtx {
	if len(mc.loops) == 0 {
		return nil
	}
	return mc.loops[len(mc.loops)-1]
}

func (mc *mcompiler) declare(pos Pos, name string, t *Type) int {
	slot := len(mc.localTypes)
	mc.localTypes = append(mc.localTypes, t)
	mc.scopes[len(mc.scopes)-1][name] = slot
	return slot
}

func (mc *mcompiler) declareChecked(pos Pos, name string, t *Type) (int, *Error) {
	if _, dup := mc.scopes[len(mc.scopes)-1][name]; dup {
		return 0, errf(pos, "duplicate variable %s", name)
	}
	return mc.declare(pos, name, t), nil
}

// lookup resolves a name to a local slot, innermost scope first.
func (mc *mcompiler) lookup(name string) (int, bool) {
	for i := len(mc.scopes) - 1; i >= 0; i-- {
		if slot, ok := mc.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Statements

func (mc *mcompiler) block(b *BlockStmt) *Error {
	mc.pushScope()
	defer mc.popScope()
	for _, s := range b.Stmts {
		if err := mc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (mc *mcompiler) stmt(s Stmt) *Error {
	switch s := s.(type) {
	case *BlockStmt:
		return mc.block(s)
	case *VarDeclStmt:
		t, err := mc.c.resolveType(s.Type)
		if err != nil {
			return err
		}
		slot, err := mc.declareChecked(s.Pos, s.Name, t)
		if err != nil {
			return err
		}
		if s.Init != nil {
			it, err := mc.expr(s.Init)
			if err != nil {
				return err
			}
			if !assignable(t, it) {
				return errf(s.Pos, "cannot initialize %s %s with %s", t, s.Name, it)
			}
			mc.emitStore(s.Pos, slot, t)
		}
		return nil
	case *AssignStmt:
		return mc.assign(s)
	case *IfStmt:
		ct, err := mc.expr(s.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KInt {
			return errf(s.Pos, "if condition must be int, got %s", ct)
		}
		jz := mc.emit(s.Pos, Instr{Op: OpJz}, 1, 0)
		if err := mc.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			jmp := mc.emit(s.Pos, Instr{Op: OpJmp}, 0, 0)
			mc.patch(jz)
			if err := mc.stmt(s.Else); err != nil {
				return err
			}
			mc.patch(jmp)
		} else {
			mc.patch(jz)
		}
		return nil
	case *WhileStmt:
		top := len(mc.m.Code)
		ct, err := mc.expr(s.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KInt {
			return errf(s.Pos, "while condition must be int, got %s", ct)
		}
		jz := mc.emit(s.Pos, Instr{Op: OpJz}, 1, 0)
		ctx := mc.pushLoop()
		if err := mc.stmt(s.Body); err != nil {
			return err
		}
		mc.popLoop()
		// continue re-tests the condition; break exits past the loop.
		for _, c := range ctx.continues {
			mc.m.Code[c].A = top
		}
		mc.emit(s.Pos, Instr{Op: OpJmp, A: top}, 0, 0)
		mc.patch(jz)
		for _, b := range ctx.breaks {
			mc.patch(b)
		}
		return nil
	case *ForStmt:
		mc.pushScope()
		if s.Init != nil {
			if err := mc.stmt(s.Init); err != nil {
				mc.popScope()
				return err
			}
		}
		top := len(mc.m.Code)
		jz := -1
		if s.Cond != nil {
			ct, err := mc.expr(s.Cond)
			if err != nil {
				mc.popScope()
				return err
			}
			if ct.Kind != KInt {
				mc.popScope()
				return errf(s.Pos, "for condition must be int, got %s", ct)
			}
			jz = mc.emit(s.Pos, Instr{Op: OpJz}, 1, 0)
		}
		ctx := mc.pushLoop()
		if err := mc.stmt(s.Body); err != nil {
			mc.popLoop()
			mc.popScope()
			return err
		}
		mc.popLoop()
		// continue lands on the post clause.
		for _, c := range ctx.continues {
			mc.patch(c)
		}
		if s.Post != nil {
			if err := mc.stmt(s.Post); err != nil {
				mc.popScope()
				return err
			}
		}
		mc.emit(s.Pos, Instr{Op: OpJmp, A: top}, 0, 0)
		if jz >= 0 {
			mc.patch(jz)
		}
		for _, b := range ctx.breaks {
			mc.patch(b)
		}
		mc.popScope()
		return nil
	case *BreakStmt:
		ctx := mc.curLoop()
		if ctx == nil {
			return errf(s.Pos, "break outside a loop")
		}
		ctx.breaks = append(ctx.breaks, mc.emit(s.Pos, Instr{Op: OpJmp}, 0, 0))
		return nil
	case *ContinueStmt:
		ctx := mc.curLoop()
		if ctx == nil {
			return errf(s.Pos, "continue outside a loop")
		}
		ctx.continues = append(ctx.continues, mc.emit(s.Pos, Instr{Op: OpJmp}, 0, 0))
		return nil
	case *ReturnStmt:
		if s.Value == nil {
			if mc.m.Ret.Kind != KVoid {
				return errf(s.Pos, "method %s must return %s", mc.m.Sig(), mc.m.Ret)
			}
			mc.emit(s.Pos, Instr{Op: OpRetVoid}, 0, 0)
			return nil
		}
		if mc.m.Ret.Kind == KVoid {
			return errf(s.Pos, "void method %s cannot return a value", mc.m.Sig())
		}
		vt, err := mc.expr(s.Value)
		if err != nil {
			return err
		}
		if !assignable(mc.m.Ret, vt) {
			return errf(s.Pos, "cannot return %s from %s", vt, mc.m.Sig())
		}
		if mc.m.Ret.IsRef() {
			mc.emit(s.Pos, Instr{Op: OpRetRef}, 1, 0)
		} else {
			mc.emit(s.Pos, Instr{Op: OpRetInt}, 1, 0)
		}
		return nil
	case *ExprStmt:
		t, err := mc.expr(s.X)
		if err != nil {
			return err
		}
		switch {
		case t.Kind == KVoid:
		case t.IsRef():
			mc.emit(s.Pos, Instr{Op: OpPopRef}, 1, 0)
		default:
			mc.emit(s.Pos, Instr{Op: OpPopInt}, 1, 0)
		}
		return nil
	default:
		return errf(Pos{}, "internal: unknown statement %T", s)
	}
}

// emitStore stores the top of stack to a local slot of the given type.
func (mc *mcompiler) emitStore(pos Pos, slot int, t *Type) {
	if t.IsRef() {
		mc.emit(pos, Instr{Op: OpStoreRef, A: slot}, 1, 0)
	} else {
		mc.emit(pos, Instr{Op: OpStoreInt, A: slot}, 1, 0)
	}
}

func (mc *mcompiler) assign(s *AssignStmt) *Error {
	switch target := s.Target.(type) {
	case *IdentExpr:
		if slot, ok := mc.lookup(target.Name); ok {
			t := mc.localTypes[slot]
			vt, err := mc.expr(s.Value)
			if err != nil {
				return err
			}
			if !assignable(t, vt) {
				return errf(s.Pos, "cannot assign %s to %s %s", vt, t, target.Name)
			}
			mc.emitStore(s.Pos, slot, t)
			return nil
		}
		// Implicit this-field.
		fi, ok := mc.m.Class.Field(target.Name)
		if !ok {
			return errf(target.Pos, "undefined: %s", target.Name)
		}
		mc.emit(s.Pos, Instr{Op: OpLoadRef, A: 0}, 0, 1) // this
		return mc.emitPutField(s.Pos, fi, s.Value)
	case *FieldExpr:
		xt, err := mc.expr(target.X)
		if err != nil {
			return err
		}
		if xt.Kind != KClass {
			return errf(target.Pos, "field access on non-object %s", xt)
		}
		fi, ok := xt.Class.Field(target.Name)
		if !ok {
			return errf(target.Pos, "%s has no field %s", xt.Class.Name, target.Name)
		}
		return mc.emitPutField(s.Pos, fi, s.Value)
	case *IndexExpr:
		at, err := mc.expr(target.X)
		if err != nil {
			return err
		}
		if at.Kind != KArray {
			return errf(target.Pos, "index into non-array %s", at)
		}
		it, err := mc.expr(target.Index)
		if err != nil {
			return err
		}
		if it.Kind != KInt {
			return errf(target.Pos, "array index must be int, got %s", it)
		}
		vt, err := mc.expr(s.Value)
		if err != nil {
			return err
		}
		if !assignable(at.Elem, vt) {
			return errf(s.Pos, "cannot store %s into %s", vt, at)
		}
		if at.Elem.IsRef() {
			mc.emit(s.Pos, Instr{Op: OpAStoreRef}, 3, 0)
		} else {
			mc.emit(s.Pos, Instr{Op: OpAStoreInt}, 3, 0)
		}
		return nil
	default:
		return errf(s.Pos, "invalid assignment target")
	}
}

// emitPutField compiles value and a putfield, assuming the object reference
// is already on the stack.
func (mc *mcompiler) emitPutField(pos Pos, fi *FieldInfo, value Expr) *Error {
	vt, err := mc.expr(value)
	if err != nil {
		return err
	}
	if !assignable(fi.Type, vt) {
		return errf(pos, "cannot assign %s to field %s (%s)", vt, fi.Name, fi.Type)
	}
	if fi.Type.IsRef() {
		mc.emit(pos, Instr{Op: OpPutFRef, A: fi.Slot}, 2, 0)
	} else {
		mc.emit(pos, Instr{Op: OpPutFInt, A: fi.Slot}, 2, 0)
	}
	return nil
}
