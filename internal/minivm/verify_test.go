package minivm

import (
	"io"
	"strings"
	"testing"

	"gcassert"
)

// compileOK compiles a known-good program for verifier mutation tests.
func compileOK(t *testing.T) *Unit {
	t.Helper()
	unit, err := Compile(`
class Node { Node next; int v; }
class Main {
  int f(Node n, int x) {
    if (n == null) { return x; }
    return f(n.next, x + n.v);
  }
  void main() {
    Node a = new Node();
    a.v = 5;
    print(f(a, 1));
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	return unit
}

func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	unit := compileOK(t)
	if err := Verify(unit); err != nil {
		t.Fatalf("compiler output rejected: %v", err)
	}
	Optimize(unit)
	if err := Verify(unit); err != nil {
		t.Fatalf("optimizer output rejected: %v", err)
	}
}

// TestVerifyAcceptsAllTestPrograms runs the verifier over every compiled
// program in the test suite's corpus.
func TestVerifyAcceptsAllTestPrograms(t *testing.T) {
	for _, src := range []string{bstProgram} {
		unit, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(unit); err != nil {
			t.Errorf("verify: %v", err)
		}
		Optimize(unit)
		if err := Verify(unit); err != nil {
			t.Errorf("verify optimized: %v", err)
		}
	}
}

// mutate applies fn to Main.main's code and expects the verifier to object
// with a message containing want.
func mutate(t *testing.T, want string, fn func(m *MethodInfo)) {
	t.Helper()
	unit := compileOK(t)
	fn(unit.Main)
	err := Verify(unit)
	if err == nil {
		t.Fatalf("corrupted code verified clean (want %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestVerifyRejectsCorruptedCode(t *testing.T) {
	t.Run("underflow", func(t *testing.T) {
		mutate(t, "underflow", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpAdd}
		})
	})
	t.Run("type-confusion-pop", func(t *testing.T) {
		mutate(t, "want ref", func(m *MethodInfo) {
			// const pushes an int; assert.dead pops a ref.
			m.Code[0] = Instr{Op: OpConstInt, K: 1}
			m.Code[1] = Instr{Op: OpAssertDead}
		})
	})
	t.Run("bad-jump-target", func(t *testing.T) {
		mutate(t, "out of range", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpJmp, A: 9999}
		})
	})
	t.Run("bad-local", func(t *testing.T) {
		mutate(t, "local 99 out of range", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpLoadInt, A: 99}
		})
	})
	t.Run("ref-local-as-int", func(t *testing.T) {
		mutate(t, "-ref", func(m *MethodInfo) {
			// Local 0 is `this` (a ref); loading it as int must fail.
			m.Code[0] = Instr{Op: OpLoadInt, A: 0}
		})
	})
	t.Run("bad-class", func(t *testing.T) {
		mutate(t, "class 42 out of range", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpNewObj, A: 42}
		})
	})
	t.Run("bad-method", func(t *testing.T) {
		mutate(t, "method 42 out of range", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpLoadRef, A: 0}
			m.Code[1] = Instr{Op: OpCall, A: 42}
		})
	})
	t.Run("wrong-ret-kind", func(t *testing.T) {
		mutate(t, "ret.i in void-returning method", func(m *MethodInfo) {
			m.Code[0] = Instr{Op: OpConstInt, K: 0}
			m.Code[1] = Instr{Op: OpRetInt}
		})
	})
	t.Run("fall-off-end", func(t *testing.T) {
		mutate(t, "out of range", func(m *MethodInfo) {
			// Replace the final ret with a nop: control falls off the end.
			m.Code[len(m.Code)-1] = Instr{Op: OpNop}
		})
	})
	t.Run("overflow", func(t *testing.T) {
		mutate(t, "overflow", func(m *MethodInfo) {
			m.MaxStack = 1
		})
	})
}

func TestVerifyRejectsInconsistentJoin(t *testing.T) {
	unit := compileOK(t)
	m := unit.Main
	// Hand-craft a join where one path pushes an int and the other a ref,
	// both arriving at the same pc.
	m.Code = []Instr{
		{Op: OpConstInt, K: 1}, // 0: push int
		{Op: OpJz, A: 4},       // 1: branch
		{Op: OpConstInt, K: 7}, // 2: then-path pushes int
		{Op: OpJmp, A: 5},      // 3:
		{Op: OpNull},           // 4: else-path pushes ref
		{Op: OpPopInt},         // 5: join
		{Op: OpRetVoid},        // 6:
	}
	m.Pos = make([]Pos, len(m.Code))
	m.MaxStack = 4
	err := Verify(unit)
	if err == nil || !strings.Contains(err.Error(), "inconsistent stack type") {
		t.Fatalf("err = %v, want inconsistent-join error", err)
	}
}

func TestLoadRejectsUnverifiableCode(t *testing.T) {
	unit := compileOK(t)
	unit.Main.Code[0] = Instr{Op: OpAdd} // corrupt
	vm := gcassert.New(gcassert.Options{HeapBytes: 2 << 20, Infrastructure: true})
	_, lerr := Load(vm, unit, io.Discard)
	if lerr == nil {
		t.Fatal("Load accepted unverifiable code")
	}
	if !strings.Contains(lerr.Error(), "underflow") {
		t.Errorf("err = %v", lerr)
	}
}
