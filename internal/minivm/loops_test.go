package minivm

import (
	"strings"
	"testing"
)

func TestForLoopBasics(t *testing.T) {
	lines, _ := run(t, `
class Main {
  void main() {
    int sum = 0;
    for (int i = 0; i < 10; i = i + 1) { sum = sum + i; }
    print(sum);
    // Header parts are each optional.
    int j = 0;
    for (; j < 3;) { j = j + 1; }
    print(j);
    for (int k = 9; ; k = k - 1) { if (k < 7) { break; } }
    print(1);
  }
}`)
	want := []string{"45", "3", "1"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestForScopesInitVariable(t *testing.T) {
	// i is scoped to the for statement: redeclaration afterwards is legal.
	lines, _ := run(t, `
class Main {
  void main() {
    for (int i = 0; i < 2; i = i + 1) { print(i); }
    int i = 99;
    print(i);
  }
}`)
	want := []string{"0", "1", "99"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestBreakAndContinue(t *testing.T) {
	lines, _ := run(t, `
class Main {
  void main() {
    // continue skips evens; break stops at 7.
    int sum = 0;
    for (int i = 0; i < 100; i = i + 1) {
      if (i % 2 == 0) { continue; }
      if (i > 7) { break; }
      sum = sum + i;       // 1 + 3 + 5 + 7
    }
    print(sum);

    // while with break/continue: continue must re-test the condition.
    int i = 0;
    int n = 0;
    while (i < 10) {
      i = i + 1;
      if (i % 3 != 0) { continue; }
      if (i == 9) { break; }
      n = n + i;           // 3 + 6
    }
    print(n);

    // Nested loops: break/continue bind to the innermost loop.
    int hits = 0;
    for (int a = 0; a < 3; a = a + 1) {
      for (int b = 0; b < 10; b = b + 1) {
        if (b == 2) { break; }
        hits = hits + 1;   // 2 per outer iteration
      }
    }
    print(hits);
  }
}`)
	want := []string{"16", "9", "6"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestForWithObjects(t *testing.T) {
	lines, _ := run(t, `
class Node { Node next; int v; }
class Main {
  void main() {
    Node head = null;
    for (int i = 0; i < 20; i = i + 1) {
      Node n = new Node();
      n.v = i;
      n.next = head;
      head = n;
    }
    int sum = 0;
    for (Node p = head; p != null; p = p.next) { sum = sum + p.v; }
    print(sum);
  }
}`)
	if len(lines) != 1 || lines[0] != "190" {
		t.Errorf("output = %v", lines)
	}
}

func TestLoopCompileErrors(t *testing.T) {
	mustFailCompile(t, `class Main { void main() { break; } }`, "break outside")
	mustFailCompile(t, `class Main { void main() { continue; } }`, "continue outside")
	mustFailCompile(t, `class Main { void main() { if (1) { break; } } }`, "break outside")
	mustFailCompile(t, `class A {} class Main { void main() { for (;new A();) {} } }`, "must be int")
	mustFailCompile(t, `class Main { void main() { for (int i = 0; i < 3) {} } }`, "expected")
}

func TestLoopOptimizeDifferential(t *testing.T) {
	runBoth(t, `
class Main {
  void main() {
    int total = 0;
    for (int i = 0; i < 50; i = i + 1) {
      if (i % (2 + 3) == 0) { continue; }
      if (i > 8 * 5) { break; }
      total = total + i * (1 + 1);
    }
    print(total);
  }
}`)
}
