package minivm

import (
	"strings"
	"testing"
)

// runBoth compiles src twice — plain and optimized — runs both, and
// requires identical output and violation counts.
func runBoth(t *testing.T, src string) (plain, opt string) {
	t.Helper()
	exec := func(optimize bool) (string, int) {
		var out strings.Builder
		res, err := CompileAndRun(src, RunOptions{
			Out: &out, HeapBytes: 4 << 20, Optimize: optimize, MaxSteps: 20_000_000,
		})
		if err != nil {
			t.Fatalf("optimize=%v: %v", optimize, err)
		}
		return out.String(), res.Violations.Len()
	}
	p, pv := exec(false)
	o, ov := exec(true)
	if p != o {
		t.Fatalf("optimized output differs:\nplain: %q\nopt:   %q", p, o)
	}
	if pv != ov {
		t.Fatalf("violation counts differ: %d vs %d", pv, ov)
	}
	return p, o
}

func TestOptimizeConstantFolding(t *testing.T) {
	unit, err := Compile(`class Main { void main() { print(2 + 3 * 4); } }`)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(unit)
	dis := Disassemble(unit.Main)
	if !strings.Contains(dis, "const 14") {
		t.Errorf("expression not folded:\n%s", dis)
	}
	// Only const, print, ret should remain.
	if got := len(unit.Main.Code); got != 3 {
		t.Errorf("code length = %d, want 3:\n%s", got, dis)
	}
}

func TestOptimizeBranchFolding(t *testing.T) {
	unit, err := Compile(`class Main { void main() { if (1 < 2) { print(7); } else { print(8); } } }`)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(unit)
	dis := Disassemble(unit.Main)
	// The comparison folds to const 1 and the jz is resolved away.
	if strings.Contains(dis, "jz") || strings.Contains(dis, "lt") {
		t.Errorf("branch not folded:\n%s", dis)
	}
}

func TestOptimizePreservesDivisionByZero(t *testing.T) {
	src := `class Main { void main() { print(1 / 0); } }`
	for _, optimize := range []bool{false, true} {
		_, err := CompileAndRun(src, RunOptions{HeapBytes: 2 << 20, Optimize: optimize})
		if err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("optimize=%v: err = %v", optimize, err)
		}
	}
}

func TestOptimizeDifferentialPrograms(t *testing.T) {
	programs := map[string]string{
		"arith": `class Main { void main() {
			print(((1 + 2) * (3 + 4)) / (5 % 3));
			print(-(2 * 3) + (10 / 2));
			print(!(1 == 1) + (2 != 3) * 10);
		} }`,
		"loops": `class Main { void main() {
			int i = 0; int sum = 0;
			while (i < 100) { if (i % 3 == 0) { sum = sum + i; } i = i + 1; }
			print(sum);
		} }`,
		"shortcircuit": `class Main {
			int n;
			int f() { n = n + 1; return 1; }
			void main() {
				int a = 1 && 0 || f();
				int b = 0 && f();
				print(a); print(b); print(n);
			} }`,
		"objects": `class P { int x; P next; }
		class Main { void main() {
			P head = null;
			int i = 0;
			while (i < 50) {
				P p = new P();
				p.x = i * (2 + 3);
				p.next = head;
				head = p;
				i = i + 1;
			}
			int sum = 0;
			while (head != null) { sum = sum + head.x; head = head.next; }
			print(sum);
		} }`,
		"asserts": `class N { N next; }
		class Main {
			N keep;
			void main() {
				N a = new N();
				keep = a;
				assertDead(a);  // violates (1 + 1 == 2 folded around it)
				if (1 + 1 == 2) { a = null; }
				gc();
			} }`,
		"constwhile": `class Main { void main() {
			int i = 0;
			while (1 == 1) { i = i + 1; if (i >= 10) { return; } }
		} }`,
	}
	for name, src := range programs {
		name, src := name, src
		t.Run(name, func(t *testing.T) { runBoth(t, src) })
	}
}

func TestOptimizeBST(t *testing.T) {
	// The big guest stress program, both ways.
	runBoth(t, bstProgram)
}

func TestOptimizeShrinksCode(t *testing.T) {
	unit, err := Compile(bstProgram)
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, m := range unit.Methods {
		before += len(m.Code)
	}
	Optimize(unit)
	after := 0
	for _, m := range unit.Methods {
		after += len(m.Code)
	}
	if after > before {
		t.Errorf("optimizer grew code: %d -> %d", before, after)
	}
}

func TestOptimizeJumpThreading(t *testing.T) {
	// Nested ifs with constant conditions produce jmp-to-jmp chains.
	unit, err := Compile(`class Main { void main() {
		int x = 5;
		if (x > 0) { if (x > 1) { if (x > 2) { print(x); } } }
	} }`)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(unit)
	// No jump may target another unconditional jump.
	m := unit.Main
	for _, in := range m.Code {
		if (in.Op == OpJmp || in.Op == OpJz) && in.A < len(m.Code) && m.Code[in.A].Op == OpJmp {
			if m.Code[in.A].A != in.A { // tolerated self-loop
				t.Errorf("unthreaded jump to jump: %v -> %v", in, m.Code[in.A])
			}
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	unit, err := Compile(bstProgram)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(unit)
	snapshot := DisassembleUnit(unit)
	Optimize(unit)
	if DisassembleUnit(unit) != snapshot {
		t.Error("second Optimize changed code")
	}
}
