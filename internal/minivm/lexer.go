package minivm

// lexer tokenizes MJ source text. Line comments (//...) and block comments
// (/*...*/) are skipped.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// peek returns the current byte, or 0 at EOF.
func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

// skipTrivia consumes whitespace and comments; it returns an error for an
// unterminated block comment.
func (l *lexer) skipTrivia() *Error {
	for {
		for isSpace(l.peek()) {
			l.advance()
		}
		if l.peek() == '/' && l.peek2() == '/' {
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if l.peek() == '/' && l.peek2() == '*' {
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.peek() == 0 {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
			continue
		}
		return nil
	}
}

// next scans one token.
func (l *lexer) next() (Token, *Error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	c := l.peek()
	if c == 0 {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	switch {
	case isDigit(c):
		var v int64
		for isDigit(l.peek()) {
			v = v*10 + int64(l.advance()-'0')
			if v < 0 {
				return Token{}, errf(pos, "integer literal overflow")
			}
		}
		if isAlpha(l.peek()) {
			return Token{}, errf(pos, "malformed number")
		}
		return Token{Kind: TokInt, Pos: pos, Val: v}, nil
	case isAlpha(c):
		start := l.off
		for isAlpha(l.peek()) || isDigit(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil
	}
	l.advance()
	two := func(second byte, yes, no TokKind) Token {
		if l.peek() == second {
			l.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '&' (did you mean '&&'?)")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|' (did you mean '||'?)")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(src string) ([]Token, *Error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
