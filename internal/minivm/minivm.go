package minivm

import (
	"fmt"
	"io"
	"strings"

	"gcassert"
)

// RunOptions configures CompileAndRun.
type RunOptions struct {
	// HeapBytes sizes the managed heap (default 16 MiB).
	HeapBytes int
	// Out receives print() output (default: discarded).
	Out io.Writer
	// Reporter receives assertion violations; nil installs a collecting
	// reporter returned in the Result.
	Reporter gcassert.Reporter
	// Generational selects the generational collector mode.
	Generational bool
	// MaxSteps bounds guest execution (0 = unlimited).
	MaxSteps uint64
	// Optimize runs the peephole bytecode optimizer before execution.
	Optimize bool
	// FinalCollect forces a collection after main returns, so assertions
	// placed near the end of the program are still checked (on by default
	// in CompileAndRun).
	FinalCollect bool
	// Workers selects the mark-phase worker count (0 or 1 = sequential
	// marker; n > 1 = work-stealing parallel mark engine).
	Workers int
	// Provenance enables exhaustive allocation-site provenance: every `new`
	// the guest executes is recorded against its method and source line, so
	// violations report who allocated the offending object and the census
	// breaks down by site.
	Provenance bool
	// FlightRecorder enables the GC flight recorder (see
	// gcassert.Options.FlightRecorder); dump a bundle from the Result's VM
	// with WriteFlightBundle.
	FlightRecorder bool
}

// Result is the outcome of CompileAndRun.
type Result struct {
	// VM is the runtime the program executed on.
	VM *gcassert.Runtime
	// Image is the loaded program.
	Image *Image
	// Violations collects every assertion violation (when no custom
	// reporter was supplied).
	Violations *gcassert.CollectingReporter
}

// CompileAndRun compiles src, loads it on a fresh infrastructure-mode
// runtime, runs Main.main(), forces a final collection, and returns the
// runtime state for inspection. Compile-time and guest runtime errors are
// returned as errors.
func CompileAndRun(src string, opt RunOptions) (*Result, error) {
	unit, err := Compile(src)
	if err != nil {
		return nil, err
	}
	if opt.Optimize {
		Optimize(unit)
	}
	if opt.HeapBytes == 0 {
		opt.HeapBytes = 16 << 20
	}
	res := &Result{Violations: &gcassert.CollectingReporter{}}
	rep := opt.Reporter
	if rep == nil {
		rep = res.Violations
	}
	prov := ""
	if opt.Provenance {
		prov = "exhaustive"
	}
	res.VM = gcassert.New(gcassert.Options{
		HeapBytes:      opt.HeapBytes,
		Infrastructure: true,
		Reporter:       rep,
		Generational:   opt.Generational,
		Workers:        opt.Workers,
		Provenance:     prov,
		FlightRecorder: opt.FlightRecorder,
	})
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	im, lerr := Load(res.VM, unit, out)
	if lerr != nil {
		return nil, lerr
	}
	im.MaxSteps = opt.MaxSteps
	res.Image = im
	if err := im.Run(); err != nil {
		return res, err
	}
	res.VM.Collect()
	return res, nil
}

// Disassemble renders a compiled method's bytecode for tools and tests.
func Disassemble(m *MethodInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (locals=%d, stack=%d)\n", m.Sig(), m.NumLocals, m.MaxStack)
	for pc, in := range m.Code {
		fmt.Fprintf(&b, "%4d  %s\n", pc, in)
	}
	return b.String()
}

// DisassembleUnit renders every method of a unit.
func DisassembleUnit(u *Unit) string {
	var b strings.Builder
	for _, m := range u.Methods {
		b.WriteString(Disassemble(m))
		b.WriteString("\n")
	}
	return b.String()
}
