package minivm

import "fmt"

// Bytecode verifier: an abstract interpreter over the type-tagged operand
// stack, in the spirit of the JVM's class-file verifier. It proves, before
// execution, that compiled (and optimized) code
//
//   - never underflows or overflows its declared MaxStack,
//   - only applies ref ops to refs and int ops to ints,
//   - loads/stores locals within range and with the declared ref-ness,
//   - jumps only to valid targets, with consistent stack shapes at joins,
//   - returns with the method's declared kind.
//
// The interpreter's shadow-root bookkeeping relies on exactly these
// properties, so Load verifies every method before running guest code;
// the optimizer's output is additionally verified in tests.

// vkind is the abstract type of one stack slot.
type vkind uint8

const (
	vInt vkind = iota
	vRef
)

func (v vkind) String() string {
	if v == vRef {
		return "ref"
	}
	return "int"
}

// VerifyError reports a verification failure.
type VerifyError struct {
	Method string
	PC     int
	Msg    string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("minivm: verify %s at pc %d: %s", e.Method, e.PC, e.Msg)
}

// Verify checks every method of the unit.
func Verify(u *Unit) error {
	for _, m := range u.Methods {
		if err := verifyMethod(u, m); err != nil {
			return err
		}
	}
	return nil
}

// stackEffect describes an opcode's pops (typed) and pushes (typed).
// Opcodes with operand-dependent effects are handled specially.
var simpleEffects = map[Op]struct {
	pops   []vkind // top of stack last
	pushes []vkind
}{
	OpNop:             {nil, nil},
	OpConstInt:        {nil, []vkind{vInt}},
	OpNull:            {nil, []vkind{vRef}},
	OpPopInt:          {[]vkind{vInt}, nil},
	OpPopRef:          {[]vkind{vRef}, nil},
	OpGetFInt:         {[]vkind{vRef}, []vkind{vInt}},
	OpGetFRef:         {[]vkind{vRef}, []vkind{vRef}},
	OpPutFInt:         {[]vkind{vRef, vInt}, nil},
	OpPutFRef:         {[]vkind{vRef, vRef}, nil},
	OpNewArrInt:       {[]vkind{vInt}, []vkind{vRef}},
	OpNewArrRef:       {[]vkind{vInt}, []vkind{vRef}},
	OpALoadInt:        {[]vkind{vRef, vInt}, []vkind{vInt}},
	OpALoadRef:        {[]vkind{vRef, vInt}, []vkind{vRef}},
	OpAStoreInt:       {[]vkind{vRef, vInt, vInt}, nil},
	OpAStoreRef:       {[]vkind{vRef, vInt, vRef}, nil},
	OpLen:             {[]vkind{vRef}, []vkind{vInt}},
	OpAdd:             {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpSub:             {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpMul:             {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpDiv:             {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpMod:             {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpNeg:             {[]vkind{vInt}, []vkind{vInt}},
	OpNot:             {[]vkind{vInt}, []vkind{vInt}},
	OpEqInt:           {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpNeInt:           {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpLt:              {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpLe:              {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpGt:              {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpGe:              {[]vkind{vInt, vInt}, []vkind{vInt}},
	OpEqRef:           {[]vkind{vRef, vRef}, []vkind{vInt}},
	OpNeRef:           {[]vkind{vRef, vRef}, []vkind{vInt}},
	OpPrint:           {[]vkind{vInt}, nil},
	OpGC:              {nil, nil},
	OpAssertDead:      {[]vkind{vRef}, nil},
	OpAssertUnshared:  {[]vkind{vRef}, nil},
	OpAssertOwnedBy:   {[]vkind{vRef, vRef}, nil},
	OpAssertInstances: {nil, nil},
	OpRegionStart:     {nil, nil},
	OpRegionAllDead:   {nil, []vkind{vInt}},
}

func verifyMethod(u *Unit, m *MethodInfo) error {
	fail := func(pc int, format string, args ...interface{}) error {
		return &VerifyError{Method: m.Sig(), PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	if len(m.Code) == 0 {
		return fail(0, "empty code")
	}
	if len(m.RefSlot) != m.NumLocals {
		return fail(0, "RefSlot table size %d != NumLocals %d", len(m.RefSlot), m.NumLocals)
	}

	// states[pc] is the stack shape on entry to pc; nil = not yet reached.
	states := make([][]vkind, len(m.Code))
	states[0] = []vkind{}
	work := []int{0}

	// transfer returns the successor state(s) of executing code[pc] on in.
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := states[pc]
		instr := m.Code[pc]

		pop := func(st []vkind, want vkind) ([]vkind, error) {
			if len(st) == 0 {
				return nil, fail(pc, "%s: stack underflow", instr.Op)
			}
			got := st[len(st)-1]
			if got != want {
				return nil, fail(pc, "%s: want %s on stack, have %s", instr.Op, want, got)
			}
			return st[:len(st)-1], nil
		}
		push := func(st []vkind, k vkind) ([]vkind, error) {
			if len(st)+1 > m.MaxStack {
				return nil, fail(pc, "%s: stack overflow (max %d)", instr.Op, m.MaxStack)
			}
			return append(st, k), nil
		}
		// flow merges the out state into the successor's entry state.
		flow := func(next int, out []vkind) error {
			if next < 0 || next >= len(m.Code) {
				return fail(pc, "%s: target %d out of range", instr.Op, next)
			}
			if states[next] == nil {
				states[next] = append([]vkind{}, out...)
				work = append(work, next)
				return nil
			}
			have := states[next]
			if len(have) != len(out) {
				return fail(pc, "inconsistent stack depth at join %d: %d vs %d", next, len(have), len(out))
			}
			for i := range have {
				if have[i] != out[i] {
					return fail(pc, "inconsistent stack type at join %d slot %d: %s vs %s",
						next, i, have[i], out[i])
				}
			}
			return nil
		}

		st := append([]vkind{}, in...)
		var err error
		switch instr.Op {
		case OpLoadInt, OpLoadRef, OpStoreInt, OpStoreRef:
			if instr.A < 0 || instr.A >= m.NumLocals {
				return fail(pc, "%s: local %d out of range (%d locals)", instr.Op, instr.A, m.NumLocals)
			}
			wantRef := instr.Op == OpLoadRef || instr.Op == OpStoreRef
			if m.RefSlot[instr.A] != wantRef {
				return fail(pc, "%s: local %d is %v-ref", instr.Op, instr.A, m.RefSlot[instr.A])
			}
			switch instr.Op {
			case OpLoadInt:
				st, err = push(st, vInt)
			case OpLoadRef:
				st, err = push(st, vRef)
			case OpStoreInt:
				st, err = pop(st, vInt)
			case OpStoreRef:
				st, err = pop(st, vRef)
			}
			if err != nil {
				return err
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		case OpNewObj:
			if instr.A < 0 || instr.A >= len(u.Classes) {
				return fail(pc, "new: class %d out of range", instr.A)
			}
			if st, err = push(st, vRef); err != nil {
				return err
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		case OpAssertInstances:
			if instr.A < 0 || instr.A >= len(u.Classes) {
				return fail(pc, "assert.instances: class %d out of range", instr.A)
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		case OpJmp:
			if err := flow(instr.A, st); err != nil {
				return err
			}
		case OpJz:
			if st, err = pop(st, vInt); err != nil {
				return err
			}
			if err := flow(instr.A, st); err != nil {
				return err
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		case OpCall:
			if instr.A < 0 || instr.A >= len(u.Methods) {
				return fail(pc, "call: method %d out of range", instr.A)
			}
			callee := u.Methods[instr.A]
			for i := len(callee.Params) - 1; i >= 0; i-- {
				want := vInt
				if callee.Params[i].IsRef() {
					want = vRef
				}
				if st, err = pop(st, want); err != nil {
					return err
				}
			}
			if st, err = pop(st, vRef); err != nil { // receiver
				return err
			}
			switch {
			case callee.Ret.Kind == KVoid:
			case callee.Ret.IsRef():
				if st, err = push(st, vRef); err != nil {
					return err
				}
			default:
				if st, err = push(st, vInt); err != nil {
					return err
				}
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		case OpRetVoid:
			if m.Ret.Kind != KVoid {
				return fail(pc, "ret.v in %s-returning method", m.Ret)
			}
		case OpRetInt:
			if m.Ret.Kind == KVoid || m.Ret.IsRef() {
				return fail(pc, "ret.i in %s-returning method", m.Ret)
			}
			if _, err = pop(st, vInt); err != nil {
				return err
			}
		case OpRetRef:
			if !m.Ret.IsRef() {
				return fail(pc, "ret.r in %s-returning method", m.Ret)
			}
			if _, err = pop(st, vRef); err != nil {
				return err
			}
		default:
			eff, ok := simpleEffects[instr.Op]
			if !ok {
				return fail(pc, "unknown opcode %d", uint8(instr.Op))
			}
			for i := len(eff.pops) - 1; i >= 0; i-- {
				if st, err = pop(st, eff.pops[i]); err != nil {
					return err
				}
			}
			for _, k := range eff.pushes {
				if st, err = push(st, k); err != nil {
					return err
				}
			}
			if err := flow(pc+1, st); err != nil {
				return err
			}
		}
	}
	return nil
}
