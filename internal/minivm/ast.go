package minivm

// AST node definitions for MJ.

// TypeExpr is a syntactic type: "int", a class name, or an array of either.
type TypeExpr struct {
	Pos Pos
	// Name is "int" or a class name; empty for void.
	Name string
	// Dims is the number of array dimensions.
	Dims int
	// Void marks the absence of a type (method returns only).
	Void bool
}

func (t TypeExpr) String() string {
	if t.Void {
		return "void"
	}
	s := t.Name
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// Program is a parsed compilation unit.
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl is one class.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

// FieldDecl is one field.
type FieldDecl struct {
	Pos  Pos
	Type TypeExpr
	Name string
}

// Param is one method parameter.
type Param struct {
	Pos  Pos
	Type TypeExpr
	Name string
}

// MethodDecl is one method.
type MethodDecl struct {
	Pos    Pos
	Ret    TypeExpr
	Name   string
	Params []*Param
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is "{ stmts }".
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt is "type name [= init];".
type VarDeclStmt struct {
	Pos  Pos
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

// AssignStmt is "lvalue = value;". Target is an IdentExpr, FieldExpr or
// IndexExpr.
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// IfStmt is "if (cond) then [else els]".
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is "while (cond) body".
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is "for (init; cond; post) body"; each header part may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// BreakStmt is "break;".
type BreakStmt struct{ Pos Pos }

// ContinueStmt is "continue;".
type ContinueStmt struct{ Pos Pos }

// ReturnStmt is "return [expr];".
type ReturnStmt struct {
	Pos   Pos
	Value Expr // may be nil
}

// ExprStmt is "expr;".
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Span returns the expression's source position.
	Span() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// NullLit is "null".
type NullLit struct{ Pos Pos }

// ThisExpr is "this".
type ThisExpr struct{ Pos Pos }

// IdentExpr is a bare identifier (local, parameter, or implicit this-field).
type IdentExpr struct {
	Pos  Pos
	Name string
}

// FieldExpr is "x.name" (when not a call).
type FieldExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

// IndexExpr is "x[i]".
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// CallExpr is "x.name(args)" (X == nil for bare calls: intrinsics or
// this-method calls).
type CallExpr struct {
	Pos  Pos
	X    Expr // receiver; nil for bare calls
	Name string
	Args []Expr
}

// NewExpr is "new C()" or "new T[n]".
type NewExpr struct {
	Pos Pos
	// Type is the element/class type.
	Type TypeExpr
	// Len is non-nil for array creation.
	Len Expr
}

// UnaryExpr is "-x" or "!x".
type UnaryExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// BinaryExpr is "x op y".
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	X, Y Expr
}

func (*IntLit) exprNode()     {}
func (*NullLit) exprNode()    {}
func (*ThisExpr) exprNode()   {}
func (*IdentExpr) exprNode()  {}
func (*FieldExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*NewExpr) exprNode()    {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Span implementations.
func (e *IntLit) Span() Pos     { return e.Pos }
func (e *NullLit) Span() Pos    { return e.Pos }
func (e *ThisExpr) Span() Pos   { return e.Pos }
func (e *IdentExpr) Span() Pos  { return e.Pos }
func (e *FieldExpr) Span() Pos  { return e.Pos }
func (e *IndexExpr) Span() Pos  { return e.Pos }
func (e *CallExpr) Span() Pos   { return e.Pos }
func (e *NewExpr) Span() Pos    { return e.Pos }
func (e *UnaryExpr) Span() Pos  { return e.Pos }
func (e *BinaryExpr) Span() Pos { return e.Pos }
