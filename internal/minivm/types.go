package minivm

import (
	"fmt"

	"gcassert"
)

// TypeKind classifies semantic types.
type TypeKind uint8

// Semantic type kinds.
const (
	KInt TypeKind = iota
	KClass
	KArray
	KVoid
	KNull // the type of the null literal: assignable to any reference type
)

// Type is a semantic type.
type Type struct {
	Kind  TypeKind
	Class *ClassInfo // KClass
	Elem  *Type      // KArray
}

// Predefined types.
var (
	typeInt  = &Type{Kind: KInt}
	typeVoid = &Type{Kind: KVoid}
	typeNull = &Type{Kind: KNull}
)

// IsRef reports whether values of the type are heap references.
func (t *Type) IsRef() bool { return t.Kind == KClass || t.Kind == KArray || t.Kind == KNull }

// String renders the type MJ-style.
func (t *Type) String() string {
	switch t.Kind {
	case KInt:
		return "int"
	case KVoid:
		return "void"
	case KNull:
		return "null"
	case KClass:
		return t.Class.Name
	case KArray:
		return t.Elem.String() + "[]"
	default:
		return fmt.Sprintf("Type(%d)", t.Kind)
	}
}

// equal is structural type equality.
func (t *Type) equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KClass:
		return t.Class == o.Class
	case KArray:
		return t.Elem.equal(o.Elem)
	default:
		return true
	}
}

// assignable reports whether a value of type src may be stored where dst is
// expected (null is assignable to any reference type).
func assignable(dst, src *Type) bool {
	if src.Kind == KNull && dst.IsRef() {
		return true
	}
	return dst.equal(src)
}

// FieldInfo is a resolved field.
type FieldInfo struct {
	Name string
	Type *Type
	// Slot is the field's index in the managed object layout.
	Slot int
}

// ClassInfo is a resolved class.
type ClassInfo struct {
	Name    string
	Decl    *ClassDecl
	Fields  []*FieldInfo
	Methods map[string]*MethodInfo

	fieldsByName map[string]*FieldInfo
	// Index is the class's position in the unit's class table.
	Index int
}

// Field resolves a field by name.
func (c *ClassInfo) Field(name string) (*FieldInfo, bool) {
	f, ok := c.fieldsByName[name]
	return f, ok
}

// MethodInfo is a resolved, compiled method.
type MethodInfo struct {
	Class  *ClassInfo
	Name   string
	Params []*Type
	Ret    *Type
	Decl   *MethodDecl
	// ID is the method's position in the unit's method table.
	ID int

	// Compiled form (filled by the compiler).
	Code []Instr
	// Pos maps each instruction to its source position (for diagnostics).
	Pos []Pos
	// NumLocals counts this + params + declared locals.
	NumLocals int
	// MaxStack is the operand-stack high-water mark.
	MaxStack int
	// RefSlot marks which local slots hold references.
	RefSlot []bool
}

// Sig renders the method signature.
func (m *MethodInfo) Sig() string {
	s := m.Class.Name + "." + m.Name + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ") " + m.Ret.String()
}

// Unit is a compiled MJ program, ready to load into a runtime.
type Unit struct {
	Classes []*ClassInfo
	Methods []*MethodInfo
	// Main is Main.main().
	Main *MethodInfo

	classByName map[string]*ClassInfo
}

// Class resolves a class by name.
func (u *Unit) Class(name string) (*ClassInfo, bool) {
	c, ok := u.classByName[name]
	return c, ok
}

// elemHeapType returns the builtin array TypeID for an array of elem.
func elemHeapType(elem *Type) gcassert.TypeID {
	if elem.IsRef() {
		return gcassert.TRefArray
	}
	return gcassert.TWordArray
}
