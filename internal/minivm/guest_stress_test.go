package minivm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// bstProgram is an unbalanced binary search tree in MJ: insert a pseudo-
// random key sequence (xorshift in-guest), then print an in-order
// traversal. It exercises recursion, field mutation, and GC survival of a
// deep guest data structure under allocation pressure.
const bstProgram = `
class Node {
  Node left;
  Node right;
  int key;
}

class BST {
  Node root;
  int size;

  void insert(int k) {
    if (root == null) {
      root = mk(k);
      size = size + 1;
      return;
    }
    Node cur = root;
    while (1) {
      if (k == cur.key) { return; }
      if (k < cur.key) {
        if (cur.left == null) { cur.left = mk(k); size = size + 1; return; }
        cur = cur.left;
      } else {
        if (cur.right == null) { cur.right = mk(k); size = size + 1; return; }
        cur = cur.right;
      }
    }
  }

  Node mk(int k) {
    Node n = new Node();
    n.key = k;
    return n;
  }

  int contains(int k) {
    Node cur = root;
    while (cur != null) {
      if (k == cur.key) { return 1; }
      if (k < cur.key) { cur = cur.left; } else { cur = cur.right; }
    }
    return 0;
  }

  void inorder(Node n) {
    if (n == null) { return; }
    inorder(n.left);
    print(n.key);
    inorder(n.right);
  }
}

class Main {
  int state;
  int next() {
    // xorshift-ish PRNG on 31 bits, kept positive.
    state = state * 1103515245 + 12345;
    int v = state % 65536;
    if (v < 0) { v = -v; }
    return v;
  }
  void main() {
    BST t = new BST();
    state = 42;
    int i = 0;
    while (i < 400) {
      t.insert(next() % 1000);
      // Allocation pressure: transient arrays force collections.
      int[] junk = new int[500];
      junk[0] = i;
      i = i + 1;
    }
    print(t.size);
    t.inorder(t.root);
  }
}
`

// TestGuestBSTMatchesOracle replays the guest PRNG in Go and checks the
// guest's in-order output is exactly the sorted set of inserted keys — a
// cross-language differential test of the compiler, interpreter and GC.
func TestGuestBSTMatchesOracle(t *testing.T) {
	var out strings.Builder
	res, err := CompileAndRun(bstProgram, RunOptions{Out: &out, HeapBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.VM.Collector().GCCount() == 0 {
		t.Fatal("no collections; stress ineffective")
	}

	// Oracle: the same PRNG in Go (int is int64 in MJ).
	set := map[int64]bool{}
	state := int64(42)
	for i := 0; i < 400; i++ {
		state = state*1103515245 + 12345
		v := state % 65536
		if v < 0 {
			v = -v
		}
		set[v%1000] = true
	}
	var want []int64
	for k := range set {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	lines := strings.Fields(out.String())
	if len(lines) != len(want)+1 {
		t.Fatalf("output lines = %d, want %d", len(lines), len(want)+1)
	}
	if lines[0] != fmt.Sprint(len(want)) {
		t.Errorf("size = %s, want %d", lines[0], len(want))
	}
	for i, w := range want {
		if lines[i+1] != fmt.Sprint(w) {
			t.Fatalf("inorder[%d] = %s, want %d", i, lines[i+1], w)
		}
	}
}

// TestGuestQueueRegionDiscipline: a guest work queue drains completely per
// round; regions verify that no per-round allocation survives.
func TestGuestQueueRegionDiscipline(t *testing.T) {
	_, rep := run(t, `
class Item { Item next; int v; }
class Queue {
  Item head;
  Item tail;
  void push(Item it) {
    if (tail == null) { head = it; tail = it; return; }
    tail.next = it;
    tail = it;
  }
  Item pop() {
    Item it = head;
    head = head.next;
    if (head == null) { tail = null; }
    it.next = null;
    return it;
  }
}
class Main {
  void main() {
    Queue q = new Queue();
    int round = 0;
    while (round < 5) {
      startRegion();
      int i = 0;
      while (i < 50) {
        Item it = new Item();
        it.v = i;
        q.push(it);
        it = null;   // like the paper's oldCompany: a stale local would
                     // keep the last item alive past the region
        i = i + 1;
      }
      int sum = 0;
      while (q.head != null) {
        Item it = q.pop();
        sum = sum + it.v;
        it = null;
      }
      print(sum);
      // The queue is empty: everything allocated in this region must die.
      // (q itself was allocated before any region.)
      int n = assertAllDead();
      gc();
      round = round + 1;
    }
  }
}`)
	if rep.Len() != 0 {
		t.Fatalf("region violations in a draining queue: %v", rep.Violations()[0].String())
	}
}

// TestGuestDeepRecursionFrames exercises many concurrent interpreter frames
// (each with shadow roots) plus GC during deep recursion.
func TestGuestDeepRecursionFrames(t *testing.T) {
	lines, rep := run(t, `
class Node { Node next; }
class Main {
  int build(int depth, Node chain) {
    if (depth == 0) { return 0; }
    Node n = new Node();
    n.next = chain;
    int[] junk = new int[200];
    junk[0] = depth;
    return 1 + build(depth - 1, n);
  }
  void main() {
    int total = 0;
    int i = 0;
    while (i < 30) {
      total = total + build(200, null);
      i = i + 1;
    }
    print(total);
  }
}`)
	if len(lines) != 1 || lines[0] != "6000" {
		t.Errorf("output = %v", lines)
	}
	if rep.Len() != 0 {
		t.Errorf("violations: %v", rep.Violations())
	}
}

// TestGuestDeterministic runs the BST program twice: identical output and
// identical allocation counts (the whole stack is deterministic).
func TestGuestDeterministic(t *testing.T) {
	runOnce := func() (string, uint64) {
		var out strings.Builder
		res, err := CompileAndRun(bstProgram, RunOptions{Out: &out, HeapBytes: 2 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), res.VM.HeapStats().ObjectsAllocated
	}
	o1, a1 := runOnce()
	o2, a2 := runOnce()
	if o1 != o2 || a1 != a2 {
		t.Errorf("nondeterministic guest execution: %d vs %d objects", a1, a2)
	}
}

// TestGuestRandomPrograms fuzzes arithmetic expression programs against a
// Go evaluator.
func TestGuestRandomArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		// Generate a random arithmetic expression over small constants.
		var genExpr func(depth int) (string, int64)
		genExpr = func(depth int) (string, int64) {
			if depth == 0 || rng.Intn(3) == 0 {
				v := int64(rng.Intn(20) + 1)
				return fmt.Sprint(v), v
			}
			l, lv := genExpr(depth - 1)
			r, rv := genExpr(depth - 1)
			switch rng.Intn(4) {
			case 0:
				return "(" + l + " + " + r + ")", lv + rv
			case 1:
				return "(" + l + " - " + r + ")", lv - rv
			case 2:
				return "(" + l + " * " + r + ")", lv * rv
			default:
				if rv == 0 {
					return "(" + l + " + " + r + ")", lv + rv
				}
				return "(" + l + " / " + r + ")", lv / rv
			}
		}
		expr, want := genExpr(4)
		src := fmt.Sprintf(`class Main { void main() { print(%s); } }`, expr)
		var out strings.Builder
		_, err := CompileAndRun(src, RunOptions{Out: &out, HeapBytes: 2 << 20})
		if err != nil {
			if strings.Contains(err.Error(), "division by zero") {
				continue
			}
			t.Fatalf("trial %d: %v (src %s)", trial, err, src)
		}
		if got := strings.TrimSpace(out.String()); got != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s = %s, want %d", trial, expr, got, want)
		}
	}
}
