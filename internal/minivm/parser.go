package minivm

// Recursive-descent parser for MJ.

type parser struct {
	toks []Token
	pos  int
}

// Parse parses a full MJ program.
func Parse(src string) (*Program, error) {
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		cd, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, cd)
	}
	if len(prog.Classes) == 0 {
		return nil, errf(p.cur().Pos, "empty program: at least one class required")
	}
	return prog, nil
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }
func (p *parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, *Error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

// classDecl := "class" IDENT "{" member* "}"
func (p *parser) classDecl() (*ClassDecl, *Error) {
	kw, err := p.expect(TokClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	cd := &ClassDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(kw.Pos, "unterminated class %s", cd.Name)
		}
		if err := p.member(cd); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	return cd, nil
}

// member := type IDENT ";"  |  (type|void) IDENT "(" params ")" block
func (p *parser) member(cd *ClassDecl) *Error {
	var ret TypeExpr
	if p.at(TokVoid) {
		ret = TypeExpr{Pos: p.advance().Pos, Void: true}
	} else {
		t, err := p.typeExpr()
		if err != nil {
			return err
		}
		ret = t
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.at(TokLParen) {
		m := &MethodDecl{Pos: name.Pos, Ret: ret, Name: name.Text}
		p.advance() // (
		if !p.at(TokRParen) {
			for {
				pt, err := p.typeExpr()
				if err != nil {
					return err
				}
				pn, err := p.expect(TokIdent)
				if err != nil {
					return err
				}
				m.Params = append(m.Params, &Param{Pos: pn.Pos, Type: pt, Name: pn.Text})
				if !p.accept(TokComma) {
					break
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return err
		}
		body, berr := p.block()
		if berr != nil {
			return berr
		}
		m.Body = body
		cd.Methods = append(cd.Methods, m)
		return nil
	}
	if ret.Void {
		return errf(name.Pos, "field %s cannot have type void", name.Text)
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	cd.Fields = append(cd.Fields, &FieldDecl{Pos: name.Pos, Type: ret, Name: name.Text})
	return nil
}

// typeExpr := ("int" | IDENT) ("[" "]")*
func (p *parser) typeExpr() (TypeExpr, *Error) {
	var t TypeExpr
	switch {
	case p.at(TokIntKw):
		t = TypeExpr{Pos: p.advance().Pos, Name: "int"}
	case p.at(TokIdent):
		tok := p.advance()
		t = TypeExpr{Pos: tok.Pos, Name: tok.Text}
	default:
		return t, errf(p.cur().Pos, "expected type, found %s", p.cur())
	}
	for p.at(TokLBracket) && p.la(1).Kind == TokRBracket {
		p.advance()
		p.advance()
		t.Dims++
	}
	return t, nil
}

// block := "{" stmt* "}"
func (p *parser) block() (*BlockStmt, *Error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

// stmt dispatches on the leading token(s).
func (p *parser) stmt() (Stmt, *Error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokFor:
		return p.forStmt()
	case TokBreak:
		kw := p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case TokContinue:
		kw := p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case TokReturn:
		kw := p.advance()
		if p.accept(TokSemi) {
			return &ReturnStmt{Pos: kw.Pos}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: kw.Pos, Value: e}, nil
	case TokIntKw:
		return p.varDecl()
	case TokIdent:
		// Disambiguate "C x;" / "C[] x;" (declaration) from expressions.
		if p.la(1).Kind == TokIdent {
			return p.varDecl()
		}
		if p.la(1).Kind == TokLBracket && p.la(2).Kind == TokRBracket {
			return p.varDecl()
		}
	}
	// Expression or assignment statement.
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement without consuming
// the trailing semicolon (also used by for-loop headers).
func (p *parser) simpleStmt() (Stmt, *Error) {
	start := p.cur().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		switch e.(type) {
		case *IdentExpr, *FieldExpr, *IndexExpr:
		default:
			return nil, errf(start, "invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: start, Target: e, Value: v}, nil
	}
	return &ExprStmt{Pos: start, X: e}, nil
}

// forStmt := "for" "(" [init] ";" [cond] ";" [post] ")" stmt
// init is a variable declaration or a simple statement; post is a simple
// statement.
func (p *parser) forStmt() (Stmt, *Error) {
	kw := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: kw.Pos}
	// Init clause (consumes its own semicolon when it is a declaration).
	if !p.accept(TokSemi) {
		isDecl := p.at(TokIntKw) ||
			(p.at(TokIdent) && p.la(1).Kind == TokIdent) ||
			(p.at(TokIdent) && p.la(1).Kind == TokLBracket && p.la(2).Kind == TokRBracket)
		if isDecl {
			init, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			f.Init = init
		}
	}
	// Condition clause.
	if !p.accept(TokSemi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	// Post clause.
	if !p.at(TokRParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) varDecl() (Stmt, *Error) {
	t, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept(TokAssign) {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		init = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &VarDeclStmt{Pos: t.Pos, Type: t, Name: name.Text, Init: init}, nil
}

func (p *parser) ifStmt() (Stmt, *Error) {
	kw := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err2 := p.stmt()
	if err2 != nil {
		return nil, err2
	}
	var els Stmt
	if p.accept(TokElse) {
		e, err := p.stmt()
		if err != nil {
			return nil, err
		}
		els = e
	}
	return &IfStmt{Pos: kw.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) whileStmt() (Stmt, *Error) {
	kw := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err2 := p.stmt()
	if err2 != nil {
		return nil, err2
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

// Expression grammar, by precedence (lowest first):
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := eq ("&&" eq)*
//	eq     := rel (("=="|"!=") rel)*
//	rel    := add (("<"|"<="|">"|">=") add)*
//	add    := mul (("+"|"-") mul)*
//	mul    := unary (("*"|"/"|"%") unary)*
//	unary  := ("-"|"!") unary | postfix
func (p *parser) expr() (Expr, *Error) { return p.orExpr() }

func (p *parser) binaryLevel(ops []TokKind, next func() (Expr, *Error)) (Expr, *Error) {
	x, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(op) {
				tok := p.advance()
				y, err := next()
				if err != nil {
					return nil, err
				}
				x = &BinaryExpr{Pos: tok.Pos, Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) orExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokOrOr}, p.andExpr)
}
func (p *parser) andExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokAndAnd}, p.eqExpr)
}
func (p *parser) eqExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokEq, TokNe}, p.relExpr)
}
func (p *parser) relExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokLt, TokLe, TokGt, TokGe}, p.addExpr)
}
func (p *parser) addExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokPlus, TokMinus}, p.mulExpr)
}
func (p *parser) mulExpr() (Expr, *Error) {
	return p.binaryLevel([]TokKind{TokStar, TokSlash, TokPercent}, p.unaryExpr)
}

func (p *parser) unaryExpr() (Expr, *Error) {
	if p.at(TokMinus) || p.at(TokBang) {
		tok := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	}
	return p.postfixExpr()
}

// postfixExpr := primary ( "." IDENT [ "(" args ")" ] | "[" expr "]" )*
func (p *parser) postfixExpr() (Expr, *Error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokDot):
			p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.at(TokLParen) {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				x = &CallExpr{Pos: name.Pos, X: x, Name: name.Text, Args: args}
			} else {
				x = &FieldExpr{Pos: name.Pos, X: x, Name: name.Text}
			}
		case p.at(TokLBracket):
			lb := p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: lb.Pos, X: x, Index: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) args() ([]Expr, *Error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(TokRParen) {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primaryExpr() (Expr, *Error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.advance()
		return &IntLit{Pos: tok.Pos, Val: tok.Val}, nil
	case TokNull:
		p.advance()
		return &NullLit{Pos: tok.Pos}, nil
	case TokThis:
		p.advance()
		return &ThisExpr{Pos: tok.Pos}, nil
	case TokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokNew:
		p.advance()
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if p.at(TokLBracket) {
			p.advance()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			// "new T[n]" creates an array with element type t.
			return &NewExpr{Pos: tok.Pos, Type: t, Len: n}, nil
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if t.Dims != 0 || t.Name == "int" {
			return nil, errf(tok.Pos, "new %s() is not a class instantiation", t)
		}
		return &NewExpr{Pos: tok.Pos, Type: t}, nil
	case TokIdent:
		p.advance()
		if p.at(TokLParen) {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: tok.Pos, Name: tok.Text, Args: args}, nil
		}
		return &IdentExpr{Pos: tok.Pos, Name: tok.Text}, nil
	}
	return nil, errf(tok.Pos, "expected expression, found %s", tok)
}
