package minivm

import (
	"strings"
	"testing"

	"gcassert"
)

// run compiles and runs src, returning the print() output lines and the
// collected violations.
func run(t *testing.T, src string) ([]string, *gcassert.CollectingReporter) {
	t.Helper()
	var out strings.Builder
	res, err := CompileAndRun(src, RunOptions{Out: &out, HeapBytes: 8 << 20, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	lines := strings.Fields(out.String())
	return lines, res.Violations
}

// mustFailCompile asserts a compile error mentioning want.
func mustFailCompile(t *testing.T, src, want string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("expected compile error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestHelloArithmetic(t *testing.T) {
	lines, _ := run(t, `
class Main {
  void main() {
    print(1 + 2 * 3);
    print((1 + 2) * 3);
    print(10 / 3);
    print(10 % 3);
    print(-5);
    print(!0);
    print(!7);
  }
}`)
	want := []string{"7", "9", "3", "1", "-5", "1", "0"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestControlFlow(t *testing.T) {
	lines, _ := run(t, `
class Main {
  void main() {
    int i = 0;
    int sum = 0;
    while (i < 10) {
      if (i % 2 == 0) { sum = sum + i; } else { sum = sum + 1; }
      i = i + 1;
    }
    print(sum);          // 0+1+2+1+4+1+6+1+8+1 = 25
    if (sum == 25 && i == 10) { print(1); }
    if (sum == 0 || i == 10) { print(2); }
    if (sum != 25) { print(3); } else { print(4); }
  }
}`)
	want := []string{"25", "1", "2", "4"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestShortCircuit(t *testing.T) {
	lines, _ := run(t, `
class Main {
  int calls;
  int bump() { calls = calls + 1; return 1; }
  void main() {
    int x = 0 && bump();
    int y = 1 || bump();
    print(calls);  // neither side effect ran
    int z = 1 && bump();
    int w = 0 || bump();
    print(calls);  // both ran
    print(x + y * 10 + z * 100 + w * 1000);
  }
}`)
	want := []string{"0", "2", "1110"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestObjectsAndMethods(t *testing.T) {
	lines, _ := run(t, `
class Point {
  int x;
  int y;
  void set(int ax, int ay) { x = ax; y = ay; }
  int manhattan(Point o) {
    int dx = x - o.x;
    int dy = y - o.y;
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    return dx + dy;
  }
}
class Main {
  void main() {
    Point a = new Point();
    Point b = new Point();
    a.set(1, 2);
    b.set(4, 6);
    print(a.manhattan(b));
    print(b.manhattan(a));
    print(a.x + b.y);
  }
}`)
	want := []string{"7", "7", "7"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestRecursion(t *testing.T) {
	lines, _ := run(t, `
class Main {
  int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
  }
  int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
  }
  void main() {
    print(fib(15));
    print(fact(10));
  }
}`)
	want := []string{"610", "3628800"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestArraysAndLinkedList(t *testing.T) {
	lines, _ := run(t, `
class Node {
  Node next;
  int val;
}
class Main {
  void main() {
    int[] a = new int[5];
    int i = 0;
    while (i < length(a)) { a[i] = i * i; i = i + 1; }
    print(a[4]);
    Node[] nodes = new Node[3];
    nodes[0] = new Node();
    nodes[0].val = 42;
    print(nodes[0].val);
    if (nodes[1] == null) print(1);

    // Build a list, sum it.
    Node head = null;
    i = 0;
    while (i < 100) {
      Node n = new Node();
      n.val = i;
      n.next = head;
      head = n;
      i = i + 1;
    }
    int sum = 0;
    Node p = head;
    while (p != null) { sum = sum + p.val; p = p.next; }
    print(sum);
  }
}`)
	want := []string{"16", "42", "1", "4950"}
	if strings.Join(lines, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", lines, want)
	}
}

func TestGuestSurvivesGC(t *testing.T) {
	// Churn enough garbage inside the guest to force collections, while a
	// retained list must survive intact.
	var out strings.Builder
	res, err := CompileAndRun(`
class Node { Node next; int val; }
class Main {
  void main() {
    Node keep = null;
    int i = 0;
    while (i < 200) {
      Node n = new Node();
      n.val = i;
      n.next = keep;
      keep = n;
      // garbage: a large transient array per step
      int[] junk = new int[2000];
      junk[0] = i;
      i = i + 1;
    }
    int sum = 0;
    while (keep != null) { sum = sum + keep.val; keep = keep.next; }
    print(sum);  // 19900
  }
}`, RunOptions{Out: &out, HeapBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "19900" {
		t.Errorf("output = %q", got)
	}
	if res.VM.Collector().GCCount() == 0 {
		t.Error("no collections: GC pressure test ineffective")
	}
	if res.Violations.Len() != 0 {
		t.Errorf("violations: %v", res.Violations.Violations())
	}
}

func TestGuestAssertDead(t *testing.T) {
	_, rep := run(t, `
class Node { Node next; }
class Main {
  Node cache;
  void main() {
    Node n = new Node();
    cache = n;          // forgotten reference
    assertDead(n);      // we think n is garbage now...
    n = null;
    gc();
  }
}`)
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", rep.Violations())
	}
	if vs[0].TypeName != "Node" {
		t.Errorf("type = %s", vs[0].TypeName)
	}
	// The path should run through Main.cache.
	found := false
	for _, s := range vs[0].Path {
		if s.TypeName == "Main" && s.Field == "cache" {
			found = true
		}
	}
	if !found {
		t.Errorf("path misses Main.cache: %+v", vs[0].Path)
	}
}

func TestGuestAssertDeadPasses(t *testing.T) {
	_, rep := run(t, `
class Node { Node next; }
class Main {
  void main() {
    Node n = new Node();
    assertDead(n);
    n = null;
    gc();
  }
}`)
	if rep.Len() != 0 {
		t.Fatalf("violations = %v", rep.Violations())
	}
}

func TestGuestAssertUnshared(t *testing.T) {
	// Note: a local variable holding the child would itself be a second
	// path (roots count as encounters, as in the paper's mark-bit check),
	// so the guest drops its local before collecting.
	_, rep := run(t, `
class Tree { Tree left; Tree right; }
class Main {
  void main() {
    Tree root = new Tree();
    Tree child = new Tree();
    root.left = child;
    child = null;
    assertUnshared(root.left);
    gc();                      // fine: one parent
    root.right = root.left;    // now it's a DAG
    gc();
  }
}`)
	if n := len(rep.ByKind(gcassert.KindUnshared)); n != 1 {
		t.Fatalf("unshared violations = %d: %v", n, rep.Violations())
	}
}

func TestGuestAssertInstancesSingleton(t *testing.T) {
	_, rep := run(t, `
class Config { int x; }
class Main {
  void main() {
    assertInstances(Config, 1);
    Config a = new Config();
    gc();                 // 1 instance: fine
    Config b = new Config();
    gc();                 // 2 instances: violation
    a.x = b.x;
  }
}`)
	if n := len(rep.ByKind(gcassert.KindInstances)); n != 1 {
		t.Fatalf("instances violations = %d: %v", n, rep.Violations())
	}
}

func TestGuestAssertOwnedBy(t *testing.T) {
	_, rep := run(t, `
class Table { Node[] slots; }
class Node { int val; }
class Main {
  Node stray;
  void main() {
    Table t = new Table();
    t.slots = new Node[4];
    Node n = new Node();
    t.slots[0] = n;
    assertOwnedBy(t, n);
    stray = n;            // extra reference: allowed while owned
    gc();
    t.slots[0] = null;    // removed from owner, stray keeps it alive
    gc();
  }
}`)
	if n := len(rep.ByKind(gcassert.KindOwnedBy)); n < 1 {
		t.Fatalf("ownedby violations = %d: %v", n, rep.Violations())
	}
}

func TestGuestRegions(t *testing.T) {
	_, rep := run(t, `
class Req { int id; }
class Main {
  Req leaked;
  void main() {
    int conn = 0;
    while (conn < 3) {
      startRegion();
      Req r = new Req();
      r.id = conn;
      if (conn == 1) { leaked = r; }   // one connection leaks
      r = null;
      int n = assertAllDead();
      print(n);
      conn = conn + 1;
    }
    gc();
  }
}`)
	if n := len(rep.ByKind(gcassert.KindDead)); n != 1 {
		t.Fatalf("dead violations = %d: %v", n, rep.Violations())
	}
}

// TestGuestSwapLeak is the paper's SwapLeak case study written in MJ.
func TestGuestSwapLeak(t *testing.T) {
	_, rep := run(t, `
class SObject {
  Rep rep;
  void init() {
    Rep r = new Rep();
    r.outer = this;   // the hidden this$0 of a non-static inner class
    rep = r;
  }
  void swap(SObject o) {
    Rep mine = rep;
    rep = o.rep;
    o.rep = mine;
  }
}
class Rep { SObject outer; }
class Main {
  void main() {
    SObject[] arr = new SObject[8];
    int i = 0;
    while (i < 8) {
      arr[i] = new SObject();
      arr[i].init();
      i = i + 1;
    }
    i = 0;
    while (i < 8) {
      SObject fresh = new SObject();
      fresh.init();
      arr[i].swap(fresh);
      assertDead(fresh);  // the user's (wrong) expectation
      fresh = null;
      i = i + 1;
    }
    gc();
  }
}`)
	vs := rep.ByKind(gcassert.KindDead)
	if len(vs) != 8 {
		t.Fatalf("dead violations = %d, want 8", len(vs))
	}
	// Path: ... SObject -> Rep(.outer) -> SObject.
	var names []string
	for _, s := range vs[0].Path {
		names = append(names, s.TypeName)
	}
	path := strings.Join(names, " -> ")
	if !strings.Contains(path, "SObject -> Rep -> SObject") {
		t.Errorf("path = %s", path)
	}
}

func TestGuestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"null-deref", "Node n = null; print(n.val);", "null pointer"},
		{"null-call", "Main m = null; m.main();", "null receiver"},
		{"div-zero", "int z = 0; print(1 / z);", "division by zero"},
		{"mod-zero", "int z = 0; print(1 % z);", "division by zero"},
		{"index-oob", "int[] a = new int[3]; print(a[3]);", "out of range"},
		{"index-neg", "int[] a = new int[3]; print(a[0-1]);", "out of range"},
		{"neg-len", "int[] a = new int[0-2]; print(length(a));", "negative array length"},
		{"null-len", "int[] a = null; print(length(a));", "length of null"},
		{"null-assert", "Node n = null; assertDead(n);", "assertDead(null)"},
		{"region-unopened", "int n = assertAllDead(); print(n);", "no active region"},
		{"region-double", "startRegion(); startRegion();", "already active"},
		{"null-astore", "Node[] a = null; a[0] = null;", "null array"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			src := "class Node { int val; }\nclass Main { void main() { " + c.body + " } }"
			_, err := CompileAndRun(src, RunOptions{HeapBytes: 4 << 20})
			if err == nil {
				t.Fatalf("expected runtime error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestGuestStepBudget(t *testing.T) {
	_, err := CompileAndRun(`class Main { void main() { while (1) {} } }`,
		RunOptions{HeapBytes: 4 << 20, MaxSteps: 100000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no-main-class", "class A { void m() {} }", "no class Main"},
		{"no-main-method", "class Main { void m() {} }", "no method main"},
		{"main-sig", "class Main { int main() { return 0; } }", "void main()"},
		{"dup-class", "class A {} class A {} class Main { void main() {} }", "duplicate class"},
		{"dup-field", "class A { int x; int x; } class Main { void main() {} }", "duplicate field"},
		{"dup-method", "class A { void m() {} void m() {} } class Main { void main() {} }", "duplicate method"},
		{"unknown-type", "class Main { Foo f; void main() {} }", "unknown type"},
		{"void-field", "class Main { void x; void main() {} }", "cannot have type void"},
		{"undefined-var", "class Main { void main() { print(x); } }", "undefined"},
		{"dup-var", "class Main { void main() { int x; int x; } }", "duplicate variable"},
		{"type-mismatch", "class Main { void main() { int x = null; } }", "cannot initialize"},
		{"assign-mismatch", "class A {} class Main { void main() { A a = new A(); int x = 0; x = a; } }", "cannot assign"},
		{"bad-cond", "class A {} class Main { void main() { if (new A()) {} } }", "must be int"},
		{"bad-while", "class A {} class Main { void main() { while (null) {} } }", "must be int"},
		{"ret-void-val", "class Main { void main() { return 1; } }", "cannot return a value"},
		{"ret-missing-val", "class Main { int f() { return; } void main() {} }", "must return"},
		{"ret-wrong-type", "class A {} class Main { A f() { return 1; } void main() {} }", "cannot return"},
		{"arg-count", "class Main { void f(int x) {} void main() { f(); } }", "takes 1 arguments"},
		{"arg-type", "class A {} class Main { void f(int x) {} void main() { f(new A()); } }", "cannot use"},
		{"no-such-method", "class A {} class Main { void main() { A a = new A(); a.zap(); } }", "has no method"},
		{"no-such-field", "class A {} class Main { void main() { A a = new A(); print(a.x); } }", "has no field"},
		{"call-on-int", "class Main { void main() { int x = 0; x.m(); } }", "non-object"},
		{"index-non-array", "class Main { void main() { int x = 0; print(x[0]); } }", "non-array"},
		{"bad-index-type", "class Main { void main() { int[] a = new int[1]; print(a[null]); } }", "index must be int"},
		{"arith-on-ref", "class A {} class Main { void main() { A a = new A(); print(a + 1); } }", "requires ints"},
		{"cmp-int-ref", "class A {} class Main { void main() { A a = new A(); print(a == 1); } }", "cannot compare"},
		{"assign-to-call", "class Main { int f() { return 1; } void main() { f() = 2; } }", "assignment target"},
		{"new-int", "class Main { void main() { int x = new int(); } }", "not a class"},
		{"assert-instances-nonclass", "class Main { void main() { assertInstances(foo, 1); } }", "unknown class"},
		{"assert-instances-lit", "class Main { void main() { int n = 2; assertInstances(Main, n); } }", "integer literal"},
		{"assert-dead-int", "class Main { void main() { assertDead(1); } }", "object reference"},
		{"length-non-array", "class Main { void main() { print(length(1)); } }", "takes an array"},
		{"print-ref", "class A {} class Main { void main() { print(new A()); } }", "takes an int"},
		{"undefined-call", "class Main { void main() { zap(); } }", "undefined function"},
		{"empty", "", "empty program"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { mustFailCompile(t, c.src, c.want) })
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class",
		"class A",
		"class A {",
		"class A { int }",
		"class A { int x }",
		"class A { void m( {} }",
		"class A { void m() { if } }",
		"class A { void m() { while (1) } }",
		"class A { void m() { 1 + ; } }",
		"class A { void m() { x = ; } }",
		"class A { void m() { new A(; } }",
		"class A { void m() { a[1; } }",
		"int x;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestDisassemble(t *testing.T) {
	unit, err := Compile(`class Main { void main() { int x = 1 + 2; print(x); } }`)
	if err != nil {
		t.Fatal(err)
	}
	dis := DisassembleUnit(unit)
	for _, want := range []string{"Main.main()", "const 1", "const 2", "add", "store.i", "print", "ret.v"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestMethodMetadata(t *testing.T) {
	unit, err := Compile(`
class Node { Node next; }
class Main {
  int f(int a, Node b) { Node c = b; int d = a; return d; }
  void main() { f(1, null); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := unit.Class("Main")
	f := ci.Methods["f"]
	// locals: this, a, b, c, d
	if f.NumLocals != 5 {
		t.Errorf("NumLocals = %d", f.NumLocals)
	}
	wantRef := []bool{true, false, true, true, false}
	for i, w := range wantRef {
		if f.RefSlot[i] != w {
			t.Errorf("RefSlot[%d] = %v, want %v", i, f.RefSlot[i], w)
		}
	}
	if f.MaxStack < 1 {
		t.Errorf("MaxStack = %d", f.MaxStack)
	}
	if f.Sig() != "Main.f(int, Node) int" {
		t.Errorf("Sig = %q", f.Sig())
	}
}
