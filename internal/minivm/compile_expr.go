package minivm

// Expression compilation.

// expr compiles e, leaving its value on the stack, and returns its type
// (typeVoid for void calls, which leave nothing).
func (mc *mcompiler) expr(e Expr) (*Type, *Error) {
	switch e := e.(type) {
	case *IntLit:
		mc.emit(e.Pos, Instr{Op: OpConstInt, K: e.Val}, 0, 1)
		return typeInt, nil
	case *NullLit:
		mc.emit(e.Pos, Instr{Op: OpNull}, 0, 1)
		return typeNull, nil
	case *ThisExpr:
		mc.emit(e.Pos, Instr{Op: OpLoadRef, A: 0}, 0, 1)
		return &Type{Kind: KClass, Class: mc.m.Class}, nil
	case *IdentExpr:
		if slot, ok := mc.lookup(e.Name); ok {
			t := mc.localTypes[slot]
			if t.IsRef() {
				mc.emit(e.Pos, Instr{Op: OpLoadRef, A: slot}, 0, 1)
			} else {
				mc.emit(e.Pos, Instr{Op: OpLoadInt, A: slot}, 0, 1)
			}
			return t, nil
		}
		// Implicit this-field read.
		fi, ok := mc.m.Class.Field(e.Name)
		if !ok {
			return nil, errf(e.Pos, "undefined: %s", e.Name)
		}
		mc.emit(e.Pos, Instr{Op: OpLoadRef, A: 0}, 0, 1)
		return mc.emitGetField(e.Pos, fi), nil
	case *FieldExpr:
		xt, err := mc.expr(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KClass {
			return nil, errf(e.Pos, "field access on non-object %s", xt)
		}
		fi, ok := xt.Class.Field(e.Name)
		if !ok {
			return nil, errf(e.Pos, "%s has no field %s", xt.Class.Name, e.Name)
		}
		return mc.emitGetField(e.Pos, fi), nil
	case *IndexExpr:
		at, err := mc.expr(e.X)
		if err != nil {
			return nil, err
		}
		if at.Kind != KArray {
			return nil, errf(e.Pos, "index into non-array %s", at)
		}
		it, err := mc.expr(e.Index)
		if err != nil {
			return nil, err
		}
		if it.Kind != KInt {
			return nil, errf(e.Pos, "array index must be int, got %s", it)
		}
		if at.Elem.IsRef() {
			mc.emit(e.Pos, Instr{Op: OpALoadRef}, 2, 1)
		} else {
			mc.emit(e.Pos, Instr{Op: OpALoadInt}, 2, 1)
		}
		return at.Elem, nil
	case *NewExpr:
		return mc.newExpr(e)
	case *CallExpr:
		return mc.call(e)
	case *UnaryExpr:
		xt, err := mc.expr(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KInt {
			return nil, errf(e.Pos, "operator %s requires int, got %s", e.Op, xt)
		}
		if e.Op == TokMinus {
			mc.emit(e.Pos, Instr{Op: OpNeg}, 1, 1)
		} else {
			mc.emit(e.Pos, Instr{Op: OpNot}, 1, 1)
		}
		return typeInt, nil
	case *BinaryExpr:
		return mc.binary(e)
	default:
		return nil, errf(e.Span(), "internal: unknown expression %T", e)
	}
}

func (mc *mcompiler) emitGetField(pos Pos, fi *FieldInfo) *Type {
	if fi.Type.IsRef() {
		mc.emit(pos, Instr{Op: OpGetFRef, A: fi.Slot}, 1, 1)
	} else {
		mc.emit(pos, Instr{Op: OpGetFInt, A: fi.Slot}, 1, 1)
	}
	return fi.Type
}

func (mc *mcompiler) newExpr(e *NewExpr) (*Type, *Error) {
	if e.Len == nil {
		ci, ok := mc.c.unit.classByName[e.Type.Name]
		if !ok || e.Type.Dims != 0 {
			return nil, errf(e.Pos, "unknown class %s", e.Type)
		}
		mc.emit(e.Pos, Instr{Op: OpNewObj, A: ci.Index}, 0, 1)
		return &Type{Kind: KClass, Class: ci}, nil
	}
	elem, err := mc.c.resolveType(e.Type)
	if err != nil {
		return nil, err
	}
	lt, err2 := mc.expr(e.Len)
	if err2 != nil {
		return nil, err2
	}
	if lt.Kind != KInt {
		return nil, errf(e.Pos, "array length must be int, got %s", lt)
	}
	if elem.IsRef() {
		mc.emit(e.Pos, Instr{Op: OpNewArrRef}, 1, 1)
	} else {
		mc.emit(e.Pos, Instr{Op: OpNewArrInt}, 1, 1)
	}
	return &Type{Kind: KArray, Elem: elem}, nil
}

func (mc *mcompiler) binary(e *BinaryExpr) (*Type, *Error) {
	switch e.Op {
	case TokAndAnd:
		// x && y  ==>  x ? y : 0
		if err := mc.intOperand(e.X, e.Op); err != nil {
			return nil, err
		}
		jz := mc.emit(e.Pos, Instr{Op: OpJz}, 1, 0)
		if err := mc.intOperand(e.Y, e.Op); err != nil {
			return nil, err
		}
		jend := mc.emit(e.Pos, Instr{Op: OpJmp}, 0, 0)
		mc.patch(jz)
		mc.depth-- // the merge re-balances the two arms
		mc.emit(e.Pos, Instr{Op: OpConstInt, K: 0}, 0, 1)
		mc.patch(jend)
		return typeInt, nil
	case TokOrOr:
		// x || y  ==>  x ? 1 : y
		if err := mc.intOperand(e.X, e.Op); err != nil {
			return nil, err
		}
		jz := mc.emit(e.Pos, Instr{Op: OpJz}, 1, 0)
		mc.emit(e.Pos, Instr{Op: OpConstInt, K: 1}, 0, 1)
		jend := mc.emit(e.Pos, Instr{Op: OpJmp}, 0, 0)
		mc.patch(jz)
		mc.depth--
		if err := mc.intOperand(e.Y, e.Op); err != nil {
			return nil, err
		}
		mc.patch(jend)
		return typeInt, nil
	}

	xt, err := mc.expr(e.X)
	if err != nil {
		return nil, err
	}
	yt, err := mc.expr(e.Y)
	if err != nil {
		return nil, err
	}

	if e.Op == TokEq || e.Op == TokNe {
		refCmp := xt.IsRef() || yt.IsRef()
		if refCmp {
			if !(assignable(xt, yt) || assignable(yt, xt)) {
				return nil, errf(e.Pos, "cannot compare %s with %s", xt, yt)
			}
			if e.Op == TokEq {
				mc.emit(e.Pos, Instr{Op: OpEqRef}, 2, 1)
			} else {
				mc.emit(e.Pos, Instr{Op: OpNeRef}, 2, 1)
			}
			return typeInt, nil
		}
	}

	if xt.Kind != KInt || yt.Kind != KInt {
		return nil, errf(e.Pos, "operator %s requires ints, got %s and %s", e.Op, xt, yt)
	}
	var op Op
	switch e.Op {
	case TokPlus:
		op = OpAdd
	case TokMinus:
		op = OpSub
	case TokStar:
		op = OpMul
	case TokSlash:
		op = OpDiv
	case TokPercent:
		op = OpMod
	case TokEq:
		op = OpEqInt
	case TokNe:
		op = OpNeInt
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		return nil, errf(e.Pos, "internal: unknown binary operator %s", e.Op)
	}
	mc.emit(e.Pos, Instr{Op: op}, 2, 1)
	return typeInt, nil
}

func (mc *mcompiler) intOperand(e Expr, op TokKind) *Error {
	t, err := mc.expr(e)
	if err != nil {
		return err
	}
	if t.Kind != KInt {
		return errf(e.Span(), "operator %s requires int, got %s", op, t)
	}
	return nil
}

// call compiles method calls and intrinsics.
func (mc *mcompiler) call(e *CallExpr) (*Type, *Error) {
	if e.X == nil {
		if t, handled, err := mc.intrinsic(e); handled {
			return t, err
		}
		// Bare call: this.method(...).
		mi, ok := mc.m.Class.Methods[e.Name]
		if !ok {
			return nil, errf(e.Pos, "undefined function or method %s", e.Name)
		}
		mc.emit(e.Pos, Instr{Op: OpLoadRef, A: 0}, 0, 1)
		return mc.emitCall(e, mi)
	}
	xt, err := mc.expr(e.X)
	if err != nil {
		return nil, err
	}
	if xt.Kind != KClass {
		return nil, errf(e.Pos, "method call on non-object %s", xt)
	}
	mi, ok := xt.Class.Methods[e.Name]
	if !ok {
		return nil, errf(e.Pos, "%s has no method %s", xt.Class.Name, e.Name)
	}
	return mc.emitCall(e, mi)
}

// emitCall assumes the receiver is already on the stack.
func (mc *mcompiler) emitCall(e *CallExpr, mi *MethodInfo) (*Type, *Error) {
	if len(e.Args) != len(mi.Params) {
		return nil, errf(e.Pos, "%s takes %d arguments, got %d", mi.Sig(), len(mi.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at, err := mc.expr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(mi.Params[i], at) {
			return nil, errf(a.Span(), "argument %d of %s: cannot use %s as %s", i+1, mi.Sig(), at, mi.Params[i])
		}
	}
	pushes := 0
	if mi.Ret.Kind != KVoid {
		pushes = 1
	}
	mc.emit(e.Pos, Instr{Op: OpCall, A: mi.ID}, 1+len(mi.Params), pushes)
	return mi.Ret, nil
}

// intrinsic compiles the builtin functions; handled reports whether the name
// is an intrinsic.
func (mc *mcompiler) intrinsic(e *CallExpr) (*Type, bool, *Error) {
	fail := func(format string, args ...interface{}) (*Type, bool, *Error) {
		return nil, true, errf(e.Pos, format, args...)
	}
	argTypes := func(want int) ([]*Type, *Error) {
		if len(e.Args) != want {
			return nil, errf(e.Pos, "%s takes %d argument(s), got %d", e.Name, want, len(e.Args))
		}
		var ts []*Type
		for _, a := range e.Args {
			t, err := mc.expr(a)
			if err != nil {
				return nil, err
			}
			ts = append(ts, t)
		}
		return ts, nil
	}
	switch e.Name {
	case "print":
		ts, err := argTypes(1)
		if err != nil {
			return nil, true, err
		}
		if ts[0].Kind != KInt {
			return fail("print takes an int, got %s", ts[0])
		}
		mc.emit(e.Pos, Instr{Op: OpPrint}, 1, 0)
		return typeVoid, true, nil
	case "gc":
		if _, err := argTypes(0); err != nil {
			return nil, true, err
		}
		mc.emit(e.Pos, Instr{Op: OpGC}, 0, 0)
		return typeVoid, true, nil
	case "length":
		ts, err := argTypes(1)
		if err != nil {
			return nil, true, err
		}
		if ts[0].Kind != KArray {
			return fail("length takes an array, got %s", ts[0])
		}
		mc.emit(e.Pos, Instr{Op: OpLen}, 1, 1)
		return typeInt, true, nil
	case "assertDead", "assertUnshared":
		ts, err := argTypes(1)
		if err != nil {
			return nil, true, err
		}
		if !ts[0].IsRef() || ts[0].Kind == KNull {
			return fail("%s takes an object reference, got %s", e.Name, ts[0])
		}
		op := OpAssertDead
		if e.Name == "assertUnshared" {
			op = OpAssertUnshared
		}
		mc.emit(e.Pos, Instr{Op: op}, 1, 0)
		return typeVoid, true, nil
	case "assertInstances":
		if len(e.Args) != 2 {
			return fail("assertInstances takes (ClassName, limit)")
		}
		id, ok := e.Args[0].(*IdentExpr)
		if !ok {
			return fail("assertInstances: first argument must be a class name")
		}
		ci, ok := mc.c.unit.classByName[id.Name]
		if !ok {
			return fail("assertInstances: unknown class %s", id.Name)
		}
		lit, ok := e.Args[1].(*IntLit)
		if !ok || lit.Val < 0 {
			return fail("assertInstances: limit must be a non-negative integer literal")
		}
		mc.emit(e.Pos, Instr{Op: OpAssertInstances, A: ci.Index, K: lit.Val}, 0, 0)
		return typeVoid, true, nil
	case "assertOwnedBy":
		ts, err := argTypes(2)
		if err != nil {
			return nil, true, err
		}
		for i, t := range ts {
			if !t.IsRef() || t.Kind == KNull {
				return fail("assertOwnedBy: argument %d must be an object reference, got %s", i+1, t)
			}
		}
		mc.emit(e.Pos, Instr{Op: OpAssertOwnedBy}, 2, 0)
		return typeVoid, true, nil
	case "startRegion":
		if _, err := argTypes(0); err != nil {
			return nil, true, err
		}
		mc.emit(e.Pos, Instr{Op: OpRegionStart}, 0, 0)
		return typeVoid, true, nil
	case "assertAllDead":
		if _, err := argTypes(0); err != nil {
			return nil, true, err
		}
		mc.emit(e.Pos, Instr{Op: OpRegionAllDead}, 0, 1)
		return typeInt, true, nil
	}
	return nil, false, nil
}
