package minivm

import (
	"fmt"
	"io"

	"gcassert"
)

// VMError is a guest-program runtime error (null dereference, bounds,
// division by zero, ...), with the method and source position it occurred at.
type VMError struct {
	Method string
	PC     int
	Pos    Pos
	Msg    string
}

func (e *VMError) Error() string {
	return fmt.Sprintf("minivm: %s at %s (pc %d in %s)", e.Msg, e.Pos, e.PC, e.Method)
}

// Image is a compiled Unit loaded into a managed runtime: every class is
// registered as a heap type, and execution state (interpreter frames) is
// visible to the collector as GC roots.
type Image struct {
	Unit *Unit
	vm   *gcassert.Runtime
	th   *gcassert.Thread
	out  io.Writer
	// typeIDs maps class index to managed TypeID.
	typeIDs []gcassert.TypeID
	// steps counts executed instructions against MaxSteps.
	steps uint64
	// MaxSteps bounds execution (0 = unlimited); exceeded → VMError.
	MaxSteps uint64
	// provenance mirrors whether the runtime records allocation sites;
	// sites caches the per-(method, pc) registered SiteID of every `new`
	// bytecode so steady-state allocation formats no strings (0 = not yet
	// registered — real IDs are never 0 while provenance is on).
	provenance bool
	sites      map[*MethodInfo][]gcassert.SiteID
}

// Load verifies the unit's bytecode, registers its classes with the
// runtime, and returns an executable image. out receives print() output.
func Load(vm *gcassert.Runtime, unit *Unit, out io.Writer) (*Image, error) {
	if err := Verify(unit); err != nil {
		return nil, err
	}
	im := &Image{Unit: unit, vm: vm, th: vm.NewThread("minivm"), out: out}
	if vm.Space().Provenance() != nil {
		im.provenance = true
		im.sites = make(map[*MethodInfo][]gcassert.SiteID)
	}
	reg := vm.Registry()
	for _, ci := range unit.Classes {
		if id, ok := reg.Lookup(ci.Name); ok {
			// Already registered (e.g. two images on one VM): verify shape.
			info := reg.Info(id)
			if info.NumFields() != len(ci.Fields) {
				return nil, fmt.Errorf("minivm: class %s conflicts with an existing heap type", ci.Name)
			}
			im.typeIDs = append(im.typeIDs, id)
			continue
		}
		fields := make([]gcassert.Field, len(ci.Fields))
		for i, f := range ci.Fields {
			fields[i] = gcassert.Field{Name: f.Name, Ref: f.Type.IsRef()}
		}
		im.typeIDs = append(im.typeIDs, vm.Define(ci.Name, fields...))
	}
	return im, nil
}

// TypeID returns the managed TypeID of a class name.
func (im *Image) TypeID(name string) (gcassert.TypeID, bool) {
	ci, ok := im.Unit.Class(name)
	if !ok {
		return 0, false
	}
	return im.typeIDs[ci.Index], true
}

// Thread returns the image's mutator thread.
func (im *Image) Thread() *gcassert.Thread { return im.th }

// ResetSteps restarts the MaxSteps budget. The step counter is cumulative
// across Run calls, so a long-lived image serving many guest requests (a
// gcassertd tenant) resets between requests to make the bound per-request
// rather than per-lifetime.
func (im *Image) ResetSteps() { im.steps = 0 }

// Run executes Main.main() on a fresh Main instance, converting guest
// runtime errors into *VMError.
func (im *Image) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch r := r.(type) {
			case *VMError:
				err = r
			default:
				panic(r)
			}
		}
	}()
	fr := im.th.Push(1)
	defer im.th.Pop()
	mainObj := im.th.New(im.typeIDs[im.Unit.Main.Class.Index])
	fr.Set(0, mainObj)
	im.invoke(im.Unit.Main, []uint64{uint64(mainObj)})
	return nil
}

// siteAt returns the allocation SiteID for the `new` bytecode at (m, pc),
// registering "Class.method:line: new What" with the runtime on first
// execution and caching the ID per method. With provenance off it returns
// the unknown site, and the sited allocation degrades to a plain one.
func (im *Image) siteAt(m *MethodInfo, pc int, what string) gcassert.SiteID {
	if !im.provenance {
		return 0
	}
	ids := im.sites[m]
	if ids == nil {
		ids = make([]gcassert.SiteID, len(m.Code))
		im.sites[m] = ids
	}
	if ids[pc] == 0 {
		pos := Pos{}
		if pc >= 0 && pc < len(m.Pos) {
			pos = m.Pos[pc]
		}
		ids[pc] = im.vm.RegisterAllocSite(fmt.Sprintf("%s:%d: new %s", m.Sig(), pos.Line, what))
	}
	return ids[pc]
}

// fail raises a guest runtime error.
func (im *Image) fail(m *MethodInfo, pc int, format string, args ...interface{}) {
	pos := Pos{}
	if pc >= 0 && pc < len(m.Pos) {
		pos = m.Pos[pc]
	}
	panic(&VMError{Method: m.Sig(), PC: pc, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// invoke runs one method activation. args holds this + parameters, encoded
// as raw uint64 (references as their Ref bits). It returns the raw return
// value (meaningful only for non-void methods).
func (im *Image) invoke(m *MethodInfo, args []uint64) uint64 {
	// One rt frame backs both locals and the operand stack, so every live
	// reference in the activation is a GC root — the interpreter's analogue
	// of a JVM's stack maps.
	fr := im.th.Push(m.NumLocals + m.MaxStack)
	defer im.th.Pop()
	vals := make([]uint64, m.NumLocals+m.MaxStack)
	for i, a := range args {
		vals[i] = a
		if m.RefSlot[i] {
			fr.Set(i, gcassert.Ref(a))
		}
	}
	sp := m.NumLocals

	pushInt := func(v int64) {
		vals[sp] = uint64(v)
		sp++
	}
	pushRef := func(r gcassert.Ref) {
		vals[sp] = uint64(r)
		fr.Set(sp, r)
		sp++
	}
	popInt := func() int64 {
		sp--
		return int64(vals[sp])
	}
	popRef := func() gcassert.Ref {
		sp--
		r := gcassert.Ref(vals[sp])
		fr.Set(sp, gcassert.Nil)
		return r
	}

	vm, space := im.vm, im.vm.Space()
	pc := 0
	for {
		if im.MaxSteps > 0 {
			im.steps++
			if im.steps > im.MaxSteps {
				im.fail(m, pc, "execution budget exceeded (%d steps)", im.MaxSteps)
			}
		}
		if pc < 0 || pc >= len(m.Code) {
			im.fail(m, pc, "pc out of range")
		}
		in := m.Code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpConstInt:
			pushInt(in.K)
		case OpNull:
			pushRef(gcassert.Nil)
		case OpLoadInt:
			pushInt(int64(vals[in.A]))
		case OpLoadRef:
			pushRef(gcassert.Ref(vals[in.A]))
		case OpStoreInt:
			vals[in.A] = uint64(popInt())
		case OpStoreRef:
			r := popRef()
			vals[in.A] = uint64(r)
			fr.Set(in.A, r)
		case OpPopInt:
			popInt()
		case OpPopRef:
			popRef()
		case OpGetFInt:
			obj := popRef()
			if obj == gcassert.Nil {
				im.fail(m, pc-1, "null pointer dereference")
			}
			pushInt(int64(space.GetScalar(obj, in.A)))
		case OpGetFRef:
			obj := popRef()
			if obj == gcassert.Nil {
				im.fail(m, pc-1, "null pointer dereference")
			}
			pushRef(space.GetRef(obj, in.A))
		case OpPutFInt:
			v := popInt()
			obj := popRef()
			if obj == gcassert.Nil {
				im.fail(m, pc-1, "null pointer dereference")
			}
			space.SetScalar(obj, in.A, uint64(v))
		case OpPutFRef:
			v := popRef()
			obj := popRef()
			if obj == gcassert.Nil {
				im.fail(m, pc-1, "null pointer dereference")
			}
			space.SetRef(obj, in.A, v)
		case OpNewArrInt, OpNewArrRef:
			n := popInt()
			if n < 0 {
				im.fail(m, pc-1, "negative array length %d", n)
			}
			t, what := gcassert.TWordArray, "int[]"
			if in.Op == OpNewArrRef {
				t, what = gcassert.TRefArray, "ref[]"
			}
			pushRef(im.th.NewArrayAt(t, int(n), im.siteAt(m, pc-1, what)))
		case OpALoadInt:
			i := popInt()
			arr := popRef()
			im.checkIndex(m, pc-1, arr, i)
			pushInt(int64(space.WordAt(arr, int(i))))
		case OpALoadRef:
			i := popInt()
			arr := popRef()
			im.checkIndex(m, pc-1, arr, i)
			pushRef(space.RefAt(arr, int(i)))
		case OpAStoreInt:
			v := popInt()
			i := popInt()
			arr := popRef()
			im.checkIndex(m, pc-1, arr, i)
			space.SetWordAt(arr, int(i), uint64(v))
		case OpAStoreRef:
			v := popRef()
			i := popInt()
			arr := popRef()
			im.checkIndex(m, pc-1, arr, i)
			space.SetRefAt(arr, int(i), v)
		case OpLen:
			arr := popRef()
			if arr == gcassert.Nil {
				im.fail(m, pc-1, "length of null array")
			}
			pushInt(int64(space.ArrayLen(arr)))
		case OpNewObj:
			pushRef(im.th.NewAt(im.typeIDs[in.A], im.siteAt(m, pc-1, im.Unit.Classes[in.A].Name)))
		case OpAdd:
			b, a := popInt(), popInt()
			pushInt(a + b)
		case OpSub:
			b, a := popInt(), popInt()
			pushInt(a - b)
		case OpMul:
			b, a := popInt(), popInt()
			pushInt(a * b)
		case OpDiv:
			b, a := popInt(), popInt()
			if b == 0 {
				im.fail(m, pc-1, "division by zero")
			}
			pushInt(a / b)
		case OpMod:
			b, a := popInt(), popInt()
			if b == 0 {
				im.fail(m, pc-1, "division by zero")
			}
			pushInt(a % b)
		case OpNeg:
			pushInt(-popInt())
		case OpNot:
			if popInt() == 0 {
				pushInt(1)
			} else {
				pushInt(0)
			}
		case OpEqInt, OpNeInt, OpLt, OpLe, OpGt, OpGe:
			b, a := popInt(), popInt()
			var r bool
			switch in.Op {
			case OpEqInt:
				r = a == b
			case OpNeInt:
				r = a != b
			case OpLt:
				r = a < b
			case OpLe:
				r = a <= b
			case OpGt:
				r = a > b
			case OpGe:
				r = a >= b
			}
			if r {
				pushInt(1)
			} else {
				pushInt(0)
			}
		case OpEqRef, OpNeRef:
			b, a := popRef(), popRef()
			r := a == b
			if in.Op == OpNeRef {
				r = !r
			}
			if r {
				pushInt(1)
			} else {
				pushInt(0)
			}
		case OpJmp:
			pc = in.A
		case OpJz:
			if popInt() == 0 {
				pc = in.A
			}
		case OpCall:
			callee := im.Unit.Methods[in.A]
			n := 1 + len(callee.Params)
			base := sp - n
			if gcassert.Ref(vals[base]) == gcassert.Nil {
				im.fail(m, pc-1, "method call on null receiver (%s)", callee.Sig())
			}
			args := make([]uint64, n)
			copy(args, vals[base:sp])
			// Pop the arguments (clearing ref shadows) before the call; the
			// callee frame roots them.
			for sp > base {
				sp--
				if fr.Get(sp) != gcassert.Nil {
					fr.Set(sp, gcassert.Nil)
				}
			}
			ret := im.invoke(callee, args)
			switch {
			case callee.Ret.Kind == KVoid:
			case callee.Ret.IsRef():
				pushRef(gcassert.Ref(ret))
			default:
				pushInt(int64(ret))
			}
		case OpRetVoid:
			return 0
		case OpRetInt:
			return uint64(popInt())
		case OpRetRef:
			return uint64(popRef())
		case OpPrint:
			fmt.Fprintln(im.out, popInt())
		case OpGC:
			vm.Collect()
		case OpAssertDead:
			r := popRef()
			if r == gcassert.Nil {
				im.fail(m, pc-1, "assertDead(null)")
			}
			vm.AssertDead(r)
		case OpAssertUnshared:
			r := popRef()
			if r == gcassert.Nil {
				im.fail(m, pc-1, "assertUnshared(null)")
			}
			vm.AssertUnshared(r)
		case OpAssertInstances:
			vm.AssertInstances(im.typeIDs[in.A], in.K)
		case OpAssertOwnedBy:
			ownee := popRef()
			owner := popRef()
			if owner == gcassert.Nil || ownee == gcassert.Nil {
				im.fail(m, pc-1, "assertOwnedBy(null)")
			}
			if owner == ownee {
				im.fail(m, pc-1, "assertOwnedBy: an object cannot own itself")
			}
			vm.AssertOwnedBy(owner, ownee)
		case OpRegionStart:
			if im.th.InRegion() {
				im.fail(m, pc-1, "startRegion: region already active")
			}
			im.th.StartRegion()
		case OpRegionAllDead:
			if !im.th.InRegion() {
				im.fail(m, pc-1, "assertAllDead: no active region")
			}
			pushInt(int64(im.th.AssertAllDead()))
		default:
			im.fail(m, pc-1, "internal: bad opcode %s", in.Op)
		}
	}
}

func (im *Image) checkIndex(m *MethodInfo, pc int, arr gcassert.Ref, i int64) {
	if arr == gcassert.Nil {
		im.fail(m, pc, "null array dereference")
	}
	if n := int64(im.vm.Space().ArrayLen(arr)); i < 0 || i >= n {
		im.fail(m, pc, "array index %d out of range [0,%d)", i, n)
	}
}
