package minivm

// Peephole bytecode optimizer: constant folding, algebraic simplification,
// dead-store-free jump threading. Optimization is optional (mjrun -O /
// RunOptions.Optimize) and must be semantics-preserving — the differential
// tests in optimize_test.go run every guest program both ways and require
// identical output, heap shape and violations.
//
// Passes (iterated to a fixed point):
//
//  1. constant folding:   const a; const b; <arith/cmp>  →  const (a op b)
//  2. unary folding:      const a; neg/not               →  const (op a)
//  3. branch folding:     const c; jz L                  →  jmp L / (drop)
//  4. jump threading:     jmp/jz → jmp L where code[L] is jmp M  →  … M
//  5. nop elision with pc remapping.

// Optimize rewrites every method of the unit in place.
func Optimize(u *Unit) {
	for _, m := range u.Methods {
		optimizeMethod(m)
	}
}

// optimizeMethod iterates the peephole passes until nothing changes.
func optimizeMethod(m *MethodInfo) {
	for {
		changed := foldConstants(m)
		changed = threadJumps(m) || changed
		changed = elideNops(m) || changed
		if !changed {
			return
		}
	}
}

// foldArith applies an integer arithmetic/comparison opcode to constants.
// ok is false when the operation cannot be folded (division by zero is
// left for runtime, preserving the error).
func foldArith(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpEqInt:
		return b2i(a == b), true
	case OpNeInt:
		return b2i(a != b), true
	case OpLt:
		return b2i(a < b), true
	case OpLe:
		return b2i(a <= b), true
	case OpGt:
		return b2i(a > b), true
	case OpGe:
		return b2i(a >= b), true
	default:
		return 0, false
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// jumpTargets returns whether any instruction jumps into the half-open
// range (from, to]. Folding a multi-instruction window is only safe when
// control cannot enter its middle.
func jumpTargets(m *MethodInfo, from, to int) bool {
	for _, in := range m.Code {
		if in.Op == OpJmp || in.Op == OpJz {
			if in.A > from && in.A <= to {
				return true
			}
		}
	}
	return false
}

func foldConstants(m *MethodInfo) bool {
	changed := false
	code := m.Code
	for i := 0; i+1 < len(code); i++ {
		// const K ; neg/not
		if code[i].Op == OpConstInt && !jumpTargets(m, i, i+1) {
			switch code[i+1].Op {
			case OpNeg:
				code[i] = Instr{Op: OpConstInt, K: -code[i].K}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			case OpNot:
				code[i] = Instr{Op: OpConstInt, K: b2i(code[i].K == 0)}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			case OpJz:
				// const c ; jz L  →  jmp L (c == 0) or nothing (c != 0)
				if code[i].K == 0 {
					code[i] = Instr{Op: OpJmp, A: code[i+1].A}
				} else {
					code[i] = Instr{Op: OpNop}
				}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			case OpPopInt:
				code[i] = Instr{Op: OpNop}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			}
		}
		// const a ; const b ; binop
		if i+2 < len(code) && code[i].Op == OpConstInt && code[i+1].Op == OpConstInt &&
			!jumpTargets(m, i, i+2) {
			if v, ok := foldArith(code[i+2].Op, code[i].K, code[i+1].K); ok {
				code[i] = Instr{Op: OpConstInt, K: v}
				code[i+1] = Instr{Op: OpNop}
				code[i+2] = Instr{Op: OpNop}
				changed = true
			}
		}
	}
	return changed
}

// threadJumps redirects jumps whose target is an unconditional jump.
func threadJumps(m *MethodInfo) bool {
	changed := false
	for i := range m.Code {
		in := &m.Code[i]
		if in.Op != OpJmp && in.Op != OpJz {
			continue
		}
		seen := 0
		for in.A < len(m.Code) && m.Code[in.A].Op == OpJmp && seen < len(m.Code) {
			next := m.Code[in.A].A
			if next == in.A {
				break // self-loop: leave it
			}
			in.A = next
			seen++
			changed = true
		}
	}
	return changed
}

// elideNops removes OpNop instructions, remapping jump targets and the
// position table.
func elideNops(m *MethodInfo) bool {
	nops := 0
	for _, in := range m.Code {
		if in.Op == OpNop {
			nops++
		}
	}
	if nops == 0 {
		return false
	}
	// newPC[i] = position of instruction i after compaction (for a nop, the
	// position of the next surviving instruction).
	newPC := make([]int, len(m.Code)+1)
	pc := 0
	for i, in := range m.Code {
		newPC[i] = pc
		if in.Op != OpNop {
			pc++
		}
	}
	newPC[len(m.Code)] = pc
	out := make([]Instr, 0, pc)
	pos := make([]Pos, 0, pc)
	for i, in := range m.Code {
		if in.Op == OpNop {
			continue
		}
		if in.Op == OpJmp || in.Op == OpJz {
			in.A = newPC[in.A]
		}
		out = append(out, in)
		pos = append(pos, m.Pos[i])
	}
	m.Code = out
	m.Pos = pos
	return true
}
