package fleet

import (
	"encoding/json"
	"fmt"
	"testing"

	"gcassert/internal/flight"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// ingestCensusSeries seals and ingests one census snapshot per element of
// words for the given instance: a (type, site) series as the exporter would
// ship it over successive collections.
func ingestCensusSeries(t *testing.T, store *Store, instanceID, typeName, site string, words []uint64) {
	t.Helper()
	id := version.NewIdentity(instanceID)
	for i, w := range words {
		snap := heapdump.Snapshot{
			GC:         uint64(i),
			Reason:     "heap-growth",
			TotalWords: w + 64,
			Types: []heapdump.TypeCensus{
				{TypeName: typeName, Objects: w / 4, Words: w},
				{TypeName: "app/Steady", Objects: 16, Words: 64},
			},
			Sites: []heapdump.SiteCensus{
				{TypeName: typeName, Site: site, Objects: w / 4, Words: w},
				{TypeName: "app/Steady", Site: "init", Objects: 16, Words: 64},
			},
		}
		payload, err := json.Marshal(&snap)
		if err != nil {
			t.Fatal(err)
		}
		env, err := Seal(KindCensus, "reg1-leaks-test", id, int64(1000+i), payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Ingest(env, int64(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRankLeaksFindsTheLeakyReplica is the cross-instance diff in miniature:
// three instances, one growing. The growing (type, site) must rank first,
// with the instance counts saying "1 of 3 growing".
func TestRankLeaksFindsTheLeakyReplica(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	ingestCensusSeries(t, store, "replica-a", "app/Cache", "svc.mj:30", []uint64{100, 100, 100, 100})
	ingestCensusSeries(t, store, "replica-b", "app/Cache", "svc.mj:30", []uint64{100, 100, 100, 100})
	ingestCensusSeries(t, store, "replica-c", "app/Cache", "svc.mj:30", []uint64{100, 300, 500, 700})

	doc := RankLeaks(store, 10, 1)
	if doc.Instances != 3 {
		t.Fatalf("instances = %d, want 3", doc.Instances)
	}
	if len(doc.Suspects) == 0 {
		t.Fatal("no suspects found")
	}
	top := doc.Suspects[0]
	if top.TypeName != "app/Cache" || top.Site != "svc.mj:30" {
		t.Fatalf("top suspect = (%s, %s), want the growing cache", top.TypeName, top.Site)
	}
	if top.InstancesReporting != 3 || top.InstancesGrowing != 1 {
		t.Fatalf("suspect counts = %d reporting / %d growing, want 3 / 1",
			top.InstancesReporting, top.InstancesGrowing)
	}
	if top.MeanSlopeWordsPerGC < 150 || top.MeanSlopeWordsPerGC > 250 {
		t.Fatalf("mean slope = %v, want ~200 words/GC", top.MeanSlopeWordsPerGC)
	}
	if top.FirstSeenUnixNs != 1000 {
		t.Fatalf("first seen = %d, want the earliest capture stamp", top.FirstSeenUnixNs)
	}
	// The per-instance breakdown leads with the growing replica.
	if len(top.PerInstance) != 3 || !top.PerInstance[0].Growing || top.PerInstance[0].InstanceID != "replica-c" {
		t.Fatalf("per-instance breakdown = %+v", top.PerInstance)
	}
	// The steady type never appears: nothing grows on any replica.
	for _, s := range doc.Suspects {
		if s.TypeName == "app/Steady" {
			t.Fatalf("steady type ranked as a suspect: %+v", s)
		}
	}
}

// TestRankLeaksMinInstancesFilter: fleet-wide growth (every replica) passes
// a min-instances bar that single-replica growth fails.
func TestRankLeaksMinInstancesFilter(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ingestCensusSeries(t, store, "replica-a", "app/Everywhere", "a.mj:1", []uint64{10, 20, 30})
	ingestCensusSeries(t, store, "replica-b", "app/Everywhere", "a.mj:1", []uint64{10, 20, 30})
	ingestCensusSeries(t, store, "replica-c", "app/OneOff", "b.mj:2", []uint64{10, 20, 30})

	doc := RankLeaks(store, 0, 2)
	for _, s := range doc.Suspects {
		if s.TypeName == "app/OneOff" {
			t.Fatal("single-replica growth survived min-instances=2")
		}
	}
	found := false
	for _, s := range doc.Suspects {
		if s.TypeName == "app/Everywhere" {
			found = true
			if s.InstancesGrowing != 2 {
				t.Fatalf("everywhere suspect growing on %d instances, want 2", s.InstancesGrowing)
			}
		}
	}
	if !found {
		t.Fatal("fleet-wide growth missing from min-instances=2 diff")
	}
}

// TestRankLeaksDedupeAwareAttribution: when two instances ship identical
// census content, the store holds one envelope — but the diff must still
// credit the series to both instances.
func TestRankLeaksDedupeAwareAttribution(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical growing series from two replicas: every snapshot dedupes.
	for _, id := range []string{"replica-a", "replica-b"} {
		ingestCensusSeries(t, store, id, "app/Twin", "t.mj:5", []uint64{50, 150, 250})
	}
	if st := store.Stats(); st.Deduped == 0 {
		t.Fatalf("test setup: expected dedupe hits, stats = %+v", st)
	}

	doc := RankLeaks(store, 0, 1)
	var twin *Leak
	for i := range doc.Suspects {
		if doc.Suspects[i].TypeName == "app/Twin" {
			twin = &doc.Suspects[i]
		}
	}
	if twin == nil {
		t.Fatal("deduped series vanished from the diff")
	}
	if twin.InstancesReporting != 2 || twin.InstancesGrowing != 2 {
		t.Fatalf("twin counts = %d reporting / %d growing, want 2 / 2",
			twin.InstancesReporting, twin.InstancesGrowing)
	}
}

// TestRankLeaksSamplePaths: violation paths from ingested flight bundles
// attach to matching suspects.
func TestRankLeaksSamplePaths(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ingestCensusSeries(t, store, "replica-a", "app/Cache", "svc.mj:30", []uint64{100, 300, 500})

	bundle := flight.Bundle{
		SchemaVersion: flight.SchemaVersion,
		Violations: []flight.ViolationRecord{
			{TypeName: "app/Cache", Root: "global:cache", Path: []string{"table", "[3]", "entry"}},
			{TypeName: "app/Other", Root: "stack:0", Path: []string{"x"}},
		},
	}
	payload, err := json.Marshal(&bundle)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(KindFlight, "reg1-leaks-test", version.NewIdentity("replica-a"), 5000, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(env, 5000); err != nil {
		t.Fatal(err)
	}

	doc := RankLeaks(store, 1, 1)
	if len(doc.Suspects) != 1 {
		t.Fatalf("suspects = %d, want 1", len(doc.Suspects))
	}
	paths := doc.Suspects[0].SamplePaths
	if len(paths) != 1 {
		t.Fatalf("sample paths = %v, want exactly the matching violation", paths)
	}
	want := "global:cache -> table -> [3] -> entry"
	if paths[0] != want {
		t.Fatalf("sample path = %q, want %q", paths[0], want)
	}
}

func TestRankLeaksTopBound(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// One instance, three snapshots, five types all growing — type T_i at
	// slope proportional to i+1.
	id := version.NewIdentity("replica-a")
	for j := 0; j < 3; j++ {
		snap := heapdump.Snapshot{GC: uint64(j), Reason: "heap-growth"}
		for i := 0; i < 5; i++ {
			w := uint64(10 * (i + 1) * (2*j + 1))
			snap.Sites = append(snap.Sites, heapdump.SiteCensus{
				TypeName: fmt.Sprintf("app/T%d", i),
				Site:     fmt.Sprintf("s.mj:%d", i),
				Words:    w,
			})
			snap.TotalWords += w
		}
		payload, err := json.Marshal(&snap)
		if err != nil {
			t.Fatal(err)
		}
		env, err := Seal(KindCensus, "reg1-leaks-test", id, int64(1000+j), payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Ingest(env, int64(2000+j)); err != nil {
			t.Fatal(err)
		}
	}
	doc := RankLeaks(store, 2, 1)
	if len(doc.Suspects) != 2 {
		t.Fatalf("top=2 returned %d suspects", len(doc.Suspects))
	}
	// Fastest-growing type first.
	if doc.Suspects[0].TypeName != "app/T4" {
		t.Fatalf("top suspect = %s, want the steepest series app/T4", doc.Suspects[0].TypeName)
	}
}
