package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcassert/internal/version"
)

func sealTestEnvelope(t *testing.T, instanceID string, payload string) Envelope {
	t.Helper()
	env, err := Seal(KindCensus, "reg1-store-test", version.NewIdentity(instanceID), 42, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func countStoreFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestStoreDoubleIngestStoresOnce is the dedupe acceptance property: the
// same bundle ingested twice — even from two different instances — occupies
// one slot and one file, while both instances stay attributed.
func TestStoreDoubleIngestStoresOnce(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	payload := `{"gc":1,"types":[{"type_name":"T","words":8}]}`
	envA := sealTestEnvelope(t, "replica-a", payload)
	envB := sealTestEnvelope(t, "replica-b", payload)
	if envA.Hash != envB.Hash {
		t.Fatal("test setup broken: same payload sealed to different hashes")
	}

	added, err := store.Ingest(envA, 100)
	if err != nil || !added {
		t.Fatalf("first ingest: added=%v err=%v, want true, nil", added, err)
	}
	added, err = store.Ingest(envB, 200)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("second ingest of identical content reported as new")
	}
	// Resend from an already-known instance: still deduped.
	if added, _ := store.Ingest(envA, 300); added {
		t.Fatal("resend stored a duplicate")
	}

	st := store.Stats()
	if st.Unique != 1 || st.Ingested != 3 || st.Deduped != 2 {
		t.Fatalf("stats = %+v, want unique=1 ingested=3 deduped=2", st)
	}
	if got := st.DedupeRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("dedupe ratio = %v, want 2/3", got)
	}
	if n := countStoreFiles(t, dir); n != 1 {
		t.Fatalf("store holds %d files, want 1", n)
	}

	metas := store.List()
	if len(metas) != 1 {
		t.Fatalf("index has %d entries, want 1", len(metas))
	}
	m := metas[0]
	if len(m.Instances) != 2 || m.Instances[0] != "replica-a" || m.Instances[1] != "replica-b" {
		t.Fatalf("instances = %v, want [replica-a replica-b]", m.Instances)
	}
	if m.Seen != 3 {
		t.Fatalf("seen = %d, want 3", m.Seen)
	}
	if m.FirstReceivedUnixNs != 100 {
		t.Fatalf("first received = %d, want the first ingest's stamp", m.FirstReceivedUnixNs)
	}
}

func TestStoreRejectsBadEnvelopes(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	env := sealTestEnvelope(t, "replica-a", `{"gc":1}`)
	env.Hash = "sha256-" + strings.Repeat("0", 64)
	if _, err := store.Ingest(env, 1); err == nil {
		t.Fatal("want hash-mismatch rejection")
	}
	if st := store.Stats(); st.Unique != 0 || st.Ingested != 0 {
		t.Fatalf("rejected envelope leaked into stats: %+v", st)
	}
}

func TestStoreEvictsOldestPastBound(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 5; i++ {
		env := sealTestEnvelope(t, "replica-a", fmt.Sprintf(`{"gc":%d}`, i))
		if _, err := store.Ingest(env, int64(i)); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, env.Hash)
	}
	st := store.Stats()
	if st.Unique != 3 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want unique=3 evicted=2", st)
	}
	for _, h := range hashes[:2] {
		if _, ok := store.Get(h); ok {
			t.Fatalf("oldest record %s survived eviction", h)
		}
	}
	for _, h := range hashes[2:] {
		if _, ok := store.Get(h); !ok {
			t.Fatalf("recent record %s was evicted", h)
		}
	}
	if n := countStoreFiles(t, dir); n != 3 {
		t.Fatalf("store holds %d files, want 3", n)
	}
}

// TestStoreReopenKeepsHistory: a restarted collector re-indexes its on-disk
// store and keeps deduplicating against it.
func TestStoreReopenKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := sealTestEnvelope(t, "replica-a", `{"gc":9}`)
	if _, err := store.Ingest(env, 1); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.Get(env.Hash)
	if !ok {
		t.Fatal("reopened store lost the record")
	}
	if string(got.Payload) != `{"gc":9}` {
		t.Fatalf("payload corrupted across reopen: %s", got.Payload)
	}
	if added, _ := reopened.Ingest(env, 2); added {
		t.Fatal("reopened store failed to dedupe against on-disk history")
	}
	if ids := reopened.Instances(); len(ids) != 1 || ids[0] != "replica-a" {
		t.Fatalf("instances after reopen = %v", ids)
	}
}
