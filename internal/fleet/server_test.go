package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postEnvelope(t *testing.T, url string, env Envelope) *http.Response {
	t.Helper()
	body, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/fleet/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerIngestAndDedupe(t *testing.T) {
	_, ts := newTestServer(t)

	payload := `{"gc":4,"types":[{"type_name":"T","words":16}]}`
	envA := sealTestEnvelope(t, "replica-a", payload)
	envB := sealTestEnvelope(t, "replica-b", payload)

	resp := postEnvelope(t, ts.URL, envA)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: %s", resp.Status)
	}
	var ack struct {
		Hash  string `json:"hash"`
		Added bool   `json:"added"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Added || ack.Hash != envA.Hash {
		t.Fatalf("first ingest ack = %+v", ack)
	}

	resp = postEnvelope(t, ts.URL, envB)
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Added {
		t.Fatal("duplicate content acked as new")
	}

	// Stats reflect the dedupe.
	sresp, err := http.Get(ts.URL + "/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Unique      int     `json:"unique"`
		Ingested    uint64  `json:"ingested"`
		Deduped     uint64  `json:"deduped"`
		DedupeRatio float64 `json:"dedupe_ratio"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Unique != 1 || stats.Ingested != 2 || stats.Deduped != 1 || stats.DedupeRatio != 0.5 {
		t.Fatalf("stats = %+v", stats)
	}

	// Both instances are attributed.
	iresp, err := http.Get(ts.URL + "/fleet/instances")
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	var ids []string
	if err := json.NewDecoder(iresp.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("instances = %v, want both replicas", ids)
	}

	// The stored envelope is fetchable by hash.
	bresp, err := http.Get(ts.URL + "/fleet/bundle?hash=" + envA.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var got Envelope
	if err := json.NewDecoder(bresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	// The pretty-printing encoder reformats RawMessage whitespace; compare
	// compacted.
	var compact bytes.Buffer
	if err := json.Compact(&compact, got.Payload); err != nil {
		t.Fatal(err)
	}
	if compact.String() != payload {
		t.Fatalf("fetched payload = %s", compact.String())
	}
}

func TestServerRejectsBadIngest(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "pasta", http.StatusBadRequest},
		{"tampered hash", "", http.StatusBadRequest}, // body built below
	}
	env := sealTestEnvelope(t, "replica-a", `{"gc":1}`)
	env.Payload = json.RawMessage(`{"gc":2}`)
	tampered, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	cases[1].body = string(tampered)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/fleet/ingest", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %s, want %d", resp.Status, tc.want)
			}
		})
	}

	// GET on the ingest endpoint is a method error, not a panic.
	resp, err := http.Get(ts.URL + "/fleet/ingest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status = %s", resp.Status)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)

	payload := `{"gc":4,"types":[{"type_name":"T","words":16}]}`
	for _, id := range []string{"replica-a", "replica-b"} {
		resp := postEnvelope(t, ts.URL, sealTestEnvelope(t, id, payload))
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gcfleet_ingest_total 2",
		"gcfleet_dedupe_hits_total 1",
		"gcfleet_store_bundles 1",
		"gcfleet_instances 2",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestServerLeaksEndpointValidatesQuery(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/fleet/leaks?top=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}
