package fleet

import (
	"encoding/json"
	"sort"

	"gcassert/internal/slo"
)

// SLORegistryRef keys the content hash of SLO report envelopes. Bump the
// version when the report shape changes incompatibly.
const SLORegistryRef = "gcassertd-slo-v1"

// SLOReport is the payload of a KindSLO envelope: one tenant's alert
// transition plus its full SLO status at that moment. The envelope's
// Instance carries the composed "host/tenant" identity, so the tenant name
// here is a convenience for rollup rendering, not the identity of record.
type SLOReport struct {
	Tenant string         `json:"tenant"`
	Event  slo.AlertEvent `json:"event"`
	Status slo.Status     `json:"status"`
}

// SLORow is one tenant's entry in the fleet SLO rollup: the latest report
// the collector has from that composed host/tenant instance.
type SLORow struct {
	// Instance is the composed "host/tenant" instance ID that shipped the
	// report; Tenant the bare tenant name from the payload.
	Instance string `json:"instance"`
	Tenant   string `json:"tenant"`
	// State is the worst alert state across the tenant's objectives
	// ("firing" > "pending" > "ok"), Severity the severity of that worst
	// rule.
	State    string `json:"state"`
	Severity string `json:"severity,omitempty"`
	// WorstBurn is the tenant's highest fast-rule short-window burn and
	// WorstObjective the objective producing it.
	WorstBurn      float64 `json:"worst_burn"`
	WorstObjective string  `json:"worst_objective,omitempty"`
	// MinBudgetRemaining is the lowest budget-remaining ratio across
	// objectives — the closest-to-exhausted budget.
	MinBudgetRemaining float64 `json:"min_budget_remaining"`
	Compliant          bool    `json:"compliant"`
	CapturedUnixNs     int64   `json:"captured_unix_ns"`
}

// SLORollup is the /fleet/slo response: worst-burning tenants first.
type SLORollup struct {
	// Instances counts distinct host/tenant instances with SLO reports;
	// Firing and Pending count those whose worst state is each.
	Instances int      `json:"instances"`
	Firing    int      `json:"firing"`
	Pending   int      `json:"pending"`
	Tenants   []SLORow `json:"tenants"`
}

// stateRank orders alert states for rollup sorting.
func stateRank(s string) int {
	switch s {
	case "firing":
		return 2
	case "pending":
		return 1
	}
	return 0
}

// RollupSLO aggregates the latest SLO report per composed host/tenant
// instance and ranks tenants worst first: firing before pending before ok,
// then by fast-burn rate descending. top bounds the returned rows (0 = all).
func RollupSLO(store *Store, top int) SLORollup {
	type latest struct {
		report SLOReport
		meta   Meta
	}
	byInstance := map[string]latest{}
	store.ForEach(func(m Meta, env Envelope) bool {
		if m.Kind != KindSLO {
			return true
		}
		var rep SLOReport
		if json.Unmarshal(env.Payload, &rep) != nil {
			return true
		}
		id := env.Instance.InstanceID
		if cur, ok := byInstance[id]; ok && cur.meta.CapturedUnixNs >= m.CapturedUnixNs {
			return true
		}
		byInstance[id] = latest{report: rep, meta: m}
		return true
	})

	out := SLORollup{Instances: len(byInstance)}
	for id, l := range byInstance {
		row := SLORow{
			Instance:           id,
			Tenant:             l.report.Tenant,
			State:              "ok",
			WorstBurn:          l.report.Status.WorstBurn,
			WorstObjective:     l.report.Status.WorstObjective,
			MinBudgetRemaining: 1,
			Compliant:          l.report.Status.Compliant,
			CapturedUnixNs:     l.meta.CapturedUnixNs,
		}
		for _, o := range l.report.Status.Objectives {
			if o.BudgetRemainingRatio < row.MinBudgetRemaining {
				row.MinBudgetRemaining = o.BudgetRemainingRatio
			}
			for _, a := range o.Alerts {
				if stateRank(a.State) > stateRank(row.State) {
					row.State, row.Severity = a.State, a.Severity
				}
			}
		}
		switch row.State {
		case "firing":
			out.Firing++
		case "pending":
			out.Pending++
		}
		out.Tenants = append(out.Tenants, row)
	}
	sort.Slice(out.Tenants, func(i, j int) bool {
		a, b := out.Tenants[i], out.Tenants[j]
		if ra, rb := stateRank(a.State), stateRank(b.State); ra != rb {
			return ra > rb
		}
		if a.WorstBurn != b.WorstBurn {
			return a.WorstBurn > b.WorstBurn
		}
		return a.Instance < b.Instance
	})
	if top > 0 && len(out.Tenants) > top {
		out.Tenants = out.Tenants[:top]
	}
	return out
}
