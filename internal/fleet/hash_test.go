package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gcassert/internal/heap"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// snapshotForInstance builds a census snapshot whose *content* is fixed but
// whose volatile stamps (capture time, dense TypeIDs) vary per instance, the
// way two replicas of the same guest program would report it.
func snapshotForInstance(unixNs int64, nodeID, leafID heap.TypeID) heapdump.Snapshot {
	return heapdump.Snapshot{
		GC:             7,
		Reason:         "heap-growth",
		UnixNs:         unixNs,
		TotalObjects:   120,
		TotalWords:     480,
		TotalCellWords: 512,
		Types: []heapdump.TypeCensus{
			{Type: nodeID, TypeName: "list/Node", Objects: 100, Words: 400, CellWords: 420},
			{Type: leafID, TypeName: "list/Leaf", Objects: 20, Words: 80, CellWords: 92},
		},
		Sites: []heapdump.SiteCensus{
			{TypeName: "list/Node", Site: "main.mj:12", Objects: 100, Words: 400},
		},
	}
}

func TestContentHashIdenticalAcrossInstances(t *testing.T) {
	// Instance A and instance B observe the same heap content, but at
	// different wall-clock times and with type IDs assigned in a different
	// registration order. Their sealed envelopes must carry the same hash.
	snapA := snapshotForInstance(1111, 5, 9)
	snapB := snapshotForInstance(2222, 9, 5)
	payloadA, err := json.Marshal(&snapA)
	if err != nil {
		t.Fatal(err)
	}
	payloadB, err := json.Marshal(&snapB)
	if err != nil {
		t.Fatal(err)
	}

	idA := version.NewIdentity("replica-a")
	idB := version.NewIdentity("replica-b")
	envA, err := Seal(KindCensus, "reg1-test", idA, 1111, payloadA)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := Seal(KindCensus, "reg1-test", idB, 2222, payloadB)
	if err != nil {
		t.Fatal(err)
	}
	if envA.Hash != envB.Hash {
		t.Fatalf("identical content from two instances hashed differently:\n  a=%s\n  b=%s", envA.Hash, envB.Hash)
	}
	// The identity travels alongside the hash, not inside it.
	if envA.Instance.InstanceID == envB.Instance.InstanceID {
		t.Fatal("test is vacuous: both envelopes claim the same instance")
	}
	if err := envA.Verify(); err != nil {
		t.Fatalf("sealed envelope fails verification: %v", err)
	}
}

func TestContentHashKeyOrderIndependent(t *testing.T) {
	a := []byte(`{"gc":3,"total_words":10,"types":[{"type_name":"T","words":10}]}`)
	b := []byte(`{"types":[{"words":10,"type_name":"T"}],"total_words":10,"gc":3}`)
	ca, err := CanonicalPayload(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalPayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("key order changed canonical form:\n  a=%s\n  b=%s", ca, cb)
	}
}

func TestContentHashDomainSeparation(t *testing.T) {
	canon := []byte(`{"x":1}`)
	if ContentHash(KindCensus, "reg1-a", canon) == ContentHash(KindFlight, "reg1-a", canon) {
		t.Fatal("same bytes under different kinds must not collide")
	}
	if ContentHash(KindCensus, "reg1-a", canon) == ContentHash(KindCensus, "reg1-b", canon) {
		t.Fatal("same bytes under different registry refs must not collide")
	}
}

// TestContentHashRandomizedCorpus is the collision half of the hashing
// property: across a randomized corpus of snapshot payloads, equal content
// always hashes equal and distinct content never collides.
func TestContentHashRandomizedCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	typeNames := []string{"a/A", "b/B", "c/C", "d/D", "e/E", "f/F", "g/G", "h/H"}

	randomSnapshot := func() heapdump.Snapshot {
		n := 1 + rng.Intn(len(typeNames))
		perm := rng.Perm(len(typeNames))[:n]
		s := heapdump.Snapshot{
			GC:     uint64(rng.Intn(50)),
			Reason: []string{"heap-growth", "forced", "assert"}[rng.Intn(3)],
			UnixNs: rng.Int63(), // volatile: must not affect the hash
		}
		for _, pi := range perm {
			tc := heapdump.TypeCensus{
				Type:     heap.TypeID(rng.Intn(200)), // volatile
				TypeName: typeNames[pi],
				Objects:  uint64(rng.Intn(1_000_000)),
				Words:    uint64(rng.Int63n(1 << 40)), // exercises large ints
			}
			s.Types = append(s.Types, tc)
			s.TotalObjects += tc.Objects
			s.TotalWords += tc.Words
		}
		return s
	}

	// canonicalKey is the content identity a correct hash must respect.
	canonicalKey := func(s heapdump.Snapshot) string {
		s.UnixNs = 0
		for i := range s.Types {
			s.Types[i].Type = 0
		}
		b, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	hashes := map[string]string{} // content key -> hash
	byHash := map[string]string{} // hash -> content key
	for i := 0; i < 500; i++ {
		s := randomSnapshot()
		payload, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := CanonicalPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		h := ContentHash(KindCensus, "reg1-corpus", canon)
		key := canonicalKey(s)
		if prev, ok := hashes[key]; ok && prev != h {
			t.Fatalf("same content hashed differently:\n  %s\n  %s\nfor %s", prev, h, key)
		}
		hashes[key] = h
		if prevKey, ok := byHash[h]; ok && prevKey != key {
			t.Fatalf("hash collision between distinct contents:\n  %s\n  %s", prevKey, key)
		}
		byHash[h] = key
	}
	if len(byHash) < 100 {
		t.Fatalf("corpus degenerate: only %d distinct contents generated", len(byHash))
	}
}

func TestCanonicalPayloadPreservesLargeNumbers(t *testing.T) {
	// 9007199254740993 is not representable as a float64; a canonicalizer
	// that round-trips through float64 would corrupt it to ...992.
	raw := []byte(`{"big":9007199254740993,"neg":-9223372036854775808}`)
	canon, err := CanonicalPayload(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"9007199254740993", "-9223372036854775808"} {
		if !strings.Contains(string(canon), want) {
			t.Fatalf("canonical form %s lost literal %s", canon, want)
		}
	}
}

func TestCanonicalPayloadRejectsGarbage(t *testing.T) {
	if _, err := CanonicalPayload([]byte("not json")); err == nil {
		t.Fatal("want error for malformed payload")
	}
}

func TestRegistryRefOrderIndependent(t *testing.T) {
	regA := heap.NewRegistry()
	regA.Define("p/Node", heap.Field{Name: "next", Ref: true}, heap.Field{Name: "val"})
	regA.Define("p/Leaf", heap.Field{Name: "val"})

	regB := heap.NewRegistry()
	regB.Define("p/Leaf", heap.Field{Name: "val"})
	regB.Define("p/Node", heap.Field{Name: "next", Ref: true}, heap.Field{Name: "val"})

	refA, refB := RegistryRef(regA), RegistryRef(regB)
	if refA != refB {
		t.Fatalf("registration order changed the registry ref: %s vs %s", refA, refB)
	}

	// A layout change must change the ref: same names, different ref-ness.
	regC := heap.NewRegistry()
	regC.Define("p/Node", heap.Field{Name: "next", Ref: false}, heap.Field{Name: "val"})
	regC.Define("p/Leaf", heap.Field{Name: "val"})
	if RegistryRef(regC) == refA {
		t.Fatal("field layout change did not change the registry ref")
	}
}

func TestSealRejectsUnknownKind(t *testing.T) {
	_, err := Seal("sandwich", "reg1-x", version.NewIdentity("i"), 0, []byte(`{}`))
	if err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	env, err := Seal(KindCensus, "reg1-x", version.NewIdentity("i"), 0, []byte(`{"gc":1}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Envelope)
	}{
		{"payload swap", func(e *Envelope) { e.Payload = json.RawMessage(`{"gc":2}`) }},
		{"kind swap", func(e *Envelope) { e.Kind = KindFlight }},
		{"registry swap", func(e *Envelope) { e.RegistryRef = "reg1-other" }},
		{"schema from the future", func(e *Envelope) { e.Schema = EnvelopeSchemaVersion + 1 }},
		{"anonymous sender", func(e *Envelope) { e.Instance.InstanceID = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := env
			tc.mutate(&mutated)
			if err := mutated.Verify(); err == nil {
				t.Fatalf("%s passed verification", tc.name)
			}
		})
	}
}

func TestVerifyErrorNamesSchema(t *testing.T) {
	env, err := Seal(KindCensus, "reg1-x", version.NewIdentity("i"), 0, []byte(`{"gc":1}`))
	if err != nil {
		t.Fatal(err)
	}
	env.Schema = 99
	verr := env.Verify()
	if verr == nil {
		t.Fatal("want schema error")
	}
	want := fmt.Sprintf("schema %d", 99)
	if !strings.Contains(verr.Error(), want) {
		t.Fatalf("schema error %q does not name the offending version (%s)", verr, want)
	}
}
