package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gcassert/internal/telemetry"
)

// maxEnvelopeBytes bounds one ingested envelope (a census snapshot is a few
// KiB; a flight bundle with a heap profile a few hundred KiB).
const maxEnvelopeBytes = 16 << 20

// Server is the gcfleet collector: it ingests envelopes from many gcassert
// instances over HTTP, deduplicates them by content hash into a Store, and
// answers fleet-level queries. Metrics ride the same telemetry registry the
// per-process surface uses, so one Prometheus scrape config covers both.
type Server struct {
	store *Store
	reg   *telemetry.Registry

	ingestOK    *telemetry.Counter
	ingestBad   *telemetry.Counter
	ingestBytes *telemetry.Counter
	dedupeHits  *telemetry.Counter
	storeSize   *telemetry.Gauge
	storeBytes  *telemetry.Gauge
	instances   *telemetry.Gauge

	nowNs func() int64
}

// NewServer wraps a store in the collector's HTTP surface.
func NewServer(store *Store) *Server {
	reg := telemetry.NewRegistry()
	s := &Server{
		store: store,
		reg:   reg,
		ingestOK: reg.Counter("gcfleet_ingest_total",
			"Envelopes accepted by the collector."),
		ingestBad: reg.Counter("gcfleet_ingest_rejected_total",
			"Envelopes rejected (bad schema, hash mismatch, oversized)."),
		ingestBytes: reg.Counter("gcfleet_ingest_bytes_total",
			"Payload bytes accepted by the collector (pre-dedupe)."),
		dedupeHits: reg.Counter("gcfleet_dedupe_hits_total",
			"Accepted envelopes whose content hash was already stored."),
		storeSize: reg.Gauge("gcfleet_store_bundles",
			"Unique artifacts currently stored."),
		storeBytes: reg.Gauge("gcfleet_store_bytes",
			"Payload bytes currently stored."),
		instances: reg.Gauge("gcfleet_instances",
			"Distinct instance IDs the store has seen."),
		nowNs: func() int64 { return time.Now().UnixNano() },
	}
	s.syncGauges()
	return s
}

// Registry exposes the server's metrics registry (for extra collector-side
// metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Store exposes the underlying store.
func (s *Server) Store() *Store { return s.store }

func (s *Server) syncGauges() {
	st := s.store.Stats()
	s.storeSize.Set(int64(st.Unique))
	s.storeBytes.Set(st.Bytes)
	s.instances.Set(int64(st.Instances))
}

// Handler returns the collector's HTTP surface:
//
//	POST /fleet/ingest      ingest one envelope (JSON body)
//	GET  /fleet/bundles     store index (JSON array of Meta, newest first)
//	GET  /fleet/bundle?hash=  one stored envelope
//	GET  /fleet/instances   instance IDs seen (JSON array)
//	GET  /fleet/stats       store stats incl. dedupe ratio (JSON)
//	GET  /fleet/leaks       cross-instance leak diff (?top=N&min-instances=N)
//	GET  /fleet/slo         fleet SLO rollup, worst-burning tenants first (?top=N)
//	GET  /fleet/traces      stored request-to-GC traces, newest first (?top=N)
//	GET  /metrics           Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/ingest", s.handleIngest)
	mux.HandleFunc("/fleet/bundles", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.store.List())
	})
	mux.HandleFunc("/fleet/bundle", func(w http.ResponseWriter, r *http.Request) {
		hash := r.URL.Query().Get("hash")
		env, ok := s.store.Get(hash)
		if !ok {
			http.Error(w, fmt.Sprintf("no bundle %q", hash), http.StatusNotFound)
			return
		}
		writeJSON(w, env)
	})
	mux.HandleFunc("/fleet/instances", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.store.Instances())
	})
	mux.HandleFunc("/fleet/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := s.store.Stats()
		writeJSON(w, struct {
			StoreStats
			DedupeRatio float64 `json:"dedupe_ratio"`
		}{st, st.DedupeRatio()})
	})
	mux.HandleFunc("/fleet/leaks", func(w http.ResponseWriter, r *http.Request) {
		top, err := intQuery(r, "top", 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		min, err := intQuery(r, "min-instances", 1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, RankLeaks(s.store, top, min))
	})
	mux.HandleFunc("/fleet/slo", func(w http.ResponseWriter, r *http.Request) {
		top, err := intQuery(r, "top", 20)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, RollupSLO(s.store, top))
	})
	mux.HandleFunc("/fleet/traces", func(w http.ResponseWriter, r *http.Request) {
		top, err := intQuery(r, "top", 50)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, ListTraces(s.store, top))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an envelope to ingest", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
	if err != nil {
		s.ingestBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxEnvelopeBytes {
		s.ingestBad.Inc()
		http.Error(w, "envelope exceeds size bound", http.StatusRequestEntityTooLarge)
		return
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		s.ingestBad.Inc()
		http.Error(w, fmt.Sprintf("parsing envelope: %v", err), http.StatusBadRequest)
		return
	}
	added, err := s.store.Ingest(env, s.nowNs())
	if err != nil {
		s.ingestBad.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.ingestOK.Inc()
	s.ingestBytes.Add(uint64(len(env.Payload)))
	if !added {
		s.dedupeHits.Inc()
	}
	s.syncGauges()
	writeJSON(w, struct {
		Hash  string `json:"hash"`
		Added bool   `json:"added"`
	}{env.Hash, added})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func intQuery(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s=%q (want a non-negative integer)", name, s)
	}
	return n, nil
}
