package fleet

import (
	"encoding/json"
	"fmt"

	"gcassert/internal/version"
)

// EnvelopeSchemaVersion versions the envelope wire format. The collector
// rejects unknown versions with a clear error rather than misparsing.
const EnvelopeSchemaVersion = 1

// Artifact kinds carried by envelopes.
const (
	// KindCensus is a single heapdump census snapshot (one collection's
	// per-type / per-site live footprint).
	KindCensus = "census"
	// KindFlight is a flight-recorder forensic bundle.
	KindFlight = "flight"
	// KindSLO is a per-tenant SLO report: an alert transition plus the
	// tenant's full SLO status document at that moment.
	KindSLO = "slo"
	// KindTrace is a tail-sampled request-to-GC trace document: one drive
	// batch's span tree, with each intersecting collection as a child span.
	KindTrace = "trace"
)

// knownKind reports whether k is an artifact kind this package speaks.
func knownKind(k string) bool {
	return k == KindCensus || k == KindFlight || k == KindSLO || k == KindTrace
}

// Envelope is the wire unit the collector ingests: one content-addressed
// artifact plus the identity that produced it. Hash covers Kind,
// RegistryRef and the canonical form of Payload — and nothing else, so two
// instances shipping identical content produce identical hashes while
// CapturedUnixNs and Instance still say who observed it when.
type Envelope struct {
	Schema         int              `json:"schema"`
	Kind           string           `json:"kind"`
	RegistryRef    string           `json:"registry_ref"`
	Hash           string           `json:"hash"`
	CapturedUnixNs int64            `json:"captured_unix_ns"`
	Instance       version.Identity `json:"instance"`
	Payload        json.RawMessage  `json:"payload"`
}

// Seal builds an envelope around payload, canonicalizing it and computing
// the content hash.
func Seal(kind, registryRef string, instance version.Identity, capturedNs int64, payload []byte) (Envelope, error) {
	if !knownKind(kind) {
		return Envelope{}, fmt.Errorf("fleet: unknown artifact kind %q", kind)
	}
	canon, err := CanonicalPayload(payload)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{
		Schema:         EnvelopeSchemaVersion,
		Kind:           kind,
		RegistryRef:    registryRef,
		Hash:           ContentHash(kind, registryRef, canon),
		CapturedUnixNs: capturedNs,
		Instance:       instance,
		Payload:        json.RawMessage(payload),
	}, nil
}

// Verify recomputes the content hash from the payload and checks it against
// the envelope's claim. The collector verifies every ingested envelope: a
// store keyed by unverified hashes would let one corrupt sender shadow
// another instance's content.
func (e *Envelope) Verify() error {
	if e.Schema != EnvelopeSchemaVersion {
		return fmt.Errorf("fleet: envelope schema %d not supported (this collector speaks %d)",
			e.Schema, EnvelopeSchemaVersion)
	}
	if !knownKind(e.Kind) {
		return fmt.Errorf("fleet: unknown artifact kind %q", e.Kind)
	}
	if e.Instance.InstanceID == "" {
		return fmt.Errorf("fleet: envelope carries no instance ID")
	}
	canon, err := CanonicalPayload(e.Payload)
	if err != nil {
		return err
	}
	if want := ContentHash(e.Kind, e.RegistryRef, canon); e.Hash != want {
		return fmt.Errorf("fleet: content hash mismatch: envelope says %s, payload hashes to %s", e.Hash, want)
	}
	return nil
}
