package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Meta is the store's index entry for one unique artifact: the content
// identity plus every instance that shipped it. Instances is the dedupe
// story made visible — one stored payload, N reporters.
type Meta struct {
	Hash                string `json:"hash"`
	Kind                string `json:"kind"`
	RegistryRef         string `json:"registry_ref"`
	CapturedUnixNs      int64  `json:"captured_unix_ns"`
	FirstReceivedUnixNs int64  `json:"first_received_unix_ns"`
	Bytes               int64  `json:"bytes"`
	// Instances lists every instance ID that ingested this hash, sorted;
	// Seen counts total ingests (>= len(Instances): one instance may resend).
	Instances []string `json:"instances"`
	Seen      uint64   `json:"seen"`
}

// storedRecord is the on-disk unit: index metadata plus the envelope as
// first received. Re-ingests update the metadata in place.
type storedRecord struct {
	Meta     Meta     `json:"meta"`
	Envelope Envelope `json:"envelope"`
}

// StoreStats summarizes a store.
type StoreStats struct {
	// Unique is the number of distinct hashes held; Ingested counts every
	// accepted envelope this session; Deduped those that matched an
	// existing hash. DedupeRatio = Deduped / Ingested.
	Unique    int    `json:"unique"`
	Ingested  uint64 `json:"ingested"`
	Deduped   uint64 `json:"deduped"`
	Evicted   uint64 `json:"evicted"`
	Bytes     int64  `json:"bytes"`
	Instances int    `json:"instances"`
}

// DedupeRatio is the fraction of accepted envelopes that were duplicates of
// already-stored content (0 when nothing was ingested yet).
func (s StoreStats) DedupeRatio() float64 {
	if s.Ingested == 0 {
		return 0
	}
	return float64(s.Deduped) / float64(s.Ingested)
}

// Store is a bounded on-disk content-addressed bundle store. Every unique
// hash is one file under dir (sharded by hash prefix); ingesting a hash the
// store already holds records the new instance and stores nothing. When the
// bound is exceeded the oldest-received artifact is evicted. Safe for
// concurrent use.
type Store struct {
	dir string
	max int

	mu     sync.Mutex
	byHash map[string]*storedRecord
	stats  StoreStats
}

// DefaultMaxBundles bounds a store when the caller does not.
const DefaultMaxBundles = 4096

// OpenStore opens (creating if needed) a store rooted at dir, bounded to at
// most max unique artifacts (<= 0: DefaultMaxBundles). Existing artifacts
// are re-indexed from disk, so a restarted collector keeps its history.
func OpenStore(dir string, max int) (*Store, error) {
	if max <= 0 {
		max = DefaultMaxBundles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: opening store: %w", err)
	}
	s := &Store{dir: dir, max: max, byHash: make(map[string]*storedRecord)}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rec storedRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("fleet: corrupt store record %s: %w", path, err)
		}
		s.byHash[rec.Meta.Hash] = &rec
		s.stats.Bytes += rec.Meta.Bytes
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.stats.Unique = len(s.byHash)
	s.stats.Instances = len(s.instanceSetLocked())
	return s, nil
}

// path shards records by hash suffix so one directory never holds the whole
// store.
func (s *Store) path(hash string) string {
	shard := "xx"
	if i := strings.IndexByte(hash, '-'); i >= 0 && len(hash) > i+3 {
		shard = hash[i+1 : i+3]
	}
	return filepath.Join(s.dir, shard, hash+".json")
}

// Ingest verifies an envelope and stores it (or records the duplicate).
// It returns true when the content was new to the store.
func (s *Store) Ingest(env Envelope, receivedNs int64) (added bool, err error) {
	if err := env.Verify(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Ingested++
	rec, ok := s.byHash[env.Hash]
	if ok {
		s.stats.Deduped++
		rec.Meta.Seen++
		if !containsString(rec.Meta.Instances, env.Instance.InstanceID) {
			rec.Meta.Instances = append(rec.Meta.Instances, env.Instance.InstanceID)
			sort.Strings(rec.Meta.Instances)
			s.stats.Instances = len(s.instanceSetLocked())
			if err := s.writeLocked(rec); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	size := int64(len(env.Payload))
	rec = &storedRecord{
		Meta: Meta{
			Hash:                env.Hash,
			Kind:                env.Kind,
			RegistryRef:         env.RegistryRef,
			CapturedUnixNs:      env.CapturedUnixNs,
			FirstReceivedUnixNs: receivedNs,
			Bytes:               size,
			Instances:           []string{env.Instance.InstanceID},
			Seen:                1,
		},
		Envelope: env,
	}
	if err := s.writeLocked(rec); err != nil {
		return false, err
	}
	s.byHash[env.Hash] = rec
	s.stats.Unique = len(s.byHash)
	s.stats.Bytes += size
	s.stats.Instances = len(s.instanceSetLocked())
	s.evictLocked()
	return true, nil
}

func (s *Store) writeLocked(rec *storedRecord) error {
	p := s.path(rec.Meta.Hash)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("fleet: storing bundle: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: storing bundle: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fleet: storing bundle: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("fleet: storing bundle: %w", err)
	}
	return nil
}

// evictLocked drops oldest-received records until the bound holds.
func (s *Store) evictLocked() {
	for len(s.byHash) > s.max {
		var oldest *storedRecord
		for _, rec := range s.byHash {
			if oldest == nil || rec.Meta.FirstReceivedUnixNs < oldest.Meta.FirstReceivedUnixNs {
				oldest = rec
			}
		}
		delete(s.byHash, oldest.Meta.Hash)
		_ = os.Remove(s.path(oldest.Meta.Hash))
		s.stats.Unique = len(s.byHash)
		s.stats.Bytes -= oldest.Meta.Bytes
		s.stats.Evicted++
	}
}

func (s *Store) instanceSetLocked() map[string]struct{} {
	set := map[string]struct{}{}
	for _, rec := range s.byHash {
		for _, id := range rec.Meta.Instances {
			set[id] = struct{}{}
		}
	}
	return set
}

// Stats returns the store's summary.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// List returns every index entry, newest first by capture time (receive
// time breaking ties).
func (s *Store) List() []Meta {
	s.mu.Lock()
	out := make([]Meta, 0, len(s.byHash))
	for _, rec := range s.byHash {
		m := rec.Meta
		m.Instances = append([]string(nil), rec.Meta.Instances...)
		out = append(out, m)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CapturedUnixNs != out[j].CapturedUnixNs {
			return out[i].CapturedUnixNs > out[j].CapturedUnixNs
		}
		if out[i].FirstReceivedUnixNs != out[j].FirstReceivedUnixNs {
			return out[i].FirstReceivedUnixNs > out[j].FirstReceivedUnixNs
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// Get returns the stored envelope for a hash.
func (s *Store) Get(hash string) (Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byHash[hash]
	if !ok {
		return Envelope{}, false
	}
	return rec.Envelope, true
}

// Instances returns every instance ID the store has seen, sorted.
func (s *Store) Instances() []string {
	s.mu.Lock()
	set := s.instanceSetLocked()
	s.mu.Unlock()
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ForEach visits every stored record (meta + envelope) in unspecified
// order; returning false stops the walk. Envelopes must not be mutated.
func (s *Store) ForEach(fn func(Meta, Envelope) bool) {
	s.mu.Lock()
	recs := make([]*storedRecord, 0, len(s.byHash))
	for _, rec := range s.byHash {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	for _, rec := range recs {
		if !fn(rec.Meta, rec.Envelope) {
			return
		}
	}
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
