package fleet

import (
	"encoding/json"
	"sort"

	"gcassert/internal/trace"
)

// TraceRegistryRef keys the content hash of trace envelopes. Bump the
// version when the trace document shape changes incompatibly.
const TraceRegistryRef = "gcassertd-trace-v1"

// TraceRow is one stored trace in the fleet trace index: enough to triage
// (who, when, why kept, how bad) without pulling the full span tree. The
// envelope hash retrieves the document via /fleet/bundle?hash=.
type TraceRow struct {
	// Instance is the composed "host/tenant" identity that shipped the
	// trace; Tenant the bare tenant name from the document.
	Instance string `json:"instance"`
	Tenant   string `json:"tenant"`
	TraceID  string `json:"trace_id"`
	// Reason is the tail sampler's keep reason ("violation", "slo-bad",
	// "slow-pause", "probability").
	Reason         string `json:"reason"`
	StartUnixNs    int64  `json:"start_unix_ns"`
	DurNs          int64  `json:"dur_ns"`
	Requests       int    `json:"requests"`
	GCs            int    `json:"gcs"`
	Violations     int    `json:"violations"`
	GCPauseNs      int64  `json:"gc_pause_ns"`
	Hash           string `json:"hash"`
	CapturedUnixNs int64  `json:"captured_unix_ns"`
}

// TraceList is the /fleet/traces response: newest captures first.
type TraceList struct {
	// Total counts stored trace envelopes before the top bound.
	Total  int        `json:"total"`
	Traces []TraceRow `json:"traces,omitempty"`
}

// ListTraces indexes the store's trace envelopes, newest first. top bounds
// the returned rows (0 = all). Envelopes whose payload does not parse as a
// trace document are skipped — a collector store can hold envelopes from
// newer senders.
func ListTraces(store *Store, top int) TraceList {
	var out TraceList
	store.ForEach(func(m Meta, env Envelope) bool {
		if m.Kind != KindTrace {
			return true
		}
		var doc trace.Document
		if json.Unmarshal(env.Payload, &doc) != nil {
			return true
		}
		out.Traces = append(out.Traces, TraceRow{
			Instance:       env.Instance.InstanceID,
			Tenant:         doc.Tenant,
			TraceID:        doc.TraceID,
			Reason:         doc.SampledReason,
			StartUnixNs:    doc.StartUnixNs,
			DurNs:          doc.DurNs(),
			Requests:       doc.Requests,
			GCs:            doc.GCs,
			Violations:     doc.Violations,
			GCPauseNs:      doc.GCPauseNs,
			Hash:           m.Hash,
			CapturedUnixNs: m.CapturedUnixNs,
		})
		return true
	})
	out.Total = len(out.Traces)
	sort.Slice(out.Traces, func(i, j int) bool {
		a, b := out.Traces[i], out.Traces[j]
		if a.CapturedUnixNs != b.CapturedUnixNs {
			return a.CapturedUnixNs > b.CapturedUnixNs
		}
		return a.TraceID < b.TraceID
	})
	if top > 0 && len(out.Traces) > top {
		out.Traces = out.Traces[:top]
	}
	return out
}
