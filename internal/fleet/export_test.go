package fleet

import (
	"net/http"
	"testing"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/flight"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// fakeCensus mimics the census ring: Latest returns the snapshot for the
// most recent collection.
type fakeCensus struct {
	snap heapdump.Snapshot
	ok   bool
}

func (f *fakeCensus) latest() (heapdump.Snapshot, bool) { return f.snap, f.ok }

func (f *fakeCensus) advance(gc uint64, words uint64) {
	f.snap = heapdump.Snapshot{
		GC:         gc,
		Reason:     "forced",
		UnixNs:     int64(gc) * 1000,
		TotalWords: words,
		Types:      []heapdump.TypeCensus{{TypeName: "app/T", Objects: words / 4, Words: words}},
	}
	f.ok = true
}

func waitForStore(t *testing.T, store *Store, wantUnique int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if store.Stats().Unique >= wantUnique {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("store never reached %d unique bundles (stats %+v)", wantUnique, store.Stats())
}

func TestExporterIntervalExport(t *testing.T) {
	srv, ts := newTestServer(t)
	census := &fakeCensus{}
	exp := NewExporter(ExportConfig{
		URL:         ts.URL,
		Every:       2,
		Identity:    version.NewIdentity("replica-a"),
		RegistryRef: "reg1-export-test",
	})
	defer exp.Close()
	exp.SetCensusSource(census.latest)

	// Collections 0 and 2 change the heap, 1 does not; every=2 exports
	// after collections 1 and 3.
	words := []uint64{100, 100, 200, 200}
	for seq := uint64(0); seq < 4; seq++ {
		census.advance(seq, words[seq])
		exp.GCEnd(&collector.Collection{Seq: seq})
	}
	waitForStore(t, srv.Store(), 2)

	st := exp.Stats()
	if st.Enqueued != 2 || st.Sent != 2 || st.Errors != 0 {
		t.Fatalf("exporter stats = %+v, want 2 enqueued, 2 sent", st)
	}
	metas := srv.Store().List()
	if len(metas) != 2 {
		t.Fatalf("store holds %d bundles, want 2 (snapshots at GC 1 and 3)", len(metas))
	}
	for _, m := range metas {
		if m.Kind != KindCensus {
			t.Fatalf("unexpected kind %q", m.Kind)
		}
		if len(m.Instances) != 1 || m.Instances[0] != "replica-a" {
			t.Fatalf("instances = %v", m.Instances)
		}
	}
}

func TestExporterViolationShipsFlightBundle(t *testing.T) {
	srv, ts := newTestServer(t)
	census := &fakeCensus{}
	exp := NewExporter(ExportConfig{
		URL:         ts.URL,
		Every:       1000, // interval effectively off
		Identity:    version.NewIdentity("replica-a"),
		RegistryRef: "reg1-export-test",
	})
	defer exp.Close()
	exp.SetCensusSource(census.latest)
	exp.SetBundleSource(func(trigger string) flight.Bundle {
		return flight.Bundle{
			SchemaVersion: flight.SchemaVersion,
			Trigger:       trigger,
			Violations: []flight.ViolationRecord{
				{TypeName: "app/T", Root: "global:g", Path: []string{"next"}},
			},
		}
	})

	// A quiet collection ships nothing.
	census.advance(0, 100)
	exp.GCEnd(&collector.Collection{Seq: 0})

	// A violation latches: the next GCEnd ships census + flight bundle.
	exp.NoteViolation()
	census.advance(1, 120)
	exp.GCEnd(&collector.Collection{Seq: 1})

	waitForStore(t, srv.Store(), 2)
	kinds := map[string]int{}
	for _, m := range srv.Store().List() {
		kinds[m.Kind]++
	}
	if kinds[KindCensus] != 1 || kinds[KindFlight] != 1 {
		t.Fatalf("stored kinds = %v, want one census + one flight bundle", kinds)
	}
}

func TestExporterIdenticalReplicasDedupe(t *testing.T) {
	srv, ts := newTestServer(t)
	for _, id := range []string{"replica-a", "replica-b"} {
		census := &fakeCensus{}
		exp := NewExporter(ExportConfig{
			URL:         ts.URL,
			Identity:    version.NewIdentity(id),
			RegistryRef: "reg1-export-test",
		})
		exp.SetCensusSource(census.latest)
		census.advance(3, 500)
		// Different instances observe at different wall-clock times...
		census.snap.UnixNs = int64(len(id)) * 777
		exp.GCEnd(&collector.Collection{Seq: 3})
		exp.Close() // flushes
	}
	// ...but identical content dedupes to one stored bundle from both.
	st := srv.Store().Stats()
	if st.Unique != 1 || st.Deduped != 1 {
		t.Fatalf("store stats = %+v, want unique=1 deduped=1", st)
	}
	if ids := srv.Store().Instances(); len(ids) != 2 {
		t.Fatalf("instances = %v, want both replicas", ids)
	}
}

func TestExporterExportLatestOnDemand(t *testing.T) {
	srv, ts := newTestServer(t)
	census := &fakeCensus{}
	exp := NewExporter(ExportConfig{
		URL:         ts.URL,
		Every:       1000,
		Identity:    version.NewIdentity("replica-a"),
		RegistryRef: "reg1-export-test",
	})
	defer exp.Close()
	exp.SetCensusSource(census.latest)

	if _, err := exp.ExportLatest(); err == nil {
		t.Fatal("want error before any collection has run")
	}
	census.advance(5, 640)
	hash, err := exp.ExportLatest()
	if err != nil {
		t.Fatal(err)
	}
	waitForStore(t, srv.Store(), 1)
	if _, ok := srv.Store().Get(hash); !ok {
		t.Fatalf("on-demand exported hash %s not in store", hash)
	}
}

func TestExporterSurvivesDeadCollector(t *testing.T) {
	census := &fakeCensus{}
	exp := NewExporter(ExportConfig{
		URL:         "http://127.0.0.1:1", // nothing listens here
		QueueLimit:  2,
		Identity:    version.NewIdentity("replica-a"),
		RegistryRef: "reg1-export-test",
		Client:      &http.Client{Timeout: 200 * time.Millisecond},
	})
	exp.SetCensusSource(census.latest)
	for seq := uint64(0); seq < 5; seq++ {
		census.advance(seq, 100+seq)
		exp.GCEnd(&collector.Collection{Seq: seq})
	}
	exp.Close()
	st := exp.Stats()
	if st.Enqueued != 5 {
		t.Fatalf("enqueued = %d, want 5", st.Enqueued)
	}
	if st.Errors == 0 {
		t.Fatal("dead collector produced no send errors")
	}
	if st.LastErr == "" {
		t.Fatal("LastErr empty after failed sends")
	}
}
