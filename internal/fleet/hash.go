// Package fleet is the fleet-forensics layer: it gives heap snapshots and
// flight-recorder bundles stable content hashes (canonical encoding keyed by
// a versioned type-registry reference), ships them from gcassert instances
// to a collector service, deduplicates them by hash in a bounded
// content-addressed store, and diffs census series *across instances* to
// answer the ops question per-process rings cannot: which (type, allocation
// site) is growing on how many replicas, and since when.
//
// The content-addressing model follows cxo-style object registries: the
// hash covers *what* an artifact says — normalized so two instances of the
// same guest program encode identical types and sites identically — while
// *who* produced it (instance ID, host, build) travels alongside in the
// envelope, never inside the hash. Identical replicas therefore deduplicate
// to a single stored payload, and a diverging replica is visible as a new
// hash.
package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"gcassert/internal/heap"
)

// RegistrySchemaVersion versions the registry-reference encoding. Bump it
// when the hashed type-layout encoding changes shape; refs from different
// versions never compare equal.
const RegistrySchemaVersion = 1

// RegistryRef fingerprints a type registry: a hash over every registered
// type's name, layout kind, and field list (names + ref-ness), sorted by
// type name so registration order does not matter. Two instances running
// the same guest program produce the same ref; payloads hashed under
// different refs are different content even when their bytes agree, because
// type names resolve against different schemas.
func RegistryRef(reg *heap.Registry) string {
	type typeLine struct {
		name   string
		layout string
	}
	lines := make([]typeLine, 0, reg.NumTypes())
	reg.ForEachType(func(ti *heap.TypeInfo) {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s|%s", ti.Name, ti.Kind)
		for _, f := range ti.Fields {
			fmt.Fprintf(&b, "|%s:%t", f.Name, f.Ref)
		}
		lines = append(lines, typeLine{name: ti.Name, layout: b.String()})
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	h := sha256.New()
	fmt.Fprintf(h, "gcassert-registry/v%d\n", RegistrySchemaVersion)
	for _, l := range lines {
		h.Write([]byte(l.layout))
		h.Write([]byte{'\n'})
	}
	return "reg1-" + hex.EncodeToString(h.Sum(nil))[:32]
}

// volatileKeys are JSON object keys excluded from canonical payloads: they
// vary between two instances observing identical heap content. Wall-clock
// stamps obviously differ per instance; the numeric "type" field is a
// dense per-process TypeID whose value depends on registration order, while
// the canonical identity of a type is its name (covered by the registry
// ref). CapturedUnixNs and friends are carried in the envelope instead.
// "instance" is the identity stamp (flight bundles and census documents
// carry one from schema v2/v1 on): identity travels alongside the hash, so
// two replicas capturing identical content must still dedupe.
var volatileKeys = map[string]bool{
	"unix_ns":          true,
	"captured_unix_ns": true,
	"start_unix_ns":    true,
	"type":             true,
	"instance":         true,
}

// CanonicalPayload rewrites a JSON document into its canonical form:
// volatile keys stripped recursively, object keys sorted (encoding/json
// sorts map keys), numbers preserved verbatim via json.Number so large
// integers survive the round trip bit-exact. Two semantically identical
// documents — regardless of key order or volatile stamps — canonicalize to
// identical bytes.
func CanonicalPayload(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("fleet: canonicalizing payload: %w", err)
	}
	out, err := json.Marshal(stripVolatile(v))
	if err != nil {
		return nil, fmt.Errorf("fleet: canonicalizing payload: %w", err)
	}
	return out, nil
}

func stripVolatile(v interface{}) interface{} {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, e := range x {
			if volatileKeys[k] {
				delete(x, k)
				continue
			}
			x[k] = stripVolatile(e)
		}
		return x
	case []interface{}:
		for i, e := range x {
			x[i] = stripVolatile(e)
		}
		return x
	default:
		return v
	}
}

// ContentHash hashes a canonical payload under its kind and registry ref.
// The preamble domain-separates: the same bytes as a different kind, or
// resolved against a different type schema, are different content.
func ContentHash(kind, registryRef string, canonical []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "gcassert-bundle/v%d\x00%s\x00%s\x00", EnvelopeSchemaVersion, kind, registryRef)
	h.Write(canonical)
	return "sha256-" + hex.EncodeToString(h.Sum(nil))
}
