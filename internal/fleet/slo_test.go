package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gcassert/internal/slo"
	"gcassert/internal/version"
)

// sloEnvelope seals one SLO report for the composed host/tenant identity.
func sloEnvelope(t *testing.T, host, tenant string, capturedNs int64, st slo.Status, burn float64) Envelope {
	t.Helper()
	rep := SLOReport{
		Tenant: tenant,
		Event: slo.AlertEvent{
			Tenant: tenant, Objective: "violation_rate", Severity: "fast",
			State: "firing", Prev: "pending", BurnShort: burn, Threshold: 10,
		},
		Status: st,
	}
	payload, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(KindSLO, SLORegistryRef, version.NewIdentity(host).Sub(tenant), capturedNs, payload)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// firingStatus builds a status document whose fast rule is in the given
// state with the given burn.
func firingStatus(state string, burn, remaining float64) slo.Status {
	return slo.Status{
		Compliant:      state == "ok",
		WorstBurn:      burn,
		WorstObjective: "violation_rate",
		Objectives: []slo.ObjectiveStatus{{
			Name: "violation_rate", Kind: slo.KindViolationRate,
			BudgetRemainingRatio: remaining,
			Met:                  state == "ok",
			Alerts: []slo.AlertStatus{
				{Severity: "fast", State: state, BurnShort: burn, Threshold: 10},
				{Severity: "slow", State: "ok"},
			},
		}},
	}
}

// TestRollupSLO pins the fleet rollup contract: latest report wins per
// composed instance, rows rank firing > pending > ok then by burn, and the
// counters summarize the fleet's alert posture.
func TestRollupSLO(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(env Envelope) {
		t.Helper()
		if _, err := store.Ingest(env, 1); err != nil {
			t.Fatal(err)
		}
	}
	// host-a/leaky: an old pending report superseded by a firing one.
	ingest(sloEnvelope(t, "host-a", "leaky", 100, firingStatus("pending", 12, 0.5), 12))
	ingest(sloEnvelope(t, "host-a", "leaky", 200, firingStatus("firing", 66, 0), 66))
	// host-b/warm: pending. host-b/steady: all clear.
	ingest(sloEnvelope(t, "host-b", "warm", 150, firingStatus("pending", 11, 0.7), 11))
	ingest(sloEnvelope(t, "host-b", "steady", 150, firingStatus("ok", 0.2, 0.98), 0.2))

	doc := RollupSLO(store, 0)
	if doc.Instances != 3 || doc.Firing != 1 || doc.Pending != 1 {
		t.Fatalf("rollup counts = %d/%d/%d, want 3 instances, 1 firing, 1 pending", doc.Instances, doc.Firing, doc.Pending)
	}
	wantOrder := []string{"host-a/leaky", "host-b/warm", "host-b/steady"}
	for i, want := range wantOrder {
		if doc.Tenants[i].Instance != want {
			t.Fatalf("row %d = %s, want %s (full: %+v)", i, doc.Tenants[i].Instance, want, doc.Tenants)
		}
	}
	worst := doc.Tenants[0]
	if worst.State != "firing" || worst.Severity != "fast" || worst.WorstBurn != 66 ||
		worst.MinBudgetRemaining != 0 || worst.Compliant || worst.CapturedUnixNs != 200 {
		t.Fatalf("worst row did not take the latest firing report: %+v", worst)
	}
	if doc.Tenants[2].State != "ok" || !doc.Tenants[2].Compliant {
		t.Fatalf("steady row wrong: %+v", doc.Tenants[2])
	}

	// top bounds the rows but not the counters.
	if top1 := RollupSLO(store, 1); len(top1.Tenants) != 1 || top1.Instances != 3 {
		t.Fatalf("top=1 rollup = %d rows / %d instances, want 1 / 3", len(top1.Tenants), top1.Instances)
	}
}

// TestFleetSLOEndpoint serves the rollup over the collector's HTTP surface.
func TestFleetSLOEndpoint(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(sloEnvelope(t, "host-a", "leaky", 100, firingStatus("firing", 66, 0), 66), 1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleet/slo?top=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet/slo = %s", resp.Status)
	}
	var doc SLORollup
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Firing != 1 || len(doc.Tenants) != 1 || doc.Tenants[0].Instance != "host-a/leaky" {
		t.Fatalf("endpoint rollup = %+v", doc)
	}

	bad, err := http.Get(ts.URL + "/fleet/slo?top=-1")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad top = %d, want 400", bad.StatusCode)
	}
}
