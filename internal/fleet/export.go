package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/flight"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// Exporter is the instance side of fleet forensics: it observes the
// collector, seals census snapshots (and, on violation, flight bundles)
// into content-addressed envelopes, and ships them to a gcfleet collector
// over HTTP from a background sender goroutine.
//
// Concurrency: the Observer half and NoteViolation run inside stop-the-world
// collections on the runtime's goroutine; they only marshal and enqueue.
// The sender goroutine owns all network I/O, so a slow or absent collector
// never blocks a collection — the bounded queue drops oldest envelopes
// instead. ExportLatest may be called from any goroutine (the census ring is
// mutex-guarded).
type Exporter struct {
	url         string
	every       int
	queueLimit  int
	identity    version.Identity
	registryRef string
	client      *http.Client

	censusFn func() (heapdump.Snapshot, bool)
	bundleFn func(trigger string) flight.Bundle

	// Per-cycle state, touched only inside stop-the-world collections.
	sinceExport int

	violLatch atomic.Bool
	demand    atomic.Bool

	mu    sync.Mutex
	queue [][]byte
	stats ExportStats

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// ExportStats summarizes an exporter's activity.
type ExportStats struct {
	// Enqueued counts sealed envelopes; Dropped those evicted from the full
	// queue before sending; Sent those the collector accepted; Errors
	// failed sends. LastErr is the most recent send failure.
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	Sent     uint64 `json:"sent"`
	Errors   uint64 `json:"errors"`
	LastErr  string `json:"last_err,omitempty"`
}

// ExportConfig configures an Exporter.
type ExportConfig struct {
	// URL is the gcfleet collector base URL (envelopes POST to
	// URL + "/fleet/ingest").
	URL string
	// Every exports a census envelope every N full collections (default 1:
	// every collection; the dedupe on the collector side makes steady-state
	// replicas nearly free to report).
	Every int
	// QueueLimit bounds the unsent-envelope queue (default 64; oldest
	// dropped on overflow).
	QueueLimit int
	// Identity stamps every envelope; RegistryRef keys every hash.
	Identity    version.Identity
	RegistryRef string
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
}

// NewExporter creates an exporter and starts its sender goroutine.
func NewExporter(cfg ExportConfig) *Exporter {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	e := &Exporter{
		url:         cfg.URL,
		every:       cfg.Every,
		queueLimit:  cfg.QueueLimit,
		identity:    cfg.Identity,
		registryRef: cfg.RegistryRef,
		client:      cfg.Client,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	e.wg.Add(1)
	go e.sender()
	return e
}

// SetCensusSource installs the census source (the census ring's Latest);
// install before the first collection.
func (e *Exporter) SetCensusSource(fn func() (heapdump.Snapshot, bool)) { e.censusFn = fn }

// SetBundleSource installs the flight-bundle source used for
// violation-triggered exports. The source may walk the managed heap, so the
// exporter only calls it inside the collector's stop-the-world pause.
func (e *Exporter) SetBundleSource(fn func(trigger string) flight.Bundle) { e.bundleFn = fn }

// Identity returns the identity stamped on exported envelopes.
func (e *Exporter) Identity() version.Identity { return e.identity }

// NoteViolation latches a violation-triggered export: at the end of the
// current collection the exporter ships the census envelope plus a flight
// bundle. The runtime tees its reporter chain into it.
func (e *Exporter) NoteViolation() { e.violLatch.Store(true) }

var _ collector.Observer = (*Exporter)(nil)

// GCBegin implements collector.Observer (no-op).
func (e *Exporter) GCBegin(seq uint64, reason collector.Reason) {}

// PhaseBegin implements collector.Observer (no-op).
func (e *Exporter) PhaseBegin(p collector.Phase) {}

// PhaseEnd implements collector.Observer (no-op).
func (e *Exporter) PhaseEnd(p collector.Phase, d time.Duration) {}

// GCEnd implements collector.Observer: decide whether this cycle exports,
// seal the envelopes, and hand them to the sender.
func (e *Exporter) GCEnd(col *collector.Collection) {
	e.sinceExport++
	trigger := ""
	switch {
	case e.violLatch.Swap(false):
		trigger = "violation"
	case e.demand.Swap(false):
		trigger = "demand"
	case e.sinceExport >= e.every:
		trigger = "interval"
	}
	if trigger == "" {
		return
	}
	e.sinceExport = 0
	now := time.Now().UnixNano()
	if e.censusFn != nil {
		if snap, ok := e.censusFn(); ok && snap.GC == col.Seq {
			e.enqueueCensus(&snap, now)
		}
	}
	if trigger == "violation" && e.bundleFn != nil {
		b := e.bundleFn("fleet-violation")
		if payload, err := json.Marshal(&b); err == nil {
			e.enqueue(KindFlight, payload, now)
		}
	}
	e.signal()
}

// ExportLatest seals the most recent census snapshot right now and queues
// it (trigger "demand"). Safe from any goroutine; used by the
// /debug/gcassert/fleet endpoint and exit-time flushes. Returns the sealed
// content hash.
func (e *Exporter) ExportLatest() (string, error) {
	if e.censusFn == nil {
		return "", fmt.Errorf("fleet: exporter has no census source")
	}
	snap, ok := e.censusFn()
	if !ok {
		return "", fmt.Errorf("fleet: no census snapshot yet (no collection has run)")
	}
	hash := e.enqueueCensus(&snap, time.Now().UnixNano())
	e.signal()
	if hash == "" {
		return "", fmt.Errorf("fleet: sealing census snapshot failed")
	}
	return hash, nil
}

// RequestExport latches a demand export delivered at the end of the next
// collection (when the census snapshot for that cycle exists). Safe from
// any goroutine.
func (e *Exporter) RequestExport() { e.demand.Store(true) }

func (e *Exporter) enqueueCensus(snap *heapdump.Snapshot, nowNs int64) string {
	payload, err := json.Marshal(snap)
	if err != nil {
		return ""
	}
	return e.enqueue(KindCensus, payload, nowNs)
}

func (e *Exporter) enqueue(kind string, payload []byte, nowNs int64) string {
	env, err := Seal(kind, e.registryRef, e.identity, nowNs, payload)
	if err != nil {
		return ""
	}
	wire, err := json.Marshal(&env)
	if err != nil {
		return ""
	}
	e.mu.Lock()
	e.stats.Enqueued++
	if len(e.queue) >= e.queueLimit {
		e.queue = e.queue[1:]
		e.stats.Dropped++
	}
	e.queue = append(e.queue, wire)
	e.mu.Unlock()
	return env.Hash
}

func (e *Exporter) signal() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// sender drains the queue, POSTing each envelope; it performs a final drain
// when Close is called.
func (e *Exporter) sender() {
	defer e.wg.Done()
	for {
		select {
		case <-e.wake:
			e.drain()
		case <-e.stop:
			e.drain()
			return
		}
	}
}

func (e *Exporter) drain() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		wire := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		err := e.post(wire)
		e.mu.Lock()
		if err != nil {
			e.stats.Errors++
			e.stats.LastErr = err.Error()
		} else {
			e.stats.Sent++
		}
		e.mu.Unlock()
	}
}

func (e *Exporter) post(wire []byte) error {
	resp, err := e.client.Post(e.url+"/fleet/ingest", "application/json", bytes.NewReader(wire))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: collector returned %s", resp.Status)
	}
	return nil
}

// Stats returns the exporter's activity summary.
func (e *Exporter) Stats() ExportStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close flushes the queue and stops the sender. Idempotent-unsafe: call
// once, at shutdown.
func (e *Exporter) Close() {
	close(e.stop)
	e.wg.Wait()
}
