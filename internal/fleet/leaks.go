package fleet

import (
	"encoding/json"
	"sort"
	"strings"

	"gcassert/internal/flight"
	"gcassert/internal/heapdump"
	"gcassert/internal/trend"
)

// Cross-instance leak diffing: the Cork-style scorer (internal/trend) that
// ranks per-process leak suspects, aggregated across every instance the
// store has heard from. Each instance's census envelopes form a per-(type,
// allocation site) live-volume series; the fleet view asks how many
// instances show that series growing, how fast, and since when — which is
// how one leaking deploy among thousands of replicas is found from its
// census signature.

// InstanceTrend is one instance's fit for one (type, site) series.
type InstanceTrend struct {
	InstanceID string `json:"instance_id"`
	// Snapshots is the number of census snapshots the series spans.
	Snapshots int `json:"snapshots"`
	// StartWords/EndWords bound the series.
	StartWords uint64 `json:"start_words"`
	EndWords   uint64 `json:"end_words"`
	// SlopeWordsPerGC, Growth and Score are the trend fit (see
	// internal/trend); Growing is Score > 0.
	SlopeWordsPerGC float64 `json:"slope_words_per_gc"`
	Growth          float64 `json:"growth"`
	Score           float64 `json:"score"`
	Growing         bool    `json:"growing"`
}

// Leak is one fleet-ranked (type, site) leak suspect.
type Leak struct {
	TypeName string `json:"type_name"`
	// Site is the allocation-site description ("" when the reporting
	// instances ran without provenance).
	Site string `json:"site,omitempty"`
	// InstancesReporting counts instances with enough census history to
	// fit this series (>= 2 snapshots); InstancesGrowing those whose fit
	// scored positive.
	InstancesReporting int `json:"instances_reporting"`
	InstancesGrowing   int `json:"instances_growing"`
	// FirstSeenUnixNs is the earliest capture time at which any instance
	// reported live volume for this (type, site).
	FirstSeenUnixNs int64 `json:"first_seen_unix_ns"`
	// MeanSlopeWordsPerGC and MeanGrowth average over growing instances.
	MeanSlopeWordsPerGC float64 `json:"mean_slope_words_per_gc"`
	MeanGrowth          float64 `json:"mean_growth"`
	// Score ranks fleet suspects: the mean growing-instance score weighted
	// by the growing fraction — a type growing fast on every replica
	// outranks one growing fast on a single replica, which in turn
	// outranks fleet-wide noise.
	Score float64 `json:"score"`
	// PerInstance carries each reporting instance's fit, growing first.
	PerInstance []InstanceTrend `json:"per_instance,omitempty"`
	// SamplePaths holds root-to-object paths for the suspect type, drawn
	// from ingested flight-recorder violations (the census itself carries
	// no paths).
	SamplePaths []string `json:"sample_paths,omitempty"`
}

// LeaksDocument is the envelope of the /fleet/leaks endpoint and
// `gcfleet leaks -json`.
type LeaksDocument struct {
	// Instances is every instance the diff covered; Envelopes the census
	// envelopes diffed.
	Instances int    `json:"instances"`
	Envelopes int    `json:"envelopes"`
	Suspects  []Leak `json:"suspects"`
}

// maxSamplePaths bounds the per-suspect violation-path sample.
const maxSamplePaths = 3

// seriesKey identifies one aggregated census series.
type seriesKey struct {
	typeName string
	site     string
}

// censusPoint is one snapshot's contribution to a series.
type censusPoint struct {
	order int // position in the instance's snapshot sequence
	words uint64
}

// RankLeaks diffs every census envelope in the store across instances and
// returns the ranked fleet leak suspects (top <= 0: all). minInstances
// drops suspects growing on fewer instances than that (<= 0: 1).
func RankLeaks(store *Store, top, minInstances int) LeaksDocument {
	if minInstances <= 0 {
		minInstances = 1
	}

	// Gather each instance's census envelopes, ordered by capture time
	// (GC seq breaking ties) so the series index is the snapshot index.
	type instSnap struct {
		capturedNs int64
		snap       heapdump.Snapshot
	}
	byInstance := map[string][]instSnap{}
	firstSeen := map[seriesKey]int64{}
	envelopes := 0
	var flightBundles []flight.Bundle
	store.ForEach(func(m Meta, env Envelope) bool {
		switch env.Kind {
		case KindCensus:
			var snap heapdump.Snapshot
			if json.Unmarshal(env.Payload, &snap) != nil {
				return true
			}
			envelopes++
			// Content-addressing means one stored envelope may have been
			// observed by many instances; each counts as that instance's
			// own observation.
			for _, id := range m.Instances {
				byInstance[id] = append(byInstance[id], instSnap{capturedNs: env.CapturedUnixNs, snap: snap})
			}
		case KindFlight:
			var b flight.Bundle
			if json.Unmarshal(env.Payload, &b) == nil {
				flightBundles = append(flightBundles, b)
			}
		}
		return true
	})

	// Fit every (type, site) series per instance.
	agg := map[seriesKey]*Leak{}
	for id, snaps := range byInstance {
		sort.Slice(snaps, func(i, j int) bool {
			if snaps[i].capturedNs != snaps[j].capturedNs {
				return snaps[i].capturedNs < snaps[j].capturedNs
			}
			return snaps[i].snap.GC < snaps[j].snap.GC
		})
		if len(snaps) < 2 {
			continue
		}
		series := map[seriesKey][]censusPoint{}
		for i, is := range snaps {
			for key, words := range snapshotRows(&is.snap) {
				series[key] = append(series[key], censusPoint{order: i, words: words})
				if t, ok := firstSeen[key]; !ok || is.capturedNs < t {
					firstSeen[key] = is.capturedNs
				}
			}
		}
		n := len(snaps)
		ys := make([]float64, n)
		for key, pts := range series {
			// Snapshots where the series is absent contribute zero — a
			// type that died out must not look like growth when it
			// reappears (same rule as heapdump.RankSuspects).
			for i := range ys {
				ys[i] = 0
			}
			for _, p := range pts {
				ys[p.order] = float64(p.words)
			}
			fit := trend.Score(ys)
			it := InstanceTrend{
				InstanceID:      id,
				Snapshots:       n,
				StartWords:      uint64(ys[0]),
				EndWords:        uint64(ys[n-1]),
				SlopeWordsPerGC: fit.Slope,
				Growth:          fit.Growth,
				Score:           fit.Score,
				Growing:         fit.Score > 0,
			}
			l := agg[key]
			if l == nil {
				l = &Leak{TypeName: key.typeName, Site: key.site}
				agg[key] = l
			}
			l.InstancesReporting++
			if it.Growing {
				l.InstancesGrowing++
				l.MeanSlopeWordsPerGC += fit.Slope
				l.MeanGrowth += fit.Growth
			}
			l.PerInstance = append(l.PerInstance, it)
		}
	}

	var out []Leak
	for key, l := range agg {
		if l.InstancesGrowing < minInstances {
			continue
		}
		g := float64(l.InstancesGrowing)
		l.MeanSlopeWordsPerGC /= g
		l.MeanGrowth /= g
		l.Score = l.MeanSlopeWordsPerGC * l.MeanGrowth * (g / float64(l.InstancesReporting))
		if l.Score <= 0 {
			continue
		}
		l.FirstSeenUnixNs = firstSeen[key]
		sort.Slice(l.PerInstance, func(i, j int) bool {
			a, b := &l.PerInstance[i], &l.PerInstance[j]
			if a.Growing != b.Growing {
				return a.Growing
			}
			if a.Score != b.Score {
				return a.Score > b.Score
			}
			return a.InstanceID < b.InstanceID
		})
		l.SamplePaths = samplePaths(flightBundles, l.TypeName)
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].TypeName != out[j].TypeName {
			return out[i].TypeName < out[j].TypeName
		}
		return out[i].Site < out[j].Site
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return LeaksDocument{
		Instances: len(store.Instances()),
		Envelopes: envelopes,
		Suspects:  out,
	}
}

// snapshotRows extracts the (type, site) → live words rows of one census
// snapshot: the per-site rows when provenance produced them, the per-type
// rows (site "") otherwise, so fleets mixing provenance modes still diff.
func snapshotRows(s *heapdump.Snapshot) map[seriesKey]uint64 {
	rows := make(map[seriesKey]uint64, len(s.Types)+len(s.Sites))
	if len(s.Sites) > 0 {
		for i := range s.Sites {
			r := &s.Sites[i]
			rows[seriesKey{typeName: r.TypeName, site: r.Site}] += r.Words
		}
		return rows
	}
	for i := range s.Types {
		r := &s.Types[i]
		rows[seriesKey{typeName: r.TypeName}] += r.Words
	}
	return rows
}

// samplePaths pulls up to maxSamplePaths distinct root-to-object paths for
// a type out of ingested flight bundles' violations.
func samplePaths(bundles []flight.Bundle, typeName string) []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range bundles {
		for i := range b.Violations {
			v := &b.Violations[i]
			if v.TypeName != typeName || len(v.Path) == 0 {
				continue
			}
			p := v.Root + " -> " + strings.Join(v.Path, " -> ")
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
			if len(out) == maxSamplePaths {
				return out
			}
		}
	}
	return out
}
