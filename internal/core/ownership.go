package core

import (
	"fmt"
	"sort"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// visitedBit marks ownership-phase worklist entries whose children have been
// scanned, giving the same path-reconstruction property as the collector's
// main trace.
const visitedBit heap.Addr = 1

// ownershipPhase implements the paper's modified trace order (§2.5.2): before
// root scanning, trace from each owner object *without marking the owner
// itself*. An ownee reached from its own owner is marked owned and the scan
// truncates at it; ownees are queued and their subtrees traced after the
// owner's direct region, so back edges into the owner's structure do not
// cause false positives. Encountering a different owner marks it and stops
// (it gets its own scan); encountering an ownee of a different owner is
// improper use (owner regions must be disjoint).
//
// Everything marked here is skipped by the normal scan, so no object is
// processed twice and the ownership check itself adds no per-object memory.
func (e *Engine) ownershipPhase(c *collector.Collector) {
	if len(e.owners) == 0 {
		return
	}
	e.inOwnership = true
	e.gcSeq = c.GCCount()
	// Sort any ownee arrays that grew since the last collection, so the
	// membership checks below are binary searches.
	for i := range e.owners {
		if e.owners[i].dirty {
			rec := &e.owners[i]
			sort.Slice(rec.ownees, func(a, b int) bool { return rec.ownees[a] < rec.ownees[b] })
			rec.dirty = false
		}
	}
	for i := range e.owners {
		e.curOwner = i
		rec := &e.owners[i]
		e.ostack = e.ostack[:0]
		e.owneeQueue = e.owneeQueue[:0]
		// Seed with the owner. The scan loop never marks the entry it pops
		// (marking happens edge-side), so the owner stays unmarked: it must
		// prove its own liveness via the root scan.
		e.ostack = append(e.ostack, rec.owner)
		e.drainOwnership()
		// Now trace the subtrees hanging off the queued ownees. The queue
		// grows as nested ownees of the same owner are discovered.
		for qi := 0; qi < len(e.owneeQueue); qi++ {
			e.ostack = append(e.ostack[:0], e.owneeQueue[qi])
			e.drainOwnership()
		}
	}
	e.inOwnership = false
}

func (e *Engine) drainOwnership() {
	for len(e.ostack) > 0 {
		top := e.ostack[len(e.ostack)-1]
		if top&visitedBit != 0 {
			e.ostack = e.ostack[:len(e.ostack)-1]
			continue
		}
		e.ostack[len(e.ostack)-1] = top | visitedBit
		e.ownParent = top
		e.space.ForEachRef(top, e.ownVisit)
	}
}

// ownVisit processes one edge discovered during the ownership phase.
func (e *Engine) ownVisit(slot int, t heap.Addr) {
	s := e.space
	rec := &e.owners[e.curOwner]
	if t == rec.owner {
		// A back edge to the owner itself: the owner must not be marked by
		// its own scan (it proves liveness via the root scan).
		return
	}
	f := s.Flags(t)

	// The dead check applies to every edge of the ownership phase, whatever
	// kind of object it reaches — in particular to ownees, which would
	// otherwise be marked here and never re-examined by the normal scan.
	if f&heap.FlagDead != 0 {
		act := e.onDeadReachable(e.gcSeq, t, f, e.ownerRootDesc(rec.owner), e.ownershipPath())
		if act == collector.EdgeClear {
			s.ClearRefSlot(e.ownParent, slot)
			return
		}
	}

	if f&heap.FlagOwnee != 0 {
		e.stats.OwneesChecked++
		if !e.belongsTo(rec, t) {
			// Overlap between owner regions: improper use of the assertion.
			if f&flagLogged == 0 {
				e.stats.ImproperOwnership++
				e.markLogged(t)
				e.report(&Violation{
					Kind:     KindImproperOwnership,
					GC:       e.gcSeq,
					Object:   t,
					TypeName: s.TypeName(t),
					Root:     e.ownerRootDesc(rec.owner),
					Path:     BuildPath(s, e.ownershipPath(), t),
					Message: fmt.Sprintf("ownee of %s@%#x reached while scanning from %s@%#x; owner regions must be disjoint",
						s.TypeName(e.owneeOwner[t]), uint32(e.owneeOwner[t]), s.TypeName(rec.owner), uint32(rec.owner)),
				})
			}
		}
		if f&heap.FlagMark == 0 {
			s.SetMark(t)
			e.countInstance(t)
			e.owneeQueue = append(e.owneeQueue, t)
		}
		// Reached from an owner: consider it owned (for overlapping regions
		// the improper-use warning above has already fired).
		s.SetFlag(t, heap.FlagOwned)
		return // truncate: the subtree is traced from the ownee queue
	}

	if f&heap.FlagOwner != 0 && t != rec.owner {
		// Another owner: mark it and stop — it is scanned independently.
		if f&heap.FlagMark == 0 {
			s.SetMark(t)
			e.countInstance(t)
		}
		return
	}

	if f&heap.FlagMark != 0 {
		if f&heap.FlagUnshared != 0 && f&flagLogged == 0 {
			e.onSharedUnshared(e.gcSeq, t, e.ownerRootDesc(rec.owner), e.ownershipPath())
		}
		return
	}

	s.SetMark(t)
	e.countInstance(t)
	e.ostack = append(e.ostack, t)
}

// belongsTo reports whether t is a registered ownee of rec, by binary search
// over the sorted ownee array (the paper's n log n membership check).
func (e *Engine) belongsTo(rec *ownerRec, t heap.Addr) bool {
	i := sort.Search(len(rec.ownees), func(j int) bool { return rec.ownees[j] >= t })
	return i < len(rec.ownees) && rec.ownees[i] == t
}

// countInstance counts a newly marked object for assert-instances tracking.
func (e *Engine) countInstance(a heap.Addr) {
	if len(e.tracked) == 0 {
		return
	}
	if t := e.space.TypeOf(a); int(t) < len(e.counts) {
		e.counts[t]++
	}
}

// ownershipPath snapshots the owner-to-current-object path from the
// ownership worklist (entries with the visited bit, bottom first).
func (e *Engine) ownershipPath() []heap.Addr {
	var path []heap.Addr
	for _, entry := range e.ostack {
		if entry&visitedBit != 0 {
			path = append(path, entry&^visitedBit)
		}
	}
	return path
}

// ownerRootDesc describes the owner whose region is being scanned, used as
// the "root" of paths reported during the ownership phase.
func (e *Engine) ownerRootDesc(owner heap.Addr) string {
	return fmt.Sprintf("owner %s@%#x", e.space.TypeName(owner), uint32(owner))
}
