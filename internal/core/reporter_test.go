package core

import (
	"strings"
	"testing"

	"gcassert/internal/heap"
)

func sampleViolation() *Violation {
	return &Violation{
		Kind:     KindDead,
		GC:       3,
		Object:   heap.Addr(64),
		TypeName: "spec/jbb/Order",
		Root:     "global:company",
		Path: []PathStep{
			{Addr: 8, TypeName: "spec/jbb/Company", Field: "warehouses"},
			{Addr: 16, TypeName: "[Object", Field: "[0]"},
			{Addr: 64, TypeName: "spec/jbb/Order"},
		},
	}
}

func TestViolationFigure1Format(t *testing.T) {
	s := sampleViolation().String()
	for _, want := range []string{
		"Warning: an object that was asserted dead is reachable.",
		"Type: spec/jbb/Order",
		"Path to object:",
		"root global:company",
		"spec/jbb/Company .warehouses",
		"-> [Object .[0]",
		"-> spec/jbb/Order",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestViolationFormatWithoutPath(t *testing.T) {
	v := &Violation{Kind: KindInstances, TypeName: "T", Message: "5 instances live, limit 1"}
	s := v.String()
	if strings.Contains(s, "Path to object") {
		t.Errorf("instances report should have no path:\n%s", s)
	}
	if !strings.Contains(s, "instance limit exceeded") || !strings.Contains(s, "Detail: 5 instances") {
		t.Errorf("report:\n%s", s)
	}
}

func TestWriterReporter(t *testing.T) {
	var b strings.Builder
	r := NewWriterReporter(&b)
	r.Report(sampleViolation())
	if !strings.Contains(b.String(), "Warning:") {
		t.Errorf("writer output: %q", b.String())
	}
}

func TestCollectingReporter(t *testing.T) {
	r := &CollectingReporter{}
	r.Report(sampleViolation())
	v2 := sampleViolation()
	v2.Kind = KindUnshared
	r.Report(v2)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if len(r.ByKind(KindDead)) != 1 || len(r.ByKind(KindUnshared)) != 1 || len(r.ByKind(KindOwnedBy)) != 0 {
		t.Error("ByKind filtering")
	}
	// Violations returns a copy.
	vs := r.Violations()
	vs[0].TypeName = "mutated"
	if r.Violations()[0].TypeName == "mutated" {
		t.Error("Violations must return a copy")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset")
	}
}

func TestTeeReporter(t *testing.T) {
	a, b := &CollectingReporter{}, &CollectingReporter{}
	TeeReporter{a, b}.Report(sampleViolation())
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("tee did not fan out")
	}
}

func TestDeciderOverridesPolicy(t *testing.T) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", heap.Field{Name: "next", Ref: true})
	_ = node
	s := heap.NewSpace(reg, 1<<20)
	rep := &CollectingReporter{}
	e := NewEngine(s, rep, DefaultPolicy())
	decided := 0
	e.SetDecider(func(v *Violation) Reaction {
		decided++
		return ReactLog
	})
	// The decider is consulted through report(); drive it directly.
	e.report(&Violation{Kind: KindDead, TypeName: "Node"})
	if decided != 1 || rep.Len() != 1 {
		t.Errorf("decided=%d reported=%d", decided, rep.Len())
	}
}

func TestPolicyWith(t *testing.T) {
	p := DefaultPolicy().With(KindDead, ReactForce).With(KindUnshared, ReactHalt)
	if p[KindDead] != ReactForce || p[KindUnshared] != ReactHalt || p[KindOwnedBy] != ReactLog {
		t.Errorf("policy = %v", p)
	}
}

func TestKindHeadlines(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.headline() == "" || k.headline() == "assertion violated" {
			t.Errorf("kind %v has generic headline", k)
		}
	}
}

func TestBuildPathResolvesFields(t *testing.T) {
	reg := heap.NewRegistry()
	node := reg.Define("Node", heap.Field{Name: "left", Ref: true}, heap.Field{Name: "right", Ref: true})
	s := heap.NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	c, _ := s.Allocate(node, 0)
	s.SetRef(a, 1, b)
	s.SetRef(b, 0, c)
	steps := BuildPath(s, []heap.Addr{a, b}, c)
	if len(steps) != 3 {
		t.Fatalf("steps = %+v", steps)
	}
	if steps[0].Field != "right" || steps[1].Field != "left" || steps[2].Field != "" {
		t.Errorf("fields = %q %q %q", steps[0].Field, steps[1].Field, steps[2].Field)
	}
}
