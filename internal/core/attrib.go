package core

import (
	"time"

	"gcassert/internal/collector"
)

// Cost attribution: per-assertion-kind accounting of the work and time the
// engine spends inside a collection. The paper's evaluation only reports
// aggregate overhead ("infrastructure cost is concentrated in GC time");
// attribution breaks a pause down by assertion kind so an operator can see
// *which* checks a cycle paid for.
//
// The discipline mirrors provenance (PR 4): disabled is the default and
// costs exactly one nil-check per rare block — nothing is added to the
// per-edge fast path, which stays untimed even when attribution is on.
// Work counts are exact (deltas of the engine's existing check counters);
// times cover only the flagged slow paths (dead/unshared/ownedby handling,
// the ownership pre-phase, and the PostMark instance sweep), so "checks"
// are precise and "ns" is an honest lower bound that never perturbs the
// loop it measures.

// costState is the per-collection attribution scratch, reset in PreMark.
type costState struct {
	// statsAt is the engine-stats snapshot taken at PreMark; CollectionCosts
	// diffs against it after the sweep (dead verification accrues in the
	// free hook while the sweep runs).
	statsAt Stats
	// ns accumulates per-kind slow-path time for the current cycle.
	ns [NumKinds]int64
}

// EnableCostAttribution turns per-kind cost accounting on. Mirroring the
// other observability layers it is enable-only and callable between
// collections.
func (e *Engine) EnableCostAttribution() {
	if e.costs == nil {
		e.costs = &costState{}
	}
}

// CostAttributionEnabled reports whether attribution is on.
func (e *Engine) CostAttributionEnabled() bool { return e.costs != nil }

var _ collector.CostHooks = (*Engine)(nil)

// CollectionCosts implements collector.CostHooks: the per-kind cost rows of
// the collection that just finished sweeping, or nil when attribution is
// disabled. The collector stamps the rows onto the Collection record.
func (e *Engine) CollectionCosts() []collector.AssertCost {
	cs := e.costs
	if cs == nil {
		return nil
	}
	checks := CheckDeltas(cs.statsAt, e.stats)
	names := KindNames()
	out := make([]collector.AssertCost, NumKinds)
	for k := 0; k < NumKinds; k++ {
		out[k] = collector.AssertCost{Kind: names[k], Checks: checks[k], Ns: cs.ns[k]}
	}
	return out
}

// costReset starts a new cycle's attribution window (called from PreMark).
func (cs *costState) reset(now Stats) {
	cs.statsAt = now
	cs.ns = [NumKinds]int64{}
}

// addSince folds one timed slow-path block into a kind's bucket.
func (cs *costState) addSince(k Kind, t0 time.Time) {
	cs.ns[k] += int64(time.Since(t0))
}

// CheckDeltas maps the engine-stats delta between two snapshots to per-kind
// check counts, each in its kind's natural unit: dead = asserted-dead
// objects resolved (reclaimed or caught reachable), instances = tracked-type
// limit comparisons, unshared = re-encounters of unshared-flagged objects,
// ownedby = ownee membership checks in the ownership phase.
// Improper-ownership has no separate check step (it is detected during
// ownedby checking), so its row stays zero. Shared by telemetry events, the
// flight recorder, and CollectionCosts so the unit definitions can never
// drift apart.
func CheckDeltas(before, after Stats) [NumKinds]uint64 {
	return [NumKinds]uint64{
		KindDead: (after.DeadVerified + after.DeadViolations) -
			(before.DeadVerified + before.DeadViolations),
		KindInstances: after.InstanceChecks - before.InstanceChecks,
		KindUnshared:  after.UnsharedChecks - before.UnsharedChecks,
		KindOwnedBy:   after.OwneesChecked - before.OwneesChecked,
	}
}
