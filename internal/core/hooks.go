package core

import (
	"fmt"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// PreMark implements collector.Hooks: it synchronizes the per-type tables
// with the registry and runs the ownership phase (ownership.go). With cost
// attribution on it also opens the cycle's attribution window and bills the
// whole ownership pre-phase to assert-ownedby.
func (e *Engine) PreMark(c *collector.Collector) {
	e.growTypeTables()
	if cs := e.costs; cs != nil {
		cs.reset(e.stats)
		t0 := time.Now()
		e.ownershipPhase(c)
		cs.addSince(KindOwnedBy, t0)
		return
	}
	e.ownershipPhase(c)
}

// OnEdge implements collector.Hooks. It is the per-edge assertion check the
// paper piggybacks on tracing: one header-flag load per edge, then
//
//   - first encounter (unmarked child): assert-dead check and instance
//     counting;
//   - re-encounter (marked child): assert-unshared check;
//   - either way: an ownee reached outside the ownership phase without its
//     owned flag is an assert-ownedby violation.
func (e *Engine) OnEdge(c *collector.Collector, parent heap.Addr, slot int, child heap.Addr, marked bool) collector.EdgeAction {
	s := e.space
	f := s.Flags(child)
	act := collector.EdgeProceed
	if !marked {
		if f&heap.FlagDead != 0 {
			// Flagged slow path: timed when attribution is on. The unflagged
			// fast path above stays free of any attribution branch.
			if cs := e.costs; cs != nil {
				t0 := time.Now()
				act = e.onDeadReachable(c.GCCount(), child, f, c.CurrentRoot(), c.CurrentPath())
				cs.addSince(KindDead, t0)
			} else {
				act = e.onDeadReachable(c.GCCount(), child, f, c.CurrentRoot(), c.CurrentPath())
			}
			if act == collector.EdgeClear {
				return act
			}
		}
		if len(e.tracked) > 0 {
			if t := s.TypeOf(child); int(t) < len(e.counts) {
				e.counts[t]++
			}
		}
	} else if f&heap.FlagUnshared != 0 {
		e.stats.UnsharedChecks++
		if f&flagLogged == 0 {
			if cs := e.costs; cs != nil {
				t0 := time.Now()
				e.onSharedUnshared(c.GCCount(), child, c.CurrentRoot(), c.CurrentPath())
				cs.addSince(KindUnshared, t0)
			} else {
				e.onSharedUnshared(c.GCCount(), child, c.CurrentRoot(), c.CurrentPath())
			}
		}
	}
	if f&heap.FlagOwnee != 0 && f&heap.FlagOwned == 0 && !e.inOwnership {
		if cs := e.costs; cs != nil {
			t0 := time.Now()
			e.onUnownedReachable(c.GCCount(), child, c.CurrentRoot(), c.CurrentPath())
			cs.addSince(KindOwnedBy, t0)
		} else {
			e.onUnownedReachable(c.GCCount(), child, c.CurrentRoot(), c.CurrentPath())
		}
		// Suppress duplicate reports for this ownee within this cycle; the
		// owned flags are reset in PostMark.
		s.SetFlag(child, heap.FlagOwned)
	}
	return act
}

// onDeadReachable handles an asserted-dead object found reachable. ancestors
// is the current trace path (excluding the object itself).
func (e *Engine) onDeadReachable(gc uint64, obj heap.Addr, f heap.Flag, root string, ancestors []heap.Addr) collector.EdgeAction {
	s := e.space
	if f&flagLogged != 0 {
		// Already reported this cycle. In force mode, keep severing every
		// incoming edge so the object really is reclaimed this collection.
		if e.policy[KindDead] == ReactForce {
			return collector.EdgeClear
		}
		return collector.EdgeProceed
	}
	e.stats.DeadViolations++
	e.markLogged(obj)
	v := &Violation{
		Kind:     KindDead,
		GC:       gc,
		Object:   obj,
		TypeName: s.TypeName(obj),
		Site:     s.SiteDesc(obj),
		Root:     root,
		Path:     BuildPath(s, ancestors, obj),
	}
	act := e.report(v)
	if act != collector.EdgeClear {
		// Log mode: the assertion is one-shot; a reported object is not
		// re-reported at later collections.
		s.ClearFlag(obj, heap.FlagDead)
	}
	return act
}

// onSharedUnshared handles a second encounter of an asserted-unshared
// object. As the paper notes (§2.7), only the second path is available.
func (e *Engine) onSharedUnshared(gc uint64, obj heap.Addr, root string, ancestors []heap.Addr) {
	e.stats.UnsharedViolations++
	e.markLogged(obj)
	v := &Violation{
		Kind:     KindUnshared,
		GC:       gc,
		Object:   obj,
		TypeName: e.space.TypeName(obj),
		Site:     e.space.SiteDesc(obj),
		Root:     root,
		Path:     BuildPath(e.space, ancestors, obj),
		Message:  "second path shown; the first path was traced earlier",
	}
	e.report(v)
}

// onUnownedReachable handles an ownee reached during the normal scan without
// having been marked owned by the ownership phase: it is reachable, but not
// through its owner.
func (e *Engine) onUnownedReachable(gc uint64, obj heap.Addr, root string, ancestors []heap.Addr) {
	s := e.space
	e.stats.OwnedViolations++
	owner := e.owneeOwner[obj]
	msg := "owner unknown"
	if owner != heap.Nil {
		msg = fmt.Sprintf("asserted owner is %s@%#x, which does not reach the object", s.TypeName(owner), uint32(owner))
	}
	v := &Violation{
		Kind:     KindOwnedBy,
		GC:       gc,
		Object:   obj,
		TypeName: s.TypeName(obj),
		Site:     s.SiteDesc(obj),
		Root:     root,
		Path:     BuildPath(s, ancestors, obj),
		Message:  msg,
	}
	e.report(v)
}

// WantAllFirstMarks implements collector.Hooks: the engine needs to see
// every first-marked object only while instance counting is active.
func (e *Engine) WantAllFirstMarks() bool { return len(e.tracked) > 0 }

// PostMark implements collector.Hooks: volume-assertion checks and weak
// pruning of every registration table, run after marking and before sweep.
func (e *Engine) PostMark(c *collector.Collector) {
	s := e.space

	// assert-instances: compare per-type counts against limits (§2.4.1).
	// The comparison loop is the kind's entire cost (per-edge counting rides
	// the untimed mark fast path), so it is billed wholesale.
	var instT0 time.Time
	if e.costs != nil {
		instT0 = time.Now()
	}
	for _, t := range e.tracked {
		e.stats.InstanceChecks++
		if e.counts[t] > e.limits[t] {
			e.stats.InstanceViolations++
			e.report(&Violation{
				Kind:     KindInstances,
				GC:       c.GCCount(),
				TypeName: s.Registry().Name(t),
				Message:  fmt.Sprintf("%d instances live, limit %d", e.counts[t], e.limits[t]),
			})
		}
	}
	if cs := e.costs; cs != nil {
		cs.addSince(KindInstances, instT0)
	}
	copy(e.lastCounts, e.counts)
	for i := range e.counts {
		e.counts[i] = 0
	}

	e.PruneWeak()

	// Reset per-cycle duplicate suppression.
	for _, a := range e.logged {
		if s.Marked(a) {
			s.ClearFlag(a, flagLogged)
		}
	}
	e.logged = e.logged[:0]
}

// PruneWeak drops registrations for objects whose mark bit is clear. It must
// run between a completed mark phase and the sweep: registrations are weak
// references, and leaving a stale address in a table would let a recycled
// cell inherit someone else's assertion. The normal cycle calls it from
// PostMark; generational minor collections (which skip the hooks) call it
// through the collector's PreSweep callback.
func (e *Engine) PruneWeak() {
	s := e.space

	// Region queues: entries that died inside the region are exactly what
	// the region asserts, so they are simply dropped.
	for _, r := range e.regions {
		keep := r.queue[:0]
		for _, a := range r.queue {
			if s.Marked(a) {
				keep = append(keep, a)
			}
		}
		r.queue = keep
	}

	// Ownership registry: drop dead ownees; dissolve the relation entirely
	// when the owner itself is dying ("we must remove each unreachable
	// ownee after a GC", §3.1.2). Clear the per-cycle owned flags of
	// survivors.
	liveOwners := e.owners[:0]
	for i := range e.owners {
		rec := e.owners[i]
		if !s.Marked(rec.owner) {
			for _, oe := range rec.ownees {
				delete(e.owneeOwner, oe)
				if s.Marked(oe) {
					s.ClearFlag(oe, heap.FlagOwnee|heap.FlagOwned)
				}
			}
			continue
		}
		keep := rec.ownees[:0]
		for _, oe := range rec.ownees {
			if s.Marked(oe) {
				s.ClearFlag(oe, heap.FlagOwned)
				keep = append(keep, oe)
			} else {
				delete(e.owneeOwner, oe)
			}
		}
		rec.ownees = keep
		if len(rec.ownees) == 0 {
			s.ClearFlag(rec.owner, heap.FlagOwner)
			continue
		}
		liveOwners = append(liveOwners, rec)
	}
	e.owners = liveOwners
	for k := range e.ownerIdx {
		delete(e.ownerIdx, k)
	}
	for i := range e.owners {
		e.ownerIdx[e.owners[i].owner] = i
	}
}

// removeOwnee deletes ownee from owner's record (used when an ownee is
// re-asserted with a different owner).
func (e *Engine) removeOwnee(owner, ownee heap.Addr) {
	idx, ok := e.ownerIdx[owner]
	if !ok {
		return
	}
	rec := &e.owners[idx]
	for i, oe := range rec.ownees {
		if oe == ownee {
			rec.ownees = append(rec.ownees[:i], rec.ownees[i+1:]...)
			break
		}
	}
	delete(e.owneeOwner, ownee)
	if e.space.Contains(ownee) {
		e.space.ClearFlag(ownee, heap.FlagOwnee|heap.FlagOwned)
	}
}
