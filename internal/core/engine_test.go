package core

import (
	"strings"
	"testing"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// world is a minimal mutator harness for engine tests: a space, an engine,
// a collector, and a root slice.
type world struct {
	t     *testing.T
	reg   *heap.Registry
	space *heap.Space
	eng   *Engine
	col   *collector.Collector
	rep   *CollectingReporter
	roots []heap.Addr

	node, pair heap.TypeID
}

func (w *world) Roots(yield func(collector.Root)) {
	for i := range w.roots {
		yield(collector.Root{Slot: &w.roots[i], Desc: "root"})
	}
}

func newWorld(t *testing.T) *world {
	return newWorldPolicy(t, DefaultPolicy())
}

func newWorldPolicy(t *testing.T, p Policy) *world {
	t.Helper()
	w := &world{t: t, reg: heap.NewRegistry(), rep: &CollectingReporter{}}
	w.node = w.reg.Define("Node", heap.Field{Name: "next", Ref: true})
	w.pair = w.reg.Define("Pair", heap.Field{Name: "a", Ref: true}, heap.Field{Name: "b", Ref: true})
	w.space = heap.NewSpace(w.reg, 4<<20)
	w.eng = NewEngine(w.space, w.rep, p)
	w.col = collector.New(w.space, w, w.eng, true)
	return w
}

func (w *world) alloc(t heap.TypeID) heap.Addr {
	a, ok := w.space.Allocate(t, 0)
	if !ok {
		w.t.Fatal("alloc failed")
	}
	return a
}

func (w *world) root(a heap.Addr) int {
	w.roots = append(w.roots, a)
	return len(w.roots) - 1
}

func TestAssertDeadOneShotReporting(t *testing.T) {
	w := newWorld(t)
	a := w.alloc(w.node)
	w.root(a)
	w.eng.AssertDead(a)
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindDead)); n != 1 {
		t.Fatalf("violations = %d", n)
	}
	// Log mode is one-shot: the next collection stays quiet.
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindDead)); n != 1 {
		t.Fatalf("violations after 2nd GC = %d (one-shot expected)", n)
	}
	st := w.eng.Stats()
	if st.DeadAsserted != 1 || st.DeadViolations != 1 || st.DeadVerified != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAssertDeadReportedOncePerCycleWithManyEdges(t *testing.T) {
	w := newWorld(t)
	dead := w.alloc(w.node)
	// Ten parents all point at the dead-asserted object.
	for i := 0; i < 10; i++ {
		p := w.alloc(w.node)
		w.space.SetRef(p, 0, dead)
		w.root(p)
	}
	w.eng.AssertDead(dead)
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindDead)); n != 1 {
		t.Fatalf("violations = %d, want 1 (deduped within cycle)", n)
	}
}

func TestHaltPolicyPanics(t *testing.T) {
	w := newWorldPolicy(t, DefaultPolicy().With(KindDead, ReactHalt))
	a := w.alloc(w.node)
	w.root(a)
	w.eng.AssertDead(a)
	defer func() {
		r := recover()
		he, ok := r.(*HaltError)
		if !ok {
			t.Fatalf("recover = %v, want *HaltError", r)
		}
		if he.Violation.Kind != KindDead || !strings.Contains(he.Error(), "halted") {
			t.Errorf("halt error = %v", he)
		}
	}()
	w.col.Collect("t")
	t.Fatal("expected panic")
}

func TestForcePolicyOnlyAppliesToDead(t *testing.T) {
	// Force on unshared falls back to logging (cannot be forced).
	w := newWorldPolicy(t, DefaultPolicy().With(KindUnshared, ReactForce))
	p := w.alloc(w.pair)
	c := w.alloc(w.node)
	w.space.SetRef(p, 0, c)
	w.space.SetRef(p, 1, c)
	w.root(p)
	w.eng.AssertUnshared(c)
	w.col.Collect("t")
	if len(w.rep.ByKind(KindUnshared)) != 1 {
		t.Fatal("unshared violation missing")
	}
	// Both references intact.
	if w.space.GetRef(p, 0) != c || w.space.GetRef(p, 1) != c {
		t.Error("force must not sever unshared edges")
	}
}

func TestUnsharedPersistsAcrossCycles(t *testing.T) {
	w := newWorld(t)
	p := w.alloc(w.pair)
	c := w.alloc(w.node)
	w.space.SetRef(p, 0, c)
	w.space.SetRef(p, 1, c)
	w.root(p)
	w.eng.AssertUnshared(c)
	w.col.Collect("t")
	w.col.Collect("t")
	// Unshared is a persistent property: it re-reports while violated.
	if n := len(w.rep.ByKind(KindUnshared)); n != 2 {
		t.Errorf("violations = %d, want 2 (one per cycle)", n)
	}
}

func TestUnsharedSecondPathMessage(t *testing.T) {
	w := newWorld(t)
	p := w.alloc(w.pair)
	c := w.alloc(w.node)
	w.space.SetRef(p, 0, c)
	w.space.SetRef(p, 1, c)
	w.root(p)
	w.eng.AssertUnshared(c)
	w.col.Collect("t")
	v := w.rep.ByKind(KindUnshared)[0]
	if !strings.Contains(v.Message, "second path") {
		t.Errorf("message = %q", v.Message)
	}
	if len(v.Path) < 2 || v.Path[len(v.Path)-1].Addr != c {
		t.Errorf("path = %+v", v.Path)
	}
}

func TestInstancesLimitAndLastCounts(t *testing.T) {
	w := newWorld(t)
	w.eng.AssertInstances(w.node, 2)
	for i := 0; i < 5; i++ {
		w.root(w.alloc(w.node))
	}
	w.col.Collect("t")
	vs := w.rep.ByKind(KindInstances)
	if len(vs) != 1 {
		t.Fatalf("violations = %d", len(vs))
	}
	if !strings.Contains(vs[0].Message, "5 instances live, limit 2") {
		t.Errorf("message = %q", vs[0].Message)
	}
	if n, ok := w.eng.LiveInstances(w.node); !ok || n != 5 {
		t.Errorf("LiveInstances = %d, %v", n, ok)
	}
	// Unregistered type: not tracked.
	if _, ok := w.eng.LiveInstances(w.pair); ok {
		t.Error("pair should not be tracked")
	}
	// Counts reset per cycle: drop three, expect 2 next time (no violation).
	w.roots = w.roots[:2]
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindInstances)); n != 1 {
		t.Errorf("violations after shrink = %d", n)
	}
	if n, _ := w.eng.LiveInstances(w.node); n != 2 {
		t.Errorf("LiveInstances after shrink = %d", n)
	}
}

func TestInstancesZeroLimit(t *testing.T) {
	w := newWorld(t)
	w.eng.AssertInstances(w.pair, 0)
	w.col.Collect("t")
	if w.rep.Len() != 0 {
		t.Fatal("no instances: no violation")
	}
	w.root(w.alloc(w.pair))
	w.col.Collect("t")
	if len(w.rep.ByKind(KindInstances)) != 1 {
		t.Fatal("zero-limit violation missing")
	}
}

func TestInstancesNegativeLimitPanics(t *testing.T) {
	w := newWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.eng.AssertInstances(w.node, -1)
}

func TestOwnedByHappyAndLeak(t *testing.T) {
	w := newWorld(t)
	owner := w.alloc(w.pair)
	elem := w.alloc(w.node)
	stray := w.alloc(w.node)
	w.space.SetRef(owner, 0, elem)
	w.space.SetRef(stray, 0, elem)
	w.root(owner)
	w.root(stray)
	w.eng.AssertOwnedBy(owner, elem)
	w.col.Collect("t")
	if w.rep.Len() != 0 {
		t.Fatalf("owned via owner: %v", w.rep.Violations())
	}
	// Remove from owner; the stray reference is now a leak.
	w.space.SetRef(owner, 0, heap.Nil)
	w.col.Collect("t")
	vs := w.rep.ByKind(KindOwnedBy)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", w.rep.Violations())
	}
	if !strings.Contains(vs[0].Message, "does not reach") {
		t.Errorf("message = %q", vs[0].Message)
	}
	// Still leaking: ownership violations re-report each cycle.
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindOwnedBy)); n != 2 {
		t.Errorf("violations = %d, want 2", n)
	}
}

func TestOwnedByOwnerDeathDissolvesAssertion(t *testing.T) {
	w := newWorld(t)
	owner := w.alloc(w.pair)
	elem := w.alloc(w.node)
	w.space.SetRef(owner, 0, elem)
	ownerRoot := w.root(owner)
	w.root(elem) // elem independently rooted
	w.eng.AssertOwnedBy(owner, elem)
	if w.eng.OwnedPairsLive() != 1 {
		t.Fatal("pair not registered")
	}
	// Kill the owner. The elem stays alive via its own root. The paper's
	// semantics: the registration dissolves with the owner.
	w.roots[ownerRoot] = heap.Nil
	w.col.Collect("t") // owner still marked in phase 1? No: unreachable; dies this GC
	w.col.Collect("t")
	if w.eng.OwnedPairsLive() != 0 {
		t.Errorf("pairs live = %d, want 0", w.eng.OwnedPairsLive())
	}
	// No spurious ownership violations for elem afterwards.
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindOwnedBy)); n != 0 {
		t.Errorf("spurious violations: %v", w.rep.Violations())
	}
}

func TestOwnedByOwneeDeathPrunes(t *testing.T) {
	w := newWorld(t)
	owner := w.alloc(w.pair)
	elem := w.alloc(w.node)
	w.space.SetRef(owner, 0, elem)
	w.root(owner)
	w.eng.AssertOwnedBy(owner, elem)
	// Remove the element entirely: it dies, and the registration goes away.
	w.space.SetRef(owner, 0, heap.Nil)
	w.col.Collect("t")
	if w.rep.Len() != 0 {
		t.Fatalf("dead ownee must not violate: %v", w.rep.Violations())
	}
	if w.eng.OwnedPairsLive() != 0 {
		t.Errorf("pairs live = %d", w.eng.OwnedPairsLive())
	}
}

func TestOwnedByReassignment(t *testing.T) {
	w := newWorld(t)
	o1 := w.alloc(w.pair)
	o2 := w.alloc(w.pair)
	elem := w.alloc(w.node)
	w.space.SetRef(o2, 0, elem)
	w.root(o1)
	w.root(o2)
	w.eng.AssertOwnedBy(o1, elem)
	w.eng.AssertOwnedBy(o1, elem) // duplicate: no-op
	if w.eng.OwnedPairsLive() != 1 {
		t.Fatal("dup changed registry")
	}
	w.eng.AssertOwnedBy(o2, elem) // reassign to o2
	if w.eng.OwnedPairsLive() != 1 {
		t.Fatal("reassign duplicated")
	}
	w.col.Collect("t")
	// elem is owned by o2 and reachable via o2: clean.
	if w.rep.Len() != 0 {
		t.Fatalf("violations: %v", w.rep.Violations())
	}
}

func TestOwnedBySelfOwnershipPanics(t *testing.T) {
	w := newWorld(t)
	a := w.alloc(w.node)
	w.root(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.eng.AssertOwnedBy(a, a)
}

func TestImproperOwnershipOverlapWarning(t *testing.T) {
	w := newWorld(t)
	// Two owners share an interior object that reaches both ownees:
	// owner1 -> shared -> elem2 (ownee of owner2): overlap.
	owner1 := w.alloc(w.pair)
	owner2 := w.alloc(w.pair)
	shared := w.alloc(w.pair)
	elem1 := w.alloc(w.node)
	elem2 := w.alloc(w.node)
	w.space.SetRef(owner1, 0, elem1)
	w.space.SetRef(owner1, 1, shared)
	w.space.SetRef(owner2, 0, elem2)
	w.space.SetRef(shared, 0, elem2) // owner1's region reaches owner2's ownee
	w.root(owner1)
	w.root(owner2)
	w.eng.AssertOwnedBy(owner1, elem1)
	w.eng.AssertOwnedBy(owner2, elem2)
	w.col.Collect("t")
	if n := len(w.rep.ByKind(KindImproperOwnership)); n == 0 {
		t.Fatalf("expected improper-use warning, got %v", w.rep.Violations())
	}
	// No false ownership violation for elem2 (it was marked owned).
	if n := len(w.rep.ByKind(KindOwnedBy)); n != 0 {
		t.Errorf("false positives: %v", w.rep.ByKind(KindOwnedBy))
	}
}

func TestOwnershipTruncationHandlesBackEdges(t *testing.T) {
	w := newWorld(t)
	// owner -> e1 -> e2 -> e1 (back edge between ownees of the same owner).
	owner := w.alloc(w.pair)
	e1 := w.alloc(w.pair)
	e2 := w.alloc(w.pair)
	w.space.SetRef(owner, 0, e1)
	w.space.SetRef(e1, 0, e2)
	w.space.SetRef(e2, 0, e1)
	w.root(owner)
	w.eng.AssertOwnedBy(owner, e1)
	w.eng.AssertOwnedBy(owner, e2)
	w.col.Collect("t")
	if w.rep.Len() != 0 {
		t.Fatalf("back edges must not violate: %v", w.rep.Violations())
	}
}

func TestOwnershipKeepsOwnerSubtreeAliveOneCycle(t *testing.T) {
	// The paper's liveness artifact (§2.5.2): objects reachable only from a
	// dead owner survive the current collection (marked by the ownership
	// phase) and die at the next one.
	w := newWorld(t)
	owner := w.alloc(w.pair)
	elem := w.alloc(w.node)
	w.space.SetRef(owner, 0, elem)
	w.eng.AssertOwnedBy(owner, elem) // owner itself is unreachable!
	w.col.Collect("t")
	if !w.space.Contains(elem) {
		t.Fatal("elem should survive the first GC (ownership phase marked it)")
	}
	if w.space.Contains(owner) {
		t.Fatal("unreachable owner must be collected in the first GC")
	}
	w.col.Collect("t")
	if w.space.Contains(elem) {
		t.Fatal("elem should die at the second GC")
	}
}

func TestRegionLifecycle(t *testing.T) {
	w := newWorld(t)
	w.eng.StartRegion(7)
	if !w.eng.RegionActive(7) || w.eng.RegionActive(8) {
		t.Error("RegionActive")
	}
	a := w.alloc(w.node)
	w.eng.RecordRegionAlloc(7, a)
	w.eng.RecordRegionAlloc(8, a) // no region on thread 8: ignored
	n := w.eng.AssertAllDead(7)
	if n != 1 {
		t.Errorf("AssertAllDead = %d", n)
	}
	if w.eng.RegionActive(7) {
		t.Error("region still active")
	}
	// Double start panics; AssertAllDead without region panics.
	w.eng.StartRegion(7)
	mustPanic(t, "double StartRegion", func() { w.eng.StartRegion(7) })
	mustPanic(t, "AssertAllDead without region", func() { w.eng.AssertAllDead(9) })
}

func TestRegionQueueWeakPruning(t *testing.T) {
	w := newWorld(t)
	w.eng.StartRegion(1)
	// Allocate region objects; let half die before the region ends.
	var kept []heap.Addr
	for i := 0; i < 10; i++ {
		a := w.alloc(w.node)
		w.eng.RecordRegionAlloc(1, a)
		if i%2 == 0 {
			kept = append(kept, a)
			w.root(a)
		}
	}
	// A mid-region GC prunes the dead half from the queue.
	w.col.Collect("mid-region")
	n := w.eng.AssertAllDead(1)
	if n != len(kept) {
		t.Errorf("queue after pruning = %d, want %d", n, len(kept))
	}
	// They are still rooted: all violate.
	w.col.Collect("t")
	if got := len(w.rep.ByKind(KindDead)); got != len(kept) {
		t.Errorf("violations = %d, want %d", got, len(kept))
	}
}

func TestAssertOnInvalidObjectPanics(t *testing.T) {
	w := newWorld(t)
	mustPanic(t, "AssertDead(nil)", func() { w.eng.AssertDead(heap.Nil) })
	mustPanic(t, "AssertUnshared(garbage)", func() { w.eng.AssertUnshared(heap.Addr(12345 &^ 7)) })
	a := w.alloc(w.node)
	mustPanic(t, "AssertOwnedBy(nil, a)", func() { w.eng.AssertOwnedBy(heap.Nil, a) })
	mustPanic(t, "unknown type", func() { w.eng.AssertInstances(heap.TypeID(999), 1) })
}

func TestViolationGCSeqAndRoot(t *testing.T) {
	w := newWorld(t)
	w.col.Collect("warm")
	a := w.alloc(w.node)
	w.root(a)
	w.eng.AssertDead(a)
	w.col.Collect("t")
	v := w.rep.ByKind(KindDead)[0]
	if v.GC != 1 {
		t.Errorf("violation GC = %d, want 1", v.GC)
	}
	if v.Root != "root" {
		t.Errorf("violation root = %q", v.Root)
	}
}

func TestKindAndReactionStringers(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDead: "assert-dead", KindInstances: "assert-instances",
		KindUnshared: "assert-unshared", KindOwnedBy: "assert-ownedby",
		KindImproperOwnership: "improper-ownership", Kind(77): "Kind(77)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	for r, want := range map[Reaction]string{
		ReactLog: "log", ReactHalt: "halt", ReactForce: "force", Reaction(9): "Reaction(9)",
	} {
		if r.String() != want {
			t.Errorf("Reaction %d = %q", r, r.String())
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
