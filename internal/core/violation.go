// Package core implements the GC assertion engine, the paper's primary
// contribution: programmer-written heap assertions (assert-dead,
// start-region/assert-alldead, assert-instances, assert-unshared,
// assert-ownedby) that are registered cheaply at run time and checked by the
// garbage collector during its normal tracing pass, with violations reported
// together with the complete path through the heap from a root to the
// offending object (Figure 1 of the paper).
package core

import (
	"fmt"
	"strings"

	"gcassert/internal/heap"
)

// Kind identifies an assertion kind.
type Kind uint8

// Assertion kinds.
const (
	// KindDead is assert-dead(p): p must be unreachable at the next GC.
	KindDead Kind = iota
	// KindInstances is assert-instances(T, I): at most I instances of T may
	// be live at GC time.
	KindInstances
	// KindUnshared is assert-unshared(p): p has at most one incoming pointer.
	KindUnshared
	// KindOwnedBy is assert-ownedby(p, q): q must not outlive reachability
	// from its owner p.
	KindOwnedBy
	// KindImproperOwnership flags improper use of assert-ownedby: an ownee
	// reachable from an owner other than its own (overlapping owner regions).
	KindImproperOwnership

	numKinds = 5
)

// NumKinds is the number of assertion kinds.
const NumKinds = numKinds

// KindNames returns the stable label of every assertion kind, indexed by
// Kind value. Telemetry uses these as metric labels.
func KindNames() []string {
	out := make([]string, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k] = k.String()
	}
	return out
}

func (k Kind) String() string {
	switch k {
	case KindDead:
		return "assert-dead"
	case KindInstances:
		return "assert-instances"
	case KindUnshared:
		return "assert-unshared"
	case KindOwnedBy:
		return "assert-ownedby"
	case KindImproperOwnership:
		return "improper-ownership"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// headline returns the Figure 1-style warning line for the kind.
func (k Kind) headline() string {
	switch k {
	case KindDead:
		return "an object that was asserted dead is reachable"
	case KindInstances:
		return "instance limit exceeded"
	case KindUnshared:
		return "an object that was asserted unshared has multiple incoming pointers"
	case KindOwnedBy:
		return "an object is reachable but not through its asserted owner"
	case KindImproperOwnership:
		return "improper use of assert-ownedby: overlapping owner regions"
	default:
		return "assertion violated"
	}
}

// PathStep is one object on a root-to-object path. Field names the reference
// slot in this object that leads to the next step ("" for the last step).
type PathStep struct {
	// Addr is the object's address.
	Addr heap.Addr
	// TypeName is the object's type.
	TypeName string
	// Field is the field (or "[i]" element) leading to the next step.
	Field string
}

// Violation describes one triggered assertion.
type Violation struct {
	// Kind is the violated assertion's kind.
	Kind Kind
	// GC is the sequence number of the collection that detected it.
	GC uint64
	// Object is the offending object (Nil for assert-instances).
	Object heap.Addr
	// TypeName is the offending object's (or tracked type's) name.
	TypeName string
	// Site is the offending object's recorded allocation site ("" when
	// provenance is disabled or the allocation was not sampled). A path says
	// where the object is reachable from; the site says who created it —
	// together they are the two halves of a heap diagnosis.
	Site string
	// Root describes the root at which the reported path starts.
	Root string
	// Path is the full path through the heap from the root to the object,
	// including the object itself as the final step. For assert-unshared the
	// path is the second path discovered, as in the paper (§2.7). Empty for
	// assert-instances, where the problem paths may already have been traced.
	Path []PathStep
	// Message carries kind-specific detail.
	Message string
}

// String formats the violation in the style of the paper's Figure 1.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warning: %s.\n", v.Kind.headline())
	fmt.Fprintf(&b, "Type: %s\n", v.TypeName)
	if v.Site != "" {
		fmt.Fprintf(&b, "Allocated at: %s\n", v.Site)
	}
	if v.Message != "" {
		fmt.Fprintf(&b, "Detail: %s\n", v.Message)
	}
	if len(v.Path) > 0 {
		b.WriteString("Path to object:\n")
		if v.Root != "" {
			fmt.Fprintf(&b, "  root %s\n", v.Root)
		}
		for i, s := range v.Path {
			if i == 0 {
				fmt.Fprintf(&b, "  %s", s.TypeName)
			} else {
				fmt.Fprintf(&b, "\n  -> %s", s.TypeName)
			}
			if s.Field != "" {
				fmt.Fprintf(&b, " .%s", s.Field)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BuildPath converts a chain of ancestor addresses plus the offending object
// into annotated PathSteps, resolving for each hop the field that holds the
// next address. Violations are rare, so this does a per-hop reference scan.
// Exported because path reconstruction is shared machinery: heap probes and
// the leak-suspect reports render their sampled paths in exactly the
// violation-report form.
func BuildPath(space *heap.Space, ancestors []heap.Addr, obj heap.Addr) []PathStep {
	chain := make([]heap.Addr, 0, len(ancestors)+1)
	chain = append(chain, ancestors...)
	chain = append(chain, obj)
	steps := make([]PathStep, len(chain))
	for i, a := range chain {
		steps[i] = PathStep{Addr: a, TypeName: space.TypeName(a)}
		if i+1 < len(chain) {
			steps[i].Field = FieldLeadingTo(space, a, chain[i+1])
		}
	}
	return steps
}

// FieldLeadingTo returns the name of the first reference slot in a that
// holds target, or "" if none does (possible if the mutator raced; we never
// mutate during STW collection, so in practice it is always found).
func FieldLeadingTo(space *heap.Space, a, target heap.Addr) string {
	name := ""
	space.ForEachRef(a, func(slot int, t heap.Addr) {
		if name == "" && t == target {
			ti := space.Registry().Info(space.TypeOf(a))
			name = ti.FieldName(slot)
		}
	})
	return name
}
