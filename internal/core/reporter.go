package core

import (
	"fmt"
	"io"
	"sync"
)

// Reporter receives triggered assertions. Implementations must not touch the
// heap: they run inside the stop-the-world collection.
type Reporter interface {
	// Report is invoked once per violation, at detection time.
	Report(v *Violation)
}

// WriterReporter formats each violation in the paper's Figure 1 style and
// writes it to an io.Writer.
type WriterReporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterReporter returns a Reporter printing to w.
func NewWriterReporter(w io.Writer) *WriterReporter { return &WriterReporter{w: w} }

// Report writes the formatted violation.
func (r *WriterReporter) Report(v *Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintln(r.w, v.String())
}

// CollectingReporter records violations in memory; tests and the case-study
// examples use it to inspect what the collector found.
type CollectingReporter struct {
	mu         sync.Mutex
	violations []Violation
}

// Report appends a copy of the violation.
func (r *CollectingReporter) Report(v *Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.violations = append(r.violations, *v)
}

// Violations returns a snapshot of everything reported so far.
func (r *CollectingReporter) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Violation(nil), r.violations...)
}

// ByKind returns the recorded violations of one kind.
func (r *CollectingReporter) ByKind(k Kind) []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Violation
	for _, v := range r.violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the number of recorded violations.
func (r *CollectingReporter) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.violations)
}

// Reset discards all recorded violations.
func (r *CollectingReporter) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.violations = nil
}

// FuncReporter adapts a function to the Reporter interface. The telemetry
// layer uses it to feed the violation stream without a dedicated type.
type FuncReporter func(v *Violation)

// Report invokes the function.
func (f FuncReporter) Report(v *Violation) { f(v) }

// TeeReporter fans a violation out to several reporters.
type TeeReporter []Reporter

// Report forwards v to every underlying reporter.
func (t TeeReporter) Report(v *Violation) {
	for _, r := range t {
		r.Report(v)
	}
}

// Reaction selects what the system does when an assertion triggers (§2.6).
type Reaction uint8

// Reactions.
const (
	// ReactLog logs the error and continues executing (the paper's default:
	// it retains the semantics of the program without assertions).
	ReactLog Reaction = iota
	// ReactHalt logs the error and halts by panicking with *HaltError, for
	// assertions whose failure indicates a non-recoverable error.
	ReactHalt
	// ReactForce forces the assertion to be true where possible: for
	// lifetime assertions the collector nulls out every incoming reference
	// so the object is reclaimed in the current cycle. Kinds that cannot be
	// forced fall back to logging.
	ReactForce
)

func (r Reaction) String() string {
	switch r {
	case ReactLog:
		return "log"
	case ReactHalt:
		return "halt"
	case ReactForce:
		return "force"
	default:
		return fmt.Sprintf("Reaction(%d)", uint8(r))
	}
}

// Policy maps each assertion kind to a reaction.
type Policy [numKinds]Reaction

// DefaultPolicy logs and continues for every kind, like the paper's system.
func DefaultPolicy() Policy { return Policy{} }

// With returns a copy of the policy with kind k set to r.
func (p Policy) With(k Kind, r Reaction) Policy {
	p[k] = r
	return p
}

// HaltError is the panic payload raised by the ReactHalt reaction.
type HaltError struct {
	// Violation is the assertion that triggered the halt.
	Violation Violation
}

// Error describes the halt.
func (e *HaltError) Error() string {
	return "gcassert: halted on assertion violation: " + e.Violation.String()
}
