package core

import (
	"fmt"
	"sort"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/collector/parmark"
	"gcassert/internal/heap"
)

var _ collector.ParallelHooks = (*Engine)(nil)

// ParallelChecks implements collector.ParallelHooks: it binds this engine's
// per-edge checks to a parallel mark as one shard per worker. Shards record
// pending violations and count instances locally — no locks on the edge
// path; cross-worker once-per-object elections (duplicate suppression) use
// single atomic flag operations on the object's own header. Merge, on the
// collecting goroutine after the workers join, folds the shards into the
// engine and reports the pending violations with breadcrumb-reconstructed
// paths.
//
// It returns nil — demanding the sequential marker — when a programmatic
// decider is installed: the decider's reaction (notably ReactForce) must
// take effect at edge time, which only the sequential trace can do.
func (e *Engine) ParallelChecks(workers int, gc uint64) parmark.Checks {
	if e.decider != nil {
		return nil
	}
	e.growTypeTables()
	pc := &parChecks{
		eng:       e,
		gc:        gc,
		forceDead: e.policy[KindDead] == ReactForce,
		allClaims: len(e.tracked) > 0,
		shards:    make([]*parShard, workers),
	}
	for i := range pc.shards {
		sh := &parShard{eng: e, timed: e.costs != nil}
		if pc.allClaims {
			sh.counts = make([]int64, len(e.counts))
		}
		pc.shards[i] = sh
	}
	return pc
}

type parChecks struct {
	eng       *Engine
	gc        uint64
	forceDead bool
	allClaims bool
	shards    []*parShard
}

func (pc *parChecks) ForceDead() bool           { return pc.forceDead }
func (pc *parChecks) WantAllClaims() bool       { return pc.allClaims }
func (pc *parChecks) Shard(i int) parmark.Shard { return pc.shards[i] }

// parPending is one violation detected during the parallel trace, reported
// at merge time. The edge context (parent, slot, root) is enough to rebuild
// the full path from the breadcrumbs.
type parPending struct {
	kind   Kind
	obj    heap.Addr
	typeID heap.TypeID
	parent heap.Addr
	slot   int32
	root   int32
	forced bool
}

// parShard is one worker's check state. Only its owning worker touches it
// during the trace; Merge reads it after the join. With cost attribution on
// (timed), each shard accumulates its own per-kind slow-path time — no
// cross-worker sharing on the edge path — and Merge folds the shards into
// the engine's cost state deterministically.
type parShard struct {
	eng            *Engine
	counts         []int64
	unsharedChecks uint64
	pending        []parPending
	logged         []heap.Addr
	timed          bool
	ns             [NumKinds]int64
}

// OnEdge implements parmark.Shard, mirroring the sequential Engine.OnEdge
// case for case. oldHeader is the child's pre-claim header, so flag tests
// and the TypeID ride on the claim's one atomic access, exactly as the
// sequential checks ride on the tracer's one header load.
func (sh *parShard) OnEdge(parent heap.Addr, slot int, root int32, child heap.Addr, oldHeader uint64, claimed bool) {
	s := sh.eng.space
	f := heap.HeaderFlags(oldHeader)
	if claimed {
		if f&heap.FlagDead != 0 {
			// First (and only) claim of an asserted-dead object: elect a
			// unique reporter via the logged flag, and clear the assertion
			// one-shot as the sequential log path does. Timed as the kind's
			// slow path when attribution is on (the unflagged claim path
			// carries no attribution branch).
			var t0 time.Time
			if sh.timed {
				t0 = time.Now()
			}
			if s.OrFlags(child, flagLogged)&flagLogged == 0 {
				sh.logged = append(sh.logged, child)
				sh.pending = append(sh.pending, parPending{
					kind: KindDead, obj: child, typeID: heap.HeaderTypeID(oldHeader),
					parent: parent, slot: int32(slot), root: root,
				})
				s.AndNotFlags(child, heap.FlagDead)
			}
			if sh.timed {
				sh.ns[KindDead] += int64(time.Since(t0))
			}
		}
		if sh.counts != nil {
			if t := heap.HeaderTypeID(oldHeader); int(t) < len(sh.counts) {
				sh.counts[t]++
			}
		}
	} else if f&heap.FlagUnshared != 0 {
		sh.unsharedChecks++
		if f&flagLogged == 0 {
			var t0 time.Time
			if sh.timed {
				t0 = time.Now()
			}
			if s.OrFlags(child, flagLogged)&flagLogged == 0 {
				sh.logged = append(sh.logged, child)
				sh.pending = append(sh.pending, parPending{
					kind: KindUnshared, obj: child, typeID: heap.HeaderTypeID(oldHeader),
					parent: parent, slot: int32(slot), root: root,
				})
			}
			if sh.timed {
				sh.ns[KindUnshared] += int64(time.Since(t0))
			}
		}
	}
	if f&heap.FlagOwnee != 0 && f&heap.FlagOwned == 0 {
		// An ownee reached by the normal scan without the ownership phase
		// having marked it owned. The owned flag doubles as the per-cycle
		// duplicate suppressor (as in the sequential path), and the atomic
		// Or elects the reporting worker.
		var t0 time.Time
		if sh.timed {
			t0 = time.Now()
		}
		if s.OrFlags(child, heap.FlagOwned)&heap.FlagOwned == 0 {
			sh.pending = append(sh.pending, parPending{
				kind: KindOwnedBy, obj: child, typeID: heap.HeaderTypeID(oldHeader),
				parent: parent, slot: int32(slot), root: root,
			})
		}
		if sh.timed {
			sh.ns[KindOwnedBy] += int64(time.Since(t0))
		}
	}
}

// OnDeadForced implements parmark.Shard: the engine severed an edge to an
// asserted-dead child (static ReactForce). Every incoming edge is severed,
// but only the electing worker reports.
func (sh *parShard) OnDeadForced(parent heap.Addr, slot int, root int32, child heap.Addr, oldHeader uint64) {
	var t0 time.Time
	if sh.timed {
		t0 = time.Now()
	}
	if sh.eng.space.OrFlags(child, flagLogged)&flagLogged == 0 {
		sh.logged = append(sh.logged, child)
		sh.pending = append(sh.pending, parPending{
			kind: KindDead, obj: child, typeID: heap.HeaderTypeID(oldHeader),
			parent: parent, slot: int32(slot), root: root, forced: true,
		})
	}
	if sh.timed {
		sh.ns[KindDead] += int64(time.Since(t0))
	}
}

// Merge implements parmark.Checks: fold shard state into the engine and
// report the pending violations. Reports are ordered by (kind, object
// address) so the output is deterministic regardless of how the workers
// interleaved; the sequential marker reports in DFS-encounter order, so
// per-cycle *sets* of violations match while ordering may differ.
func (pc *parChecks) Merge(r *parmark.Resolver) {
	e := pc.eng
	var pend []parPending
	for _, sh := range pc.shards {
		if sh.counts != nil {
			for t, n := range sh.counts {
				if n != 0 {
					e.counts[t] += n
				}
			}
		}
		e.stats.UnsharedChecks += sh.unsharedChecks
		e.logged = append(e.logged, sh.logged...)
		pend = append(pend, sh.pending...)
		if sh.timed && e.costs != nil {
			// Shard fold order is fixed (shard index), so the merged per-kind
			// times are deterministic for a given set of shard measurements.
			for k := 0; k < NumKinds; k++ {
				e.costs.ns[k] += sh.ns[k]
			}
		}
	}
	sort.SliceStable(pend, func(i, j int) bool {
		if pend[i].kind != pend[j].kind {
			return pend[i].kind < pend[j].kind
		}
		return pend[i].obj < pend[j].obj
	})
	for i := range pend {
		if cs := e.costs; cs != nil {
			// Path reconstruction and reporting happen here rather than at
			// edge time; bill them to the violation's kind so sequential and
			// parallel cycles attribute the same work.
			t0 := time.Now()
			e.reportParallel(&pend[i], pc.gc, r)
			cs.addSince(pend[i].kind, t0)
		} else {
			e.reportParallel(&pend[i], pc.gc, r)
		}
	}
}

// reportParallel rebuilds one pending violation's path from the breadcrumbs
// and dispatches it through the normal report machinery (so policies,
// reporters, and stats behave exactly as in the sequential path; ReactHalt
// panics here, on the collecting goroutine).
func (e *Engine) reportParallel(p *parPending, gc uint64, r *parmark.Resolver) {
	s := e.space
	root, ancestors := r.EdgePath(p.parent, p.root)
	v := &Violation{
		Kind:     p.kind,
		GC:       gc,
		Object:   p.obj,
		TypeName: s.Registry().Name(p.typeID),
		Site:     s.SiteDesc(p.obj),
		Root:     root,
		Path:     BuildPath(s, ancestors, p.obj),
	}
	switch p.kind {
	case KindDead:
		e.stats.DeadViolations++
	case KindUnshared:
		e.stats.UnsharedViolations++
		v.Message = "second path shown; the first path was traced earlier"
	case KindOwnedBy:
		e.stats.OwnedViolations++
		owner := e.owneeOwner[p.obj]
		v.Message = "owner unknown"
		if owner != heap.Nil {
			v.Message = fmt.Sprintf("asserted owner is %s@%#x, which does not reach the object", s.TypeName(owner), uint32(owner))
		}
	}
	if p.forced && len(v.Path) >= 2 && p.slot >= 0 {
		// The severing already cleared the slot, so BuildPath's generic
		// field scan cannot name the final hop; recover it from the
		// recorded slot index.
		if step := &v.Path[len(v.Path)-2]; step.Field == "" {
			step.Field = s.Registry().Info(s.TypeOf(p.parent)).FieldName(int(p.slot))
		}
	}
	e.report(v)
}
