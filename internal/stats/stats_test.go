package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil)")
	}
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %v", GeoMean([]float64{2, 8}))
	}
	// Non-positive entries are skipped.
	if !almost(GeoMean([]float64{2, 8, 0, -1}), 4) {
		t.Error("GeoMean with non-positive")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Error("GeoMean all non-positive")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestStdDevAndCI(t *testing.T) {
	if StdDev([]float64{5}) != 0 || CI90([]float64{5}) != 0 {
		t.Error("single sample should have zero spread")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	ci := CI90(xs)
	if ci <= 0 {
		t.Error("CI90 <= 0")
	}
	// t critical value for df=7 is 1.895.
	want := 1.895 * StdDev(xs) / math.Sqrt(8)
	if !almost(ci, want) {
		t.Errorf("CI90 = %v, want %v", ci, want)
	}
	// Large df uses the normal approximation.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 7)
	}
	if CI90(big) <= 0 {
		t.Error("CI90 big")
	}
	if tCrit90(0) != 0 {
		t.Error("tCrit90(0)")
	}
}

func TestSample(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	s.AddDuration(2 * time.Second)
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 2) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if len(s.Values()) != 3 {
		t.Error("Values")
	}
	if s.String() == "" {
		t.Error("String")
	}
	if s.CI90() <= 0 {
		t.Error("CI90")
	}
}

func TestRatio(t *testing.T) {
	var a, b, z Sample
	a.Add(3)
	b.Add(2)
	if !almost(Ratio(&a, &b), 1.5) {
		t.Error("Ratio")
	}
	if Ratio(&a, &z) != 0 {
		t.Error("Ratio zero denominator")
	}
}

// Property: GeoMean of positive values lies between min and max, and the
// geomean of a constant slice is the constant.
func TestGeoMeanProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if !almost(GeoMean([]float64{7, 7, 7}), 7) {
		t.Error("constant geomean")
	}
}

// Property: mean is translation-equivariant.
func TestMeanTranslation(t *testing.T) {
	prop := func(xs []float64, c float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e12 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + c
		}
		return math.Abs(Mean(shifted)-(Mean(xs)+c)) < 1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
