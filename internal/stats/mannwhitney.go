// Mann–Whitney U (Wilcoxon rank-sum): the significance test the benchmark
// trajectory pipeline uses to decide whether two runs really differ, the same
// choice benchstat makes. It is non-parametric — benchmark trial times are
// skewed and occasionally bimodal, so t-tests on means routinely lie about
// them — and it works on the small sample counts (5–20 trials) the harness
// collects.
package stats

import (
	"math"
	"sort"
)

// MannWhitney performs a two-sided Mann–Whitney U test of whether a and b
// come from the same distribution. It returns the U statistic for a and the
// two-sided p-value computed with the normal approximation, tie correction
// and continuity correction.
//
// With fewer than 3 observations on either side no outcome can be
// significant at any conventional level, so p = 1 is returned — callers
// never mistake an underpowered comparison for a confident one.
func MannWhitney(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 < 3 || n2 < 3 {
		return float64(n1) * float64(n2) / 2, 1
	}

	// Rank the pooled sample, mid-ranking ties.
	type obs struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	pooled := make([]obs, 0, n1+n2)
	for _, v := range a {
		pooled = append(pooled, obs{v, 0})
	}
	for _, v := range b {
		pooled = append(pooled, obs{v, 1})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	n := float64(n1 + n2)
	ranks := make([]float64, len(pooled))
	tieTerm := 0.0 // Σ (t³ − t) over tie groups, for the variance correction
	for i := 0; i < len(pooled); {
		j := i
		for j < len(pooled) && pooled[j].v == pooled[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	r1 := 0.0
	for i, o := range pooled {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - float64(n1)*float64(n1+1)/2

	mean := float64(n1) * float64(n2) / 2
	variance := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// Every observation tied: the samples are literally identical.
		return u, 1
	}
	z := u - mean
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p = math.Erfc(math.Abs(z) / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return u, p
}

// Quantile returns the exact q-quantile of xs by linear interpolation
// between order statistics (the "R-7" estimator). 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// SpreadPct is the interquartile range of xs as a percentage of its median —
// the robust "how noisy were the trials" number stamped next to every
// median-of-trials result. 0 when the median is 0 or xs is empty.
func SpreadPct(xs []float64) float64 {
	m := Median(xs)
	if m == 0 {
		return 0
	}
	return 100 * (Quantile(xs, 0.75) - Quantile(xs, 0.25)) / m
}
