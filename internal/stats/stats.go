// Package stats provides the small statistical toolkit the benchmark
// harness needs to report results the way the paper does: means, geometric
// means (used for the overhead summaries), and 90% confidence intervals
// (the paper's error bars).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (they would be log-undefined).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// StdDev returns the sample standard deviation of xs (0 when len < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// tTable90 holds two-sided 90% critical values of Student's t distribution
// for 1..30 degrees of freedom; beyond 30 the normal approximation is used.
var tTable90 = []float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// tCrit90 returns the two-sided 90% t critical value for df degrees of
// freedom.
func tCrit90(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(tTable90) {
		return tTable90[df-1]
	}
	return 1.645 // normal approximation
}

// CI90 returns the half-width of the 90% confidence interval of the mean of
// xs, using Student's t distribution — the paper's error bars.
func CI90(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCrit90(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Sample accumulates repeated measurements of one quantity.
type Sample struct {
	xs []float64
}

// Add records one measurement.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddDuration records a time measurement in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw measurements.
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// CI90 returns the 90% confidence half-width.
func (s *Sample) CI90() float64 { return CI90(s.xs) }

// String formats the sample as "mean ± ci90".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI90())
}

// Ratio returns the ratio of two sample means (b relative to a), guarding
// against a zero denominator.
func Ratio(num, den *Sample) float64 {
	d := den.Mean()
	if d == 0 {
		return 0
	}
	return num.Mean() / d
}
